/// \file bench_serve.cpp
/// Service-level throughput/latency benchmark: a batch of node-capped
/// small-EPN exploration requests pushed through ExplorationService worker
/// pools of 1, 4 and 8. Reported per configuration:
///
///   * requests_per_second — batch size / wall time (the google-benchmark
///     rate counter);
///   * p50_ms / p99_ms — request latency quantiles from the service's own
///     `serve.latency` histogram, i.e. the numbers the Prometheus endpoint
///     would export.
///
/// Each request encodes its own EPN problem and solves a 64-node slice of
/// the eager reliability MILP (~0.6 s of solver work), so the bench
/// exercises the real per-request lifecycle — encode, admission, solve,
/// response — not an idle-queue microbenchmark. On the single-CPU CI box
/// the workload is compute-bound: extra workers measure scheduling overhead
/// and fairness, not speedup. The committed BENCH_serve.json baseline is
/// recorded through tools/run_bench.sh (release provenance enforced) and
/// diffed by tools/bench_diff.py in ci.sh.
#include <benchmark/benchmark.h>

#include <future>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "serve/service.hpp"

namespace {

using archex::serve::ExplorationService;
using archex::serve::Request;
using archex::serve::Response;
using archex::serve::ServiceOptions;

constexpr int kRequestsPerBatch = 6;
constexpr std::int64_t kNodeCap = 64;

Request epn_request(int i) {
  Request r;
  r.id = "bench-epn-" + std::to_string(i);
  r.domain = "epn";
  r.max_nodes = kNodeCap;
  return r;
}

void BM_ServeEpnBatch(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  for (auto _ : state) {
    ServiceOptions so;
    so.workers = workers;
    ExplorationService svc(so);
    std::vector<std::future<Response>> futs;
    futs.reserve(kRequestsPerBatch);
    for (int i = 0; i < kRequestsPerBatch; ++i) {
      futs.push_back(svc.submit(epn_request(i)));
    }
    for (auto& f : futs) {
      const Response r = f.get();
      benchmark::DoNotOptimize(r.nodes);
    }
    // The service's own latency histogram (admission -> response), the same
    // series the Prometheus endpoint exports as archex_serve_latency_*.
    p50_ms = svc.metrics().histogram("serve.latency").quantile(0.50) * 1e3;
    p99_ms = svc.metrics().histogram("serve.latency").quantile(0.99) * 1e3;
  }
  state.counters["requests_per_second"] = benchmark::Counter(
      static_cast<double>(kRequestsPerBatch) * state.iterations(),
      benchmark::Counter::kIsRate);
  state.counters["p50_ms"] = p50_ms;
  state.counters["p99_ms"] = p99_ms;
}
BENCHMARK(BM_ServeEpnBatch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // Provenance stamp for tools/run_bench.sh — see bench_milp.cpp for why the
  // stock library_build_type cannot be used.
#if !defined(NDEBUG)
  benchmark::AddCustomContext("archex_build_type", "debug");
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  benchmark::AddCustomContext("archex_build_type", "sanitized");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  benchmark::AddCustomContext("archex_build_type", "sanitized");
#else
  benchmark::AddCustomContext("archex_build_type", "release");
#endif
#else
  benchmark::AddCustomContext("archex_build_type", "release");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
