/// \file bench_rpl.cpp
/// Reproduces the reconfigurable production line evaluation of Sec. 4.2:
///   * Table 3 — template & library echo (inputs),
///   * Fig. 4a — cost-optimal RPL where line B is reused for product A in
///               operation mode Omega2 (paper: ~5,000 constraints, ~3,000
///               variables, solver 0.4s),
///   * Fig. 4b — adding max_total_idle_rate(M, 10) drives parallel slower
///               machines: total idle rate drops 28 -> 8 parts/min (3.5x).
///
/// Flags: --time-limit=S
#include <cstdio>
#include <string>
#include <vector>

#include "domains/rpl.hpp"

using namespace archex;
using namespace archex::domains::rpl;

namespace {

void echo_table3(const RplConfig& cfg) {
  std::printf("--- Table 3: template and library ---\n");
  const Library lib = make_library(cfg);
  const ArchTemplate t = make_template(cfg);
  std::printf("%-9s | per-stage slots (A,B) | options (cost, mu)\n", "type");
  const std::vector<std::string> types = {"Source", "Machine", "Conveyor", "Sink"};
  for (const std::string& type : types) {
    const std::size_t a = t.select({type, "", "A"}).size();
    const std::size_t b = t.select({type, "", "B"}).size();
    std::printf("%-9s | %zu,%zu                  |", type.c_str(), a, b);
    for (LibIndex i : lib.of_type(type)) {
      const Component& c = lib.at(i);
      std::printf(" %s(%g", c.name.c_str(), c.cost());
      if (c.has_attr(attr::kThroughput)) std::printf(",%g", c.attr_or(attr::kThroughput));
      std::printf(")");
    }
    std::printf("\n");
  }
  std::printf("rates: lambda_A=%g, lambda_B=%g; modes: Omega1 (A+B, no borrowing), "
              "Omega2 (2*lambda_A, B stalled)\n\n",
              cfg.rate_a, cfg.rate_b);
}

struct Outcome {
  bool ok = false;
  double cost = 0;
  double idle = 0;
  double reused = 0;
  milp::ModelStats stats;
  double seconds = 0;
  const char* status = "";
};

Outcome run(const RplConfig& cfg, double time_limit) {
  auto p = make_problem(cfg);
  milp::MilpOptions opts;
  opts.time_limit_s = time_limit;
  ExplorationResult res = p->solve(opts);
  Outcome out;
  out.stats = res.stats;
  out.seconds = res.solver_seconds;
  out.status = milp::to_string(res.solution.status);
  if (!res.feasible()) return out;
  out.ok = true;
  out.cost = res.architecture.cost;
  out.idle = total_idle_rate(*p, res.architecture);
  const auto it = res.architecture.flows.find("O2:A");
  if (it != res.architecture.flows.end()) {
    for (const FlowEdge& e : it->second) {
      const auto& to = res.architecture.nodes[static_cast<std::size_t>(e.to)];
      if (to.type == "Machine" && to.name.find('B') != std::string::npos) {
        out.reused += e.rate;
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double time_limit = 300.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--time-limit=", 0) == 0) time_limit = std::stod(a.substr(13));
  }
  RplConfig cfg;
  std::printf("=== RPL benchmark (Sec. 4.2), time limit %gs/solve ===\n\n", time_limit);
  echo_table3(cfg);

  std::printf("--- Fig. 4a: no idle requirement (paper: line B reused in Omega2) ---\n");
  const Outcome a = run(cfg, time_limit);
  std::printf("MILP: %zu vars, %zu constraints (paper: ~3,000 vars, ~5,000 constraints)\n",
              a.stats.num_vars, a.stats.num_constraints);
  std::printf("status: %s in %.1fs; cost %.0f; total idle %.1f parts/min; "
              "A-parts on line B in Omega2: %.1f %s\n\n",
              a.status, a.seconds, a.cost, a.idle, a.reused,
              a.reused > 0 ? "(line B reused: matches Fig. 4a)" : "(NO reuse)");

  std::printf("--- Fig. 4b: max_total_idle_rate(Machine, 10) ---\n");
  cfg.max_total_idle = 10.0;
  const Outcome b = run(cfg, time_limit);
  std::printf("status: %s in %.1fs; cost %.0f; total idle %.1f parts/min\n", b.status,
              b.seconds, b.cost, b.idle);
  if (a.ok && b.ok && b.idle > 0) {
    std::printf("idle-rate reduction: %.1f -> %.1f = %.1fx (paper: 28 -> 8 = 3.5x)\n",
                a.idle, b.idle, a.idle / b.idle);
    std::printf("cost of the idle requirement: +%.0f (paper: slightly costlier design)\n",
                b.cost - a.cost);
  }
  return 0;
}
