/// \file bench_epn.cpp
/// Reproduces the aircraft EPN evaluation of Sec. 4.1:
///   * Table 2  — template & library echo (inputs),
///   * Fig. 2b  — monolithic (eager) optimization,
///   * Fig. 3   — lazy iterative optimization with per-iteration
///                reliabilities r = (HV, LV),
///   * the spec-size/abstraction observation (patterns vs generated MILP).
///
/// Absolute numbers differ from the paper (their substrate is CPLEX on a
/// Xeon; ours is the in-repo solver — see DESIGN.md), but the qualitative
/// results reproduce: the lazy method needs ~3 learning iterations with
/// reliabilities marching 1e-3 -> 1e-6 -> 1e-9, at slightly higher cost
/// than the monolithic optimum, in a fraction of its runtime.
///
/// Flags: --scale=tiny|small|paper  --time-limit=S  --skip-monolithic
#include <cstdio>
#include <string>
#include <vector>

#include "domains/epn.hpp"

using namespace archex;
using namespace archex::domains::epn;

namespace {

void echo_table2(const EpnConfig& cfg) {
  std::printf("--- Table 2: template and library ---\n");
  const Library lib = make_library(cfg);
  std::printf("%-10s | max # in T (L,R) | options (cost, power)\n", "type");
  const ArchTemplate t = make_template(cfg);
  const std::vector<std::string> types = {"Generator", "ACBus", "Rectifier", "DCBus",
                                          "Load"};
  for (const std::string& type : types) {
    const std::size_t left = t.select({type, "", "LE"}).size();
    const std::size_t right = t.select({type, "", "RI"}).size();
    const std::size_t mid = t.select({type, "", "MI"}).size();
    const std::string extra = mid ? " +" + std::to_string(mid) + " APU" : "";
    std::printf("%-10s | %zu,%zu%s            |", type.c_str(), left, right, extra.c_str());
    for (LibIndex i : lib.of_type(type)) {
      const Component& c = lib.at(i);
      std::printf(" %s(%g", c.name.c_str(), c.cost());
      if (c.has_attr(attr::kPower)) std::printf(",%g", c.attr_or(attr::kPower));
      std::printf(")");
    }
    std::printf("\n");
  }
  std::printf("contactor (edge) cost: %g; component failure prob: %g\n\n", cfg.contactor_cost,
              cfg.component_fail_prob);
}

}  // namespace

int main(int argc, char** argv) {
  std::string scale = "small";
  double time_limit = 150.0;
  bool monolithic = true;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--scale=", 0) == 0) scale = a.substr(8);
    else if (a.rfind("--time-limit=", 0) == 0) time_limit = std::stod(a.substr(13));
    else if (a == "--skip-monolithic") monolithic = false;
  }

  EpnConfig cfg;
  if (scale == "small") {
    cfg = small_config();
    cfg.rectifiers_per_side = 3;
  } else if (scale == "tiny") {
    cfg = small_config();
    cfg.rectifiers_per_side = 3;
    cfg.critical_threshold = 1e-5;  // k = 2 regime
    cfg.sheddable_threshold = 1e-2;
  }

  std::printf("=== EPN benchmark (Sec. 4.1), scale=%s, time limit %gs/solve ===\n\n",
              scale.c_str(), time_limit);
  echo_table2(cfg);

  milp::MilpOptions opts;
  opts.time_limit_s = time_limit;

  // --- abstraction claim: spec size vs generated MILP size ---
  {
    cfg.reliability_eager = true;
    auto p = make_problem(cfg);
    const milp::ModelStats st = p->model().stats();
    std::printf("--- Spec vs MILP (paper: 46 patterns / 90 LoC -> >100k lines, 20k vars) ---\n");
    std::printf("patterns applied: %zu; generated MILP: %zu vars, %zu constraints,"
                " %zu standard-form lines\n\n",
                p->num_patterns_applied(), st.num_vars, st.num_constraints,
                st.standard_form_lines);
  }

  // --- Fig. 2b: monolithic (eager) optimization ---
  double monolithic_cost = -1;
  if (monolithic) {
    std::printf("--- Fig. 2b: monolithic optimization (paper: cost 106,000, ~5h) ---\n");
    cfg.reliability_eager = true;
    auto p = make_problem(cfg);
    ExplorationResult res = p->solve(opts);
    std::printf("status: %s after %.1fs, %lld nodes\n", milp::to_string(res.solution.status),
                res.solver_seconds, static_cast<long long>(res.solution.nodes_explored));
    if (res.feasible()) {
      monolithic_cost = res.architecture.cost;
      std::printf("cost: %.0f\n", monolithic_cost);
      double worst_crit = 0;
      double worst_shed = 0;
      for (const auto& [load, prob] : link_fail_probs(*p, res.architecture)) {
        const NodeId id = p->arch_template().find(load);
        (p->arch_template().node(id).has_tag("critical") ? worst_crit : worst_shed) =
            std::max(p->arch_template().node(id).has_tag("critical") ? worst_crit : worst_shed,
                     prob);
      }
      std::printf("exact link failure probabilities: critical %.3g (req %.0g), "
                  "sheddable %.3g (req %.0g)\n",
                  worst_crit, cfg.critical_threshold, worst_shed, cfg.sheddable_threshold);
    }
    std::printf("\n");
  }

  // --- Fig. 3: lazy iterative optimization ---
  std::printf("--- Fig. 3: lazy iterations (paper: r=(0.6,0.8)e-3 -> (0.2,0.32)e-6 ->\n"
              "    (0.38,0.19)e-9, cost 108,000 vs monolithic 106,000, 56s total) ---\n");
  cfg.reliability_eager = false;
  auto p = make_problem(cfg);
  EpnLazyResult lazy = solve_lazy_epn(*p, cfg, opts);
  double lazy_total = 0;
  for (const EpnLazyIteration& it : lazy.iterations) {
    lazy_total += it.solve_seconds;
    std::printf("iteration %d: cost %8.0f  r = (%.3g, %.3g)  %zu constraints, %zu vars,"
                "  %.1fs\n",
                it.index, it.cost, it.worst_hv, it.worst_lv, it.stats.num_constraints,
                it.stats.num_vars, it.solve_seconds);
  }
  std::printf("%s after %zu iterations, %.1fs total\n",
              lazy.converged ? "converged" : "NOT converged", lazy.iterations.size(),
              lazy_total);
  if (lazy.final_result.feasible() && monolithic_cost > 0) {
    std::printf("cost ordering: lazy %.0f >= monolithic %.0f : %s (paper: 108k >= 106k)\n",
                lazy.final_result.architecture.cost, monolithic_cost,
                lazy.final_result.architecture.cost >= monolithic_cost - 1e-6 ? "yes"
                                                                              : "NO");
  }
  return 0;
}
