/// \file bench_spec_size.cpp
/// Reproduces the paper's abstraction-gain observation (Sec. 4.1): the EPN
/// specification is "46 patterns, 90 lines of code" while the generated
/// MILP in standard form "amounts to more than 100,000 lines and 20,000
/// variables". This bench parses the shipped specification files and
/// reports the same ratio for this implementation.
///
/// Usage: bench_spec_size [data-dir]   (default: ./data, falling back to
/// ../data so it works from the build directory).
#include <cstdio>
#include <fstream>
#include <string>

#include "arch/parser.hpp"
#include "domains/epn.hpp"
#include "domains/rpl.hpp"

using namespace archex;

namespace {

std::string locate(const std::string& dir_hint, const std::string& file) {
  for (const std::string& dir : {dir_hint, std::string("data"), std::string("../data")}) {
    const std::string path = dir + "/" + file;
    if (std::ifstream(path).good()) return path;
  }
  return {};
}

void report(const char* title, const std::string& spec_path, const std::string& lib_path) {
  std::printf("--- %s ---\n", title);
  if (spec_path.empty() || lib_path.empty()) {
    std::printf("spec/library files not found (run from the repository root)\n\n");
    return;
  }
  const ProblemSpec spec = load_problem_spec_file(spec_path);
  Library lib = load_library_file(lib_path);
  std::unique_ptr<Problem> p = instantiate(spec, std::move(lib));
  const milp::ModelStats st = p->model().stats();
  std::printf("specification:  %4zu pattern instances, %4d lines of code\n",
              spec.patterns.size(), spec.spec_lines);
  std::printf("generated MILP: %4zu variables (%zu binary), %zu constraints, %zu nonzeros\n",
              st.num_vars, st.num_binary, st.num_constraints, st.num_nonzeros);
  std::printf("standard-form lines: %zu  => abstraction ratio %.0fx\n\n",
              st.standard_form_lines,
              static_cast<double>(st.standard_form_lines) / std::max(1, spec.spec_lines));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "data";
  domains::epn::register_epn_patterns();
  domains::rpl::register_rpl_patterns();

  std::printf("=== Specification size vs generated MILP (paper Sec. 4.1) ===\n");
  std::printf("Paper (EPN): 46 patterns / 90 LoC -> >100,000 lines, 20,000 variables\n\n");
  report("EPN specification (data/epn.spec)", locate(dir, "epn.spec"), locate(dir, "epn.lib"));
  report("RPL specification (data/rpl.spec)", locate(dir, "rpl.spec"), locate(dir, "rpl.lib"));
  return 0;
}
