/// \file bench_sweep.cpp
/// Compiled-pipeline sweep benchmark (docs/pipeline.md): the cached+warm
/// re-solve path against the naive alternative it replaces. One scenario
/// family = 20 perturbations (cost scales plus one RHS delta) of a
/// routing-fabric assignment whose root LP dominates the solve: all cost
/// lives on the edges, so the relaxation is the (integral) assignment
/// polytope, the tree closes at the root, and the warm dual-simplex
/// restart is the whole story. Component (node) costs are deliberately
/// zero — a priced node's delta column satisfies delta >= x_e per incident
/// edge, so the relaxation evades node cost by splitting a sink across k
/// edges (delta -> 1/k), opening an integrality gap that grows with the
/// template and drowns the warm start in tree search (that regime is what
/// the EPN models in bench_serve measure).
///
///   * BM_SweepCold — every scenario pays the full classic path: build the
///     Problem (encode), compile, solve from scratch. This is "20
///     independent encode+cold-solve runs".
///   * BM_SweepWarm — the artifact is compiled once (outside the timed
///     region, exactly what a service cache hit means) and each timed
///     iteration fetches it from a CompiledModelCache and re-solves the
///     whole family as parameter deltas, warm-starting each scenario from
///     the previous optimal basis (SweepState).
///
/// The committed BENCH_sweep.json baseline is recorded through
/// tools/run_bench.sh (release provenance enforced) and diffed by
/// tools/bench_diff.py in ci.sh; ci.sh additionally asserts the recorded
/// cold/warm ratio stays >= 5x and that every warm objective equals the
/// cold objective for the same scenario.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "arch/compiled_model.hpp"
#include "arch/patterns/connection.hpp"
#include "arch/problem.hpp"
#include "milp/budget.hpp"

namespace {

using namespace archex;
using namespace archex::patterns;

constexpr int kScenarios = 20;

/// Routing fabric: `mids` relays, each sink fed by exactly one relay, with
/// a distinct integer edge cost (all multiples of 25, so the solver's gcd
/// granularity pruning stays armed) per candidate connection. Size is
/// driven by `mids`; snks = mids / 4 gives mids * snks candidate edges.
struct SweepSpec {
  Library lib;
  ArchTemplate tmpl;

  explicit SweepSpec(int mids) {
    const int snks = std::max(2, mids / 4);
    lib.set_edge_cost(25.0);
    lib.add({"MidRelay", "Mid", "relay", {}, {{attr::kCost, 0}}});
    lib.add({"SnkX", "Snk", "", {}, {{attr::kCost, 0}}});
    tmpl.add_nodes(mids, "M", "Mid");
    tmpl.add_nodes(snks, "T", "Snk");
    tmpl.allow_connection(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"));
  }

  [[nodiscard]] std::unique_ptr<Problem> make() const {
    auto p = std::make_unique<Problem>(lib, tmpl);
    // Every sink fed through exactly one relay: the assignment shape whose
    // relaxation is integral (all cost on edges — see the file comment).
    p->apply(NConnections(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"),
                          1, milp::Sense::EQ, false, CountSide::kTo));
    // Distinct per-edge integer costs (a fixed hash of the edge index, all
    // multiples of 25): a unique optimum, no symmetric plateau to enumerate.
    const auto& es = p->edges().edges();
    for (std::size_t e = 0; e < es.size(); ++e) {
      const double c = 25.0 * (1.0 + static_cast<double>((e * 2654435761u) % 64));
      p->set_edge_cost(es[e].from, es[e].to, c);
    }
    return p;
  }
};

/// The i-th member of the perturbation family: a uniform edge-cost scale
/// (objective delta) for every member, plus one RHS delta (sink T1 needs a
/// second feed) mid-sweep — the two non-structural delta kinds the warm
/// dual-simplex restart was built for (docs/pipeline.md).
Scenario perturbation(int i) {
  Scenario sc;
  sc.name = "perturb-" + std::to_string(i);
  sc.edge_cost_scale = 1.0 + 0.01 * i;
  if (i == 10) sc.rhs["exactly_n_connections(T1<-Mid)"] = 2.0;
  return sc;
}

milp::MilpOptions solver_options() {
  milp::MilpOptions opts;
  opts.num_threads = 1;
  opts.budget = milp::Budget::of_seconds(60.0);
  return opts;
}

void BM_SweepCold(benchmark::State& state) {
  const int mids = static_cast<int>(state.range(0));
  const SweepSpec spec(mids);
  const milp::MilpOptions opts = solver_options();
  std::int64_t solved = 0;
  for (auto _ : state) {
    for (int i = 0; i < kScenarios; ++i) {
      // The naive path: re-encode and re-compile per scenario, solve with no
      // warm-start state.
      auto problem = spec.make();
      const CompiledModel cm = compile(*problem);
      const ExplorationResult res = archex::solve(cm, perturbation(i), opts);
      if (!res.feasible()) {
        state.SkipWithError("cold scenario infeasible");
        return;
      }
      benchmark::DoNotOptimize(res.solution.objective);
      ++solved;
    }
  }
  state.counters["scenarios"] = static_cast<double>(solved);
  state.counters["cold_solves"] = static_cast<double>(solved);
}
BENCHMARK(BM_SweepCold)
    ->Arg(96)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_SweepWarm(benchmark::State& state) {
  const int mids = static_cast<int>(state.range(0));
  const SweepSpec spec(mids);
  const milp::MilpOptions opts = solver_options();
  // Compile once, park in the cache: the timed region below is the service's
  // cache-hit path (fingerprint lookup + 20 warm re-solves), with the encode
  // already paid by an earlier request.
  CompiledModelCache cache(4);
  auto problem = spec.make();
  const std::uint64_t fp = [&] {
    auto cm = std::make_shared<const CompiledModel>(compile(*problem));
    const std::uint64_t f = cm->fingerprint();
    cache.put(std::move(cm));
    return f;
  }();
  std::int64_t warm = 0;
  std::int64_t cold = 0;
  for (auto _ : state) {
    const std::shared_ptr<const CompiledModel> cm = cache.get(fp);
    if (cm == nullptr) {
      state.SkipWithError("cache lost the compiled artifact");
      return;
    }
    SweepState sweep;
    for (int i = 0; i < kScenarios; ++i) {
      const ExplorationResult res = archex::solve(*cm, perturbation(i), opts, &sweep);
      if (!res.feasible()) {
        state.SkipWithError("warm scenario infeasible");
        return;
      }
      benchmark::DoNotOptimize(res.solution.objective);
    }
    warm += sweep.warm_solves;
    cold += sweep.cold_solves;
  }
  state.counters["warm_solves"] = static_cast<double>(warm);
  state.counters["cold_solves"] = static_cast<double>(cold);
}
BENCHMARK(BM_SweepWarm)
    ->Arg(96)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // Provenance stamp for tools/run_bench.sh — see bench_milp.cpp for why the
  // stock library_build_type cannot be used.
#if !defined(NDEBUG)
  benchmark::AddCustomContext("archex_build_type", "debug");
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  benchmark::AddCustomContext("archex_build_type", "sanitized");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  benchmark::AddCustomContext("archex_build_type", "sanitized");
#else
  benchmark::AddCustomContext("archex_build_type", "release");
#endif
#else
  benchmark::AddCustomContext("archex_build_type", "release");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
