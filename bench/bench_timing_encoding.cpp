/// \file bench_timing_encoding.cpp
/// Ablation of the max_cycle_time encoding (DESIGN.md): the paper's
/// formulation (6) enumerates every source->sink path; this implementation
/// defaults to the polynomial arrival-time big-M encoding. Both are
/// implemented; this bench sweeps pipeline width/depth and reports encoding
/// size, solve time, and agreement of the optimal cost.
#include <chrono>
#include <cstdio>

#include "arch/patterns/connection.hpp"
#include "arch/patterns/timing.hpp"
#include "arch/problem.hpp"

using namespace archex;
using namespace archex::patterns;
using Clock = std::chrono::steady_clock;

namespace {

struct Pipeline {
  Library lib;
  ArchTemplate tmpl;

  Pipeline(int stages, int width) {
    lib.set_edge_cost(1.0);
    lib.add({"SrcX", "Src", "", {}, {{attr::kCost, 5}, {attr::kDelay, 1}}});
    lib.add({"StageSlow", "Stage", "slow", {}, {{attr::kCost, 3}, {attr::kDelay, 4}}});
    lib.add({"StageFast", "Stage", "fast", {}, {{attr::kCost, 7}, {attr::kDelay, 1}}});
    lib.add({"SnkX", "Snk", "", {}, {{attr::kCost, 0}, {attr::kDelay, 0}}});

    tmpl.add_node({"S", "Src", "", {}, {}});
    std::string prev_tag = "src";
    for (int s = 0; s < stages; ++s) {
      const std::string tag = "st" + std::to_string(s);
      tmpl.add_nodes(width, "N" + std::to_string(s) + "_", "Stage", "", {tag});
      if (s == 0) {
        tmpl.allow_connection(NodeFilter::of_type("Src"), {"Stage", "", tag});
      } else {
        tmpl.allow_connection({"Stage", "", prev_tag}, {"Stage", "", tag});
      }
      prev_tag = tag;
    }
    tmpl.add_node({"T", "Snk", "", {}, {}});
    tmpl.allow_connection({"Stage", "", prev_tag}, NodeFilter::of_type("Snk"));
  }
};

struct Row {
  std::size_t cons = 0;
  double seconds = 0;
  double cost = -1;
};

Row run(const Pipeline& pl, CycleTimeEncoding enc, double bound) {
  Problem p(pl.lib, pl.tmpl);
  p.set_functional_flow({"Src", "Stage", "Snk"});
  p.apply(NConnections(NodeFilter::of_type("Stage"), NodeFilter::of_type("Snk"), 1,
                       milp::Sense::GE, false, CountSide::kTo));
  p.apply(NConnections({}, NodeFilter::of_type("Stage"), 1, milp::Sense::GE, true,
                       CountSide::kTo));
  p.apply(MaxCycleTime(NodeFilter::of_type("Snk"), bound, enc));
  p.add_symmetry_breaking();
  Row row;
  row.cons = p.model().num_constraints();
  milp::MilpOptions opts;
  opts.time_limit_s = 30;
  const auto t0 = Clock::now();
  ExplorationResult res = p.solve(opts);
  row.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  if (res.feasible()) row.cost = res.architecture.cost;
  return row;
}

}  // namespace

int main() {
  std::printf("=== max_cycle_time encoding ablation: arrival-time vs path enumeration ===\n");
  std::printf("%7s | %18s | %18s | agree\n", "stages",
              "arrival (cons, t)", "paths (cons, t)");
  for (int stages : {2, 3, 4, 5, 6}) {
    const int width = 2;
    const Pipeline pl(stages, width);
    // Bound chosen so the fast implementation is required on every stage.
    const double bound = 1.0 + stages * 1.0 + 0.5;
    const Row a = run(pl, CycleTimeEncoding::kArrivalTime, bound);
    const Row b = run(pl, CycleTimeEncoding::kPathEnumeration, bound);
    std::printf("%7d | %7zu, %7.3fs | %7zu, %7.3fs | %s\n", stages, a.cons, a.seconds,
                b.cons, b.seconds,
                (a.cost >= 0 && std::abs(a.cost - b.cost) < 1e-6) ? "yes" : "CHECK");
  }
  std::printf("\nThe path count (and thus the (6)-style encoding) grows as width^stages;\n"
              "the arrival-time encoding stays linear in the candidate edge count.\n");
  return 0;
}
