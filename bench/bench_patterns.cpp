/// \file bench_patterns.cpp
/// Microbenchmarks of requirement-pattern translation (google-benchmark):
/// emission cost and constraint yield per pattern family. Sec. 4.1 observes
/// that formulation dominates runtime for the iterative method (98% of 56s);
/// these benches quantify the translation layer of this implementation.
#include <benchmark/benchmark.h>

#include "arch/patterns/connection.hpp"
#include "arch/patterns/flow.hpp"
#include "arch/patterns/general.hpp"
#include "arch/patterns/reliability_patterns.hpp"
#include "arch/patterns/timing.hpp"
#include "arch/problem.hpp"

namespace {

using namespace archex;
using namespace archex::patterns;

/// Mesh fixture: S sources, M mids (all-to-all), T sinks.
struct Mesh {
  Library lib;
  ArchTemplate tmpl;

  explicit Mesh(int width) {
    lib.set_edge_cost(1.0);
    lib.add({"S0", "Src", "", {}, {{attr::kCost, 5}, {attr::kDelay, 1}, {attr::kFailProb, 1e-3}}});
    lib.add({"M0", "Mid", "a", {}, {{attr::kCost, 3}, {attr::kThroughput, 4}, {attr::kDelay, 2}, {attr::kFailProb, 1e-3}}});
    lib.add({"M1", "Mid", "b", {}, {{attr::kCost, 6}, {attr::kThroughput, 9}, {attr::kDelay, 1}, {attr::kFailProb, 1e-3}}});
    lib.add({"T0", "Snk", "", {}, {{attr::kCost, 0}}});
    tmpl.add_nodes(width, "s", "Src");
    tmpl.add_nodes(2 * width, "m", "Mid");
    tmpl.add_nodes(width, "t", "Snk");
    tmpl.allow_connection(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"));
    tmpl.allow_connection(NodeFilter::of_type("Mid"), NodeFilter::of_type("Mid"));
    tmpl.allow_connection(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"));
  }
};

void BM_ProblemConstruction(benchmark::State& state) {
  const Mesh mesh(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Problem p(mesh.lib, mesh.tmpl);
    benchmark::DoNotOptimize(p.model().num_vars());
  }
  Problem p(mesh.lib, mesh.tmpl);
  state.counters["vars"] = static_cast<double>(p.model().num_vars());
}
BENCHMARK(BM_ProblemConstruction)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

template <typename MakePattern>
void emit_bench(benchmark::State& state, const Mesh& mesh, MakePattern make) {
  std::size_t rows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Problem p(mesh.lib, mesh.tmpl);
    p.set_functional_flow({"Src", "Mid", "Snk"});
    const std::size_t before = p.model().num_constraints();
    state.ResumeTiming();
    p.apply(make());
    benchmark::DoNotOptimize(p.model().num_constraints());
    rows = p.model().num_constraints() - before;
  }
  state.counters["rows_emitted"] = static_cast<double>(rows);
}

void BM_EmitConnections(benchmark::State& state) {
  const Mesh mesh(static_cast<int>(state.range(0)));
  emit_bench(state, mesh, [] {
    return NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 1,
                        milp::Sense::GE, false, CountSide::kFrom);
  });
}
BENCHMARK(BM_EmitConnections)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_EmitCannotConnect(benchmark::State& state) {
  const Mesh mesh(static_cast<int>(state.range(0)));
  emit_bench(state, mesh, [] { return CannotConnect({"Mid", "a", ""}, {"Mid", "b", ""}); });
}
BENCHMARK(BM_EmitCannotConnect)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_EmitCycleTime(benchmark::State& state) {
  const Mesh mesh(static_cast<int>(state.range(0)));
  emit_bench(state, mesh, [] { return MaxCycleTime(NodeFilter::of_type("Snk"), 10.0); });
}
BENCHMARK(BM_EmitCycleTime)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_EmitDisjointPaths(benchmark::State& state) {
  const Mesh mesh(static_cast<int>(state.range(0)));
  emit_bench(state, mesh, [] {
    return AtLeastNPaths(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk"), 2);
  });
}
BENCHMARK(BM_EmitDisjointPaths)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_EmitReliability(benchmark::State& state) {
  const Mesh mesh(static_cast<int>(state.range(0)));
  emit_bench(state, mesh, [] {
    return MaxFailprobOfConnection(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk"),
                                   1e-6);
  });
}
BENCHMARK(BM_EmitReliability)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
