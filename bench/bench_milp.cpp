/// \file bench_milp.cpp
/// Microbenchmarks of the MILP substrate (google-benchmark): LP solve
/// scaling, warm-started dual reoptimization vs cold solves (the ablation
/// behind the branch & bound design), and presolve throughput.
#include <benchmark/benchmark.h>

#include <random>

#include "milp/branch_bound.hpp"
#include "milp/presolve.hpp"
#include "milp/simplex.hpp"
#include "obs/span.hpp"

namespace {

using namespace archex::milp;

/// Random sparse LP with n variables and n constraints: a width-5 band plus
/// one long-range coupling per row (~6 nonzeros/row at every scale). This is
/// the sparsity class of ArchEx flow/adjacency encodings and keeps the
/// nonzero count linear in n, so the same generator scales from 25 to 5000
/// rows; a constant-density generator would make large instances quadratic
/// in n regardless of kernel.
Model random_lp(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coef(0.1, 3.0);
  Model m;
  std::vector<VarId> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) v.push_back(m.add_continuous(0, 10));
  for (int i = 0; i < n; ++i) {
    LinExpr e;
    for (int k = 0; k < 5; ++k) {
      const int j = (i + k) % n;
      e += coef(rng) * v[static_cast<std::size_t>(j)];
    }
    const int far = (i * 7 + n / 2) % n;
    e += coef(rng) * v[static_cast<std::size_t>(far)];
    m.add_constraint(std::move(e), Sense::LE, 5.0 * coef(rng));
  }
  LinExpr obj;
  for (int j = 0; j < n; ++j) obj += -coef(rng) * v[static_cast<std::size_t>(j)];
  m.set_objective(obj);
  return m;
}

/// Random binary knapsack-style MILP.
Model random_milp(int n, int rows, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(1, 9);
  Model m;
  std::vector<VarId> v;
  for (int j = 0; j < n; ++j) v.push_back(m.add_binary());
  LinExpr obj;
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    for (int j = 0; j < n; ++j) e += static_cast<double>(w(rng)) * v[static_cast<std::size_t>(j)];
    m.add_constraint(std::move(e), Sense::LE, 2.5 * n);
  }
  for (int j = 0; j < n; ++j) obj += static_cast<double>(w(rng)) * v[static_cast<std::size_t>(j)];
  m.set_objective(obj, ObjectiveSense::Maximize);
  return m;
}

void BM_LpSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Model m = random_lp(n, 42);
  std::int64_t iters = 0;
  for (auto _ : state) {
    Solution s = solve_lp_relaxation(m);
    iters = s.simplex_iterations;
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["rows"] = n;
  state.counters["iters"] = static_cast<double>(iters);
}
BENCHMARK(BM_LpSolve)
    ->Arg(25)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(1000)->Arg(2000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_LpSolveDense(benchmark::State& state) {
  // The pre-LU explicit-inverse kernel on the same instances: the committed
  // before/after scaling curve. Capped at 200 rows — beyond that the dense
  // kernel's O(m^2)-per-pivot cost makes the benchmark itself intractable,
  // which is the point of the sparse kernel.
  const int n = static_cast<int>(state.range(0));
  const Model m = random_lp(n, 42);
  SimplexOptions opts;
  opts.kernel = BasisKernel::Dense;
  std::int64_t iters = 0;
  for (auto _ : state) {
    Solution s = solve_lp_relaxation(m, opts);
    iters = s.simplex_iterations;
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["rows"] = n;
  state.counters["iters"] = static_cast<double>(iters);
}
BENCHMARK(BM_LpSolveDense)
    ->Arg(25)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_WarmDualReopt(benchmark::State& state) {
  // One bound change + dual reoptimization, the branch & bound node kernel.
  const Model m = random_lp(static_cast<int>(state.range(0)), 7);
  SimplexSolver lp(m);
  lp.solve_primal();
  int col = 0;
  for (auto _ : state) {
    lp.set_bounds(col, 0.0, 1.0);
    benchmark::DoNotOptimize(lp.reoptimize_dual());
    lp.set_bounds(col, 0.0, 10.0);
    benchmark::DoNotOptimize(lp.reoptimize_dual());
    col = (col + 1) % static_cast<int>(state.range(0));
  }
}
BENCHMARK(BM_WarmDualReopt)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMicrosecond);

void BM_ColdResolve(benchmark::State& state) {
  // The same kernel without warm starts: full two-phase solve per change.
  const Model m = random_lp(static_cast<int>(state.range(0)), 7);
  SimplexSolver lp(m);
  int col = 0;
  for (auto _ : state) {
    lp.set_bounds(col, 0.0, 1.0);
    benchmark::DoNotOptimize(lp.solve_primal());
    lp.set_bounds(col, 0.0, 10.0);
    col = (col + 1) % static_cast<int>(state.range(0));
  }
}
BENCHMARK(BM_ColdResolve)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMicrosecond);

void BM_MilpWarmVsCold(benchmark::State& state) {
  const bool warm = state.range(1) != 0;
  const Model m = random_milp(static_cast<int>(state.range(0)), 4, 11);
  MilpOptions opts;
  opts.warm_start = warm;
  std::int64_t nodes = 0;
  for (auto _ : state) {
    Solution s = solve_milp(m, opts);
    nodes = s.nodes_explored;
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.SetLabel(warm ? "warm-start" : "cold");
}
BENCHMARK(BM_MilpWarmVsCold)
    ->Args({16, 1})
    ->Args({16, 0})
    ->Args({24, 1})
    ->Args({24, 0})
    ->Unit(benchmark::kMillisecond);

/// Strongly correlated knapsack with fractional values: the objective has no
/// usable granularity, so the tree reaches hundreds of thousands of nodes —
/// large enough for the work-stealing pool to matter.
Model hard_knapsack(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(10, 30);
  Model m;
  LinExpr tw, tv;
  double cap = 0.0;
  for (int j = 0; j < n; ++j) {
    VarId v = m.add_binary();
    const int wj = w(rng);
    tw += static_cast<double>(wj) * v;
    tv += (static_cast<double>(wj) + 5.0 + 0.1 * (j % 7)) * v;
    cap += wj;
  }
  m.add_constraint(tw <= LinExpr(0.5 * cap));
  m.set_objective(tv, ObjectiveSense::Maximize);
  return m;
}

void BM_MilpThreads(benchmark::State& state) {
  // Thread-count sweep of solve_milp on a fixed >10k-node instance. The
  // speedup ratio between threads=1 and threads=N is the headline number;
  // nodes/steals expose the tree inflation and work-redistribution rate.
  // The second arg toggles the structured event trace: the traced/untraced
  // pair at equal thread counts measures the telemetry overhead, which must
  // stay within run-to-run noise (the rings are single-writer, no locks).
  const Model m = hard_knapsack(50, 42);
  const bool traced = state.range(1) != 0;
  MilpOptions opts;
  opts.num_threads = static_cast<int>(state.range(0));
  opts.trace = traced;
  std::int64_t nodes = 0, steals = 0, events = 0;
  double cpu = 0.0, refactors = 0.0;
  for (auto _ : state) {
    Solution s = solve_milp(m, opts);
    nodes = s.nodes_explored;
    steals = s.steals;
    cpu = s.cpu_seconds;
    events = static_cast<std::int64_t>(s.trace.events.size()) + s.trace.dropped;
    const auto it = s.metrics.find("milp.refactors");
    refactors = it == s.metrics.end() ? 0.0 : it->second;
    benchmark::DoNotOptimize(s.objective);
  }
  state.counters["threads"] = static_cast<double>(opts.num_threads);
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["steals"] = static_cast<double>(steals);
  state.counters["cpu_s"] = cpu;
  state.counters["refactors"] = refactors;
  state.counters["trace_events"] = static_cast<double>(events);
  state.SetLabel(traced ? "traced" : "untraced");
}
BENCHMARK(BM_MilpThreads)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ObsOverhead(benchmark::State& state) {
  // Span-profiler cost on the BM_LpSolve/1000 instance. Arg 0 solves with
  // profiling disabled (opts.spans == nullptr — the default every solve
  // takes); Arg 1 attaches a live SpanBuffer with kernel sampling. The
  // Arg(0) time must sit within noise of plain BM_LpSolve/1000: disabled
  // profiling is one null test per ScopedSpan, no clock reads.
  const Model m = random_lp(1000, 42);
  const bool profiled = state.range(0) != 0;
  archex::obs::SpanProfiler prof;
  SimplexOptions opts;
  if (profiled) opts.spans = prof.main();
  std::int64_t spans = 0;
  for (auto _ : state) {
    Solution s = solve_lp_relaxation(m, opts);
    benchmark::DoNotOptimize(s.objective);
  }
  if (profiled) {
    const auto rep = prof.collect();
    spans = static_cast<std::int64_t>(rep.spans.size()) + rep.dropped;
  }
  state.counters["spans"] = static_cast<double>(spans);
  state.SetLabel(profiled ? "profiled" : "disabled");
}
BENCHMARK(BM_ObsOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Presolve(benchmark::State& state) {
  const Model m = random_milp(static_cast<int>(state.range(0)), 8, 3);
  for (auto _ : state) {
    PresolveResult r = presolve(m);
    benchmark::DoNotOptimize(r.reduced.num_vars());
  }
}
BENCHMARK(BM_Presolve)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Provenance stamp for tools/run_bench.sh: the stock
  // `context.library_build_type` describes how the system libbenchmark was
  // compiled, not this binary, so the guard keys on this field instead.
  // Sanitized builds are excluded even though the asan/tsan presets define
  // NDEBUG — their numbers are no more comparable than a debug build's.
#if !defined(NDEBUG)
  benchmark::AddCustomContext("archex_build_type", "debug");
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  benchmark::AddCustomContext("archex_build_type", "sanitized");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  benchmark::AddCustomContext("archex_build_type", "sanitized");
#else
  benchmark::AddCustomContext("archex_build_type", "release");
#endif
#else
  benchmark::AddCustomContext("archex_build_type", "release");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
