/// \file bench_encoding.cpp
/// Reproduces the Sec. 4.1 encoding comparison: ArchEx 2.0's separated
/// selection/mapping encoding vs the predecessor encoding of [3, 11] where
/// mapping choices are folded into the interconnection variables.
///
/// Paper claims: ~1/2 the constraints and 2-4x faster solves; decision
/// variables linear (new) vs quadratic (legacy) in the library size l.
///
/// Output: one row per library size l with sizes and solve times for both
/// encodings on the same chain-structured instance family.
#include <chrono>
#include <cstdio>

#include "arch/legacy_encoder.hpp"
#include "arch/patterns/connection.hpp"
#include "arch/problem.hpp"
#include "milp/branch_bound.hpp"

using namespace archex;
using Clock = std::chrono::steady_clock;

namespace {

struct Instance {
  Library lib;
  ArchTemplate tmpl;
};

Instance make_instance(int per_stage, int ell) {
  Instance inst;
  inst.lib.set_edge_cost(2.0);
  for (const char* type : {"A", "B", "C"}) {
    for (int i = 0; i < ell; ++i) {
      inst.lib.add({std::string(type) + "impl" + std::to_string(i), type, "", {},
                    {{attr::kCost, 10.0 + i}}});
    }
  }
  inst.tmpl.add_nodes(per_stage, "a", "A");
  inst.tmpl.add_nodes(per_stage, "b", "B");
  inst.tmpl.add_nodes(per_stage, "c", "C");
  inst.tmpl.allow_connection(NodeFilter::of_type("A"), NodeFilter::of_type("B"));
  inst.tmpl.allow_connection(NodeFilter::of_type("B"), NodeFilter::of_type("C"));
  return inst;
}

struct Row {
  std::size_t vars = 0;
  std::size_t cons = 0;
  double seconds = 0.0;
  double objective = 0.0;
  const char* status = "";
};

Row run_new(const Instance& inst) {
  Problem p(inst.lib, inst.tmpl);
  p.apply(patterns::NConnections(NodeFilter::of_type("B"), NodeFilter::of_type("C"), 1,
                                 milp::Sense::EQ, false, patterns::CountSide::kTo));
  p.apply(patterns::NConnections(NodeFilter::of_type("A"), NodeFilter::of_type("B"), 1,
                                 milp::Sense::GE, true, patterns::CountSide::kTo));
  Row row;
  const milp::ModelStats st = p.model().stats();
  row.vars = st.num_vars;
  row.cons = st.num_constraints;
  milp::MilpOptions opts;
  opts.time_limit_s = 30;
  const auto t0 = Clock::now();
  ExplorationResult res = p.solve(opts);
  row.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  row.objective = res.feasible() ? res.architecture.cost : -1;
  row.status = milp::to_string(res.solution.status);
  return row;
}

Row run_legacy(const Instance& inst) {
  LegacyEncoding enc(inst.lib, inst.tmpl);
  for (NodeId c : inst.tmpl.select(NodeFilter::of_type("C"))) {
    milp::LinExpr in;
    for (NodeId b : inst.tmpl.select(NodeFilter::of_type("B"))) in += enc.edge_expr(b, c);
    enc.model().add_constraint(std::move(in), milp::Sense::EQ, 1.0);
  }
  for (NodeId b : inst.tmpl.select(NodeFilter::of_type("B"))) {
    milp::LinExpr in;
    for (NodeId a : inst.tmpl.select(NodeFilter::of_type("A"))) in += enc.edge_expr(a, b);
    milp::LinExpr used = enc.used_expr(b);
    milp::LinExpr cst = used - in;
    enc.model().add_constraint(std::move(cst), milp::Sense::LE, 0.0);
  }
  enc.finalize_objective(inst.lib.edge_cost());
  Row row;
  const milp::ModelStats st = enc.model().stats();
  row.vars = st.num_vars;
  row.cons = st.num_constraints;
  milp::MilpOptions opts;
  opts.time_limit_s = 30;
  const auto t0 = Clock::now();
  milp::Solution sol = milp::solve_milp(enc.model(), opts);
  row.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  row.objective = sol.has_incumbent ? sol.objective : -1;
  row.status = milp::to_string(sol.status);
  return row;
}

}  // namespace

int main() {
  std::printf(
      "=== Encoding comparison: ArchEx 2.0 vs legacy [3,11] (paper Sec. 4.1) ===\n"
      "Paper: new encoding has ~1/2 the constraints, decision variables linear\n"
      "(vs quadratic) in library size l, and solves 2-4x faster.\n\n");
  std::printf("%4s | %22s | %22s | %8s | %8s | %s\n", "l", "new (vars / cons)",
              "legacy (vars / cons)", "t_new", "t_legacy", "speedup  same_cost\n");

  const int per_stage = 2;
  for (int ell : {2, 3, 4, 6, 8, 10}) {
    const Instance inst = make_instance(per_stage, ell);
    const Row n = run_new(inst);
    const Row l = run_legacy(inst);
    std::printf("%4d | %9zu / %10zu | %9zu / %10zu | %7.3fs | %7.3fs | %5.1fx       %s\n",
                ell, n.vars, n.cons, l.vars, l.cons, n.seconds, l.seconds,
                n.seconds > 0 ? l.seconds / n.seconds : 0.0,
                (n.objective >= 0 && l.objective >= 0 &&
                 std::abs(n.objective - l.objective) < 1e-6)
                    ? "yes"
                    : "CHECK");
  }
  std::printf(
      "\nExpected shape: legacy vars grow ~l^2 (z per edge x impl pair), new vars\n"
      "grow ~l (one mapping binary per node x option); constraints shrink by\n"
      ">= the paper's ~2x. The paper reports 2-4x faster solves with CPLEX; our\n"
      "simple branch & bound suffers even more from the legacy blowup, so the\n"
      "measured speedups exceed that band (same winner, larger margin).\n");
  return 0;
}
