#!/usr/bin/env bash
# CI entry point: release build + full test suite, a traced end-to-end solve
# whose JSONL event log is validated against the documented schema, then a
# ThreadSanitizer build running the concurrency-focused suites (the parallel
# branch & bound pool, basis transplants, and reoptimization repair paths).
set -euo pipefail
cd "$(dirname "$0")"

echo "=== release: configure + build ==="
cmake --preset release
cmake --build --preset release -j "$(nproc)"

echo "=== release: ctest (full suite) ==="
ctest --preset release -j "$(nproc)"

echo "=== observability: traced EPN solve + schema validation ==="
# Export the EPN case-study MILP, solve it with 4 workers and tracing on,
# then check the emitted JSONL against docs/observability.md: unknown event
# types, missing keys, unsorted timestamps, or a trace without node /
# incumbent / steal events from >= 2 workers all fail the build. The trace
# stays under build/ as a CI artifact.
build/examples/epn_explorer --write-lp=build/epn_ci_model.lp
build/examples/milp_solve build/epn_ci_model.lp --threads=4 \
  --trace-json=build/epn_ci_trace.jsonl --log-interval=5 --timing
python3 tools/validate_trace.py build/epn_ci_trace.jsonl --min-workers=2

echo "=== tsan: configure + build ==="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

echo "=== tsan: ctest (parallel suites) ==="
ctest --preset tsan

echo "=== ci: all green ==="
