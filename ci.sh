#!/usr/bin/env bash
# CI entry point, four legs:
#   1. release: build + full test suite, model-lint fixture gate, and a
#      traced + certified end-to-end EPN solve whose JSONL event log is
#      validated against the documented schema.
#   2. asan: AddressSanitizer + UBSan build (-fno-sanitize-recover, warnings
#      promoted to errors via ARCHEX_WERROR) running the full suite.
#   3. tsan: ThreadSanitizer build running the concurrency-focused suites.
#   4. clang-tidy over src/ + tools/, using the release compile database
#      (skipped with a notice when clang-tidy is not installed).
set -euo pipefail
cd "$(dirname "$0")"

echo "=== release: configure + build ==="
cmake --preset release
cmake --build --preset release -j "$(nproc)"

echo "=== release: ctest (full suite) ==="
ctest --preset release -j "$(nproc)"

echo "=== static analysis: milp_lint fixture gate ==="
# Seeded-defect fixtures must fail the lint (each names the rule it seeds),
# clean fixtures must pass it even with warnings promoted, and the
# info-severity rules must surface in the report without failing the run.
for f in data/lint/bad/*.lp; do
  if build/tools/milp_lint --werror --quiet "$f" > /dev/null; then
    echo "FAIL: milp_lint did not flag seeded-defect fixture $f" >&2
    exit 1
  fi
done
build/tools/milp_lint --werror data/lint/clean/*.lp
lint_info=$(build/tools/milp_lint data/lint/info/notable_structure.lp)
for rule in redundant-row fixed-column free-column; do
  if ! grep -q "\[$rule\]" <<< "$lint_info"; then
    echo "FAIL: info fixture did not surface [$rule]" >&2
    exit 1
  fi
done
echo "lint gate: $(ls data/lint/bad/*.lp | wc -l) defect fixtures flagged," \
     "clean + info fixtures as expected"

echo "=== static analysis: milp_analyze fixture gate + report schema ==="
# The structural analyzer over the seeded data/analyze/ fixtures: each seeded
# property must be found (>= 2 components, static infeasibility, a nontrivial
# column orbit, and a fully pattern-attributed IIS no larger than the seeded
# two-row conflict), and every JSON report — lint and analyze — must validate
# against the archex-check-report/1 schema. milp_analyze exits 1 when it
# proves a model infeasible, which is the expected outcome for two fixtures.
mkdir -p build/analyze_reports
run_analyze() { # <fixture.lp> <expected-exit> <out.json>
  local rc=0
  build/tools/milp_analyze --json "$1" > "$3" || rc=$?
  if [ "$rc" != "$2" ]; then
    echo "FAIL: milp_analyze $1 exited $rc (expected $2)" >&2
    exit 1
  fi
}
run_analyze data/analyze/decomposable.lp 0 build/analyze_reports/decomposable.json
run_analyze data/analyze/static_infeasible.lp 1 build/analyze_reports/static_infeasible.json
run_analyze data/analyze/symmetric.lp 0 build/analyze_reports/symmetric.json
run_analyze data/analyze/infeasible_epn.lp 1 build/analyze_reports/infeasible_epn.json
build/tools/milp_lint --json data/analyze/static_infeasible.lp \
  > build/analyze_reports/lint_static_infeasible.json
python3 tools/validate_report.py build/analyze_reports/*.json
python3 - build/analyze_reports <<'EOF'
import json, sys
d = sys.argv[1]
def load(name):
    with open(f"{d}/{name}.json") as f:
        return json.load(f)["analysis"]
a = load("decomposable")["decompose"]
assert a["num_components"] >= 2, f"decomposable: {a['num_components']} component(s)"
a = load("static_infeasible")["propagate"]
assert a["infeasible"], "static_infeasible: propagation did not prove infeasibility"
a = load("symmetric")["symmetry"]
assert any(o["size"] >= 2 for o in a["col_orbits"]), "symmetric: no nontrivial column orbit"
a = load("infeasible_epn")["iis"]
assert a["infeasible"] and a["irreducible"], "infeasible_epn: no irreducible IIS"
assert len(a["rows"]) <= 2, f"infeasible_epn: IIS has {len(a['rows'])} rows (seeded conflict is 2)"
assert a["attribution"] == 1.0, f"infeasible_epn: attribution {a['attribution']} != 1.0"
assert all(o != "unattributed" for o in a["origins"]), "infeasible_epn: unattributed IIS row"
print("analyze gate: all four seeded structural defects found with correct attribution")
EOF

echo "=== observability: traced + certified EPN solve + schema validation ==="
# Export the EPN case-study MILP, solve it with 4 workers, tracing on and
# certification on (--certify: milp_solve exits 9 if the independent
# certifier finds any residual above tolerance), then check the emitted
# JSONL against docs/observability.md: unknown event types, missing keys,
# unsorted timestamps, or a trace without node / incumbent / steal events
# from >= 2 workers all fail the build. The trace stays under build/ as a
# CI artifact.
build/examples/epn_explorer --write-lp=build/epn_ci_model.lp
build/examples/milp_solve build/epn_ci_model.lp --threads=4 --certify \
  --trace-json=build/epn_ci_trace.jsonl --log-interval=5 --timing
python3 tools/validate_trace.py build/epn_ci_trace.jsonl --min-workers=2

echo "=== observability: span profile + per-pattern cost attribution ==="
# The same model solved with the span profiler attached: the Chrome trace
# must be structurally valid (per-lane nesting, documented keys) and cover
# the solver phases plus the sampled simplex kernels. Then the EPN explorer
# end to end: its profile additionally carries the encode span, and the
# --perf-report table must attribute >= 90% of encode wall time to named
# patterns (build_perf_report charges every encode path, so a drop below
# the bound means an uninstrumented path appeared).
build/examples/milp_solve build/epn_ci_model.lp --threads=2 --no-certify \
  --profile-json=build/epn_ci_profile.json > /dev/null
python3 tools/validate_trace.py --chrome build/epn_ci_profile.json \
  --require=presolve,root_lp,heuristic,tree,ftran,refactor
build/examples/epn_explorer --profile-json=build/epn_arch_profile.json \
  --perf-report > build/epn_perf_report.txt
python3 tools/validate_trace.py --chrome build/epn_arch_profile.json \
  --require=encode,formulate,presolve,extract
python3 - build/epn_perf_report.txt <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"attributed: [0-9.]+s \(([0-9.]+)%\)", text)
assert m, "perf report missing the attribution line"
pct = float(m.group(1))
if pct < 90.0:
    print(f"FAIL: only {pct}% of encode time attributed to named patterns",
          file=sys.stderr)
    sys.exit(1)
print(f"perf report: {pct}% of encode time attributed to named patterns")
EOF

echo "=== resilience: fault injection on the EPN solve ==="
# Injected faults mid-search must leave a *certified* optimum (exit 0 below
# includes the --certify gate): a bad_alloc at the 50th tree node and a
# singular refactorization both have to be absorbed by the recovery ladder.
# Sites/spelling in docs/diagnostics.md.
build/examples/milp_solve build/epn_ci_model.lp --threads=1 \
  --inject=bad-alloc:50 --certify > /dev/null
build/examples/milp_solve build/epn_ci_model.lp --threads=1 \
  --inject=singular:300 --certify > /dev/null
echo "fault injection: ladder recovered, certificates ok"

echo "=== bench: Release-provenance smoke (BM_LpSolve/1000) ==="
# One 1000-row LP solve through the guarded bench runner: the runner refuses
# results from non-Release builds (the BENCH_*.json provenance gate), and the
# iteration-count sanity bound fails loudly when a kernel regression turns
# the sparse LU path into a pivot storm (the healthy count is ~600).
tools/run_bench.sh build/bench/bench_milp build/bench_smoke.json \
  --benchmark_filter='^BM_LpSolve/1000$' --benchmark_min_time=0.1
python3 - build/bench_smoke.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
runs = [b for b in data["benchmarks"] if b["name"].startswith("BM_LpSolve/1000")]
assert runs, "BM_LpSolve/1000 missing from the smoke bench"
iters = runs[0]["iters"]
if not 0 < iters <= 20000:
    print(f"FAIL: BM_LpSolve/1000 took {iters} simplex iterations "
          "(sanity bound 20000): kernel regression?", file=sys.stderr)
    sys.exit(1)
print(f"bench smoke: BM_LpSolve/1000 ok ({int(iters)} simplex iterations)")
EOF

echo "=== bench: regression diff against the committed baseline ==="
# The perf-regression gate: a slightly longer recording of the kernel-bound
# benchmarks, diffed against BENCH_milp.json. bench_diff.py fails on any
# benchmark > 15% slower than the baseline (per-name minimum real_time;
# BM_ObsOverhead/0 doubles as the profiling-off zero-cost assertion — it
# *is* BM_LpSolve/1000 plus a disabled profiler). On hardware other than
# the baseline's the diff skips cleanly (the archex_cpu_model stamp), so
# forks and CI runners stay green; the machine that owns the baseline gets
# the real comparison.
tools/run_bench.sh build/bench/bench_milp build/bench_diff_ci.json \
  --benchmark_filter='^BM_LpSolve/1000$|^BM_ObsOverhead' \
  --benchmark_min_time=0.2 --benchmark_repetitions=3
python3 tools/bench_diff.py BENCH_milp.json build/bench_diff_ci.json

echo "=== bench: serve throughput diff against BENCH_serve.json ==="
# Request throughput / latency through ExplorationService (batches of
# node-capped EPN requests at 1/4/8 workers), diffed against the committed
# BENCH_serve.json with the same provenance + CPU-match rules as above.
tools/run_bench.sh build/bench/bench_serve build/bench_serve_ci.json \
  --benchmark_min_time=0.1 --benchmark_repetitions=2
python3 tools/bench_diff.py BENCH_serve.json build/bench_serve_ci.json

echo "=== bench: compiled sweep diff against BENCH_sweep.json ==="
# The compiled-pipeline benchmark (docs/pipeline.md): a 20-scenario family
# as 20 independent encode+cold solves (BM_SweepCold) vs the cached+warm
# path (BM_SweepWarm). Diffed against the committed baseline like the other
# benches — at a wider 30% threshold, because the cold arm is a single ~2 s
# iteration whose min scatters more than the short kernel benches — plus a
# ratio gate on the *fresh* recording: the headline claim of the pipeline,
# cached+warm >= 5x faster than naive re-encode+cold, must hold on this
# machine, not just on the baseline's.
tools/run_bench.sh build/bench/bench_sweep build/bench_sweep_ci.json \
  --benchmark_min_time=0.5 --benchmark_repetitions=2
python3 tools/bench_diff.py --threshold=30 \
  BENCH_sweep.json build/bench_sweep_ci.json
python3 - build/bench_sweep_ci.json <<'EOF'
import json, sys
runs = {}
for b in json.load(open(sys.argv[1]))["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    key = "cold" if "SweepCold" in b["name"] else "warm"
    runs[key] = min(runs.get(key, float("inf")), b["real_time"])
ratio = runs["cold"] / runs["warm"]
assert ratio >= 5.0, f"cached+warm sweep only {ratio:.2f}x faster than cold"
print(f"sweep bench: cached+warm path {ratio:.1f}x faster than encode+cold")
EOF

echo "=== resilience: checkpoint kill/resume drill ==="
# Reference: the same single-worker pool-routed search, uninterrupted. Then
# a second run checkpointing every 50 ms is SIGKILLed mid-search and resumed;
# the resumed run must land on the identical printed objective (hexfloat
# serialization keeps the search state bit-exact at num_threads=1).
rm -f build/epn_ref.ck build/epn_resume.ck
build/examples/milp_solve build/epn_ci_model.lp --threads=1 \
  --checkpoint=build/epn_ref.ck --checkpoint-interval=3600 > build/epn_ref.log
build/examples/milp_solve build/epn_ci_model.lp --threads=1 \
  --checkpoint=build/epn_resume.ck --checkpoint-interval=0.05 \
  > build/epn_kill_run.log 2>&1 &
solver_pid=$!
for _ in $(seq 1 100); do
  [ -f build/epn_resume.ck ] && break
  sleep 0.1
done
sleep 1  # let the search get properly underway before the kill
kill -9 "$solver_pid" 2> /dev/null || true
wait "$solver_pid" 2> /dev/null || true
if [ ! -f build/epn_resume.ck ]; then
  echo "FAIL: no checkpoint written before the kill" >&2
  exit 1
fi
# The drill is vacuous unless the kill landed mid-search: a finished solve
# prints its status line, and its final checkpoint has an empty frontier, so
# the "resume" below would trivially re-report the stored incumbent.
if grep -q '^status:' build/epn_kill_run.log; then
  echo "FAIL: kill/resume drill: the solve completed before the kill;" \
       "no mid-search resume was exercised (see build/epn_kill_run.log)" >&2
  exit 1
fi
build/examples/milp_solve build/epn_ci_model.lp --threads=1 \
  --checkpoint=build/epn_resume.ck --resume > build/epn_resume.log
grep -q '^resume: checkpoint loaded$' build/epn_resume.log
ref_obj=$(grep '^objective:' build/epn_ref.log)
res_obj=$(grep '^objective:' build/epn_resume.log)
if [ "$ref_obj" != "$res_obj" ] || [ -z "$ref_obj" ]; then
  echo "FAIL: resumed objective '$res_obj' != uninterrupted '$ref_obj'" >&2
  exit 1
fi
echo "kill/resume: resumed run reproduced the uninterrupted optimum ($ref_obj)"

echo "=== serve: resilient exploration service drill ==="
# Three sub-drills against the archex_serve daemon (docs/serving.md):
#   A. isolation + deadlines — eight concurrent requests through a 2-worker
#      pool: a persistently poisoned request must fail alone, a
#      deadline-bounded hard knapsack must come back as a *degraded* anytime
#      answer with a finite bound gap, and every untouched sibling must
#      report the bit-identical objective and node count of an unloaded
#      solo run (17-significant-digit JSON round trip makes string equality
#      the float-exactness check).
#   B. load shedding — a 1-worker/2-slot daemon behind a long blocker:
#      droppable siblings are shed oldest-first with explicit
#      `rejected`/`shed` responses, never silent drops, and the newest
#      arrivals still complete.
#   C. graceful drain — SIGTERM mid-solve checkpoints the in-flight search,
#      the shutdown line names the resumable file, and a *fresh* daemon
#      resuming it reproduces the uninterrupted run's objective.
# The knapsack instances come from tools/gen_knapsack_lp.py: deterministic,
# strongly correlated (LP bounds uninformative, so hardness scales with n).
mkdir -p build/serve_drill
rm -f build/serve_drill/*
for s in 11 12 13 14 15 16; do
  python3 tools/gen_knapsack_lp.py 20 "$s" > "build/serve_drill/sib$s.lp"
done
python3 tools/gen_knapsack_lp.py 70 3 9 > build/serve_drill/hard.lp

# Unloaded solo references for the bit-exactness checks (1 worker, nothing
# else in flight) — the hard instance doubles as drill C's uninterrupted run.
for s in 11 12 13 14 15 16; do
  printf '{"id":"sib%s","lp_file":"build/serve_drill/sib%s.lp"}\n' "$s" "$s"
done > build/serve_drill/solo.ndjson
printf '{"id":"hard","lp_file":"build/serve_drill/hard.lp"}\n' \
  >> build/serve_drill/solo.ndjson
build/tools/archex_batch --workers=1 build/serve_drill/solo.ndjson \
  > build/serve_drill/solo_out.ndjson

# --- A: mixed concurrent batch; stdin EOF = graceful close (finish all) ---
{
  printf '{"id":"anytime","lp_file":"build/serve_drill/hard.lp","deadline_ms":500}\n'
  printf '{"id":"poison","lp_file":"build/serve_drill/sib11.lp","inject":"nan-pivot:2:0:1000000000","retries":0}\n'
  for s in 11 12 13 14 15 16; do
    printf '{"id":"sib%s","lp_file":"build/serve_drill/sib%s.lp"}\n' "$s" "$s"
  done
  printf '{"op":"metrics"}\n'
} > build/serve_drill/mixed.ndjson
build/tools/archex_serve --workers=2 < build/serve_drill/mixed.ndjson \
  > build/serve_drill/mixed_out.ndjson

# --- B: tiny queue behind a blocker; droppable siblings must shed ---
{
  printf '{"id":"blocker","lp_file":"build/serve_drill/hard.lp","deadline_ms":1500}\n'
  for s in 11 12 13 14; do
    printf '{"id":"shed%s","lp_file":"build/serve_drill/sib%s.lp","droppable":true}\n' "$s" "$s"
  done
} > build/serve_drill/shed.ndjson
build/tools/archex_serve --workers=1 --queue=2 < build/serve_drill/shed.ndjson \
  > build/serve_drill/shed_out.ndjson

# --- C: SIGTERM mid-solve -> checkpoint -> resume in a fresh daemon ---
mkfifo build/serve_drill/in
build/tools/archex_serve --workers=1 < build/serve_drill/in \
  > build/serve_drill/drain_out.ndjson &
serve_pid=$!
exec 3> build/serve_drill/in
printf '{"id":"drainme","lp_file":"build/serve_drill/hard.lp","checkpoint":"build/serve_drill/drain.ck"}\n' >&3
sleep 1.5  # past several 0.25 s checkpoint intervals, well before the ~9 s solve ends
kill -TERM "$serve_pid"
wait "$serve_pid"
exec 3>&-
if [ ! -f build/serve_drill/drain.ck ]; then
  echo "FAIL: serve drill: no checkpoint written before SIGTERM" >&2
  exit 1
fi
printf '{"id":"resumed","lp_file":"build/serve_drill/hard.lp","checkpoint":"build/serve_drill/drain.ck","resume":true}\n' |
  build/tools/archex_batch --workers=1 - > build/serve_drill/resume_out.ndjson

python3 - build/serve_drill <<'EOF'
import json, math, sys
d = sys.argv[1]
def load(name):
    out = {}
    with open(f"{d}/{name}.ndjson") as f:
        for line in f:
            j = json.loads(line)
            out[j.get("id") or j.get("op")] = j
    return out
solo, mixed = load("solo_out"), load("mixed_out")
sibs = [f"sib{s}" for s in (11, 12, 13, 14, 15, 16)]

# A: fault isolation — the poisoned request fails; its siblings are exact.
assert mixed["poison"]["status"] == "error", mixed["poison"]
assert not mixed["poison"]["ok"]
for s in sibs:
    assert mixed[s]["status"] == "optimal", mixed[s]
    assert mixed[s]["objective"] == solo[s]["objective"], (s, mixed[s], solo[s])
    assert mixed[s]["nodes"] == solo[s]["nodes"], (s, mixed[s], solo[s])
# A: anytime degradation — usable incumbent, finite positive bound gap.
a = mixed["anytime"]
assert a["status"] == "degraded" and a["ok"] and a["degraded"], a
assert math.isfinite(a["gap"]) and a["gap"] > 0, a
assert a["total_ms"] < 5000, a  # the deadline actually bounded the request
# A: the daemon exposes its serve metrics and exits via the EOF close path.
assert "archex_serve_requests_total" in mixed["metrics"]["prometheus"]
assert mixed["shutdown"]["reason"] == "eof"

# B: explicit shedding — oldest droppables rejected, newest completes.
shed = load("shed_out")
rejected = [j for j in shed.values() if j.get("status") == "rejected"]
assert len(rejected) >= 2, shed
assert all(j["reason"] == "shed" for j in rejected), rejected
assert shed["shed14"]["status"] == "optimal", shed["shed14"]
assert shed["shed14"]["objective"] == solo["sib14"]["objective"]
assert shed["blocker"]["status"] in ("degraded", "timeout"), shed["blocker"]

# C: drain checkpointed the in-flight solve and named the file; the resumed
# run reproduces the uninterrupted objective.
drain = load("drain_out")
dm = drain["drainme"]
assert dm["status"] == "preempted" and dm["resumable"], dm
assert drain["shutdown"]["reason"] == "sigterm", drain["shutdown"]
assert drain["shutdown"]["preempted"] == 1
assert dm["checkpoint"] in drain["shutdown"]["checkpoints"]
resumed = load("resume_out")["resumed"]
assert resumed["status"] == "optimal", resumed
assert abs(resumed["objective"] - load("solo_out")["hard"]["objective"]) < 1e-9, (
    resumed, solo["hard"])
print("serve drill: isolation, anytime deadline, shedding, and drain/resume ok")
EOF

echo "=== serve: compiled sweep drill ==="
# The three-stage pipeline (docs/pipeline.md) over the wire: compile the
# tiny EPN spec once, re-request it (must be an LRU hit with the same
# fingerprint), run a 20-scenario cost-perturbation sweep against the
# cached artifact (warm count must be > 0), and check every sweep objective
# against a solo cold encode+solve of the same scenario through a
# cache-disabled daemon (--compiled-cache=0 makes each request pay the full
# naive path).
mkdir -p build/sweep_drill
python3 - > build/sweep_drill/sweep.ndjson <<'EOF'
import json
scen = [{"name": f"perturb-{i}", "edge_cost_scale": 1.0 + 0.01 * i}
        for i in range(20)]
base = {"domain": "epn", "scale": "tiny"}
print(json.dumps({"id": "c1", "op": "compile", **base}))
print(json.dumps({"id": "c2", "op": "compile", **base}))
print(json.dumps({"id": "sweep", "op": "sweep", **base, "sweep": scen}))
EOF
python3 - > build/sweep_drill/solo.ndjson <<'EOF'
import json
for i in range(20):
    print(json.dumps({"id": f"solo-{i}", "op": "solve_compiled",
                      "domain": "epn", "scale": "tiny",
                      "scenario": {"name": f"perturb-{i}",
                                   "edge_cost_scale": 1.0 + 0.01 * i}}))
EOF
# Control ops (metrics) are answered inline by the daemon, ahead of queued
# work — so drive it through a FIFO and only ask for the metrics snapshot
# once the sweep response has landed in the output file.
rm -f build/sweep_drill/in
mkfifo build/sweep_drill/in
build/tools/archex_serve --workers=1 --compiled-cache=2 \
  < build/sweep_drill/in > build/sweep_drill/sweep_out.ndjson &
sweep_pid=$!
exec 3> build/sweep_drill/in
cat build/sweep_drill/sweep.ndjson >&3
for _ in $(seq 600); do
  grep -q '"id":"sweep"' build/sweep_drill/sweep_out.ndjson 2>/dev/null && break
  sleep 0.2
done
printf '{"op":"metrics"}\n' >&3
exec 3>&-
wait "$sweep_pid"
build/tools/archex_batch --workers=2 --compiled-cache=0 \
  build/sweep_drill/solo.ndjson > build/sweep_drill/solo_out.ndjson

python3 - build/sweep_drill <<'EOF'
import json, sys
d = sys.argv[1]
def load(name):
    out = {}
    with open(f"{d}/{name}.ndjson") as f:
        for line in f:
            j = json.loads(line)
            out[j.get("id") or j.get("op")] = j
    return out
sweep, solo = load("sweep_out"), load("solo_out")

# Compile once, hit on re-request: same artifact, counted by the cache.
c1, c2 = sweep["c1"], sweep["c2"]
assert c1["status"] == "compiled" and c1["cache"] == "miss", c1
assert c2["status"] == "compiled" and c2["cache"] == "hit", c2
assert c1["fingerprint"] == c2["fingerprint"], (c1, c2)

# The sweep rode the cached artifact and warm-started its tail.
sw = sweep["sweep"]
assert sw["ok"] and sw["cache"] == "hit", sw
assert sw["fingerprint"] == c1["fingerprint"], (sw, c1)
assert len(sw["scenarios"]) == 20, len(sw["scenarios"])
assert sw["warm_solves"] > 0 and sw["cold_solves"] >= 1, sw
m = sweep["metrics"]["prometheus"]
assert "archex_serve_compile_cache_hits_total 2" in m, m
assert "archex_serve_sweep_warm_total" in m, m

# Every warm objective matches the solo cold encode+solve of its scenario.
for i, s in enumerate(sw["scenarios"]):
    assert s["ok"], s
    ref = solo[f"solo-{i}"]
    assert ref["ok"], ref
    tol = 1e-6 * max(1.0, abs(ref["objective"]))
    assert abs(s["objective"] - ref["objective"]) <= tol, (i, s, ref)
print("sweep drill: compile-once cache hit, warm sweep, objectives match cold")
EOF

echo "=== asan: configure + build (ASan + UBSan, -Werror) ==="
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"

echo "=== asan: ctest (full suite) ==="
ctest --preset asan -j "$(nproc)"

echo "=== asan: focused fault-injection + checkpoint re-run ==="
# Already part of the full suite above; re-run focused so a sanitizer hit in
# the resilience machinery is attributed to this leg directly.
build-asan/tests/archex_tests \
  --gtest_filter='FaultPlan*:RecoveryLadder*:CheckpointTest*:DeadlineArming*:KernelCrossCheck*'

echo "=== asan: fault injection against the sparse LU kernel ==="
# Drive the singular-refactorization and NaN-pivot sites through the LU
# path end to end under ASan/UBSan: the recovery ladder must absorb both and
# the independent certifier must still sign off (--certify gates the exit).
build-asan/examples/milp_solve build/epn_ci_model.lp --threads=1 \
  --inject=singular:300 --certify > /dev/null
build-asan/examples/milp_solve build/epn_ci_model.lp --threads=1 \
  --inject=nan-pivot:200 --certify > /dev/null
echo "asan fault injection: LU-path singular + nan-pivot absorbed, certificates ok"

echo "=== tsan: configure + build ==="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

echo "=== tsan: ctest (parallel suites) ==="
ctest --preset tsan

echo "=== clang-tidy: src/ + tools/ ==="
if command -v clang-tidy > /dev/null 2>&1; then
  # The release configure exports build/compile_commands.json
  # (CMAKE_EXPORT_COMPILE_COMMANDS); .clang-tidy at the repo root holds the
  # check profile.
  find src tools -name '*.cpp' -print0 |
    xargs -0 -P "$(nproc)" -n 4 clang-tidy -p build --quiet
else
  echo "clang-tidy not installed: skipping the tidy leg (config: .clang-tidy)"
fi

echo "=== ci: all green ==="
