#!/usr/bin/env bash
# CI entry point: release build + full test suite, then a ThreadSanitizer
# build running the concurrency-focused suites (the parallel branch & bound
# pool, basis transplants, and reoptimization repair paths).
set -euo pipefail
cd "$(dirname "$0")"

echo "=== release: configure + build ==="
cmake --preset release
cmake --build --preset release -j "$(nproc)"

echo "=== release: ctest (full suite) ==="
ctest --preset release -j "$(nproc)"

echo "=== tsan: configure + build ==="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

echo "=== tsan: ctest (parallel suites) ==="
ctest --preset tsan

echo "=== ci: all green ==="
