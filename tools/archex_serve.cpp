/// \file archex_serve.cpp
/// The exploration daemon: newline-delimited JSON requests on stdin, one
/// JSON response per line on stdout (interleaved in completion order —
/// correlate by `id`). A thin shell over serve::ExplorationService; all
/// lifecycle policy lives in the library. docs/serving.md documents the
/// protocol.
///
/// Control ops besides requests:
///   {"op":"metrics"}  -> {"op":"metrics","prometheus":"..."}
///   {"op":"ping"}     -> {"op":"pong"}
///   {"op":"drain"}    -> same as SIGTERM, then exits
///
/// Compiled-pipeline ops (docs/pipeline.md) parse as ordinary requests:
///   {"op":"compile","id":...,"domain":"epn"}
///       -> encode once, cache by content fingerprint, report "hit"/"miss"
///   {"op":"solve_compiled","id":...,"domain":"epn","scenario":{...}}
///       -> solve one scenario against the cached artifact
///   {"op":"sweep","id":...,"domain":"epn","sweep":[{...},...]}
///       -> solve a scenario family, warm-starting each solve from the
///          previous optimal basis; per-scenario results + warm/cold counts
///
/// SIGTERM (or EOF after `drain`) triggers the graceful drain: queued
/// requests get explicit `rejected`/`drained` responses, in-flight solves
/// are preempted and checkpoint, and the final line names the resumable
/// checkpoint files:
///   {"op":"shutdown","reason":"sigterm","shed":N,"preempted":N,
///    "checkpoints":[...]}

#include <csignal>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace {

volatile std::sig_atomic_t g_term = 0;

void on_term(int) { g_term = 1; }

std::mutex g_out_mu;

void emit(const archex::serve::Json& j) {
  const std::string line = j.dump();
  std::lock_guard<std::mutex> lock(g_out_mu);
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

bool parse_flag(const std::string& arg, const char* name, std::string& out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: archex_serve [--workers=N] [--queue=N] [--retries=N]\n"
               "                    [--checkpoint-dir=PATH] [--backoff-ms=X]\n"
               "                    [--compiled-cache=N]\n"
               "reads NDJSON requests on stdin, writes NDJSON responses on "
               "stdout\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using archex::serve::ExplorationService;
  using archex::serve::Json;
  using archex::serve::Request;
  using archex::serve::Response;
  using archex::serve::ServiceOptions;

  ServiceOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    try {
      if (parse_flag(arg, "workers", v)) opts.workers = std::stoi(v);
      else if (parse_flag(arg, "queue", v)) opts.queue_capacity = std::stoul(v);
      else if (parse_flag(arg, "retries", v)) opts.default_retries = std::stoi(v);
      else if (parse_flag(arg, "checkpoint-dir", v)) opts.checkpoint_dir = v;
      else if (parse_flag(arg, "backoff-ms", v)) opts.backoff_base_ms = std::stod(v);
      else if (parse_flag(arg, "compiled-cache", v)) opts.compiled_cache_capacity = std::stoul(v);
      else return usage();
    } catch (const std::exception&) {
      return usage();
    }
  }

  // No SA_RESTART: SIGTERM must interrupt the blocking stdin read so the
  // main loop can fall through to the drain.
  struct sigaction sa = {};
  sa.sa_handler = on_term;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  ExplorationService service(opts);
  std::vector<std::thread> writers;  // one waiter per in-flight request
  bool drain_requested = false;

  std::string line;
  while (g_term == 0 && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::string err;
    const auto doc = Json::parse(line, &err);
    if (!doc) {
      Json e;
      e["op"] = "error";
      e["reason"] = "bad json: " + err;
      emit(e);
      continue;
    }
    const std::string op = doc->get_string("op");
    if (op == "ping") {
      Json pong;
      pong["op"] = "pong";
      emit(pong);
      continue;
    }
    if (op == "metrics") {
      Json m;
      m["op"] = "metrics";
      m["prometheus"] = service.prometheus();
      emit(m);
      continue;
    }
    if (op == "drain") {
      drain_requested = true;
      break;
    }
    auto req = Request::from_json(*doc, &err);
    if (!req) {
      Json e;
      e["op"] = "error";
      e["id"] = doc->get_string("id");
      e["reason"] = err;
      emit(e);
      continue;
    }
    std::future<Response> fut = service.submit(std::move(*req));
    writers.emplace_back(
        [f = std::move(fut)]() mutable { emit(f.get().to_json()); });
  }

  const bool terminating = g_term != 0 || drain_requested;
  if (terminating) {
    // Drain: shed the queue with explicit rejections, preempt in-flight
    // solves (they checkpoint), then report what is resumable.
    const ExplorationService::DrainReport rep = service.drain();
    for (std::thread& w : writers) {
      if (w.joinable()) w.join();
    }
    Json s;
    s["op"] = "shutdown";
    s["reason"] = drain_requested ? "drain" : "sigterm";
    s["shed"] = static_cast<std::int64_t>(rep.shed);
    s["preempted"] = static_cast<std::int64_t>(rep.preempted);
    Json::Array cks;
    for (const std::string& ck : rep.checkpoints) cks.push_back(Json(ck));
    s["checkpoints"] = Json(std::move(cks));
    emit(s);
    return 0;
  }

  // EOF: finish everything already admitted, then exit cleanly.
  service.close();
  for (std::thread& w : writers) {
    if (w.joinable()) w.join();
  }
  Json s;
  s["op"] = "shutdown";
  s["reason"] = "eof";
  emit(s);
  return 0;
}
