#!/usr/bin/env bash
# Guarded benchmark runner: runs a google-benchmark binary with JSON output
# and refuses to publish the result unless it was produced by a Release
# (NDEBUG) build. This is the provenance gate behind the committed
# BENCH_*.json baselines — an earlier baseline was silently recorded from a
# debug build ("context.library_build_type": "debug") and is useless as a
# comparison point; this runner makes that mistake impossible.
#
# Usage: tools/run_bench.sh <bench-binary> <output.json> [benchmark args...]
#
# The result is written to a temp file first and only moved to <output.json>
# after the provenance check passes, so a rejected run never clobbers a
# committed baseline.
set -euo pipefail

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <bench-binary> <output.json> [benchmark args...]" >&2
  exit 2
fi

bin=$1
out=$2
shift 2

tmp="${out}.tmp"
"$bin" --benchmark_out="$tmp" --benchmark_out_format=json "$@"

# Machine / revision provenance for tools/bench_diff.py: the diff tool
# refuses to compare recordings taken on different CPUs, and the SHA says
# which commit a baseline measures. Recorded best-effort (empty outside a
# git checkout) — only the CPU model gates comparisons.
git_sha=$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || true)
if [ -n "$git_sha" ] && ! git -C "$(dirname "$0")/.." diff --quiet HEAD 2>/dev/null; then
  git_sha="${git_sha}-dirty"
fi
cpu_model=$(sed -n 's/^model name[^:]*: //p' /proc/cpuinfo 2>/dev/null | head -1)

python3 - "$tmp" "$git_sha" "$cpu_model" <<'EOF'
import json
import sys

path, git_sha, cpu_model = sys.argv[1], sys.argv[2], sys.argv[3]
with open(path) as f:
    data = json.load(f)
# `archex_build_type` is stamped by the bench binary's own main() from
# NDEBUG. The stock `library_build_type` is NOT usable here: it records how
# the system libbenchmark was compiled (debug on this image), not how the
# benchmark binary was.
ctx = data.setdefault("context", {})
build_type = ctx.get("archex_build_type", "unknown")
if build_type != "release":
    print(
        f"FAIL: benchmark provenance: {path} was produced by a "
        f"'{build_type}' build of the bench binary, not 'release'. Rebuild "
        "with the release preset (cmake --preset release) before recording "
        "BENCH_*.json.",
        file=sys.stderr,
    )
    sys.exit(1)
ctx["archex_git_sha"] = git_sha
ctx["archex_cpu_model"] = cpu_model
with open(path, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")
print(f"bench provenance ok: archex_build_type=release "
      f"sha={git_sha or '?'} cpu={cpu_model or '?'} ({path})")
EOF

mv "$tmp" "$out"
