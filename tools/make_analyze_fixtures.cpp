/// \file make_analyze_fixtures.cpp
/// Generates the seeded analyzer fixtures under data/analyze/ that the
/// ci.sh structural-analysis leg gates on:
///
///   * decomposable.lp      — two independent sub-models (>= 2 components);
///   * static_infeasible.lp — a three-row tightening chain interval
///                            propagation alone proves infeasible;
///   * symmetric.lp         — four interchangeable binaries (one column
///                            orbit) and a symmetric row pair;
///   * infeasible_epn.lp    — the real small EPN exploration plus one
///                            contradictory requirement (`no DC->Load
///                            connections` against `each load connects to
///                            exactly one DC bus`), with a .origins sidecar
///                            mapping every row to its emitting pattern so
///                            the IIS is 100% attributable.
///
/// The fixtures are committed; rerun after changing the EPN encoding:
///   make_analyze_fixtures [output-dir]
#include <cstdio>
#include <fstream>
#include <string>

#include "arch/patterns/connection.hpp"
#include "check/report_json.hpp"
#include "domains/epn.hpp"
#include "milp/model.hpp"

using namespace archex;

namespace {

void write_model(const milp::Model& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  model.write_lp(out);
  std::printf("wrote %s (%zu rows, %zu cols)\n", path.c_str(),
              model.num_constraints(), model.num_vars());
}

milp::Model decomposable() {
  milp::Model m;
  const milp::VarId x1 = m.add_binary("x1");
  const milp::VarId x2 = m.add_binary("x2");
  const milp::VarId x3 = m.add_binary("x3");
  const milp::VarId y1 = m.add_binary("y1");
  const milp::VarId y2 = m.add_binary("y2");
  const milp::VarId y3 = m.add_binary("y3");
  m.add_constraint(x1 + x2, milp::Sense::LE, 1.0, "x_cap");
  m.add_constraint(x2 + x3, milp::Sense::GE, 1.0, "x_cover");
  m.add_constraint(y1 + y2, milp::Sense::LE, 1.0, "y_cap");
  m.add_constraint(y2 + y3, milp::Sense::GE, 1.0, "y_cover");
  m.set_objective(x1 * 1.0 + x2 * 2.0 + x3 * 3.0 + y1 * 1.0 + y2 * 2.0 + y3 * 3.0);
  return m;
}

milp::Model static_infeasible() {
  // A chain only reachable by iterated propagation: r1 caps x, r2 pushes the
  // cap onto y, r3 demands more of y than the propagated cap allows.
  milp::Model m;
  const milp::VarId x = m.add_continuous(0.0, 100.0, "x");
  const milp::VarId y = m.add_continuous(0.0, 100.0, "y");
  const milp::VarId z = m.add_continuous(0.0, 100.0, "z");
  m.add_constraint(x * 1.0, milp::Sense::LE, 3.0, "cap_x");
  m.add_constraint(y - x, milp::Sense::LE, 0.0, "y_below_x");
  m.add_constraint(y * 1.0, milp::Sense::GE, 5.0, "demand_y");
  m.add_constraint(z - y, milp::Sense::LE, 10.0, "slack_z");  // benign
  m.set_objective(x + y + z * 1.0);
  return m;
}

milp::Model symmetric() {
  milp::Model m;
  const milp::VarId b1 = m.add_binary("b1");
  const milp::VarId b2 = m.add_binary("b2");
  const milp::VarId b3 = m.add_binary("b3");
  const milp::VarId b4 = m.add_binary("b4");
  m.add_constraint(b1 + b2 + b3 + b4, milp::Sense::GE, 2.0, "cover");
  m.add_constraint(b1 + b2, milp::Sense::LE, 1.0, "pair_a");
  m.add_constraint(b3 + b4, milp::Sense::LE, 1.0, "pair_b");
  m.set_objective(b1 + b2 + b3 + b4);
  return m;
}

void infeasible_epn(const std::string& dir) {
  const domains::epn::EpnConfig cfg = domains::epn::small_config();
  const std::unique_ptr<Problem> p = domains::epn::make_problem(cfg);
  // Contradicts the spec's "each load connects to exactly one DC bus": at
  // most zero DC->Load edges per load. The resulting conflict is a two-row
  // IIS per load, both rows pattern-attributed.
  p->apply(patterns::NConnections({"DCBus"}, {"Load"}, 0, milp::Sense::LE,
                                  /*only_if_used=*/false,
                                  patterns::CountSide::kTo));
  p->model().set_objective(p->cost_expression(), milp::ObjectiveSense::Minimize);
  write_model(p->model(), dir + "/infeasible_epn.lp");

  std::vector<std::string> origins(p->model().num_constraints());
  for (std::size_t i = 0; i < origins.size(); ++i) {
    origins[i] = p->origin_of_row(i);
  }
  check::write_origins_file(dir + "/infeasible_epn.lp.origins", origins);
  std::printf("wrote %s/infeasible_epn.lp.origins (%zu rows)\n", dir.c_str(),
              origins.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "data/analyze";
  write_model(decomposable(), dir + "/decomposable.lp");
  write_model(static_infeasible(), dir + "/static_infeasible.lp");
  write_model(symmetric(), dir + "/symmetric.lp");
  infeasible_epn(dir);
  return 0;
}
