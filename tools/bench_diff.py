#!/usr/bin/env python3
"""Compares two google-benchmark JSON recordings and fails on regressions.

Usage: bench_diff.py <baseline.json> <candidate.json>
           [--threshold=PCT] [--threshold=NAME=PCT] [--strict]

The perf-regression leg behind the committed BENCH_*.json baselines. Both
files must carry the provenance stamped by tools/run_bench.sh:

  * `archex_build_type` must be "release" on BOTH sides — a debug recording
    is not a comparison point, and this is a hard failure;
  * `archex_cpu_model` must match — wall-clock times from different machines
    are not comparable. A mismatch (or a missing stamp on either side, e.g. a
    baseline recorded before stamping existed) SKIPS the comparison with exit
    0 so CI stays green on other hardware; pass --strict to make it exit 1
    (for the machine that owns the baseline).

Comparison: per benchmark name, the minimum `real_time` over repetitions
(min is the noise-robust statistic for "how fast can this go"). A benchmark
regresses when the candidate is more than PCT slower than the baseline
(default 15). Per-benchmark overrides: --threshold=BM_LpSolve/1000=25.
Benchmarks present on only one side are reported but never fail the run.

Exit code 0 on pass/skip, 1 on any regression or provenance failure, 2 on
usage errors.
"""
import json
import sys

DEFAULT_THRESHOLD = 15.0


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot read {path}: {exc}", file=sys.stderr)
        return None


# time_unit -> nanoseconds; google-benchmark may record sides differently.
UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def best_times(data, path):
    """name -> min real_time in ns over plain iterations (no aggregates)."""
    best = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = b.get("name")
        t = b.get("real_time")
        unit = b.get("time_unit", "ns")
        if name is None or not isinstance(t, (int, float)):
            continue
        if unit not in UNIT_NS:
            print(f"FAIL: {path}: unknown time_unit '{unit}' for {name}",
                  file=sys.stderr)
            return None
        ns = t * UNIT_NS[unit]
        if name not in best or ns < best[name]:
            best[name] = ns
    return best


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.3g}{unit}"
    return f"{ns:.3g}ns"


def main(argv):
    default_threshold = DEFAULT_THRESHOLD
    per_bench = {}
    strict = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            spec = arg.split("=", 1)[1]
            if "=" in spec:
                name, pct = spec.rsplit("=", 1)
                try:
                    per_bench[name] = float(pct)
                except ValueError:
                    print(f"bad threshold: {arg}", file=sys.stderr)
                    return 2
            else:
                try:
                    default_threshold = float(spec)
                except ValueError:
                    print(f"bad threshold: {arg}", file=sys.stderr)
                    return 2
        elif arg == "--strict":
            strict = True
        elif arg.startswith("-"):
            print(f"unknown option: {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    base_path, cand_path = paths

    base = load(base_path)
    cand = load(cand_path)
    if base is None or cand is None:
        return 1

    # Provenance gates (see module docstring).
    for path, data in ((base_path, base), (cand_path, cand)):
        bt = data.get("context", {}).get("archex_build_type", "unknown")
        if bt != "release":
            print(f"FAIL: {path}: archex_build_type is '{bt}', not 'release'"
                  " — record with tools/run_bench.sh from a release build",
                  file=sys.stderr)
            return 1
    base_cpu = base.get("context", {}).get("archex_cpu_model") or ""
    cand_cpu = cand.get("context", {}).get("archex_cpu_model") or ""
    if not base_cpu or not cand_cpu or base_cpu != cand_cpu:
        why = ("missing archex_cpu_model stamp"
               if not base_cpu or not cand_cpu
               else f"different CPUs ('{base_cpu}' vs '{cand_cpu}')")
        if strict:
            print(f"FAIL: cross-machine comparison refused: {why}",
                  file=sys.stderr)
            return 1
        print(f"SKIP: bench_diff: {why}; recordings are not comparable "
              "(re-record the baseline on this machine, or use --strict "
              "on the baseline's machine)")
        return 0

    base_times = best_times(base, base_path)
    cand_times = best_times(cand, cand_path)
    if base_times is None or cand_times is None:
        return 1
    if not base_times:
        print(f"FAIL: {base_path}: no benchmarks", file=sys.stderr)
        return 1

    regressions = []
    compared = 0
    for name in sorted(base_times):
        if name not in cand_times:
            print(f"  note: {name} only in baseline")
            continue
        compared += 1
        b, c = base_times[name], cand_times[name]
        threshold = per_bench.get(name, default_threshold)
        delta = (c - b) / b * 100.0 if b > 0 else 0.0
        tag = "ok"
        if delta > threshold:
            tag = "REGRESSION"
            regressions.append((name, delta, threshold))
        elif delta < -threshold:
            tag = "improved"
        print(f"  {name}: {fmt_ns(b)} -> {fmt_ns(c)} "
              f"({delta:+.1f}%, threshold {threshold:.0f}%) {tag}")
    for name in sorted(set(cand_times) - set(base_times)):
        print(f"  note: {name} only in candidate")

    if compared == 0:
        print("FAIL: no common benchmarks to compare", file=sys.stderr)
        return 1
    if regressions:
        for name, delta, threshold in regressions:
            print(f"FAIL: {name} regressed {delta:+.1f}% "
                  f"(threshold {threshold:.0f}%)", file=sys.stderr)
        return 1
    print(f"OK bench_diff: {compared} benchmark(s) within threshold "
          f"({base_path} -> {cand_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
