/// \file archex_batch.cpp
/// Batch driver: feeds a file of NDJSON exploration requests through an
/// ExplorationService worker pool and prints one response per line in
/// *request order* (deterministic output for diffing), plus a summary on
/// stderr. Exit code 0 unless any request ended in `error`. Lines may be
/// classic explore requests or the compiled-pipeline ops ("compile",
/// "solve_compiled", "sweep" — docs/pipeline.md); the service routes by
/// "op", so mixed batches work.
///
///   archex_batch [--workers=N] [--queue=N] [--retries=N]
///                [--checkpoint-dir=PATH] [--backoff-ms=X] requests.ndjson
///
/// "-" reads requests from stdin.

#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "serve/service.hpp"

namespace {

bool parse_flag(const std::string& arg, const char* name, std::string& out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: archex_batch [--workers=N] [--queue=N] [--retries=N]\n"
               "                    [--checkpoint-dir=PATH] [--backoff-ms=X]\n"
               "                    [--compiled-cache=N]\n"
               "                    requests.ndjson  ('-' = stdin)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using archex::serve::ExplorationService;
  using archex::serve::Json;
  using archex::serve::Request;
  using archex::serve::Response;
  using archex::serve::ResponseStatus;
  using archex::serve::ServiceOptions;

  ServiceOptions opts;
  std::string input;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    try {
      if (parse_flag(arg, "workers", v)) opts.workers = std::stoi(v);
      else if (parse_flag(arg, "queue", v)) opts.queue_capacity = std::stoul(v);
      else if (parse_flag(arg, "retries", v)) opts.default_retries = std::stoi(v);
      else if (parse_flag(arg, "checkpoint-dir", v)) opts.checkpoint_dir = v;
      else if (parse_flag(arg, "backoff-ms", v)) opts.backoff_base_ms = std::stod(v);
      else if (parse_flag(arg, "compiled-cache", v)) opts.compiled_cache_capacity = std::stoul(v);
      else if (arg.rfind("--", 0) == 0) return usage();
      else if (input.empty()) input = arg;
      else return usage();
    } catch (const std::exception&) {
      return usage();
    }
  }
  if (input.empty()) return usage();

  std::ifstream file;
  std::istream* in = &std::cin;
  if (input != "-") {
    file.open(input);
    if (!file) {
      std::fprintf(stderr, "archex_batch: cannot open '%s'\n", input.c_str());
      return 2;
    }
    in = &file;
  }

  ExplorationService service(opts);
  std::vector<std::string> ids;
  std::vector<std::future<Response>> futures;
  std::string line;
  int line_no = 0;
  int schema_errors = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string err;
    const auto doc = Json::parse(line, &err);
    auto req = doc ? Request::from_json(*doc, &err)
                   : std::optional<Request>{};
    if (!req) {
      std::fprintf(stderr, "archex_batch: line %d: %s\n", line_no,
                   err.c_str());
      ++schema_errors;
      continue;
    }
    ids.push_back(req->id);
    futures.push_back(service.submit(std::move(*req)));
  }

  int errors = schema_errors;
  std::size_t ok = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Response r = futures[i].get();
    if (r.status == ResponseStatus::Error) ++errors;
    if (r.ok) ++ok;
    std::puts(r.to_json().dump().c_str());
  }
  std::fflush(stdout);
  std::fprintf(stderr, "archex_batch: %zu request(s), %zu ok, %d error(s)\n",
               futures.size(), ok, errors);
  return errors == 0 ? 0 : 1;
}
