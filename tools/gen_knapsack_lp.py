#!/usr/bin/env python3
"""Deterministic knapsack LP generator for serve drills and load tests.

Emits a strongly correlated 0/1 knapsack in CPLEX LP format (the dialect
milp_solve / archex_serve parse): values are weights plus a constant offset,
which defeats the LP-bound pruning and forces a genuine branch-and-bound
search, so instance hardness scales smoothly with `n`. The built-in LCG makes
the instance a pure function of (n, seed) — no dependence on Python's
`random` module internals across versions.

Usage: gen_knapsack_lp.py N [SEED] [SCALE]

  N      number of items
  SEED   LCG seed (default 1)
  SCALE  weight scale factor (default 1); larger coefficients make bounds
         less informative and the same N noticeably harder

The LP is written to stdout.
"""
import sys


def lcg(seed):
    # Numerical Recipes LCG: enough entropy for weights, fully portable.
    state = seed & 0xFFFFFFFF
    while True:
        state = (1664525 * state + 1013904223) & 0xFFFFFFFF
        yield state


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    n = int(sys.argv[1])
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    scale = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    rng = lcg(seed)
    weights = [(10 + next(rng) % 21) * scale for _ in range(n)]
    values = [w + 5 * scale + (j % 7) for j, w in enumerate(weights)]
    cap = sum(weights) // 2

    out = sys.stdout
    out.write("\\ strongly correlated knapsack n=%d seed=%d scale=%d\n"
              % (n, seed, scale))
    out.write("Maximize\n obj: ")
    out.write(" + ".join("%d x%d" % (values[j], j) for j in range(n)))
    out.write("\nSubject To\n cap: ")
    out.write(" + ".join("%d x%d" % (weights[j], j) for j in range(n)))
    out.write(" <= %d\n" % cap)
    out.write("Binaries\n ")
    out.write(" ".join("x%d" % j for j in range(n)))
    out.write("\nEnd\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
