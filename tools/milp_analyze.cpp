/// \file milp_analyze.cpp
/// Whole-model structural analyzer CLI: parses CPLEX-LP files and runs the
/// check::analyze pass pipeline (decompose / propagate / symmetry / iis)
/// over them. Where `milp_lint` flags per-row defects, this reports global
/// structure: independent sub-models, statically provable infeasibility,
/// interchangeable columns, and — for infeasible models — the irreducible
/// conflict, attributed to its emitting pattern when a `.origins` sidecar
/// (or --origins=FILE) supplies row provenance.
///
/// Usage: milp_analyze <model.lp>... [--json] [--passes=a,b,...]
///                     [--origins=FILE] [--iis-oracle=auto|propagation|lp]
///
/// A sidecar `<model>.origins` next to each input is picked up automatically
/// (the explicit --origins=FILE flag overrides it, applying to all inputs).
///
/// Exit codes: 0 no static infeasibility, 2 usage/parse error, 1 at least
/// one model proven infeasible (the analysis still prints — the IIS is the
/// point).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/analyze.hpp"
#include "check/report_json.hpp"
#include "milp/lp_format.hpp"

using namespace archex;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  check::AnalyzeOptions opts;
  std::string origins_flag;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") json = true;
    else if (a.rfind("--passes=", 0) == 0) opts.passes = split_csv(a.substr(9));
    else if (a.rfind("--origins=", 0) == 0) origins_flag = a.substr(10);
    else if (a.rfind("--iis-oracle=", 0) == 0) {
      const std::string v = a.substr(13);
      if (v == "auto") opts.iis.oracle = check::IisOracle::Auto;
      else if (v == "propagation") opts.iis.oracle = check::IisOracle::Propagation;
      else if (v == "lp") opts.iis.oracle = check::IisOracle::Lp;
      else {
        std::fprintf(stderr, "unknown IIS oracle: %s\n", v.c_str());
        return 2;
      }
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 2;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: milp_analyze <model.lp>... [--json] [--passes=a,b,...]"
                 " [--origins=FILE] [--iis-oracle=auto|propagation|lp]\n"
                 "registered passes:");
    for (const std::string& p : check::registered_analysis_passes()) {
      std::fprintf(stderr, " %s", p.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  bool any_infeasible = false;
  for (const std::string& file : files) {
    try {
      const milp::Model model = milp::parse_lp_file(file);
      const check::AnalysisReport report = check::analyze(model, opts);
      if (report.proved_infeasible()) any_infeasible = true;

      std::vector<std::string> origins;
      const std::string sidecar =
          !origins_flag.empty() ? origins_flag : file + ".origins";
      if (file_exists(sidecar)) origins = check::read_origins_file(sidecar);

      if (json) {
        check::JsonReportInput in;
        in.tool = "milp_analyze";
        in.model = {file, model.num_constraints(), model.num_vars()};
        in.analysis = &report;
        if (!origins.empty()) in.row_origins = &origins;
        std::cout << check::to_json(in);
      } else {
        std::cout << "== " << file << " ==\n";
        report.print(std::cout);
        if (!origins.empty() && !report.iis.rows.empty()) {
          std::cout << "iis origins:\n";
          for (const std::int32_t r : report.iis.rows) {
            const auto idx = static_cast<std::size_t>(r);
            std::cout << "  row " << r << " [origin: "
                      << (idx < origins.size() ? origins[idx] : "unattributed")
                      << "]\n";
          }
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", file.c_str(), e.what());
      return 2;
    }
  }
  return any_infeasible ? 1 : 0;
}
