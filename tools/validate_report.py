#!/usr/bin/env python3
"""Validates an archex-check-report/1 JSON document (see check/report_json.hpp).

Usage: validate_report.py <report.json> [<report.json>...]

Checks, per file:
  * top-level object with schema == "archex-check-report/1", a tool name,
    and well-typed model/summary/findings sections;
  * every finding carries pass/rule/severity/row/col/message with the right
    JSON types, severity in {error, warning, info}, and row/col integers
    >= -1 and inside the model's dimensions;
  * the summary tallies match the findings array exactly;
  * when an `analysis` section is present (milp_analyze), its per-pass
    sub-objects are well-typed: decompose component counts consistent,
    propagate booleans/counters, symmetry orbits with size >= 2, and an IIS
    whose origins array (when present) aligns 1:1 with its rows and whose
    attribution is the recomputable fraction.

Exit code 0 on success, 1 on any violation (reported with its JSON path),
2 on usage errors.
"""
import json
import sys

SEVERITIES = {"error", "warning", "info"}
NUMBER = (int, float)


class Violation(Exception):
    pass


def need(obj, key, types, path):
    if key not in obj:
        raise Violation(f"{path}: missing key '{key}'")
    if not isinstance(obj[key], types):
        raise Violation(f"{path}.{key}: expected {types}, got {type(obj[key]).__name__}")
    return obj[key]


def check_findings(doc):
    model = need(doc, "model", dict, "$")
    rows = need(model, "rows", int, "$.model")
    cols = need(model, "cols", int, "$.model")
    need(model, "file", str, "$.model")

    findings = need(doc, "findings", list, "$")
    tally = {"error": 0, "warning": 0, "info": 0}
    for i, f in enumerate(findings):
        path = f"$.findings[{i}]"
        if not isinstance(f, dict):
            raise Violation(f"{path}: not an object")
        need(f, "pass", str, path)
        need(f, "rule", str, path)
        sev = need(f, "severity", str, path)
        if sev not in SEVERITIES:
            raise Violation(f"{path}.severity: '{sev}' not in {sorted(SEVERITIES)}")
        row = need(f, "row", int, path)
        col = need(f, "col", int, path)
        if row < -1 or row >= rows:
            raise Violation(f"{path}.row: {row} outside [-1, {rows})")
        if col < -1 or col >= cols:
            raise Violation(f"{path}.col: {col} outside [-1, {cols})")
        need(f, "message", str, path)
        if "origin" in f and not isinstance(f["origin"], str):
            raise Violation(f"{path}.origin: not a string")
        tally[sev] += 1

    summary = need(doc, "summary", dict, "$")
    expect = {
        "errors": tally["error"],
        "warnings": tally["warning"],
        "infos": tally["info"],
        "findings": len(findings),
    }
    for key, want in expect.items():
        got = need(summary, key, int, "$.summary")
        if got != want:
            raise Violation(f"$.summary.{key}: {got} != recomputed {want}")
    return rows


def check_analysis(doc, rows):
    analysis = doc.get("analysis")
    if analysis is None:
        return
    if not isinstance(analysis, dict):
        raise Violation("$.analysis: not an object")
    passes = need(analysis, "passes", list, "$.analysis")
    for p in passes:
        if not isinstance(p, str):
            raise Violation("$.analysis.passes: non-string entry")

    if "decompose" in analysis:
        d = analysis["decompose"]
        num = need(d, "num_components", int, "$.analysis.decompose")
        comps = need(d, "components", list, "$.analysis.decompose")
        if num != len(comps):
            raise Violation(f"$.analysis.decompose: num_components {num} != "
                            f"len(components) {len(comps)}")
        need(d, "unreferenced_cols", int, "$.analysis.decompose")
        for i, c in enumerate(comps):
            need(c, "rows", int, f"$.analysis.decompose.components[{i}]")
            need(c, "cols", int, f"$.analysis.decompose.components[{i}]")

    if "propagate" in analysis:
        p = analysis["propagate"]
        for key, types in (("infeasible", bool), ("converged", bool),
                           ("infeasible_row", int), ("infeasible_col", int),
                           ("passes", int), ("bounds_tightened", int),
                           ("vars_fixed", int)):
            need(p, key, types, "$.analysis.propagate")

    if "symmetry" in analysis:
        s = analysis["symmetry"]
        need(s, "refinement_rounds", int, "$.analysis.symmetry")
        for kind in ("col_orbits", "row_orbits"):
            for i, o in enumerate(need(s, kind, list, "$.analysis.symmetry")):
                path = f"$.analysis.symmetry.{kind}[{i}]"
                size = need(o, "size", int, path)
                members = need(o, "members", list, path)
                if size < 2:
                    raise Violation(f"{path}: trivial orbit (size {size}) reported")
                if len(members) > size:
                    raise Violation(f"{path}: more members listed than size")
        need(s, "recommendations", list, "$.analysis.symmetry")

    if "iis" in analysis:
        i = analysis["iis"]
        need(i, "infeasible", bool, "$.analysis.iis")
        need(i, "irreducible", bool, "$.analysis.iis")
        need(i, "oracle", str, "$.analysis.iis")
        need(i, "oracle_calls", int, "$.analysis.iis")
        iis_rows = need(i, "rows", list, "$.analysis.iis")
        for r in iis_rows:
            if not isinstance(r, int) or r < 0 or r >= rows:
                raise Violation(f"$.analysis.iis.rows: bad row index {r}")
        if "origins" in i:
            origins = i["origins"]
            if not isinstance(origins, list) or len(origins) != len(iis_rows):
                raise Violation("$.analysis.iis.origins: must align 1:1 with rows")
            attributed = sum(1 for o in origins if o and o != "unattributed")
            want = attributed / len(iis_rows) if iis_rows else 1.0
            got = need(i, "attribution", NUMBER, "$.analysis.iis")
            if abs(got - want) > 1e-9:
                raise Violation(f"$.analysis.iis.attribution: {got} != recomputed {want}")


def validate(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise Violation("$: not an object")
    schema = need(doc, "schema", str, "$")
    if schema != "archex-check-report/1":
        raise Violation(f"$.schema: unknown schema '{schema}'")
    tool = need(doc, "tool", str, "$")
    if not tool:
        raise Violation("$.tool: empty")
    rows = check_findings(doc)
    check_analysis(doc, rows)


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            validate(path)
        except Violation as v:
            print(f"FAIL {path}: {v}", file=sys.stderr)
            return 1
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            return 1
        print(f"OK {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
