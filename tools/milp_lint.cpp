/// \file milp_lint.cpp
/// Standalone model linter CLI: parses CPLEX-LP files and runs the
/// check::lint rule set over them. The static-analysis counterpart of
/// `milp_solve` — run it on any model before burning solver time on it.
///
/// Usage: milp_lint <model.lp>... [--quiet] [--no-info] [--werror]
///                  [--big-m=X] [--coef-range=X] [--json]
///
/// `--json` emits one archex-check-report/1 document per input (see
/// check/report_json.hpp) — the same schema `milp_analyze --json` uses, so
/// CI parses both tools' findings uniformly. A `.origins` sidecar next to an
/// input attributes findings to the emitting pattern.
///
/// Exit codes: 0 all models clean (at the failing severity), 1 at least one
/// finding at error severity (or warning with --werror), 2 usage/parse error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/lint.hpp"
#include "check/report_json.hpp"
#include "milp/lp_format.hpp"

using namespace archex;

int main(int argc, char** argv) {
  std::vector<std::string> files;
  check::LintOptions opts;
  bool quiet = false;
  bool werror = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    try {
      if (a == "--quiet") quiet = true;
      else if (a == "--json") json = true;
      else if (a == "--no-info") opts.report_info = false;
      else if (a == "--werror") werror = true;
      else if (a.rfind("--big-m=", 0) == 0) opts.big_m_threshold = std::stod(a.substr(8));
      else if (a.rfind("--coef-range=", 0) == 0) {
        opts.coef_range_ratio = std::stod(a.substr(13));
      } else if (!a.empty() && a[0] == '-') {
        std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
        return 2;
      } else {
        files.push_back(a);
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad value in argument: %s\n", a.c_str());
      return 2;
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: milp_lint <model.lp>... [--quiet] [--no-info]"
                 " [--werror] [--big-m=X] [--coef-range=X] [--json]\n");
    return 2;
  }

  const check::Severity fail_at =
      werror ? check::Severity::Warning : check::Severity::Error;
  bool failed = false;
  for (const std::string& file : files) {
    try {
      const milp::Model model = milp::parse_lp_file(file);
      const check::LintReport report = check::lint(model, opts);
      if (json) {
        std::vector<std::string> origins;
        if (std::ifstream(file + ".origins").good()) {
          origins = check::read_origins_file(file + ".origins");
        }
        check::JsonReportInput in;
        in.tool = "milp_lint";
        in.model = {file, model.num_constraints(), model.num_vars()};
        in.lint = &report;
        if (!origins.empty()) in.row_origins = &origins;
        std::cout << check::to_json(in);
      } else if (!quiet) {
        std::cout << "== " << file << " ==\n";
        report.print(std::cout);
      } else {
        std::cout << file << ": " << report.num_errors << " error(s), "
                  << report.num_warnings << " warning(s)\n";
      }
      if (!report.clean(fail_at)) failed = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", file.c_str(), e.what());
      return 2;
    }
  }
  return failed ? 1 : 0;
}
