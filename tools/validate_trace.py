#!/usr/bin/env python3
"""Validates a solver trace against the schemas in docs/observability.md.

Usage: validate_trace.py <trace.jsonl> [--min-workers=N]
       validate_trace.py --chrome <profile.json> [--require=name,name,...]

Default (JSONL) mode checks, in order:
  * every line is a JSON object with the common keys (t, type, worker);
  * the event type is one of the documented types — unknown types FAIL, so a
    new EventType cannot ship without a schema/doc update;
  * every type-specific required key is present with the right JSON type
    (numeric payloads may be null, the encoding of non-finite doubles);
  * timestamps are non-decreasing (the merge sorts) and non-negative;
  * exactly one solve_start and at most one solve_end;
  * node, incumbent events are present, and with --min-workers=2 (the CI
    setting for a parallel solve) steal events and >= N distinct workers.

--chrome mode validates the span profiler's Chrome trace-event export
(`milp_solve --profile-json`, obs/span.hpp):
  * top-level object with a `traceEvents` array and `otherData.spans_dropped`;
  * every event is `ph` "M" (metadata) or "X" (complete span) with the
    documented keys and types; ts/dur are non-negative microseconds;
  * per tid, spans are properly nested — a span never half-overlaps an
    enclosing one (within a 1 us float tolerance);
  * `--require=encode,solve,...` additionally demands each named span occur.

Exit code 0 on success, 1 on any violation (first violation is reported with
its line number), 2 on usage errors.
"""
import json
import sys

# type -> {key: allowed JSON types}; every event also carries t/type/worker.
NUMBER = (int, float)
NULLABLE_NUMBER = (int, float, type(None))
SCHEMA = {
    "solve_start": {"workers": NUMBER},
    "phase": {"phase": (str,)},
    "node_open": {"node": (int,), "parent_bound": NULLABLE_NUMBER},
    "node_close": {"node": (int,), "outcome": (str,), "bound": NULLABLE_NUMBER},
    "bound": {"bound": NULLABLE_NUMBER},
    "incumbent": {"node": (int,), "objective": NULLABLE_NUMBER},
    "steal": {"node": (int,), "victim": (int,)},
    "refactor": {},
    "dual_repair": {},
    "cold_restart": {},
    "recover": {"node": (int,), "rung": (str,)},
    "checkpoint": {"open": (int,)},
    "solve_end": {"objective": NULLABLE_NUMBER},
}
PHASES = {"presolve", "root_lp", "heuristic", "tree", "extract"}
OUTCOMES = {"branched", "integer", "infeasible", "pruned", "cutoff", "limit",
            "requeued", "abandoned"}
RUNGS = {"tighten", "cold", "requeue", "abandon"}


def fail(lineno, msg):
    print(f"FAIL line {lineno}: {msg}", file=sys.stderr)
    return 1


def validate(path, min_workers):
    counts = {}
    workers = set()
    prev_t = -1.0
    lineno = 0
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                e = json.loads(raw)
            except json.JSONDecodeError as exc:
                return fail(lineno, f"not valid JSON: {exc}")
            if not isinstance(e, dict):
                return fail(lineno, "not a JSON object")
            for key, kinds in (("t", NUMBER), ("type", (str,)), ("worker", (int,))):
                if not isinstance(e.get(key), kinds):
                    return fail(lineno, f"missing or mistyped common key '{key}'")
            etype = e["type"]
            if etype not in SCHEMA:
                return fail(lineno, f"unknown event type '{etype}'")
            for key, kinds in SCHEMA[etype].items():
                if key not in e:
                    return fail(lineno, f"'{etype}' missing key '{key}'")
                if not isinstance(e[key], kinds):
                    return fail(lineno, f"'{etype}' key '{key}' has wrong type")
            extra = set(e) - {"t", "type", "worker"} - set(SCHEMA[etype])
            if extra:
                return fail(lineno, f"'{etype}' has undocumented keys {sorted(extra)}")
            if etype == "phase" and e["phase"] not in PHASES:
                return fail(lineno, f"unknown phase '{e['phase']}'")
            if etype == "node_close" and e["outcome"] not in OUTCOMES:
                return fail(lineno, f"unknown outcome '{e['outcome']}'")
            if etype == "recover" and e["rung"] not in RUNGS:
                return fail(lineno, f"unknown recover rung '{e['rung']}'")
            if e["t"] < 0:
                return fail(lineno, "negative timestamp")
            if e["t"] < prev_t:
                return fail(lineno, "timestamps not sorted")
            prev_t = e["t"]
            counts[etype] = counts.get(etype, 0) + 1
            workers.add(e["worker"])

    if lineno == 0:
        return fail(0, "empty trace")
    if counts.get("solve_start", 0) != 1:
        return fail(lineno, f"expected exactly 1 solve_start, got {counts.get('solve_start', 0)}")
    if counts.get("solve_end", 0) > 1:
        return fail(lineno, f"expected at most 1 solve_end, got {counts['solve_end']}")
    for required in ("node_open", "node_close", "incumbent"):
        if counts.get(required, 0) == 0:
            return fail(lineno, f"no {required} events")
    if len(workers) < min_workers:
        return fail(lineno, f"events from {len(workers)} worker(s), need >= {min_workers}")
    if min_workers >= 2 and counts.get("steal", 0) == 0:
        return fail(lineno, "parallel trace has no steal events")

    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"OK {path}: {sum(counts.values())} events, "
          f"{len(workers)} workers ({summary})")
    return 0


# Chrome trace-event validation (the span profiler's --profile-json export).

NESTING_EPS_US = 1.0  # float formatting tolerance for end-time comparisons


def chrome_fail(idx, msg):
    print(f"FAIL event {idx}: {msg}", file=sys.stderr)
    return 1


def validate_chrome(path, require):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        print(f"FAIL: {path}: no traceEvents array", file=sys.stderr)
        return 1
    dropped = data.get("otherData", {}).get("spans_dropped")
    if not isinstance(dropped, int) or dropped < 0:
        print(f"FAIL: {path}: otherData.spans_dropped missing or invalid",
              file=sys.stderr)
        return 1

    spans = []  # (ts, dur, tid, name, idx)
    names = set()
    tids = set()
    for idx, e in enumerate(data["traceEvents"]):
        if not isinstance(e, dict):
            return chrome_fail(idx, "not a JSON object")
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") not in ("process_name", "thread_name"):
                return chrome_fail(idx, f"unknown metadata '{e.get('name')}'")
            if not isinstance(e.get("args"), dict) or "name" not in e["args"]:
                return chrome_fail(idx, "metadata without args.name")
            continue
        if ph != "X":
            return chrome_fail(idx, f"unknown phase '{ph}' (want M or X)")
        for key, kinds in (("name", (str,)), ("cat", (str,)),
                           ("ts", NUMBER), ("dur", NUMBER),
                           ("pid", (int,)), ("tid", (int,))):
            if not isinstance(e.get(key), kinds):
                return chrome_fail(idx, f"missing or mistyped key '{key}'")
        if e["ts"] < 0 or e["dur"] < 0:
            return chrome_fail(idx, "negative ts/dur")
        args = e.get("args")
        if not isinstance(args, dict) or not isinstance(args.get("depth"), int) \
                or args["depth"] < 0:
            return chrome_fail(idx, "missing or invalid args.depth")
        spans.append((e["ts"], e["dur"], e["tid"], e["name"], idx))
        names.add(e["name"])
        tids.add(e["tid"])

    if not spans:
        print(f"FAIL: {path}: no span (ph=X) events", file=sys.stderr)
        return 1
    missing = sorted(set(require) - names)
    if missing:
        print(f"FAIL: {path}: required spans absent: {', '.join(missing)}",
              file=sys.stderr)
        return 1

    # Proper nesting per thread lane: walking spans in start order with a
    # stack of enclosing end times, a span that starts inside its parent must
    # also end inside it. Half-overlap would render as garbage in Perfetto.
    by_tid = {}
    for s in sorted(spans):
        by_tid.setdefault(s[2], []).append(s)
    for tid, lane in by_tid.items():
        stack = []  # end times of open ancestors
        for ts, dur, _, name, idx in lane:
            while stack and ts >= stack[-1] - NESTING_EPS_US:
                stack.pop()
            if stack and ts + dur > stack[-1] + NESTING_EPS_US:
                return chrome_fail(
                    idx, f"span '{name}' (tid {tid}) half-overlaps its parent")
            stack.append(ts + dur)

    print(f"OK {path}: {len(spans)} spans, {len(tids)} worker lane(s), "
          f"{len(names)} distinct names, {dropped} dropped")
    return 0


def main(argv):
    min_workers = 1
    chrome = False
    require = []
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--min-workers="):
            min_workers = int(arg.split("=", 1)[1])
        elif arg == "--chrome":
            chrome = True
        elif arg.startswith("--require="):
            require = [n for n in arg.split("=", 1)[1].split(",") if n]
        elif arg.startswith("-"):
            print(f"unknown option: {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    if require and not chrome:
        print("--require only applies to --chrome mode", file=sys.stderr)
        return 2
    if chrome:
        return validate_chrome(paths[0], require)
    return validate(paths[0], min_workers)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
