#!/usr/bin/env python3
"""Validates a solver trace (JSONL) against the schema in docs/observability.md.

Usage: validate_trace.py <trace.jsonl> [--min-workers=N]

Checks, in order:
  * every line is a JSON object with the common keys (t, type, worker);
  * the event type is one of the documented types — unknown types FAIL, so a
    new EventType cannot ship without a schema/doc update;
  * every type-specific required key is present with the right JSON type
    (numeric payloads may be null, the encoding of non-finite doubles);
  * timestamps are non-decreasing (the merge sorts) and non-negative;
  * exactly one solve_start and at most one solve_end;
  * node, incumbent events are present, and with --min-workers=2 (the CI
    setting for a parallel solve) steal events and >= N distinct workers.

Exit code 0 on success, 1 on any violation (first violation is reported with
its line number), 2 on usage errors.
"""
import json
import sys

# type -> {key: allowed JSON types}; every event also carries t/type/worker.
NUMBER = (int, float)
NULLABLE_NUMBER = (int, float, type(None))
SCHEMA = {
    "solve_start": {"workers": NUMBER},
    "phase": {"phase": (str,)},
    "node_open": {"node": (int,), "parent_bound": NULLABLE_NUMBER},
    "node_close": {"node": (int,), "outcome": (str,), "bound": NULLABLE_NUMBER},
    "bound": {"bound": NULLABLE_NUMBER},
    "incumbent": {"node": (int,), "objective": NULLABLE_NUMBER},
    "steal": {"node": (int,), "victim": (int,)},
    "refactor": {},
    "dual_repair": {},
    "cold_restart": {},
    "recover": {"node": (int,), "rung": (str,)},
    "checkpoint": {"open": (int,)},
    "solve_end": {"objective": NULLABLE_NUMBER},
}
PHASES = {"presolve", "root_lp", "heuristic", "tree", "extract"}
OUTCOMES = {"branched", "integer", "infeasible", "pruned", "cutoff", "limit",
            "requeued", "abandoned"}
RUNGS = {"tighten", "cold", "requeue", "abandon"}


def fail(lineno, msg):
    print(f"FAIL line {lineno}: {msg}", file=sys.stderr)
    return 1


def validate(path, min_workers):
    counts = {}
    workers = set()
    prev_t = -1.0
    lineno = 0
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                e = json.loads(raw)
            except json.JSONDecodeError as exc:
                return fail(lineno, f"not valid JSON: {exc}")
            if not isinstance(e, dict):
                return fail(lineno, "not a JSON object")
            for key, kinds in (("t", NUMBER), ("type", (str,)), ("worker", (int,))):
                if not isinstance(e.get(key), kinds):
                    return fail(lineno, f"missing or mistyped common key '{key}'")
            etype = e["type"]
            if etype not in SCHEMA:
                return fail(lineno, f"unknown event type '{etype}'")
            for key, kinds in SCHEMA[etype].items():
                if key not in e:
                    return fail(lineno, f"'{etype}' missing key '{key}'")
                if not isinstance(e[key], kinds):
                    return fail(lineno, f"'{etype}' key '{key}' has wrong type")
            extra = set(e) - {"t", "type", "worker"} - set(SCHEMA[etype])
            if extra:
                return fail(lineno, f"'{etype}' has undocumented keys {sorted(extra)}")
            if etype == "phase" and e["phase"] not in PHASES:
                return fail(lineno, f"unknown phase '{e['phase']}'")
            if etype == "node_close" and e["outcome"] not in OUTCOMES:
                return fail(lineno, f"unknown outcome '{e['outcome']}'")
            if etype == "recover" and e["rung"] not in RUNGS:
                return fail(lineno, f"unknown recover rung '{e['rung']}'")
            if e["t"] < 0:
                return fail(lineno, "negative timestamp")
            if e["t"] < prev_t:
                return fail(lineno, "timestamps not sorted")
            prev_t = e["t"]
            counts[etype] = counts.get(etype, 0) + 1
            workers.add(e["worker"])

    if lineno == 0:
        return fail(0, "empty trace")
    if counts.get("solve_start", 0) != 1:
        return fail(lineno, f"expected exactly 1 solve_start, got {counts.get('solve_start', 0)}")
    if counts.get("solve_end", 0) > 1:
        return fail(lineno, f"expected at most 1 solve_end, got {counts['solve_end']}")
    for required in ("node_open", "node_close", "incumbent"):
        if counts.get(required, 0) == 0:
            return fail(lineno, f"no {required} events")
    if len(workers) < min_workers:
        return fail(lineno, f"events from {len(workers)} worker(s), need >= {min_workers}")
    if min_workers >= 2 and counts.get("steal", 0) == 0:
        return fail(lineno, "parallel trace has no steal events")

    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"OK {path}: {sum(counts.values())} events, "
          f"{len(workers)} workers ({summary})")
    return 0


def main(argv):
    min_workers = 1
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--min-workers="):
            min_workers = int(arg.split("=", 1)[1])
        elif arg.startswith("-"):
            print(f"unknown option: {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    return validate(paths[0], min_workers)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
