/// \file rpl.hpp
/// Reconfigurable Production Line case study (Sec. 4.2).
///
/// Two product lines (A and B), each Source -> C1 -> M1 -> C2 -> M2 -> C3 ->
/// Sink, with junction conveyors connecting same-stage conveyors across
/// lines. Machines are implemented from the Table 3 library: product-specific
/// (subtypes A / B) or reconfigurable (subtype AB, usable for both).
///
/// Operation modes (the domain pattern `has_operation_mode`):
///   Omega1: A and B produced simultaneously at rates lambda_A / lambda_B,
///           and no line may be borrowed for the other product;
///   Omega2: A at double rate, line B stalled — line B *may* be borrowed.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "arch/patterns/pattern.hpp"
#include "arch/problem.hpp"

namespace archex::domains::rpl {

/// Sizing and requirement knobs. Defaults reproduce Table 3.
struct RplConfig {
  int machines_per_stage_a = 3;  ///< template slots per stage, line A
  int machines_per_stage_b = 2;
  int conveyors_per_stage_a = 3;
  int conveyors_per_stage_b = 2;
  double rate_a = 12.0;  ///< lambda_A (parts/min)
  double rate_b = 10.0;  ///< lambda_B
  double junction_cost = 1000.0;  ///< cross-line (junction conveyor) edge cost
  /// <= 0 disables the idle-rate requirement (Fig. 4a); positive values
  /// reproduce the Fig. 4b experiment (the paper uses 10 parts/min).
  double max_total_idle = -1.0;
};

/// The Table 3 component library.
[[nodiscard]] Library make_library(const RplConfig& cfg = {});

/// The two-line template with junction-conveyor candidate edges.
[[nodiscard]] ArchTemplate make_template(const RplConfig& cfg = {});

/// Complete exploration problem: connectivity, both operation modes, flow
/// balance, overload protection, and (optionally) the idle-rate bound.
[[nodiscard]] std::unique_ptr<Problem> make_problem(const RplConfig& cfg = {});

/// Domain pattern (Sec. 4.2): declares one operation mode. Creates the flow
/// matrices Lambda^{mode,product} as flow commodities named "<mode>:<prod>",
/// pins source/sink rates, forbids cross-line flows when borrowing is not
/// allowed, and restricts machine throughput to implementations capable of
/// the product (subtype == product or "AB").
class HasOperationMode final : public Pattern {
 public:
  HasOperationMode(std::string mode, std::map<std::string, double> product_rates,
                   bool allow_borrowing)
      : mode_(std::move(mode)), rates_(std::move(product_rates)),
        allow_borrowing_(allow_borrowing) {}

  [[nodiscard]] std::string name() const override { return "has_operation_mode"; }
  [[nodiscard]] std::string describe() const override;
  void emit(Problem& p) const override;

  /// Commodity name used for (mode, product).
  [[nodiscard]] std::string commodity(const std::string& product) const {
    return mode_ + ":" + product;
  }

 private:
  std::string mode_;
  std::map<std::string, double> rates_;
  bool allow_borrowing_;
};

/// Registers `has_operation_mode` for spec files:
/// has_operation_mode(O1, A, 12, B, 10, no_borrowing).
void register_rpl_patterns();

/// Total idle rate of `arch` summed over machines and both modes (the
/// metric of Fig. 4: 28 parts/min without the idle constraint, 8 with it).
[[nodiscard]] double total_idle_rate(const Problem& p, const Architecture& arch);

}  // namespace archex::domains::rpl
