/// \file epn.hpp
/// Aircraft Electrical Power distribution Network case study (Sec. 4.1).
///
/// Builds the Table 2 library and template, applies the connectivity /
/// power / reliability requirement set (the paper's 46-pattern spec), and
/// provides the domain pattern `has_sufficient_power` plus the bus-level
/// exact reliability analysis used by the lazy algorithm.
///
/// Functional-link semantics (see DESIGN.md): loads and contactors are
/// perfect; a load's link reliability is measured from the generators up to
/// the DC bus serving it, with that bus treated as perfect for the link.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/algorithm.hpp"
#include "arch/patterns/pattern.hpp"
#include "arch/problem.hpp"

namespace archex::domains::epn {

/// Sizing and requirement knobs. Defaults reproduce Table 2; `scale` knobs
/// let tests and quick benches shrink the instance.
struct EpnConfig {
  int gens_per_side = 2;
  int apus = 2;
  int ac_buses_per_side = 4;
  int rectifiers_per_side = 5;
  int dc_buses_per_side = 4;
  int loads_per_side = 8;  ///< first half critical, second half sheddable

  double component_fail_prob = 2e-4;  ///< generators, buses, rectifiers
  double critical_threshold = 1e-9;   ///< non-sheddable loads
  double sheddable_threshold = 1e-5;
  double contactor_cost = 1500.0;  ///< per edge (calibrated; DESIGN.md)

  /// Include the approximate reliability encoding in the MILP (eager /
  /// monolithic method). Set false when using the lazy algorithm.
  bool reliability_eager = true;
};

/// A reduced instance for unit tests and smoke benches.
[[nodiscard]] EpnConfig small_config();

/// An even smaller instance: small_config() with the reliability thresholds
/// relaxed into the k = 1 disjoint-path regime, so the eager encoding closes
/// in well under a second. The compiled-pipeline drills (sweeps of dozens of
/// solves: tests, ci.sh, bench_sweep) run at this scale.
[[nodiscard]] EpnConfig tiny_config();

/// The Table 2 component library.
[[nodiscard]] Library make_library(const EpnConfig& cfg = {});

/// The Table 2 template with side-aware candidate connections.
[[nodiscard]] ArchTemplate make_template(const EpnConfig& cfg = {});

/// Complete exploration problem with the requirement set applied. Pass a
/// SpanProfiler (non-owning, must outlive the Problem) to record encode /
/// per-pattern / solver spans; see obs/span.hpp.
[[nodiscard]] std::unique_ptr<Problem> make_problem(
    const EpnConfig& cfg = {}, obs::SpanProfiler* profiler = nullptr);

/// Domain pattern (Sec. 4.1): per aircraft side, the generators available to
/// that side (own side + APUs) must jointly cover the side's load demand:
///   sum g(m) >= sum l(m).
class HasSufficientPower final : public Pattern {
 public:
  HasSufficientPower(std::string side_tag, std::string shared_tag = "MI")
      : side_(std::move(side_tag)), shared_(std::move(shared_tag)) {}

  [[nodiscard]] std::string name() const override { return "has_sufficient_power"; }
  [[nodiscard]] std::string describe() const override {
    return "has_sufficient_power(" + side_ + ")";
  }
  void emit(Problem& p) const override;

 private:
  std::string side_, shared_;
};

/// Registers `has_sufficient_power` in the global registry (idempotent), so
/// EPN spec files can use it — the extensibility mechanism of Sec. 3.
void register_epn_patterns();

/// Exact bus-level link failure probability for every load of `arch`
/// (key = load name). Unconnected loads report probability 1.
[[nodiscard]] std::map<std::string, double> link_fail_probs(const Problem& p,
                                                            const Architecture& arch);

/// One iteration snapshot of the EPN lazy loop (what Fig. 3a-c plots).
struct EpnLazyIteration {
  int index = 0;
  double cost = 0.0;
  double worst_hv = 0.0;  ///< worst link failure prob over HV loads
  double worst_lv = 0.0;  ///< worst link failure prob over LV loads
  int required_paths_max = 0;  ///< strongest learned disjoint-path level
  milp::ModelStats stats;
  Architecture architecture;
  double solve_seconds = 0.0;
};

struct EpnLazyResult {
  bool converged = false;
  std::vector<EpnLazyIteration> iterations;
  ExplorationResult final_result;
};

/// The lazy (MILP modulo reliability) algorithm specialized to the EPN:
/// solve without reliability constraints, measure exact bus-level link
/// failure probabilities, and learn stronger disjoint-path requirements for
/// the buses serving violated loads. `p` must be built with
/// `reliability_eager = false`.
[[nodiscard]] EpnLazyResult solve_lazy_epn(Problem& p, const EpnConfig& cfg,
                                           const milp::MilpOptions& milp_options = {},
                                           int max_iterations = 10);

}  // namespace archex::domains::epn
