#include "domains/rpl.hpp"

#include <sstream>

#include "arch/patterns/connection.hpp"
#include "arch/patterns/flow.hpp"
#include "arch/patterns/timing.hpp"

namespace archex::domains::rpl {

namespace {

constexpr const char* kSrc = "Source";
constexpr const char* kMach = "Machine";
constexpr const char* kConv = "Conveyor";
constexpr const char* kSnk = "Sink";

constexpr double kFlowCap = 64.0;  ///< upper bound on any single-edge rate

const char* other_line(const std::string& line) { return line == "A" ? "B" : "A"; }

}  // namespace

Library make_library(const RplConfig& cfg) {
  Library lib;
  lib.set_edge_cost(50.0);  // plain wiring between co-located stages

  lib.add({"SrcA", kSrc, "A", {}, {{attr::kCost, 0.0}, {attr::kFlowRate, cfg.rate_a}}});
  lib.add({"SrcB", kSrc, "B", {}, {{attr::kCost, 0.0}, {attr::kFlowRate, cfg.rate_b}}});

  // Machines (Table 3): throughput mu in parts/min, cost in the paper's
  // 10^3 units scaled to absolute numbers; subtype AB = reconfigurable.
  struct M { const char* name; const char* sub; double mu; double cost; };
  for (const M& m : {M{"MachA3", "A", 3, 2000}, M{"MachA6", "A", 6, 4000},
                     M{"MachA20", "A", 20, 9000}, M{"MachB3", "B", 3, 2000},
                     M{"MachB5", "B", 5, 3000}, M{"MachB13", "B", 13, 9000},
                     M{"MachAB10", "AB", 10, 8000}}) {
    lib.add({m.name, kMach, m.sub, {},
             {{attr::kCost, m.cost}, {attr::kThroughput, m.mu}, {attr::kDelay, 2.0}}});
  }

  lib.add({"Conv", kConv, "", {}, {{attr::kCost, 500.0}, {attr::kDelay, 1.0}}});
  lib.add({"SnkA", kSnk, "A", {}, {{attr::kCost, 0.0}}});
  lib.add({"SnkB", kSnk, "B", {}, {{attr::kCost, 0.0}}});
  return lib;
}

ArchTemplate make_template(const RplConfig& cfg) {
  ArchTemplate t;
  for (const std::string line : {"A", "B"}) {
    const bool is_a = line == "A";
    const int mc = is_a ? cfg.machines_per_stage_a : cfg.machines_per_stage_b;
    const int cc = is_a ? cfg.conveyors_per_stage_a : cfg.conveyors_per_stage_b;

    NodeSpec src{"Src" + line, kSrc, line, {line}, "Src" + line};
    t.add_node(std::move(src));
    const std::string msub = line + "|AB";
    // Stage tags carry the line so the in-line chain stays line-local.
    t.add_nodes(cc, "C1" + line, kConv, "", {line, line + "s1"});
    t.add_nodes(mc, "M1" + line, kMach, msub, {line, line + "m1"});
    t.add_nodes(cc, "C2" + line, kConv, "", {line, line + "s2"});
    t.add_nodes(mc, "M2" + line, kMach, msub, {line, line + "m2"});
    t.add_nodes(cc, "C3" + line, kConv, "", {line, line + "s3"});
    NodeSpec snk{"Snk" + line, kSnk, line, {line}, "Snk" + line};
    t.add_node(std::move(snk));

    // In-line stage chain.
    t.allow_connection({kSrc, "", line}, {kConv, "", line + "s1"});
    t.allow_connection({kConv, "", line + "s1"}, {kMach, "", line + "m1"});
    t.allow_connection({kMach, "", line + "m1"}, {kConv, "", line + "s2"});
    t.allow_connection({kConv, "", line + "s2"}, {kMach, "", line + "m2"});
    t.allow_connection({kMach, "", line + "m2"}, {kConv, "", line + "s3"});
    t.allow_connection({kConv, "", line + "s3"}, {kSnk, "", line});
  }
  // Junction conveyors: same-stage conveyors connect across lines, both
  // directions (how line B is borrowed for product A in mode Omega2).
  for (const char* stage : {"s1", "s2", "s3"}) {
    t.allow_connection({kConv, "", std::string("A") + stage},
                       {kConv, "", std::string("B") + stage});
    t.allow_connection({kConv, "", std::string("B") + stage},
                       {kConv, "", std::string("A") + stage});
  }
  return t;
}

std::string HasOperationMode::describe() const {
  std::ostringstream os;
  os << "has_operation_mode(" << mode_;
  for (const auto& [prod, rate] : rates_) os << ", " << prod << "=" << rate;
  os << (allow_borrowing_ ? ", borrowing" : ", no_borrowing") << ")";
  return os.str();
}

void HasOperationMode::emit(Problem& p) const {
  const ArchTemplate& t = p.arch_template();
  for (const auto& [prod, rate] : rates_) {
    FlowCommodity& f = p.flow(commodity(prod), kFlowCap);

    // Source injection: the product's own source emits exactly `rate`; every
    // other source emits nothing of this product.
    for (NodeId s : t.select(NodeFilter::of_type(kSrc))) {
      milp::LinExpr net = p.flow_out(f, s);
      net -= p.flow_in(f, s);
      const double r = t.node(s).has_tag(prod) ? rate : 0.0;
      p.model().add_constraint(std::move(net), milp::Sense::EQ, r,
                               "mode_src[" + commodity(prod) + "](" + t.node(s).name + ")");
    }
    // Sink collection: the product's sink absorbs exactly `rate`.
    for (NodeId s : t.select(NodeFilter::of_type(kSnk))) {
      milp::LinExpr net = p.flow_in(f, s);
      net -= p.flow_out(f, s);
      const double r = t.node(s).has_tag(prod) ? rate : 0.0;
      p.model().add_constraint(std::move(net), milp::Sense::EQ, r,
                               "mode_snk[" + commodity(prod) + "](" + t.node(s).name + ")");
    }
    // Conservation through machines and conveyors.
    for (NodeId v : t.select(NodeFilter::of_type(kMach))) {
      milp::LinExpr bal = p.flow_in(f, v);
      bal -= p.flow_out(f, v);
      if (bal.size() > 0) {
        p.model().add_constraint(std::move(bal), milp::Sense::EQ, 0.0,
                                 "mode_bal[" + commodity(prod) + "](" + t.node(v).name + ")");
      }
    }
    for (NodeId v : t.select(NodeFilter::of_type(kConv))) {
      milp::LinExpr bal = p.flow_in(f, v);
      bal -= p.flow_out(f, v);
      if (bal.size() > 0) {
        p.model().add_constraint(std::move(bal), milp::Sense::EQ, 0.0,
                                 "mode_bal[" + commodity(prod) + "](" + t.node(v).name + ")");
      }
    }

    // No borrowing: this product's flow may not touch the other line's
    // nodes (the zero entries of Lambda^{mode,product}).
    if (!allow_borrowing_) {
      const std::string other = other_line(prod);
      for (std::size_t i = 0; i < p.edges().num_edges(); ++i) {
        const AdjacencyMatrix::Edge& e = p.edges().edge(static_cast<std::int32_t>(i));
        if (t.node(e.from).has_tag(other) || t.node(e.to).has_tag(other)) {
          p.model().tighten_bounds(f.edge_vars[i], 0.0, 0.0);
        }
      }
    }

    // Machine capability: a machine only processes this product if it is
    // implemented by a component of subtype `prod` or "AB".
    for (NodeId v : t.select(NodeFilter::of_type(kMach))) {
      milp::LinExpr in = p.flow_in(f, v);
      if (in.size() == 0) continue;
      bool restrictive = false;
      milp::LinExpr capable;
      for (const LibraryMapping::Candidate& c : p.mapping().candidates(v)) {
        const std::string& sub = p.library().at(c.lib).subtype;
        if (sub == prod || sub == "AB") capable.add_term(c.var, kFlowCap);
        else restrictive = true;
      }
      if (!restrictive) continue;  // every candidate can process the product
      in -= capable;
      p.model().add_constraint(std::move(in), milp::Sense::LE, 0.0,
                               "capable[" + commodity(prod) + "](" + t.node(v).name + ")");
    }
  }
}

void register_rpl_patterns() {
  static const bool once = [] {
    PatternRegistry::instance().register_pattern(
        "has_operation_mode", [](const std::vector<PatternArg>& args) {
          // has_operation_mode(O1, A, 12, B, 10, no_borrowing)
          pattern_detail::check_arity(args, 3, 8, "has_operation_mode");
          const std::string mode = pattern_detail::arg_string(args, 0, "has_operation_mode");
          std::map<std::string, double> rates;
          std::size_t i = 1;
          bool borrowing = true;
          while (i < args.size()) {
            const std::string key = pattern_detail::arg_string(args, i, "has_operation_mode");
            if (key == "no_borrowing") { borrowing = false; ++i; continue; }
            if (key == "borrowing") { borrowing = true; ++i; continue; }
            rates[key] = pattern_detail::arg_number(args, i + 1, "has_operation_mode");
            i += 2;
          }
          return std::make_shared<HasOperationMode>(mode, std::move(rates), borrowing);
        });
    return true;
  }();
  (void)once;
}

std::unique_ptr<Problem> make_problem(const RplConfig& cfg) {
  register_rpl_patterns();
  ArchTemplate t = make_template(cfg);
  auto p = std::make_unique<Problem>(make_library(cfg), t);
  p->set_functional_flow({kSrc, kConv, kMach, kConv, kMach, kConv, kSnk});

  // Junction conveyors: same-stage cross-line candidate edges are added to
  // the problem's template copy at template build time; here they get their
  // higher cost. (The template builder declared only in-line chains plus the
  // stage-filter cross pairs below.)
  // Cross-line edges per stage, both directions.
  // NOTE: allow_connection was stage-filtered in make_template and thus
  // already includes cross-line pairs for conveyor->machine stages; junction
  // costs apply to conveyor->conveyor pairs, declared here.
  const ArchTemplate& tmpl = p->arch_template();
  for (const auto& [from, to] : tmpl.candidate_edges()) {
    const NodeSpec& a = tmpl.node(from);
    const NodeSpec& b = tmpl.node(to);
    const bool cross_line = (a.has_tag("A") && b.has_tag("B")) ||
                            (a.has_tag("B") && b.has_tag("A"));
    if (cross_line) p->set_edge_cost(from, to, cfg.junction_cost);
  }

  // Each source feeds at least one conveyor; each sink collects from at
  // least one conveyor.
  p->apply(patterns::NConnections({kSrc}, {kConv}, 1, milp::Sense::GE, false,
                                  patterns::CountSide::kFrom));
  p->apply(patterns::NConnections({kConv}, {kSnk}, 1, milp::Sense::GE, false,
                                  patterns::CountSide::kTo));
  // A used machine has an input conveyor and an output conveyor.
  p->apply(patterns::NConnections({kConv}, {kMach}, 1, milp::Sense::GE, true,
                                  patterns::CountSide::kTo));
  p->apply(patterns::NConnections({kMach}, {kConv}, 1, milp::Sense::GE, true,
                                  patterns::CountSide::kFrom));
  // A used conveyor has an input (source, machine or junction).
  p->apply(patterns::NConnections({}, {kConv}, 1, milp::Sense::GE, true,
                                  patterns::CountSide::kTo));

  // Operation modes (Sec. 4.2): Omega1 both products, no borrowing;
  // Omega2 double-rate A, line B stalled, borrowing allowed.
  p->apply(HasOperationMode("O1", {{"A", cfg.rate_a}, {"B", cfg.rate_b}},
                            /*allow_borrowing=*/false));
  p->apply(HasOperationMode("O2", {{"A", 2 * cfg.rate_a}, {"B", 0.0}},
                            /*allow_borrowing=*/true));

  // Workload protection per mode (equation (5)).
  p->apply(patterns::NoOverloads(NodeFilter::of_type(kMach),
                                 {{"O1:A", "O1:B"}, {"O2:A", "O2:B"}}));

  // Optional idle-rate requirement (Fig. 4b, equation (7)).
  if (cfg.max_total_idle > 0) {
    p->apply(patterns::MaxTotalIdleRate(NodeFilter::of_type(kMach), cfg.max_total_idle,
                                        {{"O1:A", "O1:B"}, {"O2:A", "O2:B"}}));
  }

  p->add_symmetry_breaking();
  return p;
}

double total_idle_rate(const Problem& p, const Architecture& arch) {
  double idle = 0.0;
  for (NodeId m : arch.used_nodes(NodeFilter::of_type(kMach))) {
    const Architecture::Node& node = arch.nodes[static_cast<std::size_t>(m)];
    const double mu =
        node.impl >= 0 ? p.library().at(node.impl).attr_or(attr::kThroughput) : 0.0;
    idle += mu - arch.in_flow("O1:A", m) - arch.in_flow("O1:B", m);
    idle += mu - arch.in_flow("O2:A", m) - arch.in_flow("O2:B", m);
  }
  return idle;
}

}  // namespace archex::domains::rpl
