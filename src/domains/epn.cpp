#include "domains/epn.hpp"

#include <algorithm>
#include <chrono>

#include "arch/patterns/connection.hpp"
#include "arch/patterns/general.hpp"
#include "arch/patterns/reliability_patterns.hpp"
#include "graph/digraph.hpp"
#include "reliability/reliability.hpp"

namespace archex::domains::epn {

namespace {

using patterns::CannotConnect;
using patterns::MaxFailprobViaHub;
using patterns::NConnections;

constexpr const char* kGen = "Generator";
constexpr const char* kAc = "ACBus";
constexpr const char* kRect = "Rectifier";
constexpr const char* kDc = "DCBus";
constexpr const char* kLoad = "Load";

/// Load demands per side, alternating voltage class; the first half of the
/// loads is critical, the second sheddable (HV demands from {7..20}, LV from
/// {1..5} as in Table 2).
struct LoadSpec {
  const char* subtype;
  double demand;
  bool critical;
};

std::vector<LoadSpec> load_specs(int loads_per_side) {
  static constexpr double kHv[] = {20, 15, 12, 10, 9, 8, 7};
  static constexpr double kLv[] = {5, 4, 3, 2, 1};
  std::vector<LoadSpec> out;
  int hv = 0;
  int lv = 0;
  for (int i = 0; i < loads_per_side; ++i) {
    const bool use_hv = (i % 2) == 0;
    const bool critical = i < (loads_per_side + 1) / 2;
    if (use_hv) out.push_back({"HV", kHv[hv++ % 7], critical});
    else out.push_back({"LV", kLv[lv++ % 5], critical});
  }
  return out;
}

}  // namespace

EpnConfig small_config() {
  EpnConfig cfg;
  cfg.gens_per_side = 1;
  cfg.apus = 1;
  cfg.ac_buses_per_side = 2;
  cfg.rectifiers_per_side = 2;
  cfg.dc_buses_per_side = 2;
  cfg.loads_per_side = 2;
  return cfg;
}

EpnConfig tiny_config() {
  EpnConfig cfg = small_config();
  // k = 1 regime: one disjoint generator path (p_path ~ 8e-4) satisfies both
  // thresholds, so the eager encoding stays small and the tree closes fast.
  cfg.critical_threshold = 5e-3;
  cfg.sheddable_threshold = 5e-2;
  return cfg;
}

Library make_library(const EpnConfig& cfg) {
  Library lib;
  lib.set_edge_cost(cfg.contactor_cost);
  const double p = cfg.component_fail_prob;

  // Generators: cost = g / 10 (Table 2), ratings 60/80/150 HV, 20/30 LV.
  for (double g : {60.0, 80.0, 150.0}) {
    lib.add({"GenHV" + std::to_string(static_cast<int>(g)), kGen, "HV", {},
             {{attr::kCost, g / 10}, {attr::kPower, g}, {attr::kFailProb, p}}});
  }
  for (double g : {20.0, 30.0}) {
    lib.add({"GenLV" + std::to_string(static_cast<int>(g)), kGen, "LV", {},
             {{attr::kCost, g / 10}, {attr::kPower, g}, {attr::kFailProb, p}}});
  }
  lib.add({"APU60", kGen, "APU", {},
           {{attr::kCost, 6.0}, {attr::kPower, 60.0}, {attr::kFailProb, p}}});

  // AC buses: capacity b = 150 HV / 30 LV, cost 2000.
  lib.add({"AcBusHV", kAc, "HV", {},
           {{attr::kCost, 2000.0}, {attr::kPower, 150.0}, {attr::kFailProb, p}}});
  lib.add({"AcBusLV", kAc, "LV", {},
           {{attr::kCost, 2000.0}, {attr::kPower, 30.0}, {attr::kFailProb, p}}});

  // Rectifiers: RU (same voltage level) and TRU (HV AC -> LV DC), cost 2000.
  lib.add({"RuHV", kRect, "HV", {}, {{attr::kCost, 2000.0}, {attr::kFailProb, p}}});
  lib.add({"RuLV", kRect, "LV", {}, {{attr::kCost, 2000.0}, {attr::kFailProb, p}}});
  lib.add({"TRU", kRect, "TRU", {}, {{attr::kCost, 2000.0}, {attr::kFailProb, p}}});

  // DC buses: capacity 30 HV / 5 LV, cost 2000.
  lib.add({"DcBusHV", kDc, "HV", {},
           {{attr::kCost, 2000.0}, {attr::kPower, 30.0}, {attr::kFailProb, p}}});
  lib.add({"DcBusLV", kDc, "LV", {},
           {{attr::kCost, 2000.0}, {attr::kPower, 5.0}, {attr::kFailProb, p}}});

  // Loads: cost 0, no failures, fixed demands (one library entry per
  // distinct demand/class used by the template).
  for (const LoadSpec& ls : load_specs(cfg.loads_per_side)) {
    const std::string name =
        std::string("Load") + ls.subtype + std::to_string(static_cast<int>(ls.demand));
    if (!lib.find(name)) {
      lib.add({name, kLoad, ls.subtype, {}, {{attr::kCost, 0.0}, {attr::kPower, ls.demand}}});
    }
  }
  return lib;
}

ArchTemplate make_template(const EpnConfig& cfg) {
  ArchTemplate t;
  const std::vector<LoadSpec> loads = load_specs(cfg.loads_per_side);

  for (const char* side : {"LE", "RI"}) {
    const std::string s = side[0] == 'L' ? "L" : "R";
    t.add_nodes(cfg.gens_per_side, s + "G", kGen, "HV|LV", {side});
    t.add_nodes(cfg.ac_buses_per_side, s + "A", kAc, {}, {side});
    t.add_nodes(cfg.rectifiers_per_side, s + "R", kRect, {}, {side});
    t.add_nodes(cfg.dc_buses_per_side, s + "D", kDc, {}, {side});
    for (std::size_t i = 0; i < loads.size(); ++i) {
      const LoadSpec& ls = loads[i];
      NodeSpec n;
      n.name = s + "L" + std::to_string(i + 1);
      n.type = kLoad;
      n.subtype = ls.subtype;
      n.tags = {side, ls.critical ? "critical" : "sheddable"};
      n.impl = std::string("Load") + ls.subtype + std::to_string(static_cast<int>(ls.demand));
      t.add_node(std::move(n));
    }
  }
  // APUs sit in the middle and can power both sides.
  t.add_nodes(cfg.apus, "MG", kGen, "APU", {"MI"});

  // Candidate connections (the composition rules): side-local generator
  // feeds, shared APUs, same-side conversion chain, cross-side bus ties.
  for (const char* side : {"LE", "RI"}) {
    t.allow_connection({kGen, "", side}, {kAc, "", side});
    t.allow_connection({kAc, "", side}, {kRect, "", side});
    t.allow_connection({kRect, "", side}, {kDc, "", side});
    t.allow_connection({kDc, "", side}, {kLoad, "", side});
  }
  t.allow_connection({kGen, "", "MI"}, NodeFilter::of_type(kAc));
  t.allow_connection(NodeFilter::of_type(kAc), NodeFilter::of_type(kAc));
  t.allow_connection(NodeFilter::of_type(kDc), NodeFilter::of_type(kDc));
  return t;
}

void HasSufficientPower::emit(Problem& p) const {
  const ArchTemplate& t = p.arch_template();
  milp::LinExpr balance;
  for (NodeId g : t.select({"Generator", "", side_})) balance += p.node_attr(g, attr::kPower);
  for (NodeId g : t.select({"Generator", "", shared_})) balance += p.node_attr(g, attr::kPower);
  for (NodeId l : t.select({"Load", "", side_})) balance -= p.node_attr(l, attr::kPower);
  p.model().add_constraint(std::move(balance), milp::Sense::GE, 0.0,
                           "sufficient_power(" + side_ + ")");
}

void register_epn_patterns() {
  static const bool once = [] {
    PatternRegistry::instance().register_pattern(
        "has_sufficient_power", [](const std::vector<PatternArg>& args) {
          pattern_detail::check_arity(args, 1, 2, "has_sufficient_power");
          return std::make_shared<HasSufficientPower>(
              pattern_detail::arg_string(args, 0, "has_sufficient_power"),
              pattern_detail::arg_string_or(args, 1, "MI"));
        });
    return true;
  }();
  (void)once;
}

std::unique_ptr<Problem> make_problem(const EpnConfig& cfg,
                                      obs::SpanProfiler* profiler) {
  register_epn_patterns();
  auto p =
      std::make_unique<Problem>(make_library(cfg), make_template(cfg), profiler);
  p->set_functional_flow({kGen, kAc, kRect, kDc, kLoad});

  // --- Connectivity requirements ---
  // Each load connects to exactly one DC bus.
  p->apply(NConnections({kDc}, {kLoad}, 1, milp::Sense::EQ, /*only_if_used=*/false,
                        patterns::CountSide::kTo));
  // A used DC bus has at least one incoming connection (rectifier or tie).
  p->apply(NConnections({}, {kDc}, 1, milp::Sense::GE, /*only_if_used=*/true,
                        patterns::CountSide::kTo));
  // A rectifier connected to a DC bus must also be connected to an AC bus:
  // used rectifiers need both an input and an output.
  p->apply(NConnections({kAc}, {kRect}, 1, milp::Sense::GE, true, patterns::CountSide::kTo));
  p->apply(NConnections({kRect}, {kDc}, 1, milp::Sense::GE, true, patterns::CountSide::kFrom));
  // A rectifier takes exactly one AC input and feeds exactly one DC bus.
  p->apply(NConnections({kAc}, {kRect}, 1, milp::Sense::LE, false, patterns::CountSide::kTo));
  p->apply(NConnections({kRect}, {kDc}, 1, milp::Sense::LE, false, patterns::CountSide::kFrom));
  // A used AC bus has at least one incoming feed (generator or tie).
  p->apply(NConnections({}, {kAc}, 1, milp::Sense::GE, true, patterns::CountSide::kTo));
  // A used generator feeds at least one and at most two AC buses.
  p->apply(NConnections({kGen}, {kAc}, 1, milp::Sense::GE, true, patterns::CountSide::kFrom));
  p->apply(NConnections({kGen}, {kAc}, 2, milp::Sense::LE, false, patterns::CountSide::kFrom));

  // --- Voltage-class composition rules (on the mapped subtype) ---
  p->apply(CannotConnect({kGen, "HV"}, {kAc, "LV"}));
  p->apply(CannotConnect({kGen, "LV"}, {kAc, "HV"}));
  p->apply(CannotConnect({kGen, "APU"}, {kAc, "LV"}));  // APUs are HV units
  p->apply(CannotConnect({kAc, "HV"}, {kRect, "LV"}));
  p->apply(CannotConnect({kAc, "LV"}, {kRect, "HV"}));
  p->apply(CannotConnect({kAc, "LV"}, {kRect, "TRU"}));  // TRU input is HV
  p->apply(CannotConnect({kRect, "HV"}, {kDc, "LV"}));
  p->apply(CannotConnect({kRect, "LV"}, {kDc, "HV"}));
  p->apply(CannotConnect({kRect, "TRU"}, {kDc, "HV"}));  // TRU output is LV
  p->apply(CannotConnect({kDc, "HV"}, {kLoad, "LV"}));
  p->apply(CannotConnect({kDc, "LV"}, {kLoad, "HV"}));
  // Bus ties stay within a voltage class.
  p->apply(CannotConnect({kAc, "HV"}, {kAc, "LV"}));
  p->apply(CannotConnect({kAc, "LV"}, {kAc, "HV"}));
  p->apply(CannotConnect({kDc, "HV"}, {kDc, "LV"}));
  p->apply(CannotConnect({kDc, "LV"}, {kDc, "HV"}));

  // --- Power adequacy (domain pattern) ---
  p->apply(HasSufficientPower("LE"));
  p->apply(HasSufficientPower("RI"));

  // --- Base connectivity: every load is powered by some generator ---
  // One shared flow commodity (no disjointness). This mirrors the paper's
  // Fig. 3a, where the first lazy iteration already gives every load one
  // source path.
  p->apply(patterns::SinksConnectedToSources(NodeFilter::of_type(kGen),
                                             NodeFilter::of_type(kLoad)));

  // --- Reliability (eager / monolithic encoding) ---
  if (cfg.reliability_eager) {
    p->apply(MaxFailprobViaHub(NodeFilter::of_type(kGen), NodeFilter::of_type(kDc),
                               {kLoad, "", "critical"}, cfg.critical_threshold));
    p->apply(MaxFailprobViaHub(NodeFilter::of_type(kGen), NodeFilter::of_type(kDc),
                               {kLoad, "", "sheddable"}, cfg.sheddable_threshold));
  }

  // Interchangeable template nodes (the parallel buses/rectifiers of each
  // side) would otherwise make the branch & bound explore every relabeling.
  p->add_symmetry_breaking();
  return p;
}

std::map<std::string, double> link_fail_probs(const Problem& p, const Architecture& arch) {
  const graph::Digraph g = arch.to_digraph();
  std::vector<double> fail = arch.node_fail_probs(p.library());
  const std::vector<NodeId> gens = p.arch_template().select(NodeFilter::of_type(kGen));

  std::map<std::string, double> out;
  for (NodeId load : p.arch_template().select(NodeFilter::of_type(kLoad))) {
    const std::size_t li = static_cast<std::size_t>(load);
    if (!arch.nodes[li].used) continue;
    // The serving bus is the load's single predecessor.
    const auto& preds = g.predecessors(load);
    if (preds.empty()) {
      out[arch.nodes[li].name] = 1.0;
      continue;
    }
    const NodeId bus = preds.front();
    const double saved = fail[static_cast<std::size_t>(bus)];
    fail[static_cast<std::size_t>(bus)] = 0.0;  // the link is measured up to the bus
    out[arch.nodes[li].name] = reliability::link_failure_probability(g, gens, bus, fail);
    fail[static_cast<std::size_t>(bus)] = saved;
  }
  return out;
}

namespace {

/// Conflict-driven learning step: the violated load needs k disjoint
/// generator paths at *whichever* DC bus ends up serving it, so the learned
/// constraints are conditional on each candidate serving edge — the
/// optimizer cannot escape by reassigning the load. Unconditional stage cuts
/// (>= k generators / AC buses / rectifiers instantiated) are valid because
/// the load is always served.
void learn_load_requirement(Problem& p, NodeId load, int k,
                            const std::vector<NodeId>& gens) {
  const ArchTemplate& t = p.arch_template();
  for (std::int32_t idx : p.edges().in_edges(load)) {
    const AdjacencyMatrix::Edge& e = p.edges().edge(idx);
    if (t.node(e.from).type != kDc) continue;
    patterns::emit_disjoint_paths_conditional(p, gens, e.from, k, {e.var},
                                              /*disjoint_sources=*/true, "lazy");
  }
  for (const char* type : {kGen, kAc, kRect}) {
    milp::LinExpr cut;
    for (NodeId v : t.select(NodeFilter::of_type(type))) {
      cut += milp::LinExpr(p.instantiated(v));
    }
    p.model().add_constraint(std::move(cut), milp::Sense::GE, static_cast<double>(k),
                             "lazy_stage[" + std::string(type) + "](" + t.node(load).name +
                                 ")");
  }
}

}  // namespace

EpnLazyResult solve_lazy_epn(Problem& p, const EpnConfig& cfg,
                             const milp::MilpOptions& milp_options, int max_iterations) {
  // Built on the generic iterative-scheme infrastructure (algorithm.hpp):
  // the analysis closure runs the exact factoring reliability analysis; the
  // learning closure adds conditional disjoint-path requirements for every
  // violated load.
  const ArchTemplate& t = p.arch_template();
  const std::vector<NodeId> gens = t.select(NodeFilter::of_type(kGen));
  const int max_k = static_cast<int>(gens.size());
  std::map<NodeId, int> learned;  // disjoint-path requirement per load
  std::vector<NodeId> violated;   // filled by analysis, consumed by learning

  const AnalysisFn analyze = [&](Problem& prob, const Architecture& arch) {
    AnalysisVerdict verdict;
    violated.clear();
    double worst_hv = 0.0;
    double worst_lv = 0.0;
    int k_max = 0;
    for (const auto& [load_name, prob_fail] : link_fail_probs(prob, arch)) {
      const NodeId load = t.find(load_name);
      const NodeSpec& spec = t.node(load);
      (spec.allows_subtype("HV") ? worst_hv : worst_lv) =
          std::max(spec.allows_subtype("HV") ? worst_hv : worst_lv, prob_fail);
      k_max = std::max(k_max, learned[load]);
      const double threshold =
          spec.has_tag("critical") ? cfg.critical_threshold : cfg.sheddable_threshold;
      if (prob_fail > threshold) violated.push_back(load);
    }
    verdict.accepted = violated.empty();
    verdict.metrics = {{"worst_hv", worst_hv},
                       {"worst_lv", worst_lv},
                       {"required_paths_max", static_cast<double>(k_max)}};
    return verdict;
  };

  const LearnFn learn = [&](Problem& prob, const Architecture& arch) {
    const graph::Digraph g = arch.to_digraph();
    bool strengthened = false;
    for (NodeId load : violated) {
      // Conflict-driven learning: require one more disjoint generator path
      // than the current architecture provides at the load's bus.
      const NodeId bus = g.predecessors(load).empty() ? -1 : g.predecessors(load).front();
      int measured = 0;
      if (bus >= 0) {
        std::vector<int> cap(g.num_nodes(), 1);
        cap[static_cast<std::size_t>(bus)] = 1'000'000;
        measured = graph::max_flow_unit_nodes(g, gens, bus, cap);
      }
      int& cur = learned[load];
      const int k = std::max(cur + 1, measured + 1);
      if (k > max_k) continue;  // redundancy ceiling for this load
      cur = k;
      learn_load_requirement(prob, load, k, gens);
      strengthened = true;
    }
    return strengthened;
  };

  IterativeResult generic = solve_iteratively(p, analyze, learn, milp_options, max_iterations);

  // Repackage into the EPN-specific report shape (Fig. 3 rows).
  EpnLazyResult result;
  result.converged = generic.converged;
  result.final_result = std::move(generic.final_result);
  result.iterations.reserve(generic.steps.size());
  for (IterativeStep& step : generic.steps) {
    EpnLazyIteration it;
    it.index = step.index;
    it.cost = step.cost;
    it.stats = step.stats;
    it.solve_seconds = step.solve_seconds;
    it.architecture = std::move(step.architecture);
    const auto hv = step.metrics.find("worst_hv");
    const auto lv = step.metrics.find("worst_lv");
    const auto kp = step.metrics.find("required_paths_max");
    if (hv != step.metrics.end()) it.worst_hv = hv->second;
    if (lv != step.metrics.end()) it.worst_lv = lv->second;
    if (kp != step.metrics.end()) it.required_paths_max = static_cast<int>(kp->second);
    result.iterations.push_back(std::move(it));
  }
  return result;
}

}  // namespace archex::domains::epn
