#include "obs/span.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace archex::obs {
namespace {

// Chrome trace-event strings never contain characters needing escape here
// (interned names are pattern describe() strings and the fixed table below),
// but keep the writer honest for quotes/backslashes/control bytes anyway.
void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_num(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  os << buf;
}

}  // namespace

const char* to_string(SpanName n) {
  switch (n) {
    case SpanName::Encode: return "encode";
    case SpanName::Formulate: return "formulate";
    case SpanName::Solve: return "solve";
    case SpanName::Extract: return "extract";
    case SpanName::Presolve: return "presolve";
    case SpanName::RootLp: return "root_lp";
    case SpanName::Heuristic: return "heuristic";
    case SpanName::Tree: return "tree";
    case SpanName::MilpExtract: return "milp_extract";
    case SpanName::Ftran: return "ftran";
    case SpanName::BtranRow: return "btran_row";
    case SpanName::PriceRow: return "price_row";
    case SpanName::Price: return "price";
    case SpanName::Refactor: return "refactor";
    case SpanName::kCount: break;
  }
  return "?";
}

void SpanBuffer::init(std::int32_t worker, std::size_t capacity,
                      std::chrono::steady_clock::time_point epoch) {
  worker_ = worker;
  capacity_ = capacity;
  epoch_ = epoch;
  spans_.clear();
  spans_.reserve(capacity);
  dropped_ = 0;
  depth_ = 0;
}

SpanProfiler::SpanProfiler(std::size_t capacity_per_worker)
    : capacity_(capacity_per_worker), epoch_(std::chrono::steady_clock::now()) {
  names_.reserve(static_cast<std::size_t>(SpanName::kCount) + 8);
  for (std::int32_t i = 0; i < span_id(SpanName::kCount); ++i) {
    names_.emplace_back(to_string(static_cast<SpanName>(i)));
  }
  arm_workers(1);  // buffer 0: the calling thread
}

std::int32_t SpanProfiler::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::int32_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<std::int32_t>(names_.size() - 1);
}

const std::string& SpanProfiler::name_of(std::int32_t id) const {
  static const std::string unknown = "?";
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= names_.size()) return unknown;
  return names_[static_cast<std::size_t>(id)];
}

void SpanProfiler::arm_workers(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (buffers_.size() < static_cast<std::size_t>(n)) {
    auto buf = std::make_unique<SpanBuffer>();
    buf->init(static_cast<std::int32_t>(buffers_.size()), capacity_, epoch_);
    buffers_.push_back(std::move(buf));
  }
}

SpanBuffer* SpanProfiler::buffer(int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0 || static_cast<std::size_t>(worker) >= buffers_.size()) {
    return nullptr;
  }
  return buffers_[static_cast<std::size_t>(worker)].get();
}

int SpanProfiler::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(buffers_.size());
}

std::int64_t SpanProfiler::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const auto& b : buffers_) total += b->dropped();
  return total;
}

std::int64_t SpanProfiler::take_dropped() {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const auto& b : buffers_) total += b->dropped();
  const std::int64_t delta = total - reported_dropped_;
  reported_dropped_ = total;
  return delta;
}

SpanProfiler::Report SpanProfiler::collect() const {
  Report r;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t total = 0;
    for (const auto& b : buffers_) total += b->spans().size();
    r.spans.reserve(total);
    for (const auto& b : buffers_) {
      r.spans.insert(r.spans.end(), b->spans().begin(), b->spans().end());
      r.dropped += b->dropped();
    }
  }
  // Parent spans close after their children, so raw buffer order is
  // exit-ordered; (t0, depth, worker) restores tree order — a parent strictly
  // precedes its children (same t0 ties break toward the shallower span) and
  // spans from concurrent workers interleave by start time.
  std::stable_sort(r.spans.begin(), r.spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.t0 != b.t0) return a.t0 < b.t0;
                     if (a.depth != b.depth) return a.depth < b.depth;
                     return a.worker < b.worker;
                   });
  return r;
}

void SpanProfiler::write_chrome_trace(std::ostream& os) const {
  const Report r = collect();
  os << "{\"traceEvents\":[";
  const int workers = num_workers();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"archex\"}}";
  for (int w = 0; w < workers; ++w) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << w
       << ",\"args\":{\"name\":\"worker " << w << "\"}}";
  }
  for (const SpanRecord& s : r.spans) {
    os << ",\n";
    os << "{\"name\":\"";
    write_escaped(os, name_of(s.name));
    os << "\",\"cat\":\"archex\",\"ph\":\"X\",\"ts\":";
    write_num(os, s.t0 * 1e6);  // trace-event timestamps are microseconds
    os << ",\"dur\":";
    write_num(os, (s.t1 - s.t0) * 1e6);
    os << ",\"pid\":1,\"tid\":" << s.worker << ",\"args\":{\"depth\":" << s.depth
       << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"spans_dropped\":"
     << r.dropped << "}}\n";
}

}  // namespace archex::obs
