#include "obs/node_log.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace archex::obs {

void NodeLogger::log(const Line& line) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const double now = elapsed();
  if (now < next_.load(std::memory_order_relaxed)) return;  // peer just logged
  // Schedule the next report one full interval from *now*, not from the
  // nominal grid — a stalled search should not emit a burst of catch-up lines.
  next_.store(now + interval_, std::memory_order_relaxed);
  print(line, now);
}

void NodeLogger::log_final(const Line& line) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  print(line, elapsed());
}

void NodeLogger::print(const Line& line, double now) {
  char buf[160];
  if (!header_printed_) {
    header_printed_ = true;
    *sink_ << "    Nodes     Open       Incumbent      Best Bound    Gap%   Steals   Time\n";
  }
  char inc[24];
  if (line.has_incumbent) std::snprintf(inc, sizeof(inc), "%15.6g", line.incumbent);
  else std::snprintf(inc, sizeof(inc), "%15s", "--");
  char gap[16];
  if (line.has_incumbent && std::isfinite(line.best_bound)) {
    const double g = 100.0 * std::fabs(line.incumbent - line.best_bound) /
                     std::max(1e-10, std::fabs(line.incumbent));
    std::snprintf(gap, sizeof(gap), "%6.2f", g);
  } else {
    std::snprintf(gap, sizeof(gap), "%6s", "--");
  }
  char bb[24];
  if (std::isfinite(line.best_bound)) std::snprintf(bb, sizeof(bb), "%15.6g", line.best_bound);
  else std::snprintf(bb, sizeof(bb), "%15s", "--");
  std::snprintf(buf, sizeof(buf), "%9lld %8lld %s %s  %s %8lld %6.1fs\n",
                static_cast<long long>(line.nodes), static_cast<long long>(line.open),
                inc, bb, gap, static_cast<long long>(line.steals), now);
  *sink_ << buf;
  sink_->flush();
}

}  // namespace archex::obs
