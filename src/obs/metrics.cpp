#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace archex::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Timer& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

std::map<std::string, double> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) out[name] = static_cast<double>(c->value());
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  for (const auto& [name, t] : timers_) {
    out[name + ".seconds"] = t->seconds();
    out[name + ".count"] = static_cast<double>(t->count());
    out[name + ".max"] = t->max_seconds();
  }
  return out;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const auto snap = snapshot();
  os << '{';
  bool first = true;
  for (const auto& [name, value] : snap) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":";
    if (std::isfinite(value)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      os << buf;
    } else {
      os << "null";
    }
  }
  os << '}';
}

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:]; everything else (the dots in
/// our dotted names, dashes, parens from pattern labels) becomes '_'.
std::string mangle(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 7);
  out += "archex_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void write_value(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
  }
}

void write_sample(std::ostream& os, const std::string& name, const char* type,
                  double v) {
  os << "# TYPE " << name << ' ' << type << '\n' << name << ' ';
  write_value(os, v);
  os << '\n';
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    write_sample(os, mangle(name) + "_total", "counter",
                 static_cast<double>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    write_sample(os, mangle(name), "gauge", g->value());
  }
  for (const auto& [name, t] : timers_) {
    const std::string base = mangle(name);
    write_sample(os, base + "_seconds_total", "counter", t->seconds());
    write_sample(os, base + "_count", "counter",
                 static_cast<double>(t->count()));
    write_sample(os, base + "_max_seconds", "gauge", t->max_seconds());
  }
}

std::string prometheus_text(const MetricsRegistry& reg) {
  std::ostringstream os;
  reg.write_prometheus(os);
  return os.str();
}

}  // namespace archex::obs
