#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

namespace archex::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Timer& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {
// First bucket upper bound and the sqrt(2) bucket ratio, as log2 steps: the
// index is ceil(2 * log2(s / 100us)), clamped into range.
constexpr double kHistFloorSeconds = 1e-4;
}  // namespace

std::size_t Histogram::bucket_index(double seconds) {
  if (!(seconds > kHistFloorSeconds)) return 0;  // NaN and tiny land in [0, 100us]
  const double steps = std::ceil(2.0 * std::log2(seconds / kHistFloorSeconds));
  if (steps >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<std::size_t>(steps);
}

double Histogram::bucket_upper(std::size_t i) {
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return kHistFloorSeconds * std::exp2(0.5 * static_cast<double>(i));
}

double Histogram::quantile(double q) const {
  const std::int64_t n = count();
  // No samples -> no quantile. NaN, not 0.0: a zero here read as "p99 was
  // instant" in dashboards and diffs. Every export path carries it through
  // consistently — snapshot() stores the NaN, write_json maps non-finite to
  // null, write_prometheus prints the literal "NaN" (valid Prometheus text).
  if (n <= 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target sample, 1-based; walk the buckets until the running
  // total covers it, then interpolate within the landing bucket.
  const auto rank = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(n)));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::int64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket <= 0) continue;
    if (seen + in_bucket >= rank) {
      const double lo = i == 0 ? 0.0 : bucket_upper(i - 1);
      const double hi = bucket_upper(i);
      if (!std::isfinite(hi)) return lo;  // overflow bucket: report its floor
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return bucket_upper(kBuckets - 2);  // count says samples exist; be safe
}

std::map<std::string, double> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) out[name] = static_cast<double>(c->value());
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  for (const auto& [name, t] : timers_) {
    out[name + ".seconds"] = t->seconds();
    out[name + ".count"] = static_cast<double>(t->count());
    out[name + ".max"] = t->max_seconds();
  }
  for (const auto& [name, h] : histograms_) {
    out[name + ".count"] = static_cast<double>(h->count());
    out[name + ".sum"] = h->sum_seconds();
    out[name + ".p50"] = h->quantile(0.50);
    out[name + ".p99"] = h->quantile(0.99);
  }
  return out;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const auto snap = snapshot();
  os << '{';
  bool first = true;
  for (const auto& [name, value] : snap) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":";
    if (std::isfinite(value)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      os << buf;
    } else {
      os << "null";
    }
  }
  os << '}';
}

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:]; everything else (the dots in
/// our dotted names, dashes, parens from pattern labels) becomes '_'.
std::string mangle(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 7);
  out += "archex_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void write_value(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
  }
}

void write_sample(std::ostream& os, const std::string& name, const char* type,
                  double v) {
  os << "# TYPE " << name << ' ' << type << '\n' << name << ' ';
  write_value(os, v);
  os << '\n';
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    write_sample(os, mangle(name) + "_total", "counter",
                 static_cast<double>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    write_sample(os, mangle(name), "gauge", g->value());
  }
  for (const auto& [name, t] : timers_) {
    const std::string base = mangle(name);
    write_sample(os, base + "_seconds_total", "counter", t->seconds());
    write_sample(os, base + "_count", "counter",
                 static_cast<double>(t->count()));
    write_sample(os, base + "_max_seconds", "gauge", t->max_seconds());
  }
  for (const auto& [name, h] : histograms_) {
    const std::string base = mangle(name);
    write_sample(os, base + "_seconds_sum", "counter", h->sum_seconds());
    write_sample(os, base + "_seconds_count", "counter",
                 static_cast<double>(h->count()));
    write_sample(os, base + "_p50_seconds", "gauge", h->quantile(0.50));
    write_sample(os, base + "_p99_seconds", "gauge", h->quantile(0.99));
  }
}

std::string prometheus_text(const MetricsRegistry& reg) {
  std::ostringstream os;
  reg.write_prometheus(os);
  return os.str();
}

}  // namespace archex::obs
