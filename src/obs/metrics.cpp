#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace archex::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Timer& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

std::map<std::string, double> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) out[name] = static_cast<double>(c->value());
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  for (const auto& [name, t] : timers_) {
    out[name + ".seconds"] = t->seconds();
    out[name + ".count"] = static_cast<double>(t->count());
  }
  return out;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const auto snap = snapshot();
  os << '{';
  bool first = true;
  for (const auto& [name, value] : snap) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":";
    if (std::isfinite(value)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      os << buf;
    } else {
      os << "null";
    }
  }
  os << '}';
}

}  // namespace archex::obs
