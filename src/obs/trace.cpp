#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace archex::obs {

const char* to_string(EventType t) {
  switch (t) {
    case EventType::SolveStart: return "solve_start";
    case EventType::Phase: return "phase";
    case EventType::NodeOpen: return "node_open";
    case EventType::NodeClose: return "node_close";
    case EventType::Bound: return "bound";
    case EventType::Incumbent: return "incumbent";
    case EventType::Steal: return "steal";
    case EventType::Refactor: return "refactor";
    case EventType::DualRepair: return "dual_repair";
    case EventType::ColdRestart: return "cold_restart";
    case EventType::Recover: return "recover";
    case EventType::Checkpoint: return "checkpoint";
    case EventType::SolveEnd: return "solve_end";
  }
  return "unknown";
}

const char* to_string(NodeOutcome o) {
  switch (o) {
    case NodeOutcome::Branched: return "branched";
    case NodeOutcome::Integer: return "integer";
    case NodeOutcome::Infeasible: return "infeasible";
    case NodeOutcome::Pruned: return "pruned";
    case NodeOutcome::Cutoff: return "cutoff";
    case NodeOutcome::Limit: return "limit";
    case NodeOutcome::Requeued: return "requeued";
    case NodeOutcome::Abandoned: return "abandoned";
  }
  return "unknown";
}

const char* to_string(RecoverRung r) {
  switch (r) {
    case RecoverRung::Tighten: return "tighten";
    case RecoverRung::Cold: return "cold";
    case RecoverRung::Requeue: return "requeue";
    case RecoverRung::Abandon: return "abandon";
  }
  return "unknown";
}

const char* to_string(Phase p) {
  switch (p) {
    case Phase::Presolve: return "presolve";
    case Phase::RootLp: return "root_lp";
    case Phase::Heuristic: return "heuristic";
    case Phase::Tree: return "tree";
    case Phase::Extract: return "extract";
  }
  return "unknown";
}

void TraceBuffer::init(std::int32_t worker, std::size_t capacity,
                       std::chrono::steady_clock::time_point epoch) {
  ring_.assign(capacity, TraceEvent{});
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  worker_ = worker;
  epoch_ = epoch;
}

std::vector<TraceEvent> TraceBuffer::drain() {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  if (size_ == ring_.size()) {
    // Full ring: oldest event is at head_ (the next overwrite target).
    for (std::size_t i = 0; i < size_; ++i)
      out.push_back(ring_[(head_ + i) % ring_.size()]);
  } else {
    for (std::size_t i = 0; i < size_; ++i) out.push_back(ring_[i]);
  }
  head_ = 0;
  size_ = 0;
  return out;
}

std::size_t Trace::count(EventType t) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [t](const TraceEvent& e) { return e.type == t; }));
}

int Trace::num_workers() const {
  int max_worker = -1;
  for (const TraceEvent& e : events) max_worker = std::max(max_worker, e.worker);
  return max_worker + 1;
}

namespace {

void write_num(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
  } else {
    os << "null";
  }
}

}  // namespace

void Trace::write_jsonl(std::ostream& os) const {
  for (const TraceEvent& e : events) {
    os << "{\"t\":";
    write_num(os, e.t);
    os << ",\"type\":\"" << to_string(e.type) << "\",\"worker\":" << e.worker;
    switch (e.type) {
      case EventType::SolveStart:
        os << ",\"workers\":" << static_cast<int>(e.value);
        break;
      case EventType::Phase:
        os << ",\"phase\":\"" << to_string(static_cast<Phase>(e.detail)) << '"';
        break;
      case EventType::NodeOpen:
        os << ",\"node\":" << e.id << ",\"parent_bound\":";
        write_num(os, e.value);
        break;
      case EventType::NodeClose:
        os << ",\"node\":" << e.id << ",\"outcome\":\""
           << to_string(static_cast<NodeOutcome>(e.detail)) << "\",\"bound\":";
        write_num(os, e.value);
        break;
      case EventType::Bound:
        os << ",\"bound\":";
        write_num(os, e.value);
        break;
      case EventType::Incumbent:
        os << ",\"node\":" << e.id << ",\"objective\":";
        write_num(os, e.value);
        break;
      case EventType::Steal:
        os << ",\"node\":" << e.id << ",\"victim\":" << static_cast<int>(e.value);
        break;
      case EventType::Refactor:
      case EventType::DualRepair:
      case EventType::ColdRestart:
        break;
      case EventType::Recover:
        os << ",\"node\":" << e.id << ",\"rung\":\""
           << to_string(static_cast<RecoverRung>(e.detail)) << '"';
        break;
      case EventType::Checkpoint:
        os << ",\"open\":" << static_cast<long long>(e.value);
        break;
      case EventType::SolveEnd:
        os << ",\"objective\":";
        write_num(os, e.value);
        break;
    }
    os << "}\n";
  }
}

Trace merge_buffers(std::vector<TraceBuffer>& buffers) {
  Trace trace;
  for (TraceBuffer& b : buffers) {
    trace.dropped += b.dropped();
    auto events = b.drain();
    trace.events.insert(trace.events.end(), events.begin(), events.end());
  }
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.t < b.t; });
  return trace;
}

}  // namespace archex::obs
