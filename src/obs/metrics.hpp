/// \file metrics.hpp
/// Lock-free-on-the-hot-path metrics registry for solver instrumentation.
///
/// Registration (name lookup) takes a mutex; the returned Counter / Gauge /
/// Timer handles are plain relaxed atomics, so hot loops (simplex pivots,
/// branch & bound node processing) record without contention. Handle
/// references are stable for the registry's lifetime (values live in
/// node-stable unique_ptr slots). A snapshot flattens everything into a
/// name -> value map for reporting (`Solution::metrics`, JSON export).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace archex::obs {

/// Monotonically increasing integer metric (events, nodes, pivots).
class Counter {
 public:
  void add(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-value metric (current gap, open-node count).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated duration metric with an invocation count and the worst single
/// observation; fed by ScopedTimer.
class Timer {
 public:
  void record(std::int64_t nanos) {
    nanos_.fetch_add(nanos, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    std::int64_t prev = max_nanos_.load(std::memory_order_relaxed);
    while (nanos > prev &&
           !max_nanos_.compare_exchange_weak(prev, nanos,
                                             std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double seconds() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  [[nodiscard]] std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Worst single observation (seconds); 0 before any record().
  [[nodiscard]] double max_seconds() const {
    return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }

 private:
  std::atomic<std::int64_t> nanos_{0};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> max_nanos_{0};
};

/// Fixed-bucket log-scale duration histogram for latency distributions
/// (service request latency, queue wait). Like Counter/Gauge/Timer the hot
/// path is relaxed atomics only: record() computes a bucket index (one log2)
/// and does two fetch_adds, so concurrent workers record without locking.
/// Buckets are geometric with ratio sqrt(2) starting at 100 µs — 64 buckets
/// cover ~100 µs to ~4.7 h with ≤ ~41% relative error per bucket, plenty for
/// p50/p99 reporting; the last bucket absorbs overflow. Quantiles linearly
/// interpolate inside the landing bucket.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double seconds) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_nanos_.fetch_add(static_cast<std::int64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
    buckets_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum_seconds() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  /// Estimated q-quantile in seconds, q in [0, 1]. NaN before any record()
  /// — "no samples" is not "zero latency". The NaN flows consistently
  /// through every export: snapshot() stores it, write_json emits null,
  /// write_prometheus prints "NaN" (valid Prometheus exposition text).
  /// Concurrent record() calls may skew an in-flight estimate by the races'
  /// worth of samples — fine for reporting, not a synchronization point.
  [[nodiscard]] double quantile(double q) const;

  /// Inclusive upper bound of bucket `i` in seconds (+inf for the last).
  [[nodiscard]] static double bucket_upper(std::size_t i);

 private:
  [[nodiscard]] static std::size_t bucket_index(double seconds);

  std::atomic<std::int64_t> buckets_[kBuckets]{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_nanos_{0};
};

/// RAII monotonic-clock scope feeding a Timer (either may be null — the scope
/// then measures for the mirror alone, or does nothing at all). `seconds`
/// optionally mirrors the elapsed time into a plain double (phase fields).
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer, double* seconds = nullptr)
      : timer_(timer), seconds_(seconds) {
    if (timer_ != nullptr || seconds_ != nullptr)
      start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Ends the scope early; subsequent destruction records nothing.
  void stop() {
    if (timer_ == nullptr && seconds_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    if (timer_ != nullptr) timer_->record(ns);
    if (seconds_ != nullptr) *seconds_ = static_cast<double>(ns) * 1e-9;
    timer_ = nullptr;
    seconds_ = nullptr;
  }

 private:
  Timer* timer_;
  double* seconds_;
  std::chrono::steady_clock::time_point start_{};
};

/// Named metric store. Thread-safe registration, lock-free recording through
/// the returned handles. One registry spans one solve (or one arch Problem,
/// which re-uses it across encode + solve + extract).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Flattens all metrics to name -> value. Timers expand to three entries:
  /// `<name>.seconds`, `<name>.count`, and `<name>.max` (worst single
  /// observation, seconds). Histograms expand to four: `<name>.count`,
  /// `<name>.sum` (seconds), `<name>.p50`, and `<name>.p99`.
  [[nodiscard]] std::map<std::string, double> snapshot() const;

  /// Writes the snapshot as a single JSON object.
  void write_json(std::ostream& os) const;

  /// Writes the registry in Prometheus text exposition format (version
  /// 0.0.4): metric names are mangled `.` -> `_` under an `archex_` prefix,
  /// counters gain a `_total` suffix, timers expand to `_seconds_total`,
  /// `_count`, and a `_max_seconds` gauge, histograms to `_seconds_sum` /
  /// `_seconds_count` counters plus `_p50_seconds` / `_p99_seconds` gauges.
  /// Format details in docs/observability.md.
  void write_prometheus(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Prometheus text exposition of a registry as a string — the scrape body of
/// `archex_serve`'s `{"op": "metrics"}` endpoint (docs/serving.md). Thin
/// wrapper over MetricsRegistry::write_prometheus.
[[nodiscard]] std::string prometheus_text(const MetricsRegistry& reg);

}  // namespace archex::obs
