/// \file trace.hpp
/// Structured event trace for the solver: fixed-size per-worker ring buffers
/// written by exactly one thread each (no locks, no contention on the hot
/// path), merged into one time-sorted Trace when the solve ends.
///
/// Event semantics and the JSONL export schema are documented in
/// docs/observability.md; tools/validate_trace.py checks emitted files
/// against that schema in CI.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace archex::obs {

/// What happened. Values are part of the JSONL schema (exported by name).
enum class EventType : std::uint8_t {
  SolveStart,   ///< solve entry; value = number of workers
  Phase,        ///< phase transition; detail = Phase, value = unused
  NodeOpen,     ///< node dequeued for processing; value = parent bound
  NodeClose,    ///< node finished; detail = NodeOutcome, value = node bound
  Bound,        ///< global best-bound improvement; value = new bound
  Incumbent,    ///< incumbent improvement; value = new objective
  Steal,        ///< node stolen; id = node id, value = victim worker id
  Refactor,     ///< simplex basis refactorization
  DualRepair,   ///< dual reoptimization fell back to primal repair
  ColdRestart,  ///< dual reoptimization fell back to a cold solve
  Recover,      ///< numerical-recovery ladder step; detail = RecoverRung
  Checkpoint,   ///< search state checkpointed; value = open-node count
  SolveEnd,     ///< solve exit; value = final objective (or NaN)
};

/// NodeClose detail: how the node was disposed of.
enum class NodeOutcome : std::uint8_t {
  Branched = 0,    ///< fractional, two children created
  Integer = 1,     ///< LP solution integral (incumbent candidate)
  Infeasible = 2,  ///< node LP infeasible
  Pruned = 3,      ///< parent bound already past the cutoff (pre-LP)
  Cutoff = 4,      ///< node bound past the cutoff (post-LP)
  Limit = 5,       ///< abandoned by a node/time limit
  Requeued = 6,    ///< quarantined after a numerical failure, re-enqueued
  Abandoned = 7,   ///< recovery ladder exhausted; parent bound inherited
};

/// Recover detail: which rung of the numerical-recovery ladder ran.
enum class RecoverRung : std::uint8_t {
  Tighten = 0,  ///< tightened-tolerance refactorization + warm reoptimize
  Cold = 1,     ///< cold primal restart
  Requeue = 2,  ///< node quarantined for a bounded cold retry
  Abandon = 3,  ///< retries exhausted; bound conservatively inherited
};

/// Phase detail for EventType::Phase.
enum class Phase : std::uint8_t {
  Presolve = 0,
  RootLp = 1,
  Heuristic = 2,
  Tree = 3,
  Extract = 4,
};

[[nodiscard]] const char* to_string(EventType t);
[[nodiscard]] const char* to_string(NodeOutcome o);
[[nodiscard]] const char* to_string(RecoverRung r);
[[nodiscard]] const char* to_string(Phase p);

/// One trace record. 32 bytes; written by value into the ring.
struct TraceEvent {
  double t = 0.0;        ///< seconds since solve start (monotonic clock)
  double value = 0.0;    ///< event-specific payload (see EventType)
  std::int64_t id = -1;  ///< node id where meaningful, else -1
  std::int32_t worker = 0;
  EventType type = EventType::SolveStart;
  std::uint8_t detail = 0;  ///< NodeOutcome / Phase discriminant
};

/// Single-writer ring buffer. One per worker thread; the owning thread is the
/// only writer, merge happens after the workers have joined, so no member
/// needs atomicity. When full, the oldest events are overwritten and counted
/// in `dropped` — a trace is a diagnostic, never a reason to stall a solve.
class TraceBuffer {
 public:
  /// Arms the buffer. capacity == 0 leaves it disabled (emit() is a no-op).
  void init(std::int32_t worker, std::size_t capacity,
            std::chrono::steady_clock::time_point epoch);

  [[nodiscard]] bool enabled() const { return !ring_.empty(); }
  [[nodiscard]] std::int32_t worker() const { return worker_; }
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }

  /// Seconds since the solve epoch (callers reuse it for node-log lines).
  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
  }

  void emit(EventType type, std::int64_t id = -1, double value = 0.0,
            std::uint8_t detail = 0) {
    if (ring_.empty()) return;
    TraceEvent& e = ring_[head_];
    e.t = now();
    e.value = value;
    e.id = id;
    e.worker = worker_;
    e.type = type;
    e.detail = detail;
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
    else ++dropped_;
  }

  /// Copies the buffered events (oldest first) and resets the buffer.
  [[nodiscard]] std::vector<TraceEvent> drain();

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::int64_t dropped_ = 0;
  std::int32_t worker_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
};

/// Merged, time-sorted event log of one solve.
struct Trace {
  std::vector<TraceEvent> events;
  std::int64_t dropped = 0;  ///< events lost to ring overwrites, all workers

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] std::size_t count(EventType t) const;
  [[nodiscard]] int num_workers() const;

  /// One JSON object per line; schema in docs/observability.md.
  void write_jsonl(std::ostream& os) const;
};

/// Drains every buffer and merges into one trace sorted by timestamp.
[[nodiscard]] Trace merge_buffers(std::vector<TraceBuffer>& buffers);

}  // namespace archex::obs
