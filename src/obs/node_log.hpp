/// \file node_log.hpp
/// CPLEX-style live node log: periodic one-line progress reports during the
/// branch & bound search (nodes processed, open nodes, incumbent, best bound,
/// gap, steals, elapsed time). Off unless constructed with a positive
/// interval and a sink; the hot-path check (`due`) is one relaxed atomic
/// load, so a disabled or not-yet-due logger costs nothing measurable.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>

namespace archex::obs {

class NodeLogger {
 public:
  /// One report line's worth of search state.
  struct Line {
    std::int64_t nodes = 0;
    std::int64_t open = 0;
    bool has_incumbent = false;
    double incumbent = 0.0;   ///< model sense
    double best_bound = 0.0;  ///< model sense
    std::int64_t steals = 0;
  };

  NodeLogger(double interval_s, std::ostream* sink,
             std::chrono::steady_clock::time_point epoch)
      : interval_(interval_s), sink_(sink), epoch_(epoch), next_(interval_s) {}

  [[nodiscard]] bool enabled() const { return sink_ != nullptr && interval_ > 0.0; }

  /// Cheap hot-path check: has the next report time passed?
  [[nodiscard]] bool due() const {
    if (!enabled()) return false;
    return elapsed() >= next_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
  }

  /// Prints one line (header first). Serialized; re-checks `due` under the
  /// lock so racing workers produce one line per interval, not one each.
  void log(const Line& line);

  /// Unconditional final summary line (solve end), bypassing the interval.
  void log_final(const Line& line);

 private:
  void print(const Line& line, double now);

  double interval_;
  std::ostream* sink_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<double> next_;
  std::mutex mu_;
  bool header_printed_ = false;
};

}  // namespace archex::obs
