/// \file span.hpp
/// Hierarchical span profiler: scoped RAII timing regions over per-worker
/// single-writer buffers (the same discipline as TraceBuffer — one thread
/// writes each buffer, merge happens after the workers join, so the hot path
/// is a few stores and two clock reads, no locks and no atomics).
///
/// Zero-cost when disabled: a ScopedSpan built over a null buffer reduces to
/// one pointer test in its constructor and one in its destructor — no clock
/// read, no allocation. Overflowing buffers drop the *newest* spans and count
/// them (`SpanBuffer::dropped`, surfaced as the `milp.spans_dropped` metric);
/// profiling is a diagnostic, never a reason to stall or grow memory
/// mid-solve.
///
/// Span names are interned to integer ids: the fixed pipeline / kernel names
/// (`SpanName`) are pre-interned by every profiler in enum order, so hot
/// paths use the enum value directly without holding a profiler pointer;
/// dynamic names (per-pattern encode spans) intern once, at encode time,
/// under a mutex that the hot path never touches.
///
/// Export formats (schema in docs/observability.md):
///   * Chrome trace-event JSON (`write_chrome_trace`), loadable in Perfetto /
///     chrome://tracing; worker id maps to `tid`;
///   * the raw `collect()` report, which the per-pattern cost-attribution
///     report (arch/perf_report.hpp) and tests consume.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace archex::obs {

/// Fixed span names, pre-interned by every SpanProfiler in this order so the
/// enum value *is* the name id. Keep in sync with to_string(SpanName).
enum class SpanName : std::int32_t {
  // Architecture pipeline (arch::Problem).
  Encode = 0,   ///< structural constraints (Problem constructor)
  Formulate,    ///< objective assembly
  Solve,        ///< the whole MILP solve (arch layer view)
  Extract,      ///< solution -> Architecture decode
  // Branch & bound phases (milp::solve_milp).
  Presolve,
  RootLp,
  Heuristic,
  Tree,
  MilpExtract,  ///< postsolve + incumbent extraction
  // Simplex / LU kernel hot paths (sampled every Nth pivot).
  Ftran,
  BtranRow,
  PriceRow,
  Price,        ///< full pricing pass
  Refactor,     ///< basis refactorization (always recorded)
  kCount,       ///< sentinel, not a span
};

[[nodiscard]] const char* to_string(SpanName n);
[[nodiscard]] constexpr std::int32_t span_id(SpanName n) {
  return static_cast<std::int32_t>(n);
}

/// One closed span. 24 bytes, written by value at scope exit.
struct SpanRecord {
  double t0 = 0.0;  ///< seconds since the profiler epoch (monotonic clock)
  double t1 = 0.0;
  std::int32_t name = 0;    ///< interned name id
  std::int32_t worker = 0;
  std::int32_t depth = 0;   ///< nesting depth at open time (0 = top level)
};

/// Single-writer span sink for one worker thread. The owning thread is the
/// only writer; reads (snapshot / dropped) happen after the workers joined,
/// so no member needs atomicity. Spans are recorded at scope *exit*, so a
/// parent appears after its children in buffer order — collect() re-sorts.
class SpanBuffer {
 public:
  /// Arms the buffer. capacity == 0 leaves it disabled.
  void init(std::int32_t worker, std::size_t capacity,
            std::chrono::steady_clock::time_point epoch);

  [[nodiscard]] bool enabled() const { return capacity_ != 0; }
  [[nodiscard]] std::int32_t worker() const { return worker_; }
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }
  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Seconds since the profiler epoch.
  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Called by ScopedSpan only (owning thread). Opens a nesting level.
  std::int32_t enter() { return depth_++; }
  /// Closes the level opened by the matching enter() and records the span;
  /// when full, the newest span is dropped and counted instead.
  void exit_record(std::int32_t name, double t0, std::int32_t depth) {
    --depth_;
    if (spans_.size() < capacity_) {
      spans_.push_back({t0, now(), name, worker_, depth});
    } else {
      ++dropped_;
    }
  }

 private:
  std::vector<SpanRecord> spans_;
  std::size_t capacity_ = 0;
  std::int64_t dropped_ = 0;
  std::int32_t depth_ = 0;
  std::int32_t worker_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
};

/// RAII span over a (nullable) SpanBuffer. A null or disabled buffer makes
/// both constructor and destructor a single pointer test — no clock read —
/// which is what keeps profiling-off solves at uninstrumented speed.
class ScopedSpan {
 public:
  ScopedSpan(SpanBuffer* buf, std::int32_t name) : buf_(buf) {
    if (buf_ != nullptr) {
      if (!buf_->enabled()) {
        buf_ = nullptr;
        return;
      }
      name_ = name;
      depth_ = buf_->enter();
      t0_ = buf_->now();
    }
  }
  ~ScopedSpan() { stop(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Closes the span early; destruction then records nothing.
  void stop() {
    if (buf_ == nullptr) return;
    buf_->exit_record(name_, t0_, depth_);
    buf_ = nullptr;
  }

 private:
  SpanBuffer* buf_;
  double t0_ = 0.0;
  std::int32_t name_ = 0;
  std::int32_t depth_ = 0;
};

/// Owns the per-worker span buffers and the interned name table. Buffer 0
/// belongs to the calling (main) thread — in this codebase the encoder, the
/// root phase and pool worker 0 all run on it, so the single-writer rule
/// holds. arm_workers() must be called before worker threads spawn (the
/// branch & bound does); buffer pointers are stable thereafter.
class SpanProfiler {
 public:
  explicit SpanProfiler(std::size_t capacity_per_worker = 1 << 16);

  /// Interns a dynamic name (per-pattern spans). Mutex-guarded; call at
  /// setup/encode time, never from a pivot loop. Idempotent per name.
  std::int32_t intern(std::string_view name);
  /// Name of an interned id ("?" for an unknown id). Call after the workers
  /// joined (export time).
  [[nodiscard]] const std::string& name_of(std::int32_t id) const;

  /// Ensures buffers exist for workers [0, n). Buffer 0 exists from
  /// construction. Not thread-safe against concurrent span recording — call
  /// before spawning the threads that will write the new buffers.
  void arm_workers(int n);
  /// Worker w's buffer, or null when never armed.
  [[nodiscard]] SpanBuffer* buffer(int worker);
  /// The main-thread buffer (worker 0).
  [[nodiscard]] SpanBuffer* main() { return buffer(0); }
  [[nodiscard]] int num_workers() const;

  /// Total spans dropped to buffer overflow across all workers.
  [[nodiscard]] std::int64_t dropped() const;
  /// Drop count accumulated since the previous take_dropped() call. The
  /// branch & bound feeds this delta into the per-solve `milp.spans_dropped`
  /// counter, so a profiler reused across solves (the lazy algorithm) does
  /// not double-report. Call after workers joined.
  std::int64_t take_dropped();

  /// Snapshot of every buffer, merged and sorted by (t0, depth, worker):
  /// a parent precedes its children, and concurrent workers interleave in
  /// start-time order. Does not reset the buffers.
  struct Report {
    std::vector<SpanRecord> spans;
    std::int64_t dropped = 0;
  };
  [[nodiscard]] Report collect() const;

  /// Writes the Chrome trace-event JSON (`{"traceEvents": [...]}`) for the
  /// current contents: one `ph:"X"` complete event per span (ts/dur in
  /// microseconds, pid 1, tid = worker) plus `ph:"M"` thread-name metadata.
  /// Loadable in Perfetto / chrome://tracing.
  void write_chrome_trace(std::ostream& os) const;

 private:
  mutable std::mutex mu_;  ///< guards names_ and buffers_ growth
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<SpanBuffer>> buffers_;  ///< stable pointers
  std::size_t capacity_;
  std::int64_t reported_dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace archex::obs
