#include "check/iis.hpp"

#include <algorithm>

#include "milp/presolve.hpp"
#include "milp/simplex.hpp"

namespace archex::check {

using milp::LinConstraint;
using milp::Model;
using milp::Propagation;
using milp::PropagateOptions;
using milp::Term;

const char* to_string(IisOracle o) {
  switch (o) {
    case IisOracle::Auto: return "auto";
    case IisOracle::Propagation: return "propagation";
    case IisOracle::Lp: return "lp";
  }
  return "?";
}

namespace {

/// Phase-1 feasibility of the rows of `model` selected by `mask`, with
/// integrality relaxed. Builds the subsystem model fresh per call — the
/// deletion filter only runs on models already proven infeasible, so the
/// quadratic cost is paid on diagnostics, never on the solve path.
bool lp_infeasible(const Model& model, const std::vector<char>& mask) {
  Model sub;
  for (const milp::Variable& v : model.vars()) {
    sub.add_continuous(v.lb, v.ub, v.name);
  }
  for (std::size_t i = 0; i < model.num_constraints(); ++i) {
    if (mask[i] == 0) continue;
    const LinConstraint& c = model.constraint(i);
    sub.add_constraint(c.expr, c.sense, c.rhs, c.name);
  }
  milp::SimplexSolver lp(sub);
  return lp.solve_primal() == milp::SolveStatus::Infeasible;
}

}  // namespace

IisReport extract_iis(const Model& model, const IisOptions& opt) {
  IisReport report;
  report.attempted = true;
  const std::size_t m = model.num_constraints();

  PropagateOptions popt;
  popt.tol = opt.tol;
  popt.max_passes = opt.propagation_passes;
  popt.record_changes = true;

  std::vector<char> active(m, 1);
  auto propagation_infeasible = [&](const std::vector<char>& mask) {
    PropagateOptions sub = popt;
    sub.record_changes = false;
    ++report.oracle_calls;
    return milp::propagate_bounds(model, sub, &mask).infeasible;
  };
  auto lp_oracle = [&](const std::vector<char>& mask) {
    ++report.oracle_calls;
    return lp_infeasible(model, mask);
  };

  // Pick the oracle: propagation when it proves the full model infeasible
  // (sound and cheap), phase-1 LP otherwise.
  const Propagation full = milp::propagate_bounds(model, popt, &active);
  ++report.oracle_calls;
  bool use_propagation = false;
  if (opt.oracle == IisOracle::Propagation ||
      (opt.oracle == IisOracle::Auto && full.infeasible)) {
    use_propagation = true;
    report.infeasible = full.infeasible;
  } else {
    report.infeasible = lp_oracle(active);
  }
  report.oracle = use_propagation ? "propagation" : "lp";
  if (!report.infeasible) return report;

  auto infeasible = [&](const std::vector<char>& mask) {
    return use_propagation ? propagation_infeasible(mask) : lp_oracle(mask);
  };

  // Conflict slice: when propagation proved infeasibility, the rows that
  // drove any bound change plus the contradicting row are themselves an
  // infeasible subsystem most of the time — shrinking to that slice first
  // saves one oracle call per unrelated row.
  if (use_propagation) {
    std::vector<char> slice(m, 0);
    if (full.infeasible_row >= 0) slice[static_cast<std::size_t>(full.infeasible_row)] = 1;
    for (const milp::BoundChange& ch : full.changes) {
      if (ch.row >= 0) slice[static_cast<std::size_t>(ch.row)] = 1;
    }
    if (slice != active && propagation_infeasible(slice)) active = slice;
  }

  // Deletion filter: drop each still-active row; keep the drop if the rest
  // stays infeasible. The oracle is monotone (fewer rows never prove more),
  // so the surviving set is irreducible with respect to it.
  report.irreducible = true;
  for (std::size_t i = 0; i < m; ++i) {
    if (active[i] == 0) continue;
    if (report.oracle_calls >= opt.max_oracle_calls) {
      report.irreducible = false;  // budget hit: still infeasible, not minimal
      break;
    }
    active[i] = 0;
    if (!infeasible(active)) active[i] = 1;
  }

  for (std::size_t i = 0; i < m; ++i) {
    if (active[i] != 0) report.rows.push_back(static_cast<std::int32_t>(i));
  }
  return report;
}

}  // namespace archex::check
