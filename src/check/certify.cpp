#include "check/certify.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace archex::check {

using milp::kInf;
using milp::LinConstraint;
using milp::Model;
using milp::ObjectiveSense;
using milp::Sense;
using milp::Term;
using milp::Variable;

namespace {

/// Row activity with long-double accumulation — deliberately not
/// LinExpr::evaluate, so the certifier's arithmetic path is its own.
double row_activity(const LinConstraint& c, const std::vector<double>& x) {
  long double acc = 0.0L;
  for (const Term& t : c.expr.terms()) {
    acc += static_cast<long double>(t.coef) *
           static_cast<long double>(x[static_cast<std::size_t>(t.var.index)]);
  }
  return static_cast<double>(acc);
}

void record_violation(Certificate& cert, std::size_t cap, std::int32_t row,
                      double violation) {
  cert.worst_rows.push_back({row, violation});
  std::sort(cert.worst_rows.begin(), cert.worst_rows.end(),
            [](const RowViolation& a, const RowViolation& b) {
              return a.violation > b.violation;
            });
  if (cert.worst_rows.size() > cap) cert.worst_rows.resize(cap);
}

void append_residual(std::ostringstream& os, const char* label, double v, bool ok) {
  os << label << " " << v << (ok ? "" : " [FAIL]");
}

}  // namespace

std::string Certificate::summary() const {
  std::ostringstream os;
  if (!checked) return "certificate: not checked (no assignment)";
  os << "certificate: " << (ok() ? "ok" : "VIOLATED") << " (";
  append_residual(os, "row", max_row_violation, rows_ok);
  os << ", ";
  append_residual(os, "bound", max_bound_violation, bounds_ok);
  os << ", ";
  append_residual(os, "int", max_int_violation, integrality_ok);
  os << ", ";
  append_residual(os, "obj", objective_error, objective_ok);
  if (duals_checked) {
    os << ", ";
    append_residual(os, "dual", max_dual_violation, dual_feasible);
    os << ", ";
    append_residual(os, "slack", max_slackness_violation, complementary);
  }
  os << ")";
  return os.str();
}

Certificate certify(const Model& model, const std::vector<double>& x,
                    double objective, const CertifyOptions& options) {
  Certificate cert;
  if (x.size() != model.num_vars()) return cert;  // checked stays false
  cert.checked = true;

  // Bounds and integrality.
  for (std::size_t j = 0; j < model.num_vars(); ++j) {
    const Variable& v = model.vars()[j];
    const double below = v.lb == -kInf ? 0.0 : (v.lb - x[j]) / (1.0 + std::abs(v.lb));
    const double above = v.ub == kInf ? 0.0 : (x[j] - v.ub) / (1.0 + std::abs(v.ub));
    const double bviol = std::max({below, above, 0.0});
    cert.max_bound_violation = std::max(cert.max_bound_violation, bviol);
    if (bviol > options.feas_tol) cert.bounds_ok = false;
    if (v.is_integral()) {
      const double iviol = std::abs(x[j] - std::round(x[j]));
      cert.max_int_violation = std::max(cert.max_int_violation, iviol);
      if (iviol > options.int_tol) cert.integrality_ok = false;
    }
  }

  // Every row of the original model, re-evaluated from scratch.
  for (std::size_t i = 0; i < model.num_constraints(); ++i) {
    const LinConstraint& c = model.constraint(i);
    const double act = row_activity(c, x);
    const double scale = 1.0 + std::abs(c.rhs);
    double viol = 0.0;
    switch (c.sense) {
      case Sense::LE: viol = (act - c.rhs) / scale; break;
      case Sense::GE: viol = (c.rhs - act) / scale; break;
      case Sense::EQ: viol = std::abs(act - c.rhs) / scale; break;
    }
    viol = std::max(viol, 0.0);
    if (viol > cert.max_row_violation) cert.max_row_violation = viol;
    if (viol > options.feas_tol) {
      cert.rows_ok = false;
      record_violation(cert, options.max_reported, static_cast<std::int32_t>(i), viol);
    }
  }

  // Objective agreement: recompute c·x + constant and compare to the claim.
  long double obj = model.objective().constant();
  for (const Term& t : model.objective().terms()) {
    obj += static_cast<long double>(t.coef) *
           static_cast<long double>(x[static_cast<std::size_t>(t.var.index)]);
  }
  cert.objective_error =
      std::abs(static_cast<double>(obj) - objective) / (1.0 + std::abs(objective));
  if (cert.objective_error > options.obj_tol) cert.objective_ok = false;

  return cert;
}

Certificate certify(const Model& model, const milp::Solution& sol,
                    const CertifyOptions& options) {
  if (!sol.has_incumbent) return {};
  return certify(model, sol.x, sol.objective, options);
}

Certificate certify_lp(const Model& model, const std::vector<double>& x,
                       double objective, const std::vector<double>& duals,
                       const std::vector<double>& reduced_costs,
                       const CertifyOptions& options) {
  Certificate cert = certify(model, x, objective, options);
  if (!cert.checked || duals.size() != model.num_constraints() ||
      reduced_costs.size() != model.num_vars()) {
    return cert;
  }
  cert.duals_checked = true;

  // Work in minimize sense; the engine reports duals/reduced costs in the
  // model's own sense, so a Maximize model flips both (and the costs).
  const double flip =
      model.objective_sense() == ObjectiveSense::Maximize ? -1.0 : 1.0;

  // Reduced costs recomputed from the duals: d_j = c_j - sum_i y_i a_ij.
  std::vector<long double> dhat(model.num_vars(), 0.0L);
  for (const Term& t : model.objective().terms()) {
    dhat[static_cast<std::size_t>(t.var.index)] =
        flip * static_cast<long double>(t.coef);
  }
  for (std::size_t i = 0; i < model.num_constraints(); ++i) {
    const long double yi = flip * static_cast<long double>(duals[i]);
    if (yi == 0.0L) continue;
    for (const Term& t : model.constraint(i).expr.terms()) {
      dhat[static_cast<std::size_t>(t.var.index)] -=
          yi * static_cast<long double>(t.coef);
    }
  }

  auto flag_dual = [&](double viol) {
    cert.max_dual_violation = std::max(cert.max_dual_violation, viol);
    if (viol > options.dual_tol) cert.dual_feasible = false;
  };

  // Column conditions: the engine's reduced costs must match the recomputed
  // ones, and the sign must fit where x sits in its box (min sense: at lower
  // bound d >= 0, at upper d <= 0, interior d == 0).
  for (std::size_t j = 0; j < model.num_vars(); ++j) {
    const Variable& v = model.vars()[j];
    const auto d = static_cast<double>(dhat[j]);
    const double scale = 1.0 + std::abs(d);
    flag_dual(std::abs(d - flip * reduced_costs[j]) / scale);
    if (v.lb == v.ub) continue;  // fixed columns carry any reduced cost
    const double span = std::min(v.ub - v.lb, 1.0);
    const bool at_lb = v.lb != -kInf && x[j] <= v.lb + options.feas_tol * span;
    const bool at_ub = v.ub != kInf && x[j] >= v.ub - options.feas_tol * span;
    if (at_lb && !at_ub) {
      flag_dual(std::max(-d, 0.0) / scale);
    } else if (at_ub && !at_lb) {
      flag_dual(std::max(d, 0.0) / scale);
    } else if (!at_lb && !at_ub) {
      flag_dual(std::abs(d) / scale);
    }
  }

  // Row conditions (min sense): LE rows need y <= 0, GE rows y >= 0, and a
  // slack row (inactive inequality) needs y == 0 — complementary slackness.
  for (std::size_t i = 0; i < model.num_constraints(); ++i) {
    const LinConstraint& c = model.constraint(i);
    if (c.sense == Sense::EQ) continue;
    const double y = flip * duals[i];
    const double yscale = 1.0 + std::abs(y);
    if (c.sense == Sense::LE) {
      flag_dual(std::max(y, 0.0) / yscale);
    } else {
      flag_dual(std::max(-y, 0.0) / yscale);
    }
    const double slack = std::abs(row_activity(c, x) - c.rhs);
    if (slack > options.feas_tol * (1.0 + std::abs(c.rhs))) {
      const double sviol = std::abs(y) / yscale;
      cert.max_slackness_violation = std::max(cert.max_slackness_violation, sviol);
      if (sviol > options.dual_tol) cert.complementary = false;
    }
  }
  return cert;
}

}  // namespace archex::check
