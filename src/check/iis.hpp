/// \file iis.hpp
/// Irreducible infeasible subsystem (IIS) extraction.
///
/// When a model is infeasible, "Infeasible" is a verdict, not a diagnosis.
/// An IIS is a set of constraints that (together with the variable bounds)
/// is infeasible, and from which removing any single constraint restores
/// feasibility — the minimal conflict a modeler has to break. The deletion
/// filter computes one: walk the rows, tentatively delete each, keep the
/// deletion whenever the remainder is still infeasible.
///
/// Two infeasibility oracles:
///   * `Propagation` — milp::propagate_bounds over the active subsystem.
///     Sound (a propagation proof is a real proof) and fast, but incomplete:
///     it only sees what interval arithmetic can prove. Used whenever
///     propagation proves the full model infeasible.
///   * `Lp` — a phase-1 simplex solve of the active subsystem (integrality
///     relaxed). Complete for LP infeasibility, O(rows) LP solves.
///
/// `Auto` picks Propagation when it proves the full model infeasible and
/// falls back to Lp otherwise. A model whose LP relaxation is feasible but
/// which is integer-infeasible yields no IIS here (reported as such).
#pragma once

#include <cstdint>
#include <vector>

#include "milp/model.hpp"

namespace archex::check {

/// Which infeasibility test drives the deletion filter.
enum class IisOracle : std::uint8_t { Auto, Propagation, Lp };

[[nodiscard]] const char* to_string(IisOracle o);

struct IisOptions {
  IisOracle oracle = IisOracle::Auto;
  double tol = 1e-9;  ///< propagation tolerance
  /// Upper bound on oracle invocations (the filter needs one per row plus
  /// one up-front; a hit leaves `irreducible` false).
  std::size_t max_oracle_calls = 100'000;
  int propagation_passes = 64;
};

/// The extracted conflict.
struct IisReport {
  bool attempted = false;    ///< the pass ran
  bool infeasible = false;   ///< oracle proved the full model infeasible
  bool irreducible = false;  ///< deletion filter completed: `rows` is an IIS
  const char* oracle = "none";  ///< oracle that drove the filter
  /// Member rows of the conflict, sorted ascending. Together with the
  /// variable bounds these rows are infeasible; if `irreducible`, removing
  /// any one of them restores feasibility (w.r.t. the oracle).
  std::vector<std::int32_t> rows;
  std::size_t oracle_calls = 0;
};

/// Extracts an IIS from `model`. Never modifies the model.
[[nodiscard]] IisReport extract_iis(const milp::Model& model,
                                    const IisOptions& options = {});

}  // namespace archex::check
