/// \file analyze.hpp
/// Whole-model structural analysis of MILP models.
///
/// The linter (check/lint.hpp) inspects rows in isolation; this module looks
/// at the model as a whole. ArchEx encodings are highly structured — typed
/// node groups, interchangeable components, 0/1 adjacency and mapping blocks
/// — and that structure is statically extractable: independent sub-models,
/// bounds provable without solving, interchangeable columns, and (when the
/// model is infeasible) the minimal set of conflicting constraints.
///
/// Four passes ship behind the narrow AnalysisPass interface, registerable
/// like patterns and pricing rules are (the microkernel discipline):
///
///   * `decompose` — connected components of the row/column bipartite graph:
///     each component is an independent sub-model that could be solved
///     separately;
///   * `propagate` — interval-arithmetic bound propagation to a fixpoint
///     (milp::propagate_bounds, the same engine presolve's strengthen step
///     runs): static infeasibility proofs, fixed variables, tightened
///     bounds;
///   * `symmetry` — orbit partitioning of interchangeable columns/rows by
///     iterated refinement of coefficient-signature hashes, with lex-order
///     symmetry-breaking recommendations for binary orbits;
///   * `iis` — deletion-filter irreducible infeasible subsystem extraction
///     (check/iis.hpp) when the model or its propagated relaxation is
///     infeasible.
///
/// The arch-level overload maps every result back to the emitting pattern
/// via `Problem::origin_of_row`, so an infeasible exploration is explained
/// in pattern terms ("at_least_n_paths(...) conflicts with
/// no_connections(...)") instead of `Infeasible`. CLI: `milp_analyze`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/iis.hpp"
#include "milp/model.hpp"
#include "milp/presolve.hpp"

namespace archex {
class Problem;
}  // namespace archex

namespace archex::check {

/// Options for the analyzer. Pass selection is by name; an empty `passes`
/// list runs every registered pass in registration order.
struct AnalyzeOptions {
  std::vector<std::string> passes;  ///< empty = all registered passes
  milp::PropagateOptions propagation{.max_passes = 64, .tol = 1e-9,
                                     .record_changes = true,
                                     .max_changes = 4096};
  IisOptions iis;
  /// Orbit members listed per orbit in reports (the orbit size is always
  /// exact; only the listing is capped).
  std::size_t max_orbit_members = 64;
  /// Component row/col ids listed per component in reports (counts exact).
  std::size_t max_component_members = 256;
};

/// One connected component of the row/column bipartite graph.
struct ComponentInfo {
  std::vector<std::int32_t> rows;  ///< sorted ascending, capped for reports
  std::vector<std::int32_t> cols;
  std::size_t num_rows = 0;  ///< exact counts (lists above may be capped)
  std::size_t num_cols = 0;
};

/// Output of the `decompose` pass.
struct DecompositionReport {
  bool ran = false;
  std::vector<ComponentInfo> components;  ///< largest first
  std::size_t unreferenced_cols = 0;      ///< columns in no row (not components)
};

/// Output of the `propagate` pass.
struct PropagationReport {
  bool ran = false;
  milp::Propagation result;
};

/// One orbit: indices whose coefficient signatures stayed identical through
/// the refinement — candidates for being interchangeable. Refinement is a
/// color-refinement (WL-style) necessary condition, so orbits may
/// overapproximate the true automorphism orbits; recommendations are advice
/// for the modeler, while `Problem::add_symmetry_breaking` does the exact
/// swap check before emitting constraints.
struct Orbit {
  std::vector<std::int32_t> members;  ///< sorted ascending, capped for reports
  std::size_t size = 0;               ///< exact orbit size
};

/// Output of the `symmetry` pass.
struct SymmetryReport {
  bool ran = false;
  std::vector<Orbit> col_orbits;  ///< nontrivial (size >= 2) only, largest first
  std::vector<Orbit> row_orbits;
  std::vector<std::string> recommendations;  ///< lex-order hints, binary orbits
  int refinement_rounds = 0;
};

/// Aggregate analyzer output.
struct AnalysisReport {
  DecompositionReport decomposition;
  PropagationReport propagation;
  SymmetryReport symmetry;
  IisReport iis;
  std::vector<std::string> passes_run;

  /// True when any pass proved the model statically infeasible.
  [[nodiscard]] bool proved_infeasible() const {
    return (propagation.ran && propagation.result.infeasible) || iis.infeasible;
  }
  void print(std::ostream& os) const;
};

/// One registerable analysis technique. Passes run in registration order and
/// write their own section of the report; later passes may read earlier
/// sections (the `iis` pass consults `propagation`).
class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void run(const milp::Model& model, const AnalyzeOptions& options,
                   AnalysisReport& report) const = 0;
};

/// Registers a pass factory under `name` (idempotent: re-registering a name
/// replaces the factory). The four built-ins are pre-registered.
void register_analysis_pass(const std::string& name,
                            std::unique_ptr<AnalysisPass> (*factory)());

/// Names of all registered passes, in registration order.
[[nodiscard]] std::vector<std::string> registered_analysis_passes();

/// Runs the selected (default: all) passes over `model`.
[[nodiscard]] AnalysisReport analyze(const milp::Model& model,
                                     const AnalyzeOptions& options = {});

// --- arch-level attribution -------------------------------------------------

/// Row counts of one origin label (pattern description, "structural",
/// "flow(...)", "symmetry-breaking") plus its column footprint: the
/// near-block structure of the encoding. `private_cols` are referenced only
/// by this origin's rows; shared columns are what couples the blocks.
struct OriginBlock {
  std::string origin;
  std::size_t rows = 0;
  std::size_t private_cols = 0;
  std::size_t shared_cols = 0;
};

/// Analyzer output attributed to the exploration layer.
struct ArchAnalysisReport {
  AnalysisReport base;
  /// Origin label per IIS row, aligned with `base.iis.rows`.
  std::vector<std::string> iis_origins;
  /// Fraction of IIS rows with a known (non-"unattributed") origin.
  double iis_attribution = 0.0;
  /// Near-block structure: one entry per origin label, rows descending.
  std::vector<OriginBlock> blocks;
  /// Columns referenced by rows of two or more distinct origins.
  std::size_t coupling_cols = 0;

  /// Human-readable paragraph naming the conflicting patterns; empty when no
  /// infeasibility was proven.
  [[nodiscard]] std::string explain_infeasibility() const;
  void print(std::ostream& os) const;
};

/// Analyzes `problem.model()` and attributes rows via
/// `Problem::origin_of_row`.
[[nodiscard]] ArchAnalysisReport analyze(const Problem& problem,
                                         const AnalyzeOptions& options = {});

/// Wires the analyzer into the Problem: installs an infeasibility diagnoser
/// so `Problem::solve` fills `ExplorationResult::infeasibility_explanation`
/// (via analyze + IIS extraction, pattern-named) whenever a solve comes back
/// infeasible. This is the opt-in switch — construction costs nothing and
/// the analyzer only runs on the infeasible path.
void enable_infeasibility_diagnosis(Problem& problem, AnalyzeOptions options = {});

}  // namespace archex::check
