/// \file certify.hpp
/// Independent certification of solver answers.
///
/// The in-repo simplex / branch & bound stack (unlike CPLEX) ships without a
/// second opinion: if a basis update goes numerically wrong, the "optimal"
/// answer it returns may quietly violate a row. The certifier is that second
/// opinion — a deliberately separate code path that re-evaluates every row of
/// the *original pre-presolve* model against the returned assignment with
/// long-double accumulation, checks bounds, integrality and objective-value
/// agreement, and (for pure LPs) verifies dual feasibility and complementary
/// slackness from the engine's `dual_values()` / `reduced_costs()`.
///
/// It shares no code with the solver: no LinExpr::evaluate, no simplex
/// tableau, no presolve mappings. A bug in the solver therefore cannot hide
/// itself in its own certificate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "milp/model.hpp"

namespace archex::check {

/// Certification tolerances. Residuals are compared relatively: a row
/// violation counts when it exceeds `feas_tol * (1 + |rhs|)`.
struct CertifyOptions {
  double feas_tol = 1e-6;  ///< row and bound residual tolerance
  double int_tol = 1e-6;   ///< integrality residual tolerance
  double obj_tol = 1e-6;   ///< relative objective agreement tolerance
  double dual_tol = 1e-6;  ///< dual feasibility / slackness tolerance (LP)
  std::size_t max_reported = 8;  ///< worst violations kept per category
};

/// One violated row and by how much (scaled residual).
struct RowViolation {
  std::int32_t row = -1;
  double violation = 0.0;
};

/// The certificate: per-category verdicts plus the maximum residual of each
/// category, so telemetry can record how close a passing solve came to the
/// tolerance.
struct Certificate {
  bool checked = false;  ///< false = nothing to certify (no assignment given)
  bool bounds_ok = true;
  bool integrality_ok = true;
  bool rows_ok = true;
  bool objective_ok = true;
  /// LP-only duals leg; `duals_checked` stays false for MILP certificates.
  bool duals_checked = false;
  bool dual_feasible = true;
  bool complementary = true;

  double max_bound_violation = 0.0;
  double max_int_violation = 0.0;
  double max_row_violation = 0.0;
  double objective_error = 0.0;  ///< |claimed - recomputed| / (1 + |claimed|)
  double max_dual_violation = 0.0;
  double max_slackness_violation = 0.0;

  std::vector<RowViolation> worst_rows;  ///< scaled residuals, largest first

  [[nodiscard]] bool ok() const {
    return checked && bounds_ok && integrality_ok && rows_ok && objective_ok &&
           dual_feasible && complementary;
  }
  /// One line: "certificate: ok (row 3.2e-12, bound 0, int 1.1e-16, obj 4e-13)"
  /// or the failing categories with their residuals.
  [[nodiscard]] std::string summary() const;
};

/// Certifies assignment `x` with claimed objective `objective` (model sense)
/// against `model`: bounds, integrality, every row, and the recomputed
/// objective value.
[[nodiscard]] Certificate certify(const milp::Model& model, const std::vector<double>& x,
                                  double objective, const CertifyOptions& options = {});

/// Convenience over a Solution: certifies `sol.x` / `sol.objective` when the
/// solution carries an incumbent; returns an unchecked certificate otherwise.
[[nodiscard]] Certificate certify(const milp::Model& model, const milp::Solution& sol,
                                  const CertifyOptions& options = {});

/// LP certification: everything `certify` does, plus dual feasibility and
/// complementary slackness. `duals` are the row duals and `reduced_costs` the
/// structural reduced costs, both in the model's own sense (exactly what
/// `SimplexSolver::dual_values()` / `reduced_costs()` return). The reduced
/// costs are *recomputed* from the duals (d_j = c_j - y·A_j) and cross-checked
/// against the engine's values, so a pricing bug cannot certify itself.
[[nodiscard]] Certificate certify_lp(const milp::Model& model, const std::vector<double>& x,
                                     double objective, const std::vector<double>& duals,
                                     const std::vector<double>& reduced_costs,
                                     const CertifyOptions& options = {});

}  // namespace archex::check
