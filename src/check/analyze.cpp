#include "check/analyze.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <numeric>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "arch/problem.hpp"
#include "arch/result.hpp"

namespace archex::check {

using milp::LinConstraint;
using milp::Model;
using milp::Term;
using milp::Variable;

namespace {

// --- helpers ---------------------------------------------------------------

std::string col_name(const Model& m, std::size_t j) {
  const std::string& n = m.vars()[j].name;
  return n.empty() ? "x" + std::to_string(j) : n;
}

/// splitmix64: cheap, well-distributed 64-bit mixer for signature hashing.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_double(double d) {
  // Canonicalize -0.0 so structurally identical bounds hash identically.
  if (d == 0.0) d = 0.0;
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return mix(bits);
}

std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
  return mix(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// --- pass: decompose --------------------------------------------------------

/// Union-find over columns; rows merge the columns they touch.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<std::size_t> parent_;
};

class DecomposePass final : public AnalysisPass {
 public:
  [[nodiscard]] const char* name() const override { return "decompose"; }

  void run(const Model& model, const AnalyzeOptions& opts,
           AnalysisReport& report) const override {
    DecompositionReport& out = report.decomposition;
    out.ran = true;
    const std::size_t n = model.num_vars();
    const std::size_t m = model.num_constraints();

    UnionFind uf(n);
    std::vector<char> referenced(n, 0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto& terms = model.constraint(i).expr.terms();
      for (const Term& t : terms) referenced[static_cast<std::size_t>(t.var.index)] = 1;
      for (std::size_t k = 1; k < terms.size(); ++k) {
        uf.unite(static_cast<std::size_t>(terms[0].var.index),
                 static_cast<std::size_t>(terms[k].var.index));
      }
    }

    // Component id per union-find root, over referenced columns only.
    std::map<std::size_t, std::size_t> comp_of_root;
    std::vector<ComponentInfo> comps;
    for (std::size_t j = 0; j < n; ++j) {
      if (referenced[j] == 0) {
        ++out.unreferenced_cols;
        continue;
      }
      const std::size_t root = uf.find(j);
      auto [it, inserted] = comp_of_root.emplace(root, comps.size());
      if (inserted) comps.emplace_back();
      ComponentInfo& c = comps[it->second];
      ++c.num_cols;
      if (c.cols.size() < opts.max_component_members) {
        c.cols.push_back(static_cast<std::int32_t>(j));
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      const auto& terms = model.constraint(i).expr.terms();
      if (terms.empty()) continue;  // empty rows belong to no component
      const std::size_t root = uf.find(static_cast<std::size_t>(terms[0].var.index));
      ComponentInfo& c = comps[comp_of_root.at(root)];
      ++c.num_rows;
      if (c.rows.size() < opts.max_component_members) {
        c.rows.push_back(static_cast<std::int32_t>(i));
      }
    }
    std::sort(comps.begin(), comps.end(), [](const ComponentInfo& a, const ComponentInfo& b) {
      return a.num_rows + a.num_cols > b.num_rows + b.num_cols;
    });
    out.components = std::move(comps);
  }
};

// --- pass: propagate --------------------------------------------------------

class PropagatePass final : public AnalysisPass {
 public:
  [[nodiscard]] const char* name() const override { return "propagate"; }

  void run(const Model& model, const AnalyzeOptions& opts,
           AnalysisReport& report) const override {
    report.propagation.ran = true;
    report.propagation.result = milp::propagate_bounds(model, opts.propagation);
  }
};

// --- pass: symmetry ---------------------------------------------------------

class SymmetryPass final : public AnalysisPass {
 public:
  [[nodiscard]] const char* name() const override { return "symmetry"; }

  void run(const Model& model, const AnalyzeOptions& opts,
           AnalysisReport& report) const override {
    SymmetryReport& out = report.symmetry;
    out.ran = true;
    const std::size_t n = model.num_vars();
    const std::size_t m = model.num_constraints();

    // Initial colors. Columns: bounds, type, objective coefficient. Rows:
    // sense and rhs. Interchangeable components produce byte-identical
    // doubles, so hashing the bit patterns is exact.
    std::vector<std::uint64_t> col(n), row(m);
    std::vector<double> obj_coef(n, 0.0);
    for (const Term& t : model.objective().terms()) {
      obj_coef[static_cast<std::size_t>(t.var.index)] = t.coef;
    }
    for (std::size_t j = 0; j < n; ++j) {
      const Variable& v = model.vars()[j];
      std::uint64_t h = hash_double(v.lb);
      h = combine(h, hash_double(v.ub));
      h = combine(h, mix(static_cast<std::uint64_t>(v.type)));
      h = combine(h, hash_double(obj_coef[j]));
      col[j] = h;
    }
    for (std::size_t i = 0; i < m; ++i) {
      const LinConstraint& c = model.constraint(i);
      row[i] = combine(mix(static_cast<std::uint64_t>(c.sense)), hash_double(c.rhs));
    }

    // Column-major adjacency so column signatures refine in one sweep.
    std::vector<std::vector<std::pair<std::int32_t, double>>> rows_of_col(n);
    for (std::size_t i = 0; i < m; ++i) {
      for (const Term& t : model.constraint(i).expr.terms()) {
        rows_of_col[static_cast<std::size_t>(t.var.index)].emplace_back(
            static_cast<std::int32_t>(i), t.coef);
      }
    }

    auto distinct = [](std::vector<std::uint64_t> v) {
      std::sort(v.begin(), v.end());
      return static_cast<std::size_t>(std::unique(v.begin(), v.end()) - v.begin());
    };

    // Iterated refinement: a row's new color folds in the commutative sum of
    // its entries' (coefficient, column-color) signatures — order-free, so
    // term ordering cannot split a true orbit — and vice versa for columns.
    std::size_t col_classes = distinct(col);
    std::size_t row_classes = distinct(row);
    const int max_rounds = 64;
    for (out.refinement_rounds = 0; out.refinement_rounds < max_rounds;
         ++out.refinement_rounds) {
      std::vector<std::uint64_t> nrow(m), ncol(n);
      for (std::size_t i = 0; i < m; ++i) {
        std::uint64_t acc = 0;
        for (const Term& t : model.constraint(i).expr.terms()) {
          acc += combine(hash_double(t.coef), col[static_cast<std::size_t>(t.var.index)]);
        }
        nrow[i] = combine(row[i], mix(acc));
      }
      for (std::size_t j = 0; j < n; ++j) {
        std::uint64_t acc = 0;
        for (const auto& [i, coef] : rows_of_col[j]) {
          acc += combine(hash_double(coef), nrow[static_cast<std::size_t>(i)]);
        }
        ncol[j] = combine(col[j], mix(acc));
      }
      row = std::move(nrow);
      col = std::move(ncol);
      const std::size_t nc = distinct(col);
      const std::size_t nr = distinct(row);
      if (nc == col_classes && nr == row_classes) break;  // partition stable
      col_classes = nc;
      row_classes = nr;
    }

    auto orbits_of = [&](const std::vector<std::uint64_t>& color, bool referenced_only) {
      std::map<std::uint64_t, Orbit> groups;
      for (std::size_t k = 0; k < color.size(); ++k) {
        if (referenced_only && rows_of_col[k].empty()) continue;  // cols only
        Orbit& o = groups[color[k]];
        ++o.size;
        if (o.members.size() < opts.max_orbit_members) {
          o.members.push_back(static_cast<std::int32_t>(k));
        }
      }
      std::vector<Orbit> out_orbits;
      for (auto& [h, o] : groups) {
        if (o.size >= 2) out_orbits.push_back(std::move(o));
      }
      std::sort(out_orbits.begin(), out_orbits.end(),
                [](const Orbit& a, const Orbit& b) {
                  if (a.size != b.size) return a.size > b.size;
                  return a.members < b.members;
                });
      return out_orbits;
    };
    out.col_orbits = orbits_of(col, /*referenced_only=*/true);
    {
      // Row orbits: group by final row color, empty rows excluded.
      std::map<std::uint64_t, Orbit> groups;
      for (std::size_t i = 0; i < m; ++i) {
        if (model.constraint(i).expr.terms().empty()) continue;
        Orbit& o = groups[row[i]];
        ++o.size;
        if (o.members.size() < opts.max_orbit_members) {
          o.members.push_back(static_cast<std::int32_t>(i));
        }
      }
      for (auto& [h, o] : groups) {
        if (o.size >= 2) out.row_orbits.push_back(std::move(o));
      }
      std::sort(out.row_orbits.begin(), out.row_orbits.end(),
                [](const Orbit& a, const Orbit& b) {
                  if (a.size != b.size) return a.size > b.size;
                  return a.members < b.members;
                });
    }

    // Lex-order recommendations for binary-column orbits: ordering the orbit
    // by value prunes permuted duplicates. Phrased as advice — the orbits
    // are WL-candidates; the exact swap check happens where constraints are
    // actually emitted (Problem::add_symmetry_breaking).
    for (const Orbit& o : out.col_orbits) {
      bool all_binary = true;
      for (std::int32_t j : o.members) {
        const Variable& v = model.vars()[static_cast<std::size_t>(j)];
        if (v.type != milp::VarType::Binary) { all_binary = false; break; }
      }
      if (!all_binary) continue;
      std::ostringstream rec;
      rec << "columns {";
      const std::size_t show = std::min<std::size_t>(o.members.size(), 4);
      for (std::size_t k = 0; k < show; ++k) {
        if (k != 0) rec << ", ";
        rec << col_name(model, static_cast<std::size_t>(o.members[k]));
      }
      if (o.size > show) rec << ", ... (" << o.size << " total)";
      rec << "} share a coefficient signature: consider the lex order ";
      rec << col_name(model, static_cast<std::size_t>(o.members[0]));
      for (std::size_t k = 1; k < show; ++k) {
        rec << " >= " << col_name(model, static_cast<std::size_t>(o.members[k]));
      }
      if (o.size > show) rec << " >= ...";
      out.recommendations.push_back(rec.str());
    }
  }
};

// --- pass: iis --------------------------------------------------------------

class IisPass final : public AnalysisPass {
 public:
  [[nodiscard]] const char* name() const override { return "iis"; }

  void run(const Model& model, const AnalyzeOptions& opts,
           AnalysisReport& report) const override {
    report.iis = extract_iis(model, opts.iis);
  }
};

// --- registry ---------------------------------------------------------------

struct Registration {
  std::string name;
  std::unique_ptr<AnalysisPass> (*factory)();
};

std::vector<Registration>& registry() {
  static std::vector<Registration> r = {
      {"decompose", [] { return std::unique_ptr<AnalysisPass>(new DecomposePass); }},
      {"propagate", [] { return std::unique_ptr<AnalysisPass>(new PropagatePass); }},
      {"symmetry", [] { return std::unique_ptr<AnalysisPass>(new SymmetryPass); }},
      {"iis", [] { return std::unique_ptr<AnalysisPass>(new IisPass); }},
  };
  return r;
}

}  // namespace

void register_analysis_pass(const std::string& name,
                            std::unique_ptr<AnalysisPass> (*factory)()) {
  for (Registration& r : registry()) {
    if (r.name == name) {
      r.factory = factory;
      return;
    }
  }
  registry().push_back({name, factory});
}

std::vector<std::string> registered_analysis_passes() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const Registration& r : registry()) names.push_back(r.name);
  return names;
}

AnalysisReport analyze(const Model& model, const AnalyzeOptions& options) {
  AnalysisReport report;
  for (const Registration& r : registry()) {
    if (!options.passes.empty() &&
        std::find(options.passes.begin(), options.passes.end(), r.name) ==
            options.passes.end()) {
      continue;
    }
    r.factory()->run(model, options, report);
    report.passes_run.push_back(r.name);
  }
  return report;
}

void AnalysisReport::print(std::ostream& os) const {
  if (decomposition.ran) {
    os << "decompose: " << decomposition.components.size() << " component(s)";
    if (decomposition.unreferenced_cols > 0) {
      os << ", " << decomposition.unreferenced_cols << " unreferenced column(s)";
    }
    os << "\n";
    for (std::size_t k = 0; k < decomposition.components.size(); ++k) {
      const ComponentInfo& c = decomposition.components[k];
      os << "  component " << k << ": " << c.num_rows << " row(s), " << c.num_cols
         << " col(s)\n";
    }
  }
  if (propagation.ran) {
    const milp::Propagation& p = propagation.result;
    os << "propagate: " << (p.infeasible ? "INFEASIBLE" : "feasible box") << ", "
       << p.bounds_tightened << " tightening(s), " << p.vars_fixed
       << " fixed, " << p.passes << " pass(es)"
       << (p.converged || p.infeasible ? "" : " (fixpoint cap hit)") << "\n";
    if (p.infeasible && p.infeasible_row >= 0) {
      os << "  proof row: " << p.infeasible_row << "\n";
    }
  }
  if (symmetry.ran) {
    os << "symmetry: " << symmetry.col_orbits.size() << " column orbit(s), "
       << symmetry.row_orbits.size() << " row orbit(s) after "
       << symmetry.refinement_rounds << " refinement round(s)\n";
    for (const std::string& rec : symmetry.recommendations) {
      os << "  " << rec << "\n";
    }
  }
  if (iis.attempted) {
    if (!iis.infeasible) {
      os << "iis: model not proven infeasible (oracle: " << iis.oracle << ")\n";
    } else {
      os << "iis: " << iis.rows.size() << " conflicting row(s)"
         << (iis.irreducible ? " (irreducible)" : " (not minimized)")
         << ", oracle: " << iis.oracle << ", " << iis.oracle_calls << " oracle call(s)\n";
    }
  }
}

// --- arch-level attribution -------------------------------------------------

ArchAnalysisReport analyze(const Problem& problem, const AnalyzeOptions& options) {
  const Model& model = problem.model();
  ArchAnalysisReport report;
  report.base = analyze(model, options);

  // IIS rows -> origin labels.
  std::size_t attributed = 0;
  for (std::int32_t r : report.base.iis.rows) {
    const std::string& origin = problem.origin_of_row(static_cast<std::size_t>(r));
    report.iis_origins.push_back(origin);
    if (origin != "unattributed") ++attributed;
  }
  report.iis_attribution =
      report.base.iis.rows.empty()
          ? 1.0
          : static_cast<double>(attributed) /
                static_cast<double>(report.base.iis.rows.size());

  // Near-block structure: per origin label, rows plus private/shared column
  // footprint. A column referenced from two or more origins couples blocks.
  std::map<std::string, std::size_t> block_index;
  std::vector<std::set<std::string>> origins_of_col(model.num_vars());
  for (std::size_t i = 0; i < model.num_constraints(); ++i) {
    const std::string& origin = problem.origin_of_row(i);
    auto [it, inserted] = block_index.emplace(origin, report.blocks.size());
    if (inserted) report.blocks.push_back({origin, 0, 0, 0});
    ++report.blocks[it->second].rows;
    for (const Term& t : model.constraint(i).expr.terms()) {
      origins_of_col[static_cast<std::size_t>(t.var.index)].insert(origin);
    }
  }
  for (const std::set<std::string>& origins : origins_of_col) {
    if (origins.size() >= 2) ++report.coupling_cols;
    for (const std::string& origin : origins) {
      OriginBlock& b = report.blocks[block_index.at(origin)];
      if (origins.size() == 1) ++b.private_cols;
      else ++b.shared_cols;
    }
  }
  std::sort(report.blocks.begin(), report.blocks.end(),
            [](const OriginBlock& a, const OriginBlock& b) {
              if (a.rows != b.rows) return a.rows > b.rows;
              return a.origin < b.origin;
            });
  return report;
}

std::string ArchAnalysisReport::explain_infeasibility() const {
  if (!base.proved_infeasible()) return {};
  std::ostringstream os;
  os << "exploration is infeasible: ";
  if (base.iis.infeasible && !base.iis.rows.empty()) {
    // Aggregate the conflict by origin so the explanation reads in pattern
    // terms, not row indices.
    std::map<std::string, std::size_t> by_origin;
    for (std::size_t k = 0; k < iis_origins.size(); ++k) ++by_origin[iis_origins[k]];
    os << (base.iis.irreducible ? "irreducible conflict of " : "conflict of ")
       << base.iis.rows.size() << " constraint(s) across ";
    bool first = true;
    for (const auto& [origin, count] : by_origin) {
      if (!first) os << ", ";
      first = false;
      os << "'" << origin << "' (" << count << " row" << (count == 1 ? "" : "s") << ")";
    }
    os << ". Relax or remove one of these requirements to restore feasibility.";
  } else if (base.propagation.ran && base.propagation.result.infeasible) {
    os << "bound propagation proves no assignment can satisfy ";
    if (base.propagation.result.infeasible_row >= 0) {
      os << "row " << base.propagation.result.infeasible_row;
    } else {
      os << "column " << base.propagation.result.infeasible_col << "'s domain";
    }
    os << " within the variable bounds.";
  }
  return os.str();
}

void ArchAnalysisReport::print(std::ostream& os) const {
  base.print(os);
  os << "blocks (by origin): " << blocks.size() << ", coupling columns: "
     << coupling_cols << "\n";
  for (const OriginBlock& b : blocks) {
    os << "  '" << b.origin << "': " << b.rows << " row(s), " << b.private_cols
       << " private + " << b.shared_cols << " shared col(s)\n";
  }
  if (!base.iis.rows.empty()) {
    os << "iis attribution: " << iis_attribution * 100.0 << "%\n";
    for (std::size_t k = 0; k < base.iis.rows.size(); ++k) {
      os << "  row " << base.iis.rows[k] << " [origin: " << iis_origins[k] << "]\n";
    }
  }
  const std::string why = explain_infeasibility();
  if (!why.empty()) os << why << "\n";
}

void enable_infeasibility_diagnosis(Problem& problem, AnalyzeOptions options) {
  problem.set_infeasibility_diagnoser(
      [options = std::move(options)](const Problem& p) {
        const ArchAnalysisReport report = analyze(p, options);
        std::string why = report.explain_infeasibility();
        if (why.empty()) {
          why = "exploration is infeasible, but static analysis could not "
                "isolate a conflict (the infeasibility needs integrality or "
                "LP reasoning beyond interval propagation)";
        }
        return why;
      });
}

}  // namespace archex::check
