#include "check/arch_lint.hpp"

#include <functional>
#include <ostream>

#include "arch/compiled_model.hpp"

namespace archex::check {

std::string ArchDiagnostic::to_string() const {
  std::string out = diag.to_string();
  if (!constraint.empty()) out += " [constraint '" + constraint + "']";
  if (!variable.empty()) out += " [variable '" + variable + "']";
  if (!origin.empty()) out += " [origin: " + origin + "]";
  return out;
}

void ArchLintReport::print(std::ostream& os) const {
  for (const ArchDiagnostic& d : diagnostics) os << d.to_string() << "\n";
  os << base.num_errors << " error(s), " << base.num_warnings << " warning(s), "
     << base.num_infos << " info(s)\n";
}

namespace {

/// Shared attribution core over (model, per-row origin lookup) — the same
/// two inputs a Problem and a CompiledModel both expose.
ArchLintReport lint_impl(
    const milp::Model& model,
    const std::function<const std::string&(std::size_t)>& origin_of_row,
    const LintOptions& options) {
  ArchLintReport report;
  report.base = check::lint(model, options);
  report.diagnostics.reserve(report.base.diagnostics.size());
  for (const Diagnostic& d : report.base.diagnostics) {
    ArchDiagnostic ad;
    ad.diag = d;
    if (d.row >= 0) {
      ad.origin = origin_of_row(static_cast<std::size_t>(d.row));
      ad.constraint = model.constraint(static_cast<std::size_t>(d.row)).name;
    }
    if (d.col >= 0) {
      ad.variable = model.vars()[static_cast<std::size_t>(d.col)].name;
    }
    report.diagnostics.push_back(std::move(ad));
  }
  return report;
}

}  // namespace

ArchLintReport lint(const Problem& problem, const LintOptions& options) {
  return lint_impl(
      problem.model(),
      [&](std::size_t row) -> const std::string& {
        return problem.origin_of_row(row);
      },
      options);
}

ArchLintReport lint(const CompiledModel& cm, const LintOptions& options) {
  return lint_impl(
      cm.base_model(),
      [&](std::size_t row) -> const std::string& {
        return cm.origin_of_row(row);
      },
      options);
}

}  // namespace archex::check
