#include "check/arch_lint.hpp"

#include <ostream>

namespace archex::check {

std::string ArchDiagnostic::to_string() const {
  std::string out = diag.to_string();
  if (!constraint.empty()) out += " [constraint '" + constraint + "']";
  if (!variable.empty()) out += " [variable '" + variable + "']";
  if (!origin.empty()) out += " [origin: " + origin + "]";
  return out;
}

void ArchLintReport::print(std::ostream& os) const {
  for (const ArchDiagnostic& d : diagnostics) os << d.to_string() << "\n";
  os << base.num_errors << " error(s), " << base.num_warnings << " warning(s), "
     << base.num_infos << " info(s)\n";
}

ArchLintReport lint(const Problem& problem, const LintOptions& options) {
  const milp::Model& model = problem.model();
  ArchLintReport report;
  report.base = check::lint(model, options);
  report.diagnostics.reserve(report.base.diagnostics.size());
  for (const Diagnostic& d : report.base.diagnostics) {
    ArchDiagnostic ad;
    ad.diag = d;
    if (d.row >= 0) {
      ad.origin = problem.origin_of_row(static_cast<std::size_t>(d.row));
      ad.constraint = model.constraint(static_cast<std::size_t>(d.row)).name;
    }
    if (d.col >= 0) {
      ad.variable = model.vars()[static_cast<std::size_t>(d.col)].name;
    }
    report.diagnostics.push_back(std::move(ad));
  }
  return report;
}

}  // namespace archex::check
