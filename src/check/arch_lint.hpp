/// \file arch_lint.hpp
/// Architecture-level lint: the model linter, mapped back to the template
/// nodes and patterns that produced each finding.
///
/// The milp-level linter reports row/column indices; at the exploration layer
/// those indices are meaningless to a user who wrote patterns, not rows. This
/// pass runs `check::lint` on a Problem's model and attributes every finding
/// to its origin — the structural encoding, a named pattern instance, a flow
/// commodity, or symmetry breaking — using the row provenance the Problem
/// records as constraints are emitted. A finding like "always-inactive row"
/// then reads "pattern 'reliability(load1)' produced an always-inactive
/// constraint".
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "arch/problem.hpp"
#include "check/lint.hpp"

namespace archex {
class CompiledModel;
}

namespace archex::check {

/// A model diagnostic plus its exploration-layer attribution.
struct ArchDiagnostic {
  Diagnostic diag;
  std::string origin;      ///< "structural", pattern description, "flow(...)", ...
  std::string constraint;  ///< row name, empty for column findings
  std::string variable;    ///< column name, empty for row findings

  [[nodiscard]] std::string to_string() const;
};

/// Arch-level lint output; `base` keeps the raw model report.
struct ArchLintReport {
  std::vector<ArchDiagnostic> diagnostics;
  LintReport base;

  [[nodiscard]] bool clean(Severity at_least = Severity::Error) const {
    return base.clean(at_least);
  }
  void print(std::ostream& os) const;
};

/// Lints `problem.model()` and attributes each diagnostic.
[[nodiscard]] ArchLintReport lint(const Problem& problem, const LintOptions& options = {});

/// Same lint + attribution against a compiled artifact (arch/compiled_model.hpp):
/// the frozen base model is linted and findings attribute through the
/// provenance the CompiledModel carried over from its source Problem.
[[nodiscard]] ArchLintReport lint(const CompiledModel& cm, const LintOptions& options = {});

}  // namespace archex::check
