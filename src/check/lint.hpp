/// \file lint.hpp
/// Static analysis of MILP models before they reach the solver.
///
/// ArchEx assembles models mechanically from templates and patterns, which is
/// exactly where silent modeling bugs hide: a pattern instance that emits an
/// empty row, a bound tightening that crosses, a big-M constant so loose the
/// LP relaxation carries no information. The linter walks a finished Model
/// and reports structural defects with severity, row/column coordinates and a
/// fix hint — the validation stage between modeling and solving that
/// commercial toolchains bury inside their presolve logs.
///
/// Severities:
///   * Error   — the model is broken (trivially infeasible row, crossed or
///               empty-domain bounds). Solving it wastes time or returns
///               garbage; `milp_lint` exits nonzero.
///   * Warning — almost certainly a modeling bug (duplicate/contradictory
///               rows, unreferenced columns, loose big-M, extreme coefficient
///               range, fractional integer bounds) but the model is solvable.
///   * Info    — notable structure that is often intentional (fixed columns,
///               free columns, redundant rows).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "milp/model.hpp"

namespace archex::check {

enum class Severity : std::uint8_t { Info, Warning, Error };

[[nodiscard]] const char* to_string(Severity s);

/// Lint rules, one per defect class. docs/diagnostics.md documents each rule
/// with an example triggering model.
enum class Rule : std::uint8_t {
  EmptyRow,             ///< row with no terms left after normalization
  DuplicateRow,         ///< same terms + sense (+ compatible rhs) as earlier row
  ContradictoryRows,    ///< same terms, mutually unsatisfiable rhs/senses
  InfeasibleRow,        ///< unsatisfiable even at best-case variable bounds
  RedundantRow,         ///< satisfied even at worst-case bounds (never active)
  CoefficientRange,     ///< |a| spread within one row beyond the ratio cap
  BigM,                 ///< suspiciously large coefficient on an integer column
  ContradictoryBounds,  ///< lb > ub
  EmptyIntegerDomain,   ///< integer column whose [lb, ub] holds no integer
  FractionalIntBounds,  ///< integer column with non-integral finite bounds
  FixedColumn,          ///< lb == ub
  FreeColumn,           ///< both bounds infinite
  UnreferencedColumn,   ///< column no constraint ever touches
};

[[nodiscard]] const char* to_string(Rule r);

/// One finding: what, how bad, where, and how to fix it.
struct Diagnostic {
  Rule rule = Rule::EmptyRow;
  Severity severity = Severity::Info;
  std::int32_t row = -1;  ///< constraint index, -1 when not row-scoped
  std::int32_t col = -1;  ///< variable index, -1 when not column-scoped
  std::string message;    ///< human-readable, includes names where known
  std::string fix_hint;   ///< suggested remedy, may be empty

  [[nodiscard]] std::string to_string() const;
};

/// Thresholds for the numerical rules.
struct LintOptions {
  double tol = 1e-9;               ///< feasibility / comparison tolerance
  double coef_range_ratio = 1e9;   ///< per-row max|a| / min|a| warning cap
  double big_m_threshold = 1e7;    ///< |a_ij| on an integral column at/above
                                   ///< this warns about big-M looseness
  bool report_info = true;         ///< include Info-severity findings
};

/// The linter's output: diagnostics in (row, col) order plus severity tallies.
struct LintReport {
  std::vector<Diagnostic> diagnostics;
  std::size_t num_errors = 0;
  std::size_t num_warnings = 0;
  std::size_t num_infos = 0;

  /// True when no diagnostic is at or above `at_least`.
  [[nodiscard]] bool clean(Severity at_least = Severity::Error) const;
  /// Findings at or above a severity, in report order.
  [[nodiscard]] std::vector<Diagnostic> at_least(Severity s) const;
  void print(std::ostream& os) const;
};

/// Lints `model`. Pure function of the model: never modifies it, never
/// solves anything.
[[nodiscard]] LintReport lint(const milp::Model& model, const LintOptions& options = {});

}  // namespace archex::check
