#include "check/report_json.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace archex::check {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string q(const std::string& s) { return "\"" + json_escape(s) + "\""; }

/// Stable kebab-case rule ids; the enum names are CamelCase.
std::string kebab(const char* camel) {
  std::string out;
  for (const char* p = camel; *p != '\0'; ++p) {
    if (std::isupper(static_cast<unsigned char>(*p)) != 0) {
      if (!out.empty()) out += '-';
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
    } else {
      out += *p;
    }
  }
  return out;
}

struct Finding {
  std::string pass;
  std::string rule;
  std::string severity;  // "error" | "warning" | "info"
  std::int32_t row = -1;
  std::int32_t col = -1;
  std::string message;
  std::string origin;  // empty = omit
};

std::string origin_of(const JsonReportInput& in, std::int32_t row) {
  if (in.row_origins == nullptr || row < 0) return {};
  const auto i = static_cast<std::size_t>(row);
  if (i >= in.row_origins->size()) return {};
  return (*in.row_origins)[i];
}

void collect_lint(const JsonReportInput& in, std::vector<Finding>& out) {
  for (const Diagnostic& d : in.lint->diagnostics) {
    Finding f;
    f.pass = "lint";
    f.rule = kebab(to_string(d.rule));
    switch (d.severity) {
      case Severity::Error: f.severity = "error"; break;
      case Severity::Warning: f.severity = "warning"; break;
      case Severity::Info: f.severity = "info"; break;
    }
    f.row = d.row;
    f.col = d.col;
    f.message = d.message;
    if (!d.fix_hint.empty()) f.message += " (hint: " + d.fix_hint + ")";
    f.origin = origin_of(in, d.row);
    out.push_back(std::move(f));
  }
}

void collect_analysis(const JsonReportInput& in, std::vector<Finding>& out) {
  const AnalysisReport& a = *in.analysis;
  if (a.decomposition.ran && a.decomposition.components.size() >= 2) {
    Finding f;
    f.pass = "decompose";
    f.rule = "decomposable-model";
    f.severity = "info";
    f.message = "model splits into " +
                std::to_string(a.decomposition.components.size()) +
                " independent sub-models";
    out.push_back(std::move(f));
  }
  if (a.propagation.ran && a.propagation.result.infeasible) {
    Finding f;
    f.pass = "propagate";
    f.rule = "static-infeasibility";
    f.severity = "error";
    f.row = a.propagation.result.infeasible_row;
    f.col = a.propagation.result.infeasible_col;
    f.message = "bound propagation proves the model infeasible";
    f.origin = origin_of(in, f.row);
    out.push_back(std::move(f));
  }
  if (a.symmetry.ran) {
    for (const std::string& rec : a.symmetry.recommendations) {
      Finding f;
      f.pass = "symmetry";
      f.rule = "symmetric-orbit";
      f.severity = "info";
      f.message = rec;
      out.push_back(std::move(f));
    }
  }
  if (a.iis.infeasible) {
    for (const std::int32_t r : a.iis.rows) {
      Finding f;
      f.pass = "iis";
      f.rule = "iis-member";
      f.severity = "error";
      f.row = r;
      f.message = "row participates in the " +
                  std::string(a.iis.irreducible ? "irreducible " : "") +
                  "infeasible subsystem";
      f.origin = origin_of(in, r);
      out.push_back(std::move(f));
    }
  }
}

void emit_orbits(std::ostream& os, const std::vector<Orbit>& orbits,
                 const char* indent) {
  os << "[";
  for (std::size_t k = 0; k < orbits.size(); ++k) {
    if (k != 0) os << ",";
    os << "\n" << indent << "  {\"size\": " << orbits[k].size << ", \"members\": [";
    for (std::size_t j = 0; j < orbits[k].members.size(); ++j) {
      if (j != 0) os << ", ";
      os << orbits[k].members[j];
    }
    os << "]}";
  }
  if (!orbits.empty()) os << "\n" << indent;
  os << "]";
}

void emit_analysis(std::ostream& os, const JsonReportInput& in) {
  const AnalysisReport& a = *in.analysis;
  os << "  \"analysis\": {\n";
  os << "    \"passes\": [";
  for (std::size_t k = 0; k < a.passes_run.size(); ++k) {
    if (k != 0) os << ", ";
    os << q(a.passes_run[k]);
  }
  os << "],\n";
  bool first_section = true;
  auto sep = [&] {
    if (!first_section) os << ",\n";
    first_section = false;
  };
  if (a.decomposition.ran) {
    sep();
    os << "    \"decompose\": {\"num_components\": "
       << a.decomposition.components.size()
       << ", \"unreferenced_cols\": " << a.decomposition.unreferenced_cols
       << ", \"components\": [";
    for (std::size_t k = 0; k < a.decomposition.components.size(); ++k) {
      const ComponentInfo& c = a.decomposition.components[k];
      if (k != 0) os << ", ";
      os << "{\"rows\": " << c.num_rows << ", \"cols\": " << c.num_cols << "}";
    }
    os << "]}";
  }
  if (a.propagation.ran) {
    const milp::Propagation& p = a.propagation.result;
    sep();
    os << "    \"propagate\": {\"infeasible\": " << (p.infeasible ? "true" : "false")
       << ", \"infeasible_row\": " << p.infeasible_row
       << ", \"infeasible_col\": " << p.infeasible_col
       << ", \"converged\": " << (p.converged ? "true" : "false")
       << ", \"passes\": " << p.passes
       << ", \"bounds_tightened\": " << p.bounds_tightened
       << ", \"vars_fixed\": " << p.vars_fixed << "}";
  }
  if (a.symmetry.ran) {
    sep();
    os << "    \"symmetry\": {\"refinement_rounds\": " << a.symmetry.refinement_rounds
       << ",\n      \"col_orbits\": ";
    emit_orbits(os, a.symmetry.col_orbits, "      ");
    os << ",\n      \"row_orbits\": ";
    emit_orbits(os, a.symmetry.row_orbits, "      ");
    os << ",\n      \"recommendations\": [";
    for (std::size_t k = 0; k < a.symmetry.recommendations.size(); ++k) {
      if (k != 0) os << ", ";
      os << q(a.symmetry.recommendations[k]);
    }
    os << "]}";
  }
  if (a.iis.attempted) {
    sep();
    os << "    \"iis\": {\"infeasible\": " << (a.iis.infeasible ? "true" : "false")
       << ", \"irreducible\": " << (a.iis.irreducible ? "true" : "false")
       << ", \"oracle\": " << q(a.iis.oracle)
       << ", \"oracle_calls\": " << a.iis.oracle_calls << ", \"rows\": [";
    for (std::size_t k = 0; k < a.iis.rows.size(); ++k) {
      if (k != 0) os << ", ";
      os << a.iis.rows[k];
    }
    os << "]";
    if (in.row_origins != nullptr) {
      os << ", \"origins\": [";
      std::size_t attributed = 0;
      for (std::size_t k = 0; k < a.iis.rows.size(); ++k) {
        if (k != 0) os << ", ";
        const std::string origin = origin_of(in, a.iis.rows[k]);
        if (!origin.empty() && origin != "unattributed") ++attributed;
        os << q(origin.empty() ? "unattributed" : origin);
      }
      os << "], \"attribution\": "
         << (a.iis.rows.empty()
                 ? 1.0
                 : static_cast<double>(attributed) /
                       static_cast<double>(a.iis.rows.size()));
    }
    os << "}";
  }
  os << "\n  }";
}

}  // namespace

std::string to_json(const JsonReportInput& in) {
  std::vector<Finding> findings;
  if (in.lint != nullptr) collect_lint(in, findings);
  if (in.analysis != nullptr) collect_analysis(in, findings);

  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
  for (const Finding& f : findings) {
    if (f.severity == "error") ++errors;
    else if (f.severity == "warning") ++warnings;
    else ++infos;
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"archex-check-report/1\",\n";
  os << "  \"tool\": " << q(in.tool) << ",\n";
  os << "  \"model\": {\"file\": " << q(in.model.file)
     << ", \"rows\": " << in.model.rows << ", \"cols\": " << in.model.cols
     << "},\n";
  os << "  \"summary\": {\"errors\": " << errors << ", \"warnings\": " << warnings
     << ", \"infos\": " << infos << ", \"findings\": " << findings.size()
     << "},\n";
  os << "  \"findings\": [";
  for (std::size_t k = 0; k < findings.size(); ++k) {
    const Finding& f = findings[k];
    if (k != 0) os << ",";
    os << "\n    {\"pass\": " << q(f.pass) << ", \"rule\": " << q(f.rule)
       << ", \"severity\": " << q(f.severity) << ", \"row\": " << f.row
       << ", \"col\": " << f.col << ", \"message\": " << q(f.message);
    if (!f.origin.empty()) os << ", \"origin\": " << q(f.origin);
    os << "}";
  }
  if (!findings.empty()) os << "\n  ";
  os << "]";
  if (in.analysis != nullptr) {
    os << ",\n";
    emit_analysis(os, in);
  }
  os << "\n}\n";
  return os.str();
}

std::vector<std::string> read_origins_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open origins file: " + path);
  std::vector<std::string> origins;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": expected 'index<TAB>label'");
    }
    std::size_t idx = 0;
    try {
      idx = static_cast<std::size_t>(std::stoul(line.substr(0, tab)));
    } catch (const std::exception&) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": bad row index");
    }
    if (idx >= origins.size()) origins.resize(idx + 1, "unattributed");
    origins[idx] = line.substr(tab + 1);
  }
  return origins;
}

void write_origins_file(const std::string& path,
                        const std::vector<std::string>& origins) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write origins file: " + path);
  out << "# row-index<TAB>origin-label, one line per model row\n";
  for (std::size_t i = 0; i < origins.size(); ++i) {
    out << i << '\t' << origins[i] << '\n';
  }
}

}  // namespace archex::check
