#include "check/lint.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <sstream>

namespace archex::check {

using milp::kInf;
using milp::LinConstraint;
using milp::Model;
using milp::Sense;
using milp::Term;
using milp::VarId;
using milp::Variable;
using milp::VarType;

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

const char* to_string(Rule r) {
  switch (r) {
    case Rule::EmptyRow: return "empty-row";
    case Rule::DuplicateRow: return "duplicate-row";
    case Rule::ContradictoryRows: return "contradictory-rows";
    case Rule::InfeasibleRow: return "infeasible-row";
    case Rule::RedundantRow: return "redundant-row";
    case Rule::CoefficientRange: return "coefficient-range";
    case Rule::BigM: return "big-m";
    case Rule::ContradictoryBounds: return "contradictory-bounds";
    case Rule::EmptyIntegerDomain: return "empty-integer-domain";
    case Rule::FractionalIntBounds: return "fractional-integer-bounds";
    case Rule::FixedColumn: return "fixed-column";
    case Rule::FreeColumn: return "free-column";
    case Rule::UnreferencedColumn: return "unreferenced-column";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << check::to_string(severity) << " [" << check::to_string(rule) << "]";
  if (row >= 0) os << " row " << row;
  if (col >= 0) os << " col " << col;
  os << ": " << message;
  if (!fix_hint.empty()) os << " (hint: " << fix_hint << ")";
  return os.str();
}

bool LintReport::clean(Severity at_least) const {
  return std::none_of(diagnostics.begin(), diagnostics.end(),
                      [&](const Diagnostic& d) { return d.severity >= at_least; });
}

std::vector<Diagnostic> LintReport::at_least(Severity s) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity >= s) out.push_back(d);
  }
  return out;
}

void LintReport::print(std::ostream& os) const {
  for (const Diagnostic& d : diagnostics) os << d.to_string() << "\n";
  os << num_errors << " error(s), " << num_warnings << " warning(s), "
     << num_infos << " info(s)\n";
}

namespace {

/// Collects diagnostics with severity tallies and name helpers.
class Linter {
 public:
  Linter(const Model& m, const LintOptions& opts) : model_(m), opts_(opts) {}

  [[nodiscard]] LintReport take() && {
    std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       if (a.row != b.row) return a.row < b.row;
                       return a.col < b.col;
                     });
    return std::move(report_);
  }

  void add(Rule rule, Severity sev, std::int32_t row, std::int32_t col,
           std::string message, std::string hint = {}) {
    if (sev == Severity::Info && !opts_.report_info) return;
    switch (sev) {
      case Severity::Error: ++report_.num_errors; break;
      case Severity::Warning: ++report_.num_warnings; break;
      case Severity::Info: ++report_.num_infos; break;
    }
    report_.diagnostics.push_back(
        {rule, sev, row, col, std::move(message), std::move(hint)});
  }

  [[nodiscard]] std::string row_name(std::size_t i) const {
    const std::string& n = model_.constraint(i).name;
    return n.empty() ? "c" + std::to_string(i) : n;
  }

  [[nodiscard]] std::string col_name(std::size_t j) const {
    const std::string& n = model_.vars()[j].name;
    return n.empty() ? "x" + std::to_string(j) : n;
  }

  void lint_columns();
  void lint_rows();
  void lint_duplicates();

 private:
  const Model& model_;
  const LintOptions& opts_;
  LintReport report_;
};

/// Range [lo, hi] of a row activity a·x over the variable boxes. Infinite
/// bounds propagate to infinite activity ends.
struct ActivityRange {
  double lo = 0.0;
  double hi = 0.0;
};

ActivityRange activity_range(const Model& m, const LinConstraint& c) {
  ActivityRange r;
  for (const Term& t : c.expr.terms()) {
    const Variable& v = m.var(t.var);
    const double a = t.coef;
    const double at_lb = a * v.lb;  // may be +-inf
    const double at_ub = a * v.ub;
    r.lo += std::min(at_lb, at_ub);
    r.hi += std::max(at_lb, at_ub);
  }
  return r;
}

void Linter::lint_columns() {
  const std::size_t n = model_.num_vars();
  std::vector<std::int32_t> refs(n, 0);
  for (const LinConstraint& c : model_.constraints()) {
    for (const Term& t : c.expr.terms()) ++refs[static_cast<std::size_t>(t.var.index)];
  }
  std::vector<bool> in_objective(n, false);
  for (const Term& t : model_.objective().terms()) {
    in_objective[static_cast<std::size_t>(t.var.index)] = true;
  }

  for (std::size_t j = 0; j < n; ++j) {
    const Variable& v = model_.vars()[j];
    const auto col = static_cast<std::int32_t>(j);
    if (v.lb > v.ub + opts_.tol) {
      add(Rule::ContradictoryBounds, Severity::Error, -1, col,
          "bounds of '" + col_name(j) + "' cross: lb=" + std::to_string(v.lb) +
              " > ub=" + std::to_string(v.ub),
          "a tighten_bounds/parse produced an empty domain; the model is infeasible");
      continue;  // the remaining column rules assume a sane interval
    }
    if (v.is_integral()) {
      const double ilb = std::ceil(v.lb - opts_.tol);
      const double iub = std::floor(v.ub + opts_.tol);
      if (ilb > iub) {
        add(Rule::EmptyIntegerDomain, Severity::Error, -1, col,
            "integer column '" + col_name(j) + "' has no integer in [" +
                std::to_string(v.lb) + ", " + std::to_string(v.ub) + "]",
            "widen the bounds or drop integrality");
      } else {
        const bool frac_lb =
            std::isfinite(v.lb) && std::abs(v.lb - std::round(v.lb)) > opts_.tol;
        const bool frac_ub =
            std::isfinite(v.ub) && std::abs(v.ub - std::round(v.ub)) > opts_.tol;
        if (frac_lb || frac_ub) {
          add(Rule::FractionalIntBounds, Severity::Warning, -1, col,
              "integer column '" + col_name(j) + "' has fractional bounds [" +
                  std::to_string(v.lb) + ", " + std::to_string(v.ub) + "]",
              "tighten to [ceil(lb), floor(ub)] so presolve and branching see "
              "the true domain");
        }
      }
    }
    if (v.lb == v.ub) {
      add(Rule::FixedColumn, Severity::Info, -1, col,
          "column '" + col_name(j) + "' is fixed at " + std::to_string(v.lb),
          "substitute the constant if the fix is permanent");
    } else if (v.lb == -kInf && v.ub == kInf) {
      add(Rule::FreeColumn, Severity::Info, -1, col,
          "column '" + col_name(j) + "' is free (no finite bound)");
    }
    if (refs[j] == 0) {
      add(Rule::UnreferencedColumn, Severity::Warning, -1, col,
          "column '" + col_name(j) + "' appears in no constraint" +
              (in_objective[j] ? " (objective only: it will peg at a bound)"
                               : " and not in the objective"),
          "remove the variable or add the constraints that were meant to "
          "reference it");
    }
  }
}

void Linter::lint_rows() {
  for (std::size_t i = 0; i < model_.num_constraints(); ++i) {
    const LinConstraint& c = model_.constraint(i);
    const auto row = static_cast<std::int32_t>(i);
    const double rtol = opts_.tol * (1.0 + std::abs(c.rhs));

    if (c.expr.terms().empty()) {
      // 0 (<=|>=|=) rhs — either vacuous or a contradiction baked in.
      const bool sat = (c.sense == Sense::LE && 0.0 <= c.rhs + rtol) ||
                       (c.sense == Sense::GE && 0.0 >= c.rhs - rtol) ||
                       (c.sense == Sense::EQ && std::abs(c.rhs) <= rtol);
      add(Rule::EmptyRow, sat ? Severity::Warning : Severity::Error, row, -1,
          "row '" + row_name(i) + "' has no terms: 0 " +
              milp::to_string(c.sense) + " " + std::to_string(c.rhs) +
              (sat ? " (vacuous)" : " (trivially infeasible)"),
          sat ? "drop the row; a pattern probably cancelled all coefficients"
              : "the emitting pattern produced an unsatisfiable constant row");
      continue;
    }

    // Activity-interval analysis against the variable boxes.
    const ActivityRange act = activity_range(model_, c);
    bool infeasible = false;
    bool redundant = false;
    switch (c.sense) {
      case Sense::LE:
        infeasible = act.lo > c.rhs + rtol;
        redundant = act.hi <= c.rhs + rtol;
        break;
      case Sense::GE:
        infeasible = act.hi < c.rhs - rtol;
        redundant = act.lo >= c.rhs - rtol;
        break;
      case Sense::EQ:
        infeasible = act.lo > c.rhs + rtol || act.hi < c.rhs - rtol;
        redundant = act.lo >= c.rhs - rtol && act.hi <= c.rhs + rtol;
        break;
    }
    if (infeasible) {
      add(Rule::InfeasibleRow, Severity::Error, row, -1,
          "row '" + row_name(i) + "' is infeasible for every point in the "
          "variable bounds (activity in [" + std::to_string(act.lo) + ", " +
              std::to_string(act.hi) + "], rhs " + std::to_string(c.rhs) + ")",
          "the row contradicts the variable bounds; check sign or rhs");
    } else if (redundant) {
      add(Rule::RedundantRow, Severity::Info, row, -1,
          "row '" + row_name(i) + "' is satisfied by every point in the "
          "variable bounds (always inactive)",
          "the row never constrains anything; drop it or tighten the rhs");
    }

    // Coefficient conditioning: dynamic range and big-M scan.
    double amin = kInf;
    double amax = 0.0;
    for (const Term& t : c.expr.terms()) {
      const double a = std::abs(t.coef);
      amin = std::min(amin, a);
      amax = std::max(amax, a);
      if (a >= opts_.big_m_threshold && model_.var(t.var).is_integral()) {
        add(Rule::BigM, Severity::Warning, row,
            static_cast<std::int32_t>(t.var.index),
            "row '" + row_name(i) + "' uses big-M coefficient " +
                std::to_string(t.coef) + " on integral column '" +
                col_name(static_cast<std::size_t>(t.var.index)) + "'",
            "derive M from the activity bounds of the row instead of a "
            "universal constant; loose M weakens the LP relaxation");
      }
    }
    if (amax / amin > opts_.coef_range_ratio) {
      add(Rule::CoefficientRange, Severity::Warning, row, -1,
          "row '" + row_name(i) + "' has coefficient magnitudes spanning [" +
              std::to_string(amin) + ", " + std::to_string(amax) +
              "] — ratio beyond " + std::to_string(opts_.coef_range_ratio),
          "rescale the row or the offending columns; such spreads breed "
          "numerical error in the basis factors");
    }
  }
}

void Linter::lint_duplicates() {
  // Group rows by their (normalized) term vector. Within a group, the senses
  // and right-hand sides either duplicate each other, dominate each other,
  // or contradict; all three are worth reporting.
  struct RowRef {
    std::size_t row;
    Sense sense;
    double rhs;
  };
  std::map<std::string, std::vector<RowRef>> groups;
  for (std::size_t i = 0; i < model_.num_constraints(); ++i) {
    const LinConstraint& c = model_.constraint(i);
    if (c.expr.terms().empty()) continue;  // handled by EmptyRow
    std::ostringstream key;
    // Hexfloat: the key must be exact. Default stream precision (6 digits)
    // would merge rows whose coefficients differ past the 6th digit and
    // report them as duplicates or contradictions of each other.
    key << std::hexfloat;
    for (const Term& t : c.expr.terms()) key << t.var.index << ":" << t.coef << ";";
    groups[key.str()].push_back({i, c.sense, c.rhs});
  }

  for (const auto& [key, rows] : groups) {
    if (rows.size() < 2) continue;
    // Implied interval on the shared activity: EQ pins it, GE raises the
    // floor, LE lowers the ceiling.
    double lo = -kInf;
    double hi = kInf;
    for (const RowRef& r : rows) {
      switch (r.sense) {
        case Sense::LE: hi = std::min(hi, r.rhs); break;
        case Sense::GE: lo = std::max(lo, r.rhs); break;
        case Sense::EQ:
          lo = std::max(lo, r.rhs);
          hi = std::min(hi, r.rhs);
          break;
      }
    }
    if (lo > hi + opts_.tol * (1.0 + std::abs(lo))) {
      add(Rule::ContradictoryRows, Severity::Error,
          static_cast<std::int32_t>(rows.back().row), -1,
          "rows over identical terms contradict (first is row " +
              std::to_string(rows.front().row) + " '" +
              row_name(rows.front().row) + "'): no activity satisfies all of "
              "them",
          "two patterns pinned the same expression to incompatible values");
      continue;
    }
    // Within the same sense: equal rhs = exact duplicate, different rhs =
    // one row dominates the other. Mixed senses over the same terms are a
    // legitimate range constraint (l <= a·x <= u) and stay silent.
    for (int s = 0; s < 3; ++s) {
      const Sense sense = static_cast<Sense>(s);
      const RowRef* prev = nullptr;
      for (const RowRef& r : rows) {
        if (r.sense != sense) continue;
        if (prev != nullptr) {
          const bool exact =
              std::abs(prev->rhs - r.rhs) <= opts_.tol * (1.0 + std::abs(prev->rhs));
          add(Rule::DuplicateRow, Severity::Warning,
              static_cast<std::int32_t>(r.row), -1,
              exact ? "row '" + row_name(r.row) + "' duplicates row " +
                          std::to_string(prev->row) + " '" + row_name(prev->row) + "'"
                    : "row '" + row_name(r.row) + "' restates the terms of row " +
                          std::to_string(prev->row) + " '" + row_name(prev->row) +
                          "' with a different rhs (one of them is dominated)",
              "emit the constraint once; duplicated rows slow the simplex and "
              "hide intent");
        }
        prev = &r;
      }
    }
  }
}

}  // namespace

LintReport lint(const Model& model, const LintOptions& options) {
  Linter linter(model, options);
  linter.lint_columns();
  linter.lint_rows();
  linter.lint_duplicates();
  return std::move(linter).take();
}

}  // namespace archex::check
