/// \file report_json.hpp
/// Machine-readable reports for the static-analysis CLIs.
///
/// `milp_lint --json` and `milp_analyze --json` emit the same envelope —
/// schema `archex-check-report/1` — so downstream tooling parses one format:
///
/// ```json
/// {
///   "schema": "archex-check-report/1",
///   "tool": "milp_lint",
///   "model": {"file": "m.lp", "rows": 12, "cols": 9},
///   "summary": {"errors": 1, "warnings": 0, "infos": 2, "findings": 3},
///   "findings": [
///     {"pass": "lint", "rule": "empty-row", "severity": "warning",
///      "row": 3, "col": -1, "message": "...", "origin": "structural"}
///   ],
///   "analysis": { ...present only for milp_analyze... }
/// }
/// ```
///
/// Every finding carries the pass that produced it, a stable kebab-case rule
/// id, a severity, row/col coordinates (-1 when not applicable), and — when
/// row provenance is available — the origin label of the offending row.
/// `tools/validate_report.py` checks instances against this schema in CI.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "check/analyze.hpp"
#include "check/lint.hpp"

namespace archex::check {

/// What the report says about the model it describes.
struct ReportModelInfo {
  std::string file;  ///< path as given on the command line, may be empty
  std::size_t rows = 0;
  std::size_t cols = 0;
};

/// Everything a report can carry. `lint` and `analysis` are both optional:
/// milp_lint sets only `lint`, milp_analyze only `analysis`. `row_origins`
/// (one label per model row, optional) attributes findings to their emitting
/// pattern; rows beyond its length report no origin.
struct JsonReportInput {
  std::string tool;
  ReportModelInfo model;
  const LintReport* lint = nullptr;
  const AnalysisReport* analysis = nullptr;
  const std::vector<std::string>* row_origins = nullptr;
};

/// Renders the archex-check-report/1 JSON document (pretty-printed, trailing
/// newline included).
[[nodiscard]] std::string to_json(const JsonReportInput& input);

/// Reads a `.origins` sidecar file: one `index<TAB>label` line per row.
/// Returns a per-row label vector sized to the largest index seen; missing
/// indices get "unattributed". Throws std::runtime_error on malformed lines.
[[nodiscard]] std::vector<std::string> read_origins_file(const std::string& path);

/// Writes the sidecar format read_origins_file() parses.
void write_origins_file(const std::string& path,
                        const std::vector<std::string>& origins);

}  // namespace archex::check
