#include "graph/digraph.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace archex::graph {

bool Digraph::has_edge(std::int32_t u, std::int32_t v) const {
  const auto& succ = out_[static_cast<std::size_t>(u)];
  return std::find(succ.begin(), succ.end(), v) != succ.end();
}

std::vector<bool> reachable_from(const Digraph& g, const std::vector<std::int32_t>& sources) {
  std::vector<bool> seen(g.num_nodes(), false);
  std::deque<std::int32_t> queue;
  for (std::int32_t s : sources) {
    if (!seen[static_cast<std::size_t>(s)]) {
      seen[static_cast<std::size_t>(s)] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const std::int32_t u = queue.front();
    queue.pop_front();
    for (std::int32_t v : g.successors(u)) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        queue.push_back(v);
      }
    }
  }
  return seen;
}

bool reaches(const Digraph& g, const std::vector<std::int32_t>& sources, std::int32_t target) {
  return reachable_from(g, sources)[static_cast<std::size_t>(target)];
}

std::vector<std::int32_t> topological_order(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t v = 0; v < n; ++v) indeg[v] = g.in_degree(static_cast<std::int32_t>(v));
  std::deque<std::int32_t> ready;
  for (std::size_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push_back(static_cast<std::int32_t>(v));
  }
  std::vector<std::int32_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::int32_t u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (std::int32_t v : g.successors(u)) {
      if (--indeg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }
  if (order.size() != n) return {};
  return order;
}

bool has_cycle(const Digraph& g) {
  return g.num_nodes() != 0 && topological_order(g).empty();
}

namespace {

struct PathEnumerator {
  const Digraph& g;
  std::int32_t target;
  const std::function<bool(const std::vector<std::int32_t>&)>& visit;
  std::size_t max_paths;
  std::vector<bool> on_path;
  std::vector<std::int32_t> path;
  std::size_t count = 0;
  bool stopped = false;

  void dfs(std::int32_t u) {
    if (stopped) return;
    on_path[static_cast<std::size_t>(u)] = true;
    path.push_back(u);
    if (u == target) {
      ++count;
      if (!visit(path) || count >= max_paths) stopped = true;
    } else {
      for (std::int32_t v : g.successors(u)) {
        if (!on_path[static_cast<std::size_t>(v)]) dfs(v);
        if (stopped) break;
      }
    }
    path.pop_back();
    on_path[static_cast<std::size_t>(u)] = false;
  }
};

}  // namespace

std::size_t enumerate_paths(const Digraph& g, const std::vector<std::int32_t>& sources,
                            std::int32_t target,
                            const std::function<bool(const std::vector<std::int32_t>&)>& visit,
                            std::size_t max_paths) {
  PathEnumerator pe{g, target, visit, max_paths, std::vector<bool>(g.num_nodes(), false), {}, 0,
                    false};
  for (std::int32_t s : sources) {
    if (pe.stopped) break;
    pe.dfs(s);
  }
  return pe.count;
}

std::vector<std::vector<std::int32_t>> all_paths(const Digraph& g,
                                                 const std::vector<std::int32_t>& sources,
                                                 std::int32_t target, std::size_t max_paths) {
  std::vector<std::vector<std::int32_t>> out;
  enumerate_paths(
      g, sources, target,
      [&](const std::vector<std::int32_t>& p) {
        out.push_back(p);
        return true;
      },
      max_paths);
  return out;
}

namespace {

/// Dense residual-capacity max-flow (Edmonds-Karp) on a transformed graph.
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t n) : n_(n), cap_(n * n, 0), adj_(n) {}

  void add(std::int32_t u, std::int32_t v, int c) {
    if (cap_[idx(u, v)] == 0 && cap_[idx(v, u)] == 0 && u != v) {
      adj_[static_cast<std::size_t>(u)].push_back(v);
      adj_[static_cast<std::size_t>(v)].push_back(u);
    }
    cap_[idx(u, v)] += c;
  }

  /// Residual-reachable set from `s` after run() (min-cut certificate side).
  [[nodiscard]] std::vector<bool> residual_reachable(std::int32_t s) const {
    std::vector<bool> seen(n_, false);
    std::deque<std::int32_t> q{s};
    seen[static_cast<std::size_t>(s)] = true;
    while (!q.empty()) {
      const std::int32_t u = q.front();
      q.pop_front();
      for (std::int32_t v : adj_[static_cast<std::size_t>(u)]) {
        if (!seen[static_cast<std::size_t>(v)] && cap_[idx(u, v)] > 0) {
          seen[static_cast<std::size_t>(v)] = true;
          q.push_back(v);
        }
      }
    }
    return seen;
  }

  int run(std::int32_t s, std::int32_t t) {
    int flow = 0;
    for (;;) {
      // BFS for a shortest augmenting path.
      std::vector<std::int32_t> parent(n_, -1);
      parent[static_cast<std::size_t>(s)] = s;
      std::deque<std::int32_t> q{s};
      while (!q.empty() && parent[static_cast<std::size_t>(t)] < 0) {
        const std::int32_t u = q.front();
        q.pop_front();
        for (std::int32_t v : adj_[static_cast<std::size_t>(u)]) {
          if (parent[static_cast<std::size_t>(v)] < 0 && cap_[idx(u, v)] > 0) {
            parent[static_cast<std::size_t>(v)] = u;
            q.push_back(v);
          }
        }
      }
      if (parent[static_cast<std::size_t>(t)] < 0) return flow;
      int aug = std::numeric_limits<int>::max();
      for (std::int32_t v = t; v != s; v = parent[static_cast<std::size_t>(v)]) {
        aug = std::min(aug, cap_[idx(parent[static_cast<std::size_t>(v)], v)]);
      }
      for (std::int32_t v = t; v != s; v = parent[static_cast<std::size_t>(v)]) {
        const std::int32_t u = parent[static_cast<std::size_t>(v)];
        cap_[idx(u, v)] -= aug;
        cap_[idx(v, u)] += aug;
      }
      flow += aug;
    }
  }

 private:
  [[nodiscard]] std::size_t idx(std::int32_t u, std::int32_t v) const {
    return static_cast<std::size_t>(u) * n_ + static_cast<std::size_t>(v);
  }
  std::size_t n_;
  std::vector<int> cap_;
  std::vector<std::vector<std::int32_t>> adj_;
};

constexpr int kBigCapacity = 1'000'000;

}  // namespace

int max_flow_unit_nodes(const Digraph& g, const std::vector<std::int32_t>& sources,
                        std::int32_t target, const std::vector<int>& node_capacity) {
  // Split each node v into v_in (2v) and v_out (2v+1) with an internal edge of
  // the node's capacity; add a super-source.
  const std::size_t n = g.num_nodes();
  const std::int32_t super = static_cast<std::int32_t>(2 * n);
  MaxFlow mf(2 * n + 1);
  for (std::size_t v = 0; v < n; ++v) {
    mf.add(static_cast<std::int32_t>(2 * v), static_cast<std::int32_t>(2 * v + 1),
           node_capacity[v]);
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::int32_t v : g.successors(static_cast<std::int32_t>(u))) {
      mf.add(static_cast<std::int32_t>(2 * u + 1), 2 * v, kBigCapacity);
    }
  }
  for (std::int32_t s : sources) mf.add(super, 2 * s, kBigCapacity);
  return mf.run(super, 2 * target + 1);
}

std::vector<std::int32_t> min_vertex_cut(const Digraph& g,
                                         const std::vector<std::int32_t>& sources,
                                         std::int32_t target) {
  // Same split-node transform as max_flow_unit_nodes with unit intermediate
  // capacities; after max-flow, a node is in the cut iff its in-half is
  // residual-reachable from the super-source but its out-half is not (the
  // internal unit edge is saturated across the cut).
  const std::size_t n = g.num_nodes();
  const std::int32_t super = static_cast<std::int32_t>(2 * n);
  MaxFlow mf(2 * n + 1);
  std::vector<int> cap(n, 1);
  for (std::int32_t s : sources) cap[static_cast<std::size_t>(s)] = kBigCapacity;
  cap[static_cast<std::size_t>(target)] = kBigCapacity;
  for (std::size_t v = 0; v < n; ++v) {
    mf.add(static_cast<std::int32_t>(2 * v), static_cast<std::int32_t>(2 * v + 1), cap[v]);
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::int32_t v : g.successors(static_cast<std::int32_t>(u))) {
      mf.add(static_cast<std::int32_t>(2 * u + 1), 2 * v, kBigCapacity);
    }
  }
  for (std::int32_t s : sources) mf.add(super, 2 * s, kBigCapacity);
  (void)mf.run(super, 2 * target + 1);

  const std::vector<bool> reach = mf.residual_reachable(super);
  std::vector<std::int32_t> cut;
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<std::int32_t>(v) == target) continue;
    if (std::find(sources.begin(), sources.end(), static_cast<std::int32_t>(v)) !=
        sources.end()) {
      continue;
    }
    if (reach[2 * v] && !reach[2 * v + 1]) cut.push_back(static_cast<std::int32_t>(v));
  }
  return cut;
}

int vertex_disjoint_paths(const Digraph& g, const std::vector<std::int32_t>& sources,
                          std::int32_t target) {
  std::vector<int> cap(g.num_nodes(), 1);
  for (std::int32_t s : sources) cap[static_cast<std::size_t>(s)] = kBigCapacity;
  cap[static_cast<std::size_t>(target)] = kBigCapacity;
  return max_flow_unit_nodes(g, sources, target, cap);
}

double longest_path_weight(const Digraph& g, const std::vector<std::int32_t>& sources,
                           std::int32_t target, const std::vector<double>& node_weight) {
  const std::vector<std::int32_t> order = topological_order(g);
  if (order.empty() && g.num_nodes() > 0) {
    throw std::invalid_argument("longest_path_weight: graph has a cycle");
  }
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_nodes(), kNegInf);
  for (std::int32_t s : sources) {
    dist[static_cast<std::size_t>(s)] = node_weight[static_cast<std::size_t>(s)];
  }
  for (std::int32_t u : order) {
    if (dist[static_cast<std::size_t>(u)] == kNegInf) continue;
    for (std::int32_t v : g.successors(u)) {
      const double cand = dist[static_cast<std::size_t>(u)] + node_weight[static_cast<std::size_t>(v)];
      dist[static_cast<std::size_t>(v)] = std::max(dist[static_cast<std::size_t>(v)], cand);
    }
  }
  return dist[static_cast<std::size_t>(target)];
}

}  // namespace archex::graph
