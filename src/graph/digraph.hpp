/// \file digraph.hpp
/// Directed-graph substrate for architecture analysis.
///
/// ArchEx represents an architecture as a directed graph (V, E) (Sec. 2 of
/// the paper). The MILP side works on decision-variable matrices; this module
/// is the *concrete* graph used to analyze solved configurations: path
/// queries, reachability, vertex-disjoint path counts (Menger via max-flow),
/// and enumeration of simple paths for exact reliability analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace archex::graph {

/// A simple directed graph over nodes 0..n-1 with O(1) amortized edge
/// insertion and both forward and reverse adjacency.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t num_nodes) { resize(num_nodes); }

  void resize(std::size_t num_nodes) {
    out_.resize(num_nodes);
    in_.resize(num_nodes);
  }

  [[nodiscard]] std::size_t num_nodes() const { return out_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Adds edge u -> v. Parallel edges are kept (they do not affect the
  /// analyses in this library but preserve multiplicity information).
  void add_edge(std::int32_t u, std::int32_t v) {
    out_[static_cast<std::size_t>(u)].push_back(v);
    in_[static_cast<std::size_t>(v)].push_back(u);
    ++num_edges_;
  }

  [[nodiscard]] bool has_edge(std::int32_t u, std::int32_t v) const;
  [[nodiscard]] const std::vector<std::int32_t>& successors(std::int32_t u) const {
    return out_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] const std::vector<std::int32_t>& predecessors(std::int32_t v) const {
    return in_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::size_t out_degree(std::int32_t u) const {
    return out_[static_cast<std::size_t>(u)].size();
  }
  [[nodiscard]] std::size_t in_degree(std::int32_t v) const {
    return in_[static_cast<std::size_t>(v)].size();
  }

 private:
  std::vector<std::vector<std::int32_t>> out_;
  std::vector<std::vector<std::int32_t>> in_;
  std::size_t num_edges_ = 0;
};

/// Nodes reachable from any node in `sources` (including the sources).
[[nodiscard]] std::vector<bool> reachable_from(const Digraph& g,
                                               const std::vector<std::int32_t>& sources);

/// True if `target` is reachable from any node of `sources`.
[[nodiscard]] bool reaches(const Digraph& g, const std::vector<std::int32_t>& sources,
                           std::int32_t target);

/// Topological order of the graph; empty if the graph has a cycle.
[[nodiscard]] std::vector<std::int32_t> topological_order(const Digraph& g);

/// True if the graph contains a directed cycle.
[[nodiscard]] bool has_cycle(const Digraph& g);

/// Enumerates all simple paths from any source to `target`, invoking `visit`
/// with each path (sequence of node ids, source first). Stops early if
/// `visit` returns false or `max_paths` paths were produced. Returns the
/// number of paths visited.
std::size_t enumerate_paths(const Digraph& g, const std::vector<std::int32_t>& sources,
                            std::int32_t target,
                            const std::function<bool(const std::vector<std::int32_t>&)>& visit,
                            std::size_t max_paths = 1'000'000);

/// All simple paths as a vector (convenience wrapper over enumerate_paths).
[[nodiscard]] std::vector<std::vector<std::int32_t>> all_paths(
    const Digraph& g, const std::vector<std::int32_t>& sources, std::int32_t target,
    std::size_t max_paths = 1'000'000);

/// Maximum number of *internally vertex-disjoint* paths from the source set
/// to `target` (Menger's theorem; computed by max-flow with unit node
/// capacities on a split-node transform). Source and target nodes themselves
/// are not capacity-limited. `node_capacity` optionally overrides the
/// per-node capacity (by node id) for intermediate nodes.
[[nodiscard]] int vertex_disjoint_paths(const Digraph& g,
                                        const std::vector<std::int32_t>& sources,
                                        std::int32_t target);

/// Maximum flow from `source` to `sink` with integer edge capacities given by
/// `capacity(u, v)` per adjacency entry. BFS augmenting paths (Edmonds-Karp).
/// Used as the reference implementation for the MILP disjoint-path encoding.
[[nodiscard]] int max_flow_unit_nodes(const Digraph& g,
                                      const std::vector<std::int32_t>& sources,
                                      std::int32_t target,
                                      const std::vector<int>& node_capacity);

/// Nodes forming a minimum *vertex* cut separating `sources` from `target`
/// (excluding sources and the target themselves): the certificate for why
/// vertex_disjoint_paths returns its value (Menger). Empty when the target
/// is unreachable or directly adjacent beyond cutting. Used by the lazy
/// algorithm's diagnostics to explain which components bottleneck a link.
[[nodiscard]] std::vector<std::int32_t> min_vertex_cut(const Digraph& g,
                                                       const std::vector<std::int32_t>& sources,
                                                       std::int32_t target);

/// Longest path weight (node weights) from any source to `target` in a DAG;
/// returns -infinity if target unreachable. Used for cycle-time analysis of
/// solved architectures. Throws std::invalid_argument on cyclic graphs.
[[nodiscard]] double longest_path_weight(const Digraph& g,
                                         const std::vector<std::int32_t>& sources,
                                         std::int32_t target,
                                         const std::vector<double>& node_weight);

}  // namespace archex::graph
