/// \file legacy_encoder.hpp
/// Baseline encoding after [3, 11]: mapping folded into the interconnection
/// variables.
///
/// The paper's Sec. 2 argues the ArchEx 2.0 encoding (separate selection
/// delta and mapping m; decision-variable count *linear* in the number of
/// library options l) improves on the predecessor encoding where each edge
/// variable is replicated per implementation pair — z_{ij}^{ab} = "edge from
/// node i implemented by library option a to node j implemented by b" —
/// making the count *quadratic* in l. Sec. 4.1 reports ~1/2 the constraints
/// and 2-4x faster solves for the new encoding.
///
/// This module reimplements the legacy encoding faithfully enough to
/// reproduce that comparison (bench_encoding): same template, same library,
/// same connectivity requirements, two formulations.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "arch/arch_template.hpp"
#include "arch/library.hpp"
#include "milp/model.hpp"

namespace archex {

/// The legacy [3]-style MILP for a template + library.
class LegacyEncoding {
 public:
  LegacyEncoding(const Library& lib, const ArchTemplate& tmpl);

  [[nodiscard]] milp::Model& model() { return model_; }
  [[nodiscard]] const milp::Model& model() const { return model_; }

  /// Aggregate edge indicator e_ij = sum_ab z_ij^ab (an expression, not a
  /// separate variable — the legacy style works on the z variables).
  [[nodiscard]] milp::LinExpr edge_expr(NodeId from, NodeId to) const;
  /// Implementation indicator y_i^a.
  [[nodiscard]] milp::VarId impl_var(NodeId node, LibIndex lib) const;
  /// Instantiation indicator delta_i (sum_a y_i^a).
  [[nodiscard]] milp::LinExpr used_expr(NodeId node) const;

  /// Degree-style connectivity requirement on the aggregate edges:
  /// sum over (a in from, b in to) of e_ab  sense  n, per `from` node.
  void require_connections(const NodeFilter& from, const NodeFilter& to, int n,
                           milp::Sense sense);

  /// Sets the cost objective: component costs via y, edge costs via z.
  void finalize_objective(double edge_cost);

 private:
  const Library& lib_;
  const ArchTemplate& tmpl_;
  milp::Model model_;
  /// Per candidate edge: z variables indexed by (impl of from, impl of to).
  struct EdgeBlock {
    NodeId from, to;
    std::vector<std::vector<milp::VarId>> z;  // [a][b]
  };
  std::vector<EdgeBlock> blocks_;
  std::map<std::pair<NodeId, NodeId>, std::size_t> block_of_;
  std::vector<std::vector<milp::VarId>> y_;  // [node][candidate]
  std::vector<std::vector<LibIndex>> cand_;  // [node] -> library indices
};

}  // namespace archex
