/// \file arch_template.hpp
/// The architecture template T = (V, E): a reconfigurable graph with a fixed
/// node set and a variable edge set (Sec. 2).
///
/// Template nodes are "virtual" components: they carry a type, an optional
/// subtype and tags, but no implementation — the solver decides which library
/// component realizes each node (the map M) and which candidate edges exist
/// (the configuration E). Candidate edges are declared per ordered node-group
/// pair; only declared pairs get an edge decision variable, which keeps the
/// encoding linear in the realistic connection structure instead of |V|^2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace archex {

/// Index of a node in a template.
using NodeId = std::int32_t;

/// A "virtual" component of the template.
struct NodeSpec {
  std::string name;
  std::string type;
  /// Optional subtype restriction for the mapping. Supports an alternation
  /// list "B|AB" (the node may map to any listed subtype); empty = any.
  std::string subtype;
  std::vector<std::string> tags;  ///< optional, e.g. location LE/RI/MI
  /// Optional fixed implementation: restricts the mapping candidates to the
  /// named library component (used for sinks whose characteristics are
  /// givens, e.g. the EPN loads with fixed power demands).
  std::string impl{};

  [[nodiscard]] bool has_tag(const std::string& tag) const {
    for (const std::string& t : tags) {
      if (t == tag) return true;
    }
    return false;
  }

  /// True if the node's subtype restriction admits `s` (empty restriction
  /// admits everything; "B|AB" admits B and AB).
  [[nodiscard]] bool allows_subtype(const std::string& s) const;
};

/// Selects a subset of template nodes by type / subtype / tag. Empty fields
/// match anything; this is the argument form every pattern takes (the paper's
/// T, S', and tag parameters).
struct NodeFilter {
  std::string type{};
  std::string subtype{};
  std::string tag{};

  [[nodiscard]] bool matches(const NodeSpec& n) const {
    if (!type.empty() && n.type != type) return false;
    if (!subtype.empty() && !n.allows_subtype(subtype)) return false;
    if (!tag.empty() && !n.has_tag(tag)) return false;
    return true;
  }
  [[nodiscard]] std::string to_string() const;

  /// Parses "Type", "Type/Subtype", "Type#tag" or "Type/Subtype#tag"
  /// ("*" or empty segment = any). This is the argument syntax of the
  /// problem-description files.
  [[nodiscard]] static NodeFilter parse(const std::string& text);

  /// Convenience factories so patterns read close to the paper's syntax.
  static NodeFilter of_type(std::string t) { return {std::move(t), {}, {}}; }
  static NodeFilter of(std::string t, std::string s, std::string tag = {}) {
    return {std::move(t), std::move(s), std::move(tag)};
  }
};

/// The reconfigurable architecture template.
class ArchTemplate {
 public:
  /// Adds a virtual component; node names must be unique.
  NodeId add_node(NodeSpec spec);

  /// Convenience: adds `count` nodes named `<prefix>1..count`.
  std::vector<NodeId> add_nodes(int count, const std::string& prefix, std::string type,
                                std::string subtype = {}, std::vector<std::string> tags = {});

  /// Declares candidate edges from every node matching `from` to every node
  /// matching `to` (self-loops excluded). Idempotent per pair.
  void allow_connection(const NodeFilter& from, const NodeFilter& to);
  /// Declares a single candidate edge.
  void allow_edge(NodeId from, NodeId to);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] const NodeSpec& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<NodeSpec>& nodes() const { return nodes_; }

  [[nodiscard]] std::vector<NodeId> select(const NodeFilter& f) const;
  [[nodiscard]] NodeId find(const std::string& name) const;  ///< -1 if absent

  /// Candidate edges as ordered (from, to) pairs, in declaration order.
  [[nodiscard]] const std::vector<std::pair<NodeId, NodeId>>& candidate_edges() const {
    return edges_;
  }
  [[nodiscard]] bool edge_allowed(NodeId from, NodeId to) const;

  /// All distinct node types in first-appearance order.
  [[nodiscard]] std::vector<std::string> types() const;

 private:
  std::vector<NodeSpec> nodes_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<std::vector<bool>> edge_set_;  // dense allowed-matrix for O(1) lookup
};

}  // namespace archex
