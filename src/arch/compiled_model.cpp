#include "arch/compiled_model.hpp"

#include <stdexcept>
#include <utility>

#include "obs/span.hpp"

namespace archex {

namespace {

/// Bumped whenever the encoder's output for an unchanged spec could change
/// (new structural constraints, different row ordering, ...). Part of the
/// fingerprint so stale cache entries from an older encoder never collide
/// with the new encoding.
constexpr const char* kEncoderVersion = "archex-encoder/1";

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void mix_str(std::uint64_t& h, const std::string& s) {
  // Length-prefixed so ("ab","c") and ("a","bc") hash differently.
  const std::uint64_t n = s.size();
  mix(h, &n, sizeof n);
  mix(h, s.data(), s.size());
}

void mix_f64(std::uint64_t& h, double v) { mix(h, &v, sizeof v); }
void mix_u64(std::uint64_t& h, std::uint64_t v) { mix(h, &v, sizeof v); }

std::uint64_t fingerprint_of(const Problem& p, const milp::Model& base) {
  std::uint64_t h = kFnvOffset;
  mix_str(h, kEncoderVersion);

  const Library& lib = p.library();
  mix_u64(h, lib.size());
  for (const Component& c : lib.components()) {
    mix_str(h, c.name);
    mix_str(h, c.type);
    mix_str(h, c.subtype);
    mix_u64(h, c.tags.size());
    for (const std::string& t : c.tags) mix_str(h, t);
    mix_u64(h, c.attrs.size());
    for (const auto& [k, v] : c.attrs) {
      mix_str(h, k);
      mix_f64(h, v);
    }
  }
  mix_f64(h, lib.edge_cost());

  const ArchTemplate& tmpl = p.arch_template();
  mix_u64(h, tmpl.num_nodes());
  for (const NodeSpec& n : tmpl.nodes()) {
    mix_str(h, n.name);
    mix_str(h, n.type);
    mix_str(h, n.subtype);
    mix_u64(h, n.tags.size());
    for (const std::string& t : n.tags) mix_str(h, t);
    mix_str(h, n.impl);
  }
  // Candidate-edge structure via the encoded edge list (declaration order).
  mix_u64(h, p.edges().num_edges());
  for (std::size_t i = 0; i < p.edges().num_edges(); ++i) {
    const AdjacencyMatrix::Edge& e = p.edges().edge(static_cast<std::int32_t>(i));
    mix_u64(h, static_cast<std::uint64_t>(e.from));
    mix_u64(h, static_cast<std::uint64_t>(e.to));
    mix_f64(h, p.edge_base_cost(static_cast<std::int32_t>(i)));
  }

  mix_u64(h, p.applied_patterns().size());
  for (const std::string& pat : p.applied_patterns()) mix_str(h, pat);

  // Model shape guards against anything the fields above miss (extra cost
  // terms, direct model edits by custom code).
  const milp::ModelStats st = base.stats();
  mix_u64(h, st.num_vars);
  mix_u64(h, st.num_constraints);
  mix_u64(h, st.num_nonzeros);
  mix_f64(h, base.objective().constant());
  for (const milp::Term& t : base.objective().terms()) {
    mix_u64(h, static_cast<std::uint64_t>(t.var.index));
    mix_f64(h, t.coef);
  }
  return h;
}

}  // namespace

CompiledModel compile(const Problem& problem) {
  CompiledModel cm;
  cm.lib_ = problem.library();
  cm.tmpl_ = problem.arch_template();
  cm.base_ = problem.model();
  // Freeze the objective the fused path assembles at every solve.
  cm.base_.set_objective(problem.cost_expression(),
                         milp::ObjectiveSense::Minimize);

  const ArchTemplate& tmpl = cm.tmpl_;
  cm.delta_.reserve(tmpl.num_nodes());
  cm.cand_.reserve(tmpl.num_nodes());
  cm.vars_by_lib_.resize(cm.lib_.size());
  for (std::size_t j = 0; j < tmpl.num_nodes(); ++j) {
    const NodeId v = static_cast<NodeId>(j);
    cm.delta_.push_back(problem.instantiated(v));
    cm.cand_.push_back(problem.mapping().candidates(v));
    for (const LibraryMapping::Candidate& c : cm.cand_.back()) {
      cm.vars_by_lib_[static_cast<std::size_t>(c.lib)].push_back(c.var);
    }
  }

  cm.edges_.reserve(problem.edges().num_edges());
  for (std::size_t i = 0; i < problem.edges().num_edges(); ++i) {
    const AdjacencyMatrix::Edge& e =
        problem.edges().edge(static_cast<std::int32_t>(i));
    cm.edges_.push_back(
        {e.from, e.to, e.var,
         problem.edge_base_cost(static_cast<std::int32_t>(i))});
  }

  for (const auto& [name, f] : problem.flows()) {
    cm.flows_.emplace(name, f.edge_vars);
  }

  for (std::size_t row = 0; row < cm.base_.num_constraints(); ++row) {
    const std::string& name = cm.base_.constraint(row).name;
    if (!name.empty()) cm.rows_by_name_[name].push_back(row);
  }

  // Re-intern the row provenance (label set is small; linear intern is fine).
  cm.row_origin_.reserve(cm.base_.num_constraints());
  std::map<std::string, std::int32_t> interned;
  for (std::size_t row = 0; row < cm.base_.num_constraints(); ++row) {
    const std::string& label = problem.origin_of_row(row);
    auto [it, fresh] = interned.emplace(
        label, static_cast<std::int32_t>(cm.row_labels_.size()));
    if (fresh) cm.row_labels_.push_back(label);
    cm.row_origin_.push_back(it->second);
  }

  cm.applied_patterns_ = problem.applied_patterns();
  cm.pattern_costs_ = problem.pattern_costs();
  cm.encode_seconds_ = 0.0;
  for (const Problem::PatternCost& pc : cm.pattern_costs_) {
    cm.encode_seconds_ += pc.seconds;
  }
  cm.fingerprint_ = fingerprint_of(problem, cm.base_);
  return cm;
}

const std::string& CompiledModel::origin_of_row(std::size_t row) const {
  static const std::string kUnknown = "unattributed";
  if (row >= row_origin_.size()) return kUnknown;
  return row_labels_[static_cast<std::size_t>(row_origin_[row])];
}

milp::Model CompiledModel::instantiate(const Scenario& sc) const {
  milp::Model m = base_;

  // Objective deltas. LinExpr::add_term merges coefficients, so adding
  // (scale - 1) * base_cost rewrites a slot to exactly scale * base_cost.
  if (!sc.component_cost_scale.empty() || sc.edge_cost_scale != 1.0) {
    milp::LinExpr obj = base_.objective();
    for (const auto& [name, scale] : sc.component_cost_scale) {
      const std::optional<LibIndex> idx = lib_.find(name);
      if (!idx.has_value()) {
        throw std::invalid_argument("Scenario '" + sc.name +
                                    "': unknown component '" + name + "'");
      }
      const double base_cost = lib_.at(*idx).cost();
      for (milp::VarId v : vars_by_lib_[static_cast<std::size_t>(*idx)]) {
        obj.add_term(v, (scale - 1.0) * base_cost);
      }
    }
    if (sc.edge_cost_scale != 1.0) {
      for (const EdgeSlot& e : edges_) {
        obj.add_term(e.var, (sc.edge_cost_scale - 1.0) * e.base_cost);
      }
    }
    m.set_objective(std::move(obj), milp::ObjectiveSense::Minimize);
  }

  // Availability toggles: fix every mapping binary of the component to 0.
  for (const std::string& name : sc.unavailable) {
    const std::optional<LibIndex> idx = lib_.find(name);
    if (!idx.has_value()) {
      throw std::invalid_argument("Scenario '" + sc.name +
                                  "': unknown component '" + name + "'");
    }
    for (milp::VarId v : vars_by_lib_[static_cast<std::size_t>(*idx)]) {
      m.tighten_bounds(v, 0.0, 0.0);
    }
  }

  // RHS rewrites on named rows.
  for (const auto& [name, value] : sc.rhs) {
    const auto it = rows_by_name_.find(name);
    if (it == rows_by_name_.end()) {
      throw std::invalid_argument("Scenario '" + sc.name +
                                  "': no constraint named '" + name + "'");
    }
    for (std::size_t row : it->second) m.set_rhs(row, value);
  }

  // Structural additions last, so parameter rows keep their base indices.
  for (const milp::LinConstraint& c : sc.extra_constraints) {
    m.add_constraint(c);
  }
  return m;
}

Architecture CompiledModel::extract(const milp::Solution& sol) const {
  Architecture arch;
  arch.nodes.resize(tmpl_.num_nodes());
  for (std::size_t j = 0; j < tmpl_.num_nodes(); ++j) {
    const NodeSpec& spec = tmpl_.node(static_cast<NodeId>(j));
    Architecture::Node& n = arch.nodes[j];
    n.name = spec.name;
    n.type = spec.type;
    n.subtype = spec.subtype;
    n.tags = spec.tags;
    n.used = sol.value(delta_[j]) > 0.5;
    if (n.used) {
      for (const LibraryMapping::Candidate& c : cand_[j]) {
        if (sol.value(c.var) > 0.5) {
          n.impl = c.lib;
          n.impl_name = lib_.at(c.lib).name;
          break;
        }
      }
    }
  }
  for (const EdgeSlot& e : edges_) {
    if (sol.value(e.var) > 0.5) arch.edges.emplace_back(e.from, e.to);
  }
  // The solved objective *is* the scenario-adjusted cost (the instance's
  // objective differs from the base cost expression under cost scales).
  arch.cost = sol.objective;
  for (const auto& [name, edge_vars] : flows_) {
    std::vector<FlowEdge> active;
    for (std::size_t i = 0; i < edge_vars.size(); ++i) {
      const double rate = sol.value(edge_vars[i]);
      if (rate > 1e-6) active.push_back({edges_[i].from, edges_[i].to, rate});
    }
    if (!active.empty()) arch.flows.emplace(name, std::move(active));
  }
  return arch;
}

ExplorationResult solve(const CompiledModel& cm, const Scenario& sc,
                        const milp::MilpOptions& options, SweepState* sweep) {
  ExplorationResult res;
  // Compiling paid the encode once, outside this call.
  res.encode_seconds = 0.0;

  milp::MilpOptions opts = options;
  obs::SpanBuffer* const spans =
      opts.profiler != nullptr ? opts.profiler->main() : nullptr;

  milp::Model instance;
  {
    obs::ScopedSpan formulate_span(spans,
                                   obs::span_id(obs::SpanName::Formulate));
    obs::ScopedTimer formulate_timer(
        opts.metrics != nullptr ? &opts.metrics->timer("arch.formulate")
                                : nullptr,
        &res.formulation_seconds);
    instance = cm.instantiate(sc);
    res.stats = instance.stats();
  }

  milp::WarmStartHint hint;
  if (sweep != nullptr) {
    // The hint lives in the full column space, so presolve is off for every
    // solve of a sweep (not just warm ones — objectives must stay
    // comparable), and each solve exports its root basis for the next.
    opts.use_presolve = false;
    opts.export_basis = true;
    if (sweep->has_hint && !sc.structural()) {
      hint.basis = sweep->basis;
      hint.x = sweep->x;
      opts.warm_hint = &hint;
    }
  }

  {
    obs::ScopedSpan solve_span(spans, obs::span_id(obs::SpanName::Solve));
    obs::ScopedTimer solve_timer(
        opts.metrics != nullptr ? &opts.metrics->timer("arch.solve") : nullptr,
        &res.solver_seconds);
    res.solution = milp::solve_milp(instance, opts);
  }

  if (sweep != nullptr) {
    ++(res.solution.warm_started ? sweep->warm_solves : sweep->cold_solves);
    if (!sc.structural() && res.solution.final_basis != nullptr &&
        res.solution.has_incumbent) {
      sweep->basis = res.solution.final_basis;
      sweep->x = res.solution.x;
      sweep->has_hint = true;
    }
  }

  if (res.solution.has_incumbent) {
    obs::ScopedSpan extract_span(spans, obs::span_id(obs::SpanName::Extract));
    obs::ScopedTimer extract_timer(
        opts.metrics != nullptr ? &opts.metrics->timer("arch.extract")
                                : nullptr,
        &res.extract_seconds);
    res.architecture = cm.extract(res.solution);
  }
  // Pick up the arch-layer timers next to the solver's metrics.
  if (opts.metrics != nullptr) res.solution.metrics = opts.metrics->snapshot();
  return res;
}

std::shared_ptr<const CompiledModel> CompiledModelCache::get(std::uint64_t fp) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(fp);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->second;
}

void CompiledModelCache::put(std::shared_ptr<const CompiledModel> cm) {
  if (cm == nullptr || capacity_ == 0) return;
  const std::uint64_t fp = cm->fingerprint();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(fp);
  if (it != index_.end()) {
    it->second->second = std::move(cm);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(fp, std::move(cm));
  index_.emplace(fp, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

CompiledModelCache::Stats CompiledModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t CompiledModelCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace archex
