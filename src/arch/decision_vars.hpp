/// \file decision_vars.hpp
/// Reusable decision-variable containers (Sec. 3): AdjacencyMatrix holds the
/// edge binaries E, LibraryMapping holds the mapping binaries M. Both map
/// structural coordinates (node ids, library indices) to MILP variable ids,
/// so patterns never touch raw variable indices.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch_template.hpp"
#include "arch/library.hpp"
#include "milp/model.hpp"

namespace archex {

/// Edge decision variables e_ij over the template's candidate edges.
class AdjacencyMatrix {
 public:
  AdjacencyMatrix() = default;
  AdjacencyMatrix(const ArchTemplate& tmpl, milp::Model& model);

  /// Variable for edge (from, to); invalid VarId if the pair is not a
  /// candidate edge.
  [[nodiscard]] milp::VarId at(NodeId from, NodeId to) const;
  [[nodiscard]] bool allowed(NodeId from, NodeId to) const { return at(from, to).valid(); }

  struct Edge {
    NodeId from;
    NodeId to;
    milp::VarId var;
  };
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  /// Candidate edges into / out of a node (indices into edges()).
  [[nodiscard]] const std::vector<std::int32_t>& in_edges(NodeId v) const {
    return in_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const std::vector<std::int32_t>& out_edges(NodeId v) const {
    return out_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const Edge& edge(std::int32_t idx) const {
    return edges_[static_cast<std::size_t>(idx)];
  }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<std::int32_t>> var_of_;  // dense (from,to) -> edge idx, -1 = none
  std::vector<std::vector<std::int32_t>> in_, out_;
};

/// Mapping decision variables m^k_ij: node j implemented by library
/// component i. Candidates are the library components whose type matches the
/// node's type (and subtype, when the node declares one).
class LibraryMapping {
 public:
  LibraryMapping() = default;
  LibraryMapping(const ArchTemplate& tmpl, const Library& lib, milp::Model& model);

  struct Candidate {
    LibIndex lib;
    milp::VarId var;
  };
  /// Candidate implementations of node j.
  [[nodiscard]] const std::vector<Candidate>& candidates(NodeId j) const {
    return cand_[static_cast<std::size_t>(j)];
  }

  /// Variable m_ij for (library component i, node j); invalid if not a
  /// candidate pair.
  [[nodiscard]] milp::VarId var(LibIndex i, NodeId j) const;

  /// Linear expression of a mapped attribute of node j:
  /// sum_i m_ij * attr_i. Evaluates to 0 when the node is not instantiated.
  [[nodiscard]] milp::LinExpr attr_expr(NodeId j, const std::string& key,
                                        const Library& lib) const;

 private:
  std::vector<std::vector<Candidate>> cand_;
};

}  // namespace archex
