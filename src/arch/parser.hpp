/// \file parser.hpp
/// Text-file front end (Sec. 3): "The input to the toolbox consists of two
/// text files: problem description and library."
///
/// Library file — one record per line, grouped however the user likes:
///
///     # aircraft EPN component library
///     edge_cost 100
///     component GenHV  type=Generator subtype=HV cost=6000 power=60 failprob=2e-4
///     component GenLV  type=Generator subtype=LV cost=2000 power=20 failprob=2e-4
///
/// `type=`, `subtype=`, `tags=` (comma-separated) are structural; every other
/// `key=value` pair becomes a numeric attribute.
///
/// Problem-description file — template structure plus requirements:
///
///     functional_flow Generator,ACBus,Rectifier,DCBus,Load
///     node  LG1 type=Generator subtype=HV tags=LE
///     nodes LA 4 type=ACBus tags=LE          # creates LA1..LA4
///     allow Generator -> ACBus
///     allow ACBus#LE -> Rectifier#LE
///     pattern exactly_n_connections(Load, DCBus, 1)
///
/// Pattern lines are resolved through the PatternRegistry, so domain
/// patterns registered by an application are available in spec files too.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "arch/arch_template.hpp"
#include "arch/library.hpp"
#include "arch/patterns/pattern.hpp"
#include "arch/problem.hpp"

namespace archex {

/// Error with file/line context raised by the loaders.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Parsed problem description: template + declared requirements.
struct ProblemSpec {
  ArchTemplate tmpl;
  std::vector<std::string> functional_flow;
  /// Per-connection-group edge cost overrides: "allow A -> B cost=N".
  struct EdgeCostOverride {
    NodeFilter from, to;
    double cost = 0.0;
  };
  std::vector<EdgeCostOverride> edge_costs;
  /// Pattern invocations in file order (name + raw arguments).
  std::vector<std::pair<std::string, std::vector<PatternArg>>> patterns;
  /// Lines of specification code (excluding comments/blank), the metric the
  /// paper reports ("a total of 90 lines of code").
  int spec_lines = 0;
};

/// Loads a component library from a stream / file.
[[nodiscard]] Library load_library(std::istream& in);
[[nodiscard]] Library load_library_file(const std::string& path);

/// Loads a problem description from a stream / file.
[[nodiscard]] ProblemSpec load_problem_spec(std::istream& in);
[[nodiscard]] ProblemSpec load_problem_spec_file(const std::string& path);

/// Builds a Problem from a parsed spec: constructs the decision variables
/// and applies every declared pattern through the registry.
[[nodiscard]] std::unique_ptr<Problem> instantiate(const ProblemSpec& spec, Library library);

/// Parses a single pattern invocation "name(arg1, arg2, 3)" into name+args.
/// Exposed for tests and interactive use.
[[nodiscard]] std::pair<std::string, std::vector<PatternArg>> parse_pattern_call(
    const std::string& text);

}  // namespace archex
