/// \file result.hpp
/// Concrete architectures extracted from a solved exploration problem.
#pragma once

#include <cmath>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "arch/arch_template.hpp"
#include "arch/library.hpp"
#include "graph/digraph.hpp"
#include "milp/model.hpp"

namespace archex {

/// A concrete flow value on a concrete edge.
struct FlowEdge {
  NodeId from;
  NodeId to;
  double rate;
};

/// The optimal architecture: topology E*, mapping M*, cost, and any flow
/// assignments. This is the (E, M) output of Figure 1.
struct Architecture {
  struct Node {
    std::string name;
    std::string type;
    std::string subtype;
    std::vector<std::string> tags;
    bool used = false;
    LibIndex impl = -1;        ///< library component chosen by M*, -1 if unused
    std::string impl_name;     ///< empty if unused
  };

  std::vector<Node> nodes;
  std::vector<std::pair<NodeId, NodeId>> edges;  ///< active edges (e_ij = 1)
  double cost = 0.0;
  /// Flow commodity name -> active edge flows (only rates above tolerance).
  std::map<std::string, std::vector<FlowEdge>> flows;

  [[nodiscard]] std::size_t num_used_nodes() const;
  [[nodiscard]] std::vector<NodeId> used_nodes(const NodeFilter& f = {}) const;
  [[nodiscard]] bool has_edge(NodeId from, NodeId to) const;

  /// The active topology as a digraph over all template node ids.
  [[nodiscard]] graph::Digraph to_digraph() const;

  /// Per-node failure probabilities induced by the mapping (0 for unused
  /// nodes or components without the attribute).
  [[nodiscard]] std::vector<double> node_fail_probs(const Library& lib) const;

  /// Sum of incoming flow of a commodity at a node.
  [[nodiscard]] double in_flow(const std::string& commodity, NodeId v) const;

  /// Graphviz DOT rendering (types as shapes, subtypes as colors).
  [[nodiscard]] std::string to_dot() const;
  /// Machine-readable JSON rendering (nodes, mapping, edges, flows, cost).
  [[nodiscard]] std::string to_json() const;
  /// Layered ASCII summary (used by the examples and benches).
  void print(std::ostream& os) const;
};

/// Outcome of one exploration solve, with the statistics the paper reports
/// (encoding size, solver time, formulation time).
struct ExplorationResult {
  milp::Solution solution;
  Architecture architecture;  ///< valid when solution.has_incumbent
  milp::ModelStats stats;
  /// End-to-end wall-clock breakdown: structural encode (Problem ctor),
  /// objective assembly (formulation), MILP solve, architecture extraction.
  double encode_seconds = 0.0;
  double formulation_seconds = 0.0;
  double solver_seconds = 0.0;
  double extract_seconds = 0.0;
  /// Pattern-level diagnosis of an infeasible solve, filled when the Problem
  /// has an infeasibility diagnoser installed (see
  /// check::enable_infeasibility_diagnosis). Empty otherwise.
  std::string infeasibility_explanation;

  [[nodiscard]] bool feasible() const { return solution.has_incumbent; }

  // --- serve-schema-aligned reporting ---------------------------------------
  // These accessors use the exact names (and meanings) of the serve response
  // fields `has_objective` / `objective` / `bound` / `gap` / `degraded`
  // (serve/request.hpp), so library-level results and archex_batch/serve
  // output describe a solve in one vocabulary and can be diffed directly.
  [[nodiscard]] bool has_objective() const { return solution.has_incumbent; }
  /// Best incumbent objective in the model's own sense.
  [[nodiscard]] double objective() const { return solution.objective; }
  /// Best proven bound in the model's own sense.
  [[nodiscard]] double bound() const { return solution.best_bound; }
  /// |objective - bound|; 0 when proven optimal.
  [[nodiscard]] double gap() const {
    return std::abs(solution.objective - solution.best_bound);
  }

  /// One JSON object with the serve response's degradation fields —
  /// `objective`, `bound`, `gap`, `degraded`, `degraded_nodes` — rendered
  /// exactly like serve::Json does (sorted keys, %.17g, non-finite as null,
  /// objective/bound/gap omitted without an incumbent, degraded_nodes
  /// omitted at 0). `archex_batch` lines and this string agree
  /// byte-for-byte on the overlapping fields.
  [[nodiscard]] std::string degradation_json() const;

  /// True when the architecture is feasible but optimality was not proven:
  /// either the solver abandoned subtrees after exhausted numerical
  /// recovery (`Solution::degraded`), or a time/node budget stopped the
  /// search with an incumbent (the anytime case). Such a result is sound —
  /// `solution.best_bound` still brackets the true optimum — but reporting
  /// it as a clean architecture would overclaim.
  [[nodiscard]] bool degraded() const {
    return solution.degraded ||
           (solution.has_incumbent &&
            solution.status != milp::SolveStatus::Optimal);
  }
  /// Subtrees abandoned by the numerical-recovery ladder (0 for a purely
  /// budget-limited degraded result).
  [[nodiscard]] std::int64_t degraded_nodes() const {
    return solution.degraded_nodes;
  }

  /// One warning line (cause, bound, gap, abandoned-subtree count) when
  /// `degraded()`; prints nothing for a clean optimum. The explorer examples
  /// call this right after the status line so a degraded architecture is
  /// never silently presented as optimal.
  void print_degradation(std::ostream& os) const;

  /// Prints the encode/solve/decode breakdown plus the solver's own phase
  /// split (presolve, root LP, heuristic, tree, extraction) — the timing
  /// block the explorer examples show after each run.
  void print_timing(std::ostream& os) const;
};

}  // namespace archex
