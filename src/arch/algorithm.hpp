/// \file algorithm.hpp
/// Exploration algorithms (Sec. 2 "Algorithms"):
///
///   * **Eager (monolithic)**: all constraints — including the approximate
///     reliability encoding — go into one MILP; `Problem::solve` does this
///     directly once the reliability patterns are applied.
///
///   * **Lazy (MILP modulo reliability)**: the MILP is solved *without*
///     reliability constraints; each candidate architecture is checked by
///     the exact factoring analysis; violated functional links trigger a
///     conflict-driven learning step that adds stronger disjoint-path
///     constraints, and the solver iterates. Fewer, simpler MILP instances;
///     global optimality is no longer guaranteed (the paper's EPN run: cost
///     108,000 lazily vs 106,000 monolithically).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "arch/problem.hpp"

namespace archex {

/// A reliability requirement handled lazily (not encoded up front).
struct ReliabilityRequirement {
  NodeFilter sources;
  NodeFilter sinks;
  double threshold;  ///< max acceptable link failure probability
};

/// Snapshot of one lazy iteration (what Fig. 3a-c shows per step).
struct LazyIteration {
  int index = 0;
  double cost = 0.0;
  /// Exact link failure probability per sink node name.
  std::map<std::string, double> sink_fail_prob;
  /// Disjoint-path requirement in force per sink name (0 = none yet).
  std::map<std::string, int> required_paths;
  milp::ModelStats stats;
  Architecture architecture;
  double solve_seconds = 0.0;
};

struct LazyOptions {
  int max_iterations = 12;
  /// Upper bound on the learned disjoint-path requirement; if a sink still
  /// violates its threshold at this redundancy, the loop reports failure.
  int max_path_requirement = 8;
  milp::MilpOptions milp;
};

struct LazyResult {
  bool converged = false;
  ExplorationResult final_result;
  std::vector<LazyIteration> iterations;
};

/// Runs the lazy iterative scheme on `p`. The problem must have been
/// constructed with all *non-reliability* patterns applied; `requirements`
/// are checked by exact analysis between iterations. The learning step
/// raises the vertex-disjoint-path requirement of each violated sink to one
/// more than the current architecture provides.
LazyResult solve_lazy(Problem& p, const std::vector<ReliabilityRequirement>& requirements,
                      const LazyOptions& options = {});

/// Exact per-sink failure probabilities of `arch` for one requirement
/// (exposed for tests and benches; keys are sink node names).
std::map<std::string, double> analyze_reliability(const Problem& p, const Architecture& arch,
                                                  const ReliabilityRequirement& req);

// ---------------------------------------------------------------------------
// Generic iterative scheme (Sec. 3: "we also provide an infrastructure to
// design generic iterative schemes, including interfaces to analysis and
// conflict-driven learning routines that can be domain-specific").
// ---------------------------------------------------------------------------

/// Outcome of one analysis pass over a candidate architecture.
struct AnalysisVerdict {
  bool accepted = false;
  /// Free-form metrics recorded into the iteration trace (e.g. worst link
  /// failure probability per class).
  std::map<std::string, double> metrics;
};

/// Domain-specific analysis routine: checks a candidate architecture against
/// the requirements that were *not* encoded in the MILP.
using AnalysisFn = std::function<AnalysisVerdict(Problem&, const Architecture&)>;

/// Domain-specific conflict-driven learning routine: adds constraints to the
/// problem based on the rejected candidate. Returns false when nothing more
/// can be learned (the scheme then stops without convergence).
using LearnFn = std::function<bool(Problem&, const Architecture&)>;

/// Iteration snapshot of the generic scheme.
struct IterativeStep {
  int index = 0;
  double cost = 0.0;
  std::map<std::string, double> metrics;
  milp::ModelStats stats;
  Architecture architecture;
  double solve_seconds = 0.0;
};

struct IterativeResult {
  bool converged = false;
  ExplorationResult final_result;
  std::vector<IterativeStep> steps;
};

/// Runs the generic lazy scheme: solve -> analyze -> learn -> repeat.
/// Terminates when the analysis accepts a candidate, when learning cannot
/// strengthen the formulation further, when an iteration produces no
/// architecture, or after `max_iterations`.
IterativeResult solve_iteratively(Problem& p, const AnalysisFn& analyze, const LearnFn& learn,
                                  const milp::MilpOptions& milp_options = {},
                                  int max_iterations = 12);

}  // namespace archex
