#include "arch/decision_vars.hpp"

namespace archex {

AdjacencyMatrix::AdjacencyMatrix(const ArchTemplate& tmpl, milp::Model& model) {
  const std::size_t n = tmpl.num_nodes();
  var_of_.assign(n, std::vector<std::int32_t>(n, -1));
  in_.assign(n, {});
  out_.assign(n, {});
  for (const auto& [from, to] : tmpl.candidate_edges()) {
    const std::string name =
        "e(" + tmpl.node(from).name + "," + tmpl.node(to).name + ")";
    const milp::VarId v = model.add_binary(name);
    const std::int32_t idx = static_cast<std::int32_t>(edges_.size());
    edges_.push_back({from, to, v});
    var_of_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)] = idx;
    out_[static_cast<std::size_t>(from)].push_back(idx);
    in_[static_cast<std::size_t>(to)].push_back(idx);
  }
}

milp::VarId AdjacencyMatrix::at(NodeId from, NodeId to) const {
  if (from < 0 || to < 0 || static_cast<std::size_t>(from) >= var_of_.size() ||
      static_cast<std::size_t>(to) >= var_of_.size()) {
    return {};
  }
  const std::int32_t idx = var_of_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  return idx < 0 ? milp::VarId{} : edges_[static_cast<std::size_t>(idx)].var;
}

LibraryMapping::LibraryMapping(const ArchTemplate& tmpl, const Library& lib,
                               milp::Model& model) {
  cand_.resize(tmpl.num_nodes());
  for (std::size_t j = 0; j < tmpl.num_nodes(); ++j) {
    const NodeSpec& node = tmpl.nodes()[j];
    for (LibIndex i : lib.of_type(node.type)) {
      const Component& c = lib.at(i);
      if (!node.impl.empty()) {
        if (c.name != node.impl) continue;  // node pinned to one implementation
      } else if (!c.subtype.empty() && !node.allows_subtype(c.subtype)) {
        continue;
      } else if (c.subtype.empty() && !node.subtype.empty()) {
        continue;  // node requires a subtype the component does not declare
      }
      const std::string name = "m(" + c.name + "->" + node.name + ")";
      cand_[j].push_back({i, model.add_binary(name)});
    }
  }
}

milp::VarId LibraryMapping::var(LibIndex i, NodeId j) const {
  for (const Candidate& c : cand_[static_cast<std::size_t>(j)]) {
    if (c.lib == i) return c.var;
  }
  return {};
}

milp::LinExpr LibraryMapping::attr_expr(NodeId j, const std::string& key,
                                        const Library& lib) const {
  milp::LinExpr e;
  for (const Candidate& c : cand_[static_cast<std::size_t>(j)]) {
    e.add_term(c.var, lib.at(c.lib).attr_or(key));
  }
  return e;
}

}  // namespace archex
