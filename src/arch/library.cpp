#include "arch/library.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace archex {

LibIndex Library::add(Component c) {
  if (c.name.empty()) throw std::invalid_argument("Library::add: component needs a name");
  if (c.type.empty()) throw std::invalid_argument("Library::add: component needs a type");
  if (find(c.name)) throw std::invalid_argument("Library::add: duplicate name " + c.name);
  comps_.push_back(std::move(c));
  return static_cast<LibIndex>(comps_.size() - 1);
}

std::vector<LibIndex> Library::of_type(const std::string& type, const std::string& subtype) const {
  std::vector<LibIndex> out;
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    if (comps_[i].type != type) continue;
    if (!subtype.empty() && comps_[i].subtype != subtype) continue;
    out.push_back(static_cast<LibIndex>(i));
  }
  return out;
}

std::optional<LibIndex> Library::find(const std::string& name) const {
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    if (comps_[i].name == name) return static_cast<LibIndex>(i);
  }
  return std::nullopt;
}

std::vector<std::string> Library::types() const {
  std::vector<std::string> out;
  for (const Component& c : comps_) {
    if (std::find(out.begin(), out.end(), c.type) == out.end()) out.push_back(c.type);
  }
  return out;
}

std::vector<std::string> Library::subtypes_of(const std::string& type) const {
  std::vector<std::string> out;
  for (const Component& c : comps_) {
    if (c.type != type || c.subtype.empty()) continue;
    if (std::find(out.begin(), out.end(), c.subtype) == out.end()) out.push_back(c.subtype);
  }
  return out;
}

double Library::max_attr(const std::string& type, const std::string& key) const {
  double best = 0.0;
  for (const Component& c : comps_) {
    if (c.type == type) best = std::max(best, c.attr_or(key));
  }
  return best;
}

std::ostream& operator<<(std::ostream& os, const Library& lib) {
  os << "Library (" << lib.size() << " components, edge cost " << lib.edge_cost() << ")\n";
  for (const Component& c : lib.components()) {
    os << "  " << c.type;
    if (!c.subtype.empty()) os << "/" << c.subtype;
    os << " " << c.name;
    if (!c.tags.empty()) {
      os << " [";
      for (std::size_t i = 0; i < c.tags.size(); ++i) os << (i ? "," : "") << c.tags[i];
      os << "]";
    }
    for (const auto& [k, v] : c.attrs) os << " " << k << "=" << v;
    os << "\n";
  }
  return os;
}

}  // namespace archex
