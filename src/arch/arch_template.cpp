#include "arch/arch_template.hpp"

#include <algorithm>
#include <stdexcept>

namespace archex {

std::string NodeFilter::to_string() const {
  std::string s = type.empty() ? "*" : type;
  if (!subtype.empty()) s += "/" + subtype;
  if (!tag.empty()) s += "#" + tag;
  return s;
}

bool NodeSpec::allows_subtype(const std::string& s) const {
  if (subtype.empty()) return true;
  std::size_t start = 0;
  while (start <= subtype.size()) {
    const std::size_t bar = subtype.find('|', start);
    const std::string part =
        subtype.substr(start, bar == std::string::npos ? std::string::npos : bar - start);
    if (part == s) return true;
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return false;
}

NodeFilter NodeFilter::parse(const std::string& text) {
  NodeFilter f;
  std::string rest = text;
  if (const std::size_t hash = rest.find('#'); hash != std::string::npos) {
    f.tag = rest.substr(hash + 1);
    rest = rest.substr(0, hash);
  }
  if (const std::size_t slash = rest.find('/'); slash != std::string::npos) {
    f.subtype = rest.substr(slash + 1);
    rest = rest.substr(0, slash);
  }
  f.type = rest;
  if (f.type == "*") f.type.clear();
  if (f.subtype == "*") f.subtype.clear();
  if (f.tag == "*") f.tag.clear();
  return f;
}

NodeId ArchTemplate::add_node(NodeSpec spec) {
  if (spec.name.empty()) throw std::invalid_argument("ArchTemplate: node needs a name");
  if (spec.type.empty()) throw std::invalid_argument("ArchTemplate: node needs a type");
  if (find(spec.name) >= 0) {
    throw std::invalid_argument("ArchTemplate: duplicate node name " + spec.name);
  }
  nodes_.push_back(std::move(spec));
  for (auto& row : edge_set_) row.push_back(false);
  edge_set_.emplace_back(nodes_.size(), false);
  return static_cast<NodeId>(nodes_.size() - 1);
}

std::vector<NodeId> ArchTemplate::add_nodes(int count, const std::string& prefix,
                                            std::string type, std::string subtype,
                                            std::vector<std::string> tags) {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 1; i <= count; ++i) {
    ids.push_back(add_node({prefix + std::to_string(i), type, subtype, tags}));
  }
  return ids;
}

void ArchTemplate::allow_edge(NodeId from, NodeId to) {
  if (from == to) return;
  if (from < 0 || to < 0 || static_cast<std::size_t>(from) >= nodes_.size() ||
      static_cast<std::size_t>(to) >= nodes_.size()) {
    throw std::invalid_argument("ArchTemplate::allow_edge: node out of range");
  }
  auto allowed = edge_set_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  if (allowed) return;
  edge_set_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)] = true;
  edges_.emplace_back(from, to);
}

void ArchTemplate::allow_connection(const NodeFilter& from, const NodeFilter& to) {
  for (NodeId a : select(from)) {
    for (NodeId b : select(to)) {
      if (a != b) allow_edge(a, b);
    }
  }
}

std::vector<NodeId> ArchTemplate::select(const NodeFilter& f) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (f.matches(nodes_[i])) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

NodeId ArchTemplate::find(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return -1;
}

bool ArchTemplate::edge_allowed(NodeId from, NodeId to) const {
  if (from < 0 || to < 0) return false;
  return edge_set_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
}

std::vector<std::string> ArchTemplate::types() const {
  std::vector<std::string> out;
  for (const NodeSpec& n : nodes_) {
    if (std::find(out.begin(), out.end(), n.type) == out.end()) out.push_back(n.type);
  }
  return out;
}

}  // namespace archex
