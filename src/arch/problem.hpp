/// \file problem.hpp
/// The exploration problem: template + library + requirements -> MILP.
///
/// This is the `Problem` class of Figure 1. Constructing a Problem creates
/// the decision variables (edge binaries E, mapping binaries M, instantiation
/// binaries delta) and the structural constraints that are always present:
///
///   * mapping constraints (3a)/(3b) in the *new* encoding of Sec. 2 — the
///     selection variables delta are separate from the mapping variables, so
///     the number of decision variables is linear in the library size;
///   * instantiation linking: delta_j = OR of incident edges, encoded as
///     sum(incident e) <= deg_j * delta_j  and  delta_j <= sum(incident e).
///
/// Requirements are then imposed by applying patterns (see patterns/), which
/// emit further MILP constraints through this class's accessors. The cost
/// function (1) is assembled at solve time:  sum_ij m_ij c_i  +  sum e c~
/// plus any weighted extra cost terms.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/arch_template.hpp"
#include "arch/decision_vars.hpp"
#include "arch/library.hpp"
#include "arch/result.hpp"
#include "milp/branch_bound.hpp"
#include "milp/model.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace archex {

class Pattern;

/// A named flow commodity: one rate variable per candidate edge, coupled to
/// the edge binary by lambda_e <= cap * e (the linearized form of (4)'s
/// products). The EPN uses a single commodity; the RPL uses one per
/// (operation mode, product type) pair — the matrices Lambda^{k,x}.
struct FlowCommodity {
  std::string name;
  double capacity = 0.0;                ///< upper bound per edge
  std::vector<milp::VarId> edge_vars;   ///< aligned with AdjacencyMatrix::edges()
};

/// CPS architecture exploration problem.
class Problem {
 public:
  /// Builds decision variables and structural constraints. The template and
  /// library are copied: a Problem is self-contained once constructed.
  /// `profiler` (optional, non-owning, must outlive the Problem) records
  /// hierarchical spans for the whole pipeline — structural encode, each
  /// pattern application, and (passed through to the MILP engine by solve())
  /// the solver phases and simplex kernels. Null disables span profiling.
  explicit Problem(Library lib, ArchTemplate tmpl,
                   obs::SpanProfiler* profiler = nullptr);

  // --- accessors used by patterns -----------------------------------------
  [[nodiscard]] const Library& library() const { return lib_; }
  [[nodiscard]] const ArchTemplate& arch_template() const { return tmpl_; }
  [[nodiscard]] milp::Model& model() { return model_; }
  [[nodiscard]] const milp::Model& model() const { return model_; }
  [[nodiscard]] const AdjacencyMatrix& edges() const { return adj_; }
  [[nodiscard]] const LibraryMapping& mapping() const { return map_; }

  /// Instantiation binary delta_j.
  [[nodiscard]] milp::VarId instantiated(NodeId j) const {
    return delta_[static_cast<std::size_t>(j)];
  }

  /// Mapped attribute of node j: sum_i m_ij * attr_i.
  [[nodiscard]] milp::LinExpr node_attr(NodeId j, const std::string& key) const {
    return map_.attr_expr(j, key, lib_);
  }

  /// Indicator (as a 0/1-valued expression) that node j is implemented with
  /// the given subtype: sum of m_ij over candidates of that subtype. Patterns
  /// use this when a subtype restriction applies to the *mapped* component
  /// rather than to a statically declared template subtype (EPN buses pick
  /// HV or LV through the mapping).
  [[nodiscard]] milp::LinExpr subtype_indicator(NodeId j, const std::string& subtype) const;

  /// Sum of edge binaries into `v` from nodes matching `from` (empty filter
  /// = all candidate predecessors).
  [[nodiscard]] milp::LinExpr in_degree(NodeId v, const NodeFilter& from = {}) const;
  /// Sum of edge binaries out of `v` to nodes matching `to`.
  [[nodiscard]] milp::LinExpr out_degree(NodeId v, const NodeFilter& to = {}) const;

  /// Gets or creates the flow commodity `name` with per-edge capacity `cap`
  /// (capacity is fixed at creation; later calls ignore `cap`).
  FlowCommodity& flow(const std::string& name, double cap);
  [[nodiscard]] const FlowCommodity* find_flow(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, FlowCommodity>& flows() const { return flows_; }

  /// Sum of a commodity's flow into / out of a node.
  [[nodiscard]] milp::LinExpr flow_in(const FlowCommodity& f, NodeId v) const;
  [[nodiscard]] milp::LinExpr flow_out(const FlowCommodity& f, NodeId v) const;

  // --- requirement specification -------------------------------------------
  /// Applies a pattern: translates it into MILP constraints immediately.
  /// Patterns applied so far are remembered for reporting (the paper counts
  /// "46 patterns" for the EPN spec).
  void apply(const Pattern& pattern);
  void apply(const std::shared_ptr<Pattern>& pattern);
  [[nodiscard]] std::size_t num_patterns_applied() const { return patterns_applied_.size(); }
  [[nodiscard]] const std::vector<std::string>& applied_patterns() const {
    return patterns_applied_;
  }

  /// Functional flow F: the ordered sequence of component types realizing a
  /// source->sink link (e.g. (G, A, R, D, L)). Used by timing and
  /// reliability patterns to identify sources and estimate path failure
  /// probabilities.
  void set_functional_flow(std::vector<std::string> types) { func_flow_ = std::move(types); }
  [[nodiscard]] const std::vector<std::string>& functional_flow() const { return func_flow_; }
  /// Nodes of the first / last type of the functional flow.
  [[nodiscard]] std::vector<NodeId> source_nodes() const;
  [[nodiscard]] std::vector<NodeId> sink_nodes() const;

  /// Estimated failure probability of one source->sink path: the sum over
  /// functional-flow types of the maximum component failure probability of
  /// that type (an upper bound on a path's failure probability for small p).
  [[nodiscard]] double path_fail_prob_estimate() const;

  /// Adds symmetry-breaking constraints: template nodes that are provably
  /// interchangeable (same type, subtype restriction, tags, and a candidate
  /// edge structure invariant under swapping them) are ordered by their
  /// instantiation binaries, delta_i >= delta_{i+1}. This prunes permuted
  /// duplicates of the same architecture from the search tree without
  /// excluding any distinct design. Returns the number of ordered pairs.
  std::size_t add_symmetry_breaking();

  // --- row provenance (used by check::lint) ---------------------------------
  /// Origin label of a model row: "structural" for the constraints the
  /// constructor emits, the pattern description for rows a pattern emitted,
  /// "flow(name)" for commodity coupling rows, "symmetry-breaking" for the
  /// ordering rows. Lets diagnostics report "pattern X produced an
  /// always-inactive constraint" instead of a bare row index.
  [[nodiscard]] const std::string& origin_of_row(std::size_t row) const;

  /// Extra weighted cost term added to the objective (the "weighted sum of
  /// different concerns" of Sec. 2).
  void add_cost_term(milp::LinExpr term, double weight = 1.0);

  /// Overrides the cost of a specific candidate edge (default: the library's
  /// uniform edge cost).
  void set_edge_cost(NodeId from, NodeId to, double cost);

  /// Effective cost of candidate edge `edge_idx` (index into
  /// edges().edges()): the per-edge override when one was set, the library's
  /// uniform edge cost otherwise. This is the per-edge coefficient
  /// cost_expression() uses; compile() freezes it into the edge slots.
  [[nodiscard]] double edge_base_cost(std::int32_t edge_idx) const {
    const auto it = edge_cost_override_.find(edge_idx);
    return it == edge_cost_override_.end() ? lib_.edge_cost() : it->second;
  }

  /// Installs a diagnoser that solve() calls on the infeasible path to fill
  /// ExplorationResult::infeasibility_explanation. The hook keeps the
  /// layering one-way: check::enable_infeasibility_diagnosis installs the
  /// structural analyzer here without arch/ depending on check/. Null (the
  /// default) leaves the explanation empty.
  void set_infeasibility_diagnoser(std::function<std::string(const Problem&)> fn) {
    diagnoser_ = std::move(fn);
  }
  [[nodiscard]] bool has_infeasibility_diagnoser() const {
    return static_cast<bool>(diagnoser_);
  }

  // --- solving --------------------------------------------------------------
  /// Assembles the cost function and solves the monolithic MILP (the eager
  /// method). Use algorithm.hpp for the lazy iterative scheme. The options'
  /// `deadline`/`cancel` fields are honored end-to-end: an absolute deadline
  /// armed before encoding charges encode time against the same budget the
  /// solver sees (an expired deadline returns TimeLimit without running
  /// presolve), and a set cancel flag preempts the solve at the next poll.
  ExplorationResult solve(const milp::MilpOptions& options = {});

  /// Extracts the concrete architecture from a solution of this problem's
  /// model.
  [[nodiscard]] Architecture extract(const milp::Solution& sol) const;

  /// The assembled cost expression (for inspection and tests).
  [[nodiscard]] milp::LinExpr cost_expression() const;

  /// The problem's metrics registry: encode timing lands here at
  /// construction, and solve() passes it to the MILP engine (unless the
  /// caller supplies their own via MilpOptions::metrics), so one registry
  /// spans encode + solve + extract. Held by pointer to keep Problem movable.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return *metrics_; }

  /// The span profiler this Problem was built with (null when profiling is
  /// off). solve() passes it to the MILP engine unless the caller set
  /// MilpOptions::profiler themselves.
  [[nodiscard]] obs::SpanProfiler* profiler() const { return profiler_; }

  /// One encode-time charge: wall seconds spent emitting under an origin
  /// label ("structural" for the constructor, a pattern's describe() per
  /// apply()). Always recorded — the steady_clock reads are two per pattern
  /// application, negligible next to constraint emission — so the perf
  /// report (arch/perf_report.hpp) can attribute encode cost even when span
  /// profiling is off.
  struct PatternCost {
    std::string label;
    double seconds = 0.0;
  };
  /// Per-application encode charges, in application order (the constructor's
  /// "structural" entry first). Aggregate by label for reporting: a pattern
  /// applied twice appears twice.
  [[nodiscard]] const std::vector<PatternCost>& pattern_costs() const {
    return pattern_costs_;
  }

 private:
  /// Labels every model row added since the last call with `label`
  /// (provenance for lint diagnostics). Idempotent for already-labeled rows.
  void label_new_rows(const std::string& label);

  Library lib_;
  ArchTemplate tmpl_;
  milp::Model model_;
  AdjacencyMatrix adj_;
  LibraryMapping map_;
  std::vector<milp::VarId> delta_;
  std::map<std::string, FlowCommodity> flows_;
  std::vector<std::string> func_flow_;
  std::vector<std::pair<milp::LinExpr, double>> extra_cost_;
  std::map<std::int32_t, double> edge_cost_override_;  ///< by edge index
  std::vector<std::string> patterns_applied_;
  std::vector<std::string> row_labels_;        ///< distinct origin labels
  std::vector<std::int32_t> row_origin_;       ///< per row: index into row_labels_
  std::function<std::string(const Problem&)> diagnoser_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::SpanProfiler* profiler_ = nullptr;  ///< non-owning; null = spans off
  std::vector<PatternCost> pattern_costs_;
  double encode_seconds_ = 0.0;  ///< structural-constraint build time (ctor)
};

}  // namespace archex
