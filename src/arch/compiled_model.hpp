/// \file compiled_model.hpp
/// The compiled exploration pipeline: Library + ArchTemplate + patterns
/// -> CompiledModel -> solve(CompiledModel, Scenario, MilpOptions).
///
/// `arch::Problem::solve` fuses encoding and solving: every call re-assembles
/// the objective and hands the model to the MILP engine, so exploring N
/// scenario variants of one specification pays the encode N times. The
/// compiled pipeline splits the stages:
///
///   1. `compile(problem)` runs once. It freezes the encoded matrix, the
///      row/column provenance, and *named parameter slots* — the places a
///      scenario is allowed to touch without re-encoding: objective
///      coefficients (per-component cost scale, edge-cost scale), variable
///      bounds (component availability toggles), and RHS entries (named
///      constraint rows, e.g. a reliability target).
///   2. `instantiate(scenario)` stamps a scenario's deltas into a copy of the
///      frozen matrix — no pattern re-runs, no variable re-creation.
///   3. `solve(compiled, scenario, options, sweep_state)` solves the
///      instance; inside a sweep it warm-starts each solve from the previous
///      scenario's root basis and incumbent (milp/warm_start.hpp), falling
///      back to a cold solve deterministically when a delta breaks dual
///      feasibility or the scenario is structural.
///
/// CompiledModels are immutable after compile() and safely shareable; the
/// bounded `CompiledModelCache` keys them by `fingerprint()` — a content hash
/// of (library, template, applied patterns, encoder version) — so repeated
/// requests for the same specification skip the encode entirely. See
/// docs/pipeline.md for the full pipeline contract.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/arch_template.hpp"
#include "arch/library.hpp"
#include "arch/problem.hpp"
#include "arch/result.hpp"
#include "milp/branch_bound.hpp"
#include "milp/model.hpp"
#include "milp/warm_start.hpp"

namespace archex {

/// A scenario variant of a compiled specification: pure parameter deltas
/// against the frozen matrix. Everything except `extra_constraints` rewrites
/// existing slots (objective coefficients, bounds, RHS) and keeps the model
/// structure — and therefore the warm-start basis — intact.
struct Scenario {
  std::string name;
  /// Library component name -> multiplicative cost scale (1.0 = unchanged).
  /// Applied to every mapping column of that component in the objective.
  std::map<std::string, double> component_cost_scale;
  /// Multiplicative scale on every edge (connection element) cost.
  double edge_cost_scale = 1.0;
  /// Library components toggled unavailable: every mapping binary of the
  /// component is fixed to 0 (a bound delta, not a matrix change).
  std::vector<std::string> unavailable;
  /// Constraint name -> new right-hand side. Applied to *every* row carrying
  /// that name (pattern rows reuse one name per emitted family, e.g. a
  /// reliability budget row).
  std::map<std::string, double> rhs;
  /// Extra constraints appended to the instance. Structural: a scenario with
  /// extra rows changes the basis dimensions, so it always solves cold and
  /// never contributes its basis to a sweep's warm-start state.
  std::vector<milp::LinConstraint> extra_constraints;

  /// True when this scenario changes the matrix structure (extra rows)
  /// rather than only rewriting parameter slots.
  [[nodiscard]] bool structural() const { return !extra_constraints.empty(); }
};

class CompiledModel;

/// Encodes `problem` once into an immutable CompiledModel. The problem's
/// patterns must already be applied; the objective is assembled here (same
/// expression `Problem::solve` builds) and frozen into the artifact.
[[nodiscard]] CompiledModel compile(const Problem& problem);

/// The immutable compiled artifact: encoded matrix + provenance + parameter
/// slots. Copyable; typically held as `shared_ptr<const CompiledModel>`
/// through the cache.
class CompiledModel {
 public:
  /// The frozen encoded matrix, objective included. Instances are stamped
  /// from copies of this; the base itself never changes after compile().
  [[nodiscard]] const milp::Model& base_model() const { return base_; }

  /// Content fingerprint of (encoder version, library, template, applied
  /// pattern set, model shape). Two compiles of equal specifications agree;
  /// any spec or encoder change disagrees. This is the cache key.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

  [[nodiscard]] const Library& library() const { return lib_; }
  [[nodiscard]] const ArchTemplate& arch_template() const { return tmpl_; }
  [[nodiscard]] const std::vector<std::string>& applied_patterns() const {
    return applied_patterns_;
  }
  /// Per-application encode charges carried over from the Problem (the perf
  /// report aggregates these; see arch/perf_report.hpp).
  [[nodiscard]] const std::vector<Problem::PatternCost>& pattern_costs() const {
    return pattern_costs_;
  }
  /// Structural-encode wall seconds of the source Problem's constructor.
  [[nodiscard]] double encode_seconds() const { return encode_seconds_; }
  [[nodiscard]] milp::ModelStats stats() const { return base_.stats(); }

  /// Row provenance, same contract as Problem::origin_of_row: the label of
  /// the pattern (or "structural" / "flow(name)" / "symmetry-breaking") that
  /// emitted the row. check::lint and the perf report run against this.
  [[nodiscard]] const std::string& origin_of_row(std::size_t row) const;

  /// Stamps `sc` into a copy of the frozen matrix: objective deltas for cost
  /// scales, bound fixes for availability toggles, RHS rewrites for named
  /// rows, extra constraints appended last. Throws std::invalid_argument for
  /// a component name the library does not contain or an RHS row name no
  /// constraint carries — a scenario talking past its model is a caller bug,
  /// not a solvable instance.
  [[nodiscard]] milp::Model instantiate(const Scenario& sc) const;

  /// Extracts the concrete architecture from a solution of an instance of
  /// this compiled model (same decoding as Problem::extract; `cost` is the
  /// solved objective, i.e. the scenario-adjusted cost).
  [[nodiscard]] Architecture extract(const milp::Solution& sol) const;

 private:
  friend CompiledModel compile(const Problem& problem);
  CompiledModel() = default;

  /// One edge slot, aligned with AdjacencyMatrix::edges() of the source.
  struct EdgeSlot {
    NodeId from;
    NodeId to;
    milp::VarId var;
    double base_cost;  ///< override-or-library edge cost frozen at compile
  };

  Library lib_;
  ArchTemplate tmpl_;
  milp::Model base_;
  std::vector<milp::VarId> delta_;                   ///< per template node
  /// Mapping candidates per template node: (library index, column).
  std::vector<std::vector<LibraryMapping::Candidate>> cand_;
  /// Mapping columns per library component (availability/cost-scale slots).
  std::vector<std::vector<milp::VarId>> vars_by_lib_;
  std::vector<EdgeSlot> edges_;
  /// Flow commodity name -> rate variable per edge slot (extraction table).
  std::map<std::string, std::vector<milp::VarId>> flows_;
  /// Constraint name -> rows carrying it (the RHS parameter slots).
  std::map<std::string, std::vector<std::size_t>> rows_by_name_;
  std::vector<std::string> row_labels_;    ///< interned origin labels
  std::vector<std::int32_t> row_origin_;   ///< per row: index into row_labels_
  std::vector<std::string> applied_patterns_;
  std::vector<Problem::PatternCost> pattern_costs_;
  double encode_seconds_ = 0.0;
  std::uint64_t fingerprint_ = 0;
};

/// Warm-start state threaded through the scenarios of one sweep. Plain value
/// type owned by the caller; `solve` reads the previous scenario's basis and
/// incumbent out of it and writes the new ones back in.
struct SweepState {
  std::shared_ptr<const milp::Basis> basis;  ///< last root-optimal basis
  std::vector<double> x;                     ///< last incumbent vector
  bool has_hint = false;
  std::int64_t warm_solves = 0;  ///< scenarios whose root LP warm-started
  std::int64_t cold_solves = 0;  ///< scenarios solved cold (incl. the first)
};

/// Stage 3 of the pipeline: instantiates `sc` against `cm` and solves it.
/// With `sweep` non-null the solve participates in a warm-started sweep:
/// presolve is disabled (the warm-start hint lives in the full column
/// space), the root basis is exported for the next scenario, and — for
/// non-structural scenarios — the previous scenario's basis/incumbent are
/// fed in via MilpOptions::warm_hint. `res.encode_seconds` is 0: compiling
/// paid the encode once, outside this call.
[[nodiscard]] ExplorationResult solve(const CompiledModel& cm,
                                      const Scenario& sc = {},
                                      const milp::MilpOptions& options = {},
                                      SweepState* sweep = nullptr);

/// Bounded, thread-safe LRU cache of compiled models keyed by fingerprint.
/// `serve::ExplorationService` holds one so repeated compile/sweep requests
/// for the same specification skip the encode.
class CompiledModelCache {
 public:
  explicit CompiledModelCache(std::size_t capacity) : capacity_(capacity) {}

  /// The cached model with this fingerprint, or null (counts a hit/miss).
  [[nodiscard]] std::shared_ptr<const CompiledModel> get(std::uint64_t fp);
  /// Inserts (or refreshes) a model under its own fingerprint, evicting the
  /// least recently used entry beyond capacity.
  void put(std::shared_ptr<const CompiledModel> cm);

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  /// Front = most recently used.
  std::list<std::pair<std::uint64_t, std::shared_ptr<const CompiledModel>>> lru_;
  std::unordered_map<
      std::uint64_t,
      std::list<std::pair<std::uint64_t,
                          std::shared_ptr<const CompiledModel>>>::iterator>
      index_;
  Stats stats_;
};

}  // namespace archex
