#include "arch/algorithm.hpp"

#include <algorithm>
#include <chrono>

#include "arch/patterns/general.hpp"
#include "graph/digraph.hpp"
#include "reliability/reliability.hpp"

namespace archex {

namespace {

/// Vertex-disjoint source->sink paths in a concrete architecture, counting
/// sources as capacity-1 (a shared generator is a shared failure point).
int measured_disjoint_paths(const Architecture& arch, const std::vector<NodeId>& sources,
                            NodeId sink) {
  const graph::Digraph g = arch.to_digraph();
  std::vector<int> cap(g.num_nodes(), 1);
  cap[static_cast<std::size_t>(sink)] = 1'000'000;
  return graph::max_flow_unit_nodes(g, sources, sink, cap);
}

}  // namespace

std::map<std::string, double> analyze_reliability(const Problem& p, const Architecture& arch,
                                                  const ReliabilityRequirement& req) {
  const graph::Digraph g = arch.to_digraph();
  const std::vector<double> fail = arch.node_fail_probs(p.library());
  const std::vector<NodeId> sources = p.arch_template().select(req.sources);

  std::map<std::string, double> out;
  for (NodeId sink : p.arch_template().select(req.sinks)) {
    out[p.arch_template().node(sink).name] =
        reliability::link_failure_probability(g, sources, sink, fail);
  }
  return out;
}

LazyResult solve_lazy(Problem& p, const std::vector<ReliabilityRequirement>& requirements,
                      const LazyOptions& options) {
  using Clock = std::chrono::steady_clock;
  LazyResult result;

  // Current learned requirement per (requirement index, sink node).
  std::map<std::pair<std::size_t, NodeId>, int> learned;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    const auto t0 = Clock::now();
    ExplorationResult er = p.solve(options.milp);
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();

    LazyIteration snap;
    snap.index = iter;
    snap.stats = er.stats;
    snap.solve_seconds = secs;

    if (!er.feasible()) {
      // The learned constraints made the problem infeasible: report and stop.
      result.final_result = std::move(er);
      result.iterations.push_back(std::move(snap));
      return result;
    }
    snap.cost = er.architecture.cost;
    snap.architecture = er.architecture;

    // Exact analysis of every requirement; collect violations.
    bool all_met = true;
    bool can_strengthen = false;
    for (std::size_t r = 0; r < requirements.size(); ++r) {
      const ReliabilityRequirement& req = requirements[r];
      const std::vector<NodeId> sources = p.arch_template().select(req.sources);
      for (const auto& [sink_name, prob] : analyze_reliability(p, er.architecture, req)) {
        snap.sink_fail_prob[sink_name] = std::max(snap.sink_fail_prob[sink_name], prob);
        const NodeId sink = p.arch_template().find(sink_name);
        const auto key = std::make_pair(r, sink);
        if (auto it = learned.find(key); it != learned.end()) {
          snap.required_paths[sink_name] =
              std::max(snap.required_paths[sink_name], it->second);
        }
        if (prob <= req.threshold) continue;
        all_met = false;

        // Conflict-driven learning: the current configuration provides d
        // disjoint source paths; require d+1 from now on (strictly more
        // than both the measured redundancy and anything learned before).
        const int measured = measured_disjoint_paths(er.architecture, sources, sink);
        int& k = learned[key];
        k = std::max({k + 1, measured + 1, 1});
        if (k <= options.max_path_requirement) {
          can_strengthen = true;
          patterns::emit_disjoint_paths(p, sources, sink, k, /*disjoint_sources=*/true,
                                        "lazy" + std::to_string(r) + "i" + std::to_string(k));
          snap.required_paths[sink_name] = k;
        }
      }
    }

    result.iterations.push_back(snap);
    if (all_met) {
      result.converged = true;
      result.final_result = std::move(er);
      return result;
    }
    if (!can_strengthen) {
      // Redundancy ceiling reached without meeting the threshold.
      result.final_result = std::move(er);
      return result;
    }
  }

  if (!result.iterations.empty()) {
    // Ran out of iterations: report the last architecture found.
    result.final_result.architecture = result.iterations.back().architecture;
  }
  return result;
}

IterativeResult solve_iteratively(Problem& p, const AnalysisFn& analyze, const LearnFn& learn,
                                  const milp::MilpOptions& milp_options, int max_iterations) {
  using Clock = std::chrono::steady_clock;
  IterativeResult result;

  for (int iter = 1; iter <= max_iterations; ++iter) {
    const auto t0 = Clock::now();
    ExplorationResult er = p.solve(milp_options);

    IterativeStep step;
    step.index = iter;
    step.stats = er.stats;
    step.solve_seconds = std::chrono::duration<double>(Clock::now() - t0).count();

    if (!er.feasible()) {
      // Either the learned constraints made the problem infeasible or the
      // solve budget ran out without an incumbent — stop, reporting honestly.
      result.final_result = std::move(er);
      result.steps.push_back(std::move(step));
      return result;
    }
    step.cost = er.architecture.cost;
    step.architecture = er.architecture;

    const AnalysisVerdict verdict = analyze(p, er.architecture);
    step.metrics = verdict.metrics;

    if (verdict.accepted) {
      result.steps.push_back(std::move(step));
      result.converged = true;
      result.final_result = std::move(er);
      return result;
    }
    const bool strengthened = learn(p, er.architecture);
    result.steps.push_back(std::move(step));
    if (!strengthened) {
      result.final_result = std::move(er);
      return result;
    }
  }
  if (!result.steps.empty()) {
    result.final_result.architecture = result.steps.back().architecture;
  }
  return result;
}

}  // namespace archex
