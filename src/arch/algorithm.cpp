#include "arch/algorithm.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "arch/patterns/general.hpp"
#include "graph/digraph.hpp"
#include "reliability/reliability.hpp"

namespace archex {

namespace {

/// Vertex-disjoint source->sink paths in a concrete architecture, counting
/// sources as capacity-1 (a shared generator is a shared failure point).
int measured_disjoint_paths(const Architecture& arch, const std::vector<NodeId>& sources,
                            NodeId sink) {
  const graph::Digraph g = arch.to_digraph();
  std::vector<int> cap(g.num_nodes(), 1);
  cap[static_cast<std::size_t>(sink)] = 1'000'000;
  return graph::max_flow_unit_nodes(g, sources, sink, cap);
}

}  // namespace

std::map<std::string, double> analyze_reliability(const Problem& p, const Architecture& arch,
                                                  const ReliabilityRequirement& req) {
  const graph::Digraph g = arch.to_digraph();
  const std::vector<double> fail = arch.node_fail_probs(p.library());
  const std::vector<NodeId> sources = p.arch_template().select(req.sources);

  std::map<std::string, double> out;
  for (NodeId sink : p.arch_template().select(req.sinks)) {
    out[p.arch_template().node(sink).name] =
        reliability::link_failure_probability(g, sources, sink, fail);
  }
  return out;
}

LazyResult solve_lazy(Problem& p, const std::vector<ReliabilityRequirement>& requirements,
                      const LazyOptions& options) {
  using Clock = std::chrono::steady_clock;
  LazyResult result;

  // Current learned requirement per (requirement index, sink node).
  std::map<std::pair<std::size_t, NodeId>, int> learned;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    const auto t0 = Clock::now();
    ExplorationResult er = p.solve(options.milp);
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();

    LazyIteration snap;
    snap.index = iter;
    snap.stats = er.stats;
    snap.solve_seconds = secs;

    if (!er.feasible()) {
      // The learned constraints made the problem infeasible: report and stop.
      result.final_result = std::move(er);
      result.iterations.push_back(std::move(snap));
      return result;
    }
    snap.cost = er.architecture.cost;
    snap.architecture = er.architecture;

    // Exact analysis of every requirement; collect violations.
    bool all_met = true;
    bool can_strengthen = false;
    for (std::size_t r = 0; r < requirements.size(); ++r) {
      const ReliabilityRequirement& req = requirements[r];
      const std::vector<NodeId> sources = p.arch_template().select(req.sources);
      for (const auto& [sink_name, prob] : analyze_reliability(p, er.architecture, req)) {
        snap.sink_fail_prob[sink_name] = std::max(snap.sink_fail_prob[sink_name], prob);
        const NodeId sink = p.arch_template().find(sink_name);
        const auto key = std::make_pair(r, sink);
        if (auto it = learned.find(key); it != learned.end()) {
          snap.required_paths[sink_name] =
              std::max(snap.required_paths[sink_name], it->second);
        }
        if (prob <= req.threshold) continue;
        all_met = false;

        // Conflict-driven learning: the current configuration provides d
        // disjoint source paths; require d+1 from now on (strictly more
        // than both the measured redundancy and anything learned before).
        const int measured = measured_disjoint_paths(er.architecture, sources, sink);
        int& k = learned[key];
        k = std::max({k + 1, measured + 1, 1});
        if (k <= options.max_path_requirement) {
          can_strengthen = true;
          patterns::emit_disjoint_paths(p, sources, sink, k, /*disjoint_sources=*/true,
                                        "lazy" + std::to_string(r) + "i" + std::to_string(k));
          snap.required_paths[sink_name] = k;
        }
      }
    }

    result.iterations.push_back(snap);
    if (all_met) {
      result.converged = true;
      result.final_result = std::move(er);
      return result;
    }
    if (!can_strengthen) {
      // Redundancy ceiling reached without meeting the threshold.
      result.final_result = std::move(er);
      return result;
    }
  }

  if (!result.iterations.empty()) {
    // Ran out of iterations: report the last architecture found.
    result.final_result.architecture = result.iterations.back().architecture;
  }
  return result;
}

IterativeResult solve_iteratively(Problem& p, const AnalysisFn& analyze, const LearnFn& learn,
                                  const milp::MilpOptions& milp_options, int max_iterations) {
  using Clock = std::chrono::steady_clock;
  IterativeResult result;

  // One monotonic deadline for the whole scheme, not a fresh `time_limit_s`
  // per iteration: earlier revisions restarted the budget at every re-solve,
  // so a learning loop with a 30 s limit could legally run for minutes. The
  // per-call limit is converted to an absolute deadline once, here, and the
  // per-iteration relative limit is disarmed; a caller-supplied absolute
  // deadline (serve requests) already spans iterations and wins if tighter.
  milp::MilpOptions opts = milp_options;
  if (std::isfinite(opts.time_limit_s)) {
    const auto now = Clock::now();
    const double limit_s = std::max(opts.time_limit_s, 0.0);
    // Same headroom guard as solve_milp's arming: a huge-but-finite limit
    // (the 1e18 default) would overflow the clock's integer representation,
    // so anything beyond half the clock's remaining range stays "never".
    const double headroom_s =
        std::chrono::duration<double>(Clock::time_point::max() - now).count();
    if (limit_s < headroom_s * 0.5) {
      opts.deadline = std::min(
          opts.deadline,
          now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(limit_s)));
      opts.time_limit_s = std::numeric_limits<double>::infinity();
    }
  }

  for (int iter = 1; iter <= max_iterations; ++iter) {
    const auto t0 = Clock::now();
    // Re-solves (iteration >= 2) are sliced to a quarter of the remaining
    // budget: a learned model that cannot be closed would otherwise run to
    // the overall deadline and starve every iteration after it. The solver
    // keeps its best incumbent at the slice boundary, which is all the
    // analysis and learning steps consume, and a stalled re-solve therefore
    // costs at most 25% of what is left. Iteration 1 is exempt — a scheme
    // that converges immediately keeps single-solve semantics — and the
    // overall deadline still bounds everything.
    milp::MilpOptions iter_opts = opts;
    if (iter > 1 && opts.deadline != Clock::time_point::max() && t0 < opts.deadline) {
      iter_opts.deadline = t0 + (opts.deadline - t0) / 4;
    }
    ExplorationResult er = p.solve(iter_opts);

    IterativeStep step;
    step.index = iter;
    step.stats = er.stats;
    step.solve_seconds = std::chrono::duration<double>(Clock::now() - t0).count();

    if (!er.feasible()) {
      // Either the learned constraints made the problem infeasible or the
      // solve budget ran out without an incumbent — stop, reporting honestly.
      // Anytime fallback: when the stop was a budget (not infeasibility) and
      // an earlier iteration produced an architecture, surface that
      // architecture with its own cost instead of an empty result. The
      // status stays TimeLimit/NodeLimit, so callers (and the serve layer's
      // degraded-response mapping) still see that the budget ran out before
      // the learned requirements were met.
      const bool budget_stop =
          er.solution.status == milp::SolveStatus::TimeLimit ||
          er.solution.status == milp::SolveStatus::NodeLimit ||
          er.solution.status == milp::SolveStatus::IterationLimit;
      if (budget_stop && !result.steps.empty()) {
        const IterativeStep& last = result.steps.back();
        er.architecture = last.architecture;
        er.solution.has_incumbent = true;
        er.solution.objective = last.cost;
      }
      result.final_result = std::move(er);
      result.steps.push_back(std::move(step));
      return result;
    }
    step.cost = er.architecture.cost;
    step.architecture = er.architecture;

    const AnalysisVerdict verdict = analyze(p, er.architecture);
    step.metrics = verdict.metrics;

    if (verdict.accepted) {
      result.steps.push_back(std::move(step));
      result.converged = true;
      result.final_result = std::move(er);
      return result;
    }
    const bool strengthened = learn(p, er.architecture);
    result.steps.push_back(std::move(step));
    if (!strengthened) {
      result.final_result = std::move(er);
      return result;
    }
  }
  if (!result.steps.empty()) {
    result.final_result.architecture = result.steps.back().architecture;
  }
  return result;
}

}  // namespace archex
