/// \file library.hpp
/// Component library: the collection L of "real" components (Sec. 2).
///
/// Mirrors the `Library` class of the ArchEx toolbox (Sec. 3): a collection
/// of Component records grouped by type, with query methods by type, subtype
/// and tag, plus the text-file loader (`parser.hpp` provides the format).
/// Edge (connection element) costs also live here: the paper maps edges
/// directly onto connection elements such as contactors, wires and links.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "arch/component.hpp"

namespace archex {

/// Index of a component inside a Library.
using LibIndex = std::int32_t;

/// A collection of components with type/subtype/tag queries.
class Library {
 public:
  /// Adds a component; returns its index. Component names must be unique
  /// within the library (throws std::invalid_argument otherwise).
  LibIndex add(Component c);

  [[nodiscard]] std::size_t size() const { return comps_.size(); }
  [[nodiscard]] bool empty() const { return comps_.empty(); }
  [[nodiscard]] const Component& at(LibIndex i) const {
    return comps_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<Component>& components() const { return comps_; }

  /// Indices of all components of `type` (optionally restricted to a
  /// subtype; empty string = any subtype).
  [[nodiscard]] std::vector<LibIndex> of_type(const std::string& type,
                                              const std::string& subtype = {}) const;

  /// Component by name; nullopt if absent.
  [[nodiscard]] std::optional<LibIndex> find(const std::string& name) const;

  /// All distinct component types, in first-appearance order.
  [[nodiscard]] std::vector<std::string> types() const;

  /// All distinct subtypes of a type, in first-appearance order.
  [[nodiscard]] std::vector<std::string> subtypes_of(const std::string& type) const;

  /// Maximum value of an attribute over components of a type (0 if none).
  [[nodiscard]] double max_attr(const std::string& type, const std::string& key) const;

  /// Cost of the connection element used to realize edges (the paper's
  /// contactors/wires). A single scalar by default; problems may override
  /// per edge group.
  void set_edge_cost(double c) { edge_cost_ = c; }
  [[nodiscard]] double edge_cost() const { return edge_cost_; }

 private:
  std::vector<Component> comps_;
  double edge_cost_ = 0.0;
};

std::ostream& operator<<(std::ostream& os, const Library& lib);

}  // namespace archex
