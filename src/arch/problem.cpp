#include "arch/problem.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "arch/compiled_model.hpp"
#include "arch/patterns/pattern.hpp"

namespace archex {

Problem::Problem(Library lib, ArchTemplate tmpl, obs::SpanProfiler* profiler)
    : lib_(std::move(lib)), tmpl_(std::move(tmpl)),
      metrics_(std::make_unique<obs::MetricsRegistry>()), profiler_(profiler) {
  obs::ScopedSpan encode_span(profiler_ != nullptr ? profiler_->main() : nullptr,
                              obs::span_id(obs::SpanName::Encode));
  obs::ScopedTimer encode_timer(&metrics_->timer("arch.encode"), &encode_seconds_);
  adj_ = AdjacencyMatrix(tmpl_, model_);
  map_ = LibraryMapping(tmpl_, lib_, model_);

  // Instantiation binaries and linking: delta_j = OR(incident edges).
  delta_.reserve(tmpl_.num_nodes());
  for (std::size_t j = 0; j < tmpl_.num_nodes(); ++j) {
    delta_.push_back(model_.add_binary("delta(" + tmpl_.node(static_cast<NodeId>(j)).name + ")"));
  }
  for (std::size_t j = 0; j < tmpl_.num_nodes(); ++j) {
    const NodeId v = static_cast<NodeId>(j);
    milp::LinExpr incident;
    std::size_t deg = 0;
    for (std::int32_t e : adj_.in_edges(v)) {
      incident += milp::LinExpr(adj_.edge(e).var);
      ++deg;
    }
    for (std::int32_t e : adj_.out_edges(v)) {
      incident += milp::LinExpr(adj_.edge(e).var);
      ++deg;
    }
    const std::string& nm = tmpl_.node(v).name;
    if (deg == 0) {
      // No candidate edges: the node can never be used.
      model_.add_constraint(milp::LinExpr(delta_[j]) == milp::LinExpr(0.0),
                            "isolated(" + nm + ")");
      continue;
    }
    // e <= delta per incident edge (any edge forces instantiation). This is
    // the disaggregated form of sum(e) <= deg * delta: same integer
    // solutions, but a much tighter LP relaxation (a fractional edge cannot
    // buy a component at a fraction of its cost).
    for (std::int32_t e : adj_.in_edges(v)) {
      model_.add_constraint(milp::LinExpr(adj_.edge(e).var) - milp::LinExpr(delta_[j]),
                            milp::Sense::LE, 0.0, "use(" + nm + ")");
    }
    for (std::int32_t e : adj_.out_edges(v)) {
      model_.add_constraint(milp::LinExpr(adj_.edge(e).var) - milp::LinExpr(delta_[j]),
                            milp::Sense::LE, 0.0, "use(" + nm + ")");
    }
    // delta <= sum(e)  (no instantiation without at least one edge)
    model_.add_constraint(milp::LinExpr(delta_[j]) - incident, milp::Sense::LE, 0.0,
                          "use_lb(" + nm + ")");

    // Mapping constraints (3a)+(3b), new encoding: sum_i m_ij = delta_j.
    milp::LinExpr msum;
    for (const LibraryMapping::Candidate& c : map_.candidates(v)) {
      msum += milp::LinExpr(c.var);
    }
    if (map_.candidates(v).empty()) {
      // No implementation available: the node can never be instantiated.
      model_.add_constraint(milp::LinExpr(delta_[j]) == milp::LinExpr(0.0),
                            "unimplementable(" + nm + ")");
    } else {
      model_.add_constraint(msum - milp::LinExpr(delta_[j]), milp::Sense::EQ, 0.0,
                            "map(" + nm + ")");
    }
  }
  label_new_rows("structural");
  encode_timer.stop();
  pattern_costs_.push_back({"structural", encode_seconds_});
}

void Problem::label_new_rows(const std::string& label) {
  if (row_origin_.size() >= model_.num_constraints()) return;
  auto it = std::find(row_labels_.begin(), row_labels_.end(), label);
  if (it == row_labels_.end()) {
    row_labels_.push_back(label);
    it = std::prev(row_labels_.end());
  }
  const auto idx = static_cast<std::int32_t>(it - row_labels_.begin());
  row_origin_.resize(model_.num_constraints(), idx);
}

const std::string& Problem::origin_of_row(std::size_t row) const {
  static const std::string kUnknown = "unattributed";
  if (row >= row_origin_.size()) return kUnknown;
  return row_labels_[static_cast<std::size_t>(row_origin_[row])];
}

milp::LinExpr Problem::in_degree(NodeId v, const NodeFilter& from) const {
  milp::LinExpr e;
  for (std::int32_t idx : adj_.in_edges(v)) {
    const AdjacencyMatrix::Edge& edge = adj_.edge(idx);
    if (from.matches(tmpl_.node(edge.from))) e += milp::LinExpr(edge.var);
  }
  return e;
}

milp::LinExpr Problem::out_degree(NodeId v, const NodeFilter& to) const {
  milp::LinExpr e;
  for (std::int32_t idx : adj_.out_edges(v)) {
    const AdjacencyMatrix::Edge& edge = adj_.edge(idx);
    if (to.matches(tmpl_.node(edge.to))) e += milp::LinExpr(edge.var);
  }
  return e;
}

milp::LinExpr Problem::subtype_indicator(NodeId j, const std::string& subtype) const {
  milp::LinExpr e;
  for (const LibraryMapping::Candidate& c : map_.candidates(j)) {
    if (lib_.at(c.lib).subtype == subtype) e += milp::LinExpr(c.var);
  }
  return e;
}

FlowCommodity& Problem::flow(const std::string& name, double cap) {
  auto it = flows_.find(name);
  if (it != flows_.end()) return it->second;

  FlowCommodity f;
  f.name = name;
  f.capacity = cap;
  f.edge_vars.reserve(adj_.num_edges());
  for (const AdjacencyMatrix::Edge& e : adj_.edges()) {
    const std::string vn = "f[" + name + "](" + tmpl_.node(e.from).name + "," +
                           tmpl_.node(e.to).name + ")";
    const milp::VarId fv = model_.add_continuous(0.0, cap, vn);
    // Coupling: lambda_e <= cap * e  (flow only on active edges).
    model_.add_constraint(milp::LinExpr(fv) - cap * e.var, milp::Sense::LE, 0.0,
                          "cap[" + name + "](" + vn + ")");
    f.edge_vars.push_back(fv);
  }
  label_new_rows("flow(" + name + ")");
  return flows_.emplace(name, std::move(f)).first->second;
}

const FlowCommodity* Problem::find_flow(const std::string& name) const {
  const auto it = flows_.find(name);
  return it == flows_.end() ? nullptr : &it->second;
}

milp::LinExpr Problem::flow_in(const FlowCommodity& f, NodeId v) const {
  milp::LinExpr e;
  for (std::int32_t idx : adj_.in_edges(v)) {
    e += milp::LinExpr(f.edge_vars[static_cast<std::size_t>(idx)]);
  }
  return e;
}

milp::LinExpr Problem::flow_out(const FlowCommodity& f, NodeId v) const {
  milp::LinExpr e;
  for (std::int32_t idx : adj_.out_edges(v)) {
    e += milp::LinExpr(f.edge_vars[static_cast<std::size_t>(idx)]);
  }
  return e;
}

void Problem::apply(const Pattern& pattern) {
  std::string desc = pattern.describe();
  // Per-pattern encode span (dynamic name, interned once here — never from a
  // hot loop) and the always-on wall-clock charge the perf report aggregates.
  obs::ScopedSpan span(profiler_ != nullptr ? profiler_->main() : nullptr,
                       profiler_ != nullptr ? profiler_->intern(desc) : 0);
  const auto t0 = std::chrono::steady_clock::now();
  pattern.emit(*this);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  patterns_applied_.push_back(desc);
  // Rows emitted during this pattern (minus any flow-coupling rows flow()
  // already claimed) are attributed to the pattern.
  label_new_rows(desc);
  pattern_costs_.push_back({std::move(desc), secs});
}

void Problem::apply(const std::shared_ptr<Pattern>& pattern) { apply(*pattern); }

std::vector<NodeId> Problem::source_nodes() const {
  if (func_flow_.empty()) return {};
  return tmpl_.select(NodeFilter::of_type(func_flow_.front()));
}

std::vector<NodeId> Problem::sink_nodes() const {
  if (func_flow_.empty()) return {};
  return tmpl_.select(NodeFilter::of_type(func_flow_.back()));
}

double Problem::path_fail_prob_estimate() const {
  double p = 0.0;
  for (const std::string& type : func_flow_) {
    p += lib_.max_attr(type, attr::kFailProb);
  }
  return p;
}

std::size_t Problem::add_symmetry_breaking() {
  // Two nodes are interchangeable if swapping them is an automorphism of the
  // labeled candidate-edge structure: identical specs (minus the name) and,
  // for every third node x, (u,x) allowed iff (v,x) allowed and (x,u) iff
  // (x,v); plus (u,v) allowed iff (v,u).
  auto swappable = [&](NodeId u, NodeId v) {
    const NodeSpec& a = tmpl_.node(u);
    const NodeSpec& b = tmpl_.node(v);
    if (a.type != b.type || a.subtype != b.subtype || a.tags != b.tags || a.impl != b.impl) {
      return false;
    }
    if (tmpl_.edge_allowed(u, v) != tmpl_.edge_allowed(v, u)) return false;
    for (std::size_t x = 0; x < tmpl_.num_nodes(); ++x) {
      const NodeId w = static_cast<NodeId>(x);
      if (w == u || w == v) continue;
      if (tmpl_.edge_allowed(u, w) != tmpl_.edge_allowed(v, w)) return false;
      if (tmpl_.edge_allowed(w, u) != tmpl_.edge_allowed(w, v)) return false;
    }
    return true;
  };

  std::size_t pairs = 0;
  std::vector<bool> chained(tmpl_.num_nodes(), false);
  for (std::size_t i = 0; i < tmpl_.num_nodes(); ++i) {
    if (chained[i]) continue;
    NodeId prev = static_cast<NodeId>(i);
    for (std::size_t j = i + 1; j < tmpl_.num_nodes(); ++j) {
      if (chained[j]) continue;
      const NodeId cand = static_cast<NodeId>(j);
      if (!swappable(prev, cand)) continue;
      model_.add_constraint(
          milp::LinExpr(delta_[static_cast<std::size_t>(prev)]) -
              milp::LinExpr(delta_[static_cast<std::size_t>(cand)]),
          milp::Sense::GE, 0.0,
          "sym(" + tmpl_.node(prev).name + ">=" + tmpl_.node(cand).name + ")");
      chained[j] = true;
      prev = cand;
      ++pairs;
    }
  }
  label_new_rows("symmetry-breaking");
  return pairs;
}

void Problem::add_cost_term(milp::LinExpr term, double weight) {
  extra_cost_.emplace_back(std::move(term), weight);
}

void Problem::set_edge_cost(NodeId from, NodeId to, double cost) {
  for (std::size_t i = 0; i < adj_.num_edges(); ++i) {
    const AdjacencyMatrix::Edge& e = adj_.edge(static_cast<std::int32_t>(i));
    if (e.from == from && e.to == to) {
      edge_cost_override_[static_cast<std::int32_t>(i)] = cost;
      return;
    }
  }
  throw std::invalid_argument("Problem::set_edge_cost: not a candidate edge");
}

milp::LinExpr Problem::cost_expression() const {
  milp::LinExpr cost;
  // Component costs via the mapping: sum_ij m_ij * c_i.
  for (std::size_t j = 0; j < tmpl_.num_nodes(); ++j) {
    for (const LibraryMapping::Candidate& c : map_.candidates(static_cast<NodeId>(j))) {
      cost.add_term(c.var, lib_.at(c.lib).cost());
    }
  }
  // Edge (connection element) costs: sum e_ij * c~_ij.
  for (std::size_t i = 0; i < adj_.num_edges(); ++i) {
    cost.add_term(adj_.edge(static_cast<std::int32_t>(i)).var,
                  edge_base_cost(static_cast<std::int32_t>(i)));
  }
  // Extra weighted concerns.
  for (const auto& [term, w] : extra_cost_) {
    milp::LinExpr t = term;
    t *= w;
    cost += t;
  }
  return cost;
}

ExplorationResult Problem::solve(const milp::MilpOptions& options) {
  // The MILP engine reports into this problem's registry unless the caller
  // routed it elsewhere, so encode / solve / extract share one namespace.
  milp::MilpOptions opts = options;
  if (opts.metrics == nullptr) opts.metrics = metrics_.get();
  if (opts.profiler == nullptr) opts.profiler = profiler_;
  obs::SpanBuffer* const spans =
      opts.profiler != nullptr ? opts.profiler->main() : nullptr;

  // Thin facade over the compiled pipeline (arch/compiled_model.hpp):
  // compile the frozen artifact, then solve the base (empty) scenario. The
  // objective is still assembled onto this Problem's own model so callers
  // inspecting model().objective() after solve() keep seeing it.
  double compile_seconds = 0.0;
  CompiledModel cm = [&] {
    obs::ScopedSpan formulate_span(spans,
                                   obs::span_id(obs::SpanName::Formulate));
    obs::ScopedTimer compile_timer(&opts.metrics->timer("arch.compile"),
                                   &compile_seconds);
    model_.set_objective(cost_expression(), milp::ObjectiveSense::Minimize);
    return compile(*this);
  }();

  ExplorationResult res = archex::solve(cm, Scenario{}, opts);
  res.encode_seconds = encode_seconds_;
  res.formulation_seconds += compile_seconds;
  if (res.solution.status == milp::SolveStatus::Infeasible && diagnoser_) {
    obs::ScopedTimer diagnose_timer(&opts.metrics->timer("arch.diagnose"));
    res.infeasibility_explanation = diagnoser_(*this);
    // Re-snapshot so the diagnose timer lands next to the solver's metrics.
    res.solution.metrics = opts.metrics->snapshot();
  }
  return res;
}

Architecture Problem::extract(const milp::Solution& sol) const {
  Architecture arch;
  arch.nodes.resize(tmpl_.num_nodes());
  for (std::size_t j = 0; j < tmpl_.num_nodes(); ++j) {
    const NodeSpec& spec = tmpl_.node(static_cast<NodeId>(j));
    Architecture::Node& n = arch.nodes[j];
    n.name = spec.name;
    n.type = spec.type;
    n.subtype = spec.subtype;
    n.tags = spec.tags;
    n.used = sol.value(delta_[j]) > 0.5;
    if (n.used) {
      for (const LibraryMapping::Candidate& c : map_.candidates(static_cast<NodeId>(j))) {
        if (sol.value(c.var) > 0.5) {
          n.impl = c.lib;
          n.impl_name = lib_.at(c.lib).name;
          break;
        }
      }
    }
  }
  for (const AdjacencyMatrix::Edge& e : adj_.edges()) {
    if (sol.value(e.var) > 0.5) arch.edges.emplace_back(e.from, e.to);
  }
  arch.cost = cost_expression().evaluate(sol.x);
  for (const auto& [name, f] : flows_) {
    std::vector<FlowEdge> active;
    for (std::size_t i = 0; i < f.edge_vars.size(); ++i) {
      const double rate = sol.value(f.edge_vars[i]);
      if (rate > 1e-6) {
        const AdjacencyMatrix::Edge& e = adj_.edge(static_cast<std::int32_t>(i));
        active.push_back({e.from, e.to, rate});
      }
    }
    if (!active.empty()) arch.flows.emplace(name, std::move(active));
  }
  return arch;
}

}  // namespace archex
