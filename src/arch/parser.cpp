#include "arch/parser.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace archex {

namespace {

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Strips a trailing comment and whitespace; returns empty for blank lines.
/// A '#' only starts a comment at the beginning of the line or after
/// whitespace — "Load#critical" is the tag-filter syntax, not a comment.
std::string clean_line(const std::string& raw) {
  std::size_t hash = std::string::npos;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '#' &&
        (i == 0 || std::isspace(static_cast<unsigned char>(raw[i - 1])))) {
      hash = i;
      break;
    }
  }
  return strip(hash == std::string::npos ? raw : raw.substr(0, hash));
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(strip(cur));
  return out;
}

std::vector<std::string> tokens(const std::string& s) {
  std::istringstream is(s);
  std::vector<std::string> out;
  std::string t;
  while (is >> t) out.push_back(t);
  return out;
}

bool parse_number(const std::string& s, double& value) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  return ec == std::errc() && ptr == end;
}

/// Applies `key=value` tokens to a component-like record. Returns false for
/// tokens without '='.
struct Record {
  std::string type, subtype, impl;
  std::vector<std::string> tags;
  std::map<std::string, double> attrs;
};

void apply_kv(Record& r, const std::string& tok, int line) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string::npos) {
    throw ParseError("expected key=value, got '" + tok + "'", line);
  }
  const std::string key = tok.substr(0, eq);
  const std::string value = tok.substr(eq + 1);
  if (key == "type") {
    r.type = value;
  } else if (key == "subtype") {
    r.subtype = value;
  } else if (key == "impl") {
    r.impl = value;
  } else if (key == "tags") {
    for (const std::string& t : split(value, ',')) {
      if (!t.empty()) r.tags.push_back(t);
    }
  } else {
    double num = 0.0;
    if (!parse_number(value, num)) {
      throw ParseError("attribute '" + key + "' needs a numeric value, got '" + value + "'",
                       line);
    }
    r.attrs[key] = num;
  }
}

}  // namespace

Library load_library(std::istream& in) {
  Library lib;
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    const std::vector<std::string> toks = tokens(line);
    if (toks[0] == "edge_cost") {
      double c = 0.0;
      if (toks.size() != 2 || !parse_number(toks[1], c)) {
        throw ParseError("edge_cost expects one number", lineno);
      }
      lib.set_edge_cost(c);
    } else if (toks[0] == "component") {
      if (toks.size() < 3) throw ParseError("component needs a name and a type", lineno);
      Record r;
      for (std::size_t i = 2; i < toks.size(); ++i) apply_kv(r, toks[i], lineno);
      if (r.type.empty()) throw ParseError("component '" + toks[1] + "' needs type=", lineno);
      Component c;
      c.name = toks[1];
      c.type = std::move(r.type);
      c.subtype = std::move(r.subtype);
      c.tags = std::move(r.tags);
      c.attrs = std::move(r.attrs);
      try {
        lib.add(std::move(c));
      } catch (const std::invalid_argument& e) {
        throw ParseError(e.what(), lineno);
      }
    } else {
      throw ParseError("unknown library directive '" + toks[0] + "'", lineno);
    }
  }
  return lib;
}

Library load_library_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open library file: " + path);
  return load_library(in);
}

std::pair<std::string, std::vector<PatternArg>> parse_pattern_call(const std::string& text) {
  const std::string s = strip(text);
  const std::size_t open = s.find('(');
  if (open == std::string::npos || s.back() != ')') {
    throw std::invalid_argument("pattern call must look like name(args): " + s);
  }
  const std::string name = strip(s.substr(0, open));
  const std::string inner = s.substr(open + 1, s.size() - open - 2);
  std::vector<PatternArg> args;
  if (!strip(inner).empty()) {
    for (const std::string& part : split(inner, ',')) {
      double num = 0.0;
      if (parse_number(part, num)) args.emplace_back(num);
      else args.emplace_back(part);
    }
  }
  return {name, std::move(args)};
}

ProblemSpec load_problem_spec(std::istream& in) {
  ProblemSpec spec;
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    ++spec.spec_lines;
    const std::vector<std::string> toks = tokens(line);
    const std::string& head = toks[0];

    if (head == "functional_flow") {
      if (toks.size() != 2) throw ParseError("functional_flow expects one comma list", lineno);
      spec.functional_flow = split(toks[1], ',');
    } else if (head == "node") {
      if (toks.size() < 3) throw ParseError("node needs a name and a type", lineno);
      Record r;
      for (std::size_t i = 2; i < toks.size(); ++i) apply_kv(r, toks[i], lineno);
      if (r.type.empty()) throw ParseError("node '" + toks[1] + "' needs type=", lineno);
      try {
        spec.tmpl.add_node({toks[1], r.type, r.subtype, r.tags, r.impl});
      } catch (const std::invalid_argument& e) {
        throw ParseError(e.what(), lineno);
      }
    } else if (head == "nodes") {
      if (toks.size() < 4) throw ParseError("nodes needs prefix, count, type=", lineno);
      double count = 0.0;
      if (!parse_number(toks[2], count) || count < 1) {
        throw ParseError("nodes count must be a positive number", lineno);
      }
      Record r;
      for (std::size_t i = 3; i < toks.size(); ++i) apply_kv(r, toks[i], lineno);
      if (r.type.empty()) throw ParseError("nodes '" + toks[1] + "' needs type=", lineno);
      spec.tmpl.add_nodes(static_cast<int>(count), toks[1], r.type, r.subtype, r.tags);
    } else if (head == "allow") {
      // allow <filter> -> <filter> [cost=N]
      const std::size_t arrow = line.find("->");
      if (arrow == std::string::npos) throw ParseError("allow needs 'from -> to'", lineno);
      const std::string from = strip(line.substr(5, arrow - 5));
      std::string to = strip(line.substr(arrow + 2));
      double cost = -1.0;
      if (const std::size_t sp = to.find(' '); sp != std::string::npos) {
        const std::string extra = strip(to.substr(sp));
        to = strip(to.substr(0, sp));
        if (extra.rfind("cost=", 0) != 0 || !parse_number(extra.substr(5), cost)) {
          throw ParseError("allow trailer must be cost=<number>, got '" + extra + "'",
                           lineno);
        }
      }
      if (from.empty() || to.empty()) throw ParseError("allow needs 'from -> to'", lineno);
      const NodeFilter ff = NodeFilter::parse(from);
      const NodeFilter tf = NodeFilter::parse(to);
      spec.tmpl.allow_connection(ff, tf);
      if (cost >= 0) spec.edge_costs.push_back({ff, tf, cost});
    } else if (head == "pattern") {
      if (line.size() <= 8) throw ParseError("pattern needs a call like name(args)", lineno);
      const std::string call = strip(line.substr(8));
      try {
        spec.patterns.push_back(parse_pattern_call(call));
      } catch (const std::invalid_argument& e) {
        throw ParseError(e.what(), lineno);
      }
    } else {
      throw ParseError("unknown problem directive '" + head + "'", lineno);
    }
  }
  return spec;
}

ProblemSpec load_problem_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open problem file: " + path);
  return load_problem_spec(in);
}

std::unique_ptr<Problem> instantiate(const ProblemSpec& spec, Library library) {
  auto problem = std::make_unique<Problem>(std::move(library), spec.tmpl);
  problem->set_functional_flow(spec.functional_flow);
  for (const ProblemSpec::EdgeCostOverride& o : spec.edge_costs) {
    for (NodeId a : spec.tmpl.select(o.from)) {
      for (NodeId b : spec.tmpl.select(o.to)) {
        if (a != b && spec.tmpl.edge_allowed(a, b)) problem->set_edge_cost(a, b, o.cost);
      }
    }
  }
  const PatternRegistry& reg = PatternRegistry::instance();
  for (const auto& [name, args] : spec.patterns) {
    problem->apply(reg.create(name, args));
  }
  return problem;
}

}  // namespace archex
