/// \file component.hpp
/// Library components: typed, attributed building blocks of an architecture.
///
/// Mirrors the `Component` class of the ArchEx toolbox (Sec. 3): every
/// component has a type (its role in the system, e.g. "Generator"), an
/// optional subtype (e.g. "HV"/"LV"), free-form tags (e.g. location "LE"),
/// and a dictionary of numeric attributes (cost, failure probability, flow
/// rate, throughput, delay, power rating, ...).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace archex {

/// Well-known attribute keys used by the built-in patterns. Domain libraries
/// may define additional keys; patterns receive the key names they need.
namespace attr {
inline constexpr const char* kCost = "cost";          ///< component cost c
inline constexpr const char* kFailProb = "failprob";  ///< failure probability p
inline constexpr const char* kFlowRate = "lambda";    ///< produced flow rate
inline constexpr const char* kThroughput = "mu";      ///< max processed rate
inline constexpr const char* kDelay = "tau";          ///< propagation delay
inline constexpr const char* kPower = "power";        ///< power rating g / capacity b / demand l
}  // namespace attr

/// A concrete ("real") component from a domain library.
struct Component {
  std::string name;
  std::string type;
  std::string subtype;                  ///< optional; empty = none
  std::vector<std::string> tags;        ///< optional labels (e.g. location)
  std::map<std::string, double> attrs;  ///< numeric attributes by key

  /// Attribute lookup with a default for missing keys.
  [[nodiscard]] double attr_or(const std::string& key, double fallback = 0.0) const {
    const auto it = attrs.find(key);
    return it == attrs.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has_attr(const std::string& key) const { return attrs.count(key) > 0; }
  [[nodiscard]] bool has_tag(const std::string& tag) const {
    for (const std::string& t : tags) {
      if (t == tag) return true;
    }
    return false;
  }

  [[nodiscard]] double cost() const { return attr_or(attr::kCost); }
  [[nodiscard]] double fail_prob() const { return attr_or(attr::kFailProb); }
};

}  // namespace archex
