#include "arch/perf_report.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <ostream>

#include "arch/compiled_model.hpp"

namespace archex {

namespace {

/// Shared attribution core. Both artifact kinds (a live Problem, a frozen
/// CompiledModel) provide the same three inputs: the model, the per-row
/// origin lookup, and the encode-time charges.
PerfReport build_impl(
    const milp::Model& model,
    const std::vector<Problem::PatternCost>& pattern_costs,
    const std::function<const std::string&(std::size_t)>& origin_of_row,
    const milp::Solution& sol) {
  PerfReport rep;
  rep.simplex_iterations = sol.simplex_iterations;
  rep.solve_seconds = sol.solve_seconds;

  // Label -> table row, in first-seen order for stable aggregation.
  std::map<std::string, std::size_t> index;
  auto row_for = [&](const std::string& label) -> PatternCostRow& {
    auto [it, fresh] = index.emplace(label, rep.rows.size());
    if (fresh) {
      rep.rows.emplace_back();
      rep.rows.back().label = label;
    }
    return rep.rows[it->second];
  };

  // Encode charges: every timed application (the constructor's "structural"
  // entry included) carries a named label, so the attributed fraction only
  // dips below 1 if a future encode path forgets to charge itself.
  for (const Problem::PatternCost& pc : pattern_costs) {
    PatternCostRow& r = row_for(pc.label);
    r.encode_seconds += pc.seconds;
    ++r.applications;
    rep.encode_total_seconds += pc.seconds;
    rep.attributed_seconds += pc.seconds;
  }
  rep.attributed_fraction =
      rep.encode_total_seconds > 0.0
          ? rep.attributed_seconds / rep.encode_total_seconds
          : 1.0;

  // Row provenance: count rows per origin, then charge presolve eliminations
  // back through the same labels.
  rep.model_rows = model.num_constraints();
  for (std::size_t i = 0; i < rep.model_rows; ++i) {
    ++row_for(origin_of_row(i)).rows;
  }
  for (const std::int32_t dead : sol.presolve_removed_rows) {
    ++row_for(origin_of_row(static_cast<std::size_t>(dead))).presolve_removed;
  }

  // Simplex effort proxy: a label's share of the rows that survived presolve
  // (rationale in the header).
  rep.surviving_rows = rep.model_rows;
  for (const PatternCostRow& r : rep.rows) {
    rep.surviving_rows -= std::min(r.presolve_removed, rep.surviving_rows);
  }
  if (rep.surviving_rows > 0) {
    for (PatternCostRow& r : rep.rows) {
      r.simplex_share =
          static_cast<double>(r.rows - std::min(r.presolve_removed, r.rows)) /
          static_cast<double>(rep.surviving_rows);
    }
  }

  std::stable_sort(rep.rows.begin(), rep.rows.end(),
                   [](const PatternCostRow& a, const PatternCostRow& b) {
                     return a.encode_seconds > b.encode_seconds;
                   });
  return rep;
}

}  // namespace

PerfReport build_perf_report(const Problem& problem, const milp::Solution& sol) {
  return build_impl(
      problem.model(), problem.pattern_costs(),
      [&](std::size_t row) -> const std::string& {
        return problem.origin_of_row(row);
      },
      sol);
}

PerfReport build_perf_report(const CompiledModel& cm,
                             const milp::Solution& sol) {
  return build_impl(
      cm.base_model(), cm.pattern_costs(),
      [&](std::size_t row) -> const std::string& {
        return cm.origin_of_row(row);
      },
      sol);
}

void write_perf_report(std::ostream& os, const PerfReport& rep) {
  char line[256];
  os << "perf report: per-pattern cost attribution\n";
  std::snprintf(line, sizeof(line),
                "encode total: %.6fs  attributed: %.6fs (%.1f%%)\n",
                rep.encode_total_seconds, rep.attributed_seconds,
                100.0 * rep.attributed_fraction);
  os << line;
  std::snprintf(line, sizeof(line),
                "model rows: %zu  surviving presolve: %zu  simplex iterations:"
                " %lld  solve: %.6fs\n",
                rep.model_rows, rep.surviving_rows,
                static_cast<long long>(rep.simplex_iterations),
                rep.solve_seconds);
  os << line;
  std::snprintf(line, sizeof(line), "%-44s %10s %6s %8s %8s %8s\n", "pattern",
                "encode(s)", "apps", "rows", "removed", "lp-share");
  os << line;
  for (const PatternCostRow& r : rep.rows) {
    // Truncate long describe() strings so the table stays aligned.
    std::string label = r.label;
    if (label.size() > 44) label = label.substr(0, 41) + "...";
    std::snprintf(line, sizeof(line), "%-44s %10.6f %6zu %8zu %8zu %7.1f%%\n",
                  label.c_str(), r.encode_seconds, r.applications, r.rows,
                  r.presolve_removed, 100.0 * r.simplex_share);
    os << line;
  }
}

}  // namespace archex
