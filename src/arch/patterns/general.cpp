#include "arch/patterns/general.hpp"

#include <algorithm>

#include "arch/problem.hpp"

namespace archex::patterns {

void AtLeastNComponents::emit(Problem& p) const {
  milp::LinExpr total;
  for (NodeId j : p.arch_template().select(filter_)) {
    total += milp::LinExpr(p.instantiated(j));
  }
  p.model().add_constraint(std::move(total), milp::Sense::GE, static_cast<double>(n_),
                           "n_components(" + filter_.to_string() + ")");
}

namespace {

/// Common body of the two disjoint-path emitters. With an empty trigger
/// list the demand is unconditional; otherwise one conditional demand row is
/// emitted per trigger edge.
void emit_disjoint_paths_impl(Problem& p, const std::vector<NodeId>& sources, NodeId target,
                              int k, const std::vector<milp::VarId>* triggers,
                              bool disjoint_sources, const std::string& tag) {
  const ArchTemplate& t = p.arch_template();
  const std::string& tname = t.node(target).name;
  // Requirements with the same tag+target share one commodity: only the
  // demand rows differ (e.g. a hub serving both critical and sheddable
  // loads), so the structural rows are emitted once.
  const std::string fname = "paths[" + tag + ":" + tname + "]";
  const bool fresh = p.find_flow(fname) == nullptr;
  FlowCommodity& f = p.flow(fname, 1.0);

  auto is_source = [&](NodeId v) {
    return std::find(sources.begin(), sources.end(), v) != sources.end();
  };

  for (std::size_t j = 0; j < t.num_nodes(); ++j) {
    const NodeId v = static_cast<NodeId>(j);
    if (!fresh && v != target) continue;  // structural rows already present
    milp::LinExpr in = p.flow_in(f, v);
    milp::LinExpr out = p.flow_out(f, v);
    const std::string& vn = t.node(v).name;

    if (v == target) {
      // Strengthening cuts implied by k vertex-disjoint paths: the target
      // sees >= k distinct in-edges, >= k distinct sources are instantiated,
      // and the sources emit >= k distinct out-edges. These pure-binary
      // inequalities give the LP relaxation integer structure the fractional
      // flow alone cannot (fixed-charge network-design bound tightening).
      milp::LinExpr in_edges = p.in_degree(v);
      milp::LinExpr src_used;
      milp::LinExpr src_out;
      if (disjoint_sources) {
        for (NodeId s : sources) {
          src_used += milp::LinExpr(p.instantiated(s));
          src_out += p.out_degree(s);
        }
      }
      auto add_demand = [&](milp::LinExpr lhs, double rhs, const char* what, int idx) {
        p.model().add_constraint(std::move(lhs), milp::Sense::GE, rhs,
                                 std::string(what) + "[" + tag + "](" + tname + "#" +
                                     std::to_string(idx) + ")");
      };
      if (triggers == nullptr) {
        add_demand(in - out, k, "paths_demand", 0);
        add_demand(std::move(in_edges), k, "paths_cut_in", 0);
        if (disjoint_sources) {
          add_demand(std::move(src_used), k, "paths_cut_src", 0);
          add_demand(std::move(src_out), k, "paths_cut_srcout", 0);
        }
      } else {
        int idx = 0;
        for (milp::VarId trig : *triggers) {
          milp::LinExpr c = in;
          c -= out;
          c.add_term(trig, -static_cast<double>(k));
          add_demand(std::move(c), 0.0, "paths_demand", idx);
          milp::LinExpr cut1 = in_edges;
          cut1.add_term(trig, -static_cast<double>(k));
          add_demand(std::move(cut1), 0.0, "paths_cut_in", idx);
          if (disjoint_sources) {
            milp::LinExpr cut2 = src_used;
            cut2.add_term(trig, -static_cast<double>(k));
            add_demand(std::move(cut2), 0.0, "paths_cut_src", idx);
            milp::LinExpr cut3 = src_out;
            cut3.add_term(trig, -static_cast<double>(k));
            add_demand(std::move(cut3), 0.0, "paths_cut_srcout", idx);
          }
          ++idx;
        }
      }
    } else if (is_source(v)) {
      if (disjoint_sources) {
        // Each source originates at most one of the disjoint paths.
        p.model().add_constraint(out - in, milp::Sense::LE, 1.0,
                                 "paths_src[" + tag + "](" + vn + "->" + tname + ")");
      }
    } else {
      // Conservation at intermediates...
      if (in.size() + out.size() > 0) {
        milp::LinExpr bal = in;
        bal -= out;
        p.model().add_constraint(std::move(bal), milp::Sense::EQ, 0.0,
                                 "paths_bal[" + tag + "](" + vn + "->" + tname + ")");
      }
      // ... and unit vertex capacity (vertex-disjointness).
      if (in.size() > 0) {
        p.model().add_constraint(p.flow_in(f, v), milp::Sense::LE, 1.0,
                                 "paths_cap[" + tag + "](" + vn + "->" + tname + ")");
      }
    }
  }
}

}  // namespace

void emit_disjoint_paths(Problem& p, const std::vector<NodeId>& sources, NodeId target, int k,
                         bool disjoint_sources, const std::string& tag) {
  emit_disjoint_paths_impl(p, sources, target, k, nullptr, disjoint_sources, tag);
}

void emit_disjoint_paths_conditional(Problem& p, const std::vector<NodeId>& sources,
                                     NodeId target, int k,
                                     const std::vector<milp::VarId>& trigger_edges,
                                     bool disjoint_sources, const std::string& tag) {
  emit_disjoint_paths_impl(p, sources, target, k, &trigger_edges, disjoint_sources, tag);
}

void SinksConnectedToSources::emit(Problem& p) const {
  const ArchTemplate& t = p.arch_template();
  const std::vector<NodeId> sources = t.select(sources_);
  const std::vector<NodeId> sinks = t.select(sinks_);
  FlowCommodity& f = p.flow("connected[" + sources_.to_string() + "->" + sinks_.to_string() +
                                "]",
                            static_cast<double>(sinks.size()));
  auto contains = [](const std::vector<NodeId>& v, NodeId x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  };
  for (std::size_t j = 0; j < t.num_nodes(); ++j) {
    const NodeId v = static_cast<NodeId>(j);
    if (contains(sources, v)) continue;  // sources inject freely
    milp::LinExpr net = p.flow_in(f, v);
    net -= p.flow_out(f, v);
    if (net.size() == 0) continue;
    const double demand = contains(sinks, v) ? 1.0 : 0.0;
    p.model().add_constraint(std::move(net), milp::Sense::EQ, demand,
                             "connected(" + t.node(v).name + ")");
  }
}

void AtLeastNPaths::emit(Problem& p) const {
  const std::vector<NodeId> sources = p.arch_template().select(from_);
  for (NodeId target : p.arch_template().select(to_)) {
    emit_disjoint_paths(p, sources, target, n_, disjoint_sources_, "np" + std::to_string(n_));
  }
}

}  // namespace archex::patterns
