#include "arch/patterns/reliability_patterns.hpp"

#include <algorithm>
#include <sstream>

#include "arch/patterns/general.hpp"
#include "arch/problem.hpp"
#include "reliability/reliability.hpp"

namespace archex::patterns {

void MinRedundantComponents::emit(Problem& p) const {
  milp::LinExpr total;
  for (NodeId j : p.arch_template().select(filter_)) {
    total += milp::LinExpr(p.instantiated(j));
  }
  p.model().add_constraint(std::move(total), milp::Sense::GE, static_cast<double>(n_),
                           "redundant(" + filter_.to_string() + ")");
}

std::string MaxFailprobOfConnection::describe() const {
  std::ostringstream os;
  os << "max_failprob_of_connection(" << from_.to_string() << ", " << to_.to_string() << ", "
     << threshold_ << ")";
  return os.str();
}

int MaxFailprobOfConnection::required_paths(const Problem& p) const {
  const double path_p = path_fail_prob_ > 0.0 ? path_fail_prob_ : p.path_fail_prob_estimate();
  return reliability::required_disjoint_paths(threshold_, path_p);
}

void MaxFailprobOfConnection::emit(Problem& p) const {
  const int k = required_paths(p);
  const std::vector<NodeId> sources = p.arch_template().select(from_);
  for (NodeId target : p.arch_template().select(to_)) {
    emit_disjoint_paths(p, sources, target, k, /*disjoint_sources=*/true,
                        "rel" + std::to_string(k));
  }
}

std::string MaxFailprobViaHub::describe() const {
  std::ostringstream os;
  os << "max_failprob_of_connection(" << from_.to_string() << ", " << via_.to_string()
     << ", " << to_.to_string() << ", " << threshold_ << ")";
  return os.str();
}

int MaxFailprobViaHub::required_paths(const Problem& p) const {
  const double path_p = path_fail_prob_ > 0.0 ? path_fail_prob_ : p.path_fail_prob_estimate();
  return reliability::required_disjoint_paths(threshold_, path_p);
}

void MaxFailprobViaHub::emit(Problem& p) const {
  const int k = required_paths(p);
  const ArchTemplate& t = p.arch_template();
  const std::vector<NodeId> sources = t.select(from_);
  for (NodeId hub : t.select(via_)) {
    // Trigger edges: candidate connections from this hub to matching sinks.
    std::vector<milp::VarId> triggers;
    for (std::int32_t idx : p.edges().out_edges(hub)) {
      const AdjacencyMatrix::Edge& e = p.edges().edge(idx);
      if (to_.matches(t.node(e.to))) triggers.push_back(e.var);
    }
    if (triggers.empty()) continue;
    // Shared tag: hubs serving several sink classes (critical + sheddable)
    // reuse one flow commodity; only the conditional demand rows differ.
    emit_disjoint_paths_conditional(p, sources, hub, k, triggers, /*disjoint_sources=*/true,
                                    "relh");
  }

  // Stage cuts over the functional flow: k vertex-disjoint source->hub paths
  // use k distinct components of *every* stage type between the sources and
  // the hubs (paths follow the flow chain, same-type ties included). Summing
  // a sink's hub-assignment edges makes the cut immune to fractional
  // assignment splitting: sum_d e_{d,sink} is 1 whenever the sink is served.
  const std::vector<std::string>& flow = p.functional_flow();
  std::vector<std::string> stage_types;
  if (!from_.type.empty() && !via_.type.empty()) {
    const auto s = std::find(flow.begin(), flow.end(), from_.type);
    const auto h = std::find(flow.begin(), flow.end(), via_.type);
    if (s != flow.end() && h != flow.end() && s < h) stage_types.assign(s, h);
  }
  for (NodeId sink : t.select(to_)) {
    milp::LinExpr assignment;  // sum over candidate hub edges into this sink
    for (std::int32_t idx : p.edges().in_edges(sink)) {
      const AdjacencyMatrix::Edge& e = p.edges().edge(idx);
      if (via_.matches(t.node(e.from))) assignment += milp::LinExpr(e.var);
    }
    if (assignment.size() == 0) continue;
    for (const std::string& type : stage_types) {
      milp::LinExpr cut;
      for (NodeId v : t.select(NodeFilter::of_type(type))) {
        cut += milp::LinExpr(p.instantiated(v));
      }
      cut -= static_cast<double>(k) * assignment;
      p.model().add_constraint(std::move(cut), milp::Sense::GE, 0.0,
                               "stage_cut[" + type + "](" + t.node(sink).name + ")");
    }
  }
}

}  // namespace archex::patterns
