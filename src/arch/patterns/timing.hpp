/// \file timing.hpp
/// Timing patterns of Table 1: cycle-time bounds (6) and idle-rate bounds (7).
#pragma once

#include <string>
#include <vector>

#include "arch/arch_template.hpp"
#include "arch/patterns/pattern.hpp"

namespace archex::patterns {

/// How max_cycle_time is encoded.
enum class CycleTimeEncoding {
  /// Arrival-time variables with big-M edge activation:
  ///   a_j >= a_i + tau_j(m) - M (1 - e_ij),  a_sink <= N.
  /// Polynomial size; requires the active delay-carrying subgraph to be
  /// acyclic for positive delays (a positive-delay cycle is infeasible,
  /// which is the physically meaningful reading).
  kArrivalTime,
  /// The paper's formulation (6): one constraint per simple candidate path,
  ///   sum_{i in pi} tau_i(m) <= N + M * (|pi|-1 - sum_{e in pi} e).
  /// Exponential in the worst case; used for small templates and as the
  /// cross-check in the timing-encoding ablation bench.
  kPathEnumeration,
};

/// `max_cycle_time(T, N)`: every source-to-sink path ending in a node
/// matching `sinks` has total mapped delay at most N. Sources are the nodes
/// of the functional flow's first type (Problem::set_functional_flow).
class MaxCycleTime final : public Pattern {
 public:
  MaxCycleTime(NodeFilter sinks, double bound,
               CycleTimeEncoding encoding = CycleTimeEncoding::kArrivalTime,
               std::size_t max_paths = 20'000)
      : sinks_(std::move(sinks)), bound_(bound), encoding_(encoding), max_paths_(max_paths) {}

  [[nodiscard]] std::string name() const override { return "max_cycle_time"; }
  [[nodiscard]] std::string describe() const override;
  void emit(Problem& p) const override;

 private:
  void emit_arrival(Problem& p) const;
  void emit_paths(Problem& p) const;

  NodeFilter sinks_;
  double bound_;
  CycleTimeEncoding encoding_;
  std::size_t max_paths_;
};

/// `max_total_idle_rate(T, N)`: the summed idle rate of all nodes matching
/// the filter is at most N (equation (7)):
///   sum_groups sum_j ( mu_j(m) - sum_in lambda_j ) <= N.
/// Each commodity group is one accounting context (e.g. one operation mode
/// whose products' flows are summed); the node's throughput counts once per
/// group. Empty groups = commodities grouped by their "<prefix>:" name
/// (so RPL's O1:A / O1:B / O2:A / O2:B form the two mode groups O1 and O2).
class MaxTotalIdleRate final : public Pattern {
 public:
  MaxTotalIdleRate(NodeFilter filter, double bound,
                   std::vector<std::vector<std::string>> groups = {})
      : filter_(std::move(filter)), bound_(bound), groups_(std::move(groups)) {}

  [[nodiscard]] std::string name() const override { return "max_total_idle_rate"; }
  [[nodiscard]] std::string describe() const override;
  void emit(Problem& p) const override;

 private:
  NodeFilter filter_;
  double bound_;
  std::vector<std::vector<std::string>> groups_;
};

}  // namespace archex::patterns
