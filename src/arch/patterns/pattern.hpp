/// \file pattern.hpp
/// Requirement patterns (Sec. 3, Table 1).
///
/// A pattern is a named, parameterized requirement that knows how to
/// translate itself into MILP constraints over the problem's decision
/// variables. Patterns are the user-facing specification language: a system
/// developer writes `exactly_n_connections(L, D, 1)` instead of the raw
/// linear constraints, and the pattern emits them through Problem's
/// accessors.
///
/// The set is extensible (the paper's key usability claim): domain-specific
/// patterns (EPN's has_sufficient_power, RPL's has_operation_mode) implement
/// the same interface and register themselves in the same registry the
/// problem-description parser resolves names through.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace archex {

class Problem;

/// Base class of all requirement patterns.
class Pattern {
 public:
  virtual ~Pattern() = default;

  /// Pattern name as written in specification files, e.g.
  /// "at_least_n_connections".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Human-readable rendering with arguments, e.g.
  /// "at_least_n_connections(G, A, 1)".
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Translates the requirement into MILP constraints on `p`.
  virtual void emit(Problem& p) const = 0;
};

/// Argument of a pattern as written in a specification file: a string
/// (type/subtype/tag/filter) or a number.
using PatternArg = std::variant<std::string, double>;

[[nodiscard]] std::string to_string(const PatternArg& a);

/// Factory registry: resolves pattern names from specification files to
/// constructed Pattern objects. Built-in patterns are pre-registered;
/// domains register their own (extensibility).
class PatternRegistry {
 public:
  using Factory = std::function<std::shared_ptr<Pattern>(const std::vector<PatternArg>&)>;

  /// The process-wide registry with all built-in patterns registered.
  static PatternRegistry& instance();

  /// Registers a factory; throws std::invalid_argument on duplicate names.
  void register_pattern(const std::string& name, Factory factory);
  [[nodiscard]] bool contains(const std::string& name) const { return factories_.count(name) > 0; }
  [[nodiscard]] std::vector<std::string> names() const;

  /// Creates a pattern; throws std::invalid_argument for unknown names or
  /// arity/type mismatches (factories validate their own arguments).
  [[nodiscard]] std::shared_ptr<Pattern> create(const std::string& name,
                                                const std::vector<PatternArg>& args) const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Argument-unpacking helpers shared by pattern factories.
namespace pattern_detail {
[[nodiscard]] std::string arg_string(const std::vector<PatternArg>& args, std::size_t i,
                                     const std::string& pattern);
[[nodiscard]] double arg_number(const std::vector<PatternArg>& args, std::size_t i,
                                const std::string& pattern);
[[nodiscard]] std::string arg_string_or(const std::vector<PatternArg>& args, std::size_t i,
                                        std::string fallback);
[[nodiscard]] double arg_number_or(const std::vector<PatternArg>& args, std::size_t i,
                                   double fallback);
void check_arity(const std::vector<PatternArg>& args, std::size_t min_args,
                 std::size_t max_args, const std::string& pattern);
}  // namespace pattern_detail

}  // namespace archex
