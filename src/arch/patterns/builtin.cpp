/// \file builtin.cpp
/// Registers the built-in Table 1 patterns in the PatternRegistry, which is
/// what the problem-description parser resolves names through. Filter
/// arguments use the "Type", "Type/Subtype", "Type#tag" syntax
/// (NodeFilter::parse); numeric arguments are plain numbers.
#include <memory>

#include "arch/patterns/connection.hpp"
#include "arch/patterns/flow.hpp"
#include "arch/patterns/general.hpp"
#include "arch/patterns/pattern.hpp"
#include "arch/patterns/reliability_patterns.hpp"
#include "arch/patterns/timing.hpp"

namespace archex {

namespace {

using namespace patterns;
using pattern_detail::arg_number;
using pattern_detail::arg_string;
using pattern_detail::arg_string_or;
using pattern_detail::check_arity;

NodeFilter filter_arg(const std::vector<PatternArg>& args, std::size_t i,
                      const std::string& pattern) {
  return NodeFilter::parse(arg_string(args, i, pattern));
}

/// Shared factory for the three (2a) connection-count variants. Accepts
/// (T1, T2, N) plus optional trailing "if_used" / "per_to" flags in any
/// order.
PatternRegistry::Factory n_connections_factory(milp::Sense sense, const char* name) {
  return [sense, name](const std::vector<PatternArg>& args) -> std::shared_ptr<Pattern> {
    check_arity(args, 3, 5, name);
    bool if_used = false;
    CountSide side = CountSide::kFrom;
    for (std::size_t i = 3; i < args.size(); ++i) {
      const std::string flag = arg_string(args, i, name);
      if (flag == "if_used") if_used = true;
      else if (flag == "per_to") side = CountSide::kTo;
      else throw std::invalid_argument(std::string(name) + ": unknown flag '" + flag + "'");
    }
    return std::make_shared<NConnections>(filter_arg(args, 0, name), filter_arg(args, 1, name),
                                          static_cast<int>(arg_number(args, 2, name)), sense,
                                          if_used, side);
  };
}

/// Shared factory for the (T, S', N) count patterns: 2 args = (T, N),
/// 3 args = (T, S, N).
template <typename P>
PatternRegistry::Factory count_factory(const char* name) {
  return [name](const std::vector<PatternArg>& args) -> std::shared_ptr<Pattern> {
    check_arity(args, 2, 3, name);
    NodeFilter f = filter_arg(args, 0, name);
    if (args.size() == 3) {
      f.subtype = arg_string(args, 1, name);
      return std::make_shared<P>(std::move(f), static_cast<int>(arg_number(args, 2, name)));
    }
    return std::make_shared<P>(std::move(f), static_cast<int>(arg_number(args, 1, name)));
  };
}

}  // namespace

void register_builtin_patterns(PatternRegistry& reg) {
  // --- General ---
  reg.register_pattern("at_least_n_components",
                       count_factory<AtLeastNComponents>("at_least_n_components"));
  reg.register_pattern("sinks_connected_to_sources", [](const std::vector<PatternArg>& args) {
    check_arity(args, 2, 2, "sinks_connected_to_sources");
    return std::make_shared<SinksConnectedToSources>(
        filter_arg(args, 0, "sinks_connected_to_sources"),
        filter_arg(args, 1, "sinks_connected_to_sources"));
  });
  reg.register_pattern("at_least_n_paths", [](const std::vector<PatternArg>& args) {
    check_arity(args, 3, 3, "at_least_n_paths");
    return std::make_shared<AtLeastNPaths>(
        filter_arg(args, 0, "at_least_n_paths"), filter_arg(args, 1, "at_least_n_paths"),
        static_cast<int>(arg_number(args, 2, "at_least_n_paths")));
  });

  // --- Connection ---
  reg.register_pattern("at_least_n_connections",
                       n_connections_factory(milp::Sense::GE, "at_least_n_connections"));
  reg.register_pattern("at_most_n_connections",
                       n_connections_factory(milp::Sense::LE, "at_most_n_connections"));
  reg.register_pattern("exactly_n_connections",
                       n_connections_factory(milp::Sense::EQ, "exactly_n_connections"));
  reg.register_pattern("in_conn_implies_out_conn", [](const std::vector<PatternArg>& args) {
    check_arity(args, 3, 3, "in_conn_implies_out_conn");
    return std::make_shared<InConnImpliesOutConn>(
        filter_arg(args, 0, "in_conn_implies_out_conn"),
        filter_arg(args, 1, "in_conn_implies_out_conn"),
        filter_arg(args, 2, "in_conn_implies_out_conn"));
  });
  reg.register_pattern("bidirectional_connection", [](const std::vector<PatternArg>& args) {
    check_arity(args, 2, 2, "bidirectional_connection");
    return std::make_shared<BidirectionalConnection>(
        filter_arg(args, 0, "bidirectional_connection"),
        filter_arg(args, 1, "bidirectional_connection"));
  });
  reg.register_pattern("no_self_loops", [](const std::vector<PatternArg>& args) {
    check_arity(args, 1, 1, "no_self_loops");
    return std::make_shared<NoSelfLoops>(filter_arg(args, 0, "no_self_loops"));
  });
  reg.register_pattern("cannot_connect", [](const std::vector<PatternArg>& args) {
    // Paper form: cannot_connect(T1, S1', T2, S2'); filter form: (F1, F2).
    check_arity(args, 2, 4, "cannot_connect");
    if (args.size() == 4) {
      NodeFilter from = filter_arg(args, 0, "cannot_connect");
      from.subtype = arg_string(args, 1, "cannot_connect");
      NodeFilter to = filter_arg(args, 2, "cannot_connect");
      to.subtype = arg_string(args, 3, "cannot_connect");
      return std::make_shared<CannotConnect>(std::move(from), std::move(to));
    }
    return std::make_shared<CannotConnect>(filter_arg(args, 0, "cannot_connect"),
                                           filter_arg(args, 1, "cannot_connect"));
  });

  // --- Flow ---
  reg.register_pattern("flow_balance", [](const std::vector<PatternArg>& args) {
    check_arity(args, 1, 8, "flow_balance");
    std::vector<std::string> commodities;
    for (std::size_t i = 1; i < args.size(); ++i) {
      commodities.push_back(arg_string(args, i, "flow_balance"));
    }
    return std::make_shared<FlowBalance>(filter_arg(args, 0, "flow_balance"),
                                         std::move(commodities));
  });
  reg.register_pattern("no_overloads", [](const std::vector<PatternArg>& args) {
    check_arity(args, 1, 1, "no_overloads");
    return std::make_shared<NoOverloads>(filter_arg(args, 0, "no_overloads"));
  });
  reg.register_pattern("capacity_limit", [](const std::vector<PatternArg>& args) {
    check_arity(args, 2, 8, "capacity_limit");
    std::vector<std::string> commodities;
    for (std::size_t i = 2; i < args.size(); ++i) {
      commodities.push_back(arg_string(args, i, "capacity_limit"));
    }
    return std::make_shared<CapacityLimit>(filter_arg(args, 0, "capacity_limit"),
                                           arg_string(args, 1, "capacity_limit"),
                                           std::move(commodities));
  });

  // --- Timing ---
  reg.register_pattern("max_cycle_time", [](const std::vector<PatternArg>& args) {
    check_arity(args, 2, 2, "max_cycle_time");
    return std::make_shared<MaxCycleTime>(filter_arg(args, 0, "max_cycle_time"),
                                          arg_number(args, 1, "max_cycle_time"));
  });
  reg.register_pattern("max_total_idle_rate", [](const std::vector<PatternArg>& args) {
    check_arity(args, 2, 2, "max_total_idle_rate");
    return std::make_shared<MaxTotalIdleRate>(filter_arg(args, 0, "max_total_idle_rate"),
                                              arg_number(args, 1, "max_total_idle_rate"));
  });

  // --- Reliability ---
  reg.register_pattern("min_redundant_components",
                       count_factory<MinRedundantComponents>("min_redundant_components"));
  reg.register_pattern(
      "max_failprob_of_connection",
      [](const std::vector<PatternArg>& args) -> std::shared_ptr<Pattern> {
        // 3-arg form: (T1, T2, theta) — redundancy measured at each sink.
        // 4-arg form: (T1, Thub, T2, theta) — hub-level requirement for
        // single-feed sinks (EPN loads behind their DC bus).
        check_arity(args, 3, 4, "max_failprob_of_connection");
        if (args.size() == 4) {
          return std::make_shared<MaxFailprobViaHub>(
              filter_arg(args, 0, "max_failprob_of_connection"),
              filter_arg(args, 1, "max_failprob_of_connection"),
              filter_arg(args, 2, "max_failprob_of_connection"),
              arg_number(args, 3, "max_failprob_of_connection"));
        }
        return std::make_shared<MaxFailprobOfConnection>(
            filter_arg(args, 0, "max_failprob_of_connection"),
            filter_arg(args, 1, "max_failprob_of_connection"),
            arg_number(args, 2, "max_failprob_of_connection"));
      });
}

}  // namespace archex
