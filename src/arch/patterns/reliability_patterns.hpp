/// \file reliability_patterns.hpp
/// Reliability patterns of Table 1, using the redundant-path MILP encoding
/// (after [3]; see DESIGN.md for the substitution rationale).
#pragma once

#include <string>

#include "arch/arch_template.hpp"
#include "arch/patterns/pattern.hpp"

namespace archex::patterns {

/// `min_redundant_components(T, N)`: at least N instantiated components of
/// the given type/subtype — structural redundancy against component loss.
class MinRedundantComponents final : public Pattern {
 public:
  MinRedundantComponents(NodeFilter filter, int n) : filter_(std::move(filter)), n_(n) {}

  [[nodiscard]] std::string name() const override { return "min_redundant_components"; }
  [[nodiscard]] std::string describe() const override {
    return "min_redundant_components(" + filter_.to_string() + ", " + std::to_string(n_) + ")";
  }
  void emit(Problem& p) const override;

 private:
  NodeFilter filter_;
  int n_;
};

/// `max_failprob_of_connection(T1, T2, theta)`: the functional link from
/// nodes matching `from` to every node matching `to` fails with probability
/// at most theta.
///
/// Eager MILP encoding: the threshold is converted into a required number of
/// end-to-end vertex-disjoint paths k(theta) via the estimated path failure
/// probability (Problem::path_fail_prob_estimate, overridable), and
/// translated with the disjoint-path flow encoding. With the paper's EPN
/// numbers (p = 2e-4, 4 failure-prone stages) this yields k = 2 for
/// theta = 1e-5 and k = 3 for theta = 1e-9, matching Fig. 3's progression.
class MaxFailprobOfConnection final : public Pattern {
 public:
  MaxFailprobOfConnection(NodeFilter from, NodeFilter to, double threshold,
                          double path_fail_prob_override = 0.0)
      : from_(std::move(from)), to_(std::move(to)), threshold_(threshold),
        path_fail_prob_(path_fail_prob_override) {}

  [[nodiscard]] std::string name() const override { return "max_failprob_of_connection"; }
  [[nodiscard]] std::string describe() const override;
  void emit(Problem& p) const override;

  /// The k(theta) this instance resolves to on problem `p`.
  [[nodiscard]] int required_paths(const Problem& p) const;

 private:
  NodeFilter from_, to_;
  double threshold_;
  double path_fail_prob_;
};

/// Hub-level variant of max_failprob_of_connection: sinks matching `to`
/// attach to exactly one hub matching `via` (EPN loads to DC buses), and the
/// redundancy requirement applies to the hub *conditionally on serving such
/// a sink*: for every candidate edge (h, s), if e_hs is selected then h must
/// have k(theta) vertex-disjoint source paths. This reflects the paper's
/// functional-link semantics where loads and contactors are perfect and the
/// link is measured up to the serving bus (see DESIGN.md).
class MaxFailprobViaHub final : public Pattern {
 public:
  MaxFailprobViaHub(NodeFilter from, NodeFilter via, NodeFilter to, double threshold,
                    double path_fail_prob_override = 0.0)
      : from_(std::move(from)), via_(std::move(via)), to_(std::move(to)),
        threshold_(threshold), path_fail_prob_(path_fail_prob_override) {}

  [[nodiscard]] std::string name() const override { return "max_failprob_of_connection"; }
  [[nodiscard]] std::string describe() const override;
  void emit(Problem& p) const override;
  [[nodiscard]] int required_paths(const Problem& p) const;

 private:
  NodeFilter from_, via_, to_;
  double threshold_;
  double path_fail_prob_;
};

}  // namespace archex::patterns
