/// \file general.hpp
/// General patterns of Table 1: component counts and redundant paths.
#pragma once

#include <string>
#include <vector>

#include "arch/arch_template.hpp"
#include "arch/patterns/pattern.hpp"
#include "milp/expr.hpp"

namespace archex::patterns {

/// `at_least_n_components(T, S', N)`: at least N instantiated components
/// matching the filter: sum(delta_j) >= N.
class AtLeastNComponents final : public Pattern {
 public:
  AtLeastNComponents(NodeFilter filter, int n) : filter_(std::move(filter)), n_(n) {}

  [[nodiscard]] std::string name() const override { return "at_least_n_components"; }
  [[nodiscard]] std::string describe() const override {
    return "at_least_n_components(" + filter_.to_string() + ", " + std::to_string(n_) + ")";
  }
  void emit(Problem& p) const override;

 private:
  NodeFilter filter_;
  int n_;
};

/// `at_least_n_paths(T1, T2, N)`: for every node t matching `to`, at least N
/// internally vertex-disjoint paths from nodes matching `from` to t must
/// exist in the selected configuration.
///
/// Encoding: one unit-capacity flow commodity per target. Flow variables are
/// continuous — with the edge binaries fixed the flow polytope is integral,
/// so a feasible fractional flow of value N certifies N disjoint paths
/// (Menger). `disjoint_sources` additionally caps each source's contribution
/// at one path (required when sources themselves can fail, as in the EPN).
class AtLeastNPaths final : public Pattern {
 public:
  AtLeastNPaths(NodeFilter from, NodeFilter to, int n, bool disjoint_sources = true)
      : from_(std::move(from)), to_(std::move(to)), n_(n), disjoint_sources_(disjoint_sources) {}

  [[nodiscard]] std::string name() const override { return "at_least_n_paths"; }
  [[nodiscard]] std::string describe() const override {
    return "at_least_n_paths(" + from_.to_string() + ", " + to_.to_string() + ", " +
           std::to_string(n_) + ")";
  }
  void emit(Problem& p) const override;

 private:
  NodeFilter from_, to_;
  int n_;
  bool disjoint_sources_;
};

/// `sinks_connected_to_sources(T1, T2)` (ArchEx-cpp extension): every node
/// matching `sinks` must be reachable from some node matching `sources` in
/// the selected configuration. One shared flow commodity with unit demand
/// per sink — much cheaper than a disjoint-path requirement and the natural
/// base-connectivity requirement of the lazy algorithm's first iteration.
class SinksConnectedToSources final : public Pattern {
 public:
  SinksConnectedToSources(NodeFilter sources, NodeFilter sinks)
      : sources_(std::move(sources)), sinks_(std::move(sinks)) {}

  [[nodiscard]] std::string name() const override { return "sinks_connected_to_sources"; }
  [[nodiscard]] std::string describe() const override {
    return "sinks_connected_to_sources(" + sources_.to_string() + ", " + sinks_.to_string() +
           ")";
  }
  void emit(Problem& p) const override;

 private:
  NodeFilter sources_, sinks_;
};

/// Shared emitter for disjoint-path requirements (used by AtLeastNPaths and
/// the reliability pattern, and directly by the lazy algorithm's learning
/// step). `tag` disambiguates the flow commodity name so repeated or
/// strengthened requirements for the same target do not collide.
void emit_disjoint_paths(Problem& p, const std::vector<NodeId>& sources, NodeId target, int k,
                         bool disjoint_sources, const std::string& tag);

/// Conditional variant: the k-disjoint-path demand at `target` is only
/// enforced when a trigger edge is selected — one row `in - out >= k * e`
/// per trigger. Used for hub-level reliability (the EPN's "if this DC bus
/// serves a critical load, it needs k disjoint generator paths").
void emit_disjoint_paths_conditional(Problem& p, const std::vector<NodeId>& sources,
                                     NodeId target, int k,
                                     const std::vector<milp::VarId>& trigger_edges,
                                     bool disjoint_sources, const std::string& tag);

}  // namespace archex::patterns
