#include "arch/patterns/connection.hpp"

#include "arch/problem.hpp"

namespace archex::patterns {

std::string NConnections::name() const {
  switch (sense_) {
    case milp::Sense::GE: return "at_least_n_connections";
    case milp::Sense::LE: return "at_most_n_connections";
    case milp::Sense::EQ: return "exactly_n_connections";
  }
  return "n_connections";
}

std::string NConnections::describe() const {
  return name() + "(" + from_.to_string() + ", " + to_.to_string() + ", " +
         std::to_string(n_) + (only_if_used_ ? ", if_used" : "") +
         (side_ == CountSide::kTo ? ", per_to" : "") + ")";
}

void NConnections::emit(Problem& p) const {
  const ArchTemplate& t = p.arch_template();
  const bool per_from = side_ == CountSide::kFrom;
  for (NodeId a : t.select(per_from ? from_ : to_)) {
    milp::LinExpr conns = per_from ? p.out_degree(a, to_) : p.in_degree(a, from_);
    const std::string cname = name() + "(" + t.node(a).name + (per_from ? "->" : "<-") +
                              (per_from ? to_ : from_).to_string() + ")";
    if (only_if_used_) {
      // sense over (conns - N * delta_a) vs 0.
      conns.add_term(p.instantiated(a), -static_cast<double>(n_));
      p.model().add_constraint(std::move(conns), sense_, 0.0, cname);
    } else {
      p.model().add_constraint(std::move(conns), sense_, static_cast<double>(n_), cname);
    }
  }
}

std::string InConnImpliesOutConn::describe() const {
  return "in_conn_implies_out_conn(" + in_.to_string() + ", " + mid_.to_string() + ", " +
         out_.to_string() + ")";
}

void InConnImpliesOutConn::emit(Problem& p) const {
  const ArchTemplate& t = p.arch_template();
  for (NodeId b : t.select(mid_)) {
    const milp::LinExpr outgoing = p.out_degree(b, out_);
    // (2b): every single incoming edge implies at least one outgoing edge:
    // e_ab <= sum_c e_bc  for each candidate a matching `in`.
    for (std::int32_t idx : p.edges().in_edges(b)) {
      const AdjacencyMatrix::Edge& e = p.edges().edge(idx);
      if (!in_.matches(t.node(e.from))) continue;
      milp::LinExpr c = milp::LinExpr(e.var) - outgoing;
      p.model().add_constraint(std::move(c), milp::Sense::LE, 0.0,
                               "in_implies_out(" + t.node(e.from).name + "->" +
                                   t.node(b).name + ")");
    }
  }
}

std::string BidirectionalConnection::describe() const {
  return "bidirectional_connection(" + a_.to_string() + ", " + b_.to_string() + ")";
}

void BidirectionalConnection::emit(Problem& p) const {
  const ArchTemplate& t = p.arch_template();
  for (NodeId a : t.select(a_)) {
    for (NodeId b : t.select(b_)) {
      if (a >= b && a_.to_string() == b_.to_string()) continue;  // emit each pair once
      const milp::VarId fwd = p.edges().at(a, b);
      const milp::VarId bwd = p.edges().at(b, a);
      if (!fwd.valid() || !bwd.valid()) continue;
      p.model().add_constraint(milp::LinExpr(fwd) - milp::LinExpr(bwd), milp::Sense::EQ, 0.0,
                               "bidir(" + t.node(a).name + "<->" + t.node(b).name + ")");
    }
  }
}

void NoSelfLoops::emit(Problem& p) const {
  // Self-loop candidates are structurally excluded by ArchTemplate; nothing
  // to emit. Kept as an applied pattern for specification fidelity.
  (void)p;
}

std::string CannotConnect::describe() const {
  return "cannot_connect(" + from_.to_string() + ", " + to_.to_string() + ")";
}

namespace {

/// How a node relates to a forbidden subtype: it can never have it, it
/// always has it (when instantiated), or it depends on the mapping.
enum class SubtypeMatch { kNever, kAlways, kDepends };

SubtypeMatch classify_subtype(const Problem& p, NodeId v, const std::string& subtype) {
  if (subtype.empty()) return SubtypeMatch::kAlways;  // no restriction => any
  bool any = false;
  bool all = true;
  for (const LibraryMapping::Candidate& c : p.mapping().candidates(v)) {
    if (p.library().at(c.lib).subtype == subtype) any = true;
    else all = false;
  }
  if (!any) return SubtypeMatch::kNever;
  return all ? SubtypeMatch::kAlways : SubtypeMatch::kDepends;
}

}  // namespace

void CannotConnect::emit(Problem& p) const {
  const ArchTemplate& t = p.arch_template();
  // Type/tag matching is static; subtype matching follows the *mapping*
  // (an EPN bus becomes HV or LV depending on the chosen component).
  NodeFilter from_static = from_;
  from_static.subtype.clear();
  NodeFilter to_static = to_;
  to_static.subtype.clear();

  for (NodeId a : t.select(from_static)) {
    const SubtypeMatch ma = classify_subtype(p, a, from_.subtype);
    if (ma == SubtypeMatch::kNever) continue;
    for (std::int32_t idx : p.edges().out_edges(a)) {
      const AdjacencyMatrix::Edge& e = p.edges().edge(idx);
      if (!to_static.matches(t.node(e.to))) continue;
      const SubtypeMatch mb = classify_subtype(p, e.to, to_.subtype);
      if (mb == SubtypeMatch::kNever) continue;
      if (ma == SubtypeMatch::kAlways && mb == SubtypeMatch::kAlways) {
        // Unconditionally forbidden: fix the edge variable to zero (presolve
        // then removes it entirely).
        p.model().tighten_bounds(e.var, 0.0, 0.0);
        continue;
      }
      // Conditional: e_ab + [a has S1] + [b has S2] <= 2.
      milp::LinExpr c = milp::LinExpr(e.var);
      double rhs = 2.0;
      if (ma == SubtypeMatch::kAlways) rhs -= 1.0;
      else c += p.subtype_indicator(a, from_.subtype);
      if (mb == SubtypeMatch::kAlways) rhs -= 1.0;
      else c += p.subtype_indicator(e.to, to_.subtype);
      p.model().add_constraint(std::move(c), milp::Sense::LE, rhs,
                               "cannot(" + t.node(a).name + "->" + t.node(e.to).name + ")");
    }
  }
}

}  // namespace archex::patterns
