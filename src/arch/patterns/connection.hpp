/// \file connection.hpp
/// Connection patterns of Table 1: constraints of form (2a)/(2b) and edge
/// restrictions.
#pragma once

#include <string>

#include "arch/arch_template.hpp"
#include "arch/patterns/pattern.hpp"
#include "milp/expr.hpp"

namespace archex::patterns {

/// Which endpoint the per-node count quantifies over.
enum class CountSide {
  kFrom,  ///< per node matching `from`: count its out-edges into `to`
  kTo,    ///< per node matching `to`:   count its in-edges from `from`
};

/// `at_least_n_connections(T1, T2, N)` and its at-most / exactly variants
/// (form (2a)): per quantified node, the number of candidate edges from
/// `from` nodes to `to` nodes is >=, <= or == N.
///
/// With `only_if_used`, the bound becomes N * delta of the quantified node,
/// so optional components are only constrained when instantiated.
class NConnections final : public Pattern {
 public:
  NConnections(NodeFilter from, NodeFilter to, int n, milp::Sense sense,
               bool only_if_used = false, CountSide side = CountSide::kFrom)
      : from_(std::move(from)), to_(std::move(to)), n_(n), sense_(sense),
        only_if_used_(only_if_used), side_(side) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;
  void emit(Problem& p) const override;

 private:
  NodeFilter from_, to_;
  int n_;
  milp::Sense sense_;
  bool only_if_used_;
  CountSide side_;
};

/// `in_conn_implies_out_conn(Tin, T, Tout)` (form (2b)): if a node b
/// matching `mid` has an incoming edge from a node matching `in`, it must
/// have at least one outgoing edge to a node matching `out`.
class InConnImpliesOutConn final : public Pattern {
 public:
  InConnImpliesOutConn(NodeFilter in, NodeFilter mid, NodeFilter out)
      : in_(std::move(in)), mid_(std::move(mid)), out_(std::move(out)) {}

  [[nodiscard]] std::string name() const override { return "in_conn_implies_out_conn"; }
  [[nodiscard]] std::string describe() const override;
  void emit(Problem& p) const override;

 private:
  NodeFilter in_, mid_, out_;
};

/// `bidirectional_connection(T1, T2)`: for every candidate pair (a, b) with
/// both directed edges declared, e_ab == e_ba (the paper's undirected bus
/// ties and junction conveyors).
class BidirectionalConnection final : public Pattern {
 public:
  BidirectionalConnection(NodeFilter a, NodeFilter b) : a_(std::move(a)), b_(std::move(b)) {}

  [[nodiscard]] std::string name() const override { return "bidirectional_connection"; }
  [[nodiscard]] std::string describe() const override;
  void emit(Problem& p) const override;

 private:
  NodeFilter a_, b_;
};

/// `no_self_loops(T)`: e_aa = 0. The template never declares self-loop
/// candidates, so this emits nothing; it exists for specification fidelity
/// (a spec file listing it parses and applies cleanly).
class NoSelfLoops final : public Pattern {
 public:
  explicit NoSelfLoops(NodeFilter t) : t_(std::move(t)) {}

  [[nodiscard]] std::string name() const override { return "no_self_loops"; }
  [[nodiscard]] std::string describe() const override { return "no_self_loops(" + t_.to_string() + ")"; }
  void emit(Problem& p) const override;

 private:
  NodeFilter t_;
};

/// `cannot_connect(T1, S1', T2, S2')`: forbids every edge from nodes
/// matching `from` to nodes matching `to` (e.g. HV components may not feed
/// LV components directly).
class CannotConnect final : public Pattern {
 public:
  CannotConnect(NodeFilter from, NodeFilter to) : from_(std::move(from)), to_(std::move(to)) {}

  [[nodiscard]] std::string name() const override { return "cannot_connect"; }
  [[nodiscard]] std::string describe() const override;
  void emit(Problem& p) const override;

 private:
  NodeFilter from_, to_;
};

}  // namespace archex::patterns
