#include "arch/patterns/pattern.hpp"

#include <sstream>
#include <stdexcept>

namespace archex {

std::string to_string(const PatternArg& a) {
  if (const auto* s = std::get_if<std::string>(&a)) return *s;
  std::ostringstream os;
  os << std::get<double>(a);
  return os.str();
}

void register_builtin_patterns(PatternRegistry& reg);  // defined in builtin.cpp

PatternRegistry& PatternRegistry::instance() {
  static PatternRegistry* reg = [] {
    auto* r = new PatternRegistry;
    register_builtin_patterns(*r);
    return r;
  }();
  return *reg;
}

void PatternRegistry::register_pattern(const std::string& name, Factory factory) {
  if (factories_.count(name) > 0) {
    throw std::invalid_argument("PatternRegistry: duplicate pattern " + name);
  }
  factories_.emplace(name, std::move(factory));
}

std::vector<std::string> PatternRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

std::shared_ptr<Pattern> PatternRegistry::create(const std::string& name,
                                                 const std::vector<PatternArg>& args) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw std::invalid_argument("PatternRegistry: unknown pattern '" + name + "'");
  }
  return it->second(args);
}

namespace pattern_detail {

void check_arity(const std::vector<PatternArg>& args, std::size_t min_args,
                 std::size_t max_args, const std::string& pattern) {
  if (args.size() < min_args || args.size() > max_args) {
    throw std::invalid_argument(pattern + ": expected between " + std::to_string(min_args) +
                                " and " + std::to_string(max_args) + " arguments, got " +
                                std::to_string(args.size()));
  }
}

std::string arg_string(const std::vector<PatternArg>& args, std::size_t i,
                       const std::string& pattern) {
  if (i >= args.size() || !std::holds_alternative<std::string>(args[i])) {
    throw std::invalid_argument(pattern + ": argument " + std::to_string(i + 1) +
                                " must be a string");
  }
  return std::get<std::string>(args[i]);
}

double arg_number(const std::vector<PatternArg>& args, std::size_t i,
                  const std::string& pattern) {
  if (i >= args.size() || !std::holds_alternative<double>(args[i])) {
    throw std::invalid_argument(pattern + ": argument " + std::to_string(i + 1) +
                                " must be a number");
  }
  return std::get<double>(args[i]);
}

std::string arg_string_or(const std::vector<PatternArg>& args, std::size_t i,
                          std::string fallback) {
  if (i >= args.size()) return fallback;
  if (const auto* s = std::get_if<std::string>(&args[i])) return *s;
  return fallback;
}

double arg_number_or(const std::vector<PatternArg>& args, std::size_t i, double fallback) {
  if (i >= args.size()) return fallback;
  if (const auto* d = std::get_if<double>(&args[i])) return *d;
  return fallback;
}

}  // namespace pattern_detail
}  // namespace archex
