/// \file flow.hpp
/// Flow and workload patterns of Table 1: balance equations (4) and
/// overload bounds (5).
#pragma once

#include <string>
#include <vector>

#include "arch/arch_template.hpp"
#include "arch/patterns/pattern.hpp"

namespace archex::patterns {

/// `flow_balance(T, S')`: at every node matching the filter, incoming flow
/// equals outgoing flow, per listed commodity (equation (4), linearized by
/// the commodity's capacity coupling). Empty commodity list = every
/// commodity existing at emit time.
class FlowBalance final : public Pattern {
 public:
  FlowBalance(NodeFilter filter, std::vector<std::string> commodities = {})
      : filter_(std::move(filter)), commodities_(std::move(commodities)) {}

  [[nodiscard]] std::string name() const override { return "flow_balance"; }
  [[nodiscard]] std::string describe() const override {
    return "flow_balance(" + filter_.to_string() + ")";
  }
  void emit(Problem& p) const override;

 private:
  NodeFilter filter_;
  std::vector<std::string> commodities_;
};

/// `no_overloads(T, S')`: at every node matching the filter, the summed
/// incoming flow of each commodity group stays below the node's mapped
/// throughput: sum_in lambda <= mu_j = sum_i m_ij mu_i (equation (5)).
///
/// Each inner vector is one group whose flows are summed (e.g. all products
/// processed simultaneously in one operation mode); each group gets its own
/// bound. Empty groups = one singleton group per existing commodity.
class NoOverloads final : public Pattern {
 public:
  NoOverloads(NodeFilter filter, std::vector<std::vector<std::string>> groups = {})
      : filter_(std::move(filter)), groups_(std::move(groups)) {}

  [[nodiscard]] std::string name() const override { return "no_overloads"; }
  [[nodiscard]] std::string describe() const override {
    return "no_overloads(" + filter_.to_string() + ")";
  }
  void emit(Problem& p) const override;

 private:
  NodeFilter filter_;
  std::vector<std::vector<std::string>> groups_;
};

/// `capacity_limit(T, S', attr, commodities...)` (ArchEx-cpp extension):
/// bounds the summed incoming flow of the listed commodities at every node
/// matching the filter by the node's *mapped* value of an arbitrary
/// capacity attribute: sum_in lambda <= attr_j(m). `no_overloads` is the
/// special case attr = "mu"; the EPN's bus power capacities b (Table 2) use
/// attr = "power". Empty commodity list = every commodity.
class CapacityLimit final : public Pattern {
 public:
  CapacityLimit(NodeFilter filter, std::string attr_key,
                std::vector<std::string> commodities = {})
      : filter_(std::move(filter)), attr_(std::move(attr_key)),
        commodities_(std::move(commodities)) {}

  [[nodiscard]] std::string name() const override { return "capacity_limit"; }
  [[nodiscard]] std::string describe() const override {
    return "capacity_limit(" + filter_.to_string() + ", " + attr_ + ")";
  }
  void emit(Problem& p) const override;

 private:
  NodeFilter filter_;
  std::string attr_;
  std::vector<std::string> commodities_;
};

/// `source_rate(commodity, T, rate)`: every node matching the filter emits
/// exactly `rate` net outgoing flow of the commodity (flow production at
/// sources). Used by domain patterns to pin operation-mode rates.
class SourceRate final : public Pattern {
 public:
  SourceRate(std::string commodity, NodeFilter filter, double rate)
      : commodity_(std::move(commodity)), filter_(std::move(filter)), rate_(rate) {}

  [[nodiscard]] std::string name() const override { return "source_rate"; }
  [[nodiscard]] std::string describe() const override;
  void emit(Problem& p) const override;

 private:
  std::string commodity_;
  NodeFilter filter_;
  double rate_;
};

/// `sink_demand(commodity, T, rate)`: every node matching the filter absorbs
/// exactly `rate` net incoming flow of the commodity.
class SinkDemand final : public Pattern {
 public:
  SinkDemand(std::string commodity, NodeFilter filter, double rate)
      : commodity_(std::move(commodity)), filter_(std::move(filter)), rate_(rate) {}

  [[nodiscard]] std::string name() const override { return "sink_demand"; }
  [[nodiscard]] std::string describe() const override;
  void emit(Problem& p) const override;

 private:
  std::string commodity_;
  NodeFilter filter_;
  double rate_;
};

}  // namespace archex::patterns
