#include "arch/patterns/timing.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "arch/component.hpp"
#include "arch/problem.hpp"
#include "graph/digraph.hpp"

namespace archex::patterns {

namespace {

/// Conservative big-M for delay propagation: no arrival time can exceed the
/// sum over all nodes of their largest candidate delay.
double delay_big_m(const Problem& p) {
  double total = 1.0;
  for (std::size_t j = 0; j < p.arch_template().num_nodes(); ++j) {
    double worst = 0.0;
    for (const LibraryMapping::Candidate& c :
         p.mapping().candidates(static_cast<NodeId>(j))) {
      worst = std::max(worst, p.library().at(c.lib).attr_or(attr::kDelay));
    }
    total += worst;
  }
  return total;
}

}  // namespace

std::string MaxCycleTime::describe() const {
  std::ostringstream os;
  os << "max_cycle_time(" << sinks_.to_string() << ", " << bound_ << ")";
  return os.str();
}

void MaxCycleTime::emit(Problem& p) const {
  if (p.functional_flow().empty()) {
    throw std::logic_error("max_cycle_time: set_functional_flow must be called first");
  }
  if (encoding_ == CycleTimeEncoding::kArrivalTime) emit_arrival(p);
  else emit_paths(p);
}

void MaxCycleTime::emit_arrival(Problem& p) const {
  const ArchTemplate& t = p.arch_template();
  const double big_m = delay_big_m(p);
  const std::vector<NodeId> sources = p.source_nodes();

  // One arrival variable per node (created per pattern instance; multiple
  // instances with different bounds share nothing, which keeps them
  // independent).
  std::vector<milp::VarId> arrival(t.num_nodes());
  for (std::size_t j = 0; j < t.num_nodes(); ++j) {
    arrival[j] = p.model().add_continuous(0.0, big_m,
                                          "arr(" + t.node(static_cast<NodeId>(j)).name + ")");
  }
  for (NodeId s : sources) {
    // a_s == tau_s(m).
    milp::LinExpr c = milp::LinExpr(arrival[static_cast<std::size_t>(s)]);
    c -= p.node_attr(s, attr::kDelay);
    p.model().add_constraint(std::move(c), milp::Sense::EQ, 0.0,
                             "arr_src(" + t.node(s).name + ")");
  }
  for (const AdjacencyMatrix::Edge& e : p.edges().edges()) {
    // a_to >= a_from + tau_to(m) - M (1 - e).
    milp::LinExpr c = milp::LinExpr(arrival[static_cast<std::size_t>(e.to)]);
    c -= milp::LinExpr(arrival[static_cast<std::size_t>(e.from)]);
    c -= p.node_attr(e.to, attr::kDelay);
    c.add_term(e.var, -big_m);
    p.model().add_constraint(std::move(c), milp::Sense::GE, -big_m,
                             "arr(" + t.node(e.from).name + "->" + t.node(e.to).name + ")");
  }
  for (NodeId sink : t.select(sinks_)) {
    p.model().add_constraint(milp::LinExpr(arrival[static_cast<std::size_t>(sink)]),
                             milp::Sense::LE, bound_, "cycle_time(" + t.node(sink).name + ")");
  }
}

void MaxCycleTime::emit_paths(Problem& p) const {
  const ArchTemplate& t = p.arch_template();
  const double big_m = delay_big_m(p) + bound_;
  const std::vector<NodeId> sources = p.source_nodes();

  // Candidate-edge graph for path enumeration.
  graph::Digraph g(t.num_nodes());
  for (const auto& [from, to] : t.candidate_edges()) g.add_edge(from, to);

  for (NodeId sink : t.select(sinks_)) {
    std::size_t count = 0;
    graph::enumerate_paths(
        g, sources, sink,
        [&](const std::vector<NodeId>& path) {
          ++count;
          // sum_{i in pi} tau_i(m) <= N + M * (#edges - sum e): active paths
          // (all edges selected) enforce the bound, inactive paths are free.
          milp::LinExpr c;
          for (NodeId v : path) c += p.node_attr(v, attr::kDelay);
          double rhs = bound_;
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const milp::VarId e = p.edges().at(path[i], path[i + 1]);
            c.add_term(e, big_m);
            rhs += big_m;
          }
          p.model().add_constraint(std::move(c), milp::Sense::LE, rhs,
                                   "cycle_path(" + t.node(sink).name + "#" +
                                       std::to_string(count) + ")");
          return true;
        },
        max_paths_);
    if (count >= max_paths_) {
      throw std::length_error("max_cycle_time: path enumeration exceeded " +
                              std::to_string(max_paths_) +
                              " paths; use the arrival-time encoding");
    }
  }
}

std::string MaxTotalIdleRate::describe() const {
  std::ostringstream os;
  os << "max_total_idle_rate(" << filter_.to_string() << ", " << bound_ << ")";
  return os.str();
}

void MaxTotalIdleRate::emit(Problem& p) const {
  std::vector<std::vector<std::string>> groups = groups_;
  if (groups.empty()) {
    // Group existing commodities by their "<prefix>:" naming convention.
    std::map<std::string, std::vector<std::string>> by_prefix;
    for (const auto& [n, _] : p.flows()) {
      const std::size_t colon = n.find(':');
      by_prefix[colon == std::string::npos ? n : n.substr(0, colon)].push_back(n);
    }
    for (auto& [_, names] : by_prefix) groups.push_back(std::move(names));
  }

  milp::LinExpr total;
  for (NodeId v : p.arch_template().select(filter_)) {
    const milp::LinExpr mu = p.node_attr(v, attr::kThroughput);  // mu_j(m)
    for (const auto& group : groups) {
      total += mu;  // the node's capacity counts once per accounting context
      for (const std::string& cname : group) {
        const FlowCommodity* f = p.find_flow(cname);
        if (f == nullptr) {
          throw std::invalid_argument("max_total_idle_rate: unknown commodity " + cname);
        }
        total -= p.flow_in(*f, v);
      }
    }
  }
  p.model().add_constraint(std::move(total), milp::Sense::LE, bound_,
                           "total_idle(" + filter_.to_string() + ")");
}

}  // namespace archex::patterns
