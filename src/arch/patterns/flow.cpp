#include "arch/patterns/flow.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "arch/component.hpp"
#include "arch/problem.hpp"

namespace archex::patterns {

namespace {

const FlowCommodity& require_flow(Problem& p, const std::string& name,
                                  const std::string& pattern) {
  const FlowCommodity* f = p.find_flow(name);
  if (f == nullptr) {
    throw std::invalid_argument(pattern + ": unknown flow commodity '" + name +
                                "' (apply the pattern creating it first)");
  }
  return *f;
}

std::vector<std::string> all_commodities(const Problem& p) {
  std::vector<std::string> out;
  for (const auto& [name, _] : p.flows()) out.push_back(name);
  return out;
}

}  // namespace

void FlowBalance::emit(Problem& p) const {
  const std::vector<std::string> names =
      commodities_.empty() ? all_commodities(p) : commodities_;
  for (const std::string& cname : names) {
    const FlowCommodity& f = require_flow(p, cname, "flow_balance");
    for (NodeId v : p.arch_template().select(filter_)) {
      milp::LinExpr bal = p.flow_in(f, v);
      bal -= p.flow_out(f, v);
      if (bal.size() == 0) continue;  // node carries no candidate flow
      p.model().add_constraint(std::move(bal), milp::Sense::EQ, 0.0,
                               "flow_balance[" + cname + "](" +
                                   p.arch_template().node(v).name + ")");
    }
  }
}

void NoOverloads::emit(Problem& p) const {
  std::vector<std::vector<std::string>> groups = groups_;
  if (groups.empty()) {
    // Group existing commodities by their "<prefix>:" naming convention, so
    // all products of one operation mode are summed against the throughput.
    std::map<std::string, std::vector<std::string>> by_prefix;
    for (const std::string& c : all_commodities(p)) {
      const std::size_t colon = c.find(':');
      by_prefix[colon == std::string::npos ? c : c.substr(0, colon)].push_back(c);
    }
    for (auto& [_, names] : by_prefix) groups.push_back(std::move(names));
  }
  for (NodeId v : p.arch_template().select(filter_)) {
    // Mapped throughput mu_j = sum_i m_ij mu_i.
    const milp::LinExpr mu = p.node_attr(v, attr::kThroughput);
    for (const auto& group : groups) {
      milp::LinExpr in;
      std::string gname;
      for (const std::string& cname : group) {
        in += p.flow_in(require_flow(p, cname, "no_overloads"), v);
        gname += (gname.empty() ? "" : "+") + cname;
      }
      if (in.size() == 0) continue;
      in -= mu;
      p.model().add_constraint(std::move(in), milp::Sense::LE, 0.0,
                               "no_overload[" + gname + "](" +
                                   p.arch_template().node(v).name + ")");
    }
  }
}

void CapacityLimit::emit(Problem& p) const {
  std::vector<std::string> names = commodities_.empty() ? all_commodities(p) : commodities_;
  for (NodeId v : p.arch_template().select(filter_)) {
    milp::LinExpr in;
    for (const std::string& cname : names) {
      in += p.flow_in(require_flow(p, cname, "capacity_limit"), v);
    }
    if (in.size() == 0) continue;
    in -= p.node_attr(v, attr_);
    p.model().add_constraint(std::move(in), milp::Sense::LE, 0.0,
                             "capacity[" + attr_ + "](" +
                                 p.arch_template().node(v).name + ")");
  }
}

std::string SourceRate::describe() const {
  std::ostringstream os;
  os << "source_rate(" << commodity_ << ", " << filter_.to_string() << ", " << rate_ << ")";
  return os.str();
}

void SourceRate::emit(Problem& p) const {
  const FlowCommodity& f = require_flow(p, commodity_, "source_rate");
  for (NodeId v : p.arch_template().select(filter_)) {
    milp::LinExpr net = p.flow_out(f, v);
    net -= p.flow_in(f, v);
    p.model().add_constraint(std::move(net), milp::Sense::EQ, rate_,
                             "source_rate[" + commodity_ + "](" +
                                 p.arch_template().node(v).name + ")");
  }
}

std::string SinkDemand::describe() const {
  std::ostringstream os;
  os << "sink_demand(" << commodity_ << ", " << filter_.to_string() << ", " << rate_ << ")";
  return os.str();
}

void SinkDemand::emit(Problem& p) const {
  const FlowCommodity& f = require_flow(p, commodity_, "sink_demand");
  for (NodeId v : p.arch_template().select(filter_)) {
    milp::LinExpr net = p.flow_in(f, v);
    net -= p.flow_out(f, v);
    p.model().add_constraint(std::move(net), milp::Sense::EQ, rate_,
                             "sink_demand[" + commodity_ + "](" +
                                 p.arch_template().node(v).name + ")");
  }
}

}  // namespace archex::patterns
