#include "arch/result.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

namespace archex {

std::size_t Architecture::num_used_nodes() const {
  return static_cast<std::size_t>(
      std::count_if(nodes.begin(), nodes.end(), [](const Node& n) { return n.used; }));
}

std::vector<NodeId> Architecture::used_nodes(const NodeFilter& f) const {
  std::vector<NodeId> out;
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    const Node& n = nodes[j];
    if (!n.used) continue;
    NodeSpec spec{n.name, n.type, n.subtype, n.tags};
    if (f.matches(spec)) out.push_back(static_cast<NodeId>(j));
  }
  return out;
}

bool Architecture::has_edge(NodeId from, NodeId to) const {
  return std::find(edges.begin(), edges.end(), std::make_pair(from, to)) != edges.end();
}

graph::Digraph Architecture::to_digraph() const {
  graph::Digraph g(nodes.size());
  for (const auto& [from, to] : edges) g.add_edge(from, to);
  return g;
}

std::vector<double> Architecture::node_fail_probs(const Library& lib) const {
  std::vector<double> p(nodes.size(), 0.0);
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    if (nodes[j].used && nodes[j].impl >= 0) p[j] = lib.at(nodes[j].impl).fail_prob();
  }
  return p;
}

double Architecture::in_flow(const std::string& commodity, NodeId v) const {
  const auto it = flows.find(commodity);
  if (it == flows.end()) return 0.0;
  double total = 0.0;
  for (const FlowEdge& e : it->second) {
    if (e.to == v) total += e.rate;
  }
  return total;
}

std::string Architecture::to_dot() const {
  std::ostringstream os;
  os << "digraph architecture {\n  rankdir=TB;\n  node [shape=box, style=filled];\n";
  // Group nodes of the same type on one rank, mirroring Fig. 2b / Fig. 4.
  std::map<std::string, std::vector<std::size_t>> by_type;
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    if (nodes[j].used) by_type[nodes[j].type].push_back(j);
  }
  for (const auto& [type, ids] : by_type) {
    os << "  { rank=same;";
    for (std::size_t j : ids) os << " \"" << nodes[j].name << "\";";
    os << " }\n";
  }
  for (const Node& n : nodes) {
    if (!n.used) continue;
    const char* color = n.subtype == "HV"   ? "palegreen"
                        : n.subtype == "LV" ? "khaki"
                        : n.subtype == "AB" ? "lightcoral"
                                            : "lightblue";
    os << "  \"" << n.name << "\" [fillcolor=" << color << ", label=\"" << n.name;
    if (!n.impl_name.empty()) os << "\\n" << n.impl_name;
    os << "\"];\n";
  }
  for (const auto& [from, to] : edges) {
    os << "  \"" << nodes[static_cast<std::size_t>(from)].name << "\" -> \""
       << nodes[static_cast<std::size_t>(to)].name << "\";\n";
  }
  os << "}\n";
  return os.str();
}

namespace {

/// Minimal JSON string escaping (names are identifiers, but stay safe).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string Architecture::to_json() const {
  std::ostringstream os;
  os << "{\n  \"cost\": " << cost << ",\n  \"nodes\": [\n";
  bool first = true;
  for (const Node& n : nodes) {
    if (!n.used) continue;
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"" << json_escape(n.name) << "\", \"type\": \""
       << json_escape(n.type) << "\"";
    if (!n.subtype.empty()) os << ", \"subtype\": \"" << json_escape(n.subtype) << "\"";
    os << ", \"impl\": \"" << json_escape(n.impl_name) << "\"}";
  }
  os << "\n  ],\n  \"edges\": [\n";
  first = true;
  for (const auto& [from, to] : edges) {
    if (!first) os << ",\n";
    first = false;
    os << "    [\"" << json_escape(nodes[static_cast<std::size_t>(from)].name) << "\", \""
       << json_escape(nodes[static_cast<std::size_t>(to)].name) << "\"]";
  }
  os << "\n  ],\n  \"flows\": {\n";
  first = true;
  for (const auto& [name, fl] : flows) {
    if (!first) os << ",\n";
    first = false;
    os << "    \"" << json_escape(name) << "\": [";
    for (std::size_t i = 0; i < fl.size(); ++i) {
      if (i) os << ", ";
      os << "[\"" << json_escape(nodes[static_cast<std::size_t>(fl[i].from)].name)
         << "\", \"" << json_escape(nodes[static_cast<std::size_t>(fl[i].to)].name) << "\", "
         << fl[i].rate << "]";
    }
    os << "]";
  }
  os << "\n  }\n}\n";
  return os.str();
}

void Architecture::print(std::ostream& os) const {
  os << "Architecture: " << num_used_nodes() << "/" << nodes.size() << " nodes, "
     << edges.size() << " edges, cost " << cost << "\n";
  std::map<std::string, std::vector<const Node*>> by_type;
  for (const Node& n : nodes) {
    if (n.used) by_type[n.type].push_back(&n);
  }
  for (const auto& [type, list] : by_type) {
    os << "  " << type << ":";
    for (const Node* n : list) {
      os << " " << n->name;
      if (!n->impl_name.empty() && n->impl_name != n->name) os << "=" << n->impl_name;
    }
    os << "\n";
  }
  os << "  edges:";
  for (const auto& [from, to] : edges) {
    os << " " << nodes[static_cast<std::size_t>(from)].name << "->"
       << nodes[static_cast<std::size_t>(to)].name;
  }
  os << "\n";
  for (const auto& [name, fl] : flows) {
    os << "  flow[" << name << "]:";
    for (const FlowEdge& e : fl) {
      os << " " << nodes[static_cast<std::size_t>(e.from)].name << "->"
         << nodes[static_cast<std::size_t>(e.to)].name << ":" << e.rate;
    }
    os << "\n";
  }
}

void ExplorationResult::print_degradation(std::ostream& os) const {
  if (!degraded()) return;
  os << "WARNING: degraded result ("
     << (solution.degraded ? "numerical recovery exhausted"
                           : std::string("stopped: ") +
                                 milp::to_string(solution.status))
     << "): cost " << solution.objective
     << " is feasible but not proven optimal; best bound "
     << solution.best_bound << ", gap "
     << std::abs(solution.objective - solution.best_bound);
  if (solution.degraded_nodes > 0) {
    os << ", " << solution.degraded_nodes << " abandoned subtree(s)";
  }
  os << "\n";
}

std::string ExplorationResult::degradation_json() const {
  // Mirrors serve::Json rendering (serve/json.cpp): sorted keys, %.17g,
  // non-finite -> null. Kept hand-rolled here because arch/ sits below
  // serve/ in the layering — the *schema* is shared, not the code.
  auto num = [](double v) -> std::string {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  };
  std::string out = "{";
  if (has_objective()) out += "\"bound\":" + num(bound()) + ",";
  out += std::string("\"degraded\":") + (degraded() ? "true" : "false");
  if (degraded_nodes() > 0) {
    out += ",\"degraded_nodes\":" + std::to_string(degraded_nodes());
  }
  if (has_objective()) {
    out += ",\"gap\":" + num(gap());
    out += ",\"objective\":" + num(objective());
  }
  out += "}";
  return out;
}

void ExplorationResult::print_timing(std::ostream& os) const {
  std::ostringstream fmt;
  fmt.setf(std::ios::fixed);
  fmt.precision(3);
  auto line = [&](const char* label, double s) {
    fmt.str("");
    fmt.width(0);
    fmt << "  " << label;
    for (std::size_t i = std::string(label).size(); i < 10; ++i) fmt << ' ';
    fmt.width(9);
    fmt << s;
    os << fmt.str() << "s\n";
  };
  os << "timing:\n";
  line("encode", encode_seconds);
  line("formulate", formulation_seconds);
  line("solve", solver_seconds);
  line("extract", extract_seconds);
  const milp::SolvePhases& p = solution.phases;
  fmt.str("");
  fmt << "  solver phases: presolve " << p.presolve << "s, root LP " << p.root_lp
      << "s, heuristic " << p.heuristic << "s, tree " << p.tree << "s, extract "
      << p.extract << "s\n";
  os << fmt.str();
}

}  // namespace archex
