#include "arch/legacy_encoder.hpp"

namespace archex {

LegacyEncoding::LegacyEncoding(const Library& lib, const ArchTemplate& tmpl)
    : lib_(lib), tmpl_(tmpl) {
  const std::size_t n = tmpl.num_nodes();
  cand_.resize(n);
  y_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const NodeSpec& node = tmpl.node(static_cast<NodeId>(j));
    cand_[j] = lib.of_type(node.type, node.subtype);
    for (LibIndex li : cand_[j]) {
      y_[j].push_back(model_.add_binary("y(" + lib.at(li).name + "->" + node.name + ")"));
    }
    // At most one implementation per node.
    if (!y_[j].empty()) {
      milp::LinExpr sum;
      for (milp::VarId v : y_[j]) sum += milp::LinExpr(v);
      model_.add_constraint(std::move(sum), milp::Sense::LE, 1.0,
                            "one_impl(" + node.name + ")");
    }
  }

  // One z block per candidate edge: z_ij^ab, coupled to both endpoints'
  // implementation choices. This is where the quadratic-in-l blowup lives.
  for (const auto& [from, to] : tmpl.candidate_edges()) {
    EdgeBlock blk;
    blk.from = from;
    blk.to = to;
    const auto& ca = cand_[static_cast<std::size_t>(from)];
    const auto& cb = cand_[static_cast<std::size_t>(to)];
    blk.z.resize(ca.size(), std::vector<milp::VarId>(cb.size()));
    for (std::size_t a = 0; a < ca.size(); ++a) {
      for (std::size_t b = 0; b < cb.size(); ++b) {
        const milp::VarId z = model_.add_binary(
            "z(" + tmpl.node(from).name + "." + std::to_string(a) + "->" +
            tmpl.node(to).name + "." + std::to_string(b) + ")");
        blk.z[a][b] = z;
        // z implies both implementation choices.
        model_.add_constraint(milp::LinExpr(z) - milp::LinExpr(y_[static_cast<std::size_t>(from)][a]),
                              milp::Sense::LE, 0.0);
        model_.add_constraint(milp::LinExpr(z) - milp::LinExpr(y_[static_cast<std::size_t>(to)][b]),
                              milp::Sense::LE, 0.0);
      }
    }
    block_of_[{from, to}] = blocks_.size();
    blocks_.push_back(std::move(blk));
  }

  // An implementation choice requires at least one incident z (the legacy
  // analogue of "instantiated iff connected").
  std::vector<milp::LinExpr> incident(n);
  for (const EdgeBlock& blk : blocks_) {
    for (const auto& row : blk.z) {
      for (milp::VarId z : row) {
        incident[static_cast<std::size_t>(blk.from)] += milp::LinExpr(z);
        incident[static_cast<std::size_t>(blk.to)] += milp::LinExpr(z);
      }
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (y_[j].empty()) continue;
    milp::LinExpr ysum;
    for (milp::VarId v : y_[j]) ysum += milp::LinExpr(v);
    if (incident[j].size() == 0) {
      model_.add_constraint(std::move(ysum), milp::Sense::EQ, 0.0);
      continue;
    }
    // y <= sum(z incident); and every incident z <= sum(y) is already implied
    // by the per-z coupling above.
    milp::LinExpr c = ysum - incident[j];
    model_.add_constraint(std::move(c), milp::Sense::LE, 0.0,
                          "impl_needs_edge(" + tmpl.node(static_cast<NodeId>(j)).name + ")");
  }
}

milp::LinExpr LegacyEncoding::edge_expr(NodeId from, NodeId to) const {
  milp::LinExpr e;
  const auto it = block_of_.find({from, to});
  if (it == block_of_.end()) return e;
  for (const auto& row : blocks_[it->second].z) {
    for (milp::VarId z : row) e += milp::LinExpr(z);
  }
  return e;
}

milp::VarId LegacyEncoding::impl_var(NodeId node, LibIndex lib) const {
  const auto& c = cand_[static_cast<std::size_t>(node)];
  for (std::size_t a = 0; a < c.size(); ++a) {
    if (c[a] == lib) return y_[static_cast<std::size_t>(node)][a];
  }
  return {};
}

milp::LinExpr LegacyEncoding::used_expr(NodeId node) const {
  milp::LinExpr e;
  for (milp::VarId v : y_[static_cast<std::size_t>(node)]) e += milp::LinExpr(v);
  return e;
}

void LegacyEncoding::require_connections(const NodeFilter& from, const NodeFilter& to, int n,
                                         milp::Sense sense) {
  for (NodeId a : tmpl_.select(from)) {
    milp::LinExpr total;
    for (NodeId b : tmpl_.select(to)) total += edge_expr(a, b);
    model_.add_constraint(std::move(total), sense, static_cast<double>(n),
                          "legacy_conn(" + tmpl_.node(a).name + ")");
  }
}

void LegacyEncoding::finalize_objective(double edge_cost) {
  milp::LinExpr cost;
  for (std::size_t j = 0; j < cand_.size(); ++j) {
    for (std::size_t a = 0; a < cand_[j].size(); ++a) {
      cost.add_term(y_[j][a], lib_.at(cand_[j][a]).cost());
    }
  }
  for (const EdgeBlock& blk : blocks_) {
    for (const auto& row : blk.z) {
      for (milp::VarId z : row) cost.add_term(z, edge_cost);
    }
  }
  model_.set_objective(std::move(cost), milp::ObjectiveSense::Minimize);
}

}  // namespace archex
