/// \file perf_report.hpp
/// Per-pattern cost attribution: joins the Problem's encode-time charges and
/// row provenance (origin_of_row) with the solve's presolve eliminations and
/// simplex effort, so "which pattern makes this exploration expensive?" has a
/// table for an answer (`epn_explorer --perf-report`).
///
/// Attribution sources, per origin label ("structural", each pattern's
/// describe(), "flow(name)", "symmetry-breaking"):
///   * encode seconds   — Problem::pattern_costs(), measured per application;
///   * rows             — count of model rows with that origin;
///   * presolve removed — of those rows, how many presolve eliminated
///                        (Solution::presolve_removed_rows);
///   * simplex share    — the label's share of *surviving* rows, as a proxy
///                        for its share of simplex effort: pivot work scales
///                        with the rows the basis actually carries, and the
///                        kernel has no per-row counters (and should not —
///                        that would put a counter in ftran's inner loop).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "arch/problem.hpp"
#include "milp/model.hpp"

namespace archex {

/// One origin label's row in the attribution table.
struct PatternCostRow {
  std::string label;
  double encode_seconds = 0.0;
  std::size_t applications = 0;     ///< encode-time charges with this label
  std::size_t rows = 0;             ///< model rows with this origin
  std::size_t presolve_removed = 0; ///< of those, eliminated by presolve
  double simplex_share = 0.0;       ///< share of surviving rows, in [0, 1]
};

/// The full report. `attributed_fraction` is the share of measured encode
/// wall-time carried by rows with a *named* origin — 1.0 unless some encode
/// path bypassed the per-application charging.
struct PerfReport {
  std::vector<PatternCostRow> rows;  ///< sorted by encode_seconds, descending
  double encode_total_seconds = 0.0;
  double attributed_seconds = 0.0;
  double attributed_fraction = 1.0;
  std::size_t model_rows = 0;
  std::size_t surviving_rows = 0;    ///< model rows presolve kept
  std::int64_t simplex_iterations = 0;
  double solve_seconds = 0.0;
};

/// Builds the attribution table for a solved problem. `sol` must come from a
/// solve of `problem`'s model (row indices are matched positionally).
[[nodiscard]] PerfReport build_perf_report(const Problem& problem,
                                           const milp::Solution& sol);

class CompiledModel;

/// Same attribution against the compiled artifact: the CompiledModel carries
/// the pattern costs and row provenance the Problem would have provided, so
/// the report works identically for scenarios solved through the pipeline.
/// Scenario extra_constraints rows (beyond the frozen matrix) attribute to
/// "unattributed".
[[nodiscard]] PerfReport build_perf_report(const CompiledModel& cm,
                                           const milp::Solution& sol);

/// Renders the report as the fixed-width table the CLI prints.
void write_perf_report(std::ostream& os, const PerfReport& report);

}  // namespace archex
