/// \file lp_format.hpp
/// CPLEX-LP-format reader, the counterpart of Model::write_lp.
///
/// Supports the subset of the LP format that the writer emits (which is also
/// the subset CPLEX/YALMIP exports use for models of this shape):
///
///     Minimize            (or Maximize)
///      obj: 2 x + 3 y
///     Subject To
///      c1: x + y <= 10
///      c2: x - 2 y >= -4
///     Bounds
///      0 <= x <= 7
///      -inf <= y <= +inf
///     Binaries
///      b1 b2
///     Generals
///      k
///     End
///
/// Round-tripping write_lp -> parse_lp is tested; the reader also powers the
/// standalone `milp_solve` example so the solver can be used on models
/// produced by other tools.
#pragma once

#include <iosfwd>
#include <string>

#include "milp/model.hpp"

namespace archex::milp {

/// Parses an LP-format model. Throws std::runtime_error with a line-prefixed
/// message on malformed input.
[[nodiscard]] Model parse_lp(std::istream& in);
[[nodiscard]] Model parse_lp_file(const std::string& path);

}  // namespace archex::milp
