/// \file basis_lu.hpp
/// Basis-representation kernels for the bounded-variable revised simplex.
///
/// The simplex loops only ever touch the basis matrix B through four
/// operations: ftran (x := B^-1 x), btran (x := B^-T x), a product-form
/// update after a pivot, and a full refactorization. `BasisRep` narrows the
/// kernel to exactly that surface so the solver can swap representations:
///
///   * `SparseLuBasis` (default) — sparse LU factorization with
///     Markowitz-style pivot selection under threshold partial pivoting,
///     plus an eta file of product-form updates between refactorizations.
///     Work per pivot is proportional to the nonzeros touched, which is what
///     makes 1k-5k row models tractable.
///   * `DenseBasis` — the original explicit dense inverse (Gauss-Jordan
///     refactorization, rank-1 product-form updates). O(m^2) per pivot;
///     kept as the cross-check oracle and for tiny models.
///
/// A sparse-LU kernel can additionally snapshot its factorization into an
/// immutable `FactorState` (shared LU + copied eta file). The parallel
/// branch & bound ships these snapshots with exported bases so that loading
/// a transplanted basis costs an eta replay instead of a refactorization.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace archex::milp {

/// One entry of a sparse column: row (or basis-position) index plus value.
struct ColEntry {
  std::int32_t row;
  double val;
};

/// Which basis kernel a SimplexSolver instantiates (SimplexOptions::kernel).
enum class BasisKernel : std::uint8_t { SparseLu, Dense };

/// Product-form eta file in pooled (flat) storage. Eta k records that basis
/// position `pos[k]` was repivoted on the ftran'd entering column w:
/// `pivot[k]` = w[pos[k]], and the other nonzeros of w (position-indexed)
/// are `ent[start[k] .. start[k+1])`. Appending an eta never allocates per
/// update (amortized growth of the pooled arrays, whose capacity survives
/// refactorizations), and replay walks contiguous memory.
struct EtaFile {
  std::vector<std::int32_t> start{0};  ///< size count()+1
  std::vector<std::int32_t> pos;       ///< repivoted basis position per eta
  std::vector<double> pivot;
  std::vector<double> inv_pivot;       ///< 1/pivot, precomputed (replay multiplies)
  std::vector<ColEntry> ent;           ///< pooled off-pivot entries

  [[nodiscard]] int count() const { return static_cast<int>(pos.size()); }
  [[nodiscard]] std::size_t nnz() const { return ent.size(); }
  void clear() {
    start.assign(1, 0);
    pos.clear();
    pivot.clear();
    inv_pivot.clear();
    ent.clear();
  }
};

/// Sparse LU factors of a basis matrix B (with row and position
/// permutations folded into the pivot order): B = L * U up to permutation.
/// Immutable once built; shared by snapshots across threads.
struct LuData {
  std::size_t m = 0;
  std::vector<std::int32_t> pivot_row;  ///< original row of pivot k
  std::vector<std::int32_t> pivot_pos;  ///< basis position of pivot k
  /// L, column per pivot k (unit diagonal implicit): entries are
  /// (original row, multiplier).
  std::vector<std::int32_t> l_start;  ///< size m+1
  std::vector<ColEntry> l_ent;
  /// U, row per pivot k (diagonal split out): entries are
  /// (basis position, value).
  std::vector<std::int32_t> u_start;  ///< size m+1
  std::vector<ColEntry> u_ent;
  std::vector<double> u_diag;      ///< pivot value per k
  std::vector<double> u_diag_inv;  ///< 1/u_diag, so the solves multiply

  [[nodiscard]] std::size_t nnz() const { return l_ent.size() + u_ent.size() + m; }
};

/// Immutable snapshot of a sparse-LU kernel's factorization state: the
/// (shared, never mutated) LU factors plus a copy of the eta file at export
/// time. Safe to hand across threads; adopting it replays the etas instead
/// of refactorizing.
struct FactorState {
  std::shared_ptr<const LuData> lu;
  EtaFile etas;

  [[nodiscard]] int eta_count() const { return etas.count(); }
};

/// Abstract basis representation. Vectors are dense (length m); sparsity is
/// exploited internally by skipping zeros. "Row-indexed" means indexed by
/// original constraint row, "position-indexed" by basis position (the row of
/// `basic_` the column occupies).
class BasisRep {
 public:
  virtual ~BasisRep() = default;

  /// Rebuilds the factorization of B whose column j is the slice
  /// `col_ent[col_start[basic[j]] .. col_start[basic[j]+1])` of the solver's
  /// compressed column storage. Returns false when the basis is numerically
  /// singular (pivot column max below the same 1e-11 floor as the dense
  /// kernel).
  virtual bool factorize(const std::int32_t* col_start, const ColEntry* col_ent,
                         const std::vector<std::int32_t>& basic) = 0;

  /// x := B^-1 x. Input row-indexed, output position-indexed.
  virtual void ftran(std::vector<double>& x) const = 0;

  /// x := B^-T x. Input position-indexed, output row-indexed.
  virtual void btran(std::vector<double>& x) const = 0;

  /// Product-form update after a pivot at basis position `r`; `w` is the
  /// ftran result of the entering column (position-indexed, w[r] != 0) and
  /// `wnz` lists the positions with w[i] != 0.0 in ascending order (r
  /// included), so kernels touch only the nonzeros.
  virtual void update(const std::vector<double>& w, std::size_t r,
                      const std::vector<std::int32_t>& wnz) = 0;

  /// Advises refactorizing before `refactor_interval` is reached because the
  /// eta file has outgrown the factors (always false for the dense kernel).
  [[nodiscard]] virtual bool fill_heavy() const = 0;

  /// Immutable snapshot of the current factorization for basis transplants;
  /// null when the kernel does not support snapshots (dense).
  [[nodiscard]] virtual std::shared_ptr<const FactorState> snapshot() const = 0;

  /// Adopts a snapshot taken by a same-shaped kernel over the same basis.
  /// Returns false (state unchanged) when unsupported or incompatible; the
  /// caller then falls back to factorize().
  virtual bool adopt(const std::shared_ptr<const FactorState>& state) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Builds a kernel for an m-row basis. `markowitz_tol` and `eta_fill_factor`
/// only affect the sparse kernel (see SimplexOptions).
std::unique_ptr<BasisRep> make_basis_rep(BasisKernel kernel, std::size_t m,
                                         double markowitz_tol,
                                         double eta_fill_factor);

}  // namespace archex::milp
