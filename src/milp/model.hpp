/// \file model.hpp
/// Mixed-integer linear program container.
///
/// A Model owns variables (with bounds, integrality and names), linear
/// constraints, and a linear objective. It is the hand-off point between the
/// ArchEx pattern encoder (which emits constraints) and the solver stack
/// (presolve, simplex, branch & bound).
#pragma once

#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "milp/expr.hpp"
#include "obs/trace.hpp"

namespace archex::milp {

struct Basis;  // milp/warm_start.hpp; Solution carries one opaquely

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class VarType : std::uint8_t { Continuous, Binary, Integer };

[[nodiscard]] const char* to_string(VarType t);

/// Variable metadata stored by the model.
struct Variable {
  double lb = 0.0;
  double ub = kInf;
  VarType type = VarType::Continuous;
  std::string name;

  [[nodiscard]] bool is_integral() const { return type != VarType::Continuous; }
};

enum class ObjectiveSense : std::uint8_t { Minimize, Maximize };

/// Size statistics of a model, used by the benchmarks that reproduce the
/// paper's encoding-size claims (e.g. ">100,000 lines and 20,000 variables"
/// for the monolithic EPN formulation).
struct ModelStats {
  std::size_t num_vars = 0;
  std::size_t num_binary = 0;
  std::size_t num_integer = 0;
  std::size_t num_continuous = 0;
  std::size_t num_constraints = 0;
  std::size_t num_nonzeros = 0;
  /// Lines of the model rendered in LP standard form (one term per line,
  /// as a YALMIP/CPLEX textual export would produce). This is the metric
  /// the paper quotes as "lines" of the generated MILP.
  std::size_t standard_form_lines = 0;
};

/// A mixed integer linear program.
class Model {
 public:
  /// Adds a variable and returns its id. Bounds may be +/-infinity.
  VarId add_var(double lb, double ub, VarType type, std::string name = {});
  VarId add_continuous(double lb, double ub, std::string name = {}) {
    return add_var(lb, ub, VarType::Continuous, std::move(name));
  }
  VarId add_binary(std::string name = {}) {
    return add_var(0.0, 1.0, VarType::Binary, std::move(name));
  }
  VarId add_integer(double lb, double ub, std::string name = {}) {
    return add_var(lb, ub, VarType::Integer, std::move(name));
  }

  /// Adds a constraint and returns its row index.
  std::size_t add_constraint(LinConstraint c);
  std::size_t add_constraint(LinConstraint c, std::string name) {
    c.name = std::move(name);
    return add_constraint(std::move(c));
  }
  std::size_t add_constraint(LinExpr expr, Sense sense, double rhs, std::string name = {}) {
    return add_constraint(LinConstraint(std::move(expr), sense, rhs, std::move(name)));
  }

  void set_objective(LinExpr obj, ObjectiveSense sense = ObjectiveSense::Minimize);

  [[nodiscard]] std::size_t num_vars() const { return vars_.size(); }
  [[nodiscard]] std::size_t num_constraints() const { return constraints_.size(); }
  [[nodiscard]] const Variable& var(VarId v) const {
    return vars_[static_cast<std::size_t>(v.index)];
  }
  [[nodiscard]] Variable& var(VarId v) { return vars_[static_cast<std::size_t>(v.index)]; }
  [[nodiscard]] const std::vector<Variable>& vars() const { return vars_; }
  [[nodiscard]] const std::vector<LinConstraint>& constraints() const { return constraints_; }
  [[nodiscard]] const LinConstraint& constraint(std::size_t i) const { return constraints_[i]; }
  [[nodiscard]] const LinExpr& objective() const { return objective_; }
  [[nodiscard]] ObjectiveSense objective_sense() const { return obj_sense_; }

  /// Tightens the bounds of `v` to the intersection with [lb, ub].
  void tighten_bounds(VarId v, double lb, double ub);

  /// Replaces the right-hand side of row `i`. This is the RHS parameter slot
  /// of the compiled-model pipeline (arch/compiled_model.hpp): scenario
  /// deltas rewrite the RHS of named rows without re-encoding the matrix.
  void set_rhs(std::size_t i, double rhs) { constraints_[i].rhs = rhs; }

  [[nodiscard]] ModelStats stats() const;

  /// True if `x` satisfies all bounds, integrality and constraints.
  [[nodiscard]] bool feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Writes the model in CPLEX LP-like textual format (used by tests and by
  /// the spec-size benchmark).
  void write_lp(std::ostream& os) const;

 private:
  std::vector<Variable> vars_;
  std::vector<LinConstraint> constraints_;
  LinExpr objective_;
  ObjectiveSense obj_sense_ = ObjectiveSense::Minimize;
};

/// Result status of an LP/MILP solve.
enum class SolveStatus : std::uint8_t {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  NodeLimit,
  TimeLimit,
  NumericalError,
};

[[nodiscard]] const char* to_string(SolveStatus s);

/// Why the solve terminated. Unlike SolveStatus (which folds the LP-engine
/// statuses in), this is the explicit MILP termination reason — callers no
/// longer infer it from counters. `milp_solve` maps it to its exit code.
enum class TermReason : std::uint8_t {
  Optimal,       ///< proven optimal (or gap closed within tolerances)
  Infeasible,    ///< proven infeasible
  Unbounded,     ///< LP relaxation unbounded
  NodeLimit,     ///< max_nodes hit
  TimeLimit,     ///< time_limit_s hit
  IterationLimit,///< simplex iteration cap hit (LP-relaxation solves)
  Numerical,     ///< numerical failure
};

[[nodiscard]] const char* to_string(TermReason r);

/// Maps a final SolveStatus to the matching TermReason.
[[nodiscard]] TermReason term_reason_from(SolveStatus s);

/// Wall-clock breakdown of one MILP solve, in seconds. Phases are disjoint;
/// their sum is slightly below `solve_seconds` (glue code between phases).
struct SolvePhases {
  double presolve = 0.0;
  double root_lp = 0.0;
  double heuristic = 0.0;  ///< rounding heuristic + probe dive
  double tree = 0.0;       ///< main tree search (sequential dive or pool)
  double extract = 0.0;    ///< postsolve + solution extraction
};

/// One point of the incumbent trajectory: when (seconds since solve start)
/// the search found an improved feasible solution, and its objective /
/// best-bound snapshot (all in model sense).
struct IncumbentPoint {
  double t = 0.0;
  double objective = 0.0;
  double best_bound = 0.0;
};

/// Solution of an LP/MILP solve.
struct Solution {
  SolveStatus status = SolveStatus::NumericalError;
  /// Objective value in the model's own sense (valid when status==Optimal,
  /// or best incumbent for limit statuses when `has_incumbent`).
  double objective = 0.0;
  std::vector<double> x;
  bool has_incumbent = false;
  /// Best proven bound on the objective (MILP only).
  double best_bound = 0.0;
  /// Search statistics.
  std::int64_t simplex_iterations = 0;
  std::int64_t nodes_explored = 0;
  double solve_seconds = 0.0;
  /// Warm-start path taken per node LP (MILP only): dual-feasible fast dual
  /// solves / dual-repair + primal cleanups / cold fallbacks.
  std::int64_t warm_dual_nodes = 0;
  std::int64_t warm_repair_nodes = 0;
  std::int64_t cold_nodes = 0;
  /// Parallel-search statistics (MILP only). Sequential solves report one
  /// worker and zero steals; `cpu_seconds` sums worker busy time, so
  /// cpu_seconds / solve_seconds approximates the parallel efficiency.
  int threads_used = 1;
  std::vector<std::int64_t> nodes_per_worker;  ///< pool nodes per worker
  std::int64_t steals = 0;  ///< nodes taken from another worker's dive
  double cpu_seconds = 0.0;
  /// Resilience accounting (MILP only). `degraded` is set when at least one
  /// node exhausted the numerical-recovery ladder and its subtree was
  /// abandoned: the abandoned subtree's parent bound was folded into
  /// `best_bound`, so the reported gap stays sound, but an "optimal" status
  /// then means "optimal modulo the abandoned subtrees" — treat the gap, not
  /// the status, as the claim. See docs/solver.md ("Resilience").
  bool degraded = false;
  std::int64_t degraded_nodes = 0;  ///< subtrees abandoned by the ladder
  /// Explicit termination reason (see TermReason); always populated.
  TermReason term_reason = TermReason::Numerical;
  /// Wall-clock phase breakdown (MILP only; zeros for plain LP solves).
  SolvePhases phases;
  /// Time-stamped incumbent improvements, oldest first (model sense). Fed by
  /// the same path as MilpOptions::on_incumbent, so it is populated even
  /// when no callback is installed.
  std::vector<IncumbentPoint> incumbent_trajectory;
  /// Merged structured event trace; empty unless MilpOptions::trace was set.
  obs::Trace trace;
  /// Snapshot of the solve's metrics registry (name -> value; timers expand
  /// to `.seconds` / `.count` / `.max`). Empty for plain LP solves.
  std::map<std::string, double> metrics;
  /// Original-model rows presolve eliminated (sorted ascending; empty when
  /// presolve was off or removed nothing). Indices are in the *caller's* row
  /// space, so arch::Problem can charge eliminations back to the emitting
  /// pattern via origin_of_row (arch/perf_report.hpp).
  std::vector<std::int32_t> presolve_removed_rows;
  /// Root/sequential solver's root-LP basis, exported when
  /// MilpOptions::export_basis was set and the root LP solved to optimality
  /// (null otherwise). The warm-start handle of the sweep pipeline: feed it
  /// back through MilpOptions::warm_hint on the next structurally identical
  /// solve. Immutable and safely shareable across solves.
  std::shared_ptr<const Basis> final_basis;
  /// True when the root LP was warm-started from the caller's
  /// MilpOptions::warm_hint basis (loaded + dual reoptimized) rather than
  /// solved cold — the sweep pipeline's per-scenario warm/cold signal.
  bool warm_started = false;

  [[nodiscard]] bool optimal() const { return status == SolveStatus::Optimal; }
  [[nodiscard]] double value(VarId v) const { return x[static_cast<std::size_t>(v.index)]; }
};

std::ostream& operator<<(std::ostream& os, SolveStatus s);

}  // namespace archex::milp
