#include "milp/presolve.hpp"

#include <algorithm>
#include <cmath>

namespace archex::milp {

namespace {

struct WorkVar {
  double lb, ub;
  bool integral;
};

/// Rounds integer bounds inward; returns false if the domain became empty.
bool round_integer_bounds(WorkVar& v, double tol) {
  if (!v.integral) return v.lb <= v.ub + tol;
  if (v.lb > -kInf) v.lb = std::ceil(v.lb - tol);
  if (v.ub < kInf) v.ub = std::floor(v.ub + tol);
  return v.lb <= v.ub + tol;
}

}  // namespace

std::vector<double> PresolveResult::postsolve(const std::vector<double>& reduced_x) const {
  std::vector<double> x(fixed.size(), 0.0);
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    if (fixed[i]) x[i] = fixed_value[i];
  }
  for (std::size_t j = 0; j < orig_of_reduced.size(); ++j) {
    x[static_cast<std::size_t>(orig_of_reduced[j])] = reduced_x[j];
  }
  return x;
}

PresolveResult presolve(const Model& model, PresolveOptions opt) {
  const double tol = opt.tol;
  const std::size_t n = model.num_vars();
  const std::size_t m = model.num_constraints();

  PresolveResult res;
  res.fixed.assign(n, false);
  res.fixed_value.assign(n, 0.0);

  std::vector<WorkVar> vars(n);
  for (std::size_t j = 0; j < n; ++j) {
    const Variable& v = model.vars()[j];
    vars[j] = {v.lb, v.ub, v.is_integral()};
    if (!round_integer_bounds(vars[j], tol)) {
      res.infeasible = true;
      return res;
    }
  }
  std::vector<bool> row_dead(m, false);

  // Fixpoint loop over cheap reductions.
  for (int pass = 0; pass < opt.max_passes; ++pass) {
    bool changed = false;

    for (std::size_t i = 0; i < m; ++i) {
      if (row_dead[i]) continue;
      const LinConstraint& c = model.constraint(i);

      // Row activity bounds over *live* terms (fixed vars contribute their
      // value to the effective rhs).
      double rhs = c.rhs;
      double act_min = 0.0, act_max = 0.0;
      std::size_t live = 0;
      const Term* single = nullptr;
      for (const Term& t : c.expr.terms()) {
        const std::size_t j = static_cast<std::size_t>(t.var.index);
        if (res.fixed[j]) {
          rhs -= t.coef * res.fixed_value[j];
          continue;
        }
        ++live;
        single = &t;
        const WorkVar& v = vars[j];
        if (t.coef > 0) {
          act_min += (v.lb > -kInf) ? t.coef * v.lb : -kInf;
          act_max += (v.ub < kInf) ? t.coef * v.ub : kInf;
        } else {
          act_min += (v.ub < kInf) ? t.coef * v.ub : -kInf;
          act_max += (v.lb > -kInf) ? t.coef * v.lb : kInf;
        }
      }

      // Empty row: either trivially true or infeasible.
      if (live == 0) {
        const bool ok = (c.sense == Sense::LE && 0.0 <= rhs + tol) ||
                        (c.sense == Sense::GE && 0.0 >= rhs - tol) ||
                        (c.sense == Sense::EQ && std::abs(rhs) <= tol);
        if (!ok) {
          res.infeasible = true;
          return res;
        }
        row_dead[i] = true;
        ++res.rows_removed;
        changed = true;
        continue;
      }

      // Infeasibility by activity.
      if ((c.sense != Sense::GE && act_min > rhs + tol) ||
          (c.sense != Sense::LE && act_max < rhs - tol)) {
        res.infeasible = true;
        return res;
      }

      // Redundant row removal.
      const bool le_redundant = (c.sense == Sense::LE && act_max <= rhs + tol);
      const bool ge_redundant = (c.sense == Sense::GE && act_min >= rhs - tol);
      if (le_redundant || ge_redundant) {
        row_dead[i] = true;
        ++res.rows_removed;
        changed = true;
        continue;
      }

      // Singleton row => bound on the single live variable.
      if (live == 1) {
        const std::size_t j = static_cast<std::size_t>(single->var.index);
        WorkVar& v = vars[j];
        const double bound = rhs / single->coef;
        const bool coef_pos = single->coef > 0;
        if (c.sense == Sense::EQ) {
          v.lb = std::max(v.lb, bound);
          v.ub = std::min(v.ub, bound);
        } else {
          const bool upper = (c.sense == Sense::LE) == coef_pos;
          if (upper) v.ub = std::min(v.ub, bound);
          else v.lb = std::max(v.lb, bound);
        }
        if (!round_integer_bounds(v, tol) || v.lb > v.ub + tol) {
          res.infeasible = true;
          return res;
        }
        row_dead[i] = true;
        ++res.rows_removed;
        ++res.bounds_tightened;
        changed = true;
        continue;
      }

      // Bound propagation: for each live var, the residual activity of the
      // others implies a bound.
      if (c.sense != Sense::GE && act_min > -kInf) {
        for (const Term& t : c.expr.terms()) {
          const std::size_t j = static_cast<std::size_t>(t.var.index);
          if (res.fixed[j]) continue;
          WorkVar& v = vars[j];
          const double self_min = (t.coef > 0) ? t.coef * v.lb : t.coef * v.ub;
          if (!std::isfinite(self_min)) continue;
          const double others = act_min - self_min;
          // t.coef * x_j <= rhs - others
          const double room = rhs - others;
          if (t.coef > 0) {
            const double nb = room / t.coef;
            if (nb < v.ub - tol) { v.ub = nb; changed = true; ++res.bounds_tightened; }
          } else {
            const double nb = room / t.coef;
            if (nb > v.lb + tol) { v.lb = nb; changed = true; ++res.bounds_tightened; }
          }
          if (!round_integer_bounds(v, tol)) {
            res.infeasible = true;
            return res;
          }
        }
      }
      if (c.sense != Sense::LE && act_max < kInf) {
        for (const Term& t : c.expr.terms()) {
          const std::size_t j = static_cast<std::size_t>(t.var.index);
          if (res.fixed[j]) continue;
          WorkVar& v = vars[j];
          const double self_max = (t.coef > 0) ? t.coef * v.ub : t.coef * v.lb;
          if (!std::isfinite(self_max)) continue;
          const double others = act_max - self_max;
          // t.coef * x_j >= rhs - others
          const double room = rhs - others;
          if (t.coef > 0) {
            const double nb = room / t.coef;
            if (nb > v.lb + tol) { v.lb = nb; changed = true; ++res.bounds_tightened; }
          } else {
            const double nb = room / t.coef;
            if (nb < v.ub - tol) { v.ub = nb; changed = true; ++res.bounds_tightened; }
          }
          if (!round_integer_bounds(v, tol)) {
            res.infeasible = true;
            return res;
          }
        }
      }
    }

    // Fix variables whose domain collapsed.
    for (std::size_t j = 0; j < n; ++j) {
      if (res.fixed[j]) continue;
      if (vars[j].lb > vars[j].ub + tol) {
        res.infeasible = true;
        return res;
      }
      if (vars[j].ub - vars[j].lb <= tol && vars[j].lb > -kInf) {
        res.fixed[j] = true;
        res.fixed_value[j] =
            vars[j].integral ? std::round(vars[j].lb) : 0.5 * (vars[j].lb + vars[j].ub);
        ++res.vars_fixed;
        changed = true;
      }
    }

    if (!changed) break;
  }

  // Build the reduced model.
  std::vector<std::int32_t> new_index(n, -1);
  for (std::size_t j = 0; j < n; ++j) {
    if (res.fixed[j]) continue;
    const Variable& v = model.vars()[j];
    const VarId id = res.reduced.add_var(vars[j].lb, vars[j].ub, v.type, v.name);
    new_index[j] = id.index;
    res.orig_of_reduced.push_back(static_cast<std::int32_t>(j));
  }

  for (std::size_t i = 0; i < m; ++i) {
    if (row_dead[i]) continue;
    const LinConstraint& c = model.constraint(i);
    LinExpr e;
    double rhs = c.rhs;
    for (const Term& t : c.expr.terms()) {
      const std::size_t j = static_cast<std::size_t>(t.var.index);
      if (res.fixed[j]) {
        rhs -= t.coef * res.fixed_value[j];
      } else {
        e.add_term(VarId{new_index[j]}, t.coef);
      }
    }
    if (e.is_constant()) {
      // Became empty after substitution: verify it holds before dropping.
      const bool ok = (c.sense == Sense::LE && 0.0 <= rhs + opt.tol) ||
                      (c.sense == Sense::GE && 0.0 >= rhs - opt.tol) ||
                      (c.sense == Sense::EQ && std::abs(rhs) <= opt.tol);
      if (!ok) {
        res.infeasible = true;
        return res;
      }
      row_dead[i] = true;  // dropped, though not counted in rows_removed
      continue;
    }
    res.reduced.add_constraint(std::move(e), c.sense, rhs, c.name);
  }

  for (std::size_t i = 0; i < m; ++i) {
    if (row_dead[i]) res.removed_rows.push_back(static_cast<std::int32_t>(i));
  }

  LinExpr obj;
  double obj_const = model.objective().constant();
  for (const Term& t : model.objective().terms()) {
    const std::size_t j = static_cast<std::size_t>(t.var.index);
    if (res.fixed[j]) {
      obj_const += t.coef * res.fixed_value[j];
    } else {
      obj.add_term(VarId{new_index[j]}, t.coef);
    }
  }
  obj += obj_const;
  res.reduced.set_objective(std::move(obj), model.objective_sense());
  return res;
}

}  // namespace archex::milp
