#include "milp/presolve.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace archex::milp {

namespace {

struct WorkVar {
  double lb, ub;
  bool integral;
};

/// Rounds integer bounds inward; returns false if the domain became empty.
bool round_integer_bounds(WorkVar& v, double tol) {
  if (!v.integral) return v.lb <= v.ub + tol;
  if (v.lb > -kInf) v.lb = std::ceil(v.lb - tol);
  if (v.ub < kInf) v.ub = std::floor(v.ub + tol);
  return v.lb <= v.ub + tol;
}

/// Activity bound of one row side with infinite contributions counted
/// separately, so a single unbounded column still allows propagation onto
/// that column (the residual of the others is finite).
struct SideBound {
  double finite_sum = 0.0;  ///< sum of the finite contributions
  int num_inf = 0;          ///< contributions at +/-infinity

  [[nodiscard]] double total(double inf_sign) const {
    return num_inf > 0 ? inf_sign * kInf : finite_sum;
  }
};

}  // namespace

Propagation propagate_bounds(const Model& model, const PropagateOptions& opt,
                             const std::vector<char>* row_mask) {
  const double tol = opt.tol;
  const std::size_t n = model.num_vars();
  const std::size_t m = model.num_constraints();

  Propagation res;
  res.lb.resize(n);
  res.ub.resize(n);
  std::vector<char> integral(n);
  std::vector<char> fixed_on_entry(n);
  for (std::size_t j = 0; j < n; ++j) {
    const Variable& v = model.vars()[j];
    res.lb[j] = v.lb;
    res.ub[j] = v.ub;
    integral[j] = v.is_integral() ? 1 : 0;
    fixed_on_entry[j] = (v.ub - v.lb <= tol) ? 1 : 0;
    if (integral[j] != 0) {
      // Round the starting box inward; an emptied integer domain is already
      // a static infeasibility proof.
      if (res.lb[j] > -kInf) res.lb[j] = std::ceil(res.lb[j] - tol);
      if (res.ub[j] < kInf) res.ub[j] = std::floor(res.ub[j] + tol);
    }
    if (res.lb[j] > res.ub[j] + tol) {
      res.infeasible = true;
      res.infeasible_col = static_cast<std::int32_t>(j);
      return res;
    }
  }

  // One tightening of column j implied by row i; returns false on an emptied
  // domain. Improvements below the relative tolerance are rejected so cyclic
  // chains cannot produce unbounded numbers of epsilon steps.
  auto tighten = [&](std::size_t j, std::int32_t row, double new_lb, double new_ub,
                     bool* changed) -> bool {
    const double old_lb = res.lb[j];
    const double old_ub = res.ub[j];
    double lb = std::max(old_lb, new_lb);
    double ub = std::min(old_ub, new_ub);
    if (integral[j] != 0) {
      if (lb > -kInf) lb = std::ceil(lb - tol);
      if (ub < kInf) ub = std::floor(ub + tol);
    }
    // Infinite old bounds need a special case: tol * (1 + inf) is inf and
    // inf - inf is NaN, which would silently reject every finite improvement
    // onto a previously unbounded column.
    const bool lb_improved = old_lb == -kInf
                                 ? lb > -kInf
                                 : lb > old_lb + tol * (1.0 + std::abs(old_lb));
    const bool ub_improved = old_ub == kInf
                                 ? ub < kInf
                                 : ub < old_ub - tol * (1.0 + std::abs(old_ub));
    if (!lb_improved && !ub_improved) return true;
    res.lb[j] = lb_improved ? lb : old_lb;
    res.ub[j] = ub_improved ? ub : old_ub;
    ++res.bounds_tightened;
    *changed = true;
    if (opt.record_changes && res.changes.size() < opt.max_changes) {
      res.changes.push_back({static_cast<std::int32_t>(j), row, old_lb, old_ub,
                             res.lb[j], res.ub[j]});
    }
    if (res.lb[j] > res.ub[j] + tol) {
      res.infeasible = true;
      res.infeasible_col = static_cast<std::int32_t>(j);
      res.infeasible_row = row;
      return false;
    }
    return true;
  };

  for (res.passes = 0; res.passes < opt.max_passes; ++res.passes) {
    bool changed = false;
    for (std::size_t i = 0; i < m; ++i) {
      if (row_mask != nullptr && (*row_mask)[i] == 0) continue;
      const LinConstraint& c = model.constraint(i);
      const auto row = static_cast<std::int32_t>(i);
      const double rtol = tol * (1.0 + std::abs(c.rhs));

      // Empty rows carry no propagation; an unsatisfiable constant row is a
      // static infeasibility proof of its own.
      if (c.expr.terms().empty()) {
        const bool ok = (c.sense == Sense::LE && 0.0 <= c.rhs + rtol) ||
                        (c.sense == Sense::GE && 0.0 >= c.rhs - rtol) ||
                        (c.sense == Sense::EQ && std::abs(c.rhs) <= rtol);
        if (!ok) {
          res.infeasible = true;
          res.infeasible_row = row;
          return res;
        }
        continue;
      }

      SideBound lo, hi;  // inf/sup of the row activity over the current box
      for (const Term& t : c.expr.terms()) {
        const std::size_t j = static_cast<std::size_t>(t.var.index);
        const double at_min = t.coef > 0 ? t.coef * res.lb[j] : t.coef * res.ub[j];
        const double at_max = t.coef > 0 ? t.coef * res.ub[j] : t.coef * res.lb[j];
        if (std::isfinite(at_min)) lo.finite_sum += at_min; else ++lo.num_inf;
        if (std::isfinite(at_max)) hi.finite_sum += at_max; else ++hi.num_inf;
      }

      // Infeasibility by activity interval.
      if (c.sense != Sense::GE && lo.total(-1.0) > c.rhs + rtol) {
        res.infeasible = true;
        res.infeasible_row = row;
        return res;
      }
      if (c.sense != Sense::LE && hi.total(+1.0) < c.rhs - rtol) {
        res.infeasible = true;
        res.infeasible_row = row;
        return res;
      }

      // Propagate onto each column: the residual activity of the others
      // implies a bound. With more than one infinite contribution on the
      // relevant side nothing can be said; with exactly one, only the column
      // contributing it receives a bound.
      for (const Term& t : c.expr.terms()) {
        const std::size_t j = static_cast<std::size_t>(t.var.index);
        if (c.sense != Sense::GE) {  // a.x <= rhs side
          const double at_min = t.coef > 0 ? t.coef * res.lb[j] : t.coef * res.ub[j];
          const bool self_inf = !std::isfinite(at_min);
          if (lo.num_inf == (self_inf ? 1 : 0)) {
            const double others = lo.finite_sum - (self_inf ? 0.0 : at_min);
            const double room = c.rhs - others;  // t.coef * x_j <= room
            const double b = room / t.coef;
            if (t.coef > 0) {
              if (!tighten(j, row, -kInf, b, &changed)) return res;
            } else {
              if (!tighten(j, row, b, kInf, &changed)) return res;
            }
          }
        }
        if (c.sense != Sense::LE) {  // a.x >= rhs side
          const double at_max = t.coef > 0 ? t.coef * res.ub[j] : t.coef * res.lb[j];
          const bool self_inf = !std::isfinite(at_max);
          if (hi.num_inf == (self_inf ? 1 : 0)) {
            const double others = hi.finite_sum - (self_inf ? 0.0 : at_max);
            const double room = c.rhs - others;  // t.coef * x_j >= room
            const double b = room / t.coef;
            if (t.coef > 0) {
              if (!tighten(j, row, b, kInf, &changed)) return res;
            } else {
              if (!tighten(j, row, -kInf, b, &changed)) return res;
            }
          }
        }
      }
    }
    if (!changed) {
      res.converged = true;
      break;
    }
  }

  for (std::size_t j = 0; j < n; ++j) {
    if (fixed_on_entry[j] == 0 && res.ub[j] - res.lb[j] <= tol && res.lb[j] > -kInf) {
      ++res.vars_fixed;
    }
  }
  return res;
}

std::vector<double> PresolveResult::postsolve(const std::vector<double>& reduced_x) const {
  std::vector<double> x(fixed.size(), 0.0);
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    if (fixed[i]) x[i] = fixed_value[i];
  }
  for (std::size_t j = 0; j < orig_of_reduced.size(); ++j) {
    x[static_cast<std::size_t>(orig_of_reduced[j])] = reduced_x[j];
  }
  return x;
}

PresolveResult presolve(const Model& model, PresolveOptions opt) {
  const double tol = opt.tol;
  const std::size_t n = model.num_vars();
  const std::size_t m = model.num_constraints();

  PresolveResult res;
  res.fixed.assign(n, false);
  res.fixed_value.assign(n, 0.0);

  std::vector<WorkVar> vars(n);
  for (std::size_t j = 0; j < n; ++j) {
    const Variable& v = model.vars()[j];
    vars[j] = {v.lb, v.ub, v.is_integral()};
    if (!round_integer_bounds(vars[j], tol)) {
      res.infeasible = true;
      return res;
    }
  }

  // Strengthen step: run the standalone bound-propagation fixpoint first.
  // It handles rows with one unbounded activity side (which the reduction
  // loop below skips) and gives the reduction loop a tighter starting box.
  if (opt.strengthen) {
    PropagateOptions popt;
    popt.tol = tol;
    const Propagation prop = propagate_bounds(model, popt);
    if (prop.infeasible) {
      res.infeasible = true;
      return res;
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (prop.lb[j] > vars[j].lb) vars[j].lb = prop.lb[j];
      if (prop.ub[j] < vars[j].ub) vars[j].ub = prop.ub[j];
    }
    res.strengthen_tightened = prop.bounds_tightened;
    res.strengthen_fixed = prop.vars_fixed;
  }

  std::vector<bool> row_dead(m, false);

  // Fixpoint loop over cheap reductions.
  for (int pass = 0; pass < opt.max_passes; ++pass) {
    bool changed = false;

    for (std::size_t i = 0; i < m; ++i) {
      if (row_dead[i]) continue;
      const LinConstraint& c = model.constraint(i);

      // Row activity bounds over *live* terms (fixed vars contribute their
      // value to the effective rhs).
      double rhs = c.rhs;
      double act_min = 0.0, act_max = 0.0;
      std::size_t live = 0;
      const Term* single = nullptr;
      for (const Term& t : c.expr.terms()) {
        const std::size_t j = static_cast<std::size_t>(t.var.index);
        if (res.fixed[j]) {
          rhs -= t.coef * res.fixed_value[j];
          continue;
        }
        ++live;
        single = &t;
        const WorkVar& v = vars[j];
        if (t.coef > 0) {
          act_min += (v.lb > -kInf) ? t.coef * v.lb : -kInf;
          act_max += (v.ub < kInf) ? t.coef * v.ub : kInf;
        } else {
          act_min += (v.ub < kInf) ? t.coef * v.ub : -kInf;
          act_max += (v.lb > -kInf) ? t.coef * v.lb : kInf;
        }
      }

      // Empty row: either trivially true or infeasible.
      if (live == 0) {
        const bool ok = (c.sense == Sense::LE && 0.0 <= rhs + tol) ||
                        (c.sense == Sense::GE && 0.0 >= rhs - tol) ||
                        (c.sense == Sense::EQ && std::abs(rhs) <= tol);
        if (!ok) {
          res.infeasible = true;
          return res;
        }
        row_dead[i] = true;
        ++res.rows_removed;
        changed = true;
        continue;
      }

      // Infeasibility by activity.
      if ((c.sense != Sense::GE && act_min > rhs + tol) ||
          (c.sense != Sense::LE && act_max < rhs - tol)) {
        res.infeasible = true;
        return res;
      }

      // Redundant row removal.
      const bool le_redundant = (c.sense == Sense::LE && act_max <= rhs + tol);
      const bool ge_redundant = (c.sense == Sense::GE && act_min >= rhs - tol);
      if (le_redundant || ge_redundant) {
        row_dead[i] = true;
        ++res.rows_removed;
        changed = true;
        continue;
      }

      // Singleton row => bound on the single live variable.
      if (live == 1) {
        const std::size_t j = static_cast<std::size_t>(single->var.index);
        WorkVar& v = vars[j];
        const double bound = rhs / single->coef;
        const bool coef_pos = single->coef > 0;
        if (c.sense == Sense::EQ) {
          v.lb = std::max(v.lb, bound);
          v.ub = std::min(v.ub, bound);
        } else {
          const bool upper = (c.sense == Sense::LE) == coef_pos;
          if (upper) v.ub = std::min(v.ub, bound);
          else v.lb = std::max(v.lb, bound);
        }
        if (!round_integer_bounds(v, tol) || v.lb > v.ub + tol) {
          res.infeasible = true;
          return res;
        }
        row_dead[i] = true;
        ++res.rows_removed;
        ++res.bounds_tightened;
        changed = true;
        continue;
      }

      // Bound propagation: for each live var, the residual activity of the
      // others implies a bound.
      if (c.sense != Sense::GE && act_min > -kInf) {
        for (const Term& t : c.expr.terms()) {
          const std::size_t j = static_cast<std::size_t>(t.var.index);
          if (res.fixed[j]) continue;
          WorkVar& v = vars[j];
          const double self_min = (t.coef > 0) ? t.coef * v.lb : t.coef * v.ub;
          if (!std::isfinite(self_min)) continue;
          const double others = act_min - self_min;
          // t.coef * x_j <= rhs - others
          const double room = rhs - others;
          if (t.coef > 0) {
            const double nb = room / t.coef;
            if (nb < v.ub - tol) { v.ub = nb; changed = true; ++res.bounds_tightened; }
          } else {
            const double nb = room / t.coef;
            if (nb > v.lb + tol) { v.lb = nb; changed = true; ++res.bounds_tightened; }
          }
          if (!round_integer_bounds(v, tol)) {
            res.infeasible = true;
            return res;
          }
        }
      }
      if (c.sense != Sense::LE && act_max < kInf) {
        for (const Term& t : c.expr.terms()) {
          const std::size_t j = static_cast<std::size_t>(t.var.index);
          if (res.fixed[j]) continue;
          WorkVar& v = vars[j];
          const double self_max = (t.coef > 0) ? t.coef * v.ub : t.coef * v.lb;
          if (!std::isfinite(self_max)) continue;
          const double others = act_max - self_max;
          // t.coef * x_j >= rhs - others
          const double room = rhs - others;
          if (t.coef > 0) {
            const double nb = room / t.coef;
            if (nb > v.lb + tol) { v.lb = nb; changed = true; ++res.bounds_tightened; }
          } else {
            const double nb = room / t.coef;
            if (nb < v.ub - tol) { v.ub = nb; changed = true; ++res.bounds_tightened; }
          }
          if (!round_integer_bounds(v, tol)) {
            res.infeasible = true;
            return res;
          }
        }
      }
    }

    // Fix variables whose domain collapsed.
    for (std::size_t j = 0; j < n; ++j) {
      if (res.fixed[j]) continue;
      if (vars[j].lb > vars[j].ub + tol) {
        res.infeasible = true;
        return res;
      }
      if (vars[j].ub - vars[j].lb <= tol && vars[j].lb > -kInf) {
        res.fixed[j] = true;
        res.fixed_value[j] =
            vars[j].integral ? std::round(vars[j].lb) : 0.5 * (vars[j].lb + vars[j].ub);
        ++res.vars_fixed;
        changed = true;
      }
    }

    if (!changed) break;
  }

  // Build the reduced model.
  std::vector<std::int32_t> new_index(n, -1);
  for (std::size_t j = 0; j < n; ++j) {
    if (res.fixed[j]) continue;
    const Variable& v = model.vars()[j];
    const VarId id = res.reduced.add_var(vars[j].lb, vars[j].ub, v.type, v.name);
    new_index[j] = id.index;
    res.orig_of_reduced.push_back(static_cast<std::int32_t>(j));
  }

  for (std::size_t i = 0; i < m; ++i) {
    if (row_dead[i]) continue;
    const LinConstraint& c = model.constraint(i);
    LinExpr e;
    double rhs = c.rhs;
    for (const Term& t : c.expr.terms()) {
      const std::size_t j = static_cast<std::size_t>(t.var.index);
      if (res.fixed[j]) {
        rhs -= t.coef * res.fixed_value[j];
      } else {
        e.add_term(VarId{new_index[j]}, t.coef);
      }
    }
    if (e.is_constant()) {
      // Became empty after substitution: verify it holds before dropping.
      const bool ok = (c.sense == Sense::LE && 0.0 <= rhs + opt.tol) ||
                      (c.sense == Sense::GE && 0.0 >= rhs - opt.tol) ||
                      (c.sense == Sense::EQ && std::abs(rhs) <= opt.tol);
      if (!ok) {
        res.infeasible = true;
        return res;
      }
      row_dead[i] = true;  // dropped, though not counted in rows_removed
      continue;
    }
    // Strengthen: a row over integer columns with integral coefficients can
    // only take activity values that are multiples of the coefficient GCD,
    // so the rhs rounds to the nearest reachable multiple (<=: down, >=: up;
    // an EQ rhs off the lattice is infeasible).
    if (opt.strengthen) {
      std::int64_t g = 0;
      bool integral_row = true;
      for (const Term& t : e.terms()) {
        const std::size_t rj = static_cast<std::size_t>(t.var.index);
        const double a = std::abs(t.coef);
        const double ra = std::round(a);
        if (res.reduced.vars()[rj].type == VarType::Continuous || a > 1e15 ||
            std::abs(a - ra) > opt.tol * (1.0 + a) || ra < 1.0) {
          integral_row = false;
          break;
        }
        g = std::gcd(g, static_cast<std::int64_t>(ra));
      }
      if (integral_row && g > 0) {
        const double gd = static_cast<double>(g);
        const double rtol = opt.tol * (1.0 + std::abs(rhs));
        if (c.sense == Sense::LE) {
          const double nb = std::floor(rhs / gd + rtol) * gd;
          if (nb < rhs - rtol) { rhs = nb; ++res.rhs_strengthened; }
        } else if (c.sense == Sense::GE) {
          const double nb = std::ceil(rhs / gd - rtol) * gd;
          if (nb > rhs + rtol) { rhs = nb; ++res.rhs_strengthened; }
        } else {
          const double q = rhs / gd;
          if (std::abs(q - std::round(q)) > rtol) {
            res.infeasible = true;
            return res;
          }
        }
      }
    }
    res.reduced.add_constraint(std::move(e), c.sense, rhs, c.name);
  }

  for (std::size_t i = 0; i < m; ++i) {
    if (row_dead[i]) res.removed_rows.push_back(static_cast<std::int32_t>(i));
  }

  LinExpr obj;
  double obj_const = model.objective().constant();
  for (const Term& t : model.objective().terms()) {
    const std::size_t j = static_cast<std::size_t>(t.var.index);
    if (res.fixed[j]) {
      obj_const += t.coef * res.fixed_value[j];
    } else {
      obj.add_term(VarId{new_index[j]}, t.coef);
    }
  }
  obj += obj_const;
  res.reduced.set_objective(std::move(obj), model.objective_sense());
  return res;
}

}  // namespace archex::milp
