#include "milp/expr.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace archex::milp {

namespace {
constexpr double kDropTol = 0.0;  // exact zeros only; numeric cleanup is presolve's job
}  // namespace

LinExpr::LinExpr(std::initializer_list<Term> terms) : terms_(terms) { normalize(); }

void LinExpr::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < terms_.size();) {
    VarId v = terms_[i].var;
    double c = 0.0;
    while (i < terms_.size() && terms_[i].var == v) c += terms_[i++].coef;
    if (std::abs(c) > kDropTol) terms_[out++] = {v, c};
  }
  terms_.resize(out);
}

double LinExpr::coef_of(VarId v) const {
  auto it = std::lower_bound(terms_.begin(), terms_.end(), v,
                             [](const Term& t, VarId id) { return t.var < id; });
  return (it != terms_.end() && it->var == v) ? it->coef : 0.0;
}

LinExpr& LinExpr::add_term(VarId v, double coef) {
  if (coef == 0.0) return *this;
  auto it = std::lower_bound(terms_.begin(), terms_.end(), v,
                             [](const Term& t, VarId id) { return t.var < id; });
  if (it != terms_.end() && it->var == v) {
    it->coef += coef;
    if (it->coef == 0.0) terms_.erase(it);
  } else {
    terms_.insert(it, {v, coef});
  }
  return *this;
}

LinExpr& LinExpr::operator+=(const LinExpr& rhs) {
  constant_ += rhs.constant_;
  if (rhs.terms_.empty()) return *this;
  if (terms_.empty()) {
    terms_ = rhs.terms_;
    return *this;
  }
  // Merge two sorted term lists.
  std::vector<Term> merged;
  merged.reserve(terms_.size() + rhs.terms_.size());
  auto a = terms_.begin();
  auto b = rhs.terms_.begin();
  while (a != terms_.end() || b != rhs.terms_.end()) {
    if (b == rhs.terms_.end() || (a != terms_.end() && a->var < b->var)) {
      merged.push_back(*a++);
    } else if (a == terms_.end() || b->var < a->var) {
      merged.push_back(*b++);
    } else {
      double c = a->coef + b->coef;
      if (c != 0.0) merged.push_back({a->var, c});
      ++a;
      ++b;
    }
  }
  terms_ = std::move(merged);
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& rhs) {
  LinExpr neg = rhs;
  neg *= -1.0;
  return *this += neg;
}

LinExpr& LinExpr::operator*=(double s) {
  if (s == 0.0) {
    terms_.clear();
    constant_ = 0.0;
    return *this;
  }
  for (Term& t : terms_) t.coef *= s;
  constant_ *= s;
  return *this;
}

double LinExpr::evaluate(const std::vector<double>& x) const {
  double v = constant_;
  for (const Term& t : terms_) v += t.coef * x[static_cast<std::size_t>(t.var.index)];
  return v;
}

std::string LinExpr::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const Term& t : terms_) {
    double c = t.coef;
    if (first) {
      if (c < 0) os << "-";
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    c = std::abs(c);
    if (c != 1.0) os << c << "*";
    os << "x" << t.var.index;
    first = false;
  }
  if (constant_ != 0.0 || first) {
    if (!first) os << (constant_ < 0 ? " - " : " + ");
    else if (constant_ < 0) os << "-";
    os << std::abs(constant_);
  }
  return os.str();
}

LinExpr operator*(VarId v, double s) {
  LinExpr e(v);
  e *= s;
  return e;
}

LinExpr operator+(VarId a, VarId b) { return LinExpr(a) + LinExpr(b); }
LinExpr operator-(VarId a, VarId b) { return LinExpr(a) - LinExpr(b); }

const char* to_string(Sense s) {
  switch (s) {
    case Sense::LE: return "<=";
    case Sense::GE: return ">=";
    case Sense::EQ: return "==";
  }
  return "?";
}

LinConstraint::LinConstraint(LinExpr e, Sense s, double r, std::string n)
    : expr(std::move(e)), sense(s), rhs(r - expr.constant()), name(std::move(n)) {
  expr -= expr.constant();
}

bool LinConstraint::satisfied(const std::vector<double>& x, double tol) const {
  const double v = expr.evaluate(x);
  switch (sense) {
    case Sense::LE: return v <= rhs + tol;
    case Sense::GE: return v >= rhs - tol;
    case Sense::EQ: return std::abs(v - rhs) <= tol;
  }
  return false;
}

std::string LinConstraint::to_string() const {
  std::ostringstream os;
  if (!name.empty()) os << name << ": ";
  os << expr.to_string() << " " << milp::to_string(sense) << " " << rhs;
  return os.str();
}

LinConstraint operator<=(LinExpr lhs, const LinExpr& rhs) {
  LinExpr e = std::move(lhs);
  e -= rhs;
  return LinConstraint(std::move(e), Sense::LE, 0.0);
}

LinConstraint operator>=(LinExpr lhs, const LinExpr& rhs) {
  LinExpr e = std::move(lhs);
  e -= rhs;
  return LinConstraint(std::move(e), Sense::GE, 0.0);
}

LinConstraint operator==(LinExpr lhs, const LinExpr& rhs) {
  LinExpr e = std::move(lhs);
  e -= rhs;
  return LinConstraint(std::move(e), Sense::EQ, 0.0);
}

std::ostream& operator<<(std::ostream& os, const LinExpr& e) { return os << e.to_string(); }
std::ostream& operator<<(std::ostream& os, const LinConstraint& c) { return os << c.to_string(); }

}  // namespace archex::milp
