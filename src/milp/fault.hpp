/// \file fault.hpp
/// Deterministic fault injection for the solver stack.
///
/// A FaultPlan is armed per *site* (singular refactorization, NaN pivot,
/// mid-solve deadline, worker stall, allocation failure) to fire at the Nth
/// occurrence of that site, optionally followed by a seeded pseudo-random
/// tail of further firings. The plan is shared by pointer through
/// `SimplexOptions::fault` / `MilpOptions::fault`; a null pointer is the
/// default and costs one pointer test per site. Occurrence counters are
/// atomic, so one plan serves every worker of a parallel solve and an
/// *unarmed* plan doubles as a probe that counts how often each site is
/// reached in a clean run (tests use this to aim the Nth-occurrence trigger
/// at the middle of a solve).
///
/// The CLI spelling (`milp_solve --inject=site:n[:seed]`) and the
/// site-by-site failure/recovery matrix are documented in
/// docs/diagnostics.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace archex::milp {

/// Where a fault can be injected. Values index the plan's counter table.
enum class FaultSite : std::uint8_t {
  SingularFactor = 0,  ///< basis refactorization reports a singular matrix
  NanPivot = 1,        ///< a committed simplex pivot is reported poisoned
  Deadline = 2,        ///< a simplex deadline poll fires early (TimeLimit)
  WorkerStall = 3,     ///< a pool worker sleeps before processing its node
  BadAlloc = 4,        ///< a node LP solve throws std::bad_alloc
};

inline constexpr std::size_t kNumFaultSites = 5;

[[nodiscard]] const char* to_string(FaultSite s);

/// Parses a site name as spelled on the CLI ("singular", "nan-pivot",
/// "deadline", "stall", "bad-alloc").
[[nodiscard]] std::optional<FaultSite> parse_fault_site(const std::string& name);

/// A deterministic per-site fault schedule. Not copyable (atomic counters);
/// arm() is not thread-safe and must happen before the solve starts, fire()
/// is safe from any number of solver threads.
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Arms `site` to fire at occurrences [nth, nth + repeat). With a nonzero
  /// `seed`, later occurrences additionally fire pseudo-randomly (about one
  /// in eight, derived from splitmix64(seed ^ occurrence) — deterministic
  /// for a fixed seed and occurrence index, so single-threaded runs replay
  /// exactly).
  void arm(FaultSite site, std::int64_t nth, std::uint64_t seed = 0,
           std::int64_t repeat = 1);

  /// Arms one site from a CLI spec "site:n[:seed[:repeat]]". A large
  /// `repeat` makes the fault persistent — every occurrence from `n` on
  /// fires, which defeats the whole recovery ladder (the serve drill uses
  /// this to prove a faulted request fails alone). Returns false (plan
  /// unchanged) on a malformed spec.
  bool arm_from_spec(const std::string& spec);

  /// Counts one occurrence of `site` and reports whether the fault fires
  /// there. Unarmed sites only count (probe mode).
  bool fire(FaultSite site);

  /// Occurrences counted so far (armed or not).
  [[nodiscard]] std::int64_t occurrences(FaultSite site) const;
  /// Firings delivered so far.
  [[nodiscard]] std::int64_t fired(FaultSite site) const;
  /// True when any site fired.
  [[nodiscard]] bool any_fired() const;

 private:
  struct Site {
    std::atomic<std::int64_t> count{0};
    std::atomic<std::int64_t> fired{0};
    std::int64_t nth = 0;
    std::int64_t repeat = 1;
    std::uint64_t seed = 0;
    bool armed = false;
  };
  Site sites_[kNumFaultSites];
};

}  // namespace archex::milp
