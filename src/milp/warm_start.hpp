/// \file warm_start.hpp
/// Warm-start vocabulary shared by the simplex, the branch & bound, and the
/// compiled-model sweep pipeline (arch/compiled_model.hpp).
///
/// The `Basis` snapshot used to be a nested type of SimplexSolver; it moved
/// to namespace scope so `Solution` can carry one across `solve_milp` calls
/// without `model.hpp` depending on the whole simplex header. SimplexSolver
/// keeps `SimplexSolver::Basis` as an alias, so existing callers compile
/// unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "milp/basis_lu.hpp"

namespace archex::milp {

/// Compact snapshot of a simplex basis: the column status vector plus the
/// basic column of every row. Bounds and values are *not* part of a basis;
/// they are reconstructed on install from the receiving solver's current
/// bounds. `art_sign` records the sign each artificial column was given by
/// the exporting solver's cold start (the matrix entry, not a status), so
/// the importer rebuilds the exact same basis matrix.
///
/// `factor` additionally carries the exporter's factorization state when
/// the kernel supports snapshots (sparse LU): the importer then replays
/// the eta file instead of refactorizing. It is advisory — a null or
/// incompatible snapshot just falls back to refactorization — and is
/// deliberately *not* serialized by checkpoints.
///
/// This is the hand-off unit of the parallel branch & bound (a worker
/// exports its basis when branching; whichever worker steals the child
/// installs it with load_basis() and warm-starts the dual simplex) and of
/// the scenario-sweep pipeline (scenario k's root basis warm-starts
/// scenario k+1 via MilpOptions::warm_hint).
struct Basis {
  std::vector<std::uint8_t> status;   ///< ColStatus per column (total_cols)
  std::vector<std::int32_t> basic;    ///< basic column per row (m)
  std::vector<double> art_sign;       ///< artificial column sign per row (m)
  std::shared_ptr<const FactorState> factor;  ///< optional factorization
};

/// Caller-supplied warm start for `solve_milp` (MilpOptions::warm_hint),
/// typically the previous solve of a structurally identical model whose
/// bounds / objective / RHS were perturbed (a scenario delta):
///
///   * `basis` — the previous root/final basis. The root LP installs it with
///     load_basis() and reoptimizes with the dual simplex; a snapshot that no
///     longer fits the model (structure changed) or has decayed numerically
///     is rejected and the root falls back to a cold primal solve.
///   * `x` — a candidate incumbent in the model's own variable space. It is
///     seeded through the normal incumbent channel, i.e. snapped, validated
///     against *this* model's constraints (a delta may have invalidated the
///     point) and only admitted when feasible — so the cutoff it provides is
///     always sound.
///
/// Both fields are optional (null basis / empty x). Hints are only honored
/// when `use_presolve` is off: under presolve the solver works in a reduced
/// column space that differs per call, so neither field would line up.
struct WarmStartHint {
  std::shared_ptr<const Basis> basis;  ///< previous basis; may be null
  std::vector<double> x;  ///< candidate incumbent; empty = none
};

}  // namespace archex::milp
