/// \file simplex.hpp
/// Bounded-variable revised simplex over a pluggable basis kernel.
///
/// This is the LP engine underneath the branch-and-bound MILP solver (the
/// role CPLEX plays for the original ArchEx toolbox). It implements:
///   * two-phase primal simplex (phase 1 via artificial variables),
///   * dual simplex reoptimization after variable-bound changes, which is
///     what makes warm-started branch & bound cheap: branching only changes
///     bounds, and bound changes preserve dual feasibility of the basis,
///   * a basis representation behind `BasisRep` (milp/basis_lu.hpp): sparse
///     LU with Markowitz pivoting and eta-file updates by default, the
///     original dense explicit inverse as the cross-check kernel, both with
///     periodic refactorization governed by `refactor_interval` and fill-in,
///   * pluggable pricing (milp/pricing.hpp): Dantzig by default, devex as
///     the first registered alternative.
///
/// The engine works on the standard computational form: every row
/// `a_i x (<=|>=|==) b_i` becomes `a_i x + s_i = b_i` with a bounded slack
/// s_i, and all columns (structural, slack, artificial) are treated
/// uniformly as bounded variables.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "milp/basis_lu.hpp"
#include "milp/model.hpp"
#include "milp/pricing.hpp"
#include "milp/warm_start.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace archex::milp {

class FaultPlan;

/// Simplex configuration knobs.
struct SimplexOptions {
  double feas_tol = 1e-7;    ///< primal feasibility tolerance
  double opt_tol = 1e-7;     ///< dual feasibility (reduced cost) tolerance
  double pivot_tol = 1e-8;   ///< minimum acceptable pivot magnitude
  std::int64_t max_iterations = 50'000'000;
  int refactor_interval = 400;  ///< pivots between basis refactorizations
  int bland_threshold = 300;    ///< degenerate pivots before Bland's rule kicks in
  /// Basis kernel (see milp/basis_lu.hpp). SparseLu is the default; Dense is
  /// the original explicit inverse, kept as the cross-check oracle.
  BasisKernel kernel = BasisKernel::SparseLu;
  /// Markowitz threshold partial pivoting (sparse kernel only): within a
  /// candidate column, entries at least this fraction of the column max are
  /// acceptable pivots. Smaller favors sparsity, larger favors stability.
  double markowitz_tol = 0.1;
  /// Early-refactorization fill governor (sparse kernel only): refactorize
  /// once the eta file holds more than this multiple of the LU nonzeros,
  /// even before `refactor_interval` pivots have accumulated.
  double eta_fill_factor = 3.0;
  /// Pricing rule by registry name (milp/pricing.hpp): "dantzig" (default)
  /// or "devex"; unknown names fall back to Dantzig.
  std::string pricing = "dantzig";
  /// Anti-degeneracy perturbation. Architecture MILPs are massively
  /// degenerate (symmetric costs, unit-capacity flows); tiny deterministic
  /// *relaxing* bound shifts and cost jitter break the ties. Bounds are only
  /// ever widened, so LP objective values remain valid lower bounds; reported
  /// objectives always use the true costs and solutions are clamped back to
  /// the true bounds.
  bool perturb = false;
  double bound_pert = 1e-8;  ///< bound widening magnitude
  double cost_pert = 1e-10;  ///< relative cost jitter magnitude
  /// Hard wall-clock deadline; simplex loops return TimeLimit when passed.
  /// Defaults to "never". Checked every few hundred iterations.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Cooperative cancellation flag, polled at the same stride as `deadline`.
  /// A set flag makes the iteration loops return TimeLimit — the caller
  /// (B&B, or `serve::ExplorationService` on drain) decides what the stop
  /// means. Null (the default) costs one pointer test per poll.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional structured-trace sink (refactorizations, dual-repair and
  /// cold-restart falls). Must be written by this solver's thread only —
  /// the branch & bound hands each worker's solver its own buffer. Null or
  /// disabled buffers cost one pointer test per event site.
  obs::TraceBuffer* trace = nullptr;
  /// Optional hierarchical span sink (obs/span.hpp) for the kernel hot paths:
  /// ftran / btran_row / price_row per pivot, full pricing passes, and
  /// refactorizations. Single-writer like `trace`. Pivot-level spans are
  /// *sampled* — one pivot in `span_sample` records them — so profiling a
  /// million-pivot solve stays cheap; refactorizations and full pricing
  /// passes are rare and always recorded. Null (the default) keeps the hot
  /// loops at one pointer test per sample site.
  obs::SpanBuffer* spans = nullptr;
  int span_sample = 64;  ///< record kernel spans every Nth pivot
  /// Deterministic fault injection (tests, `milp_solve --inject`). Null —
  /// the default — disables every site at the cost of one pointer test.
  /// Shared across solvers of one solve; see milp/fault.hpp.
  FaultPlan* fault = nullptr;
};

/// The LP-facing alias used by docs and downstream options plumbing.
using LpOptions = SimplexOptions;

/// LP engine over a fixed constraint matrix with mutable variable bounds.
///
/// Usage:
///   SimplexSolver lp(model);
///   SolveStatus st = lp.solve_primal();        // cold start, two-phase
///   ...
///   lp.set_bounds(col, 1.0, 1.0);              // branch: fix a binary
///   st = lp.reoptimize_dual();                 // warm-started node solve
///   lp.set_bounds(col, 0.0, 1.0);              // backtrack
class SimplexSolver {
 public:
  explicit SimplexSolver(const Model& model, SimplexOptions options = {});

  /// Solves from a fresh slack/artificial basis (two-phase primal).
  SolveStatus solve_primal();

  /// Reoptimizes with the dual simplex after bound changes. Requires a prior
  /// successful solve (which left a dual-feasible basis). Falls back to a
  /// cold primal solve if the basis has decayed numerically.
  SolveStatus reoptimize_dual();

  /// First rung of the branch & bound's numerical-recovery ladder: rebuild
  /// the basis factorization from scratch and reoptimize under a temporarily
  /// tightened pivot-acceptance tolerance, so the marginal pivots that
  /// poisoned the factorization are refused on the retry. Returns
  /// NumericalError when the rebuilt basis is still singular or the
  /// reoptimization fails again; callers then escalate to a cold restart.
  SolveStatus recover_resolve();

  /// Changes the bounds of structural column `col` (0-based model index).
  /// Getters return the *true* (unperturbed) bounds.
  void set_bounds(std::int32_t col, double lb, double ub);
  [[nodiscard]] double lower_bound(std::int32_t col) const { return true_lb_[col]; }
  [[nodiscard]] double upper_bound(std::int32_t col) const { return true_ub_[col]; }

  /// Objective value of the last solve, in *minimization* sense.
  [[nodiscard]] double objective_value() const { return obj_value_; }

  /// Values of the structural variables after the last solve.
  [[nodiscard]] std::vector<double> primal_solution() const;

  /// Reduced costs of the structural columns w.r.t. the true objective and
  /// the current basis, reported in the *model's own sense* (the internal
  /// minimize-sense values are flipped back for Maximize models). Used for
  /// root reduced-cost fixing in the branch & bound.
  [[nodiscard]] std::vector<double> reduced_costs() const;

  /// Dual values (shadow prices) of the rows w.r.t. the true objective and
  /// the current basis: y = c_B^T B^-1, reported in the *model's own sense*
  /// (flipped back for Maximize models). The sensitivity interface
  /// architects use to see which requirement is driving cost.
  [[nodiscard]] std::vector<double> dual_values() const;
  /// Status of a structural column in the current basis.
  enum class BoundStatus : std::uint8_t { Basic, AtLower, AtUpper, Free };
  [[nodiscard]] BoundStatus column_status(std::int32_t col) const;

  [[nodiscard]] std::int64_t iterations() const { return total_iterations_; }
  [[nodiscard]] std::size_t num_rows() const { return m_; }
  [[nodiscard]] std::size_t num_structural() const { return n_; }

  /// Compact snapshot of a simplex basis — the hand-off unit of the parallel
  /// branch & bound and of the sweep pipeline's cross-solve warm starts. The
  /// struct itself lives at namespace scope (milp/warm_start.hpp) so that
  /// `Solution` can carry one; this alias keeps the historical spelling.
  using Basis = milp::Basis;

  /// Exports the current basis. Only meaningful after a successful solve.
  [[nodiscard]] Basis export_basis() const;

  /// Installs a basis exported from a solver over the *same model*: adopts
  /// the shipped factorization state (eta replay) when present, otherwise
  /// refactorizes the basis matrix; recomputes basic values against the
  /// current bounds, and revalidates. Returns false (leaving the solver in
  /// a cold-start state) if the snapshot is inconsistent or the basis is
  /// numerically singular; callers then fall back to solve_primal().
  bool load_basis(const Basis& basis);

  /// Warm-start behaviour counters (reoptimize_dual path taken).
  struct ReoptStats {
    std::int64_t dual_fast = 0;   ///< dual-feasible warm dual solves
    std::int64_t repaired = 0;    ///< dual repair + primal cleanup
    std::int64_t cold = 0;        ///< fell back to a cold primal solve
    std::int64_t degen_pivots = 0;  ///< pivots with (near-)zero step
    std::int64_t total_pivots = 0;
    std::int64_t refactors = 0;   ///< basis refactorizations (all causes)
    std::int64_t transplants = 0; ///< basis loads served by eta replay
  };
  [[nodiscard]] const ReoptStats& reopt_stats() const { return reopt_stats_; }

 private:
  enum class ColStatus : std::uint8_t { Basic, AtLower, AtUpper, Free };

  // --- setup ---
  void build_from_model(const Model& model);
  void initial_basis();

  // --- linear algebra (delegating to the basis kernel) ---
  /// w = Binv * A_col (dense result, sparse column input).
  void ftran(std::int32_t col, std::vector<double>& w) const;
  /// rho = row r of Binv (B^-T e_r), row-indexed.
  void btran_row(std::size_t r, std::vector<double>& rho) const;
  /// alpha_j = rho * A_j for every column with a nonzero, computed sparsely
  /// through the row-wise adjacency; touched columns are listed in
  /// `alpha_nz` and must be zeroed through it after use.
  void price_row(const std::vector<double>& rho, std::vector<double>& alpha,
                 std::vector<std::int32_t>& alpha_nz) const;
  /// Rebuilds the basis factorization (stats, trace and fault site), then
  /// delegates to the kernel. Returns false on a (numerically) singular
  /// basis or an injected singular factorization.
  bool refactorize();
  /// Recomputes the values of basic variables from nonbasic values.
  void compute_basic_values();
  /// Product-form update of the kernel for a pivot (entering column's
  /// ftran result `w`, pivot row `r`).
  void update_factors(const std::vector<double>& w, std::size_t r,
                      const std::vector<std::int32_t>& wnz);

  // --- entering-candidate bookkeeping ---
  /// Rebuilds `cand_` as the nonbasic, non-fixed columns. Called at the top
  /// of each primal loop; within the loop the list is maintained per pivot,
  /// so entering selection scans candidates instead of every column.
  void rebuild_candidates();
  void cand_remove(std::int32_t j) {
    const std::int32_t at = cand_idx_[static_cast<std::size_t>(j)];
    if (at < 0) return;
    const std::int32_t last = cand_.back();
    cand_[static_cast<std::size_t>(at)] = last;
    cand_idx_[static_cast<std::size_t>(last)] = at;
    cand_.pop_back();
    cand_idx_[static_cast<std::size_t>(j)] = -1;
  }
  void cand_add(std::int32_t j) {
    if (cand_idx_[static_cast<std::size_t>(j)] >= 0 || is_fixed(j)) return;
    cand_idx_[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(cand_.size());
    cand_.push_back(j);
  }

  // --- simplex cores ---
  SolveStatus primal_loop(const std::vector<double>& cost, bool phase_one);
  SolveStatus dual_loop();
  /// True if the current basis satisfies the reduced-cost sign conditions.
  bool dual_feasible();
  void price(const std::vector<double>& cost, std::vector<double>& d) const;
  double current_objective(const std::vector<double>& cost) const;

  [[nodiscard]] bool is_fixed(std::int32_t j) const { return true_lb_[j] == true_ub_[j]; }
  [[nodiscard]] double bound_violation(std::int32_t j) const;

  /// The span sink for the current pivot, or null when spans are off or this
  /// pivot falls outside the 1-in-span_sample sample. One pointer test plus
  /// (when armed) a modulo on the spans path; null `opts_.spans` — the
  /// default — short-circuits before the modulo.
  [[nodiscard]] obs::SpanBuffer* sampled_spans() const {
    return (opts_.spans != nullptr && opts_.span_sample > 0 &&
            total_iterations_ % opts_.span_sample == 0)
               ? opts_.spans
               : nullptr;
  }

  // --- compressed-storage accessors ---
  /// Entries of column j (CSC slice).
  [[nodiscard]] std::span<const ColEntry> col(std::size_t j) const {
    return {col_ent_.data() + col_start_[j], col_ent_.data() + col_start_[j + 1]};
  }
  /// Row-wise adjacency of row i over structural + slack columns; `row` in
  /// each entry is the column index.
  [[nodiscard]] std::span<const ColEntry> row_adj(std::size_t i) const {
    return {row_ent_.data() + row_start_[i], row_ent_.data() + row_start_[i + 1]};
  }
  /// The single matrix entry of row i's artificial column (sign mutates per
  /// cold start / basis load).
  [[nodiscard]] double& art_val(std::size_t i) {
    return col_ent_[static_cast<std::size_t>(col_start_[n_ + m_ + i])].val;
  }
  [[nodiscard]] double art_val(std::size_t i) const {
    return col_ent_[static_cast<std::size_t>(col_start_[n_ + m_ + i])].val;
  }

  // --- data ---
  SimplexOptions opts_;
  std::size_t m_ = 0;  ///< rows
  std::size_t n_ = 0;  ///< structural columns
  std::size_t total_cols_ = 0;  ///< n + m slacks + m artificials

  // Sparse columns of [A | I_slack | I_artificial] in compressed (CSC) form:
  // column j is col_ent_[col_start_[j] .. col_start_[j+1]). Flat storage
  // keeps the pricing/ftran scans on contiguous memory and spares the
  // per-column allocations of a vector-of-vectors.
  std::vector<std::int32_t> col_start_;  ///< size total_cols_ + 1
  std::vector<ColEntry> col_ent_;
  // Row-wise adjacency (CSR) over structural + slack columns; `row` in an
  // entry is the *column* index. Artificials are handled specially: their
  // single sign entry lives in col_ent_ and mutates per cold start.
  std::vector<std::int32_t> row_start_;  ///< size m_ + 1
  std::vector<ColEntry> row_ent_;
  std::vector<double> rhs_;
  std::vector<double> cost_;       ///< true phase-2 cost (minimize), size total_cols_
  std::vector<double> pert_cost_;  ///< perturbed cost used for pricing decisions
  std::vector<double> lb_, ub_;    ///< working (perturbation-widened) bounds
  std::vector<double> true_lb_, true_ub_;  ///< unperturbed bounds
  std::vector<double> pert_;       ///< per-column bound widening (0 for artificials)
  std::vector<ColStatus> status_;
  std::vector<double> xval_;       ///< current value per column
  std::vector<std::int32_t> basic_;    ///< column basic in row i
  std::vector<std::int32_t> basis_pos_;  ///< row of a basic column, -1 otherwise
  std::vector<std::int32_t> cand_;     ///< nonbasic non-fixed columns (loop-local)
  std::vector<std::int32_t> cand_idx_; ///< index in cand_, -1 when absent
  std::unique_ptr<BasisRep> rep_;  ///< basis kernel (sparse LU or dense)
  std::unique_ptr<Pricer> pricer_;
  bool dantzig_pricing_ = true;  ///< devirtualized |d_j| scoring fast path
  double obj_value_ = 0.0;
  double obj_constant_ = 0.0;      ///< constant of the (minimize-sense) objective
  bool maximize_ = false;          ///< model was a maximization (cost_ is negated)
  std::int64_t total_iterations_ = 0;
  int pivots_since_refactor_ = 0;
  bool basis_valid_ = false;       ///< a successful solve happened
  ReoptStats reopt_stats_;
  // scratch buffers
  mutable std::vector<double> scratch_w_;
  mutable std::vector<std::int32_t> scratch_wnz_;  ///< nonzero positions of scratch_w_
  mutable std::vector<double> scratch_y_;
  mutable std::vector<double> scratch_d_;
  mutable std::vector<double> scratch_alpha_;
  mutable std::vector<std::int32_t> scratch_alpha_nz_;
  mutable std::vector<double> scratch_rho_;
  // price_row first-touch marks (per-call stamps; never reset, 64-bit).
  mutable std::vector<std::int64_t> scratch_mark_;
  mutable std::int64_t mark_stamp_ = 0;
};

/// Convenience: solves the LP relaxation of `model` (integrality dropped).
/// Returns objective in the model's own sense.
Solution solve_lp_relaxation(const Model& model, SimplexOptions options = {});

}  // namespace archex::milp
