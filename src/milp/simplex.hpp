/// \file simplex.hpp
/// Bounded-variable revised simplex with an explicit basis inverse.
///
/// This is the LP engine underneath the branch-and-bound MILP solver (the
/// role CPLEX plays for the original ArchEx toolbox). It implements:
///   * two-phase primal simplex (phase 1 via artificial variables),
///   * dual simplex reoptimization after variable-bound changes, which is
///     what makes warm-started branch & bound cheap: branching only changes
///     bounds, and bound changes preserve dual feasibility of the basis,
///   * product-form updates of an explicit dense basis inverse with periodic
///     refactorization and residual-based accuracy checks.
///
/// The engine works on the standard computational form: every row
/// `a_i x (<=|>=|==) b_i` becomes `a_i x + s_i = b_i` with a bounded slack
/// s_i, and all columns (structural, slack, artificial) are treated
/// uniformly as bounded variables.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "milp/model.hpp"
#include "obs/trace.hpp"

namespace archex::milp {

class FaultPlan;

/// Simplex configuration knobs.
struct SimplexOptions {
  double feas_tol = 1e-7;    ///< primal feasibility tolerance
  double opt_tol = 1e-7;     ///< dual feasibility (reduced cost) tolerance
  double pivot_tol = 1e-8;   ///< minimum acceptable pivot magnitude
  std::int64_t max_iterations = 50'000'000;
  int refactor_interval = 400;  ///< pivots between basis refactorizations
  int bland_threshold = 300;    ///< degenerate pivots before Bland's rule kicks in
  /// Anti-degeneracy perturbation. Architecture MILPs are massively
  /// degenerate (symmetric costs, unit-capacity flows); tiny deterministic
  /// *relaxing* bound shifts and cost jitter break the ties. Bounds are only
  /// ever widened, so LP objective values remain valid lower bounds; reported
  /// objectives always use the true costs and solutions are clamped back to
  /// the true bounds.
  bool perturb = false;
  double bound_pert = 1e-8;  ///< bound widening magnitude
  double cost_pert = 1e-10;  ///< relative cost jitter magnitude
  /// Hard wall-clock deadline; simplex loops return TimeLimit when passed.
  /// Defaults to "never". Checked every few hundred iterations.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Optional structured-trace sink (refactorizations, dual-repair and
  /// cold-restart falls). Must be written by this solver's thread only —
  /// the branch & bound hands each worker's solver its own buffer. Null or
  /// disabled buffers cost one pointer test per event site.
  obs::TraceBuffer* trace = nullptr;
  /// Deterministic fault injection (tests, `milp_solve --inject`). Null —
  /// the default — disables every site at the cost of one pointer test.
  /// Shared across solvers of one solve; see milp/fault.hpp.
  FaultPlan* fault = nullptr;
};

/// LP engine over a fixed constraint matrix with mutable variable bounds.
///
/// Usage:
///   SimplexSolver lp(model);
///   SolveStatus st = lp.solve_primal();        // cold start, two-phase
///   ...
///   lp.set_bounds(col, 1.0, 1.0);              // branch: fix a binary
///   st = lp.reoptimize_dual();                 // warm-started node solve
///   lp.set_bounds(col, 0.0, 1.0);              // backtrack
class SimplexSolver {
 public:
  explicit SimplexSolver(const Model& model, SimplexOptions options = {});

  /// Solves from a fresh slack/artificial basis (two-phase primal).
  SolveStatus solve_primal();

  /// Reoptimizes with the dual simplex after bound changes. Requires a prior
  /// successful solve (which left a dual-feasible basis). Falls back to a
  /// cold primal solve if the basis has decayed numerically.
  SolveStatus reoptimize_dual();

  /// First rung of the branch & bound's numerical-recovery ladder: rebuild
  /// the basis inverse from scratch and reoptimize under a temporarily
  /// tightened pivot-acceptance tolerance, so the marginal pivots that
  /// poisoned the factorization are refused on the retry. Returns
  /// NumericalError when the rebuilt basis is still singular or the
  /// reoptimization fails again; callers then escalate to a cold restart.
  SolveStatus recover_resolve();

  /// Changes the bounds of structural column `col` (0-based model index).
  /// Getters return the *true* (unperturbed) bounds.
  void set_bounds(std::int32_t col, double lb, double ub);
  [[nodiscard]] double lower_bound(std::int32_t col) const { return true_lb_[col]; }
  [[nodiscard]] double upper_bound(std::int32_t col) const { return true_ub_[col]; }

  /// Objective value of the last solve, in *minimization* sense.
  [[nodiscard]] double objective_value() const { return obj_value_; }

  /// Values of the structural variables after the last solve.
  [[nodiscard]] std::vector<double> primal_solution() const;

  /// Reduced costs of the structural columns w.r.t. the true objective and
  /// the current basis, reported in the *model's own sense* (the internal
  /// minimize-sense values are flipped back for Maximize models). Used for
  /// root reduced-cost fixing in the branch & bound.
  [[nodiscard]] std::vector<double> reduced_costs() const;

  /// Dual values (shadow prices) of the rows w.r.t. the true objective and
  /// the current basis: y = c_B^T B^-1, reported in the *model's own sense*
  /// (flipped back for Maximize models). The sensitivity interface
  /// architects use to see which requirement is driving cost.
  [[nodiscard]] std::vector<double> dual_values() const;
  /// Status of a structural column in the current basis.
  enum class BoundStatus : std::uint8_t { Basic, AtLower, AtUpper, Free };
  [[nodiscard]] BoundStatus column_status(std::int32_t col) const;

  [[nodiscard]] std::int64_t iterations() const { return total_iterations_; }
  [[nodiscard]] std::size_t num_rows() const { return m_; }
  [[nodiscard]] std::size_t num_structural() const { return n_; }

  /// Compact snapshot of a simplex basis: the column status vector plus the
  /// basic column of every row. Bounds and values are *not* part of a basis;
  /// they are reconstructed on install from the receiving solver's current
  /// bounds. `art_sign` records the sign each artificial column was given by
  /// the exporting solver's cold start (the matrix entry, not a status), so
  /// the importer rebuilds the exact same basis matrix.
  ///
  /// This is the hand-off unit of the parallel branch & bound: a worker
  /// exports its basis when branching, and whichever worker later steals the
  /// child node installs it with load_basis() and warm-starts the dual
  /// simplex from it.
  struct Basis {
    std::vector<std::uint8_t> status;   ///< ColStatus per column (total_cols)
    std::vector<std::int32_t> basic;    ///< basic column per row (m)
    std::vector<double> art_sign;       ///< artificial column sign per row (m)
  };

  /// Exports the current basis. Only meaningful after a successful solve.
  [[nodiscard]] Basis export_basis() const;

  /// Installs a basis exported from a solver over the *same model*:
  /// refactorizes the basis matrix, recomputes basic values against the
  /// current bounds, and revalidates. Returns false (leaving the solver in
  /// a cold-start state) if the snapshot is inconsistent or the basis is
  /// numerically singular; callers then fall back to solve_primal().
  bool load_basis(const Basis& basis);

  /// Warm-start behaviour counters (reoptimize_dual path taken).
  struct ReoptStats {
    std::int64_t dual_fast = 0;   ///< dual-feasible warm dual solves
    std::int64_t repaired = 0;    ///< dual repair + primal cleanup
    std::int64_t cold = 0;        ///< fell back to a cold primal solve
    std::int64_t degen_pivots = 0;  ///< pivots with (near-)zero step
    std::int64_t total_pivots = 0;
    std::int64_t refactors = 0;   ///< basis refactorizations (all causes)
  };
  [[nodiscard]] const ReoptStats& reopt_stats() const { return reopt_stats_; }

 private:
  enum class ColStatus : std::uint8_t { Basic, AtLower, AtUpper, Free };

  // --- setup ---
  void build_from_model(const Model& model);
  void initial_basis();

  // --- linear algebra ---
  /// w = Binv * A_col (dense result, sparse column input).
  void ftran(std::int32_t col, std::vector<double>& w) const;
  /// alpha = (row r of Binv) * A  restricted to nonbasic columns;
  /// also returns binv_row (row r of Binv) for the pivot update.
  void btran_row(std::size_t r, std::vector<double>& binv_row) const;
  /// Recomputes Binv from the current basis by Gauss-Jordan elimination.
  /// Returns false if the basis is (numerically) singular.
  bool refactorize();
  /// Recomputes the values of basic variables from nonbasic values.
  void compute_basic_values();
  /// Rank-1 product-form update of Binv for a pivot (entering column's
  /// ftran result `w`, pivot row `r`).
  void update_binv(const std::vector<double>& w, std::size_t r);

  // --- simplex cores ---
  SolveStatus primal_loop(const std::vector<double>& cost, bool phase_one);
  SolveStatus dual_loop();
  /// True if the current basis satisfies the reduced-cost sign conditions.
  bool dual_feasible();
  void price(const std::vector<double>& cost, std::vector<double>& d) const;
  double current_objective(const std::vector<double>& cost) const;

  [[nodiscard]] bool is_fixed(std::int32_t j) const { return true_lb_[j] == true_ub_[j]; }
  [[nodiscard]] double bound_violation(std::int32_t j) const;

  // --- data ---
  SimplexOptions opts_;
  std::size_t m_ = 0;  ///< rows
  std::size_t n_ = 0;  ///< structural columns
  std::size_t total_cols_ = 0;  ///< n + m slacks + m artificials

  // Sparse columns of [A | I_slack | I_artificial]; entry list per column.
  struct ColEntry { std::int32_t row; double val; };
  std::vector<std::vector<ColEntry>> cols_;
  std::vector<double> rhs_;
  std::vector<double> cost_;       ///< true phase-2 cost (minimize), size total_cols_
  std::vector<double> pert_cost_;  ///< perturbed cost used for pricing decisions
  std::vector<double> lb_, ub_;    ///< working (perturbation-widened) bounds
  std::vector<double> true_lb_, true_ub_;  ///< unperturbed bounds
  std::vector<double> pert_;       ///< per-column bound widening (0 for artificials)
  std::vector<ColStatus> status_;
  std::vector<double> xval_;       ///< current value per column
  std::vector<std::int32_t> basic_;    ///< column basic in row i
  std::vector<std::int32_t> basis_pos_;  ///< row of a basic column, -1 otherwise
  std::vector<double> binv_;       ///< dense m x m, row-major
  double obj_value_ = 0.0;
  double obj_constant_ = 0.0;      ///< constant of the (minimize-sense) objective
  bool maximize_ = false;          ///< model was a maximization (cost_ is negated)
  std::int64_t total_iterations_ = 0;
  int pivots_since_refactor_ = 0;
  bool basis_valid_ = false;       ///< a successful solve happened
  ReoptStats reopt_stats_;
  // scratch buffers
  mutable std::vector<double> scratch_w_;
  mutable std::vector<double> scratch_y_;
  mutable std::vector<double> scratch_d_;
  mutable std::vector<double> scratch_alpha_;
};

/// Convenience: solves the LP relaxation of `model` (integrality dropped).
/// Returns objective in the model's own sense.
Solution solve_lp_relaxation(const Model& model, SimplexOptions options = {});

}  // namespace archex::milp
