#include "milp/lp_format.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace archex::milp {

namespace {

enum class Section { None, Objective, Constraints, Bounds, Binaries, Generals, End };

struct ParsedTerm {
  double coef;
  std::string var;
};

bool is_number_start(char c) { return std::isdigit(static_cast<unsigned char>(c)) || c == '.'; }

/// Tokenizes "2 x + 3.5 y - z" into signed coefficient/variable terms.
/// Accepts both "2 x" and "2x"-style spacing and a leading sign.
std::vector<ParsedTerm> parse_terms(const std::string& text, int line) {
  std::vector<ParsedTerm> out;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  double sign = 1.0;
  bool expect_term = true;
  skip_ws();
  while (i < text.size()) {
    const char c = text[i];
    if (c == '+' || c == '-') {
      if (expect_term && !out.empty()) {
        throw std::runtime_error("line " + std::to_string(line) + ": dangling operator");
      }
      sign = (c == '-') ? -sign : sign;
      ++i;
      expect_term = true;
      skip_ws();
      continue;
    }
    double coef = 1.0;
    if (is_number_start(c)) {
      const char* begin = text.data() + i;
      char* end = nullptr;
      coef = std::strtod(begin, &end);
      if (end == begin) {
        throw std::runtime_error("line " + std::to_string(line) + ": bad number");
      }
      i += static_cast<std::size_t>(end - begin);
      skip_ws();
    }
    // Optional variable name after the coefficient.
    std::size_t start = i;
    while (i < text.size() && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                               std::string("_()[]->.,:").find(text[i]) != std::string::npos)) {
      ++i;
    }
    const std::string name = text.substr(start, i - start);
    out.push_back({sign * coef, name});  // empty name = constant term
    sign = 1.0;
    expect_term = false;
    skip_ws();
  }
  return out;
}

double parse_bound_value(const std::string& tok, int line) {
  if (tok == "-inf" || tok == "-infinity") return -kInf;
  if (tok == "+inf" || tok == "inf" || tok == "+infinity") return kInf;
  double v = 0.0;
  const char* begin = tok.data();
  const auto [p, ec] = std::from_chars(begin, begin + tok.size(), v);
  if (ec != std::errc() || p != begin + tok.size()) {
    throw std::runtime_error("line " + std::to_string(line) + ": bad bound '" + tok + "'");
  }
  return v;
}

std::string lowercase(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Model parse_lp(std::istream& in) {
  // First pass: collect raw content per section; variables are created on
  // first appearance with default bounds [0, +inf) like the LP format
  // specifies, then bounds/integrality sections adjust them.
  struct RawConstraint {
    std::string name;
    std::vector<ParsedTerm> lhs;
    Sense sense;
    double rhs;
  };

  std::vector<ParsedTerm> objective;
  bool maximize = false;
  std::vector<RawConstraint> constraints;
  struct RawBound {
    std::string var;
    double lb, ub;
  };
  std::vector<RawBound> bounds;
  std::vector<std::string> binaries;
  std::vector<std::string> generals;

  Section section = Section::None;
  std::string raw;
  int line_no = 0;
  std::string pending;  // multi-line statements are joined until complete
  int pending_line = 0;

  // End of a statement label: the first ':' followed by whitespace (or at end
  // of text). A bare `find(':')` is wrong here — ArchEx names legitimately
  // contain colons (flow commodities like "paths[relh:LD1]"), and the writer
  // always emits labels as "name: ".
  auto label_colon = [](const std::string& text) {
    for (std::size_t p = text.find(':'); p != std::string::npos;
         p = text.find(':', p + 1)) {
      if (p + 1 == text.size() ||
          std::isspace(static_cast<unsigned char>(text[p + 1]))) {
        return p;
      }
    }
    return std::string::npos;
  };

  auto flush_statement = [&](const std::string& text, int line) {
    if (text.empty()) return;
    if (section == Section::Objective) {
      std::string body = text;
      if (const std::size_t colon = label_colon(body); colon != std::string::npos) {
        body = body.substr(colon + 1);
      }
      for (const ParsedTerm& t : parse_terms(body, line)) objective.push_back(t);
    } else if (section == Section::Constraints) {
      RawConstraint rc;
      std::string body = text;
      if (const std::size_t colon = label_colon(body); colon != std::string::npos) {
        rc.name = body.substr(0, colon);
        // Trim the name.
        while (!rc.name.empty() && std::isspace(static_cast<unsigned char>(rc.name.front()))) {
          rc.name.erase(rc.name.begin());
        }
        body = body.substr(colon + 1);
      }
      std::size_t rel = body.find("<=");
      std::size_t rel_len = 2;
      if (rel != std::string::npos) {
        rc.sense = Sense::LE;
      } else if ((rel = body.find(">=")) != std::string::npos) {
        rc.sense = Sense::GE;
      } else if ((rel = body.find('=')) != std::string::npos) {
        rc.sense = Sense::EQ;
        rel_len = 1;
      } else {
        throw std::runtime_error("line " + std::to_string(line) + ": constraint without relation");
      }
      rc.lhs = parse_terms(body.substr(0, rel), line);
      const auto rhs_terms = parse_terms(body.substr(rel + rel_len), line);
      rc.rhs = 0.0;
      for (const ParsedTerm& t : rhs_terms) {
        if (!t.var.empty()) {
          // Variable on the right-hand side: move it to the left.
          rc.lhs.push_back({-t.coef, t.var});
        } else {
          rc.rhs += t.coef;
        }
      }
      constraints.push_back(std::move(rc));
    } else if (section == Section::Bounds) {
      // Forms: "l <= x <= u", "x <= u", "x >= l", "x = v", "x free".
      std::istringstream is(text);
      std::vector<std::string> toks;
      std::string t;
      while (is >> t) toks.push_back(t);
      if (toks.size() == 2 && lowercase(toks[1]) == "free") {
        bounds.push_back({toks[0], -kInf, kInf});
      } else if (toks.size() == 5 && toks[1] == "<=" && toks[3] == "<=") {
        bounds.push_back({toks[2], parse_bound_value(toks[0], line),
                          parse_bound_value(toks[4], line)});
      } else if (toks.size() == 3 && toks[1] == "<=") {
        bounds.push_back({toks[0], -kInf, parse_bound_value(toks[2], line)});
      } else if (toks.size() == 3 && toks[1] == ">=") {
        bounds.push_back({toks[0], parse_bound_value(toks[2], line), kInf});
      } else if (toks.size() == 3 && toks[1] == "=") {
        const double v = parse_bound_value(toks[2], line);
        bounds.push_back({toks[0], v, v});
      } else {
        throw std::runtime_error("line " + std::to_string(line) + ": bad bound statement");
      }
    } else if (section == Section::Binaries || section == Section::Generals) {
      std::istringstream is(text);
      std::string name;
      while (is >> name) {
        (section == Section::Binaries ? binaries : generals).push_back(name);
      }
    }
  };

  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments ('\' in LP format; accept full-line '#' too — but only
    // at the start of the line, since '#' occurs inside ArchEx names as the
    // tag separator, e.g. "Load#critical").
    if (const std::size_t pos = raw.find('\\'); pos != std::string::npos) {
      raw = raw.substr(0, pos);
    }
    {
      std::size_t first = 0;
      while (first < raw.size() && std::isspace(static_cast<unsigned char>(raw[first]))) ++first;
      if (first < raw.size() && raw[first] == '#') raw.clear();
    }
    std::string trimmed = raw;
    while (!trimmed.empty() && std::isspace(static_cast<unsigned char>(trimmed.back()))) {
      trimmed.pop_back();
    }
    std::size_t b = 0;
    while (b < trimmed.size() && std::isspace(static_cast<unsigned char>(trimmed[b]))) ++b;
    trimmed = trimmed.substr(b);
    if (trimmed.empty()) continue;

    const std::string low = lowercase(trimmed);
    Section new_section = Section::None;
    if (low == "minimize" || low == "min") new_section = Section::Objective;
    else if (low == "maximize" || low == "max") new_section = Section::Objective;
    else if (low == "subject to" || low == "st" || low == "s.t.") new_section = Section::Constraints;
    else if (low == "bounds") new_section = Section::Bounds;
    else if (low == "binaries" || low == "binary" || low == "bin") new_section = Section::Binaries;
    else if (low == "generals" || low == "general" || low == "gen") new_section = Section::Generals;
    else if (low == "end") new_section = Section::End;

    if (new_section != Section::None) {
      flush_statement(pending, pending_line);
      pending.clear();
      if (new_section == Section::Objective) maximize = (low[0] == 'm' && low[1] == 'a');
      section = new_section;
      if (section == Section::End) break;
      continue;
    }

    // Statements in the objective/constraint sections may span lines; a new
    // statement starts when a "name:" prefix appears (or, for bounds and
    // integrality sections, every line is one statement).
    if (section == Section::Bounds || section == Section::Binaries ||
        section == Section::Generals) {
      flush_statement(trimmed, line_no);
      continue;
    }
    const bool starts_new = trimmed.find(':') != std::string::npos;
    if (starts_new) {
      flush_statement(pending, pending_line);
      pending = trimmed;
      pending_line = line_no;
    } else if (pending.empty()) {
      pending = trimmed;
      pending_line = line_no;
    } else {
      pending += " " + trimmed;
    }
  }
  flush_statement(pending, pending_line);

  // Second pass: build the model.
  Model model;
  std::map<std::string, VarId> var_of;
  const auto var = [&](const std::string& name) {
    const auto it = var_of.find(name);
    if (it != var_of.end()) return it->second;
    const VarId id = model.add_continuous(0.0, kInf, name);
    var_of.emplace(name, id);
    return id;
  };

  // Register Bounds-section variables first, in declaration order. The
  // writer emits one Bounds line per variable in column order, so this keeps
  // write -> parse -> write stable — in particular for variables that are
  // declared but never referenced by a row or the objective, which would
  // otherwise be re-created (and re-ordered) on their Bounds line only.
  for (const RawBound& rb : bounds) var(rb.var);

  LinExpr obj;
  for (const ParsedTerm& t : objective) {
    if (t.var.empty()) obj += t.coef;
    else obj.add_term(var(t.var), t.coef);
  }
  for (const RawConstraint& rc : constraints) {
    LinExpr e;
    double rhs = rc.rhs;
    for (const ParsedTerm& t : rc.lhs) {
      if (t.var.empty()) rhs -= t.coef;
      else e.add_term(var(t.var), t.coef);
    }
    model.add_constraint(std::move(e), rc.sense, rhs, rc.name);
  }
  for (const RawBound& rb : bounds) {
    const VarId v = var(rb.var);
    model.var(v).lb = rb.lb;
    model.var(v).ub = rb.ub;
  }
  for (const std::string& name : binaries) {
    const VarId v = var(name);
    model.var(v).type = VarType::Binary;
    model.var(v).lb = std::max(model.var(v).lb, 0.0);
    model.var(v).ub = std::min(model.var(v).ub, 1.0);
  }
  for (const std::string& name : generals) {
    const VarId v = var(name);
    model.var(v).type = VarType::Integer;
  }
  model.set_objective(std::move(obj),
                      maximize ? ObjectiveSense::Maximize : ObjectiveSense::Minimize);
  return model;
}

Model parse_lp_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open LP file: " + path);
  return parse_lp(in);
}

}  // namespace archex::milp
