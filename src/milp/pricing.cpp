#include "milp/pricing.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace archex::milp {

namespace {

class DantzigPricer final : public Pricer {
 public:
  [[nodiscard]] const char* name() const override { return "dantzig"; }
  [[nodiscard]] double score(std::int32_t /*j*/, double dj) const override {
    return std::abs(dj);
  }
};

/// Forrest-Goldfarb devex: reference-framework weights w_j approximating
/// the steepest-edge norms ||B^-1 A_j||^2. All weights start at 1 (the
/// reference framework is the initial nonbasic set); each pivot propagates
/// the entering column's weight through the pivot row, and the framework is
/// reset when weights outgrow the approximation's trust range.
class DevexPricer final : public Pricer {
 public:
  [[nodiscard]] const char* name() const override { return "devex"; }

  void reset(std::size_t total_cols) override {
    weights_.assign(total_cols, 1.0);
  }

  [[nodiscard]] double score(std::int32_t j, double dj) const override {
    return dj * dj / weights_[static_cast<std::size_t>(j)];
  }

  void on_pivot(std::int32_t q, std::int32_t leave, double alpha_q,
                const std::vector<double>& alpha,
                const std::vector<std::int32_t>& alpha_nz) override {
    if (alpha_q == 0.0) return;
    const double wq = weights_[static_cast<std::size_t>(q)];
    const double inv_aq2 = 1.0 / (alpha_q * alpha_q);
    double wmax = 1.0;
    for (const std::int32_t j : alpha_nz) {
      if (j == q) continue;
      const double aj = alpha[static_cast<std::size_t>(j)];
      if (aj == 0.0) continue;
      double& w = weights_[static_cast<std::size_t>(j)];
      w = std::max(w, aj * aj * inv_aq2 * wq);
      wmax = std::max(wmax, w);
    }
    weights_[static_cast<std::size_t>(leave)] = std::max(wq * inv_aq2, 1.0);
    wmax = std::max(wmax, weights_[static_cast<std::size_t>(leave)]);
    if (wmax > kResetThreshold) {
      std::fill(weights_.begin(), weights_.end(), 1.0);
    }
  }

 private:
  static constexpr double kResetThreshold = 1e7;
  std::vector<double> weights_;
};

std::map<std::string, PricerFactory>& registry() {
  static std::map<std::string, PricerFactory> reg = [] {
    std::map<std::string, PricerFactory> r;
    r.emplace("dantzig", [] { return std::make_unique<DantzigPricer>(); });
    r.emplace("devex", [] { return std::make_unique<DevexPricer>(); });
    return r;
  }();
  return reg;
}

}  // namespace

bool register_pricer(const std::string& name, PricerFactory factory) {
  return registry().emplace(name, std::move(factory)).second;
}

std::unique_ptr<Pricer> make_pricer(const std::string& name) {
  const auto& reg = registry();
  const auto it = reg.find(name);
  if (it == reg.end()) return nullptr;
  return it->second();
}

std::vector<std::string> pricer_names() {
  std::vector<std::string> names;
  for (const auto& kv : registry()) names.push_back(kv.first);
  return names;
}

}  // namespace archex::milp
