/// \file checkpoint.hpp
/// Branch & bound checkpoint/resume: serialization of the search state —
/// incumbent, global bound, open-node frontier — so a killed exploration
/// continues instead of restarting.
///
/// The on-disk format is a versioned text file ("archex-bb-checkpoint 2")
/// with every double rendered as a C99 hexfloat (`%a`), so a resumed
/// `num_threads = 1` run reproduces the uninterrupted optimum bit for bit.
/// Files are written to `<path>.tmp` and renamed into place, so a kill
/// during the write never corrupts the previous checkpoint. A fingerprint of
/// the (post-presolve) model guards against resuming into a different
/// problem. Format details in docs/solver.md.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "milp/model.hpp"

namespace archex::milp {

/// One bound tightening along the path from the (reduced-cost-fixed) root.
/// Mirrors the branch & bound's internal node-path entry.
struct BoundDelta {
  std::int32_t col = 0;
  double lb = 0.0, ub = 0.0;
};

/// One open node of the frontier: the subtree it roots is fully described by
/// its bound-change path; `bound` is the parent LP bound (minimize sense) and
/// `retries` the quarantine count carried by the recovery ladder.
struct CheckpointNode {
  double bound = 0.0;
  std::int32_t retries = 0;
  std::vector<BoundDelta> path;
};

/// Everything needed to resume a tree search.
struct CheckpointData {
  std::uint64_t fingerprint = 0;  ///< model_fingerprint of the solved model
  std::int64_t nodes = 0;         ///< nodes explored when the snapshot was taken
  double root_bound = 0.0;        ///< global best bound, minimize sense
  /// Recovery-ladder degradation record: subtrees abandoned so far and the
  /// min (minimize sense) of their parent bounds. Persisted so a resumed run
  /// keeps folding the abandoned bound — without it a resume would report a
  /// clean Optimal over a search that silently skipped subtrees.
  std::int64_t degraded_nodes = 0;
  double degraded_bound = std::numeric_limits<double>::infinity();
  bool has_incumbent = false;
  double incumbent_obj = 0.0;     ///< minimize sense
  std::vector<double> incumbent_x;  ///< reduced (post-presolve) space
  std::vector<CheckpointNode> frontier;
};

/// Order-sensitive FNV-1a hash over the model's dimensions, bounds, types,
/// constraint matrix and objective (names excluded — they are not semantic).
/// Doubles are hashed by bit pattern, so any numeric change is detected.
[[nodiscard]] std::uint64_t model_fingerprint(const Model& model);

/// Writes `data` to `path` atomically (write `<path>.tmp`, fsync, rename).
/// Returns false on any I/O failure; the previous checkpoint, if any,
/// survives untouched.
bool save_checkpoint(const std::string& path, const CheckpointData& data);

/// Reads a checkpoint back. Returns false (leaving `data` unspecified) on a
/// missing file, version mismatch, or any parse error. Callers must still
/// compare `data.fingerprint` against their model before trusting it.
bool load_checkpoint(const std::string& path, CheckpointData& data);

}  // namespace archex::milp
