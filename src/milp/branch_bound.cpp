#include "milp/branch_bound.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <ctime>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "check/certify.hpp"
#include "milp/checkpoint.hpp"
#include "milp/fault.hpp"
#include "milp/presolve.hpp"
#include "obs/metrics.hpp"
#include "obs/node_log.hpp"
#include "obs/trace.hpp"

namespace archex::milp {

namespace {

using Clock = std::chrono::steady_clock;

const double kNan = std::numeric_limits<double>::quiet_NaN();

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Branch variable: fractional integral variable with the best cost-weighted
/// fractionality. Weighting by |objective coefficient| resolves the expensive
/// structural decisions (component selection, edge/contactor choice) before
/// cheap coupling binaries, which tightens the bound much faster on
/// architecture-exploration MILPs. Shared by the sequential dive and the
/// parallel workers so both searches branch identically.
[[nodiscard]] std::int32_t select_branch_var(const std::vector<double>& x,
                                             const std::vector<std::int32_t>& int_vars,
                                             const std::vector<double>& obj_coef,
                                             double int_tol) {
  std::int32_t best = -1;
  double best_score = -1.0;
  for (std::int32_t j : int_vars) {
    const double v = x[static_cast<std::size_t>(j)];
    const double frac = std::abs(v - std::round(v));
    if (frac <= int_tol) continue;
    const double balance = 0.5 - std::abs(frac - 0.5);  // in (0, 0.5]
    const double weight = 1.0 + std::abs(obj_coef[static_cast<std::size_t>(j)]);
    const double score = balance * weight;
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

/// Granularity of the objective: the largest g such that every objective
/// coefficient is an integer multiple of g, provided only *integral*
/// variables carry objective weight. Two integer-feasible objectives then
/// differ by at least g, so the bound-pruning cutoff can be tightened by
/// almost g. Returns 0 when no granularity can be exploited.
double objective_granularity(const Model& m) {
  double g = 0.0;
  for (const Term& t : m.objective().terms()) {
    const Variable& v = m.var(t.var);
    if (!v.is_integral()) return 0.0;
    double a = std::abs(t.coef);
    double b = g;
    // Euclid on reals with a snap tolerance.
    while (b > 1e-7) {
      const double r = std::fmod(a, b);
      a = b;
      b = (r < 1e-7 || b - r < 1e-7) ? 0.0 : r;
    }
    g = a;
    if (g < 1e-6) return 0.0;
  }
  return g;
}

/// Telemetry context for one run of the numerical-recovery ladder.
struct RecoverHooks {
  obs::MetricsRegistry* reg;  ///< never null inside solve_milp
  obs::TraceBuffer* trace;    ///< nullable
  std::int64_t node_id;
};

/// The first two rungs of the bounded numerical-recovery ladder, shared by
/// the sequential dive, the pool workers, and the pre-pool root re-solve:
/// (1) tightened-tolerance refactorization + warm reoptimize, (2) cold
/// primal restart. Returns the first non-NumericalError status; callers
/// escalate further (quarantine/re-enqueue, then abandon) when both fail.
SolveStatus run_recovery_ladder(SimplexSolver& lp, const RecoverHooks& h) {
  h.reg->counter("milp.recover.tighten").add();
  if (h.trace != nullptr) {
    h.trace->emit(obs::EventType::Recover, h.node_id, 0.0,
                  static_cast<std::uint8_t>(obs::RecoverRung::Tighten));
  }
  SolveStatus st = SolveStatus::NumericalError;
  try {
    st = lp.recover_resolve();
  } catch (const std::bad_alloc&) {
    st = SolveStatus::NumericalError;
  }
  if (st != SolveStatus::NumericalError) return st;

  h.reg->counter("milp.recover.cold").add();
  if (h.trace != nullptr) {
    h.trace->emit(obs::EventType::Recover, h.node_id, 0.0,
                  static_cast<std::uint8_t>(obs::RecoverRung::Cold));
  }
  try {
    st = lp.solve_primal();
  } catch (const std::bad_alloc&) {
    st = SolveStatus::NumericalError;
  }
  return st;
}

/// Search state shared across the DFS.
struct SearchCtx {
  const Model& model;  // reduced model
  const MilpOptions& opts;
  SimplexSolver lp;
  std::vector<std::int32_t> int_vars;  // reduced columns with integrality
  double incumbent_obj = kInf;         // minimize sense
  std::vector<double> incumbent_x;
  bool has_incumbent = false;
  double granularity = 0.0;  ///< objective step size, see objective_granularity
  double root_bound = -kInf;
  std::int64_t nodes = 0;
  Clock::time_point deadline;
  SolveStatus stop_reason = SolveStatus::Optimal;  // set on limit hits
  bool stopped = false;
  bool stop_on_incumbent = false;  ///< first-incumbent probe phase
  double sense_flip = 1.0;
  // Telemetry hooks: null when tracing/logging is off, so the default solve
  // path is untouched (one pointer test per site).
  obs::TraceBuffer* trace = nullptr;  ///< root-phase / sequential buffer
  obs::NodeLogger* logger = nullptr;
  obs::MetricsRegistry* reg = nullptr;  ///< always set by solve_milp
  std::int64_t depth = 0;  ///< recursion depth, the sequential "open" count
  std::int64_t pool_refactors = 0;  ///< refactorizations folded from workers
  std::int64_t pool_transplants = 0;  ///< eta-replay basis loads from workers
  // Recovery-ladder accounting. `degraded_bound` is the min (minimize sense)
  // parent bound over every abandoned subtree: folding it into the final
  // best bound keeps the reported gap sound — an abandoned subtree can hide
  // solutions no better than its parent LP bound, never better.
  std::int64_t degraded_nodes = 0;
  double degraded_bound = kInf;

  SearchCtx(const Model& m, const MilpOptions& o)
      : model(m), opts(o), lp(m, o.lp) {
    for (std::size_t j = 0; j < m.num_vars(); ++j) {
      if (m.vars()[j].is_integral()) int_vars.push_back(static_cast<std::int32_t>(j));
    }
    obj_coef.assign(m.num_vars(), 0.0);
    for (const Term& t : m.objective().terms()) {
      obj_coef[static_cast<std::size_t>(t.var.index)] = std::abs(t.coef);
    }
    sense_flip = m.objective_sense() == ObjectiveSense::Maximize ? -1.0 : 1.0;
  }

  bool try_incumbent(std::vector<double> x, double obj) {
    // Snap integers and validate against the true model.
    for (std::int32_t j : int_vars) x[static_cast<std::size_t>(j)] = std::round(x[j]);
    if (!model.feasible(x, 1e-5)) return false;
    if (obj < incumbent_obj - 1e-12) {
      incumbent_obj = obj;
      incumbent_x = std::move(x);
      has_incumbent = true;
      if (opts.on_incumbent) opts.on_incumbent(sense_flip * obj);
      if (stop_on_incumbent) stopped = true;  // probe phase: unwind to root
      return true;
    }
    return false;
  }

  [[nodiscard]] std::int32_t pick_branch_var(const std::vector<double>& x) const {
    return select_branch_var(x, int_vars, obj_coef, opts.int_tol);
  }

  std::vector<double> obj_coef;  ///< |objective coefficient| per column

  /// Emits NodeClose when tracing; logs a node-log line when one is due.
  /// Called once per solved node, on every dfs exit path past the LP.
  void close_node(std::int64_t node_id, obs::NodeOutcome outcome, double bound) {
    if (trace != nullptr) {
      trace->emit(obs::EventType::NodeClose, node_id, bound,
                  static_cast<std::uint8_t>(outcome));
    }
    if (logger != nullptr && logger->due()) {
      obs::NodeLogger::Line line;
      line.nodes = nodes;
      line.open = depth;
      line.has_incumbent = has_incumbent;
      line.incumbent = sense_flip * incumbent_obj;
      line.best_bound = sense_flip * root_bound;
      line.steals = 0;
      logger->log(line);
    }
  }

  void dfs(double parent_bound) {
    if (stopped) return;
    if (nodes >= opts.max_nodes) {
      stopped = true;
      stop_reason = SolveStatus::NodeLimit;
      return;
    }
    if (Clock::now() >= deadline ||
        (opts.cancel != nullptr &&
         opts.cancel->load(std::memory_order_relaxed))) {
      stopped = true;
      stop_reason = SolveStatus::TimeLimit;
      return;
    }

    // The id this node gets once counted (sequential search, so nodes + 1).
    const std::int64_t node_id = nodes + 1;
    ++depth;
    struct DepthGuard {
      std::int64_t& d;
      ~DepthGuard() { --d; }
    } depth_guard{depth};
    if (trace != nullptr)
      trace->emit(obs::EventType::NodeOpen, node_id, sense_flip * parent_bound);

    SolveStatus st;
    try {
      st = opts.warm_start ? lp.reoptimize_dual() : lp.solve_primal();
      if (st == SolveStatus::Optimal && opts.fault != nullptr &&
          opts.fault->fire(FaultSite::BadAlloc)) {
        throw std::bad_alloc{};
      }
    } catch (const std::bad_alloc&) {
      st = SolveStatus::NumericalError;  // recoverable: enter the ladder
    }
    ++nodes;
    if (st == SolveStatus::NumericalError) {
      st = run_recovery_ladder(lp, {reg, trace, node_id});
      // Sequential quarantine: there is no queue to re-enqueue into, so the
      // bounded retries re-solve in place, cold.
      for (int r = 0; st == SolveStatus::NumericalError &&
                      r < opts.recover_max_retries; ++r) {
        reg->counter("milp.recover.requeue").add();
        if (trace != nullptr) {
          trace->emit(obs::EventType::Recover, node_id, 0.0,
                      static_cast<std::uint8_t>(obs::RecoverRung::Requeue));
        }
        try {
          st = lp.solve_primal();
        } catch (const std::bad_alloc&) {
          st = SolveStatus::NumericalError;
        }
      }
      if (st == SolveStatus::NumericalError) {
        // Ladder exhausted: abandon this subtree, conservatively inheriting
        // the parent bound into the final best bound — never prune unsoundly.
        ++degraded_nodes;
        degraded_bound = std::min(degraded_bound, parent_bound);
        reg->counter("milp.recover.abandoned").add();
        if (trace != nullptr) {
          trace->emit(obs::EventType::Recover, node_id, 0.0,
                      static_cast<std::uint8_t>(obs::RecoverRung::Abandon));
        }
        close_node(node_id, obs::NodeOutcome::Abandoned, sense_flip * parent_bound);
        return;
      }
    }
    if (st == SolveStatus::Infeasible) {
      close_node(node_id, obs::NodeOutcome::Infeasible, kNan);
      return;
    }
    if (st == SolveStatus::Unbounded) {
      // Only possible at the root of an MILP with unbounded relaxation; the
      // caller maps this to an Unbounded result.
      stopped = true;
      stop_reason = SolveStatus::Unbounded;
      close_node(node_id, obs::NodeOutcome::Limit, kNan);
      return;
    }
    if (st != SolveStatus::Optimal) {
      stopped = true;
      stop_reason = st;
      close_node(node_id, obs::NodeOutcome::Limit, kNan);
      return;
    }

    const double obj = lp.objective_value();
    if (has_incumbent) {
      const double cutoff =
          incumbent_obj - std::max({opts.gap_abs, opts.gap_rel * std::abs(incumbent_obj),
                                    granularity - 1e-6});
      if (obj >= cutoff) {  // bound pruning
        close_node(node_id, obs::NodeOutcome::Cutoff, sense_flip * obj);
        return;
      }
    }

    const std::vector<double> x = lp.primal_solution();
    const std::int32_t bv = pick_branch_var(x);
    if (bv < 0) {
      if (try_incumbent(x, obj) && trace != nullptr) {
        trace->emit(obs::EventType::Incumbent, node_id, sense_flip * obj);
      }
      close_node(node_id, obs::NodeOutcome::Integer, sense_flip * obj);
      return;
    }
    close_node(node_id, obs::NodeOutcome::Branched, sense_flip * obj);

    const double v = x[static_cast<std::size_t>(bv)];
    const double lb0 = lp.lower_bound(bv);
    const double ub0 = lp.upper_bound(bv);
    const double down_ub = std::floor(v + opts.int_tol);
    const double up_lb = std::ceil(v - opts.int_tol);

    // Dive toward the nearest integer first; while probing for a first
    // incumbent, lean upward — architecture MILPs are covering-style, and
    // instantiating components reaches feasibility much faster than pruning
    // them.
    const double up_threshold = stop_on_incumbent ? 0.15 : 0.5;
    const bool down_first = (v - std::floor(v)) < up_threshold;
    for (int side = 0; side < 2 && !stopped; ++side) {
      const bool down = (side == 0) == down_first;
      if (down) {
        if (down_ub < lb0 - 1e-12) continue;  // empty child
        lp.set_bounds(bv, lb0, down_ub);
      } else {
        if (up_lb > ub0 + 1e-12) continue;
        lp.set_bounds(bv, up_lb, ub0);
      }
      dfs(obj);
      lp.set_bounds(bv, lb0, ub0);
    }
  }
};

// ---------------------------------------------------------------------------
// Parallel search (num_threads >= 2): explicit open-node pool + N workers.
// ---------------------------------------------------------------------------

/// One bound tightening along the path from the (post-fixing) root. The
/// checkpoint layer serializes exactly this triple, so the pool's node paths
/// are the on-disk frontier representation too.
using BoundChange = BoundDelta;

/// An open branch & bound node: the bound deltas that define its subproblem,
/// the parent's LP objective (a valid lower bound for the whole subtree, used
/// for pre-solve pruning and best-bound stealing), and the parent's exported
/// simplex basis for dual warm starts. Both children of a branching share one
/// basis snapshot.
struct BBNode {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;
  double bound = -kInf;           ///< parent LP objective, minimize sense
  std::int32_t retries = 0;       ///< recovery-ladder quarantine count
  std::vector<BoundChange> path;  ///< from the fixed root
  std::shared_ptr<const SimplexSolver::Basis> basis;  ///< parent basis
};

/// Lock-guarded open-node pool plus the shared incumbent.
///
/// Pop policy is the work-stealing compromise: a worker whose last solved
/// node is the parent of the deque's back continues its own dive (LIFO, keeps
/// the warm-start chain intact, no basis reinstall); otherwise it *steals*
/// the best-bound open node, paying one basis refactorization. The incumbent
/// objective is mirrored into an atomic so the pruning cutoff is readable
/// without the lock.
class NodePool {
 public:
  NodePool(const Model& model, const MilpOptions& opts, double granularity,
           const std::vector<std::int32_t>& int_vars, double sense_flip,
           int num_workers)
      : model_(model), opts_(opts), granularity_(granularity),
        int_vars_(int_vars), sense_flip_(sense_flip),
        queues_(static_cast<std::size_t>(num_workers)),
        inflight_bound_(static_cast<std::size_t>(num_workers), kInf),
        inflight_node_(static_cast<std::size_t>(num_workers)) {}

  /// Seeds the incumbent from the sequential root phase.
  void seed_incumbent(double obj, std::vector<double> x) {
    incumbent_obj_.store(obj, std::memory_order_relaxed);
    incumbent_x_ = std::move(x);
    has_incumbent_ = obj < kInf;
  }

  /// Appends a node to `worker`'s own deque. Sleeping peers are only woken
  /// when someone is actually waiting, so an uncontested dive (push two
  /// children, immediately pop one back) stays wakeup-free.
  void push(int worker, std::shared_ptr<BBNode> node) {
    bool wake;
    {
      std::lock_guard<std::mutex> lk(mu_);
      node->id = ++next_id_;
      queues_[static_cast<std::size_t>(worker)].push_back(std::move(node));
      ++queued_;
      wake = waiters_ > 0;
    }
    if (wake) cv_.notify_one();
  }

  /// Blocks until a node is available, the tree is exhausted, or a stop was
  /// requested. Returns nullptr on termination. The caller's own deque is
  /// popped LIFO (continuing its dive); when it is empty, the front — oldest,
  /// closest to the root, so typically the best bound and the largest
  /// subtree — of the most promising peer deque is stolen instead. `stole`
  /// reports the victim worker id (-1 for an own-deque pop).
  std::shared_ptr<BBNode> pop(int worker, int& stole_from) {
    std::unique_lock<std::mutex> lk(mu_);
    ++waiters_;
    cv_.wait(lk, [&] {
      return stop_.load(std::memory_order_relaxed) || queued_ > 0 || in_flight_ == 0;
    });
    --waiters_;
    if (stop_.load(std::memory_order_relaxed) || queued_ == 0) {
      lk.unlock();
      cv_.notify_all();  // release any peer still waiting
      return nullptr;
    }
    std::shared_ptr<BBNode> node;
    auto& own = queues_[static_cast<std::size_t>(worker)];
    if (!own.empty()) {
      stole_from = -1;
      node = std::move(own.back());
      own.pop_back();
    } else {
      std::size_t victim = queues_.size();
      for (std::size_t v = 0; v < queues_.size(); ++v) {
        if (queues_[v].empty()) continue;
        if (victim == queues_.size() ||
            queues_[v].front()->bound < queues_[victim].front()->bound) {
          victim = v;
        }
      }
      stole_from = static_cast<int>(victim);
      ++steals_;
      node = std::move(queues_[victim].front());
      queues_[victim].pop_front();
    }
    --queued_;
    ++in_flight_;
    inflight_bound_[static_cast<std::size_t>(worker)] = node->bound;
    // Keep the in-flight node reachable for checkpoint snapshots: a snapshot
    // taken mid-process must include it, or the subtree it roots would be
    // silently lost on resume.
    inflight_node_[static_cast<std::size_t>(worker)] = node;
    return node;
  }

  /// Marks the caller's current node finished; wakes waiters when the last
  /// in-flight node drains with empty deques (termination detection).
  void done(int worker) {
    bool finished;
    {
      std::lock_guard<std::mutex> lk(mu_);
      inflight_bound_[static_cast<std::size_t>(worker)] = kInf;
      inflight_node_[static_cast<std::size_t>(worker)].reset();
      --in_flight_;
      finished = queued_ == 0 && in_flight_ == 0;
    }
    if (finished) cv_.notify_all();
  }

  void request_stop(SolveStatus reason) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!stop_.load(std::memory_order_relaxed)) {
        stop_.store(true, std::memory_order_relaxed);
        stop_reason_ = reason;
      }
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool stopped() const { return stop_.load(std::memory_order_relaxed); }
  [[nodiscard]] SolveStatus stop_reason() const {
    return stop_reason_;  // read after join: workers are quiescent
  }

  /// Current incumbent objective (minimize sense, kInf if none). Lock-free.
  [[nodiscard]] double incumbent() const {
    return incumbent_obj_.load(std::memory_order_relaxed);
  }

  /// Bound-pruning cutoff against the current incumbent (kInf if none).
  [[nodiscard]] double cutoff() const {
    const double inc = incumbent();
    if (inc >= kInf) return kInf;
    return inc - std::max({opts_.gap_abs, opts_.gap_rel * std::abs(inc),
                           granularity_ - 1e-6});
  }

  /// Integer-snap, validate against the true model, and install if better.
  /// Returns true when the incumbent improved (callers emit trace events).
  bool try_incumbent(std::vector<double> x, double obj) {
    for (std::int32_t j : int_vars_) {
      x[static_cast<std::size_t>(j)] = std::round(x[static_cast<std::size_t>(j)]);
    }
    if (!model_.feasible(x, 1e-5)) return false;
    std::lock_guard<std::mutex> lk(incumbent_mu_);
    if (obj < incumbent_obj_.load(std::memory_order_relaxed) - 1e-12) {
      incumbent_obj_.store(obj, std::memory_order_relaxed);
      incumbent_x_ = std::move(x);
      has_incumbent_ = true;
      if (opts_.on_incumbent) opts_.on_incumbent(sense_flip_ * obj);
      return true;
    }
    return false;
  }

  /// Atomically counts one solved node against the global budget; returns
  /// false when the budget is already spent (caller requests NodeLimit).
  [[nodiscard]] bool count_node() {
    return nodes_.fetch_add(1, std::memory_order_relaxed) < max_pool_nodes_;
  }
  void set_node_budget(std::int64_t n) { max_pool_nodes_ = n; }
  [[nodiscard]] std::int64_t nodes() const {
    return nodes_.load(std::memory_order_relaxed);
  }

  // Read after join (workers quiescent).
  [[nodiscard]] bool has_incumbent() const { return has_incumbent_; }
  [[nodiscard]] std::vector<double>& incumbent_x() { return incumbent_x_; }

  [[nodiscard]] double sense_flip() const { return sense_flip_; }

  /// Continues the trace node-id sequence after the sequential root phase,
  /// so pool node ids never collide with root/probe ids.
  void set_next_id(std::uint64_t n) { next_id_ = n; }
  /// Nodes already charged by the root phase (node-log display only).
  void set_base_nodes(std::int64_t n) { base_nodes_ = n; }
  /// Initial global lower bound (minimize sense), for Bound-event deltas.
  void set_root_bound(double b) { best_known_bound_ = b; }

  /// Records one subtree abandoned by the recovery ladder. The bound is
  /// folded into the final best bound by run_parallel_phase.
  void mark_abandoned(double bound) {
    std::lock_guard<std::mutex> lk(mu_);
    ++degraded_nodes_;
    degraded_bound_ = std::min(degraded_bound_, bound);
  }
  /// Seeds the degradation record accumulated before this pool phase (root
  /// probe dives, a resumed checkpoint), so checkpoint snapshots and the
  /// fold-back after join carry it forward. Called before workers start.
  void seed_degraded(std::int64_t nodes, double bound) {
    degraded_nodes_ = nodes;
    degraded_bound_ = bound;
  }
  // Read after join (workers quiescent).
  [[nodiscard]] std::int64_t degraded_nodes() const { return degraded_nodes_; }
  [[nodiscard]] double degraded_bound() const { return degraded_bound_; }

  /// Arms periodic checkpointing (empty file = off).
  void configure_checkpoint(const std::string& file, double interval_s,
                            std::uint64_t fingerprint,
                            obs::MetricsRegistry* reg) {
    ck_file_ = file;
    ck_fingerprint_ = fingerprint;
    ck_reg_ = reg;
    ck_epoch_ = Clock::now();
    ck_interval_ns_ = interval_s <= 0.0
                          ? 0
                          : static_cast<std::int64_t>(interval_s * 1e9);
    ck_next_ns_.store(ck_interval_ns_, std::memory_order_relaxed);
  }

  /// Re-enqueues a node a worker popped but could not process (stop already
  /// requested, deadline, node budget, or its LP cut short by a time or
  /// iteration limit). Only meaningful under checkpointing:
  /// without it the node's subtree would be missing from the frontier the
  /// final checkpoint records, and a resume would silently lose it. No-op
  /// when checkpointing is off (the pool is torn down anyway).
  void keep_for_checkpoint(int worker, const BBNode& node) {
    if (ck_file_.empty()) return;
    auto copy = std::make_shared<BBNode>(node);
    std::lock_guard<std::mutex> lk(mu_);
    copy->id = ++next_id_;
    queues_[static_cast<std::size_t>(worker)].push_back(std::move(copy));
    ++queued_;
  }

  /// Writes a checkpoint when one is due. Called by workers between nodes;
  /// an atomic exchange elects a single writer, and the snapshot is taken
  /// under the pool lock but written outside it.
  void maybe_checkpoint(obs::TraceBuffer* trace) {
    if (ck_file_.empty()) return;
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             ck_epoch_)
            .count();
    if (now_ns < ck_next_ns_.load(std::memory_order_relaxed)) return;
    if (ck_writing_.exchange(true, std::memory_order_acquire)) return;
    if (now_ns >= ck_next_ns_.load(std::memory_order_relaxed)) {
      write_checkpoint(trace);
      ck_next_ns_.store(now_ns + ck_interval_ns_, std::memory_order_relaxed);
    }
    ck_writing_.store(false, std::memory_order_release);
  }

  /// Unconditional checkpoint after the workers joined, so interrupted
  /// (node/time-limited) solves resume from their final frontier and
  /// completed solves leave an empty frontier that resumes trivially.
  void write_final_checkpoint(obs::TraceBuffer* trace) {
    if (ck_file_.empty()) return;
    write_checkpoint(trace);
  }

  /// Emits one node-log line from the pool's current state, and a Bound
  /// trace event when the global best-bound estimate improved. The estimate
  /// is min over open-node parent bounds and in-flight node bounds — an
  /// estimate, because a worker's in-flight LP may already have lifted its
  /// node's bound. Called by whichever worker finds the logger due; the
  /// pool lock makes the snapshot consistent.
  void log_line(obs::NodeLogger* logger, obs::TraceBuffer* trace) {
    obs::NodeLogger::Line line;
    double est = kInf;
    {
      std::lock_guard<std::mutex> lk(mu_);
      line.nodes = base_nodes_ + nodes_.load(std::memory_order_relaxed);
      line.open = queued_;
      line.steals = steals_;
      for (const auto& q : queues_) {
        if (!q.empty()) est = std::min(est, q.front()->bound);
      }
      for (double b : inflight_bound_) est = std::min(est, b);
      if (est < kInf && est > best_known_bound_ + 1e-9) {
        best_known_bound_ = est;
        if (trace != nullptr)
          trace->emit(obs::EventType::Bound, -1, sense_flip_ * est);
      }
      if (est >= kInf) est = best_known_bound_;
    }
    const double inc = incumbent();
    line.has_incumbent = inc < kInf;
    line.incumbent = sense_flip_ * inc;
    line.best_bound = sense_flip_ * est;
    if (logger != nullptr) logger->log(line);
  }

 private:
  /// Consistent copy of the resumable search state: frontier (queued plus
  /// in-flight nodes) under the pool lock, incumbent under its own lock.
  /// An in-flight node that already pushed its children may be captured
  /// together with them — the duplicated subtree costs re-exploration on
  /// resume but never correctness (same cutoffs, same incumbent checks).
  CheckpointData snapshot() {
    CheckpointData d;
    d.fingerprint = ck_fingerprint_;
    {
      std::lock_guard<std::mutex> lk(mu_);
      d.nodes = base_nodes_ + nodes_.load(std::memory_order_relaxed);
      d.root_bound = best_known_bound_;
      d.degraded_nodes = degraded_nodes_;
      d.degraded_bound = degraded_bound_;
      for (const auto& q : queues_) {
        for (const auto& n : q) d.frontier.push_back({n->bound, n->retries, n->path});
      }
      for (const auto& n : inflight_node_) {
        if (n) d.frontier.push_back({n->bound, n->retries, n->path});
      }
    }
    {
      std::lock_guard<std::mutex> lk(incumbent_mu_);
      d.has_incumbent = has_incumbent_;
      if (has_incumbent_) {
        d.incumbent_obj = incumbent_obj_.load(std::memory_order_relaxed);
        d.incumbent_x = incumbent_x_;
      }
    }
    return d;
  }

  void write_checkpoint(obs::TraceBuffer* trace) {
    const CheckpointData d = snapshot();
    const bool ok = save_checkpoint(ck_file_, d);
    if (ck_reg_ != nullptr) {
      ck_reg_->counter(ok ? "milp.checkpoint.writes"
                          : "milp.checkpoint.write_failures").add();
      ck_reg_->gauge("milp.checkpoint.frontier")
          .set(static_cast<double>(d.frontier.size()));
    }
    if (trace != nullptr) {
      trace->emit(obs::EventType::Checkpoint, -1,
                  static_cast<double>(d.frontier.size()));
    }
  }

  const Model& model_;
  const MilpOptions& opts_;
  const double granularity_;
  const std::vector<std::int32_t>& int_vars_;
  const double sense_flip_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<std::shared_ptr<BBNode>>> queues_;  ///< one per worker
  std::int64_t queued_ = 0;  ///< total nodes across all deques
  int in_flight_ = 0;
  int waiters_ = 0;
  std::uint64_t next_id_ = 0;
  std::atomic<bool> stop_{false};
  SolveStatus stop_reason_ = SolveStatus::Optimal;

  std::mutex incumbent_mu_;
  std::atomic<double> incumbent_obj_{kInf};
  std::vector<double> incumbent_x_;
  bool has_incumbent_ = false;

  std::atomic<std::int64_t> nodes_{0};
  std::int64_t max_pool_nodes_ = std::numeric_limits<std::int64_t>::max();

  // Telemetry (all under mu_ except base_nodes_, set before workers start).
  std::vector<double> inflight_bound_;  ///< bound of each worker's node, kInf idle
  std::vector<std::shared_ptr<BBNode>> inflight_node_;  ///< under mu_; for snapshots
  std::int64_t steals_ = 0;
  std::int64_t base_nodes_ = 0;
  double best_known_bound_ = -kInf;

  // Recovery-ladder accounting (under mu_).
  std::int64_t degraded_nodes_ = 0;
  double degraded_bound_ = kInf;

  // Checkpointing (configured before workers start; due-time and the
  // single-writer election are atomics so workers race without the lock).
  std::string ck_file_;
  std::uint64_t ck_fingerprint_ = 0;
  obs::MetricsRegistry* ck_reg_ = nullptr;
  Clock::time_point ck_epoch_{};
  std::int64_t ck_interval_ns_ = 0;
  std::atomic<std::int64_t> ck_next_ns_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<bool> ck_writing_{false};
};

/// A worker thread of the parallel search: private SimplexSolver, dive-local
/// bookkeeping, and per-worker statistics.
class Worker {
 public:
  /// Each worker's SimplexSolver gets a private copy of the LP options with
  /// its *own* trace and span buffers, keeping every buffer single-writer.
  static SimplexOptions worker_lp_options(SimplexOptions lp,
                                          obs::TraceBuffer* trace,
                                          obs::SpanBuffer* spans) {
    lp.trace = (trace != nullptr && trace->enabled()) ? trace : nullptr;
    lp.spans = (spans != nullptr && spans->enabled()) ? spans : nullptr;
    return lp;
  }

  Worker(int id, const Model& model, const MilpOptions& opts, NodePool& pool,
         const std::vector<std::int32_t>& int_vars,
         const std::vector<double>& obj_coef,
         const std::vector<BoundChange>& root_fixes, Clock::time_point deadline,
         obs::TraceBuffer* trace, obs::SpanBuffer* spans, obs::NodeLogger* logger,
         obs::MetricsRegistry* reg)
      : id_(id), opts_(opts), pool_(pool), int_vars_(int_vars),
        obj_coef_(obj_coef), deadline_(deadline),
        trace_((trace != nullptr && trace->enabled()) ? trace : nullptr),
        logger_((logger != nullptr && logger->enabled()) ? logger : nullptr),
        reg_(reg), lp_(model, worker_lp_options(opts.lp, trace, spans)) {
    // Replay the root reduced-cost fixes so this solver's "root" bounds match
    // the pool's reference frame.
    for (const BoundChange& f : root_fixes) lp_.set_bounds(f.col, f.lb, f.ub);
    for (std::size_t j = 0; j < model.num_vars(); ++j) {
      root_lb_.push_back(lp_.lower_bound(static_cast<std::int32_t>(j)));
      root_ub_.push_back(lp_.upper_bound(static_cast<std::int32_t>(j)));
    }
  }

  /// CPU time consumed by the calling thread (waits in pop() don't count —
  /// the condition variable sleeps). Falls back to 0 where the POSIX
  /// per-thread clock is unavailable.
  static double thread_cpu_seconds() {
#ifdef CLOCK_THREAD_CPUTIME_ID
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
    }
#endif
    return 0.0;
  }

  void run() {
    const double cpu0 = thread_cpu_seconds();
    int stole_from = -1;
    while (std::shared_ptr<BBNode> node = pool_.pop(id_, stole_from)) {
      if (stole_from >= 0) {
        ++steals_;
        if (trace_ != nullptr) {
          trace_->emit(obs::EventType::Steal, static_cast<std::int64_t>(node->id),
                       static_cast<double>(stole_from));
        }
      }
      process(*node);
      pool_.done(id_);
      pool_.maybe_checkpoint(trace_);
      if (logger_ != nullptr && logger_->due()) pool_.log_line(logger_, trace_);
    }
    busy_seconds_ = thread_cpu_seconds() - cpu0;
  }

  [[nodiscard]] std::int64_t nodes() const { return nodes_; }
  [[nodiscard]] std::int64_t steals() const { return steals_; }
  [[nodiscard]] double busy_seconds() const { return busy_seconds_; }
  [[nodiscard]] std::int64_t iterations() const { return lp_.iterations(); }
  [[nodiscard]] const SimplexSolver::ReoptStats& reopt_stats() const {
    return lp_.reopt_stats();
  }

 private:
  /// Installs `node`'s subproblem in the private solver. A dive continuation
  /// (the node's parent is the basis already held) applies only the newest
  /// bound delta; a stolen node rewinds to root bounds, replays the node's
  /// path, and transplants the parent basis.
  void rebase(const BBNode& node) {
    if (node.parent_id == held_id_ && node.path.size() == cur_path_.size() + 1) {
      const BoundChange& d = node.path.back();
      lp_.set_bounds(d.col, d.lb, d.ub);
      cur_path_.push_back(d);
    } else {
      for (const BoundChange& d : cur_path_) {
        lp_.set_bounds(d.col, root_lb_[static_cast<std::size_t>(d.col)],
                       root_ub_[static_cast<std::size_t>(d.col)]);
      }
      cur_path_ = node.path;
      for (const BoundChange& d : cur_path_) lp_.set_bounds(d.col, d.lb, d.ub);
      if (node.basis) {
        lp_.load_basis(*node.basis);  // on failure reoptimize_dual cold-starts
      }
    }
    held_id_ = node.id;
  }

  void close(std::int64_t node_id, obs::NodeOutcome outcome, double bound) {
    if (trace_ != nullptr) {
      trace_->emit(obs::EventType::NodeClose, node_id, bound,
                   static_cast<std::uint8_t>(outcome));
    }
  }

  void process(const BBNode& node) {
    const auto nid = static_cast<std::int64_t>(node.id);
    const double flip = pool_.sense_flip();
    if (opts_.fault != nullptr && opts_.fault->fire(FaultSite::WorkerStall)) {
      // Injected stall: models a worker losing its timeslice mid-search, so
      // tests can exercise steal/termination behaviour under skew.
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    if (trace_ != nullptr)
      trace_->emit(obs::EventType::NodeOpen, nid, flip * node.bound);
    if (pool_.stopped()) {
      pool_.keep_for_checkpoint(id_, node);
      close(nid, obs::NodeOutcome::Limit, kNan);
      return;
    }
    const double cut = pool_.cutoff();
    if (node.bound >= cut) {  // pruned by a newer incumbent, no LP
      close(nid, obs::NodeOutcome::Pruned, flip * node.bound);
      return;
    }
    if (Clock::now() >= deadline_ ||
        (opts_.cancel != nullptr &&
         opts_.cancel->load(std::memory_order_relaxed))) {
      // Expired budget and cooperative cancel stop identically: the node is
      // parked for the final checkpoint so a drain leaves a resumable file.
      pool_.request_stop(SolveStatus::TimeLimit);
      pool_.keep_for_checkpoint(id_, node);
      close(nid, obs::NodeOutcome::Limit, kNan);
      return;
    }
    if (!pool_.count_node()) {
      pool_.request_stop(SolveStatus::NodeLimit);
      pool_.keep_for_checkpoint(id_, node);
      close(nid, obs::NodeOutcome::Limit, kNan);
      return;
    }

    rebase(node);
    ++nodes_;
    SolveStatus st = SolveStatus::NumericalError;
    try {
      st = opts_.warm_start ? lp_.reoptimize_dual() : lp_.solve_primal();
      if (st == SolveStatus::Optimal && opts_.fault != nullptr &&
          opts_.fault->fire(FaultSite::BadAlloc)) {
        throw std::bad_alloc{};
      }
    } catch (const std::bad_alloc&) {
      st = SolveStatus::NumericalError;  // enter the ladder below
    }
    if (st == SolveStatus::NumericalError) {
      st = run_recovery_ladder(lp_, {reg_, trace_, nid});
    }
    if (st == SolveStatus::NumericalError) {
      // Both in-place rungs failed. Quarantine: re-enqueue the node for a
      // bounded number of fresh cold attempts (possibly on another worker's
      // solver, whose numerical state differs), then abandon the subtree —
      // its parent bound is folded into the global bound, never pruned away.
      if (node.retries < opts_.recover_max_retries) {
        auto retry = std::make_shared<BBNode>(node);
        retry->basis.reset();  // force a cold start on the next attempt
        retry->retries = node.retries + 1;
        if (reg_ != nullptr) reg_->counter("milp.recover.requeue").add();
        if (trace_ != nullptr) {
          trace_->emit(obs::EventType::Recover, nid, 0.0,
                       static_cast<std::uint8_t>(obs::RecoverRung::Requeue));
        }
        close(nid, obs::NodeOutcome::Requeued, flip * node.bound);
        pool_.push(id_, std::move(retry));
        return;
      }
      pool_.mark_abandoned(node.bound);
      if (reg_ != nullptr) reg_->counter("milp.recover.abandoned").add();
      if (trace_ != nullptr) {
        trace_->emit(obs::EventType::Recover, nid, 0.0,
                     static_cast<std::uint8_t>(obs::RecoverRung::Abandon));
      }
      close(nid, obs::NodeOutcome::Abandoned, flip * node.bound);
      return;
    }
    if (st == SolveStatus::Infeasible) {
      close(nid, obs::NodeOutcome::Infeasible, kNan);
      return;
    }
    if (st != SolveStatus::Optimal) {
      // Time/iteration limits surface here; Unbounded cannot, because bounds
      // only ever tighten below the (bounded) root relaxation. The node was
      // not branched, so (like the pre-LP deadline/budget exits above) it
      // must survive into the final checkpoint or its subtree would be
      // silently absent from a resumed search.
      pool_.request_stop(st);
      pool_.keep_for_checkpoint(id_, node);
      close(nid, obs::NodeOutcome::Limit, kNan);
      return;
    }

    const double obj = lp_.objective_value();
    if (obj >= pool_.cutoff()) {  // bound pruning
      close(nid, obs::NodeOutcome::Cutoff, flip * obj);
      return;
    }

    const std::vector<double> x = lp_.primal_solution();
    const std::int32_t bv = select_branch_var(x, int_vars_, obj_coef_, opts_.int_tol);
    if (bv < 0) {
      if (pool_.try_incumbent(x, obj) && trace_ != nullptr) {
        trace_->emit(obs::EventType::Incumbent, nid, flip * obj);
      }
      close(nid, obs::NodeOutcome::Integer, flip * obj);
      return;
    }
    close(nid, obs::NodeOutcome::Branched, flip * obj);

    const double v = x[static_cast<std::size_t>(bv)];
    const double lb0 = lp_.lower_bound(bv);
    const double ub0 = lp_.upper_bound(bv);
    const double down_ub = std::floor(v + opts_.int_tol);
    const double up_lb = std::ceil(v - opts_.int_tol);
    const bool down_first = (v - std::floor(v)) < 0.5;

    std::shared_ptr<const SimplexSolver::Basis> basis;
    if (opts_.warm_start) {
      basis = std::make_shared<const SimplexSolver::Basis>(lp_.export_basis());
    }
    auto make_child = [&](double clb, double cub) {
      auto child = std::make_shared<BBNode>();
      child->parent_id = node.id;
      child->bound = obj;
      child->path = cur_path_;
      child->path.push_back({bv, clb, cub});
      child->basis = basis;
      return child;
    };
    const bool down_ok = down_ub >= lb0 - 1e-12;
    const bool up_ok = up_lb <= ub0 + 1e-12;
    // Push the dive-preferred child last: the LIFO pop continues this
    // worker's dive with it, while the sibling is exposed for stealing.
    if (down_first) {
      if (up_ok) pool_.push(id_, make_child(up_lb, ub0));
      if (down_ok) pool_.push(id_, make_child(lb0, down_ub));
    } else {
      if (down_ok) pool_.push(id_, make_child(lb0, down_ub));
      if (up_ok) pool_.push(id_, make_child(up_lb, ub0));
    }
  }

  const int id_;
  const MilpOptions& opts_;
  NodePool& pool_;
  const std::vector<std::int32_t>& int_vars_;
  const std::vector<double>& obj_coef_;
  const Clock::time_point deadline_;
  obs::TraceBuffer* trace_;
  obs::NodeLogger* logger_;
  obs::MetricsRegistry* reg_;
  SimplexSolver lp_;
  std::vector<double> root_lb_, root_ub_;
  std::vector<BoundChange> cur_path_;
  std::uint64_t held_id_ = 0;  ///< node whose basis the solver holds
  std::int64_t nodes_ = 0;
  std::int64_t steals_ = 0;
  double busy_seconds_ = 0.0;
};

/// Runs the pool phase: seeds the root node from `ctx` (whose solver holds a
/// re-solved optimal basis for the post-fixing root), spawns `threads`
/// workers (the calling thread acts as worker 0), joins, and folds the
/// results back into `ctx` so the sequential epilogue of solve_milp applies
/// unchanged.
void run_parallel_phase(SearchCtx& ctx, const Model& work, int threads,
                        Solution& sol, std::vector<obs::TraceBuffer>& buffers,
                        obs::MetricsRegistry* reg, std::uint64_t ck_fingerprint,
                        bool root_basis_ok, const CheckpointData* resume) {
  NodePool pool(work, ctx.opts, ctx.granularity, ctx.int_vars, ctx.sense_flip,
                threads);
  if (!ctx.opts.checkpoint_file.empty()) {
    pool.configure_checkpoint(ctx.opts.checkpoint_file,
                              ctx.opts.checkpoint_interval_s, ck_fingerprint,
                              reg);
  }
  if (ctx.has_incumbent) pool.seed_incumbent(ctx.incumbent_obj, ctx.incumbent_x);
  // ctx already folded any resumed checkpoint's degradation record; seeding
  // it here keeps abandoned-subtree accounting in this pool's snapshots.
  pool.seed_degraded(ctx.degraded_nodes, ctx.degraded_bound);
  // Nodes charged by a resumed run count against max_nodes too, so the
  // budget continues across a kill/resume instead of restarting.
  pool.set_node_budget(ctx.opts.max_nodes -
                       (resume != nullptr ? std::max(ctx.nodes, resume->nodes)
                                          : ctx.nodes));
  if (resume != nullptr) {
    // Resumed search: node ids continue past both the checkpointed count and
    // this run's root-phase nodes; totals restart from the checkpoint.
    pool.set_next_id(static_cast<std::uint64_t>(
        std::max(ctx.nodes, resume->nodes)));
    pool.set_base_nodes(resume->nodes);
    pool.set_root_bound(resume->root_bound);
  } else {
    // Trace node ids continue the root phase's sequence; node-log totals
    // include the root-phase nodes.
    pool.set_next_id(static_cast<std::uint64_t>(ctx.nodes));
    pool.set_base_nodes(ctx.nodes);
    pool.set_root_bound(root_basis_ok ? ctx.lp.objective_value()
                                      : ctx.root_bound);
  }

  // Reference frame: the root solver's current bounds already include the
  // reduced-cost fixes, so workers replay them and node paths stay relative
  // to the fixed root.
  std::vector<BoundChange> root_fixes;
  for (std::size_t j = 0; j < work.num_vars(); ++j) {
    const auto col = static_cast<std::int32_t>(j);
    const double lb = ctx.lp.lower_bound(col);
    const double ub = ctx.lp.upper_bound(col);
    if (lb != work.vars()[j].lb || ub != work.vars()[j].ub) {
      root_fixes.push_back({col, lb, ub});
    }
  }

  if (resume != nullptr) {
    // Re-enqueue the checkpointed frontier on worker 0 (steals rebalance it).
    // No basis snapshots survive serialization: every resumed node cold-starts
    // (reoptimize_dual falls back to solve_primal when no basis is held).
    for (const CheckpointNode& cn : resume->frontier) {
      auto n = std::make_shared<BBNode>();
      n->bound = cn.bound;
      n->retries = cn.retries;
      n->path = cn.path;
      pool.push(0, std::move(n));
    }
  } else {
    auto root = std::make_shared<BBNode>();
    root->bound = root_basis_ok ? ctx.lp.objective_value() : ctx.root_bound;
    if (ctx.opts.warm_start && root_basis_ok) {
      root->basis =
          std::make_shared<const SimplexSolver::Basis>(ctx.lp.export_basis());
    }
    pool.push(0, std::move(root));
  }

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    obs::TraceBuffer* buf =
        buffers.empty() ? nullptr : &buffers[static_cast<std::size_t>(t)];
    // Each worker writes its own span buffer (worker 0 is the calling
    // thread, which is also the profiler's buffer-0 owner — same thread,
    // single-writer holds).
    obs::SpanBuffer* spans =
        ctx.opts.profiler != nullptr ? ctx.opts.profiler->buffer(t) : nullptr;
    workers.push_back(std::make_unique<Worker>(t, work, ctx.opts, pool,
                                               ctx.int_vars, ctx.obj_coef,
                                               root_fixes, ctx.deadline, buf,
                                               spans, ctx.logger, reg));
  }
  std::vector<std::thread> pool_threads;
  pool_threads.reserve(workers.size() - 1);
  for (std::size_t t = 1; t < workers.size(); ++t) {
    pool_threads.emplace_back([&w = *workers[t]] { w.run(); });
  }
  workers[0]->run();
  for (std::thread& th : pool_threads) th.join();

  // Final snapshot after all workers drained: an interrupted run's last
  // checkpoint then carries the exact surviving frontier, and a finished
  // run's carries an empty one (resume returns the incumbent immediately).
  pool.write_final_checkpoint(buffers.empty() ? nullptr : &buffers[0]);

  // Fold results back into the sequential context. Node counts come from the
  // workers (the pool's atomic budget counter can overshoot by one racing
  // increment per worker at the node limit).
  if (resume != nullptr) ctx.nodes = resume->nodes;
  for (const auto& w : workers) ctx.nodes += w->nodes();
  // The pool was seeded with ctx's pre-phase record, so its counters are the
  // totals — assign, don't accumulate.
  ctx.degraded_nodes = pool.degraded_nodes();
  ctx.degraded_bound = pool.degraded_bound();
  if (pool.stopped()) {
    ctx.stopped = true;
    ctx.stop_reason = pool.stop_reason();
  }
  if (pool.has_incumbent()) {
    ctx.has_incumbent = true;
    ctx.incumbent_obj = pool.incumbent();
    ctx.incumbent_x = std::move(pool.incumbent_x());
  }

  sol.threads_used = threads;
  sol.nodes_per_worker.resize(workers.size());
  for (std::size_t t = 0; t < workers.size(); ++t) {
    const Worker& w = *workers[t];
    sol.nodes_per_worker[t] = w.nodes();
    sol.steals += w.steals();
    sol.cpu_seconds += w.busy_seconds();
    sol.simplex_iterations += w.iterations();
    sol.warm_dual_nodes += w.reopt_stats().dual_fast;
    sol.warm_repair_nodes += w.reopt_stats().repaired;
    sol.cold_nodes += w.reopt_stats().cold;
    ctx.pool_refactors += w.reopt_stats().refactors;
    ctx.pool_transplants += w.reopt_stats().transplants;
  }
}

}  // namespace

Solution solve_milp(const Model& model, const MilpOptions& options) {
  const auto t0 = Clock::now();
  Solution sol;

  // --- telemetry setup (all optional; null/disabled hooks cost nothing) ---
  const int threads_req = resolve_threads(options.num_threads);
  obs::MetricsRegistry local_registry;
  obs::MetricsRegistry* reg = options.metrics != nullptr ? options.metrics
                                                         : &local_registry;
  std::vector<obs::TraceBuffer> buffers;
  if (options.trace) {
    buffers.resize(static_cast<std::size_t>(std::max(threads_req, 1)));
    for (std::size_t t = 0; t < buffers.size(); ++t) {
      buffers[t].init(static_cast<std::int32_t>(t), options.trace_capacity, t0);
    }
    buffers[0].emit(obs::EventType::SolveStart, -1,
                    static_cast<double>(threads_req));
  }
  obs::TraceBuffer* root_trace = buffers.empty() ? nullptr : &buffers[0];
  // Span profiling: buffer 0 is the calling thread's (phases + the
  // root/sequential solver's kernel spans); workers get their own buffers,
  // armed here, before any thread spawns.
  obs::SpanProfiler* const profiler = options.profiler;
  if (profiler != nullptr) profiler->arm_workers(std::max(threads_req, 1));
  obs::SpanBuffer* const root_spans =
      profiler != nullptr ? profiler->buffer(0) : nullptr;
  obs::NodeLogger logger(options.log_interval, options.log_sink, t0);
  auto phase_mark = [&](obs::Phase p) {
    if (root_trace != nullptr) {
      root_trace->emit(obs::EventType::Phase, -1, 0.0,
                       static_cast<std::uint8_t>(p));
    }
  };
  // Final bookkeeping, shared by every return path. Expects `solve_seconds`
  // (and the threads==1 cpu_seconds mirror) to be set already — finish()
  // must not move the clock, callers pin cpu_seconds == solve_seconds.
  auto finish = [&](Solution& s) {
    s.term_reason = term_reason_from(s.status);
    reg->counter("milp.nodes").add(s.nodes_explored);
    reg->counter("milp.simplex_iterations").add(s.simplex_iterations);
    reg->counter("milp.steals").add(s.steals);
    reg->counter("milp.warm_dual").add(s.warm_dual_nodes);
    reg->counter("milp.warm_repair").add(s.warm_repair_nodes);
    reg->counter("milp.cold_restarts").add(s.cold_nodes);
    reg->gauge("milp.threads").set(static_cast<double>(s.threads_used));
    if (s.degraded_nodes > 0) {
      reg->gauge("milp.degraded_nodes")
          .set(static_cast<double>(s.degraded_nodes));
    }
    if (s.has_incumbent) {
      reg->gauge("milp.objective").set(s.objective);
      reg->gauge("milp.gap_abs").set(std::abs(s.objective - s.best_bound));
    }
    if (!buffers.empty()) {
      buffers[0].emit(obs::EventType::SolveEnd, -1,
                      s.has_incumbent ? s.objective : kNan);
      s.trace = obs::merge_buffers(buffers);
      reg->counter("milp.trace_dropped").add(s.trace.dropped);
    }
    if (profiler != nullptr) {
      reg->counter("milp.spans_dropped").add(profiler->take_dropped());
    }
    s.metrics = reg->snapshot();
  };

  // An absolute deadline that already passed (the arch layer arms one per
  // exploration, and a service request may sit in an admission queue past
  // its budget) returns before presolve touches the model: the caller gets
  // TimeLimit with zero nodes, not a presolve bill it can no longer afford.
  // The `time_limit_s <= 0` path is untouched — it still runs the root LP's
  // first poll so nodes_explored stays 1 as it always has.
  if (options.deadline != Clock::time_point::max() &&
      Clock::now() >= options.deadline) {
    sol.status = SolveStatus::TimeLimit;
    sol.solve_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    if (threads_req == 1) sol.cpu_seconds = sol.solve_seconds;
    finish(sol);
    return sol;
  }

  // --- presolve ---
  PresolveResult pre;
  const Model* work = &model;
  if (options.use_presolve) {
    phase_mark(obs::Phase::Presolve);
    obs::ScopedSpan presolve_span(root_spans,
                                  obs::span_id(obs::SpanName::Presolve));
    obs::ScopedTimer presolve_timer(&reg->timer("milp.phase.presolve"),
                                    &sol.phases.presolve);
    pre = presolve(model);
    presolve_timer.stop();
    presolve_span.stop();
    // Caller-space row indices: `model` is the caller's model, so these feed
    // arch-level per-pattern attribution directly.
    sol.presolve_removed_rows = pre.removed_rows;
    reg->counter("milp.presolve.rows_removed").add(
        static_cast<std::int64_t>(pre.rows_removed));
    reg->counter("milp.presolve.vars_fixed").add(
        static_cast<std::int64_t>(pre.vars_fixed));
    reg->counter("milp.presolve.bounds_tightened").add(
        static_cast<std::int64_t>(pre.bounds_tightened));
    reg->counter("milp.presolve.strengthen_tightened").add(
        static_cast<std::int64_t>(pre.strengthen_tightened));
    reg->counter("milp.presolve.strengthen_fixed").add(
        static_cast<std::int64_t>(pre.strengthen_fixed));
    reg->counter("milp.presolve.rhs_strengthened").add(
        static_cast<std::int64_t>(pre.rhs_strengthened));
    if (pre.infeasible) {
      sol.status = SolveStatus::Infeasible;
      sol.solve_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
      finish(sol);
      return sol;
    }
    work = &pre.reduced;
  }

  // --- checkpoint / resume ---
  const bool ck_enabled = !options.checkpoint_file.empty();
  std::uint64_t ck_fp = 0;
  CheckpointData ckdata;
  bool resume_ok = false;
  if (ck_enabled) {
    ck_fp = model_fingerprint(*work);
    if (options.resume) {
      CheckpointData loaded;
      bool ok = load_checkpoint(options.checkpoint_file, loaded);
      if (ok) ok = loaded.fingerprint == ck_fp;
      if (ok && loaded.has_incumbent) {
        // Distrust the file: the vector must fit the reduced model and
        // actually be feasible before it may prune this run's search.
        ok = loaded.incumbent_x.size() == work->num_vars() &&
             work->feasible(loaded.incumbent_x);
      }
      for (std::size_t i = 0; ok && i < loaded.frontier.size(); ++i) {
        for (const BoundDelta& d : loaded.frontier[i].path) {
          if (d.col < 0 ||
              static_cast<std::size_t>(d.col) >= work->num_vars()) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        resume_ok = true;
        ckdata = std::move(loaded);
        reg->gauge("milp.checkpoint.loaded").set(1.0);
        reg->gauge("milp.checkpoint.frontier_loaded")
            .set(static_cast<double>(ckdata.frontier.size()));
      } else {
        // Missing, corrupt, or from a different model: start fresh.
        reg->gauge("milp.checkpoint.rejected").set(1.0);
      }
    }
  }

  // One conversion point for every relative budget (milp/budget.hpp): the
  // preferred `budget` knob and its deprecated `time_limit_s` alias both
  // become absolute deadlines measured from solve entry — the tighter wins.
  // Budget::deadline_from carries the historical clamp rules: <= 0 times out
  // immediately, NaN/+inf (and limits beyond the clock's ~centuries of
  // range) keep the "never" sentinel.
  Clock::time_point deadline =
      Budget::tighter(options.budget, Budget::of_seconds(options.time_limit_s))
          .deadline_from(t0);
  // An absolute caller deadline tightens (never relaxes) the derived one, so
  // the budget remains a per-call cap while `options.deadline` is the
  // end-to-end budget shared across encode/presolve/solve phases.
  deadline = std::min(deadline, options.deadline);
  MilpOptions node_options = options;
  node_options.lp.deadline = deadline;  // simplex loops honor the wall clock
  if (node_options.lp.cancel == nullptr) node_options.lp.cancel = options.cancel;
  node_options.lp.trace = root_trace;   // root/sequential solver's buffer
  if (node_options.lp.spans == nullptr) node_options.lp.spans = root_spans;
  if (node_options.lp.fault == nullptr) node_options.lp.fault = options.fault;
  SearchCtx ctx(*work, node_options);
  ctx.granularity = objective_granularity(*work);
  ctx.deadline = deadline;
  ctx.trace = root_trace;
  ctx.logger = logger.enabled() ? &logger : nullptr;
  ctx.reg = reg;
  if (resume_ok) {
    // Carry the checkpointed degradation record: subtrees the interrupted
    // run abandoned stay folded into this run's bound (and Solution flags),
    // even if the tree phase never starts again.
    ctx.degraded_nodes = ckdata.degraded_nodes;
    ctx.degraded_bound = std::min(ctx.degraded_bound, ckdata.degraded_bound);
  }
  if (resume_ok && ckdata.has_incumbent) {
    // Seed the checkpointed incumbent (internal minimize sense, like the
    // pool stores it) without firing on_incumbent — it is not a new find.
    ctx.has_incumbent = true;
    ctx.incumbent_obj = ckdata.incumbent_obj;
    ctx.incumbent_x = ckdata.incumbent_x;
  }

  // Every incumbent improvement — root heuristic, probe dive, sequential
  // dive, or pool worker (serialized under the incumbent lock) — lands in
  // the trajectory before the user callback fires. Installed after the ctx
  // exists so it can read the current root bound.
  node_options.on_incumbent = [&](double obj) {
    sol.incumbent_trajectory.push_back(
        {std::chrono::duration<double>(Clock::now() - t0).count(), obj,
         ctx.sense_flip * ctx.root_bound});
    reg->counter("milp.incumbents").add();
    if (options.on_incumbent) options.on_incumbent(obj);
  };

  // Cross-solve warm start (milp/warm_start.hpp). The hint only lines up
  // with the model the caller sees, so it is unusable under presolve (the
  // reduced column space differs per call) — gate, count, and drop it.
  const WarmStartHint* hint = options.warm_hint;
  if (hint != nullptr && options.use_presolve) {
    reg->counter("milp.warm_hint.skipped_presolve").add();
    hint = nullptr;
  }
  if (hint != nullptr && !hint->x.empty() && hint->x.size() == work->num_vars()) {
    // Seed the previous scenario's optimum through the ordinary incumbent
    // channel: try_incumbent snaps integers and re-validates feasibility, so
    // a vector the scenario delta made infeasible is simply rejected.
    double hint_obj = work->objective().constant();
    for (const Term& t : work->objective().terms()) {
      hint_obj += t.coef * hint->x[static_cast<std::size_t>(t.var.index)];
    }
    if (ctx.try_incumbent(hint->x, ctx.sense_flip * hint_obj)) {
      reg->counter("milp.warm_hint.incumbent_seeded").add();
    }
  }

  // --- root solve ---
  phase_mark(obs::Phase::RootLp);
  obs::ScopedSpan root_span(root_spans, obs::span_id(obs::SpanName::RootLp));
  obs::ScopedTimer root_timer(&reg->timer("milp.phase.root_lp"),
                              &sol.phases.root_lp);
  if (root_trace != nullptr)
    root_trace->emit(obs::EventType::NodeOpen, 1, kNan);
  // A hinted basis warm-starts the root with the dual simplex (bound/RHS
  // deltas preserve dual feasibility; objective deltas are repaired or fall
  // cold inside reoptimize_dual). A basis that no longer fits the model is
  // rejected by load_basis and the root solves cold — deterministically.
  bool warm_root = false;
  if (hint != nullptr && hint->basis != nullptr) {
    if (ctx.lp.load_basis(*hint->basis)) {
      warm_root = true;
      reg->counter("milp.warm_hint.basis_loaded").add();
    } else {
      reg->counter("milp.warm_hint.basis_rejected").add();
    }
  }
  SolveStatus st = warm_root ? ctx.lp.reoptimize_dual() : ctx.lp.solve_primal();
  if (warm_root && st == SolveStatus::NumericalError) {
    reg->counter("milp.warm_hint.cold_fallback").add();
    warm_root = false;
    st = ctx.lp.solve_primal();
  }
  sol.warm_started = warm_root;
  ++ctx.nodes;
  if (st == SolveStatus::NumericalError) {
    // The initial root solve gets the same first two ladder rungs as every
    // node LP; there is no parent bound to abandon into, so if both rungs
    // fail the error surfaces as the solve status below.
    st = run_recovery_ladder(ctx.lp, {reg, root_trace, 1});
  }
  root_timer.stop();
  root_span.stop();
  if (st == SolveStatus::Optimal) {
    ctx.root_bound = ctx.lp.objective_value();
    if (root_trace != nullptr) {
      root_trace->emit(obs::EventType::Bound, 1, ctx.sense_flip * ctx.root_bound);
    }
    reg->gauge("milp.root_bound").set(ctx.sense_flip * ctx.root_bound);
    if (options.export_basis) {
      // Snapshot *now*, before reduced-cost fixing or the probe dive mutate
      // bounds/basis: the root-optimal basis is the warm-start handle the
      // next scenario of a sweep loads (Solution::final_basis).
      sol.final_basis = std::make_shared<Basis>(ctx.lp.export_basis());
    }
    const std::vector<double> x = ctx.lp.primal_solution();

    // Root reduced-cost fixing (applied lazily once an incumbent exists):
    // a nonbasic integer column whose root reduced cost alone pushes the
    // root bound past the cutoff can be fixed at its root bound for the
    // whole search. Root data is captured *now*, before any probe dive
    // disturbs the basis.
    const std::vector<double> root_d = ctx.lp.reduced_costs();
    std::vector<SimplexSolver::BoundStatus> root_status(work->num_vars());
    for (std::size_t j = 0; j < work->num_vars(); ++j) {
      root_status[j] = ctx.lp.column_status(static_cast<std::int32_t>(j));
    }
    auto fix_by_reduced_cost = [&] {
      if (!ctx.has_incumbent) return;
      const double cutoff = ctx.incumbent_obj -
                            std::max(options.gap_abs, ctx.granularity - 1e-6);
      for (std::int32_t j : ctx.int_vars) {
        const double lb = ctx.lp.lower_bound(j);
        const double ub = ctx.lp.upper_bound(j);
        if (ub - lb < 0.5) continue;  // already fixed
        // reduced_costs() reports model sense; the fixing math is in the
        // engine's minimize sense.
        const double dj = ctx.sense_flip * root_d[static_cast<std::size_t>(j)];
        if (root_status[static_cast<std::size_t>(j)] == SimplexSolver::BoundStatus::AtLower &&
            dj > 0 && ctx.root_bound + dj > cutoff + 1e-9) {
          ctx.lp.set_bounds(j, lb, lb);
        } else if (root_status[static_cast<std::size_t>(j)] ==
                       SimplexSolver::BoundStatus::AtUpper &&
                   dj < 0 && ctx.root_bound - dj > cutoff + 1e-9) {
          ctx.lp.set_bounds(j, ub, ub);
        }
      }
    };

    if (ctx.pick_branch_var(x) < 0) {
      const bool improved = ctx.try_incumbent(x, ctx.lp.objective_value());
      if (root_trace != nullptr) {
        if (improved) {
          root_trace->emit(obs::EventType::Incumbent, 1,
                           ctx.sense_flip * ctx.incumbent_obj);
        }
        root_trace->emit(obs::EventType::NodeClose, 1,
                         ctx.sense_flip * ctx.root_bound,
                         static_cast<std::uint8_t>(obs::NodeOutcome::Integer));
      }
    } else {
      if (root_trace != nullptr) {
        root_trace->emit(obs::EventType::NodeClose, 1,
                         ctx.sense_flip * ctx.root_bound,
                         static_cast<std::uint8_t>(obs::NodeOutcome::Branched));
      }
      {
        phase_mark(obs::Phase::Heuristic);
        obs::ScopedSpan heur_span(root_spans,
                                  obs::span_id(obs::SpanName::Heuristic));
        obs::ScopedTimer heur_timer(&reg->timer("milp.phase.heuristic"),
                                    &sol.phases.heuristic);
        if (options.rounding_heuristic) {
          // Root rounding heuristic: snap and test.
          std::vector<double> xr = x;
          double obj = work->objective().constant();
          for (std::int32_t j : ctx.int_vars) {
            xr[static_cast<std::size_t>(j)] = std::round(xr[j]);
          }
          for (const Term& t : work->objective().terms()) {
            obj += t.coef * xr[static_cast<std::size_t>(t.var.index)];
          }
          const bool improved =
              ctx.try_incumbent(std::move(xr), ctx.sense_flip * obj);  // minimize sense
          if (improved && root_trace != nullptr) {
            root_trace->emit(obs::EventType::Incumbent, -1,
                             ctx.sense_flip * ctx.incumbent_obj);
          }
        }
        if (!ctx.has_incumbent) {
          // Probe dive: find a first incumbent, then unwind so reduced-cost
          // fixing can prune the full search below.
          ctx.stop_on_incumbent = true;
          ctx.dfs(ctx.root_bound);
          ctx.stop_on_incumbent = false;
          if (ctx.stopped && ctx.stop_reason == SolveStatus::Optimal) ctx.stopped = false;
        }
      }
      phase_mark(obs::Phase::Tree);
      obs::ScopedSpan tree_span(root_spans, obs::span_id(obs::SpanName::Tree));
      obs::ScopedTimer tree_timer(&reg->timer("milp.phase.tree"),
                                  &sol.phases.tree);
      fix_by_reduced_cost();
      // Checkpointing (and resume) route the tree phase through the pool even
      // at one thread: the single-worker pool is the machinery that snapshots
      // the frontier. Its LIFO own-pop keeps the search deterministic.
      const bool pool_route = threads_req > 1 || ck_enabled || resume_ok;
      if (!pool_route || ctx.stopped) {
        ctx.dfs(ctx.root_bound);
      } else {
        // Re-solve the fixed root so the pool seed carries an optimal basis
        // (reduced-cost fixing may have left the probe-era basis primal
        // infeasible; the fixes are tightenings, so the dual repair is warm).
        SolveStatus rst =
            options.warm_start ? ctx.lp.reoptimize_dual() : ctx.lp.solve_primal();
        ++ctx.nodes;
        if (rst == SolveStatus::NumericalError) {
          rst = run_recovery_ladder(ctx.lp, {reg, root_trace, -1});
        }
        if (rst == SolveStatus::Optimal || rst == SolveStatus::NumericalError) {
          // A root re-solve that defeats even the ladder does not kill the
          // search: the pool is seeded cold from the still-valid root bound
          // (root_basis_ok = false) and every worker starts primal.
          run_parallel_phase(ctx, *work, threads_req, sol, buffers, reg, ck_fp,
                             /*root_basis_ok=*/rst == SolveStatus::Optimal,
                             resume_ok ? &ckdata : nullptr);
        } else if (rst != SolveStatus::Infeasible) {
          ctx.stopped = true;
          ctx.stop_reason = rst;
        }
        // Infeasible after fixing means no solution beats the incumbent: the
        // sequential epilogue below then reports the incumbent as optimal.
      }
      tree_timer.stop();
      tree_span.stop();
    }
  } else if (st == SolveStatus::Infeasible) {
    sol.status = SolveStatus::Infeasible;
    if (root_trace != nullptr) {
      root_trace->emit(obs::EventType::NodeClose, 1, kNan,
                       static_cast<std::uint8_t>(obs::NodeOutcome::Infeasible));
    }
  } else if (st == SolveStatus::Unbounded) {
    sol.status = SolveStatus::Unbounded;
    if (root_trace != nullptr) {
      root_trace->emit(obs::EventType::NodeClose, 1, kNan,
                       static_cast<std::uint8_t>(obs::NodeOutcome::Limit));
    }
  } else {
    sol.status = st;
    if (root_trace != nullptr) {
      root_trace->emit(obs::EventType::NodeClose, 1, kNan,
                       static_cast<std::uint8_t>(obs::NodeOutcome::Limit));
    }
  }

  // Parallel solves already accumulated per-worker contributions into `sol`;
  // add the root/sequential solver's share on top.
  sol.simplex_iterations += ctx.lp.iterations();
  sol.nodes_explored = ctx.nodes;
  sol.solve_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  sol.warm_dual_nodes += ctx.lp.reopt_stats().dual_fast;
  sol.warm_repair_nodes += ctx.lp.reopt_stats().repaired;
  sol.cold_nodes += ctx.lp.reopt_stats().cold;
  reg->counter("milp.refactors")
      .add(ctx.pool_refactors + ctx.lp.reopt_stats().refactors);
  reg->counter("milp.basis_transplants")
      .add(ctx.pool_transplants + ctx.lp.reopt_stats().transplants);
  if (sol.threads_used == 1) {
    sol.nodes_per_worker.assign(1, ctx.nodes);
    sol.cpu_seconds = sol.solve_seconds;
  }

  if (st == SolveStatus::Optimal) {
    if (ctx.stopped && ctx.stop_reason == SolveStatus::Unbounded) {
      sol.status = SolveStatus::Unbounded;
      finish(sol);
      return sol;
    }
    phase_mark(obs::Phase::Extract);
    obs::ScopedSpan extract_span(root_spans,
                                 obs::span_id(obs::SpanName::MilpExtract));
    obs::ScopedTimer extract_timer(&reg->timer("milp.phase.extract"),
                                   &sol.phases.extract);
    // Abandoned subtrees (ladder exhausted) cap the proven bound at their
    // parents' bounds — the min below keeps the reported gap sound.
    sol.degraded_nodes = ctx.degraded_nodes;
    sol.degraded = ctx.degraded_nodes > 0;
    if (ctx.has_incumbent) {
      sol.status = ctx.stopped ? ctx.stop_reason : SolveStatus::Optimal;
      sol.has_incumbent = true;
      sol.objective = ctx.sense_flip * ctx.incumbent_obj;
      sol.best_bound =
          ctx.sense_flip *
          std::min(ctx.stopped ? ctx.root_bound : ctx.incumbent_obj,
                   ctx.degraded_bound);
      std::vector<double> x = ctx.incumbent_x;
      sol.x = options.use_presolve ? pre.postsolve(x) : std::move(x);
    } else {
      // Degraded and empty-handed: the abandoned subtrees may hide feasible
      // points, so "Infeasible" would be an unsound claim.
      sol.status = ctx.stopped ? ctx.stop_reason
                   : sol.degraded ? SolveStatus::NumericalError
                                  : SolveStatus::Infeasible;
      sol.best_bound =
          ctx.sense_flip * std::min(ctx.root_bound, ctx.degraded_bound);
    }
    extract_timer.stop();
  }

  // Independent certification of the answer we are about to return: primal
  // residuals against the original (pre-presolve) model always; dual
  // feasibility + complementary slackness when this was a pure LP solved
  // without presolve (row indices then match the engine's duals).
  if (options.certify && sol.has_incumbent) {
    check::CertifyOptions copts;
    copts.feas_tol = options.certify_tol;
    copts.int_tol = std::max(options.int_tol, options.certify_tol);
    copts.obj_tol = options.certify_tol;
    copts.dual_tol = options.certify_tol;
    check::Certificate cert;
    if (ctx.int_vars.empty() && !options.use_presolve &&
        sol.status == SolveStatus::Optimal) {
      cert = check::certify_lp(model, sol.x, sol.objective, ctx.lp.dual_values(),
                               ctx.lp.reduced_costs(), copts);
    } else {
      cert = check::certify(model, sol.x, sol.objective, copts);
    }
    reg->gauge("check.certify.ok").set(cert.ok() ? 1.0 : 0.0);
    reg->gauge("check.certify.max_row_violation").set(cert.max_row_violation);
    reg->gauge("check.certify.max_bound_violation").set(cert.max_bound_violation);
    reg->gauge("check.certify.max_int_violation").set(cert.max_int_violation);
    reg->gauge("check.certify.objective_error").set(cert.objective_error);
    if (cert.duals_checked) {
      reg->gauge("check.certify.max_dual_violation").set(cert.max_dual_violation);
      reg->gauge("check.certify.max_slackness_violation")
          .set(cert.max_slackness_violation);
    }
  }
  if (logger.enabled()) {
    obs::NodeLogger::Line line;
    line.nodes = sol.nodes_explored;
    line.open = 0;
    line.has_incumbent = sol.has_incumbent;
    line.incumbent = sol.objective;
    line.best_bound = sol.best_bound;
    line.steals = sol.steals;
    logger.log_final(line);
  }
  finish(sol);
  return sol;
}

}  // namespace archex::milp
