#include "milp/branch_bound.hpp"

#include <chrono>
#include <cmath>
#include <vector>

#include "milp/presolve.hpp"

namespace archex::milp {

namespace {

using Clock = std::chrono::steady_clock;

/// Granularity of the objective: the largest g such that every objective
/// coefficient is an integer multiple of g, provided only *integral*
/// variables carry objective weight. Two integer-feasible objectives then
/// differ by at least g, so the bound-pruning cutoff can be tightened by
/// almost g. Returns 0 when no granularity can be exploited.
double objective_granularity(const Model& m) {
  double g = 0.0;
  for (const Term& t : m.objective().terms()) {
    const Variable& v = m.var(t.var);
    if (!v.is_integral()) return 0.0;
    double a = std::abs(t.coef);
    double b = g;
    // Euclid on reals with a snap tolerance.
    while (b > 1e-7) {
      const double r = std::fmod(a, b);
      a = b;
      b = (r < 1e-7 || b - r < 1e-7) ? 0.0 : r;
    }
    g = a;
    if (g < 1e-6) return 0.0;
  }
  return g;
}

/// Search state shared across the DFS.
struct SearchCtx {
  const Model& model;  // reduced model
  const MilpOptions& opts;
  SimplexSolver lp;
  std::vector<std::int32_t> int_vars;  // reduced columns with integrality
  double incumbent_obj = kInf;         // minimize sense
  std::vector<double> incumbent_x;
  bool has_incumbent = false;
  double granularity = 0.0;  ///< objective step size, see objective_granularity
  double root_bound = -kInf;
  std::int64_t nodes = 0;
  Clock::time_point deadline;
  SolveStatus stop_reason = SolveStatus::Optimal;  // set on limit hits
  bool stopped = false;
  bool stop_on_incumbent = false;  ///< first-incumbent probe phase
  double sense_flip = 1.0;

  SearchCtx(const Model& m, const MilpOptions& o)
      : model(m), opts(o), lp(m, o.lp) {
    for (std::size_t j = 0; j < m.num_vars(); ++j) {
      if (m.vars()[j].is_integral()) int_vars.push_back(static_cast<std::int32_t>(j));
    }
    obj_coef.assign(m.num_vars(), 0.0);
    for (const Term& t : m.objective().terms()) {
      obj_coef[static_cast<std::size_t>(t.var.index)] = std::abs(t.coef);
    }
    sense_flip = m.objective_sense() == ObjectiveSense::Maximize ? -1.0 : 1.0;
  }

  void try_incumbent(std::vector<double> x, double obj) {
    // Snap integers and validate against the true model.
    for (std::int32_t j : int_vars) x[static_cast<std::size_t>(j)] = std::round(x[j]);
    if (!model.feasible(x, 1e-5)) return;
    if (obj < incumbent_obj - 1e-12) {
      incumbent_obj = obj;
      incumbent_x = std::move(x);
      has_incumbent = true;
      if (opts.on_incumbent) opts.on_incumbent(sense_flip * obj);
      if (stop_on_incumbent) stopped = true;  // probe phase: unwind to root
    }
  }

  /// Branch variable: fractional integral variable with the best
  /// cost-weighted fractionality. Weighting by |objective coefficient|
  /// resolves the expensive structural decisions (component selection,
  /// edge/contactor choice) before cheap coupling binaries, which tightens
  /// the bound much faster on architecture-exploration MILPs.
  [[nodiscard]] std::int32_t pick_branch_var(const std::vector<double>& x) const {
    std::int32_t best = -1;
    double best_score = -1.0;
    for (std::int32_t j : int_vars) {
      const double v = x[static_cast<std::size_t>(j)];
      const double frac = std::abs(v - std::round(v));
      if (frac <= opts.int_tol) continue;
      const double balance = 0.5 - std::abs(frac - 0.5);  // in (0, 0.5]
      const double weight = 1.0 + std::abs(obj_coef[static_cast<std::size_t>(j)]);
      const double score = balance * weight;
      if (score > best_score) {
        best_score = score;
        best = j;
      }
    }
    return best;
  }

  std::vector<double> obj_coef;  ///< |objective coefficient| per column

  void dfs() {
    if (stopped) return;
    if (nodes >= opts.max_nodes) {
      stopped = true;
      stop_reason = SolveStatus::NodeLimit;
      return;
    }
    if (Clock::now() >= deadline) {
      stopped = true;
      stop_reason = SolveStatus::TimeLimit;
      return;
    }

    SolveStatus st = opts.warm_start ? lp.reoptimize_dual() : lp.solve_primal();
    ++nodes;
    if (st == SolveStatus::NumericalError) st = lp.solve_primal();
    if (st == SolveStatus::Infeasible) return;
    if (st == SolveStatus::Unbounded) {
      // Only possible at the root of an MILP with unbounded relaxation; the
      // caller maps this to an Unbounded result.
      stopped = true;
      stop_reason = SolveStatus::Unbounded;
      return;
    }
    if (st != SolveStatus::Optimal) {
      stopped = true;
      stop_reason = st;
      return;
    }

    const double obj = lp.objective_value();
    if (has_incumbent) {
      const double cutoff =
          incumbent_obj - std::max({opts.gap_abs, opts.gap_rel * std::abs(incumbent_obj),
                                    granularity - 1e-6});
      if (obj >= cutoff) return;  // bound pruning
    }

    const std::vector<double> x = lp.primal_solution();
    const std::int32_t bv = pick_branch_var(x);
    if (bv < 0) {
      try_incumbent(x, obj);
      return;
    }

    const double v = x[static_cast<std::size_t>(bv)];
    const double lb0 = lp.lower_bound(bv);
    const double ub0 = lp.upper_bound(bv);
    const double down_ub = std::floor(v + opts.int_tol);
    const double up_lb = std::ceil(v - opts.int_tol);

    // Dive toward the nearest integer first; while probing for a first
    // incumbent, lean upward — architecture MILPs are covering-style, and
    // instantiating components reaches feasibility much faster than pruning
    // them.
    const double up_threshold = stop_on_incumbent ? 0.15 : 0.5;
    const bool down_first = (v - std::floor(v)) < up_threshold;
    for (int side = 0; side < 2 && !stopped; ++side) {
      const bool down = (side == 0) == down_first;
      if (down) {
        if (down_ub < lb0 - 1e-12) continue;  // empty child
        lp.set_bounds(bv, lb0, down_ub);
      } else {
        if (up_lb > ub0 + 1e-12) continue;
        lp.set_bounds(bv, up_lb, ub0);
      }
      dfs();
      lp.set_bounds(bv, lb0, ub0);
    }
  }
};

}  // namespace

Solution solve_milp(const Model& model, const MilpOptions& options) {
  const auto t0 = Clock::now();
  Solution sol;

  // --- presolve ---
  PresolveResult pre;
  const Model* work = &model;
  if (options.use_presolve) {
    pre = presolve(model);
    if (pre.infeasible) {
      sol.status = SolveStatus::Infeasible;
      sol.solve_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
      return sol;
    }
    work = &pre.reduced;
  }

  // Guard against duration overflow for "effectively unlimited" budgets.
  Clock::time_point deadline = Clock::time_point::max();
  if (options.time_limit_s < 1e9) {
    deadline = t0 + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(options.time_limit_s));
  }
  MilpOptions node_options = options;
  node_options.lp.deadline = deadline;  // simplex loops honor the wall clock
  SearchCtx ctx(*work, node_options);
  ctx.granularity = objective_granularity(*work);
  ctx.deadline = deadline;

  // --- root solve ---
  SolveStatus st = ctx.lp.solve_primal();
  ++ctx.nodes;
  if (st == SolveStatus::Optimal) {
    ctx.root_bound = ctx.lp.objective_value();
    const std::vector<double> x = ctx.lp.primal_solution();

    // Root reduced-cost fixing (applied lazily once an incumbent exists):
    // a nonbasic integer column whose root reduced cost alone pushes the
    // root bound past the cutoff can be fixed at its root bound for the
    // whole search. Root data is captured *now*, before any probe dive
    // disturbs the basis.
    const std::vector<double> root_d = ctx.lp.reduced_costs();
    std::vector<SimplexSolver::BoundStatus> root_status(work->num_vars());
    for (std::size_t j = 0; j < work->num_vars(); ++j) {
      root_status[j] = ctx.lp.column_status(static_cast<std::int32_t>(j));
    }
    auto fix_by_reduced_cost = [&] {
      if (!ctx.has_incumbent) return;
      const double cutoff = ctx.incumbent_obj -
                            std::max(options.gap_abs, ctx.granularity - 1e-6);
      for (std::int32_t j : ctx.int_vars) {
        const double lb = ctx.lp.lower_bound(j);
        const double ub = ctx.lp.upper_bound(j);
        if (ub - lb < 0.5) continue;  // already fixed
        const double dj = root_d[static_cast<std::size_t>(j)];
        if (root_status[static_cast<std::size_t>(j)] == SimplexSolver::BoundStatus::AtLower &&
            dj > 0 && ctx.root_bound + dj > cutoff + 1e-9) {
          ctx.lp.set_bounds(j, lb, lb);
        } else if (root_status[static_cast<std::size_t>(j)] ==
                       SimplexSolver::BoundStatus::AtUpper &&
                   dj < 0 && ctx.root_bound - dj > cutoff + 1e-9) {
          ctx.lp.set_bounds(j, ub, ub);
        }
      }
    };

    if (ctx.pick_branch_var(x) < 0) {
      ctx.try_incumbent(x, ctx.lp.objective_value());
    } else {
      if (options.rounding_heuristic) {
        // Root rounding heuristic: snap and test.
        std::vector<double> xr = x;
        double obj = work->objective().constant();
        for (std::int32_t j : ctx.int_vars) {
          xr[static_cast<std::size_t>(j)] = std::round(xr[j]);
        }
        for (const Term& t : work->objective().terms()) {
          obj += t.coef * xr[static_cast<std::size_t>(t.var.index)];
        }
        ctx.try_incumbent(std::move(xr), ctx.sense_flip * obj);  // minimize sense
      }
      if (!ctx.has_incumbent) {
        // Probe dive: find a first incumbent, then unwind so reduced-cost
        // fixing can prune the full search below.
        ctx.stop_on_incumbent = true;
        ctx.dfs();
        ctx.stop_on_incumbent = false;
        if (ctx.stopped && ctx.stop_reason == SolveStatus::Optimal) ctx.stopped = false;
      }
      fix_by_reduced_cost();
      ctx.dfs();
    }
  } else if (st == SolveStatus::Infeasible) {
    sol.status = SolveStatus::Infeasible;
  } else if (st == SolveStatus::Unbounded) {
    sol.status = SolveStatus::Unbounded;
  } else {
    sol.status = st;
  }

  sol.simplex_iterations = ctx.lp.iterations();
  sol.nodes_explored = ctx.nodes;
  sol.solve_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  sol.warm_dual_nodes = ctx.lp.reopt_stats().dual_fast;
  sol.warm_repair_nodes = ctx.lp.reopt_stats().repaired;
  sol.cold_nodes = ctx.lp.reopt_stats().cold;

  if (st == SolveStatus::Optimal) {
    if (ctx.stopped && ctx.stop_reason == SolveStatus::Unbounded) {
      sol.status = SolveStatus::Unbounded;
      return sol;
    }
    if (ctx.has_incumbent) {
      sol.status = ctx.stopped ? ctx.stop_reason : SolveStatus::Optimal;
      sol.has_incumbent = true;
      sol.objective = ctx.sense_flip * ctx.incumbent_obj;
      sol.best_bound = ctx.sense_flip * (ctx.stopped ? ctx.root_bound : ctx.incumbent_obj);
      std::vector<double> x = ctx.incumbent_x;
      sol.x = options.use_presolve ? pre.postsolve(x) : std::move(x);
    } else {
      sol.status = ctx.stopped ? ctx.stop_reason : SolveStatus::Infeasible;
      sol.best_bound = ctx.sense_flip * ctx.root_bound;
    }
  }
  return sol;
}

}  // namespace archex::milp
