/// \file branch_bound.hpp
/// Branch & bound MILP solver on top of the bounded-variable simplex.
///
/// Depth-first diving with warm-started dual-simplex node solves: branching
/// only changes variable bounds, which preserves dual feasibility of the
/// parent basis, so each node typically reoptimizes in a handful of pivots.
/// A root rounding heuristic seeds the incumbent. This is the "Solver" box
/// of Figure 1 in the paper (the role CPLEX plays for the original toolbox).
#pragma once

#include <cstdint>
#include <functional>

#include "milp/model.hpp"
#include "milp/simplex.hpp"

namespace archex::milp {

/// Branch & bound configuration.
struct MilpOptions {
  double int_tol = 1e-6;          ///< integrality tolerance
  double gap_abs = 1e-9;          ///< absolute optimality gap
  double gap_rel = 1e-9;          ///< relative optimality gap
  std::int64_t max_nodes = 10'000'000;
  double time_limit_s = 1e18;
  bool use_presolve = true;
  /// Warm-start node LPs with the dual simplex (false = cold primal solve at
  /// every node; exposed for the `bench_milp` warm-start ablation).
  bool warm_start = true;
  /// Use the root rounding heuristic to seed the incumbent.
  bool rounding_heuristic = true;
  /// Worker threads for the tree search. 0 = auto
  /// (std::thread::hardware_concurrency). 1 runs the original sequential
  /// depth-first dive — bit-identical node order, counts and incumbents,
  /// fully deterministic. >= 2 switches to the work-stealing open-node pool:
  /// the root phase (root LP, rounding heuristic, probe dive, reduced-cost
  /// fixing) stays sequential, then N workers with private SimplexSolvers
  /// consume the pool, warm-starting each stolen node via dual simplex from
  /// the basis snapshot exported when its parent was branched.
  int num_threads = 0;
  SimplexOptions lp;
  /// Optional per-improvement callback (incumbent objective in model sense).
  /// With num_threads >= 2 it may fire from worker threads; calls are
  /// serialized under the incumbent lock.
  std::function<void(double)> on_incumbent;
};

/// Solves the mixed integer program `model`. The returned solution vector is
/// in the original (pre-presolve) variable space.
Solution solve_milp(const Model& model, const MilpOptions& options = {});

}  // namespace archex::milp
