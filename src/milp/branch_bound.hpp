/// \file branch_bound.hpp
/// Branch & bound MILP solver on top of the bounded-variable simplex.
///
/// Depth-first diving with warm-started dual-simplex node solves: branching
/// only changes variable bounds, which preserves dual feasibility of the
/// parent basis, so each node typically reoptimizes in a handful of pivots.
/// A root rounding heuristic seeds the incumbent. This is the "Solver" box
/// of Figure 1 in the paper (the role CPLEX plays for the original toolbox).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "milp/budget.hpp"
#include "milp/model.hpp"
#include "milp/simplex.hpp"
#include "milp/warm_start.hpp"
#include "obs/metrics.hpp"

namespace archex::milp {

/// Branch & bound configuration.
struct MilpOptions {
  double int_tol = 1e-6;          ///< integrality tolerance
  double gap_abs = 1e-9;          ///< absolute optimality gap
  double gap_rel = 1e-9;          ///< relative optimality gap
  std::int64_t max_nodes = 10'000'000;
  /// The preferred time-budget knob (milp/budget.hpp): one relative
  /// wall-clock allowance, measured from `solve_milp` entry and converted to
  /// an absolute deadline at exactly one point. Combined (min) with the
  /// deprecated `time_limit_s` alias and the absolute `deadline` below.
  Budget budget = Budget::unlimited();
  /// Deprecated alias of `budget` (wall-clock limit in seconds); kept so
  /// existing call sites compile unchanged. Values ≤ 0 time out immediately;
  /// only +inf (or a limit beyond the clock's ~centuries of range) disables
  /// it. New code should set `budget` instead.
  double time_limit_s = 1e18;
  /// Absolute monotonic deadline, combined (min) with the deadline derived
  /// from `time_limit_s`. Unlike a per-call time limit, an absolute deadline
  /// is shared end-to-end across phases and re-solves: the arch layer arms
  /// it once per exploration so encode-heavy or lazy-iterating models cannot
  /// restart the budget at every `solve_milp` call. A deadline that has
  /// already passed returns `TimeLimit` before presolve runs. The default
  /// (`time_point::max()`) leaves only `time_limit_s` in charge.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Cooperative cancellation token, polled wherever the deadline is polled
  /// (simplex iteration loops every 256 iterations, each B&B node boundary).
  /// Setting the pointed-to flag stops the solve exactly like an expired
  /// deadline: the best incumbent and a sound `best_bound` are returned with
  /// status `TimeLimit`, and — when checkpointing is armed — the surviving
  /// frontier is written so the solve is resumable. This is how
  /// `serve::ExplorationService` preempts in-flight solves on drain. Null
  /// (the default) costs one pointer test per poll site.
  const std::atomic<bool>* cancel = nullptr;
  bool use_presolve = true;
  /// Warm-start node LPs with the dual simplex (false = cold primal solve at
  /// every node; exposed for the `bench_milp` warm-start ablation).
  bool warm_start = true;
  /// Optional cross-solve warm start (milp/warm_start.hpp): a previous
  /// solve's root basis and/or incumbent vector, typically from the prior
  /// scenario of a compiled-model sweep. The basis is installed into the
  /// root LP and reoptimized with the dual simplex; a hint that no longer
  /// fits the model (structure changed) or has decayed numerically falls
  /// back to a cold primal root deterministically. Honored only when
  /// `use_presolve` is false — presolve's reduced column space differs per
  /// call, so nothing in the hint would line up. Non-owning; must outlive
  /// the call. Null (the default) is the ordinary cold root.
  const WarmStartHint* warm_hint = nullptr;
  /// Export the root LP's optimal basis into `Solution::final_basis` so the
  /// caller can warm-start the next structurally identical solve. Off by
  /// default (the snapshot copies the status vectors and pins the LU
  /// factorization snapshot).
  bool export_basis = false;
  /// Use the root rounding heuristic to seed the incumbent.
  bool rounding_heuristic = true;
  /// Worker threads for the tree search. 0 = auto
  /// (std::thread::hardware_concurrency). 1 runs the original sequential
  /// depth-first dive — bit-identical node order, counts and incumbents,
  /// fully deterministic. >= 2 switches to the work-stealing open-node pool:
  /// the root phase (root LP, rounding heuristic, probe dive, reduced-cost
  /// fixing) stays sequential, then N workers with private SimplexSolvers
  /// consume the pool, warm-starting each stolen node via dual simplex from
  /// the basis snapshot exported when its parent was branched.
  int num_threads = 0;
  SimplexOptions lp{};
  /// Optional per-improvement callback (incumbent objective in model sense).
  /// With num_threads >= 2 it may fire from worker threads; calls are
  /// serialized under the incumbent lock.
  std::function<void(double)> on_incumbent{};
  /// Record a structured event trace (node open/close, bounds, incumbents,
  /// steals, basis events) into per-worker ring buffers, merged into
  /// `Solution::trace` at solve end. Off by default: the tracing-off solve
  /// path is untouched (every hook is a null-guarded pointer).
  bool trace = false;
  /// Ring capacity per worker; oldest events are overwritten when full and
  /// counted in `Trace::dropped`.
  std::size_t trace_capacity = 1 << 16;
  /// CPLEX-style live node log: a progress line roughly every
  /// `log_interval` seconds to `log_sink`. Both must be set (interval > 0,
  /// sink non-null) to enable; off by default.
  double log_interval = 0.0;
  std::ostream* log_sink = nullptr;
  /// Metrics registry to report into (phase timers, node/steal/pivot
  /// counters; see docs/observability.md for the names). Null = the solve
  /// uses a private registry, snapshotted into `Solution::metrics` either
  /// way. The arch `Problem` passes its own so encode and solve share one.
  obs::MetricsRegistry* metrics = nullptr;
  /// Run the independent solution certifier (check::certify — a code path
  /// disjoint from the simplex) on the final incumbent: every row of the
  /// *original pre-presolve* model, bounds, integrality and the objective
  /// value are re-verified, and the residuals land in Solution::metrics
  /// under `check.certify.*` (`check.certify.ok` is 1.0 when the answer
  /// certifies). Pure-LP solves without presolve additionally certify dual
  /// feasibility and complementary slackness. On by default — the cost is
  /// one pass over the matrix per solve; see docs/diagnostics.md.
  bool certify = true;
  double certify_tol = 1e-6;  ///< residual tolerance for the certifier
  /// Deterministic fault-injection plan shared by the root solver and every
  /// worker (copied into `lp.fault` unless one is already set there). Null —
  /// the default — is zero-cost. See milp/fault.hpp and docs/diagnostics.md.
  FaultPlan* fault = nullptr;
  /// Numerical-recovery ladder: after the tightened-refactorization and
  /// cold-restart rungs both fail on a node, the node is quarantined and
  /// re-enqueued for this many fresh cold attempts before its subtree is
  /// abandoned (the parent bound is then folded into `Solution::best_bound`
  /// — never an unsound prune — and `Solution::degraded` is set).
  int recover_max_retries = 2;
  /// Checkpoint/resume. A non-empty path makes the tree phase periodically
  /// serialize the incumbent, global bound and open-node frontier to this
  /// file (write-temp-then-rename; format in docs/solver.md). Checkpointing
  /// routes the tree phase through the open-node pool even at
  /// `num_threads = 1`; the single-worker pool pops LIFO from its own deque,
  /// so the search stays deterministic (same optimum, pool-order node ids).
  std::string checkpoint_file{};
  /// Seconds between checkpoint writes; <= 0 checkpoints after every node
  /// (tests and kill-resume drills).
  double checkpoint_interval_s = 30.0;
  /// Resume from `checkpoint_file` when it exists and its model fingerprint
  /// matches; otherwise (missing/corrupt/mismatched) the solve starts fresh
  /// and sets the `milp.checkpoint.rejected` metric.
  bool resume = false;
  /// Optional hierarchical span profiler (obs/span.hpp): phase spans
  /// (presolve / root LP / heuristic / tree / extract) on the caller's
  /// buffer 0 and sampled simplex kernel spans on each worker's own buffer
  /// (copied into `lp.spans` per worker unless one is already set there).
  /// The profiler outlives the solve and may span several (lazy-constraint)
  /// solves; spans dropped to buffer overflow surface per solve as the
  /// `milp.spans_dropped` counter. Null — the default — keeps every span
  /// site at a single pointer test. Export via
  /// SpanProfiler::write_chrome_trace (`milp_solve --profile-json`).
  obs::SpanProfiler* profiler = nullptr;
};

/// Solves the mixed integer program `model`. The returned solution vector is
/// in the original (pre-presolve) variable space.
Solution solve_milp(const Model& model, const MilpOptions& options = {});

}  // namespace archex::milp
