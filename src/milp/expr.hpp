/// \file expr.hpp
/// Linear expressions over model variables.
///
/// This is the modeling-layer vocabulary (the role YALMIP plays for the
/// original ArchEx toolbox): variables are lightweight ids, and LinExpr is a
/// sparse linear form  sum_j coef_j * x_j + constant  with value semantics
/// and the usual arithmetic operators.
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace archex::milp {

/// Strongly-typed index of a variable inside a Model.
struct VarId {
  std::int32_t index = -1;

  [[nodiscard]] bool valid() const { return index >= 0; }
  friend auto operator<=>(const VarId&, const VarId&) = default;
};

/// One `coef * var` term of a linear expression.
struct Term {
  VarId var;
  double coef = 0.0;

  friend bool operator==(const Term&, const Term&) = default;
};

/// Sparse linear expression with a constant offset.
///
/// Terms are kept normalized: sorted by variable index, duplicates merged,
/// zero coefficients dropped. All arithmetic preserves normalization, so
/// equality comparison is structural.
class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double constant) : constant_(constant) {}
  /*implicit*/ LinExpr(VarId v) { terms_.push_back({v, 1.0}); }
  LinExpr(std::initializer_list<Term> terms);

  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }
  [[nodiscard]] double constant() const { return constant_; }
  [[nodiscard]] bool is_constant() const { return terms_.empty(); }
  [[nodiscard]] std::size_t size() const { return terms_.size(); }

  /// Coefficient of `v` (0 if absent). O(log n).
  [[nodiscard]] double coef_of(VarId v) const;

  /// Adds `coef * v` to this expression.
  LinExpr& add_term(VarId v, double coef);
  LinExpr& operator+=(const LinExpr& rhs);
  LinExpr& operator-=(const LinExpr& rhs);
  LinExpr& operator+=(double c) { constant_ += c; return *this; }
  LinExpr& operator-=(double c) { constant_ -= c; return *this; }
  LinExpr& operator*=(double s);

  friend LinExpr operator+(LinExpr lhs, const LinExpr& rhs) { lhs += rhs; return lhs; }
  friend LinExpr operator-(LinExpr lhs, const LinExpr& rhs) { lhs -= rhs; return lhs; }
  friend LinExpr operator*(LinExpr e, double s) { e *= s; return e; }
  friend LinExpr operator*(double s, LinExpr e) { e *= s; return e; }
  friend LinExpr operator-(LinExpr e) { e *= -1.0; return e; }

  /// Structural equality (operator== is reserved for constraint building).
  [[nodiscard]] bool same_as(const LinExpr& o) const {
    return terms_ == o.terms_ && constant_ == o.constant_;
  }

  /// Evaluates the expression for the given dense assignment (indexed by
  /// variable id).
  [[nodiscard]] double evaluate(const std::vector<double>& x) const;

  /// Renders e.g. "2*x3 - x5 + 1.5" using `name(v)` for variable names.
  [[nodiscard]] std::string to_string() const;

 private:
  void normalize();

  std::vector<Term> terms_;
  double constant_ = 0.0;
};

LinExpr operator*(VarId v, double s);
inline LinExpr operator*(double s, VarId v) { return v * s; }
LinExpr operator+(VarId a, VarId b);
LinExpr operator-(VarId a, VarId b);

/// Relational sense of a linear constraint.
enum class Sense : std::uint8_t { LE, GE, EQ };

[[nodiscard]] const char* to_string(Sense s);

/// A linear constraint `expr (<=|>=|==) rhs`.
///
/// Normalized so that `expr` carries no constant: the constant is folded
/// into `rhs` at construction.
struct LinConstraint {
  LinExpr expr;
  Sense sense = Sense::LE;
  double rhs = 0.0;
  std::string name;

  LinConstraint() = default;
  LinConstraint(LinExpr e, Sense s, double r, std::string n = {});

  /// True if the constraint holds for `x` within tolerance `tol`.
  [[nodiscard]] bool satisfied(const std::vector<double>& x, double tol = 1e-6) const;
  [[nodiscard]] std::string to_string() const;
};

/// Constraint-building sugar: `x + y <= 3`, `flow == demand`, ...
LinConstraint operator<=(LinExpr lhs, const LinExpr& rhs);
LinConstraint operator>=(LinExpr lhs, const LinExpr& rhs);
LinConstraint operator==(LinExpr lhs, const LinExpr& rhs);

std::ostream& operator<<(std::ostream& os, const LinExpr& e);
std::ostream& operator<<(std::ostream& os, const LinConstraint& c);

}  // namespace archex::milp
