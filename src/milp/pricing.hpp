/// \file pricing.hpp
/// Pluggable pricing (entering-variable selection) for the primal simplex.
///
/// Following the microkernel idiom, a pricing rule is a narrow strategy
/// object behind a name registry rather than a branch in the pivot loop:
/// the loop computes eligibility (reduced-cost sign vs column status) and
/// asks the pricer only to *score* eligible candidates; the largest score
/// enters. After each basis change the pricer sees the pivot row so that
/// stateful rules can maintain their weights.
///
/// Built-ins:
///   * "dantzig" (default) — score |d_j|; stateless, reproduces the
///     historical pivot sequence exactly.
///   * "devex"             — Forrest-Goldfarb reference-framework weights,
///     score d_j^2 / w_j; approximates steepest edge at eta-update cost.
///
/// Register additional rules at static-init time (or before building a
/// solver) with `register_pricer`; `SimplexOptions::pricing` selects by
/// name, unknown names fall back to Dantzig.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace archex::milp {

/// Strategy interface. One instance lives per SimplexSolver and is only
/// called from that solver's thread.
class Pricer {
 public:
  virtual ~Pricer() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// (Re)initialize for a solve over `total_cols` columns.
  virtual void reset(std::size_t total_cols) { (void)total_cols; }

  /// Score of an eligible nonbasic candidate `j` with reduced cost `dj`
  /// (never 0 within tolerance). Larger is better.
  [[nodiscard]] virtual double score(std::int32_t j, double dj) const = 0;

  /// Basis changed: column `q` entered on the pivot row with alphas
  /// `alpha` (nonzeros listed in `alpha_nz`, pivot element `alpha_q`),
  /// column `leave` left. Stateless rules ignore this.
  virtual void on_pivot(std::int32_t q, std::int32_t leave, double alpha_q,
                        const std::vector<double>& alpha,
                        const std::vector<std::int32_t>& alpha_nz) {
    (void)q; (void)leave; (void)alpha_q; (void)alpha; (void)alpha_nz;
  }
};

using PricerFactory = std::function<std::unique_ptr<Pricer>()>;

/// Registers `factory` under `name`; returns false (no overwrite) when the
/// name is taken. Thread-compatible: register before solving starts.
bool register_pricer(const std::string& name, PricerFactory factory);

/// Builds the pricer registered under `name`, or null when unknown.
std::unique_ptr<Pricer> make_pricer(const std::string& name);

/// Names of all registered pricing rules, sorted.
std::vector<std::string> pricer_names();

}  // namespace archex::milp
