/// \file budget.hpp
/// The one time-budget type of the stack.
///
/// Every layer used to grow its own knob for the same idea — "this much wall
/// clock, measured from some start point": `MilpOptions::time_limit_s` and
/// `MilpOptions::deadline`, the serve request's `deadline_ms`, the explorer
/// examples' `--time-limit` flags. `Budget` is now the single documented
/// type they all funnel through, and `deadline_from()` the single conversion
/// point where a relative budget becomes an absolute monotonic deadline
/// (including the clamp/overflow rules that used to live inline in
/// `solve_milp`). The old fields remain as deprecated aliases; each call
/// site converts exactly once, at its own start point:
///
///   * `solve_milp` — from solve entry (per-call cap);
///   * `arch::solve` / `Problem::solve` — passed through via MilpOptions;
///   * `serve::ExplorationService` — from request *admission*, so queue wait
///     spends the budget too;
///   * explorers — from process start of the exploration.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace archex::milp {

/// A relative wall-clock allowance. Value semantics, trivially copyable.
struct Budget {
  using Clock = std::chrono::steady_clock;

  /// Allowance in seconds. +inf (the default) = unlimited; values <= 0 mean
  /// "already exhausted" (an immediate TimeLimit); NaN is treated as
  /// unlimited — the same semantics `time_limit_s` always had.
  double seconds = std::numeric_limits<double>::infinity();

  [[nodiscard]] static constexpr Budget unlimited() { return {}; }
  [[nodiscard]] static constexpr Budget of_seconds(double s) { return {s}; }
  [[nodiscard]] static constexpr Budget of_ms(double ms) {
    return {ms / 1000.0};
  }

  /// True when this budget actually constrains anything (finite seconds).
  [[nodiscard]] bool limited() const { return std::isfinite(seconds); }

  /// THE conversion point: the absolute deadline of this budget measured
  /// from `start`. Unlimited budgets — and budgets beyond half the clock's
  /// remaining range (~centuries; the duration cast would overflow) — return
  /// the "never" sentinel `Clock::time_point::max()`. Negative budgets clamp
  /// to `start` itself: an immediately expired deadline.
  [[nodiscard]] Clock::time_point deadline_from(Clock::time_point start) const {
    if (!std::isfinite(seconds)) return Clock::time_point::max();
    const double limit_s = std::max(seconds, 0.0);
    const double headroom_s =
        std::chrono::duration<double>(Clock::time_point::max() - start).count();
    if (limit_s >= headroom_s * 0.5) return Clock::time_point::max();
    return start + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(limit_s));
  }

  /// min() of two budgets: the tighter allowance wins (NaN loses).
  [[nodiscard]] static Budget tighter(Budget a, Budget b) {
    const double as = std::isnan(a.seconds)
                          ? std::numeric_limits<double>::infinity()
                          : a.seconds;
    const double bs = std::isnan(b.seconds)
                          ? std::numeric_limits<double>::infinity()
                          : b.seconds;
    return {std::min(as, bs)};
  }
};

}  // namespace archex::milp
