#include "milp/basis_lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace archex::milp {

namespace {

constexpr double kSingularTol = 1e-11;  // same floor as the dense Gauss-Jordan
constexpr int kMarkowitzCandidates = 4;  // columns examined per pivot step

// ---------------------------------------------------------------------------
// Dense kernel: the original explicit inverse, moved behind BasisRep.
// ---------------------------------------------------------------------------

class DenseBasis final : public BasisRep {
 public:
  explicit DenseBasis(std::size_t m) : m_(m), binv_(m * m, 0.0), scratch_(m, 0.0) {}

  bool factorize(const std::int32_t* col_start, const ColEntry* col_ent,
                 const std::vector<std::int32_t>& basic) override {
    // Gauss-Jordan inversion of the basis matrix with partial pivoting.
    std::vector<double> work(m_ * m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t j = static_cast<std::size_t>(basic[i]);
      for (std::int32_t t = col_start[j]; t < col_start[j + 1]; ++t) {
        const ColEntry& e = col_ent[t];
        work[static_cast<std::size_t>(e.row) * m_ + i] = e.val;
      }
    }
    std::vector<double>& inv = binv_;
    std::fill(inv.begin(), inv.end(), 0.0);
    for (std::size_t i = 0; i < m_; ++i) inv[i * m_ + i] = 1.0;

    for (std::size_t k = 0; k < m_; ++k) {
      std::size_t piv = k;
      double best = std::abs(work[k * m_ + k]);
      for (std::size_t i = k + 1; i < m_; ++i) {
        const double v = std::abs(work[i * m_ + k]);
        if (v > best) { best = v; piv = i; }
      }
      if (best < kSingularTol) return false;  // singular basis
      if (piv != k) {
        // A row swap is just another elementary row operation: the
        // accumulated sequence R with R*B = I satisfies R = B^-1 exactly.
        for (std::size_t j = 0; j < m_; ++j) {
          std::swap(work[piv * m_ + j], work[k * m_ + j]);
          std::swap(inv[piv * m_ + j], inv[k * m_ + j]);
        }
      }
      const double d = 1.0 / work[k * m_ + k];
      for (std::size_t j = 0; j < m_; ++j) {
        work[k * m_ + j] *= d;
        inv[k * m_ + j] *= d;
      }
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == k) continue;
        const double f = work[i * m_ + k];
        if (f == 0.0) continue;
        for (std::size_t j = 0; j < m_; ++j) {
          work[i * m_ + j] -= f * work[k * m_ + j];
          inv[i * m_ + j] -= f * inv[k * m_ + j];
        }
      }
    }
    return true;
  }

  void ftran(std::vector<double>& x) const override {
    std::vector<double>& y = scratch_;
    std::fill(y.begin(), y.end(), 0.0);
    for (std::size_t k = 0; k < m_; ++k) {
      const double xk = x[k];
      if (xk == 0.0) continue;
      const double* bk = binv_.data() + k;  // column k of row-major Binv
      for (std::size_t i = 0; i < m_; ++i) y[i] += bk[i * m_] * xk;
    }
    std::copy(y.begin(), y.end(), x.begin());
  }

  void btran(std::vector<double>& x) const override {
    std::vector<double>& y = scratch_;
    std::fill(y.begin(), y.end(), 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const double ci = x[i];
      if (ci == 0.0) continue;
      const double* row = binv_.data() + i * m_;
      for (std::size_t j = 0; j < m_; ++j) y[j] += ci * row[j];
    }
    std::copy(y.begin(), y.end(), x.begin());
  }

  void update(const std::vector<double>& w, std::size_t r,
              const std::vector<std::int32_t>& wnz) override {
    // Binv <- E * Binv with E the elementary matrix mapping w to e_r.
    const double piv = w[r];
    double* rowr = binv_.data() + r * m_;
    const double inv_piv = 1.0 / piv;
    for (std::size_t j = 0; j < m_; ++j) rowr[j] *= inv_piv;
    for (const std::int32_t i32 : wnz) {
      const std::size_t i = static_cast<std::size_t>(i32);
      if (i == r) continue;
      const double f = w[i];
      double* rowi = binv_.data() + i * m_;
      for (std::size_t j = 0; j < m_; ++j) rowi[j] -= f * rowr[j];
    }
  }

  [[nodiscard]] bool fill_heavy() const override { return false; }
  [[nodiscard]] std::shared_ptr<const FactorState> snapshot() const override {
    return nullptr;
  }
  bool adopt(const std::shared_ptr<const FactorState>& /*state*/) override {
    return false;
  }
  [[nodiscard]] const char* name() const override { return "dense"; }

 private:
  std::size_t m_;
  std::vector<double> binv_;  ///< dense m x m, row-major
  mutable std::vector<double> scratch_;
};

// ---------------------------------------------------------------------------
// Sparse LU kernel.
// ---------------------------------------------------------------------------

class SparseLuBasis final : public BasisRep {
 public:
  SparseLuBasis(std::size_t m, double markowitz_tol, double eta_fill_factor)
      : m_(m),
        markowitz_tol_(markowitz_tol),
        eta_fill_factor_(eta_fill_factor),
        lu_(std::make_shared<const LuData>()),
        solve_scratch_(m, 0.0),
        tk_scratch_(m, 0.0) {}

  bool factorize(const std::int32_t* col_start, const ColEntry* col_ent,
                 const std::vector<std::int32_t>& basic) override;
  void ftran(std::vector<double>& x) const override;
  void btran(std::vector<double>& x) const override;

  void update(const std::vector<double>& w, std::size_t r,
              const std::vector<std::int32_t>& wnz) override {
    etas_.pos.push_back(static_cast<std::int32_t>(r));
    etas_.pivot.push_back(w[r]);
    etas_.inv_pivot.push_back(1.0 / w[r]);
    for (const std::int32_t i : wnz) {
      if (static_cast<std::size_t>(i) != r) {
        etas_.ent.push_back({i, w[static_cast<std::size_t>(i)]});
      }
    }
    etas_.start.push_back(static_cast<std::int32_t>(etas_.ent.size()));
  }

  [[nodiscard]] bool fill_heavy() const override {
    // Refactorize early once the eta file dwarfs the factors themselves:
    // each eta is applied to every subsequent ftran/btran, so past this
    // point replaying updates costs more than a fresh factorization.
    return etas_.count() > 0 &&
           static_cast<double>(etas_.nnz()) >
               eta_fill_factor_ * static_cast<double>(lu_->nnz());
  }

  [[nodiscard]] std::shared_ptr<const FactorState> snapshot() const override {
    auto s = std::make_shared<FactorState>();
    s->lu = lu_;
    s->etas = etas_;
    return s;
  }

  bool adopt(const std::shared_ptr<const FactorState>& state) override {
    if (state == nullptr || state->lu == nullptr || state->lu->m != m_) {
      return false;
    }
    lu_ = state->lu;
    etas_ = state->etas;
    return true;
  }

  [[nodiscard]] const char* name() const override { return "sparse-lu"; }

 private:
  std::size_t m_;
  double markowitz_tol_;
  double eta_fill_factor_;
  std::shared_ptr<const LuData> lu_;
  EtaFile etas_;

  mutable std::vector<double> solve_scratch_;  ///< U-solve / L^T-solve output
  mutable std::vector<double> tk_scratch_;     ///< per-pivot temporaries

  // Factorization workspace (reused across refactorizations).
  std::vector<std::vector<ColEntry>> wcols_;      ///< working columns (active rows)
  std::vector<std::vector<std::int32_t>> rpat_;   ///< positions per row (may go stale)
  std::vector<std::int32_t> row_count_;           ///< approximate active row counts
  std::vector<double> wval_;                      ///< dense scatter values
  std::vector<std::int32_t> wstamp_;              ///< scatter marks
  std::int32_t stamp_ = 0;

  // Count-bucket lists over the active columns: bucket c chains the
  // positions whose working column currently holds c entries, so the
  // Markowitz search finds minimum-count candidates without scanning every
  // position per pivot step (the scan cost used to dominate factorize).
  std::vector<std::int32_t> bkt_head_;  ///< size m+1, head per count, -1 empty
  std::vector<std::int32_t> bkt_next_;
  std::vector<std::int32_t> bkt_prev_;
  std::vector<std::int32_t> bkt_cnt_;   ///< bucket a position is linked into

  void bkt_unlink(std::int32_t pos) {
    const std::int32_t nx = bkt_next_[static_cast<std::size_t>(pos)];
    const std::int32_t pv = bkt_prev_[static_cast<std::size_t>(pos)];
    if (pv >= 0) {
      bkt_next_[static_cast<std::size_t>(pv)] = nx;
    } else {
      bkt_head_[static_cast<std::size_t>(bkt_cnt_[static_cast<std::size_t>(pos)])] = nx;
    }
    if (nx >= 0) bkt_prev_[static_cast<std::size_t>(nx)] = pv;
  }
  void bkt_link(std::int32_t pos, std::int32_t c) {
    bkt_cnt_[static_cast<std::size_t>(pos)] = c;
    bkt_prev_[static_cast<std::size_t>(pos)] = -1;
    const std::int32_t h = bkt_head_[static_cast<std::size_t>(c)];
    bkt_next_[static_cast<std::size_t>(pos)] = h;
    if (h >= 0) bkt_prev_[static_cast<std::size_t>(h)] = pos;
    bkt_head_[static_cast<std::size_t>(c)] = pos;
  }
};

bool SparseLuBasis::factorize(const std::int32_t* col_start, const ColEntry* col_ent,
                              const std::vector<std::int32_t>& basic) {
  etas_.clear();
  auto lu = std::make_shared<LuData>();
  lu->m = m_;
  if (m_ == 0) {
    lu_ = std::move(lu);
    return true;
  }
  // Size the fresh factor arrays off the previous factorization so the
  // push_back growth below rarely reallocates mid-elimination.
  lu->l_ent.reserve(lu_->l_ent.size() + 16);
  lu->u_ent.reserve(lu_->u_ent.size() + 16);

  // Working copy of the basis matrix, column-wise by basis position, plus a
  // row-wise pattern of positions. Invariant: wcols_ holds exactly the
  // entries over still-active (unpivoted) rows; rpat_ may carry stale
  // positions (cancellations leave them behind), detected via the scatter.
  // clear() instead of assign() keeps each inner vector's capacity across
  // refactorizations — the fill pattern barely changes between them.
  if (wcols_.size() != m_) {
    wcols_.resize(m_);
    rpat_.resize(m_);
  }
  for (auto& wc : wcols_) wc.clear();
  for (auto& rp : rpat_) rp.clear();
  row_count_.assign(m_, 0);
  for (std::size_t pos = 0; pos < m_; ++pos) {
    const std::size_t j = static_cast<std::size_t>(basic[pos]);
    auto& wc = wcols_[pos];
    wc.reserve(static_cast<std::size_t>(col_start[j + 1] - col_start[j]));
    for (std::int32_t t = col_start[j]; t < col_start[j + 1]; ++t) {
      const ColEntry& e = col_ent[t];
      if (e.val == 0.0) continue;
      wc.push_back(e);
      rpat_[static_cast<std::size_t>(e.row)].push_back(static_cast<std::int32_t>(pos));
      ++row_count_[static_cast<std::size_t>(e.row)];
    }
  }
  if (wval_.size() != m_) {
    wval_.assign(m_, 0.0);
    wstamp_.assign(m_, 0);
    stamp_ = 0;
  }
  bkt_head_.assign(m_ + 1, -1);
  bkt_next_.assign(m_, -1);
  bkt_prev_.assign(m_, -1);
  bkt_cnt_.assign(m_, 0);
  for (std::size_t pos = 0; pos < m_; ++pos) {
    bkt_link(static_cast<std::int32_t>(pos),
             static_cast<std::int32_t>(wcols_[pos].size()));
  }

  std::vector<char> pos_done(m_, 0);
  lu->pivot_row.resize(m_);
  lu->pivot_pos.resize(m_);
  lu->u_diag.resize(m_);
  lu->u_diag_inv.resize(m_);
  lu->l_start.assign(1, 0);
  lu->u_start.assign(1, 0);

  std::vector<std::int32_t> lrows;
  std::vector<double> lvals;
  std::vector<std::int32_t> fills;

  for (std::size_t k = 0; k < m_; ++k) {
    // --- Markowitz pivot search with threshold partial pivoting ---
    // The count buckets hand over the minimum-count columns directly;
    // examine a few of them, and within a column only entries within
    // markowitz_tol of the column max are acceptable (stability), the
    // lowest (r-1)(c-1) fill bound among acceptable entries winning.
    std::size_t minc = 0;
    while (minc <= m_ && bkt_head_[minc] < 0) ++minc;
    if (minc == 0 || minc > m_) {
      return false;  // an active position has an empty column: singular
    }

    std::int32_t best_pos = -1;
    std::int32_t best_row = -1;
    double best_val = 0.0;
    long best_cost = std::numeric_limits<long>::max();
    auto consider = [&](std::int32_t pos) {
      const auto& wc = wcols_[static_cast<std::size_t>(pos)];
      double cmax = 0.0;
      for (const ColEntry& e : wc) cmax = std::max(cmax, std::abs(e.val));
      if (cmax < kSingularTol) return;  // unpivotable for now
      const double accept = markowitz_tol_ * cmax;
      for (const ColEntry& e : wc) {
        const double av = std::abs(e.val);
        if (av < accept) continue;
        const long cost =
            static_cast<long>(row_count_[static_cast<std::size_t>(e.row)] - 1) *
            static_cast<long>(wc.size() - 1);
        if (cost < best_cost ||
            (cost == best_cost && av > std::abs(best_val))) {
          best_cost = cost;
          best_pos = pos;
          best_row = e.row;
          best_val = e.val;
        }
      }
    };
    int examined = 0;
    for (std::int32_t p = bkt_head_[minc];
         p >= 0 && examined < kMarkowitzCandidates;
         p = bkt_next_[static_cast<std::size_t>(p)], ++examined) {
      consider(p);
    }
    if (best_pos < 0) {
      // None of the sampled min-count columns is acceptable: fall back to
      // every active column, in ascending count order.
      for (std::size_t c = 1; c <= m_ && best_pos < 0; ++c) {
        for (std::int32_t p = bkt_head_[c]; p >= 0;
             p = bkt_next_[static_cast<std::size_t>(p)]) {
          consider(p);
        }
      }
    }
    if (best_pos < 0) return false;  // no acceptable pivot anywhere: singular

    const std::size_t ppos = static_cast<std::size_t>(best_pos);
    const std::size_t prow = static_cast<std::size_t>(best_row);
    const double pval = best_val;

    // L column: the other entries of the pivot column, divided by the pivot.
    lrows.clear();
    lvals.clear();
    for (const ColEntry& e : wcols_[ppos]) {
      if (static_cast<std::size_t>(e.row) == prow) continue;
      lrows.push_back(e.row);
      lvals.push_back(e.val / pval);
      --row_count_[static_cast<std::size_t>(e.row)];  // loses its ppos entry
    }

    // Eliminate the pivot row from every other column that carries it.
    for (const std::int32_t q32 : rpat_[prow]) {
      const std::size_t q = static_cast<std::size_t>(q32);
      if (pos_done[q] || q == ppos) continue;
      auto& wc = wcols_[q];
      ++stamp_;
      for (const ColEntry& e : wc) {
        wval_[static_cast<std::size_t>(e.row)] = e.val;
        wstamp_[static_cast<std::size_t>(e.row)] = stamp_;
      }
      if (wstamp_[prow] != stamp_) continue;  // stale pattern entry: skip
      const double uq = wval_[prow];
      lu->u_ent.push_back({q32, uq});
      fills.clear();
      for (std::size_t t = 0; t < lrows.size(); ++t) {
        const std::size_t i = static_cast<std::size_t>(lrows[t]);
        const double delta = lvals[t] * uq;
        if (wstamp_[i] == stamp_) {
          wval_[i] -= delta;
        } else {
          wval_[i] = -delta;
          wstamp_[i] = stamp_;
          fills.push_back(lrows[t]);
        }
      }
      // Gather the updated column: surviving old entries (minus the pivot
      // row and exact cancellations) plus fill-in.
      std::size_t out = 0;
      for (std::size_t t = 0; t < wc.size(); ++t) {
        const std::size_t i = static_cast<std::size_t>(wc[t].row);
        if (i == prow) continue;
        const double v = wval_[i];
        if (v == 0.0) {
          --row_count_[i];  // cancelled; rpat_ keeps a stale entry
          continue;
        }
        wc[out++] = {wc[t].row, v};
      }
      wc.resize(out);
      for (const std::int32_t f : fills) {
        const std::size_t i = static_cast<std::size_t>(f);
        if (wval_[i] == 0.0) continue;
        wc.push_back({f, wval_[i]});
        rpat_[i].push_back(q32);
        ++row_count_[i];
      }
      bkt_unlink(q32);
      bkt_link(q32, static_cast<std::int32_t>(wc.size()));
    }

    // Retire the pivot.
    lu->pivot_row[static_cast<std::size_t>(k)] = static_cast<std::int32_t>(prow);
    lu->pivot_pos[static_cast<std::size_t>(k)] = static_cast<std::int32_t>(ppos);
    lu->u_diag[static_cast<std::size_t>(k)] = pval;
    lu->u_diag_inv[static_cast<std::size_t>(k)] = 1.0 / pval;
    for (std::size_t t = 0; t < lrows.size(); ++t) {
      lu->l_ent.push_back({lrows[t], lvals[t]});
    }
    lu->l_start.push_back(static_cast<std::int32_t>(lu->l_ent.size()));
    lu->u_start.push_back(static_cast<std::int32_t>(lu->u_ent.size()));
    pos_done[ppos] = 1;
    bkt_unlink(best_pos);
    wcols_[ppos].clear();
    rpat_[prow].clear();
  }

  lu_ = std::move(lu);
  return true;
}

void SparseLuBasis::ftran(std::vector<double>& x) const {
  const LuData& lu = *lu_;
  // L pass, in pivot order, on the row-indexed input.
  for (std::size_t k = 0; k < m_; ++k) {
    const double xk = x[static_cast<std::size_t>(lu.pivot_row[k])];
    if (xk == 0.0) continue;
    const std::int32_t b = lu.l_start[k];
    const std::int32_t e = lu.l_start[k + 1];
    for (std::int32_t t = b; t < e; ++t) {
      x[static_cast<std::size_t>(lu.l_ent[static_cast<std::size_t>(t)].row)] -=
          lu.l_ent[static_cast<std::size_t>(t)].val * xk;
    }
  }
  // U back-substitution, producing the position-indexed result.
  std::vector<double>& y = solve_scratch_;
  for (std::size_t kk = m_; kk-- > 0;) {
    double t = x[static_cast<std::size_t>(lu.pivot_row[kk])];
    const std::int32_t b = lu.u_start[kk];
    const std::int32_t e = lu.u_start[kk + 1];
    for (std::int32_t s = b; s < e; ++s) {
      const ColEntry& en = lu.u_ent[static_cast<std::size_t>(s)];
      t -= en.val * y[static_cast<std::size_t>(en.row)];  // en.row is a position
    }
    y[static_cast<std::size_t>(lu.pivot_pos[kk])] = t * lu.u_diag_inv[kk];
  }
  std::copy(y.begin(), y.end(), x.begin());
  // Eta replay, oldest first: x := E_k^-1 ... E_1^-1 x.
  const int ne = etas_.count();
  for (int k = 0; k < ne; ++k) {
    const std::size_t r = static_cast<std::size_t>(etas_.pos[static_cast<std::size_t>(k)]);
    const double t = x[r] * etas_.inv_pivot[static_cast<std::size_t>(k)];
    x[r] = t;
    if (t == 0.0) continue;
    const std::int32_t b = etas_.start[static_cast<std::size_t>(k)];
    const std::int32_t e = etas_.start[static_cast<std::size_t>(k) + 1];
    for (std::int32_t s = b; s < e; ++s) {
      const ColEntry& en = etas_.ent[static_cast<std::size_t>(s)];
      x[static_cast<std::size_t>(en.row)] -= en.val * t;
    }
  }
}

void SparseLuBasis::btran(std::vector<double>& x) const {
  // Eta transposes, newest first: x := E_1^-T ... E_k^-T x.
  for (int k = etas_.count(); k-- > 0;) {
    const std::size_t r = static_cast<std::size_t>(etas_.pos[static_cast<std::size_t>(k)]);
    double s = x[r];
    const std::int32_t b = etas_.start[static_cast<std::size_t>(k)];
    const std::int32_t e = etas_.start[static_cast<std::size_t>(k) + 1];
    for (std::int32_t t = b; t < e; ++t) {
      const ColEntry& en = etas_.ent[static_cast<std::size_t>(t)];
      s -= en.val * x[static_cast<std::size_t>(en.row)];
    }
    x[r] = s * etas_.inv_pivot[static_cast<std::size_t>(k)];
  }
  const LuData& lu = *lu_;
  // U^T forward solve on the position-indexed input.
  std::vector<double>& tk = tk_scratch_;
  for (std::size_t k = 0; k < m_; ++k) {
    const double t = x[static_cast<std::size_t>(lu.pivot_pos[k])] * lu.u_diag_inv[k];
    tk[k] = t;
    if (t == 0.0) continue;
    const std::int32_t b = lu.u_start[k];
    const std::int32_t e = lu.u_start[k + 1];
    for (std::int32_t s = b; s < e; ++s) {
      const ColEntry& en = lu.u_ent[static_cast<std::size_t>(s)];
      x[static_cast<std::size_t>(en.row)] -= en.val * t;  // en.row is a position
    }
  }
  // L^T backward solve, producing the row-indexed result.
  std::vector<double>& y = solve_scratch_;
  for (std::size_t kk = m_; kk-- > 0;) {
    double v = tk[kk];
    const std::int32_t b = lu.l_start[kk];
    const std::int32_t e = lu.l_start[kk + 1];
    for (std::int32_t s = b; s < e; ++s) {
      const ColEntry& en = lu.l_ent[static_cast<std::size_t>(s)];
      v -= en.val * y[static_cast<std::size_t>(en.row)];
    }
    y[static_cast<std::size_t>(lu.pivot_row[kk])] = v;
  }
  std::copy(y.begin(), y.end(), x.begin());
}

}  // namespace

std::unique_ptr<BasisRep> make_basis_rep(BasisKernel kernel, std::size_t m,
                                         double markowitz_tol,
                                         double eta_fill_factor) {
  if (kernel == BasisKernel::Dense) return std::make_unique<DenseBasis>(m);
  return std::make_unique<SparseLuBasis>(m, markowitz_tol, eta_fill_factor);
}

}  // namespace archex::milp
