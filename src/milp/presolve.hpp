/// \file presolve.hpp
/// MILP presolve: bound propagation, singleton-row elimination, fixed-variable
/// substitution and redundant-row removal.
///
/// The ArchEx pattern encoder deliberately emits constraints in the most
/// readable form (one pattern instance => one block of rows); presolve is
/// where trivially-implied structure is stripped before the simplex sees the
/// matrix. This mirrors how the paper's toolchain relies on CPLEX's presolve.
#pragma once

#include <vector>

#include "milp/model.hpp"

namespace archex::milp {

/// Outcome of presolving a model, with enough information to map a solution
/// of the reduced model back to the original variable space.
struct PresolveResult {
  bool infeasible = false;
  Model reduced;
  /// For each reduced variable, the original variable index.
  std::vector<std::int32_t> orig_of_reduced;
  /// Value of every original variable that presolve fixed (valid where
  /// `fixed[i]` is true).
  std::vector<bool> fixed;
  std::vector<double> fixed_value;
  /// Rows of the original model dropped as redundant or converted to bounds.
  std::size_t rows_removed = 0;
  std::size_t vars_fixed = 0;
  std::size_t bounds_tightened = 0;
  /// Original-model indices of every row the reduced model no longer carries
  /// (redundant, singleton-converted, or emptied by substitution — a
  /// superset of the `rows_removed` count, which excludes the last kind).
  /// Sorted ascending. This is what lets the perf report charge presolve
  /// eliminations back to the pattern that emitted each row
  /// (`Problem::origin_of_row`).
  std::vector<std::int32_t> removed_rows;

  /// Expands a reduced-space solution vector to original space.
  [[nodiscard]] std::vector<double> postsolve(const std::vector<double>& reduced_x) const;
};

/// Options controlling the presolve fixpoint loop.
struct PresolveOptions {
  int max_passes = 10;
  double tol = 1e-9;
};

/// Runs presolve on `model`. The reduced model preserves the optimal value
/// (fixed variables' objective contribution is folded into the reduced
/// objective constant).
PresolveResult presolve(const Model& model, PresolveOptions options = {});

}  // namespace archex::milp
