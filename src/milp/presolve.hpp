/// \file presolve.hpp
/// MILP presolve: bound propagation, singleton-row elimination, fixed-variable
/// substitution and redundant-row removal.
///
/// The ArchEx pattern encoder deliberately emits constraints in the most
/// readable form (one pattern instance => one block of rows); presolve is
/// where trivially-implied structure is stripped before the simplex sees the
/// matrix. This mirrors how the paper's toolchain relies on CPLEX's presolve.
#pragma once

#include <vector>

#include "milp/model.hpp"

namespace archex::milp {

/// One bound tightening produced by propagate_bounds, with the row that
/// implied it — the raw material for infeasibility explanations (the
/// structural analyzer's propagation pass and the IIS deletion filter both
/// consume these).
struct BoundChange {
  std::int32_t col = -1;  ///< tightened column
  std::int32_t row = -1;  ///< row that implied it; -1 = integer rounding alone
  double old_lb = 0.0;
  double old_ub = 0.0;
  double new_lb = 0.0;
  double new_ub = 0.0;
};

/// Options for the standalone bound-propagation fixpoint.
struct PropagateOptions {
  int max_passes = 64;          ///< fixpoint cap (cyclic chains terminate here)
  double tol = 1e-9;            ///< minimum relative improvement to accept
  bool record_changes = false;  ///< capture per-tightening BoundChange records
  std::size_t max_changes = 65536;  ///< cap on recorded changes
};

/// Result of running interval-arithmetic bound propagation to a fixpoint.
struct Propagation {
  bool infeasible = false;
  /// Row whose activity interval proved infeasibility (-1 when a column
  /// domain emptied instead, see `infeasible_col`).
  std::int32_t infeasible_row = -1;
  std::int32_t infeasible_col = -1;
  bool converged = false;  ///< fixpoint reached within max_passes
  int passes = 0;
  std::size_t bounds_tightened = 0;
  std::size_t vars_fixed = 0;  ///< domains collapsed to a point (not fixed on entry)
  /// Propagated bounds per column (tightest proven box).
  std::vector<double> lb, ub;
  std::vector<BoundChange> changes;  ///< populated when record_changes
};

/// Runs interval-arithmetic activity-bound propagation over the rows of
/// `model` to a fixpoint: proves static infeasibility, fixes variables and
/// tightens bounds without solving anything. Handles rows with up to one
/// infinite activity contribution per side (the residual still propagates
/// onto the unbounded column), rounds integer bounds inward, and terminates
/// on cyclic tightening chains via `max_passes` (converged=false then).
///
/// `row_mask`, when non-null, restricts propagation to rows with a nonzero
/// entry (size must equal num_constraints) — the IIS deletion filter probes
/// subsystems this way without copying the model.
Propagation propagate_bounds(const Model& model, const PropagateOptions& options = {},
                             const std::vector<char>* row_mask = nullptr);

/// Outcome of presolving a model, with enough information to map a solution
/// of the reduced model back to the original variable space.
struct PresolveResult {
  bool infeasible = false;
  Model reduced;
  /// For each reduced variable, the original variable index.
  std::vector<std::int32_t> orig_of_reduced;
  /// Value of every original variable that presolve fixed (valid where
  /// `fixed[i]` is true).
  std::vector<bool> fixed;
  std::vector<double> fixed_value;
  /// Rows of the original model dropped as redundant or converted to bounds.
  std::size_t rows_removed = 0;
  std::size_t vars_fixed = 0;
  std::size_t bounds_tightened = 0;
  /// Tightenings and fixings proven by the up-front bound-propagation
  /// strengthen step (propagate_bounds), before the reduction loop runs.
  /// Counted separately from `bounds_tightened` / `vars_fixed` so the
  /// strengthen step's contribution is visible in `Solution::metrics`.
  std::size_t strengthen_tightened = 0;
  std::size_t strengthen_fixed = 0;
  /// Right-hand sides rounded by the integral-row GCD strengthening of the
  /// reduced model (all-integer rows with integral coefficients admit
  /// `rhs -> floor/ceil to the nearest multiple of gcd`).
  std::size_t rhs_strengthened = 0;
  /// Original-model indices of every row the reduced model no longer carries
  /// (redundant, singleton-converted, or emptied by substitution — a
  /// superset of the `rows_removed` count, which excludes the last kind).
  /// Sorted ascending. This is what lets the perf report charge presolve
  /// eliminations back to the pattern that emitted each row
  /// (`Problem::origin_of_row`).
  std::vector<std::int32_t> removed_rows;

  /// Expands a reduced-space solution vector to original space.
  [[nodiscard]] std::vector<double> postsolve(const std::vector<double>& reduced_x) const;
};

/// Options controlling the presolve fixpoint loop.
struct PresolveOptions {
  int max_passes = 10;
  double tol = 1e-9;
  /// Run the bound-propagation strengthen step (propagate_bounds fixpoint +
  /// integral-row rhs rounding) before the reduction loop. On by default;
  /// the analyzer's propagation pass uses the same engine, so presolve and
  /// `milp_analyze` agree on what is statically provable.
  bool strengthen = true;
};

/// Runs presolve on `model`. The reduced model preserves the optimal value
/// (fixed variables' objective contribution is folded into the reduced
/// objective constant).
PresolveResult presolve(const Model& model, PresolveOptions options = {});

}  // namespace archex::milp
