#include "milp/fault.hpp"

#include <cstdlib>

namespace archex::milp {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Strict full-token integer parse; returns nullopt on junk or negatives.
std::optional<std::int64_t> parse_count(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || v < 0) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<std::uint64_t> parse_seed(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size()) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

const char* to_string(FaultSite s) {
  switch (s) {
    case FaultSite::SingularFactor: return "singular";
    case FaultSite::NanPivot: return "nan-pivot";
    case FaultSite::Deadline: return "deadline";
    case FaultSite::WorkerStall: return "stall";
    case FaultSite::BadAlloc: return "bad-alloc";
  }
  return "unknown";
}

std::optional<FaultSite> parse_fault_site(const std::string& name) {
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (name == to_string(site)) return site;
  }
  return std::nullopt;
}

void FaultPlan::arm(FaultSite site, std::int64_t nth, std::uint64_t seed,
                    std::int64_t repeat) {
  Site& s = sites_[static_cast<std::size_t>(site)];
  s.nth = nth;
  s.repeat = repeat < 1 ? 1 : repeat;
  s.seed = seed;
  s.armed = true;
}

bool FaultPlan::arm_from_spec(const std::string& spec) {
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos) return false;
  const std::size_t c2 = spec.find(':', c1 + 1);
  const std::string site_name = spec.substr(0, c1);
  const std::string nth_tok = c2 == std::string::npos
                                  ? spec.substr(c1 + 1)
                                  : spec.substr(c1 + 1, c2 - c1 - 1);
  const std::optional<FaultSite> site = parse_fault_site(site_name);
  const std::optional<std::int64_t> nth = parse_count(nth_tok);
  if (!site || !nth || *nth < 1) return false;
  std::uint64_t seed = 0;
  std::int64_t repeat = 1;
  if (c2 != std::string::npos) {
    const std::size_t c3 = spec.find(':', c2 + 1);
    const std::string seed_tok = c3 == std::string::npos
                                     ? spec.substr(c2 + 1)
                                     : spec.substr(c2 + 1, c3 - c2 - 1);
    const std::optional<std::uint64_t> s = parse_seed(seed_tok);
    if (!s) return false;
    seed = *s;
    if (c3 != std::string::npos) {
      const std::optional<std::int64_t> r = parse_count(spec.substr(c3 + 1));
      if (!r || *r < 1) return false;
      repeat = *r;
    }
  }
  arm(*site, *nth, seed, repeat);
  return true;
}

bool FaultPlan::fire(FaultSite site) {
  Site& s = sites_[static_cast<std::size_t>(site)];
  const std::int64_t k = s.count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!s.armed || k < s.nth) return false;
  bool hit = k - s.nth < s.repeat;  // the [nth, nth + repeat) window
  if (!hit && s.seed != 0) {
    hit = (splitmix64(s.seed ^ static_cast<std::uint64_t>(k)) & 7u) == 0;
  }
  if (hit) s.fired.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

std::int64_t FaultPlan::occurrences(FaultSite site) const {
  return sites_[static_cast<std::size_t>(site)].count.load(std::memory_order_relaxed);
}

std::int64_t FaultPlan::fired(FaultSite site) const {
  return sites_[static_cast<std::size_t>(site)].fired.load(std::memory_order_relaxed);
}

bool FaultPlan::any_fired() const {
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    if (fired(static_cast<FaultSite>(i)) > 0) return true;
  }
  return false;
}

}  // namespace archex::milp
