#include "milp/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace archex::milp {

namespace {

constexpr const char* kMagic = "archex-bb-checkpoint";
// Version 2 added the "degraded" line (abandoned-subtree count + bound);
// version-1 files are refused and the solve starts fresh.
constexpr int kVersion = 2;

void fnv_mix(std::uint64_t& h, const void* bytes, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
}

void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) { fnv_mix(h, &v, sizeof v); }

void fnv_mix_double(std::uint64_t& h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  fnv_mix_u64(h, bits);
}

/// Renders a double as a round-trippable hexfloat token ("%a" — strtod reads
/// it back bit-exactly, including inf).
std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Pull-based token reader over the whole file; every parse failure latches.
class TokenReader {
 public:
  explicit TokenReader(std::istream& in) : in_(in) {}

  std::string next() {
    std::string tok;
    if (!(in_ >> tok)) ok_ = false;
    return tok;
  }

  std::int64_t next_int() {
    const std::string tok = next();
    if (!ok_) return 0;
    char* end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end != tok.c_str() + tok.size()) ok_ = false;
    return static_cast<std::int64_t>(v);
  }

  std::uint64_t next_hex_u64() {
    const std::string tok = next();
    if (!ok_) return 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 16);
    if (end != tok.c_str() + tok.size()) ok_ = false;
    return static_cast<std::uint64_t>(v);
  }

  double next_double() {
    const std::string tok = next();
    if (!ok_) return 0.0;
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) ok_ = false;
    return v;
  }

  /// Consumes a literal keyword token.
  void expect(const char* keyword) {
    if (next() != keyword) ok_ = false;
  }

  [[nodiscard]] bool ok() const { return ok_; }

 private:
  std::istream& in_;
  bool ok_ = true;
};

}  // namespace

std::uint64_t model_fingerprint(const Model& model) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  fnv_mix_u64(h, model.num_vars());
  fnv_mix_u64(h, model.num_constraints());
  fnv_mix_u64(h, static_cast<std::uint64_t>(model.objective_sense()));
  for (const Variable& v : model.vars()) {
    fnv_mix_double(h, v.lb);
    fnv_mix_double(h, v.ub);
    fnv_mix_u64(h, static_cast<std::uint64_t>(v.type));
  }
  for (const LinConstraint& c : model.constraints()) {
    fnv_mix_u64(h, static_cast<std::uint64_t>(c.sense));
    fnv_mix_double(h, c.rhs);
    fnv_mix_u64(h, c.expr.terms().size());
    for (const Term& t : c.expr.terms()) {
      fnv_mix_u64(h, static_cast<std::uint64_t>(t.var.index));
      fnv_mix_double(h, t.coef);
    }
  }
  fnv_mix_double(h, model.objective().constant());
  fnv_mix_u64(h, model.objective().terms().size());
  for (const Term& t : model.objective().terms()) {
    fnv_mix_u64(h, static_cast<std::uint64_t>(t.var.index));
    fnv_mix_double(h, t.coef);
  }
  return h;
}

bool save_checkpoint(const std::string& path, const CheckpointData& data) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;

  bool ok = true;
  auto put = [&](const std::string& s) {
    if (std::fputs(s.c_str(), f) < 0) ok = false;
  };
  {
    char head[128];
    std::snprintf(head, sizeof head, "%s %d\nfingerprint %016llx\nnodes %lld\n",
                  kMagic, kVersion,
                  static_cast<unsigned long long>(data.fingerprint),
                  static_cast<long long>(data.nodes));
    put(head);
  }
  put("root_bound " + hex_double(data.root_bound) + "\n");
  put("degraded " + std::to_string(data.degraded_nodes) + " " +
      hex_double(data.degraded_bound) + "\n");
  put("incumbent " + std::string(data.has_incumbent ? "1 " : "0 ") +
      hex_double(data.has_incumbent ? data.incumbent_obj : 0.0) + "\n");
  put("x " + std::to_string(data.incumbent_x.size()));
  for (double v : data.incumbent_x) put(" " + hex_double(v));
  put("\nfrontier " + std::to_string(data.frontier.size()) + "\n");
  for (const CheckpointNode& n : data.frontier) {
    put("node " + hex_double(n.bound) + " " + std::to_string(n.retries) + " " +
        std::to_string(n.path.size()));
    for (const BoundDelta& d : n.path) {
      put(" " + std::to_string(d.col) + " " + hex_double(d.lb) + " " +
          hex_double(d.ub));
    }
    put("\n");
  }
  put("end\n");

  if (std::fflush(f) != 0) ok = false;
#if defined(__unix__) || defined(__APPLE__)
  // Make the rename durable: the data must be on disk before the new name
  // points at it, or a crash could leave a valid-looking truncated file.
  if (ok && fsync(fileno(f)) != 0) ok = false;
#endif
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool load_checkpoint(const std::string& path, CheckpointData& data) {
  std::ifstream in(path);
  if (!in) return false;
  TokenReader r(in);

  r.expect(kMagic);
  if (r.next_int() != kVersion) return false;
  r.expect("fingerprint");
  data.fingerprint = r.next_hex_u64();
  r.expect("nodes");
  data.nodes = r.next_int();
  r.expect("root_bound");
  data.root_bound = r.next_double();
  r.expect("degraded");
  data.degraded_nodes = r.next_int();
  data.degraded_bound = r.next_double();
  if (data.degraded_nodes < 0) return false;
  r.expect("incumbent");
  data.has_incumbent = r.next_int() != 0;
  data.incumbent_obj = r.next_double();
  r.expect("x");
  const std::int64_t nx = r.next_int();
  if (!r.ok() || nx < 0 || nx > 100'000'000) return false;
  data.incumbent_x.resize(static_cast<std::size_t>(nx));
  for (double& v : data.incumbent_x) v = r.next_double();
  r.expect("frontier");
  const std::int64_t nf = r.next_int();
  if (!r.ok() || nf < 0 || nf > 100'000'000) return false;
  data.frontier.clear();
  data.frontier.reserve(static_cast<std::size_t>(nf));
  for (std::int64_t i = 0; i < nf; ++i) {
    r.expect("node");
    CheckpointNode n;
    n.bound = r.next_double();
    n.retries = static_cast<std::int32_t>(r.next_int());
    const std::int64_t np = r.next_int();
    if (!r.ok() || np < 0 || np > 100'000'000) return false;
    n.path.resize(static_cast<std::size_t>(np));
    for (BoundDelta& d : n.path) {
      d.col = static_cast<std::int32_t>(r.next_int());
      d.lb = r.next_double();
      d.ub = r.next_double();
    }
    if (!r.ok()) return false;
    data.frontier.push_back(std::move(n));
  }
  r.expect("end");
  return r.ok();
}

}  // namespace archex::milp
