#include "milp/model.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace archex::milp {

const char* to_string(VarType t) {
  switch (t) {
    case VarType::Continuous: return "continuous";
    case VarType::Binary: return "binary";
    case VarType::Integer: return "integer";
  }
  return "?";
}

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::IterationLimit: return "iteration-limit";
    case SolveStatus::NodeLimit: return "node-limit";
    case SolveStatus::TimeLimit: return "time-limit";
    case SolveStatus::NumericalError: return "numerical-error";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, SolveStatus s) { return os << to_string(s); }

const char* to_string(TermReason r) {
  switch (r) {
    case TermReason::Optimal: return "optimal";
    case TermReason::Infeasible: return "infeasible";
    case TermReason::Unbounded: return "unbounded";
    case TermReason::NodeLimit: return "node-limit";
    case TermReason::TimeLimit: return "time-limit";
    case TermReason::IterationLimit: return "iteration-limit";
    case TermReason::Numerical: return "numerical";
  }
  return "?";
}

TermReason term_reason_from(SolveStatus s) {
  switch (s) {
    case SolveStatus::Optimal: return TermReason::Optimal;
    case SolveStatus::Infeasible: return TermReason::Infeasible;
    case SolveStatus::Unbounded: return TermReason::Unbounded;
    case SolveStatus::IterationLimit: return TermReason::IterationLimit;
    case SolveStatus::NodeLimit: return TermReason::NodeLimit;
    case SolveStatus::TimeLimit: return TermReason::TimeLimit;
    case SolveStatus::NumericalError: return TermReason::Numerical;
  }
  return TermReason::Numerical;
}

VarId Model::add_var(double lb, double ub, VarType type, std::string name) {
  if (lb > ub) throw std::invalid_argument("Model::add_var: lb > ub for " + name);
  if (type == VarType::Binary) {
    lb = std::max(lb, 0.0);
    ub = std::min(ub, 1.0);
  }
  vars_.push_back(Variable{lb, ub, type, std::move(name)});
  return VarId{static_cast<std::int32_t>(vars_.size() - 1)};
}

std::size_t Model::add_constraint(LinConstraint c) {
  for (const Term& t : c.expr.terms()) {
    if (!t.var.valid() || static_cast<std::size_t>(t.var.index) >= vars_.size()) {
      throw std::invalid_argument("Model::add_constraint: unknown variable in " + c.name);
    }
    if (!std::isfinite(t.coef)) {
      throw std::invalid_argument("Model::add_constraint: non-finite coefficient in " + c.name);
    }
  }
  constraints_.push_back(std::move(c));
  return constraints_.size() - 1;
}

void Model::set_objective(LinExpr obj, ObjectiveSense sense) {
  for (const Term& t : obj.terms()) {
    if (!t.var.valid() || static_cast<std::size_t>(t.var.index) >= vars_.size()) {
      throw std::invalid_argument("Model::set_objective: unknown variable");
    }
  }
  objective_ = std::move(obj);
  obj_sense_ = sense;
}

void Model::tighten_bounds(VarId v, double lb, double ub) {
  Variable& var = vars_[static_cast<std::size_t>(v.index)];
  var.lb = std::max(var.lb, lb);
  var.ub = std::min(var.ub, ub);
}

ModelStats Model::stats() const {
  ModelStats s;
  s.num_vars = vars_.size();
  for (const Variable& v : vars_) {
    switch (v.type) {
      case VarType::Binary: ++s.num_binary; break;
      case VarType::Integer: ++s.num_integer; break;
      case VarType::Continuous: ++s.num_continuous; break;
    }
  }
  s.num_constraints = constraints_.size();
  for (const LinConstraint& c : constraints_) s.num_nonzeros += c.expr.size();
  // "Standard form lines": one line per term plus one per row relation, plus
  // one declaration line per variable (bounds + integrality) — the way a
  // textual LP export counts.
  s.standard_form_lines = s.num_nonzeros + s.num_constraints + s.num_vars;
  return s;
}

bool Model::feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != vars_.size()) return false;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const Variable& v = vars_[i];
    if (x[i] < v.lb - tol || x[i] > v.ub + tol) return false;
    if (v.is_integral() && std::abs(x[i] - std::round(x[i])) > tol) return false;
  }
  return std::all_of(constraints_.begin(), constraints_.end(),
                     [&](const LinConstraint& c) { return c.satisfied(x, tol); });
}

void Model::write_lp(std::ostream& os) const {
  auto var_name = [&](VarId v) {
    const Variable& var = vars_[static_cast<std::size_t>(v.index)];
    return var.name.empty() ? "x" + std::to_string(v.index) : var.name;
  };
  auto write_expr = [&](const LinExpr& e) {
    bool first = true;
    for (const Term& t : e.terms()) {
      double c = t.coef;
      if (first) {
        if (c < 0) os << "- ";
      } else {
        os << (c < 0 ? " - " : " + ");
      }
      c = std::abs(c);
      if (c != 1.0) os << c << " ";
      os << var_name(t.var);
      first = false;
    }
    if (first) os << "0";
  };

  os << (obj_sense_ == ObjectiveSense::Minimize ? "Minimize\n obj: " : "Maximize\n obj: ");
  write_expr(objective_);
  os << "\nSubject To\n";
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    const LinConstraint& c = constraints_[i];
    os << " " << (c.name.empty() ? "c" + std::to_string(i) : c.name) << ": ";
    write_expr(c.expr);
    switch (c.sense) {
      case Sense::LE: os << " <= "; break;
      case Sense::GE: os << " >= "; break;
      case Sense::EQ: os << " = "; break;
    }
    os << c.rhs << "\n";
  }
  os << "Bounds\n";
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const Variable& v = vars_[i];
    os << " ";
    if (v.lb == -kInf) os << "-inf";
    else os << v.lb;
    os << " <= " << var_name(VarId{static_cast<std::int32_t>(i)}) << " <= ";
    if (v.ub == kInf) os << "+inf";
    else os << v.ub;
    os << "\n";
  }
  os << "Binaries\n";
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].type == VarType::Binary) {
      os << " " << var_name(VarId{static_cast<std::int32_t>(i)});
    }
  }
  os << "\nGenerals\n";
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].type == VarType::Integer) {
      os << " " << var_name(VarId{static_cast<std::int32_t>(i)});
    }
  }
  os << "\nEnd\n";
}

}  // namespace archex::milp
