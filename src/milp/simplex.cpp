#include "milp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string_view>
#include <utility>

#include "milp/fault.hpp"

namespace archex::milp {

namespace {
constexpr double kRatioTol = 1e-9;   // rows with |w| below this do not block
constexpr double kDegenTol = 1e-10;  // step sizes below this count as degenerate
}  // namespace

SimplexSolver::SimplexSolver(const Model& model, SimplexOptions options)
    : opts_(std::move(options)) {
  build_from_model(model);
}

void SimplexSolver::build_from_model(const Model& model) {
  m_ = model.num_constraints();
  n_ = model.num_vars();
  total_cols_ = n_ + 2 * m_;  // structural | slacks | artificials

  rhs_.resize(m_);
  cost_.assign(total_cols_, 0.0);
  lb_.resize(total_cols_);
  ub_.resize(total_cols_);

  for (std::size_t j = 0; j < n_; ++j) {
    const Variable& v = model.vars()[j];
    lb_[j] = v.lb;
    ub_[j] = v.ub;
  }

  // Compressed column storage, two passes: count entries per column, prefix
  // sum, then fill through a cursor. Processing rows in ascending order keeps
  // each column's entries row-sorted, exactly as the per-column push_backs
  // used to.
  col_start_.assign(total_cols_ + 1, 0);
  for (std::size_t i = 0; i < m_; ++i) {
    for (const Term& t : model.constraint(i).expr.terms()) {
      ++col_start_[static_cast<std::size_t>(t.var.index) + 1];
    }
    ++col_start_[n_ + i + 1];       // slack
    ++col_start_[n_ + m_ + i + 1];  // artificial
  }
  for (std::size_t j = 0; j < total_cols_; ++j) col_start_[j + 1] += col_start_[j];
  col_ent_.resize(static_cast<std::size_t>(col_start_[total_cols_]));
  std::vector<std::int32_t> cursor(col_start_.begin(), col_start_.end() - 1);

  for (std::size_t i = 0; i < m_; ++i) {
    const LinConstraint& c = model.constraint(i);
    rhs_[i] = c.rhs;
    for (const Term& t : c.expr.terms()) {
      col_ent_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(t.var.index)]++)] =
          {static_cast<std::int32_t>(i), t.coef};
    }
    // Slack: a_i x + s_i = b_i.
    const std::size_t s = n_ + i;
    col_ent_[static_cast<std::size_t>(cursor[s]++)] = {static_cast<std::int32_t>(i), 1.0};
    switch (c.sense) {
      case Sense::LE: lb_[s] = 0.0;   ub_[s] = kInf; break;
      case Sense::GE: lb_[s] = -kInf; ub_[s] = 0.0;  break;
      case Sense::EQ: lb_[s] = 0.0;   ub_[s] = 0.0;  break;
    }
    // Artificial: sign chosen per cold start in initial_basis().
    const std::size_t a = n_ + m_ + i;
    col_ent_[static_cast<std::size_t>(cursor[a]++)] = {static_cast<std::int32_t>(i), 1.0};
    lb_[a] = 0.0;
    ub_[a] = 0.0;  // enabled (un-fixed) only while basic in phase 1
  }

  // Row-wise adjacency over the immutable columns (structural + slack) for
  // sparse pivot-row pricing. Artificial columns are excluded: their matrix
  // sign mutates per cold start, so price_row handles them directly. Filling
  // by ascending column keeps each row's entries column-sorted, matching the
  // historical accumulation order.
  const std::size_t ns_end = static_cast<std::size_t>(col_start_[n_ + m_]);
  row_start_.assign(m_ + 1, 0);
  for (std::size_t t = 0; t < ns_end; ++t) {
    ++row_start_[static_cast<std::size_t>(col_ent_[t].row) + 1];
  }
  for (std::size_t i = 0; i < m_; ++i) row_start_[i + 1] += row_start_[i];
  row_ent_.resize(ns_end);
  std::vector<std::int32_t> rcur(row_start_.begin(), row_start_.end() - 1);
  for (std::size_t j = 0; j < n_ + m_; ++j) {
    for (std::int32_t t = col_start_[j]; t < col_start_[j + 1]; ++t) {
      const ColEntry& e = col_ent_[static_cast<std::size_t>(t)];
      row_ent_[static_cast<std::size_t>(rcur[static_cast<std::size_t>(e.row)]++)] =
          {static_cast<std::int32_t>(j), e.val};
    }
  }

  maximize_ = model.objective_sense() == ObjectiveSense::Maximize;
  const double flip = maximize_ ? -1.0 : 1.0;
  for (const Term& t : model.objective().terms()) {
    cost_[static_cast<std::size_t>(t.var.index)] = flip * t.coef;
  }
  obj_constant_ = flip * model.objective().constant();

  // Perturbation setup: deterministic per-column jitter in (0.5, 1].
  true_lb_ = lb_;
  true_ub_ = ub_;
  pert_.assign(total_cols_, 0.0);
  pert_cost_ = cost_;
  if (opts_.perturb) {
    auto jitter = [](std::size_t j, std::uint64_t salt) {
      std::uint64_t h = (j + 1) * 0x9E3779B97F4A7C15ull + salt;
      h ^= h >> 33;
      h *= 0xFF51AFD7ED558CCDull;
      h ^= h >> 33;
      return 0.5 + 0.5 * static_cast<double>(h % 1000003) / 1000003.0;
    };
    for (std::size_t j = 0; j < n_ + m_; ++j) {  // structural + slack only
      pert_[j] = opts_.bound_pert * jitter(j, 0x1234);
      if (lb_[j] > -kInf) lb_[j] -= pert_[j];
      if (ub_[j] < kInf) ub_[j] += pert_[j];
    }
    for (std::size_t j = 0; j < total_cols_; ++j) {
      pert_cost_[j] += opts_.cost_pert * (1.0 + std::abs(cost_[j])) * jitter(j, 0x5678);
    }
  }

  status_.assign(total_cols_, ColStatus::AtLower);
  xval_.assign(total_cols_, 0.0);
  basic_.assign(m_, -1);
  basis_pos_.assign(total_cols_, -1);
  rep_ = make_basis_rep(opts_.kernel, m_, opts_.markowitz_tol, opts_.eta_fill_factor);
  pricer_ = make_pricer(opts_.pricing);
  if (pricer_ == nullptr) pricer_ = make_pricer("dantzig");  // unknown name
  pricer_->reset(total_cols_);
  dantzig_pricing_ = std::string_view(pricer_->name()) == "dantzig";
  scratch_w_.resize(m_);
  scratch_wnz_.reserve(m_);
  scratch_y_.resize(m_);
  scratch_rho_.resize(m_);
  scratch_d_.resize(total_cols_);
  scratch_alpha_.resize(total_cols_);
  scratch_alpha_nz_.reserve(total_cols_);
  scratch_mark_.assign(total_cols_, 0);
}

void SimplexSolver::initial_basis() {
  std::fill(basis_pos_.begin(), basis_pos_.end(), -1);

  // Nonbasic structural columns rest at their nearest finite bound.
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (lb_[j] > -kInf) {
      status_[j] = ColStatus::AtLower;
      xval_[j] = lb_[j];
    } else if (ub_[j] < kInf) {
      status_[j] = ColStatus::AtUpper;
      xval_[j] = ub_[j];
    } else {
      status_[j] = ColStatus::Free;
      xval_[j] = 0.0;
    }
  }

  // Residual of each row given the nonbasic resting point.
  std::vector<double> r = rhs_;
  for (std::size_t j = 0; j < n_; ++j) {
    if (xval_[j] == 0.0) continue;
    for (const ColEntry& e : col(j)) r[static_cast<std::size_t>(e.row)] -= e.val * xval_[j];
  }

  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t s = n_ + i;
    const std::size_t a = n_ + m_ + i;
    lb_[a] = true_lb_[a] = 0.0;
    ub_[a] = true_ub_[a] = 0.0;
    if (r[i] >= lb_[s] - opts_.feas_tol && r[i] <= ub_[s] + opts_.feas_tol) {
      // The slack absorbs the residual: no artificial needed for this row.
      basic_[i] = static_cast<std::int32_t>(s);
      basis_pos_[s] = static_cast<std::int32_t>(i);
      status_[s] = ColStatus::Basic;
      xval_[s] = r[i];
    } else {
      art_val(i) = (r[i] >= 0.0) ? 1.0 : -1.0;
      ub_[a] = true_ub_[a] = kInf;  // live artificial
      basic_[i] = static_cast<std::int32_t>(a);
      basis_pos_[a] = static_cast<std::int32_t>(i);
      status_[a] = ColStatus::Basic;
      xval_[a] = std::abs(r[i]);
    }
  }
  // The initial basis is diagonal (unit slacks, signed artificials), so this
  // factorization is trivial and cannot fail; it is not counted or traced as
  // a refactorization, matching the historical accounting.
  const bool ok = rep_->factorize(col_start_.data(), col_ent_.data(), basic_);
  assert(ok);
  (void)ok;
  pivots_since_refactor_ = 0;
}

void SimplexSolver::ftran(std::int32_t col, std::vector<double>& w) const {
  std::fill(w.begin(), w.end(), 0.0);
  for (const ColEntry& e : this->col(static_cast<std::size_t>(col))) {
    w[static_cast<std::size_t>(e.row)] += e.val;
  }
  rep_->ftran(w);
}

void SimplexSolver::btran_row(std::size_t r, std::vector<double>& rho) const {
  rho.assign(m_, 0.0);
  rho[r] = 1.0;
  rep_->btran(rho);
}

void SimplexSolver::price_row(const std::vector<double>& rho,
                              std::vector<double>& alpha,
                              std::vector<std::int32_t>& alpha_nz) const {
  // alpha entries outside alpha_nz are stale from earlier calls; consumers
  // must only read through the nonzero list.
  alpha_nz.clear();
  const std::int64_t stamp = ++mark_stamp_;
  for (std::size_t i = 0; i < m_; ++i) {
    const double r = rho[i];
    if (r == 0.0) continue;
    for (const ColEntry& e : row_adj(i)) {
      const std::size_t j = static_cast<std::size_t>(e.row);  // a column index
      if (scratch_mark_[j] != stamp) {
        scratch_mark_[j] = stamp;
        alpha[j] = r * e.val;
        // Basic columns stay out of the nonzero list: every consumer skips
        // them (their reduced costs are maintained directly at pivots), so
        // listing them only pads the d-update and dual ratio-test scans.
        if (basis_pos_[j] < 0) alpha_nz.push_back(e.row);
      } else {
        alpha[j] += r * e.val;
      }
    }
    // Artificial of row i: a single entry whose sign is set per cold start.
    // Fixed artificials (all of them outside phase 1) can never re-enter, so
    // no consumer reads their reduced cost: skip the bookkeeping entirely
    // rather than dragging them through alpha_nz and the d-update loops.
    const std::size_t a = n_ + m_ + i;
    if (!is_fixed(static_cast<std::int32_t>(a))) {
      scratch_mark_[a] = stamp;
      alpha[a] = r * art_val(i);
      alpha_nz.push_back(static_cast<std::int32_t>(a));
    }
  }
}

bool SimplexSolver::refactorize() {
  // Refactorizations are rare (every ~refactor_interval pivots) and dominate
  // worst-case node latency, so they are spanned unconditionally.
  obs::ScopedSpan span(opts_.spans, obs::span_id(obs::SpanName::Refactor));
  ++reopt_stats_.refactors;
  if (opts_.trace != nullptr) opts_.trace->emit(obs::EventType::Refactor);
  if (opts_.fault != nullptr && opts_.fault->fire(FaultSite::SingularFactor)) {
    return false;  // injected singular factorization
  }
  if (!rep_->factorize(col_start_.data(), col_ent_.data(), basic_)) {
    return false;  // singular basis
  }
  pivots_since_refactor_ = 0;
  return true;
}

void SimplexSolver::compute_basic_values() {
  std::vector<double> r = rhs_;
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (status_[j] == ColStatus::Basic || xval_[j] == 0.0) continue;
    for (const ColEntry& e : col(j)) r[static_cast<std::size_t>(e.row)] -= e.val * xval_[j];
  }
  rep_->ftran(r);  // r := B^-1 r, position-indexed
  for (std::size_t i = 0; i < m_; ++i) {
    xval_[static_cast<std::size_t>(basic_[i])] = r[i];
  }
}

void SimplexSolver::update_factors(const std::vector<double>& w, std::size_t r,
                                   const std::vector<std::int32_t>& wnz) {
  rep_->update(w, r, wnz);
  ++pivots_since_refactor_;
}

void SimplexSolver::rebuild_candidates() {
  cand_.clear();
  cand_idx_.assign(total_cols_, -1);
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (status_[j] == ColStatus::Basic || is_fixed(static_cast<std::int32_t>(j))) {
      continue;
    }
    cand_idx_[j] = static_cast<std::int32_t>(cand_.size());
    cand_.push_back(static_cast<std::int32_t>(j));
  }
}

void SimplexSolver::price(const std::vector<double>& cost, std::vector<double>& d) const {
  // Full passes happen at loop entry and after refactorizations — rare
  // enough to span unconditionally.
  obs::ScopedSpan span(opts_.spans, obs::span_id(obs::SpanName::Price));
  // y = c_B^T * B^-1 via btran of the position-indexed basic costs.
  std::vector<double>& y = scratch_y_;
  for (std::size_t i = 0; i < m_; ++i) {
    y[i] = cost[static_cast<std::size_t>(basic_[i])];
  }
  rep_->btran(y);
  // d_j = c_j - y * A_j  for nonbasic columns.
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (status_[j] == ColStatus::Basic) { d[j] = 0.0; continue; }
    double v = cost[j];
    for (const ColEntry& e : col(j)) v -= y[static_cast<std::size_t>(e.row)] * e.val;
    d[j] = v;
  }
}

double SimplexSolver::current_objective(const std::vector<double>& cost) const {
  double v = 0.0;
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (cost[j] != 0.0 && xval_[j] != 0.0) v += cost[j] * xval_[j];
  }
  return v;
}

double SimplexSolver::bound_violation(std::int32_t j) const {
  const double x = xval_[static_cast<std::size_t>(j)];
  if (x < lb_[j]) return lb_[j] - x;
  if (x > ub_[j]) return x - ub_[j];
  return 0.0;
}

SolveStatus SimplexSolver::primal_loop(const std::vector<double>& cost, bool phase_one) {
  int degen_streak = 0;
  std::vector<double>& d = scratch_d_;
  std::vector<double>& w = scratch_w_;
  std::vector<std::int32_t>& wnz = scratch_wnz_;
  std::vector<double>& rho = scratch_rho_;
  std::vector<double>& alpha = scratch_alpha_;
  std::vector<std::int32_t>& alpha_nz = scratch_alpha_nz_;

  // Reduced costs are maintained incrementally across pivots via the pivot
  // row (d' = d - (d_q / alpha_q) * alpha); a full pricing pass happens only
  // at entry, after refactorization, and periodically to wash out drift.
  pricer_->reset(total_cols_);
  price(cost, d);
  int prices_stale = 0;
  // Entering selection scans this list (nonbasic, non-fixed columns) rather
  // than all columns; fixedness cannot change inside the loop, so only the
  // per-pivot basis swaps need maintenance. Bland's rule still does a full
  // index-ordered scan — its anti-cycling argument needs lowest-index.
  rebuild_candidates();

  for (;;) {
    if (total_iterations_ >= opts_.max_iterations) return SolveStatus::IterationLimit;
    if ((total_iterations_ & 0xFF) == 0) {
      if (opts_.fault != nullptr && opts_.fault->fire(FaultSite::Deadline)) {
        return SolveStatus::TimeLimit;  // injected mid-solve deadline
      }
      if (std::chrono::steady_clock::now() >= opts_.deadline) {
        return SolveStatus::TimeLimit;
      }
      if (opts_.cancel != nullptr && opts_.cancel->load(std::memory_order_relaxed)) {
        return SolveStatus::TimeLimit;  // cooperative cancel (drain/preempt)
      }
    }
    if (pivots_since_refactor_ >= opts_.refactor_interval || rep_->fill_heavy()) {
      if (!refactorize()) return SolveStatus::NumericalError;
      compute_basic_values();
      // The reduced costs are *not* re-priced here: refactorization changes
      // the factors, never the basis, so d is mathematically unchanged. The
      // 200-pivot stale counter bounds drift, and the optimality exit below
      // always confirms against a fresh pricing pass.
    }
    if (++prices_stale > 200) {
      price(cost, d);
      prices_stale = 0;
    }

    const bool bland = degen_streak > opts_.bland_threshold;
    std::int32_t q = -1;
    double qdir = 0.0;
    auto select_entering = [&] {
      q = -1;
      qdir = 0.0;
      double best_score = 0.0;
      if (bland) {
        // Bland's rule: first eligible column in index order.
        for (std::size_t j = 0; j < total_cols_; ++j) {
          const ColStatus st = status_[j];
          if (st == ColStatus::Basic) continue;
          const double dj = d[j];
          double dir = 0.0;
          if (st == ColStatus::AtLower && dj < -opts_.opt_tol) dir = 1.0;
          else if (st == ColStatus::AtUpper && dj > opts_.opt_tol) dir = -1.0;
          else if (st == ColStatus::Free && std::abs(dj) > opts_.opt_tol)
            dir = dj < 0 ? 1.0 : -1.0;
          if (dir == 0.0 || is_fixed(static_cast<std::int32_t>(j))) continue;
          q = static_cast<std::int32_t>(j);
          qdir = dir;
          return;
        }
        return;
      }
      for (const std::int32_t j32 : cand_) {
        const std::size_t j = static_cast<std::size_t>(j32);
        const double dj = d[j];
        const ColStatus st = status_[j];
        double dir = 0.0;
        if (st == ColStatus::AtLower && dj < -opts_.opt_tol) dir = 1.0;
        else if (st == ColStatus::AtUpper && dj > opts_.opt_tol) dir = -1.0;
        else if (st == ColStatus::Free && std::abs(dj) > opts_.opt_tol)
          dir = dj < 0 ? 1.0 : -1.0;
        if (dir == 0.0) continue;
        // Devirtualized Dantzig fast path: |d_j|, no indirect call per column.
        const double score =
            dantzig_pricing_ ? std::abs(dj) : pricer_->score(j32, dj);
        if (q < 0 || score > best_score) {
          best_score = score;
          q = j32;
          qdir = dir;
        }
      }
    };
    select_entering();
    if (q < 0 && prices_stale > 0) {
      // Looks optimal on incrementally-maintained reduced costs: confirm
      // with a fresh pricing pass before declaring optimality.
      price(cost, d);
      prices_stale = 0;
      select_entering();
    }
    if (q < 0) {
      // Report with the *true* costs (pricing may have used perturbed ones).
      obj_value_ = phase_one ? current_objective(cost)
                             : current_objective(cost_) + obj_constant_;
      return SolveStatus::Optimal;
    }

    {
      obs::ScopedSpan ftran_span(sampled_spans(),
                                 obs::span_id(obs::SpanName::Ftran));
      ftran(q, w);
    }

    // Ratio test: how far can the entering variable move? The scan doubles
    // as the collection pass for w's nonzero positions, which the bookkeeping
    // below and the kernel update then iterate instead of all of w.
    double t_best = kInf;
    if (lb_[q] > -kInf && ub_[q] < kInf) t_best = ub_[q] - lb_[q];  // own bound flip
    std::int32_t leave_row = -1;
    bool leave_to_upper = false;
    wnz.clear();
    for (std::size_t i = 0; i < m_; ++i) {
      if (w[i] == 0.0) continue;
      wnz.push_back(static_cast<std::int32_t>(i));
      if (std::abs(w[i]) <= kRatioTol) continue;
      const double rho_i = -qdir * w[i];  // d x_B(i) / d t
      const std::int32_t k = basic_[i];
      double t;
      bool to_upper;
      if (rho_i > 0) {
        if (ub_[k] >= kInf) continue;
        t = (ub_[k] - xval_[k]) / rho_i;
        to_upper = true;
      } else {
        if (lb_[k] <= -kInf) continue;
        t = (xval_[k] - lb_[k]) / (-rho_i);
        to_upper = false;
      }
      if (t < 0) t = 0;  // tiny infeasibilities clamp to a degenerate step
      const bool better =
          t < t_best - 1e-12 ||
          (t <= t_best + 1e-12 && leave_row >= 0 &&
           std::abs(w[i]) > std::abs(w[static_cast<std::size_t>(leave_row)]));
      if (better) {
        t_best = t;
        leave_row = static_cast<std::int32_t>(i);
        leave_to_upper = to_upper;
      }
    }

    if (t_best >= kInf) return SolveStatus::Unbounded;

    if (opts_.fault != nullptr && opts_.fault->fire(FaultSite::NanPivot)) {
      // The injected pivot would poison the basis with NaNs; report the
      // failure the update guards would raise.
      return SolveStatus::NumericalError;
    }

    degen_streak = (t_best <= kDegenTol) ? degen_streak + 1 : 0;
    ++reopt_stats_.total_pivots;
    if (t_best <= kDegenTol) ++reopt_stats_.degen_pivots;

    const double delta = qdir * t_best;
    xval_[q] += delta;
    if (delta != 0.0) {
      for (const std::int32_t i : wnz) {
        xval_[static_cast<std::size_t>(basic_[i])] -= w[static_cast<std::size_t>(i)] * delta;
      }
    }

    if (leave_row < 0) {
      // Bound flip: entering moved to its opposite bound, basis unchanged.
      status_[q] = (status_[q] == ColStatus::AtLower) ? ColStatus::AtUpper : ColStatus::AtLower;
      xval_[q] = (status_[q] == ColStatus::AtLower) ? lb_[q] : ub_[q];
    } else {
      const std::size_t r = static_cast<std::size_t>(leave_row);
      if (std::abs(w[r]) < opts_.pivot_tol) {
        // Numerically unsafe pivot: rebuild and retry this iteration.
        if (!refactorize()) return SolveStatus::NumericalError;
        compute_basic_values();
        continue;
      }
      const std::int32_t k = basic_[r];
      // Incremental reduced-cost update via the pivot row (computed against
      // the *old* basis factorization, before update_factors).
      const double dq = d[static_cast<std::size_t>(q)];
      if (dq != 0.0) {
        obs::SpanBuffer* const sp = sampled_spans();
        obs::ScopedSpan btran_span(sp, obs::span_id(obs::SpanName::BtranRow));
        btran_row(r, rho);
        btran_span.stop();
        obs::ScopedSpan price_span(sp, obs::span_id(obs::SpanName::PriceRow));
        price_row(rho, alpha, alpha_nz);
        price_span.stop();
        const double ratio = dq / w[r];
        for (const std::int32_t j32 : alpha_nz) {
          // alpha_nz holds no basic columns (price_row filters them), so the
          // update runs without a per-column status check.
          const std::size_t j = static_cast<std::size_t>(j32);
          if (alpha[j] == 0.0) continue;
          d[j] -= ratio * alpha[j];
        }
        d[static_cast<std::size_t>(k)] = -ratio;  // leaving column (alpha = 1)
        pricer_->on_pivot(q, k, w[r], alpha, alpha_nz);
      } else {
        d[static_cast<std::size_t>(k)] = 0.0;
      }
      d[static_cast<std::size_t>(q)] = 0.0;

      status_[k] = leave_to_upper ? ColStatus::AtUpper : ColStatus::AtLower;
      xval_[k] = leave_to_upper ? ub_[k] : lb_[k];
      basis_pos_[k] = -1;
      basic_[r] = q;
      basis_pos_[q] = static_cast<std::int32_t>(r);
      status_[q] = ColStatus::Basic;
      cand_remove(q);
      cand_add(k);
      update_factors(w, r, wnz);
    }
    ++total_iterations_;
  }
}

SolveStatus SimplexSolver::solve_primal() {
  basis_valid_ = false;
  if (m_ == 0) {
    // No constraints: every variable rests at its cost-optimal bound.
    obj_value_ = obj_constant_;
    for (std::size_t j = 0; j < n_; ++j) {
      if (cost_[j] > 0) {
        if (true_lb_[j] <= -kInf) return SolveStatus::Unbounded;
        xval_[j] = true_lb_[j];
      } else if (cost_[j] < 0) {
        if (true_ub_[j] >= kInf) return SolveStatus::Unbounded;
        xval_[j] = true_ub_[j];
      } else {
        xval_[j] = std::clamp(0.0, true_lb_[j], true_ub_[j]);
      }
      obj_value_ += cost_[j] * xval_[j];
    }
    basis_valid_ = true;
    return SolveStatus::Optimal;
  }

  initial_basis();

  // Phase 1: minimize the sum of the live artificials.
  bool any_artificial = false;
  std::vector<double> phase1_cost(total_cols_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t a = n_ + m_ + i;
    if (ub_[a] > 0.0) {
      phase1_cost[a] = 1.0;
      any_artificial = true;
    }
  }
  if (any_artificial) {
    const SolveStatus st = primal_loop(phase1_cost, /*phase_one=*/true);
    if (st != SolveStatus::Optimal) {
      // Re-freeze the artificials before surfacing the failure. Callers can
      // warm-reoptimize from this state (the recovery ladder does exactly
      // that), and a live zero-cost artificial would let the phase-2 LP
      // absorb constraint violations for free — "optimal" objectives below
      // the true bound, unsound prunes. Frozen at zero they are inert; the
      // dual repair drives any still-basic ones back into bounds.
      for (std::size_t i = 0; i < m_; ++i) {
        const std::size_t a = n_ + m_ + i;
        ub_[a] = true_ub_[a] = 0.0;
      }
      return st;
    }
    double infeas = 0.0;
    for (std::size_t i = 0; i < m_; ++i) infeas += xval_[n_ + m_ + i];
    if (infeas > 1e-6) return SolveStatus::Infeasible;
    // Freeze artificials at zero for phase 2 (basic ones stay, degenerate).
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t a = n_ + m_ + i;
      ub_[a] = true_ub_[a] = 0.0;
      if (status_[a] != ColStatus::Basic) {
        status_[a] = ColStatus::AtLower;
        xval_[a] = 0.0;
      } else {
        xval_[a] = 0.0;  // clamp residual noise
      }
    }
  }

  const SolveStatus st = primal_loop(pert_cost_, /*phase_one=*/false);
  basis_valid_ = (st == SolveStatus::Optimal);
  return st;
}

bool SimplexSolver::dual_feasible() {
  price(pert_cost_, scratch_d_);
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (status_[j] == ColStatus::Basic || is_fixed(static_cast<std::int32_t>(j))) continue;
    const double d = scratch_d_[j];
    if (status_[j] == ColStatus::AtLower && d < -opts_.opt_tol) return false;
    if (status_[j] == ColStatus::AtUpper && d > opts_.opt_tol) return false;
    if (status_[j] == ColStatus::Free && std::abs(d) > opts_.opt_tol) return false;
  }
  return true;
}

SolveStatus SimplexSolver::reoptimize_dual() {
  if (!basis_valid_ || m_ == 0) return solve_primal();

  // Bound *tightenings* preserve dual feasibility of the last basis; bound
  // *relaxations* (branch backtracking) can break it, because a nonbasic
  // variable fixed at a bound may carry a wrong-sign reduced cost. The dual
  // simplex is only sound from a dual-feasible basis, so pick the repair
  // direction accordingly.
  SolveStatus st;
  if (dual_feasible()) {
    ++reopt_stats_.dual_fast;
    st = dual_loop();
  } else {
    ++reopt_stats_.repaired;
    if (opts_.trace != nullptr) opts_.trace->emit(obs::EventType::DualRepair);
    // Dual-infeasible warm basis (we backtracked past the point where this
    // basis was optimal). The dual loop is still a valid *primal repair*
    // procedure — its pivots are algebraically sound, only its optimality
    // and infeasibility verdicts lose meaning — so run it to regain primal
    // feasibility, then let the primal simplex restore optimality. Spurious
    // "infeasible" verdicts are confirmed with a cold solve.
    st = dual_loop();
    if (st == SolveStatus::Optimal) {
      st = primal_loop(pert_cost_, /*phase_one=*/false);
    } else if (st == SolveStatus::Infeasible) {
      ++reopt_stats_.cold;
      if (opts_.trace != nullptr) opts_.trace->emit(obs::EventType::ColdRestart);
      st = solve_primal();
    }
  }
  if (st == SolveStatus::NumericalError) {
    // Decayed basis: fall back to a cold start.
    if (opts_.trace != nullptr) opts_.trace->emit(obs::EventType::ColdRestart);
    return solve_primal();
  }
  basis_valid_ = (st == SolveStatus::Optimal);
  return st;
}

SolveStatus SimplexSolver::recover_resolve() {
  if (m_ == 0) return solve_primal();
  // Tightening pivot_tol makes the loops refuse the marginal pivots (and
  // refactorize instead) that plausibly corrupted the factorization the
  // first time; the rebuilt factors give the reoptimization a clean start.
  const double saved_pivot_tol = opts_.pivot_tol;
  opts_.pivot_tol = std::min(1e-6, saved_pivot_tol * 100.0);
  SolveStatus st = SolveStatus::NumericalError;
  if (refactorize()) {
    compute_basic_values();
    basis_valid_ = true;
    st = reoptimize_dual();
  }
  opts_.pivot_tol = saved_pivot_tol;
  basis_valid_ = (st == SolveStatus::Optimal);
  return st;
}

SolveStatus SimplexSolver::dual_loop() {
  if (m_ == 0) return solve_primal();
  compute_basic_values();

  std::vector<double>& d = scratch_d_;
  std::vector<double>& w = scratch_w_;
  std::vector<std::int32_t>& wnz = scratch_wnz_;
  std::vector<double>& rho = scratch_rho_;
  std::vector<double>& alphas = scratch_alpha_;
  std::vector<std::int32_t>& alpha_nz = scratch_alpha_nz_;
  int degen_streak = 0;

  // Reduced costs are maintained incrementally across pivots (same pivot-row
  // update as the primal loop); full pricing only at entry, after
  // refactorization, and periodically against drift.
  price(pert_cost_, d);
  int prices_stale = 0;

  for (;;) {
    if (total_iterations_ >= opts_.max_iterations) return SolveStatus::IterationLimit;
    if ((total_iterations_ & 0xFF) == 0) {
      if (opts_.fault != nullptr && opts_.fault->fire(FaultSite::Deadline)) {
        return SolveStatus::TimeLimit;  // injected mid-solve deadline
      }
      if (std::chrono::steady_clock::now() >= opts_.deadline) {
        return SolveStatus::TimeLimit;
      }
      if (opts_.cancel != nullptr && opts_.cancel->load(std::memory_order_relaxed)) {
        return SolveStatus::TimeLimit;  // cooperative cancel (drain/preempt)
      }
    }
    if (pivots_since_refactor_ >= opts_.refactor_interval || rep_->fill_heavy()) {
      if (!refactorize()) return SolveStatus::NumericalError;
      compute_basic_values();
      price(pert_cost_, d);
      prices_stale = 0;
    }
    if (++prices_stale > 200) {
      price(pert_cost_, d);
      prices_stale = 0;
    }

    // Leaving row: largest primal bound violation among basic variables.
    std::int32_t leave_row = -1;
    double worst = opts_.feas_tol;
    for (std::size_t i = 0; i < m_; ++i) {
      const double v = bound_violation(basic_[i]);
      if (v > worst) { worst = v; leave_row = static_cast<std::int32_t>(i); }
    }
    if (leave_row < 0) {
      obj_value_ = current_objective(cost_) + obj_constant_;
      return SolveStatus::Optimal;
    }

    const std::size_t r = static_cast<std::size_t>(leave_row);
    const std::int32_t kleave = basic_[r];
    const bool above = xval_[kleave] > ub_[kleave];
    const double e = above ? 1.0 : -1.0;

    {
      obs::SpanBuffer* const sp = sampled_spans();
      obs::ScopedSpan btran_span(sp, obs::span_id(obs::SpanName::BtranRow));
      btran_row(r, rho);
      btran_span.stop();
      obs::ScopedSpan price_span(sp, obs::span_id(obs::SpanName::PriceRow));
      price_row(rho, alphas, alpha_nz);
    }

    // Dual ratio test over the pivot row's nonzero columns (alphas stay
    // cached for the incremental reduced-cost update below).
    std::int32_t q = -1;
    double best_theta = kInf;
    double alpha_q = 0.0;
    for (const std::int32_t j32 : alpha_nz) {
      const std::size_t j = static_cast<std::size_t>(j32);
      if (status_[j] == ColStatus::Basic || is_fixed(j32)) continue;
      const double alpha = alphas[j];
      if (std::abs(alpha) <= opts_.pivot_tol) continue;
      const double abar = e * alpha;
      bool eligible = false;
      if (status_[j] == ColStatus::AtLower && abar > 0) eligible = true;
      else if (status_[j] == ColStatus::AtUpper && abar < 0) eligible = true;
      else if (status_[j] == ColStatus::Free) eligible = true;
      if (!eligible) continue;
      const double theta = std::abs(d[j]) / std::abs(abar);
      const bool better =
          theta < best_theta - 1e-12 ||
          (theta <= best_theta + 1e-12 && q >= 0 && std::abs(alpha) > std::abs(alpha_q));
      if (better) {
        best_theta = theta;
        q = j32;
        alpha_q = alpha;
      }
    }
    if (q < 0) return SolveStatus::Infeasible;  // dual unbounded

    {
      obs::ScopedSpan ftran_span(sampled_spans(),
                                 obs::span_id(obs::SpanName::Ftran));
      ftran(q, w);
    }
    if (std::abs(w[r]) < opts_.pivot_tol) {
      if (!refactorize()) return SolveStatus::NumericalError;
      compute_basic_values();
      continue;
    }
    if (opts_.fault != nullptr && opts_.fault->fire(FaultSite::NanPivot)) {
      return SolveStatus::NumericalError;  // injected poisoned pivot
    }

    // Entering step: drive the leaving basic variable exactly to its violated
    // bound. x_B(r) changes by -w[r] * delta.
    const double target = above ? ub_[kleave] : lb_[kleave];
    const double delta = (xval_[kleave] - target) / w[r];
    degen_streak = (std::abs(delta) <= kDegenTol) ? degen_streak + 1 : 0;
    ++reopt_stats_.total_pivots;
    if (std::abs(delta) <= kDegenTol) ++reopt_stats_.degen_pivots;
    if (degen_streak > 10 * opts_.bland_threshold) return SolveStatus::NumericalError;

    wnz.clear();
    for (std::size_t i = 0; i < m_; ++i) {
      if (w[i] != 0.0) wnz.push_back(static_cast<std::int32_t>(i));
    }
    xval_[q] += delta;
    if (delta != 0.0) {
      for (const std::int32_t i : wnz) {
        xval_[static_cast<std::size_t>(basic_[i])] -= w[static_cast<std::size_t>(i)] * delta;
      }
    }

    // Incremental reduced-cost update from the cached pivot row.
    const double dq = d[static_cast<std::size_t>(q)];
    if (dq != 0.0) {
      const double ratio = dq / alpha_q;
      for (const std::int32_t j32 : alpha_nz) {
        const std::size_t j = static_cast<std::size_t>(j32);
        if (status_[j] == ColStatus::Basic || alphas[j] == 0.0) continue;
        d[j] -= ratio * alphas[j];
      }
      d[static_cast<std::size_t>(kleave)] = -ratio;  // leaving column (alpha = 1)
    } else {
      d[static_cast<std::size_t>(kleave)] = 0.0;
    }
    d[static_cast<std::size_t>(q)] = 0.0;
    pricer_->on_pivot(q, kleave, alpha_q, alphas, alpha_nz);

    status_[kleave] = above ? ColStatus::AtUpper : ColStatus::AtLower;
    xval_[kleave] = target;
    basis_pos_[kleave] = -1;
    basic_[r] = q;
    basis_pos_[q] = static_cast<std::int32_t>(r);
    status_[q] = ColStatus::Basic;
    update_factors(w, r, wnz);
    ++total_iterations_;
  }
}

void SimplexSolver::set_bounds(std::int32_t col, double lb, double ub) {
  assert(col >= 0 && static_cast<std::size_t>(col) < n_);
  true_lb_[col] = lb;
  true_ub_[col] = ub;
  lb_[col] = (lb > -kInf) ? lb - pert_[col] : lb;
  ub_[col] = (ub < kInf) ? ub + pert_[col] : ub;
  if (status_[col] == ColStatus::Basic) return;
  // Keep the nonbasic resting point consistent with the new bounds.
  if (status_[col] == ColStatus::AtLower) {
    if (lb > -kInf) {
      xval_[col] = lb;
    } else if (ub < kInf) {
      status_[col] = ColStatus::AtUpper;
      xval_[col] = ub;
    } else {
      status_[col] = ColStatus::Free;
      xval_[col] = 0.0;
    }
  } else if (status_[col] == ColStatus::AtUpper) {
    if (ub < kInf) {
      xval_[col] = ub;
    } else if (lb > -kInf) {
      status_[col] = ColStatus::AtLower;
      xval_[col] = lb;
    } else {
      status_[col] = ColStatus::Free;
      xval_[col] = 0.0;
    }
  }
}

std::vector<double> SimplexSolver::dual_values() const {
  std::vector<double> y(m_, 0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    y[i] = cost_[static_cast<std::size_t>(basic_[i])];
  }
  rep_->btran(y);
  // cost_ is negated for Maximize models; flip back to the model's sense.
  if (maximize_) {
    for (double& v : y) v = -v;
  }
  return y;
}

std::vector<double> SimplexSolver::reduced_costs() const {
  price(cost_, scratch_d_);
  std::vector<double> d(scratch_d_.begin(),
                        scratch_d_.begin() + static_cast<std::ptrdiff_t>(n_));
  if (maximize_) {
    for (double& v : d) v = -v;
  }
  return d;
}

SimplexSolver::Basis SimplexSolver::export_basis() const {
  Basis b;
  b.status.resize(total_cols_);
  for (std::size_t j = 0; j < total_cols_; ++j) {
    b.status[j] = static_cast<std::uint8_t>(status_[j]);
  }
  b.basic.assign(basic_.begin(), basic_.end());
  b.art_sign.resize(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    b.art_sign[i] = art_val(i);
  }
  b.factor = rep_->snapshot();
  return b;
}

bool SimplexSolver::load_basis(const Basis& basis) {
  if (basis.status.size() != total_cols_ || basis.basic.size() != m_ ||
      basis.art_sign.size() != m_) {
    basis_valid_ = false;
    return false;
  }
  if (m_ == 0) {
    basis_valid_ = true;
    return true;
  }

  // Artificials: reinstall the exporter's matrix signs, frozen at zero (the
  // post-phase-1 state every exported basis was taken in).
  for (std::size_t i = 0; i < m_; ++i) {
    const std::size_t a = n_ + m_ + i;
    art_val(i) = basis.art_sign[i];
    lb_[a] = true_lb_[a] = 0.0;
    ub_[a] = true_ub_[a] = 0.0;
  }

  std::fill(basis_pos_.begin(), basis_pos_.end(), -1);
  for (std::size_t j = 0; j < total_cols_; ++j) {
    status_[j] = static_cast<ColStatus>(basis.status[j]);
  }
  for (std::size_t i = 0; i < m_; ++i) {
    const std::int32_t col = basis.basic[i];
    if (col < 0 || static_cast<std::size_t>(col) >= total_cols_ ||
        basis_pos_[col] >= 0) {
      basis_valid_ = false;
      return false;  // out of range or duplicated basic column
    }
    basic_[i] = col;
    basis_pos_[col] = static_cast<std::int32_t>(i);
    status_[col] = ColStatus::Basic;
  }

  // Nonbasic columns rest at a bound consistent with the *current* bounds
  // (which may differ from the exporter's: branching only changes bounds).
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (status_[j] == ColStatus::Basic) continue;
    if (status_[j] == ColStatus::AtLower && lb_[j] <= -kInf) {
      status_[j] = (ub_[j] < kInf) ? ColStatus::AtUpper : ColStatus::Free;
    } else if (status_[j] == ColStatus::AtUpper && ub_[j] >= kInf) {
      status_[j] = (lb_[j] > -kInf) ? ColStatus::AtLower : ColStatus::Free;
    }
    switch (status_[j]) {
      case ColStatus::AtLower: xval_[j] = lb_[j]; break;
      case ColStatus::AtUpper: xval_[j] = ub_[j]; break;
      default: xval_[j] = 0.0; break;
    }
  }

  // Eta replay: adopt the exporter's factorization snapshot when the kernel
  // supports it — the transplant then costs an eta replay instead of a full
  // refactorization. Fall back to refactorizing (checkpoint-resumed bases
  // and the dense kernel ship no snapshot).
  if (basis.factor != nullptr && rep_->adopt(basis.factor)) {
    ++reopt_stats_.transplants;
    pivots_since_refactor_ = basis.factor->eta_count();
  } else if (!refactorize()) {
    basis_valid_ = false;
    return false;
  }
  compute_basic_values();
  basis_valid_ = true;
  return true;
}

SimplexSolver::BoundStatus SimplexSolver::column_status(std::int32_t col) const {
  switch (status_[static_cast<std::size_t>(col)]) {
    case ColStatus::Basic: return BoundStatus::Basic;
    case ColStatus::AtLower: return BoundStatus::AtLower;
    case ColStatus::AtUpper: return BoundStatus::AtUpper;
    case ColStatus::Free: return BoundStatus::Free;
  }
  return BoundStatus::Free;
}

std::vector<double> SimplexSolver::primal_solution() const {
  std::vector<double> x(xval_.begin(), xval_.begin() + static_cast<std::ptrdiff_t>(n_));
  // Clamp perturbation slack back into the true bounds.
  for (std::size_t j = 0; j < n_; ++j) {
    x[j] = std::clamp(x[j], true_lb_[j], true_ub_[j]);
  }
  return x;
}

Solution solve_lp_relaxation(const Model& model, SimplexOptions options) {
  SimplexSolver lp(model, options);
  Solution sol;
  sol.status = lp.solve_primal();
  sol.term_reason = term_reason_from(sol.status);
  sol.simplex_iterations = lp.iterations();
  if (sol.status == SolveStatus::Optimal) {
    sol.x = lp.primal_solution();
    const double flip = model.objective_sense() == ObjectiveSense::Maximize ? -1.0 : 1.0;
    sol.objective = flip * lp.objective_value();
    sol.has_incumbent = true;
    sol.best_bound = sol.objective;
  }
  return sol;
}

}  // namespace archex::milp
