/// \file service.hpp
/// ExplorationService: concurrent exploration requests with per-request
/// robustness policies.
///
/// The service is a plain library — no sockets, no signals — so the whole
/// lifecycle is unit-testable in-process; `archex_serve` (NDJSON daemon) and
/// `archex_batch` are thin shells over it. Per the microkernel framing in
/// PAPERS.md each robustness policy is its own narrow mechanism:
///
///   * admission — a bounded queue; when full the oldest `droppable` request
///     is shed (explicit `rejected` response, never a silent drop), falling
///     back to rejecting the newcomer;
///   * deadline — one absolute monotonic budget per request measured from
///     admission, threaded through encode/presolve/solve/extract via
///     `MilpOptions::deadline`; expiry yields the best incumbent as an
///     anytime `degraded` result with its bound gap;
///   * retry — a bounded ladder above the solver's own recovery for solves
///     that still end in NumericalError: tightened tolerances, then the
///     dense oracle kernel, with deterministic seeded backoff between
///     attempts so replays are reproducible;
///   * isolation — each request owns its model, FaultPlan, solver state and
///     response; a faulted or lint-rejected request fails alone;
///   * drain — stop admitting, shed the queue explicitly, preempt in-flight
///     solves via the cooperative cancel token; preempted solves write their
///     checkpoint and the drain report names the files so work resumes.
///
/// Metrics land in an `obs::MetricsRegistry` under `serve.*` (queue depth,
/// latency/queue-wait histograms, per-outcome counters; docs/serving.md has
/// the full list) exposed in Prometheus text via `prometheus()`.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arch/compiled_model.hpp"
#include "obs/metrics.hpp"
#include "serve/request.hpp"

namespace archex::serve {

struct ServiceOptions {
  int workers = 2;                  ///< worker threads consuming the queue
  std::size_t queue_capacity = 32;  ///< admission bound (excludes in-flight)
  int default_retries = 2;          ///< NumericalError ladder budget
  /// Base backoff between retry attempts; the actual delay is
  /// `backoff_delay_ms` (exponential + deterministic jitter). 0 — the test
  /// default — retries immediately.
  double backoff_base_ms = 0.0;
  std::uint64_t backoff_seed = 0x9E3779B97F4A7C15ULL;
  /// Directory for service-assigned checkpoints of preemptible requests.
  /// Empty disables auto-checkpointing (requests may still name their own).
  std::string checkpoint_dir;
  double checkpoint_interval_s = 0.25;
  /// Capacity of the compiled-model LRU (arch::CompiledModelCache), keyed by
  /// content fingerprint. Serves the "compile"/"solve_compiled"/"sweep" ops:
  /// repeated requests for an already-compiled spec skip the encode. 0
  /// disables caching (every compiled op re-encodes).
  std::size_t compiled_cache_capacity = 8;
};

class ExplorationService {
 public:
  explicit ExplorationService(ServiceOptions opts = {});
  ~ExplorationService();
  ExplorationService(const ExplorationService&) = delete;
  ExplorationService& operator=(const ExplorationService&) = delete;

  /// Admits a request. Always yields a response — admission failures (queue
  /// full and nothing sheddable, service draining) resolve the future
  /// immediately with status `rejected`.
  std::future<Response> submit(Request req);

  /// Runs one request synchronously on the calling thread, bypassing the
  /// queue (deadline measured from this call). Used by `archex_batch`'s
  /// sequential mode and tests; the same lifecycle as queued execution.
  Response run(const Request& req);

  struct DrainReport {
    std::size_t shed = 0;       ///< queued requests rejected at drain
    std::size_t preempted = 0;  ///< in-flight solves stopped cooperatively
    std::vector<std::string> checkpoints;  ///< resumable checkpoint files
  };

  /// SIGTERM path: stops admission, sheds the queue with explicit
  /// rejections, preempts in-flight solves (they checkpoint if armed), joins
  /// the workers and reports what is resumable. Idempotent; the service
  /// accepts nothing afterwards.
  DrainReport drain();

  /// Graceful stop: no new admissions, but queued and in-flight requests run
  /// to completion before the workers exit. Idempotent.
  void close();

  [[nodiscard]] std::size_t queue_depth() const;
  obs::MetricsRegistry& metrics() { return reg_; }
  /// Prometheus text exposition of the service registry (the `{"op":
  /// "metrics"}` endpoint body).
  [[nodiscard]] std::string prometheus() const;

 private:
  struct Pending {
    Request req;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point admitted;
  };

  void worker_loop();
  /// The full per-request lifecycle (build, lint, retry ladder, mapping).
  /// Dispatches compiled-pipeline ops to execute_compiled.
  Response execute(const Request& req,
                   std::chrono::steady_clock::time_point admitted);
  /// The compile/solve_compiled/sweep lifecycle: fetch-or-compile the
  /// artifact through the LRU, then solve the request's scenarios against
  /// it (sweeps warm-start each scenario from the previous basis).
  Response execute_compiled(const Request& req,
                            std::chrono::steady_clock::time_point admitted);
  /// The compiled artifact for the request's spec: cache hit when the spec
  /// was compiled before (and survived eviction), fresh compile otherwise.
  /// Sets `*cache_state` to "hit"/"miss" and refreshes the serve.compile.*
  /// metrics. Throws what model building throws.
  std::shared_ptr<const CompiledModel> get_or_compile(const Request& req,
                                                      std::string* cache_state);
  Response reject(const Request& req, const std::string& reason);
  void finish_metrics(const Response& r);

  ServiceOptions opts_;
  obs::MetricsRegistry reg_;
  std::atomic<bool> cancel_{false};  ///< shared cooperative preemption token

  /// Compiled artifacts by fingerprint, plus the spec-key -> fingerprint
  /// memo that turns a repeated request into a cache lookup (the fingerprint
  /// is only known *after* compiling; the memo closes the loop).
  CompiledModelCache compiled_cache_;
  std::mutex compile_mu_;
  std::map<std::string, std::uint64_t> spec_fingerprint_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;   ///< workers exit once the queue is empty
  bool draining_ = false;   ///< admission closed
  std::vector<std::string> drained_checkpoints_;
  std::size_t drain_preempted_ = 0;
};

/// Deterministic retry backoff: `base_ms * 2^attempt`, jittered into
/// [0.5, 1.5) by splitmix64(seed, attempt). Pure function — tests replay it.
[[nodiscard]] double backoff_delay_ms(double base_ms, std::uint64_t seed,
                                      int attempt);

}  // namespace archex::serve
