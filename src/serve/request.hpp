/// \file request.hpp
/// Wire schema of the exploration service: one request and one response per
/// NDJSON line. docs/serving.md is the field-by-field reference; this header
/// is the source of truth for defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/json.hpp"

namespace archex::serve {

/// One scenario of a compiled-model request: the wire form of
/// `arch::Scenario`'s parameter deltas (serve stays arch-agnostic in this
/// header; the service converts). All fields are optional on the wire.
struct ScenarioSpec {
  std::string name;
  /// Library component name -> multiplicative cost scale.
  std::map<std::string, double> cost_scale;
  double edge_cost_scale = 1.0;
  /// Library components toggled unavailable (mapping binaries fixed to 0).
  std::vector<std::string> unavailable;
  /// Constraint name -> new right-hand side.
  std::map<std::string, double> rhs;

  /// Parses a scenario object ({"name", "cost_scale", "edge_cost_scale",
  /// "unavailable", "rhs"}). Returns nullopt and a reason on bad types.
  static std::optional<ScenarioSpec> from_json(const Json& j, std::string* err);
  [[nodiscard]] Json to_json() const;
};

/// One exploration request. The model source is exactly one of `lp_file`
/// (CPLEX-LP path), `lp` (inline LP text), or `domain` ("epn" / "rpl",
/// the built-in case studies).
struct Request {
  std::string id;  ///< caller-chosen correlation id; must be non-empty

  /// Operation. Empty or "explore" is the classic encode+solve request.
  /// The compiled-pipeline ops (docs/pipeline.md) require a `domain` source
  /// (they need the arch-layer artifact, not a bare LP) and reject `lazy`:
  ///   * "compile"        — encode once, cache, return the fingerprint;
  ///   * "solve_compiled" — solve `scenario` against the cached artifact;
  ///   * "sweep"          — solve the `sweep` scenarios sequentially,
  ///     warm-starting each from the previous optimal basis.
  std::string op;

  std::string lp_file;
  std::string lp;
  std::string domain;
  bool lazy = false;  ///< EPN only: lazy iterative scheme instead of eager
  /// EPN only: instance scale — "tiny" (the k = 1 regime, closes in well
  /// under a second; what sweeps/drills should use), "small" (default;
  /// matches `epn_explorer --scale=small`) or "paper" (Table 2 sizes).
  std::string scale;

  /// Scenario for "solve_compiled" (ignored otherwise).
  ScenarioSpec scenario;
  /// Scenario family for "sweep", solved in order (ignored otherwise).
  std::vector<ScenarioSpec> sweep;

  /// End-to-end budget in milliseconds, measured from *admission* (queue
  /// wait spends it too — a request that waited its whole budget gets an
  /// immediate anytime answer, not a fresh solver allowance). 0 = none.
  /// The canonical time knob (milp/budget.hpp is the conversion point);
  /// `deadline_ms` below is its deprecated alias and loses when both are
  /// set.
  double budget_ms = 0.0;
  /// Deprecated alias of `budget_ms`; kept for existing clients. 0 = none.
  double deadline_ms = 0.0;
  double time_limit_s = 0.0;  ///< per-solve-call cap; 0 = none
  int threads = 1;            ///< B&B worker threads for this request
  std::int64_t max_nodes = 0; ///< 0 = solver default
  /// NumericalError retry budget (the service-level ladder: tightened
  /// tolerances, then the dense oracle kernel). -1 = service default.
  int retries = -1;
  std::uint64_t seed = 0;  ///< backoff jitter seed; 0 derives one from `id`
  bool droppable = false;  ///< may be shed when the admission queue is full
  bool lint = false;       ///< reject on Error-severity model-lint findings
  std::string inject;      ///< fault spec "site:n[:seed[:repeat]]"; tests/drills
  /// Checkpoint path for this request's solve. Empty + `preemptible` lets
  /// the service assign one under its checkpoint dir (drain writes it).
  std::string checkpoint;
  bool resume = false;      ///< resume from `checkpoint` when compatible
  bool preemptible = true;  ///< false: drain abandons instead of checkpointing

  /// Parses a request object. Returns nullopt and a reason on schema errors
  /// (missing id, no/ambiguous model source, bad types).
  static std::optional<Request> from_json(const Json& j, std::string* err);
  [[nodiscard]] Json to_json() const;
};

/// Terminal states of a request. `Degraded` is the anytime result: a best
/// incumbent returned at the deadline (or after an exhausted in-solver
/// recovery ladder) together with a sound bound gap — degraded, not wrong.
enum class ResponseStatus : std::uint8_t {
  Optimal,     ///< proven optimum
  Degraded,    ///< feasible incumbent + sound bound, optimality not proven
  Timeout,     ///< budget expired with no incumbent to return
  Infeasible,
  Unbounded,
  Error,       ///< request-scoped failure (parse, solver numerical, exception)
  Rejected,    ///< never ran: shed / queue_full / draining / lint
  Preempted,   ///< drain stopped it; `checkpoint` resumes it
  Compiled,    ///< "compile" op succeeded; `fingerprint`/`cache` identify it
};

[[nodiscard]] const char* to_string(ResponseStatus s);

/// One lifecycle step (state name + milliseconds since admission) — the
/// per-request trace the response carries back.
struct LifecycleEvent {
  std::string state;
  double at_ms = 0.0;
};

/// Per-scenario outcome of a "sweep" response. Field names deliberately
/// mirror the top-level response (and ExplorationResult's accessors) so
/// per-scenario lines diff cleanly against solo solves.
struct ScenarioResult {
  std::string name;
  ResponseStatus status = ResponseStatus::Error;
  bool ok = false;
  bool has_objective = false;
  double objective = 0.0;
  double bound = 0.0;
  double gap = 0.0;
  bool degraded = false;
  bool warm = false;  ///< root LP warm-started from the previous basis
  double solve_seconds = 0.0;

  [[nodiscard]] Json to_json() const;
};

struct Response {
  std::string id;
  ResponseStatus status = ResponseStatus::Error;
  bool ok = false;  ///< Optimal or Degraded (a usable architecture came back)

  bool has_objective = false;
  double objective = 0.0;
  double bound = 0.0;  ///< best proven bound in the model's own sense
  double gap = 0.0;    ///< |objective - bound|; 0 when proven optimal

  bool degraded = false;
  std::int64_t degraded_nodes = 0;
  std::int64_t nodes = 0;
  int attempts = 0;    ///< solve attempts consumed (1 = no retries needed)
  std::string reason;  ///< Rejected/Error detail ("shed", "lint", message…)

  std::string checkpoint;  ///< written checkpoint path (Preempted)
  bool resumable = false;

  // --- compiled-pipeline fields (set by compile/solve_compiled/sweep) ---
  /// "hit" when the compiled artifact came from the service cache, "miss"
  /// when this request paid the encode; empty for classic explore requests.
  std::string cache;
  std::uint64_t fingerprint = 0;  ///< CompiledModel content fingerprint
  std::int64_t warm_solves = 0;   ///< sweep scenarios solved warm-started
  std::int64_t cold_solves = 0;   ///< sweep scenarios solved cold
  std::vector<ScenarioResult> scenarios;  ///< per-scenario results ("sweep")

  double queue_ms = 0.0;
  double solve_seconds = 0.0;
  double total_ms = 0.0;
  std::vector<LifecycleEvent> lifecycle;

  [[nodiscard]] Json to_json() const;
};

}  // namespace archex::serve
