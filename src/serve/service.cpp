#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "arch/algorithm.hpp"
#include "arch/problem.hpp"
#include "check/lint.hpp"
#include "domains/epn.hpp"
#include "domains/rpl.hpp"
#include "milp/branch_bound.hpp"
#include "milp/budget.hpp"
#include "milp/fault.hpp"
#include "milp/lp_format.hpp"

namespace archex::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Request ids become checkpoint file names; keep them path-safe.
std::string sanitize_id(const std::string& id) {
  std::string out;
  out.reserve(id.size());
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("req") : out;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// The request's model, whichever source it came from. Domain problems keep
/// the Problem alive (the solve needs its decision-variable mapping); LP
/// sources own a bare Model.
struct BuiltModel {
  std::unique_ptr<Problem> problem;
  milp::Model model;  // valid when problem == nullptr
  bool epn_lazy = false;
  domains::epn::EpnConfig epn_cfg;

  [[nodiscard]] const milp::Model& lint_target() const {
    return problem != nullptr ? problem->model() : model;
  }
};

BuiltModel build_model(const Request& req) {
  BuiltModel b;
  if (req.domain == "epn") {
    if (req.scale == "tiny") {
      // The k = 1 regime: closes in well under a second, what sweeps use.
      b.epn_cfg = domains::epn::tiny_config();
    } else if (req.scale == "paper") {
      b.epn_cfg = domains::epn::EpnConfig{};
    } else {
      // Same sizing as `epn_explorer --scale=small`: the eager reliability
      // encoding needs the third rectifier per side to be satisfiable.
      b.epn_cfg = domains::epn::small_config();
      b.epn_cfg.rectifiers_per_side = 3;
    }
    b.epn_lazy = req.lazy;
    b.epn_cfg.reliability_eager = !req.lazy;
    b.problem = domains::epn::make_problem(b.epn_cfg);
  } else if (req.domain == "rpl") {
    b.problem = domains::rpl::make_problem();
  } else if (!req.lp_file.empty()) {
    b.model = milp::parse_lp_file(req.lp_file);
  } else {
    std::istringstream in(req.lp);
    b.model = milp::parse_lp(in);
  }
  return b;
}

/// THE conversion from the request's time knobs to an absolute deadline
/// (satellite of milp/budget.hpp): `budget_ms` is canonical, `deadline_ms`
/// its deprecated alias (budget_ms wins when both are set), 0 means
/// unlimited. Measured from admission so queue wait spends the budget.
Clock::time_point deadline_of(const Request& req, Clock::time_point admitted) {
  const double ms = req.budget_ms > 0 ? req.budget_ms : req.deadline_ms;
  return (ms > 0 ? milp::Budget::of_ms(ms) : milp::Budget::unlimited())
      .deadline_from(admitted);
}

/// Severity order for folding per-scenario statuses into one sweep status.
int severity(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::Optimal:
    case ResponseStatus::Compiled: return 0;
    case ResponseStatus::Degraded: return 1;
    case ResponseStatus::Infeasible:
    case ResponseStatus::Unbounded: return 2;
    case ResponseStatus::Timeout: return 3;
    default: return 4;  // Error / Rejected / Preempted
  }
}

/// Maps one scenario's solver outcome the same way the explore path maps its
/// top-level solution (minus preemption, which is reported at sweep level).
ResponseStatus scenario_status(const milp::Solution& sol) {
  switch (sol.status) {
    case milp::SolveStatus::Optimal:
      return sol.degraded ? ResponseStatus::Degraded : ResponseStatus::Optimal;
    case milp::SolveStatus::TimeLimit:
    case milp::SolveStatus::NodeLimit:
    case milp::SolveStatus::IterationLimit:
      return sol.has_incumbent ? ResponseStatus::Degraded
                               : ResponseStatus::Timeout;
    case milp::SolveStatus::Infeasible: return ResponseStatus::Infeasible;
    case milp::SolveStatus::Unbounded: return ResponseStatus::Unbounded;
    case milp::SolveStatus::NumericalError: return ResponseStatus::Error;
  }
  return ResponseStatus::Error;
}

}  // namespace

double backoff_delay_ms(double base_ms, std::uint64_t seed, int attempt) {
  if (base_ms <= 0.0) return 0.0;
  const std::uint64_t h =
      splitmix64(seed + 0x9E3779B97F4A7C15ULL *
                            static_cast<std::uint64_t>(attempt + 1));
  // 53 uniform bits -> [0, 1), mapped to a [0.5, 1.5) multiplier.
  const double jitter =
      0.5 + std::ldexp(static_cast<double>(h >> 11), -53);
  return base_ms * std::ldexp(1.0, attempt) * jitter;
}

ExplorationService::ExplorationService(ServiceOptions opts)
    : opts_(std::move(opts)), compiled_cache_(opts_.compiled_cache_capacity) {
  opts_.workers = std::max(opts_.workers, 1);
  opts_.queue_capacity = std::max<std::size_t>(opts_.queue_capacity, 1);
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  reg_.gauge("serve.workers").set(static_cast<double>(opts_.workers));
}

ExplorationService::~ExplorationService() { close(); }

Response ExplorationService::reject(const Request& req,
                                    const std::string& reason) {
  Response r;
  r.id = req.id;
  r.status = ResponseStatus::Rejected;
  r.reason = reason;
  reg_.counter("serve.rejected").add();
  if (reason == "shed" || reason == "drained") reg_.counter("serve.shed").add();
  return r;
}

std::future<Response> ExplorationService::submit(Request req) {
  reg_.counter("serve.requests").add();
  std::promise<Response> promise;
  std::future<Response> fut = promise.get_future();
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_ || stopping_) {
    lock.unlock();
    promise.set_value(reject(req, "draining"));
    return fut;
  }
  if (queue_.size() >= opts_.queue_capacity) {
    // Load shedding: the oldest droppable queued request yields its slot and
    // gets an explicit rejection; with nothing sheddable the newcomer is
    // turned away instead. Either way somebody is told, nobody is dropped
    // silently.
    const auto victim =
        std::find_if(queue_.begin(), queue_.end(),
                     [](const std::unique_ptr<Pending>& p) {
                       return p->req.droppable;
                     });
    if (victim == queue_.end()) {
      lock.unlock();
      promise.set_value(reject(req, "queue_full"));
      return fut;
    }
    std::unique_ptr<Pending> shed = std::move(*victim);
    queue_.erase(victim);
    shed->promise.set_value(reject(shed->req, "shed"));
  }
  auto pending = std::make_unique<Pending>();
  pending->req = std::move(req);
  pending->promise = std::move(promise);
  pending->admitted = Clock::now();
  queue_.push_back(std::move(pending));
  reg_.counter("serve.admitted").add();
  reg_.gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
  lock.unlock();
  cv_.notify_one();
  return fut;
}

Response ExplorationService::run(const Request& req) {
  reg_.counter("serve.requests").add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stopping_) return reject(req, "draining");
  }
  reg_.counter("serve.admitted").add();
  return execute(req, Clock::now());
}

void ExplorationService::worker_loop() {
  for (;;) {
    std::unique_ptr<Pending> p;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      p = std::move(queue_.front());
      queue_.pop_front();
      reg_.gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
    }
    Response r;
    try {
      r = execute(p->req, p->admitted);
    } catch (const std::exception& e) {
      // Isolation backstop: no request may take the worker down.
      r = Response{};
      r.id = p->req.id;
      r.status = ResponseStatus::Error;
      r.reason = e.what();
      finish_metrics(r);
    } catch (...) {
      r = Response{};
      r.id = p->req.id;
      r.status = ResponseStatus::Error;
      r.reason = "unknown exception";
      finish_metrics(r);
    }
    p->promise.set_value(std::move(r));
  }
}

Response ExplorationService::execute(const Request& req,
                                     Clock::time_point admitted) {
  if (!req.op.empty()) return execute_compiled(req, admitted);
  const Clock::time_point t_start = Clock::now();
  Response r;
  r.id = req.id;
  r.queue_ms = ms_between(admitted, t_start);
  auto mark = [&](const char* state) {
    r.lifecycle.push_back({state, ms_between(admitted, Clock::now())});
  };
  auto finalize = [&]() -> Response& {
    r.total_ms = ms_between(admitted, Clock::now());
    mark("done");
    finish_metrics(r);
    return r;
  };
  mark("start");

  const Clock::time_point deadline = deadline_of(req, admitted);
  // A budget fully consumed by queue wait gets its answer without touching
  // the solver: there is no incumbent to report, so this is a timeout.
  if (Clock::now() >= deadline) {
    r.status = ResponseStatus::Timeout;
    r.reason = "deadline expired before execution";
    return finalize();
  }

  // --- build (encode) ---
  mark("build");
  BuiltModel built;
  try {
    built = build_model(req);
  } catch (const std::exception& e) {
    r.status = ResponseStatus::Error;
    r.reason = std::string("model build failed: ") + e.what();
    return finalize();
  }

  // --- lint gate ---
  if (req.lint) {
    mark("lint");
    const check::LintReport report = check::lint(built.lint_target());
    if (!report.clean(check::Severity::Error)) {
      const auto errors = report.at_least(check::Severity::Error);
      r.status = ResponseStatus::Rejected;
      r.reason = "lint: " + errors.front().message;
      reg_.counter("serve.lint_rejected").add();
      return finalize();
    }
  }

  // --- per-request fault plan (isolation: each request owns its plan) ---
  milp::FaultPlan fault;
  bool fault_armed = false;
  if (!req.inject.empty()) {
    if (!fault.arm_from_spec(req.inject)) {
      r.status = ResponseStatus::Error;
      r.reason = "bad inject spec '" + req.inject + "'";
      return finalize();
    }
    fault_armed = true;
  }

  milp::MilpOptions base;
  base.num_threads = req.threads;
  if (req.time_limit_s > 0) base.time_limit_s = req.time_limit_s;
  base.deadline = deadline;
  base.cancel = &cancel_;
  if (req.max_nodes > 0) base.max_nodes = req.max_nodes;
  if (fault_armed) base.fault = &fault;
  std::string ck = req.checkpoint;
  if (ck.empty() && req.preemptible && !opts_.checkpoint_dir.empty()) {
    ck = opts_.checkpoint_dir + "/" + sanitize_id(req.id) + ".ck";
  }
  base.checkpoint_file = ck;
  base.checkpoint_interval_s = opts_.checkpoint_interval_s;
  base.resume = req.resume;

  const std::uint64_t backoff_seed =
      (req.seed != 0 ? req.seed : fnv1a(req.id)) ^ opts_.backoff_seed;
  const int retries = req.retries >= 0 ? req.retries : opts_.default_retries;

  // --- solve, with the service-level NumericalError ladder on top of the
  // solver's own recovery: attempt 1 tightens tolerances, attempt 2 falls
  // back to the dense oracle kernel. ---
  mark("solve");
  milp::Solution sol;
  std::string solve_error;
  int attempt = 0;
  const Clock::time_point t_solve = Clock::now();
  for (;;) {
    milp::MilpOptions o = base;
    if (attempt == 1) {
      // Tightened-tolerance rung: refuse marginal pivots, pivot for
      // stability over sparsity, refactorize twice as often.
      o.lp.pivot_tol = std::max(o.lp.pivot_tol * 10.0, 1e-7);
      o.lp.markowitz_tol = std::max(o.lp.markowitz_tol, 0.5);
      o.lp.refactor_interval = std::max(o.lp.refactor_interval / 2, 16);
    } else if (attempt >= 2) {
      o.lp.kernel = milp::BasisKernel::Dense;  // slow, numerically boring
    }
    solve_error.clear();
    try {
      if (built.problem != nullptr) {
        if (built.epn_lazy) {
          domains::epn::EpnLazyResult lr = domains::epn::solve_lazy_epn(
              *built.problem, built.epn_cfg, o, /*max_iterations=*/10);
          sol = std::move(lr.final_result.solution);
        } else {
          sol = built.problem->solve(o).solution;
        }
      } else {
        sol = milp::solve_milp(built.model, o);
      }
    } catch (const std::exception& e) {
      solve_error = e.what();
      sol = milp::Solution{};
      sol.status = milp::SolveStatus::NumericalError;
    }
    if (sol.status != milp::SolveStatus::NumericalError) break;
    if (attempt >= retries) break;
    if (cancel_.load(std::memory_order_relaxed) || Clock::now() >= deadline) {
      break;  // no budget left to spend on another attempt
    }
    reg_.counter("serve.retries").add();
    const double delay =
        backoff_delay_ms(opts_.backoff_base_ms, backoff_seed, attempt);
    if (delay > 0) {
      const double remaining_ms = ms_between(Clock::now(), deadline);
      const double capped = std::min(delay, std::max(remaining_ms, 0.0));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(capped));
    }
    ++attempt;
    mark("retry");
  }
  r.solve_seconds =
      std::chrono::duration<double>(Clock::now() - t_solve).count();
  r.attempts = attempt + 1;

  // --- map the solution to a response ---
  mark("extract");
  r.nodes = sol.nodes_explored;
  r.degraded_nodes = sol.degraded_nodes;
  if (sol.has_incumbent) {
    r.has_objective = true;
    r.objective = sol.objective;
    r.bound = sol.best_bound;
    r.gap = std::abs(sol.objective - sol.best_bound);
  }
  reg_.counter("serve.solver.nodes").add(sol.nodes_explored);
  reg_.counter("serve.solver.simplex_iterations").add(sol.simplex_iterations);

  // A TimeLimit while the service-wide cancel token is set and the request's
  // own deadline has slack is a drain preemption, not a timeout.
  const bool preempted = cancel_.load(std::memory_order_relaxed) &&
                         sol.status == milp::SolveStatus::TimeLimit &&
                         Clock::now() < deadline;
  switch (sol.status) {
    case milp::SolveStatus::Optimal:
      r.status =
          sol.degraded ? ResponseStatus::Degraded : ResponseStatus::Optimal;
      break;
    case milp::SolveStatus::TimeLimit:
    case milp::SolveStatus::NodeLimit:
    case milp::SolveStatus::IterationLimit:
      if (preempted) {
        r.status = ResponseStatus::Preempted;
        r.checkpoint = ck;
        r.resumable = !ck.empty() && file_exists(ck);
      } else if (sol.has_incumbent) {
        r.status = ResponseStatus::Degraded;  // the anytime result
      } else {
        r.status = ResponseStatus::Timeout;
      }
      break;
    case milp::SolveStatus::Infeasible:
      r.status = ResponseStatus::Infeasible;
      break;
    case milp::SolveStatus::Unbounded:
      r.status = ResponseStatus::Unbounded;
      break;
    case milp::SolveStatus::NumericalError:
      r.status = ResponseStatus::Error;
      r.reason = solve_error.empty()
                     ? "numerical error after " + std::to_string(attempt + 1) +
                           " attempt(s)"
                     : solve_error;
      break;
  }
  r.ok = r.status == ResponseStatus::Optimal ||
         r.status == ResponseStatus::Degraded;
  r.degraded = sol.degraded || r.status == ResponseStatus::Degraded;

  if (r.status == ResponseStatus::Preempted) {
    std::lock_guard<std::mutex> lock(mu_);
    ++drain_preempted_;
    if (r.resumable) drained_checkpoints_.push_back(r.checkpoint);
  }
  return finalize();
}

std::shared_ptr<const CompiledModel> ExplorationService::get_or_compile(
    const Request& req, std::string* cache_state) {
  // Spec key: everything the built-in domain model depends on (compiled ops
  // reject `lazy`). The fingerprint memo is needed because the content hash
  // is only known after compiling.
  const std::string key = "domain=" + req.domain + ";scale=" + req.scale;
  // One compile at a time: a duplicate request blocks here and then hits.
  std::lock_guard<std::mutex> lock(compile_mu_);
  auto refresh = [&] {
    const CompiledModelCache::Stats cs = compiled_cache_.stats();
    reg_.gauge("serve.compile.cache_size")
        .set(static_cast<double>(compiled_cache_.size()));
    reg_.gauge("serve.compile.cache_evictions")
        .set(static_cast<double>(cs.evictions));
  };
  if (const auto it = spec_fingerprint_.find(key);
      it != spec_fingerprint_.end()) {
    if (std::shared_ptr<const CompiledModel> cm =
            compiled_cache_.get(it->second)) {
      *cache_state = "hit";
      reg_.counter("serve.compile.cache_hits").add();
      refresh();
      return cm;
    }
  }
  BuiltModel built = build_model(req);
  auto cm = std::make_shared<const CompiledModel>(compile(*built.problem));
  compiled_cache_.put(cm);
  spec_fingerprint_[key] = cm->fingerprint();
  *cache_state = "miss";
  reg_.counter("serve.compile.cache_misses").add();
  refresh();
  return cm;
}

Response ExplorationService::execute_compiled(const Request& req,
                                              Clock::time_point admitted) {
  const Clock::time_point t_start = Clock::now();
  Response r;
  r.id = req.id;
  r.queue_ms = ms_between(admitted, t_start);
  auto mark = [&](const char* state) {
    r.lifecycle.push_back({state, ms_between(admitted, Clock::now())});
  };
  auto finalize = [&]() -> Response& {
    r.total_ms = ms_between(admitted, Clock::now());
    mark("done");
    finish_metrics(r);
    return r;
  };
  mark("start");

  const Clock::time_point deadline = deadline_of(req, admitted);
  if (Clock::now() >= deadline) {
    r.status = ResponseStatus::Timeout;
    r.reason = "deadline expired before execution";
    return finalize();
  }

  // --- stage 1+2: the compiled artifact, through the LRU ---
  mark("compile");
  std::shared_ptr<const CompiledModel> cm;
  try {
    cm = get_or_compile(req, &r.cache);
  } catch (const std::exception& e) {
    r.status = ResponseStatus::Error;
    r.reason = std::string("compile failed: ") + e.what();
    return finalize();
  }
  r.fingerprint = cm->fingerprint();

  // --- lint gate, against the compiled artifact's frozen matrix ---
  if (req.lint) {
    mark("lint");
    const check::LintReport report = check::lint(cm->base_model());
    if (!report.clean(check::Severity::Error)) {
      const auto errors = report.at_least(check::Severity::Error);
      r.status = ResponseStatus::Rejected;
      r.reason = "lint: " + errors.front().message;
      reg_.counter("serve.lint_rejected").add();
      return finalize();
    }
  }

  if (req.op == "compile") {
    r.status = ResponseStatus::Compiled;
    r.ok = true;
    return finalize();
  }

  milp::MilpOptions base;
  base.num_threads = req.threads;
  if (req.time_limit_s > 0) base.time_limit_s = req.time_limit_s;
  base.deadline = deadline;
  base.cancel = &cancel_;
  if (req.max_nodes > 0) base.max_nodes = req.max_nodes;

  // --- stage 3: solve the scenario (or the sweep's scenario family) ---
  mark("solve");
  const Clock::time_point t_solve = Clock::now();
  const bool is_sweep = req.op == "sweep";
  const std::vector<ScenarioSpec> single{req.scenario};
  const std::vector<ScenarioSpec>& specs = is_sweep ? req.sweep : single;
  SweepState state;
  SweepState* sweep_state = is_sweep ? &state : nullptr;
  std::vector<ScenarioResult> results;
  results.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const ScenarioSpec& spec = specs[i];
    Scenario sc;
    sc.name = spec.name.empty() ? "scenario" + std::to_string(i) : spec.name;
    sc.component_cost_scale = spec.cost_scale;
    sc.edge_cost_scale = spec.edge_cost_scale;
    sc.unavailable = spec.unavailable;
    sc.rhs = spec.rhs;
    ScenarioResult sr;
    sr.name = sc.name;
    try {
      const ExplorationResult er = archex::solve(*cm, sc, base, sweep_state);
      const milp::Solution& sol = er.solution;
      r.nodes += sol.nodes_explored;
      r.degraded_nodes += sol.degraded_nodes;
      reg_.counter("serve.solver.nodes").add(sol.nodes_explored);
      reg_.counter("serve.solver.simplex_iterations")
          .add(sol.simplex_iterations);
      sr.status = scenario_status(sol);
      sr.ok = sr.status == ResponseStatus::Optimal ||
              sr.status == ResponseStatus::Degraded;
      if (sol.has_incumbent) {
        sr.has_objective = true;
        sr.objective = er.objective();
        sr.bound = er.bound();
        sr.gap = er.gap();
      }
      sr.degraded = er.degraded();
      sr.warm = sol.warm_started;
      sr.solve_seconds = er.solver_seconds;
    } catch (const std::exception& e) {
      // Isolation: one bad scenario (e.g. an unknown component name) fails
      // alone; the rest of the sweep still runs.
      sr.status = ResponseStatus::Error;
      if (r.reason.empty()) r.reason = sc.name + ": " + e.what();
    }
    results.push_back(std::move(sr));
  }
  r.solve_seconds =
      std::chrono::duration<double>(Clock::now() - t_solve).count();
  r.attempts = 1;

  mark("extract");
  if (!is_sweep) {
    const ScenarioResult& sr = results.front();
    r.status = sr.status;
    r.ok = sr.ok;
    r.has_objective = sr.has_objective;
    r.objective = sr.objective;
    r.bound = sr.bound;
    r.gap = sr.gap;
    r.degraded = sr.degraded;
    return finalize();
  }
  r.scenarios = std::move(results);
  r.warm_solves = state.warm_solves;
  r.cold_solves = state.cold_solves;
  r.ok = true;
  r.degraded = false;
  const ScenarioResult* worst = nullptr;
  for (const ScenarioResult& sr : r.scenarios) {
    r.ok = r.ok && sr.ok;
    r.degraded = r.degraded || sr.degraded;
    if (worst == nullptr || severity(sr.status) > severity(worst->status)) {
      worst = &sr;
    }
  }
  r.status = worst != nullptr ? worst->status : ResponseStatus::Error;
  // The top level mirrors the last scenario's objective, so a sweep response
  // tail-diffs cleanly against the solve_compiled response for that
  // scenario.
  const ScenarioResult& last = r.scenarios.back();
  r.has_objective = last.has_objective;
  r.objective = last.objective;
  r.bound = last.bound;
  r.gap = last.gap;
  reg_.counter("serve.sweep.scenarios")
      .add(static_cast<std::int64_t>(r.scenarios.size()));
  reg_.counter("serve.sweep.warm").add(state.warm_solves);
  reg_.counter("serve.sweep.cold").add(state.cold_solves);
  return finalize();
}

void ExplorationService::finish_metrics(const Response& r) {
  reg_.counter("serve.completed").add();
  switch (r.status) {
    case ResponseStatus::Optimal: reg_.counter("serve.optimal").add(); break;
    case ResponseStatus::Degraded: reg_.counter("serve.degraded").add(); break;
    case ResponseStatus::Timeout: reg_.counter("serve.timeouts").add(); break;
    case ResponseStatus::Infeasible:
      reg_.counter("serve.infeasible").add();
      break;
    case ResponseStatus::Unbounded: reg_.counter("serve.infeasible").add(); break;
    case ResponseStatus::Error: reg_.counter("serve.errors").add(); break;
    case ResponseStatus::Rejected: break;  // counted at rejection time
    case ResponseStatus::Preempted:
      reg_.counter("serve.preempted").add();
      break;
    case ResponseStatus::Compiled: reg_.counter("serve.compiled").add(); break;
  }
  reg_.histogram("serve.latency").record(r.total_ms / 1000.0);
  reg_.histogram("serve.queue_wait").record(r.queue_ms / 1000.0);
}

ExplorationService::DrainReport ExplorationService::drain() {
  DrainReport rep;
  std::vector<std::unique_ptr<Pending>> shed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    stopping_ = true;
    while (!queue_.empty()) {
      shed.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    reg_.gauge("serve.queue_depth").set(0.0);
  }
  cancel_.store(true, std::memory_order_relaxed);
  cv_.notify_all();
  for (std::unique_ptr<Pending>& p : shed) {
    p->promise.set_value(reject(p->req, "drained"));
    ++rep.shed;
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    rep.preempted = drain_preempted_;
    rep.checkpoints = drained_checkpoints_;
  }
  return rep;
}

void ExplorationService::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

std::size_t ExplorationService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::string ExplorationService::prometheus() const {
  return obs::prometheus_text(reg_);
}

}  // namespace archex::serve
