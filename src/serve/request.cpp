#include "serve/request.hpp"

#include <cstdio>
#include <utility>

namespace archex::serve {

std::optional<ScenarioSpec> ScenarioSpec::from_json(const Json& j,
                                                    std::string* err) {
  auto fail = [&](const std::string& why) -> std::optional<ScenarioSpec> {
    if (err != nullptr) *err = why;
    return std::nullopt;
  };
  if (!j.is_object()) return fail("scenario must be a JSON object");
  ScenarioSpec s;
  s.name = j.get_string("name");
  if (const Json* scales = j.find("cost_scale"); scales != nullptr) {
    if (!scales->is_object()) return fail("'cost_scale' must be an object");
    for (const auto& [comp, v] : scales->as_object()) {
      if (!v.is_number()) return fail("'cost_scale." + comp + "' must be a number");
      s.cost_scale[comp] = v.as_number();
    }
  }
  s.edge_cost_scale = j.get_number("edge_cost_scale", 1.0);
  if (const Json* un = j.find("unavailable"); un != nullptr) {
    if (!un->is_array()) return fail("'unavailable' must be an array");
    for (const Json& v : un->as_array()) {
      if (!v.is_string()) return fail("'unavailable' entries must be strings");
      s.unavailable.push_back(v.as_string());
    }
  }
  if (const Json* rhs = j.find("rhs"); rhs != nullptr) {
    if (!rhs->is_object()) return fail("'rhs' must be an object");
    for (const auto& [row, v] : rhs->as_object()) {
      if (!v.is_number()) return fail("'rhs." + row + "' must be a number");
      s.rhs[row] = v.as_number();
    }
  }
  return s;
}

Json ScenarioSpec::to_json() const {
  Json j;
  j.obj();  // a default scenario still serializes as {}
  if (!name.empty()) j["name"] = name;
  if (!cost_scale.empty()) {
    Json scales;
    for (const auto& [comp, v] : cost_scale) scales[comp] = v;
    j["cost_scale"] = std::move(scales);
  }
  if (edge_cost_scale != 1.0) j["edge_cost_scale"] = edge_cost_scale;
  if (!unavailable.empty()) {
    Json::Array arr;
    for (const std::string& c : unavailable) arr.emplace_back(c);
    j["unavailable"] = Json(std::move(arr));
  }
  if (!rhs.empty()) {
    Json rows;
    for (const auto& [row, v] : rhs) rows[row] = v;
    j["rhs"] = std::move(rows);
  }
  return j;
}

std::optional<Request> Request::from_json(const Json& j, std::string* err) {
  auto fail = [&](const std::string& why) -> std::optional<Request> {
    if (err != nullptr) *err = why;
    return std::nullopt;
  };
  if (!j.is_object()) return fail("request must be a JSON object");
  Request r;
  r.id = j.get_string("id");
  if (r.id.empty()) return fail("missing or empty 'id'");
  r.op = j.get_string("op");
  if (r.op == "explore") r.op.clear();  // canonical spelling of the default
  const bool compiled_op =
      r.op == "compile" || r.op == "solve_compiled" || r.op == "sweep";
  if (!r.op.empty() && !compiled_op) {
    return fail("unknown op '" + r.op + "'");
  }
  r.lp_file = j.get_string("lp_file");
  r.lp = j.get_string("lp");
  r.domain = j.get_string("domain");
  const int sources = static_cast<int>(!r.lp_file.empty()) +
                      static_cast<int>(!r.lp.empty()) +
                      static_cast<int>(!r.domain.empty());
  if (sources != 1) {
    return fail("exactly one of 'lp_file', 'lp', 'domain' must be set");
  }
  if (!r.domain.empty() && r.domain != "epn" && r.domain != "rpl") {
    return fail("unknown domain '" + r.domain + "' (expected 'epn' or 'rpl')");
  }
  r.lazy = j.get_bool("lazy", false);
  r.scale = j.get_string("scale");
  if (!r.scale.empty()) {
    if (r.domain != "epn") return fail("'scale' is only valid with domain 'epn'");
    if (r.scale != "tiny" && r.scale != "small" && r.scale != "paper") {
      return fail("unknown scale '" + r.scale +
                  "' (expected 'tiny', 'small' or 'paper')");
    }
  }
  if (compiled_op) {
    if (r.domain.empty()) {
      return fail("op '" + r.op + "' requires a 'domain' source");
    }
    if (r.lazy) return fail("op '" + r.op + "' does not support 'lazy'");
    if (const Json* sc = j.find("scenario"); sc != nullptr) {
      std::string serr;
      auto parsed = ScenarioSpec::from_json(*sc, &serr);
      if (!parsed.has_value()) return fail("'scenario': " + serr);
      r.scenario = std::move(*parsed);
    }
    if (const Json* sw = j.find("sweep"); sw != nullptr) {
      if (!sw->is_array()) return fail("'sweep' must be an array");
      for (const Json& sc : sw->as_array()) {
        std::string serr;
        auto parsed = ScenarioSpec::from_json(sc, &serr);
        if (!parsed.has_value()) return fail("'sweep': " + serr);
        r.sweep.push_back(std::move(*parsed));
      }
    }
    if (r.op == "sweep" && r.sweep.empty()) {
      return fail("op 'sweep' requires a non-empty 'sweep' array");
    }
  }
  r.budget_ms = j.get_number("budget_ms", 0.0);
  r.deadline_ms = j.get_number("deadline_ms", 0.0);
  r.time_limit_s = j.get_number("time_limit_s", 0.0);
  r.threads = static_cast<int>(j.get_number("threads", 1.0));
  r.max_nodes = static_cast<std::int64_t>(j.get_number("max_nodes", 0.0));
  r.retries = static_cast<int>(j.get_number("retries", -1.0));
  r.seed = static_cast<std::uint64_t>(j.get_number("seed", 0.0));
  r.droppable = j.get_bool("droppable", false);
  r.lint = j.get_bool("lint", false);
  r.inject = j.get_string("inject");
  r.checkpoint = j.get_string("checkpoint");
  r.resume = j.get_bool("resume", false);
  r.preemptible = j.get_bool("preemptible", true);
  if (r.threads < 1 || r.threads > 64) return fail("'threads' out of range");
  if (r.budget_ms < 0 || r.deadline_ms < 0 || r.time_limit_s < 0) {
    return fail("'budget_ms' / 'deadline_ms' / 'time_limit_s' must be >= 0");
  }
  return r;
}

Json Request::to_json() const {
  Json j;
  j["id"] = id;
  if (!op.empty()) j["op"] = op;
  if (!lp_file.empty()) j["lp_file"] = lp_file;
  if (!lp.empty()) j["lp"] = lp;
  if (!domain.empty()) j["domain"] = domain;
  if (lazy) j["lazy"] = true;
  if (!scale.empty()) j["scale"] = scale;
  if (op == "solve_compiled") j["scenario"] = scenario.to_json();
  if (!sweep.empty()) {
    Json::Array arr;
    arr.reserve(sweep.size());
    for (const ScenarioSpec& s : sweep) arr.push_back(s.to_json());
    j["sweep"] = Json(std::move(arr));
  }
  if (budget_ms > 0) j["budget_ms"] = budget_ms;
  if (deadline_ms > 0) j["deadline_ms"] = deadline_ms;
  if (time_limit_s > 0) j["time_limit_s"] = time_limit_s;
  if (threads != 1) j["threads"] = threads;
  if (max_nodes > 0) j["max_nodes"] = max_nodes;
  if (retries >= 0) j["retries"] = retries;
  if (seed != 0) j["seed"] = static_cast<double>(seed);
  if (droppable) j["droppable"] = true;
  if (lint) j["lint"] = true;
  if (!inject.empty()) j["inject"] = inject;
  if (!checkpoint.empty()) j["checkpoint"] = checkpoint;
  if (resume) j["resume"] = true;
  if (!preemptible) j["preemptible"] = false;
  return j;
}

const char* to_string(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::Optimal: return "optimal";
    case ResponseStatus::Degraded: return "degraded";
    case ResponseStatus::Timeout: return "timeout";
    case ResponseStatus::Infeasible: return "infeasible";
    case ResponseStatus::Unbounded: return "unbounded";
    case ResponseStatus::Error: return "error";
    case ResponseStatus::Rejected: return "rejected";
    case ResponseStatus::Preempted: return "preempted";
    case ResponseStatus::Compiled: return "compiled";
  }
  return "unknown";
}

Json ScenarioResult::to_json() const {
  Json j;
  j["name"] = name;
  j["status"] = to_string(status);
  j["ok"] = ok;
  if (has_objective) {
    j["objective"] = objective;
    j["bound"] = bound;
    j["gap"] = gap;
  }
  j["degraded"] = degraded;
  j["warm"] = warm;
  j["solve_seconds"] = solve_seconds;
  return j;
}

Json Response::to_json() const {
  Json j;
  j["id"] = id;
  j["status"] = to_string(status);
  j["ok"] = ok;
  if (has_objective) {
    j["objective"] = objective;
    j["bound"] = bound;
    j["gap"] = gap;
  }
  j["degraded"] = degraded;
  if (degraded_nodes > 0) j["degraded_nodes"] = degraded_nodes;
  if (nodes > 0) j["nodes"] = nodes;
  if (attempts > 0) j["attempts"] = attempts;
  if (!reason.empty()) j["reason"] = reason;
  if (!checkpoint.empty()) {
    j["checkpoint"] = checkpoint;
    j["resumable"] = resumable;
  }
  if (!cache.empty()) {
    j["cache"] = cache;
    // Hex keeps the full 64 bits exact (a JSON number would round through
    // double); fixed width so lines diff and sort cleanly.
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    j["fingerprint"] = std::string(buf);
  }
  if (warm_solves + cold_solves > 0) {
    j["warm_solves"] = warm_solves;
    j["cold_solves"] = cold_solves;
  }
  if (!scenarios.empty()) {
    Json::Array arr;
    arr.reserve(scenarios.size());
    for (const ScenarioResult& s : scenarios) arr.push_back(s.to_json());
    j["scenarios"] = Json(std::move(arr));
  }
  j["queue_ms"] = queue_ms;
  j["solve_seconds"] = solve_seconds;
  j["total_ms"] = total_ms;
  if (!lifecycle.empty()) {
    Json::Array events;
    events.reserve(lifecycle.size());
    for (const LifecycleEvent& e : lifecycle) {
      Json ev;
      ev["state"] = e.state;
      ev["ms"] = e.at_ms;
      events.push_back(std::move(ev));
    }
    j["lifecycle"] = Json(std::move(events));
  }
  return j;
}

}  // namespace archex::serve
