#include "serve/request.hpp"

namespace archex::serve {

std::optional<Request> Request::from_json(const Json& j, std::string* err) {
  auto fail = [&](const std::string& why) -> std::optional<Request> {
    if (err != nullptr) *err = why;
    return std::nullopt;
  };
  if (!j.is_object()) return fail("request must be a JSON object");
  Request r;
  r.id = j.get_string("id");
  if (r.id.empty()) return fail("missing or empty 'id'");
  r.lp_file = j.get_string("lp_file");
  r.lp = j.get_string("lp");
  r.domain = j.get_string("domain");
  const int sources = static_cast<int>(!r.lp_file.empty()) +
                      static_cast<int>(!r.lp.empty()) +
                      static_cast<int>(!r.domain.empty());
  if (sources != 1) {
    return fail("exactly one of 'lp_file', 'lp', 'domain' must be set");
  }
  if (!r.domain.empty() && r.domain != "epn" && r.domain != "rpl") {
    return fail("unknown domain '" + r.domain + "' (expected 'epn' or 'rpl')");
  }
  r.lazy = j.get_bool("lazy", false);
  r.deadline_ms = j.get_number("deadline_ms", 0.0);
  r.time_limit_s = j.get_number("time_limit_s", 0.0);
  r.threads = static_cast<int>(j.get_number("threads", 1.0));
  r.max_nodes = static_cast<std::int64_t>(j.get_number("max_nodes", 0.0));
  r.retries = static_cast<int>(j.get_number("retries", -1.0));
  r.seed = static_cast<std::uint64_t>(j.get_number("seed", 0.0));
  r.droppable = j.get_bool("droppable", false);
  r.lint = j.get_bool("lint", false);
  r.inject = j.get_string("inject");
  r.checkpoint = j.get_string("checkpoint");
  r.resume = j.get_bool("resume", false);
  r.preemptible = j.get_bool("preemptible", true);
  if (r.threads < 1 || r.threads > 64) return fail("'threads' out of range");
  if (r.deadline_ms < 0 || r.time_limit_s < 0) {
    return fail("'deadline_ms' / 'time_limit_s' must be >= 0");
  }
  return r;
}

Json Request::to_json() const {
  Json j;
  j["id"] = id;
  if (!lp_file.empty()) j["lp_file"] = lp_file;
  if (!lp.empty()) j["lp"] = lp;
  if (!domain.empty()) j["domain"] = domain;
  if (lazy) j["lazy"] = true;
  if (deadline_ms > 0) j["deadline_ms"] = deadline_ms;
  if (time_limit_s > 0) j["time_limit_s"] = time_limit_s;
  if (threads != 1) j["threads"] = threads;
  if (max_nodes > 0) j["max_nodes"] = max_nodes;
  if (retries >= 0) j["retries"] = retries;
  if (seed != 0) j["seed"] = static_cast<double>(seed);
  if (droppable) j["droppable"] = true;
  if (lint) j["lint"] = true;
  if (!inject.empty()) j["inject"] = inject;
  if (!checkpoint.empty()) j["checkpoint"] = checkpoint;
  if (resume) j["resume"] = true;
  if (!preemptible) j["preemptible"] = false;
  return j;
}

const char* to_string(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::Optimal: return "optimal";
    case ResponseStatus::Degraded: return "degraded";
    case ResponseStatus::Timeout: return "timeout";
    case ResponseStatus::Infeasible: return "infeasible";
    case ResponseStatus::Unbounded: return "unbounded";
    case ResponseStatus::Error: return "error";
    case ResponseStatus::Rejected: return "rejected";
    case ResponseStatus::Preempted: return "preempted";
  }
  return "unknown";
}

Json Response::to_json() const {
  Json j;
  j["id"] = id;
  j["status"] = to_string(status);
  j["ok"] = ok;
  if (has_objective) {
    j["objective"] = objective;
    j["bound"] = bound;
    j["gap"] = gap;
  }
  j["degraded"] = degraded;
  if (degraded_nodes > 0) j["degraded_nodes"] = degraded_nodes;
  if (nodes > 0) j["nodes"] = nodes;
  if (attempts > 0) j["attempts"] = attempts;
  if (!reason.empty()) j["reason"] = reason;
  if (!checkpoint.empty()) {
    j["checkpoint"] = checkpoint;
    j["resumable"] = resumable;
  }
  j["queue_ms"] = queue_ms;
  j["solve_seconds"] = solve_seconds;
  j["total_ms"] = total_ms;
  if (!lifecycle.empty()) {
    Json::Array events;
    events.reserve(lifecycle.size());
    for (const LifecycleEvent& e : lifecycle) {
      Json ev;
      ev["state"] = e.state;
      ev["ms"] = e.at_ms;
      events.push_back(std::move(ev));
    }
    j["lifecycle"] = Json(std::move(events));
  }
  return j;
}

}  // namespace archex::serve
