#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace archex::serve {

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

std::string Json::get_string(const std::string& key,
                             const std::string& dflt) const {
  const Json* v = find(key);
  return v != nullptr && v->is_string() ? v->str_ : dflt;
}

double Json::get_number(const std::string& key, double dflt) const {
  const Json* v = find(key);
  return v != nullptr && v->is_number() ? v->num_ : dflt;
}

bool Json::get_bool(const std::string& key, bool dflt) const {
  const Json* v = find(key);
  return v != nullptr && v->is_bool() ? v->bool_ : dflt;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passthrough
        }
    }
  }
  out += '"';
}

void dump_value(const Json& v, std::string& out) {
  switch (v.type()) {
    case Json::Type::Null: out += "null"; break;
    case Json::Type::Bool: out += v.as_bool() ? "true" : "false"; break;
    case Json::Type::Number: {
      const double d = v.as_number();
      if (!std::isfinite(d)) {
        out += "null";
        break;
      }
      char buf[40];
      // Integral values (ids, counts) print without an exponent; everything
      // else gets the exact shortest-or-17-digit double representation.
      if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", d);
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", d);
      }
      out += buf;
      break;
    }
    case Json::Type::String: dump_string(v.as_string(), out); break;
    case Json::Type::Array: {
      out += '[';
      bool first = true;
      for (const Json& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(e, out);
      }
      out += ']';
      break;
    }
    case Json::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        dump_string(k, out);
        out += ':';
        dump_value(e, out);
      }
      out += '}';
      break;
    }
  }
}

/// Recursive-descent parser over the input buffer; depth-capped so a
/// pathological request line cannot blow the worker's stack.
class Parser {
 public:
  Parser(const std::string& text, std::string* err) : text_(text), err_(err) {}

  std::optional<Json> run() {
    std::optional<Json> v = value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void fail(const std::string& why) {
    if (err_ != nullptr && err_->empty()) {
      *err_ = "offset " + std::to_string(pos_) + ": " + why;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  std::optional<std::string> string_body() {
    // Caller consumed the opening quote.
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("raw control character in string");
          return std::nullopt;
        }
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad hex digit in \\u escape");
              return std::nullopt;
            }
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences — the wire never carries them).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == 'n') {
      if (literal("null")) return Json();
      fail("bad literal");
      return std::nullopt;
    }
    if (c == 't') {
      if (literal("true")) return Json(true);
      fail("bad literal");
      return std::nullopt;
    }
    if (c == 'f') {
      if (literal("false")) return Json(false);
      fail("bad literal");
      return std::nullopt;
    }
    if (c == '"') {
      ++pos_;
      std::optional<std::string> s = string_body();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (c == '[') {
      ++pos_;
      Json::Array arr;
      if (consume(']')) return Json(std::move(arr));
      for (;;) {
        std::optional<Json> e = value(depth + 1);
        if (!e) return std::nullopt;
        arr.push_back(std::move(*e));
        if (consume(',')) continue;
        if (consume(']')) return Json(std::move(arr));
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
    if (c == '{') {
      ++pos_;
      Json::Object obj;
      if (consume('}')) return Json(std::move(obj));
      for (;;) {
        if (!consume('"')) {
          fail("expected string key");
          return std::nullopt;
        }
        std::optional<std::string> key = string_body();
        if (!key) return std::nullopt;
        if (!consume(':')) {
          fail("expected ':' after key");
          return std::nullopt;
        }
        std::optional<Json> e = value(depth + 1);
        if (!e) return std::nullopt;
        obj[std::move(*key)] = std::move(*e);
        if (consume(',')) continue;
        if (consume('}')) return Json(std::move(obj));
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
    // Number: delegate validation to strtod but forbid JSON-invalid prefixes
    // it would accept (hex, inf, nan, leading '+').
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* start = text_.c_str() + pos_;
      char* end = nullptr;
      const double d = std::strtod(start, &end);
      if (end == start || !std::isfinite(d)) {
        fail("bad number");
        return std::nullopt;
      }
      for (const char* p = start; p != end; ++p) {
        // strtod is laxer than JSON: no hex ("0x1f") or inf/nan spellings.
        if (*p == 'x' || *p == 'X' || *p == 'n' || *p == 'N' || *p == 'i' ||
            *p == 'I') {
          fail("bad number");
          return std::nullopt;
        }
      }
      pos_ += static_cast<std::size_t>(end - start);
      return Json(d);
    }
    fail("unexpected character");
    return std::nullopt;
  }

  const std::string& text_;
  std::string* err_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::optional<Json> Json::parse(const std::string& text, std::string* err) {
  if (err != nullptr) err->clear();
  return Parser(text, err).run();
}

}  // namespace archex::serve
