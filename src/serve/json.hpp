/// \file json.hpp
/// Minimal JSON value type for the exploration service wire protocol.
///
/// The service speaks newline-delimited JSON (one request or response per
/// line), so all it needs is a small, dependency-free value type with a
/// strict parser and a deterministic serializer. Determinism matters more
/// than speed here: objects keep sorted keys and numbers print with %.17g
/// (exact double round-trip), so a response serialized twice — or by two
/// runs of the same solve — is byte-identical, which the serve drill's
/// bit-exactness checks rely on. Not a general-purpose JSON library: no
/// comments, no NaN/Inf literals (they serialize as null), UTF-8 passthrough
/// with \uXXXX decoding.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace archex::serve {

class Json {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;  // sorted -> deterministic dump

  Json() = default;
  Json(bool b) : type_(Type::Bool), bool_(b) {}                    // NOLINT
  Json(double v) : type_(Type::Number), num_(v) {}                 // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}                    // NOLINT
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}           // NOLINT
  Json(const char* s) : type_(Type::String), str_(s) {}            // NOLINT
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {} // NOLINT
  Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}        // NOLINT
  Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}      // NOLINT

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  [[nodiscard]] bool as_bool(bool dflt = false) const {
    return is_bool() ? bool_ : dflt;
  }
  [[nodiscard]] double as_number(double dflt = 0.0) const {
    return is_number() ? num_ : dflt;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& as_array() const { return arr_; }
  [[nodiscard]] const Object& as_object() const { return obj_; }

  /// Mutable accessors coerce the value's type (building responses).
  Array& arr() {
    type_ = Type::Array;
    return arr_;
  }
  Object& obj() {
    type_ = Type::Object;
    return obj_;
  }
  /// `v["key"] = ...` object building; coerces to Object.
  Json& operator[](const std::string& key) { return obj()[key]; }

  // --- object lookups (null/absent-tolerant, for request parsing) ---
  /// Member pointer, or null when this is not an object / has no such key.
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& dflt = {}) const;
  [[nodiscard]] double get_number(const std::string& key, double dflt) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool dflt) const;

  /// Serializes compactly (no whitespace), deterministically. Non-finite
  /// numbers become null — the wire format stays strict JSON.
  [[nodiscard]] std::string dump() const;

  /// Strict parse of a complete JSON document; trailing non-space input is
  /// an error. On failure returns nullopt and, when `err` is non-null, a
  /// one-line "offset N: reason" message.
  static std::optional<Json> parse(const std::string& text,
                                   std::string* err = nullptr);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace archex::serve
