/// \file reliability.hpp
/// Exact network reliability analysis for functional links.
///
/// Semantics (documented in DESIGN.md): the failure probability of a
/// functional link to sink t is the probability that, after independent node
/// failures, no directed failure-free path exists from any source to t. The
/// sink node itself is assumed perfect for the purpose of the link (its own
/// failure is accounted for separately), matching the paper's EPN case study
/// where loads and contactors do not fail.
///
/// The exact algorithm is pivotal decomposition (factoring) on the relevant
/// subgraph, with reachability-based pruning; a brute-force state-enumeration
/// oracle is provided for testing. This module is the "exact analysis" box of
/// the lazy (MILP modulo reliability) algorithm of Sec. 2.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace archex::reliability {

/// Exact probability that `sink` is disconnected from all of `sources` under
/// independent node failures with probabilities `fail_prob` (indexed by node).
/// The sink is treated as perfect. Edges do not fail (contactors are perfect
/// in the paper's model); model a failing edge by inserting a failable node.
///
/// Complexity is exponential in the number of *relevant* failure-prone nodes
/// (those lying on some source->sink path); factoring with pruning keeps the
/// practical cost low for architecture-sized graphs.
[[nodiscard]] double link_failure_probability(const graph::Digraph& g,
                                              const std::vector<std::int32_t>& sources,
                                              std::int32_t sink,
                                              const std::vector<double>& fail_prob);

/// Brute-force oracle: enumerates all 2^k failure states of the relevant
/// failure-prone nodes. Only usable for small graphs; used by tests to
/// validate the factoring implementation.
[[nodiscard]] double link_failure_probability_bruteforce(
    const graph::Digraph& g, const std::vector<std::int32_t>& sources, std::int32_t sink,
    const std::vector<double>& fail_prob);

/// Monte-Carlo estimator of the same probability: samples independent node
/// failure states. Deterministic for a fixed seed. Complements the exact
/// factoring analysis for graphs whose relevant failure-prone node count
/// makes exact analysis expensive; the test suite cross-validates the two.
[[nodiscard]] double link_failure_probability_monte_carlo(
    const graph::Digraph& g, const std::vector<std::int32_t>& sources, std::int32_t sink,
    const std::vector<double>& fail_prob, std::size_t samples = 100'000,
    std::uint64_t seed = 1);

/// Required number of vertex-disjoint source->sink paths to push the link
/// failure probability below `threshold`, under the approximation that each
/// path fails with probability `path_fail_prob` independently (the redundancy
/// rule-of-thumb the paper's Fig. 3 numbers follow: one path ~1e-3, two
/// ~1e-6, three ~1e-9 at p = 2e-4). Returns at least 1.
[[nodiscard]] int required_disjoint_paths(double threshold, double path_fail_prob);

}  // namespace archex::reliability
