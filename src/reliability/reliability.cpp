#include "reliability/reliability.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace archex::reliability {

namespace {

/// Relevant nodes: on some source->sink path = reachable from sources AND
/// co-reachable from the sink.
std::vector<bool> relevant_nodes(const graph::Digraph& g,
                                 const std::vector<std::int32_t>& sources, std::int32_t sink) {
  const std::vector<bool> fwd = graph::reachable_from(g, sources);
  // Reverse reachability from the sink.
  graph::Digraph rev(g.num_nodes());
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    for (std::int32_t v : g.successors(static_cast<std::int32_t>(u))) {
      rev.add_edge(v, static_cast<std::int32_t>(u));
    }
  }
  const std::vector<bool> bwd = graph::reachable_from(rev, {sink});
  std::vector<bool> rel(g.num_nodes(), false);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) rel[v] = fwd[v] && bwd[v];
  return rel;
}

/// Connectivity check under a node-alive mask.
bool connected_given(const graph::Digraph& g, const std::vector<std::int32_t>& sources,
                     std::int32_t sink, const std::vector<std::int8_t>& alive) {
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<std::int32_t> stack;
  for (std::int32_t s : sources) {
    if (alive[static_cast<std::size_t>(s)]) {
      if (s == sink) return true;
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        stack.push_back(s);
      }
    }
  }
  while (!stack.empty()) {
    const std::int32_t u = stack.back();
    stack.pop_back();
    for (std::int32_t v : g.successors(u)) {
      if (v == sink) return true;
      if (!alive[static_cast<std::size_t>(v)] || seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = true;
      stack.push_back(v);
    }
  }
  return false;
}

struct Factoring {
  const graph::Digraph& g;
  const std::vector<std::int32_t>& sources;
  std::int32_t sink;
  const std::vector<double>& p;
  std::vector<std::int32_t> prob_nodes;  // failure-prone relevant nodes
  std::vector<std::int8_t> alive;        // current conditioning (1 = alive)

  /// P(sink disconnected) given the conditioning so far; `next` indexes into
  /// prob_nodes.
  double solve(std::size_t next) {
    // Prune: if already disconnected with all undecided nodes alive, failure
    // probability is 1; if connected with all undecided nodes *dead*, it is 0.
    if (!connected_given(g, sources, sink, alive)) return 1.0;
    // (alive[] currently has undecided nodes alive, so the check above is the
    // optimistic one.)
    if (next >= prob_nodes.size()) return 0.0;  // connected, all decided

    const std::int32_t v = prob_nodes[next];
    const double pv = p[static_cast<std::size_t>(v)];

    // Condition on node v failing...
    alive[static_cast<std::size_t>(v)] = 0;
    const double fail_branch = solve(next + 1);
    // ... and on v staying up.
    alive[static_cast<std::size_t>(v)] = 1;
    const double up_branch = solve(next + 1);

    return pv * fail_branch + (1.0 - pv) * up_branch;
  }
};

}  // namespace

double link_failure_probability(const graph::Digraph& g,
                                const std::vector<std::int32_t>& sources, std::int32_t sink,
                                const std::vector<double>& fail_prob) {
  if (fail_prob.size() != g.num_nodes()) {
    throw std::invalid_argument("link_failure_probability: fail_prob size mismatch");
  }
  const std::vector<bool> rel = relevant_nodes(g, sources, sink);
  if (!rel[static_cast<std::size_t>(sink)]) return 1.0;  // no path at all

  Factoring f{g, sources, sink, fail_prob, {}, std::vector<std::int8_t>(g.num_nodes(), 0)};
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (!rel[v]) continue;  // irrelevant nodes stay dead: they cannot help
    f.alive[v] = 1;
    if (static_cast<std::int32_t>(v) != sink && fail_prob[v] > 0.0) {
      f.prob_nodes.push_back(static_cast<std::int32_t>(v));
    }
  }
  // Order by descending failure probability: conditioning on likely-failing
  // nodes first tends to disconnect early and prune deeper recursion.
  std::sort(f.prob_nodes.begin(), f.prob_nodes.end(), [&](std::int32_t a, std::int32_t b) {
    return fail_prob[static_cast<std::size_t>(a)] > fail_prob[static_cast<std::size_t>(b)];
  });
  return f.solve(0);
}

double link_failure_probability_bruteforce(const graph::Digraph& g,
                                           const std::vector<std::int32_t>& sources,
                                           std::int32_t sink,
                                           const std::vector<double>& fail_prob) {
  const std::vector<bool> rel = relevant_nodes(g, sources, sink);
  if (!rel[static_cast<std::size_t>(sink)]) return 1.0;

  std::vector<std::int32_t> prob_nodes;
  std::vector<std::int8_t> alive(g.num_nodes(), 0);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (!rel[v]) continue;
    alive[v] = 1;
    if (static_cast<std::int32_t>(v) != sink && fail_prob[v] > 0.0) {
      prob_nodes.push_back(static_cast<std::int32_t>(v));
    }
  }
  const std::size_t k = prob_nodes.size();
  if (k > 24) throw std::invalid_argument("bruteforce: too many failure-prone nodes");

  double total = 0.0;
  for (std::uint32_t mask = 0; mask < (1u << k); ++mask) {
    double prob = 1.0;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t v = static_cast<std::size_t>(prob_nodes[i]);
      const bool dead = (mask >> i) & 1u;
      alive[v] = dead ? 0 : 1;
      prob *= dead ? fail_prob[v] : (1.0 - fail_prob[v]);
    }
    if (!connected_given(g, sources, sink, alive)) total += prob;
  }
  return total;
}

double link_failure_probability_monte_carlo(const graph::Digraph& g,
                                            const std::vector<std::int32_t>& sources,
                                            std::int32_t sink,
                                            const std::vector<double>& fail_prob,
                                            std::size_t samples, std::uint64_t seed) {
  if (fail_prob.size() != g.num_nodes()) {
    throw std::invalid_argument("monte_carlo: fail_prob size mismatch");
  }
  const std::vector<bool> rel = relevant_nodes(g, sources, sink);
  if (!rel[static_cast<std::size_t>(sink)]) return 1.0;

  // xorshift64* generator: fast, deterministic across platforms.
  std::uint64_t state = seed ? seed : 0x9E3779B97F4A7C15ull;
  auto next_uniform = [&state] {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return static_cast<double>((state * 0x2545F4914F6CDD1Dull) >> 11) /
           static_cast<double>(1ull << 53);
  };

  std::vector<std::int32_t> prob_nodes;
  std::vector<std::int8_t> alive(g.num_nodes(), 0);
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (!rel[v]) continue;
    alive[v] = 1;
    if (static_cast<std::int32_t>(v) != sink && fail_prob[v] > 0.0) {
      prob_nodes.push_back(static_cast<std::int32_t>(v));
    }
  }

  std::size_t disconnected = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::int32_t v : prob_nodes) {
      alive[static_cast<std::size_t>(v)] =
          next_uniform() >= fail_prob[static_cast<std::size_t>(v)] ? 1 : 0;
    }
    if (!connected_given(g, sources, sink, alive)) ++disconnected;
    for (std::int32_t v : prob_nodes) alive[static_cast<std::size_t>(v)] = 1;
  }
  return static_cast<double>(disconnected) / static_cast<double>(samples);
}

int required_disjoint_paths(double threshold, double path_fail_prob) {
  if (threshold >= 1.0) return 1;
  if (path_fail_prob <= 0.0) return 1;
  if (path_fail_prob >= 1.0) return 1;
  const double k = std::log(threshold) / std::log(path_fail_prob);
  return std::max(1, static_cast<int>(std::ceil(k - 1e-9)));
}

}  // namespace archex::reliability
