#include "reliability/reliability.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace archex::reliability {
namespace {

using graph::Digraph;

TEST(ReliabilityTest, SingleSeriesPath) {
  // 0 -> 1 -> 2, p1 = 0.1 on the middle node, endpoints perfect.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const double p = link_failure_probability(g, {0}, 2, {0.0, 0.1, 0.0});
  EXPECT_NEAR(p, 0.1, 1e-12);
}

TEST(ReliabilityTest, SourceFailureCounts) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_NEAR(link_failure_probability(g, {0}, 1, {0.2, 0.0}), 0.2, 1e-12);
}

TEST(ReliabilityTest, SinkAssumedPerfect) {
  Digraph g(2);
  g.add_edge(0, 1);
  // The sink's own failure probability must not affect the link measure.
  EXPECT_NEAR(link_failure_probability(g, {0}, 1, {0.0, 0.9}), 0.0, 1e-12);
}

TEST(ReliabilityTest, ParallelRedundancy) {
  // Two parallel middle nodes: fails only if both fail.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const double p = link_failure_probability(g, {0}, 3, {0.0, 0.1, 0.2, 0.0});
  EXPECT_NEAR(p, 0.1 * 0.2, 1e-12);
}

TEST(ReliabilityTest, SeriesOfTwo) {
  // 0 -> 1 -> 2 -> 3: survival = (1-p1)(1-p2).
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const double p = link_failure_probability(g, {0}, 3, {0.0, 0.1, 0.2, 0.0});
  EXPECT_NEAR(p, 1.0 - 0.9 * 0.8, 1e-12);
}

TEST(ReliabilityTest, DisconnectedSinkIsCertainFailure) {
  Digraph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(link_failure_probability(g, {0}, 2, {0.0, 0.0, 0.0}), 1.0);
}

TEST(ReliabilityTest, TwoSourcesRedundancy) {
  // Sources fail independently; sink reachable from either.
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const double p = link_failure_probability(g, {0, 1}, 2, {0.1, 0.3, 0.0});
  EXPECT_NEAR(p, 0.1 * 0.3, 1e-12);
}

TEST(ReliabilityTest, EpnLikeMagnitudes) {
  // Three disjoint generator->bus chains of 3 failing stages at p = 2e-4
  // should land near the paper's 1e-9 decade.
  const double p = 2e-4;
  Digraph g(10);
  std::vector<double> fp(10, p);
  fp[9] = 0.0;  // sink bus measured as perfect
  for (int k = 0; k < 3; ++k) {
    const int gen = k * 3;
    g.add_edge(gen, gen + 1);
    g.add_edge(gen + 1, gen + 2);
    g.add_edge(gen + 2, 9);
  }
  const double fail = link_failure_probability(g, {0, 3, 6}, 9, fp);
  const double one_path = 1.0 - std::pow(1.0 - p, 3);  // ~6e-4
  EXPECT_NEAR(fail, std::pow(one_path, 3), 1e-12);
  EXPECT_LT(fail, 1e-9);
  EXPECT_GT(fail, 1e-11);
}

TEST(RequiredDisjointPathsTest, MatchesPaperProgression) {
  // p_path ~ 8e-4 (4 failing stages at 2e-4): 1e-5 -> 2 paths, 1e-9 -> 3.
  const double path_p = 8e-4;
  EXPECT_EQ(required_disjoint_paths(1e-2, path_p), 1);
  EXPECT_EQ(required_disjoint_paths(1e-5, path_p), 2);
  EXPECT_EQ(required_disjoint_paths(1e-9, path_p), 3);
  EXPECT_EQ(required_disjoint_paths(1e-13, path_p), 5);
}

TEST(RequiredDisjointPathsTest, EdgeCases) {
  EXPECT_EQ(required_disjoint_paths(1.0, 0.5), 1);
  EXPECT_EQ(required_disjoint_paths(0.5, 0.0), 1);
  EXPECT_EQ(required_disjoint_paths(1e-9, 1.0), 1);
  // Exact power boundary: 1e-6 with p=1e-3 needs exactly 2.
  EXPECT_EQ(required_disjoint_paths(1e-6, 1e-3), 2);
}

TEST(ReliabilityTest, FailProbSizeMismatchThrows) {
  Digraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW((void)link_failure_probability(g, {0}, 1, {0.1}), std::invalid_argument);
}

TEST(MonteCarloTest, AgreesWithExactOnModerateProbabilities) {
  // Two parallel chains, p = 0.2/0.3: exact failure = (1-(0.8))... computed
  // by the factoring engine; Monte Carlo must land within sampling noise.
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 5);
  g.add_edge(0, 2);
  g.add_edge(2, 5);
  const std::vector<double> fp = {0.1, 0.2, 0.3, 0.0, 0.0, 0.0};
  const double exact = link_failure_probability(g, {0}, 5, fp);
  const double mc = link_failure_probability_monte_carlo(g, {0}, 5, fp, 200000, 7);
  EXPECT_NEAR(mc, exact, 0.01);
}

TEST(MonteCarloTest, DeterministicForFixedSeed) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<double> fp = {0.1, 0.4, 0.0};
  const double a = link_failure_probability_monte_carlo(g, {0}, 2, fp, 5000, 42);
  const double b = link_failure_probability_monte_carlo(g, {0}, 2, fp, 5000, 42);
  EXPECT_EQ(a, b);
}

TEST(MonteCarloTest, DisconnectedIsCertain) {
  Digraph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(link_failure_probability_monte_carlo(g, {0}, 2, {0, 0, 0}, 10), 1.0);
}

// Property sweep: factoring equals brute-force enumeration on random DAGs.
class FactoringProperty : public ::testing::TestWithParam<int> {};

TEST_P(FactoringProperty, MatchesBruteForce) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 997u + 3u);
  std::uniform_real_distribution<double> prob(0.0, 0.5);
  std::uniform_int_distribution<int> coin(0, 1);

  const int n = 9;  // <= 2^7 relevant states for brute force
  Digraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (coin(rng) && coin(rng)) g.add_edge(u, v);  // sparse-ish DAG
    }
  }
  std::vector<double> fp(n);
  for (double& p : fp) p = prob(rng);

  const double exact = link_failure_probability(g, {0, 1}, n - 1, fp);
  const double brute = link_failure_probability_bruteforce(g, {0, 1}, n - 1, fp);
  EXPECT_NEAR(exact, brute, 1e-10) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactoringProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace archex::reliability
