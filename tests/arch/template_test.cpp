#include "arch/arch_template.hpp"

#include <gtest/gtest.h>

namespace archex {
namespace {

TEST(NodeFilterTest, ParseForms) {
  NodeFilter f = NodeFilter::parse("Gen");
  EXPECT_EQ(f.type, "Gen");
  EXPECT_TRUE(f.subtype.empty());
  EXPECT_TRUE(f.tag.empty());

  f = NodeFilter::parse("Gen/HV");
  EXPECT_EQ(f.type, "Gen");
  EXPECT_EQ(f.subtype, "HV");

  f = NodeFilter::parse("Gen#LE");
  EXPECT_EQ(f.type, "Gen");
  EXPECT_EQ(f.tag, "LE");

  f = NodeFilter::parse("Gen/HV#LE");
  EXPECT_EQ(f.type, "Gen");
  EXPECT_EQ(f.subtype, "HV");
  EXPECT_EQ(f.tag, "LE");

  f = NodeFilter::parse("*");
  EXPECT_TRUE(f.type.empty());
}

TEST(NodeFilterTest, RoundTripToString) {
  EXPECT_EQ(NodeFilter::parse("Gen/HV#LE").to_string(), "Gen/HV#LE");
  EXPECT_EQ(NodeFilter::parse("Gen").to_string(), "Gen");
  EXPECT_EQ(NodeFilter{}.to_string(), "*");
}

TEST(NodeSpecTest, SubtypeAlternation) {
  NodeSpec n{"M1", "Machine", "B|AB", {}, {}};
  EXPECT_TRUE(n.allows_subtype("B"));
  EXPECT_TRUE(n.allows_subtype("AB"));
  EXPECT_FALSE(n.allows_subtype("A"));
  NodeSpec any{"M2", "Machine", "", {}, {}};
  EXPECT_TRUE(any.allows_subtype("anything"));
}

TEST(NodeFilterTest, MatchesSubtypeAlternation) {
  NodeSpec n{"M1", "Machine", "B|AB", {"B"}, {}};
  EXPECT_TRUE((NodeFilter{"Machine", "AB", ""}).matches(n));
  EXPECT_FALSE((NodeFilter{"Machine", "A", ""}).matches(n));
  EXPECT_TRUE((NodeFilter{"Machine", "", "B"}).matches(n));
  EXPECT_FALSE((NodeFilter{"Machine", "", "A"}).matches(n));
}

TEST(ArchTemplateTest, AddNodesAndSelect) {
  ArchTemplate t;
  t.add_nodes(3, "LA", "Bus", "", {"LE"});
  t.add_nodes(2, "RA", "Bus", "", {"RI"});
  t.add_node({"G1", "Gen", "HV", {"LE"}, {}});
  EXPECT_EQ(t.num_nodes(), 6u);
  EXPECT_EQ(t.select(NodeFilter::of_type("Bus")).size(), 5u);
  EXPECT_EQ(t.select({"Bus", "", "LE"}).size(), 3u);
  EXPECT_EQ(t.find("LA2"), 1);
  EXPECT_EQ(t.find("nope"), -1);
}

TEST(ArchTemplateTest, RejectsDuplicatesAndInvalid) {
  ArchTemplate t;
  t.add_node({"X", "T", "", {}, {}});
  EXPECT_THROW(t.add_node({"X", "T", "", {}, {}}), std::invalid_argument);
  EXPECT_THROW(t.add_node({"", "T", "", {}, {}}), std::invalid_argument);
  EXPECT_THROW(t.add_node({"Y", "", "", {}, {}}), std::invalid_argument);
}

TEST(ArchTemplateTest, AllowConnectionCreatesOrderedPairs) {
  ArchTemplate t;
  t.add_nodes(2, "G", "Gen");
  t.add_nodes(2, "B", "Bus");
  t.allow_connection(NodeFilter::of_type("Gen"), NodeFilter::of_type("Bus"));
  EXPECT_EQ(t.candidate_edges().size(), 4u);
  EXPECT_TRUE(t.edge_allowed(0, 2));
  EXPECT_FALSE(t.edge_allowed(2, 0));
}

TEST(ArchTemplateTest, SelfLoopsNeverAllowed) {
  ArchTemplate t;
  t.add_nodes(2, "B", "Bus");
  t.allow_connection(NodeFilter::of_type("Bus"), NodeFilter::of_type("Bus"));
  EXPECT_EQ(t.candidate_edges().size(), 2u);  // both directions, no loops
  EXPECT_FALSE(t.edge_allowed(0, 0));
}

TEST(ArchTemplateTest, AllowEdgeIdempotent) {
  ArchTemplate t;
  t.add_nodes(2, "B", "Bus");
  t.allow_edge(0, 1);
  t.allow_edge(0, 1);
  EXPECT_EQ(t.candidate_edges().size(), 1u);
  EXPECT_THROW(t.allow_edge(0, 9), std::invalid_argument);
}

TEST(ArchTemplateTest, TypesInFirstAppearanceOrder) {
  ArchTemplate t;
  t.add_node({"S", "Snk", "", {}, {}});
  t.add_node({"G", "Gen", "", {}, {}});
  t.add_node({"S2", "Snk", "", {}, {}});
  EXPECT_EQ(t.types(), (std::vector<std::string>{"Snk", "Gen"}));
}

}  // namespace
}  // namespace archex
