#include "arch/legacy_encoder.hpp"

#include <gtest/gtest.h>

#include "arch/problem.hpp"
#include "arch/patterns/connection.hpp"
#include "milp/branch_bound.hpp"

namespace archex {
namespace {

/// Instance family used by the encoding-comparison bench: a chain template
/// where each node has `ell` implementation options.
struct Chain {
  Library lib;
  ArchTemplate tmpl;

  Chain(int nodes_per_stage, int ell) {
    lib.set_edge_cost(2.0);
    for (const char* type : {"A", "B", "C"}) {
      for (int i = 0; i < ell; ++i) {
        lib.add({std::string(type) + "impl" + std::to_string(i), type, "", {},
                 {{attr::kCost, 10.0 + i}}});
      }
    }
    tmpl.add_nodes(nodes_per_stage, "a", "A");
    tmpl.add_nodes(nodes_per_stage, "b", "B");
    tmpl.add_nodes(nodes_per_stage, "c", "C");
    tmpl.allow_connection(NodeFilter::of_type("A"), NodeFilter::of_type("B"));
    tmpl.allow_connection(NodeFilter::of_type("B"), NodeFilter::of_type("C"));
  }
};

TEST(LegacyEncoderTest, VariableCountQuadraticInLibrarySize) {
  // The paper's Sec. 2 claim: legacy decision variables scale quadratically
  // in the number of library options l, the new encoding linearly.
  const Chain small(2, 2);
  const Chain big(2, 4);

  LegacyEncoding legacy_small(small.lib, small.tmpl);
  LegacyEncoding legacy_big(big.lib, big.tmpl);
  Problem new_small(small.lib, small.tmpl);
  Problem new_big(big.lib, big.tmpl);

  const double legacy_growth =
      static_cast<double>(legacy_big.model().num_vars()) /
      static_cast<double>(legacy_small.model().num_vars());
  const double new_growth = static_cast<double>(new_big.model().num_vars()) /
                            static_cast<double>(new_small.model().num_vars());
  // l doubled: legacy z-variables grow ~4x, new mapping variables ~<2x.
  EXPECT_GT(legacy_growth, 2.5);
  EXPECT_LT(new_growth, 2.0);
}

TEST(LegacyEncoderTest, SameOptimalCostAsNewEncoding) {
  const Chain inst(2, 3);

  // Legacy: every 'c' node gets exactly one incoming connection; 'b' nodes
  // at most 2 outgoing.
  LegacyEncoding legacy(inst.lib, inst.tmpl);
  for (NodeId c : inst.tmpl.select(NodeFilter::of_type("C"))) {
    milp::LinExpr in;
    for (NodeId b : inst.tmpl.select(NodeFilter::of_type("B"))) in += legacy.edge_expr(b, c);
    legacy.model().add_constraint(std::move(in), milp::Sense::EQ, 1.0);
  }
  for (NodeId b : inst.tmpl.select(NodeFilter::of_type("B"))) {
    milp::LinExpr in;
    for (NodeId a : inst.tmpl.select(NodeFilter::of_type("A"))) in += legacy.edge_expr(a, b);
    milp::LinExpr used = legacy.used_expr(b);
    milp::LinExpr c = used - in;
    legacy.model().add_constraint(std::move(c), milp::Sense::LE, 0.0);
  }
  legacy.finalize_objective(inst.lib.edge_cost());
  milp::Solution legacy_sol = milp::solve_milp(legacy.model());
  ASSERT_TRUE(legacy_sol.optimal());

  // New encoding with the same requirements.
  Problem p(inst.lib, inst.tmpl);
  p.apply(patterns::NConnections(NodeFilter::of_type("B"), NodeFilter::of_type("C"), 1,
                                 milp::Sense::EQ, false, patterns::CountSide::kTo));
  p.apply(patterns::NConnections(NodeFilter::of_type("A"), NodeFilter::of_type("B"), 1,
                                 milp::Sense::GE, true, patterns::CountSide::kTo));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());

  EXPECT_NEAR(legacy_sol.objective, res.architecture.cost, 1e-6);
}

TEST(LegacyEncoderTest, RequireConnectionsHelper) {
  const Chain inst(2, 2);
  LegacyEncoding legacy(inst.lib, inst.tmpl);
  legacy.require_connections(NodeFilter::of_type("A"), NodeFilter::of_type("B"), 1,
                             milp::Sense::GE);
  legacy.finalize_objective(inst.lib.edge_cost());
  milp::Solution sol = milp::solve_milp(legacy.model());
  ASSERT_TRUE(sol.optimal());
  // Two A nodes each with >= 1 connection: at least 2 z edges + impls.
  EXPECT_GT(sol.objective, 0.0);
}

TEST(LegacyEncoderTest, ImplVarLookup) {
  const Chain inst(1, 2);
  LegacyEncoding legacy(inst.lib, inst.tmpl);
  EXPECT_TRUE(legacy.impl_var(0, 0).valid());
  EXPECT_FALSE(legacy.impl_var(0, 99).valid());
}

}  // namespace
}  // namespace archex
