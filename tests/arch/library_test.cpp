#include "arch/library.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace archex {
namespace {

Component comp(const std::string& name, const std::string& type, const std::string& sub = {},
               double cost = 1.0) {
  Component c;
  c.name = name;
  c.type = type;
  c.subtype = sub;
  c.attrs[attr::kCost] = cost;
  return c;
}

TEST(ComponentTest, AttrLookupWithDefault) {
  Component c = comp("X", "T");
  EXPECT_EQ(c.attr_or(attr::kCost), 1.0);
  EXPECT_EQ(c.attr_or("missing", 7.0), 7.0);
  EXPECT_TRUE(c.has_attr(attr::kCost));
  EXPECT_FALSE(c.has_attr("missing"));
  EXPECT_EQ(c.cost(), 1.0);
  EXPECT_EQ(c.fail_prob(), 0.0);
}

TEST(ComponentTest, Tags) {
  Component c = comp("X", "T");
  c.tags = {"LE", "critical"};
  EXPECT_TRUE(c.has_tag("LE"));
  EXPECT_FALSE(c.has_tag("RI"));
}

TEST(LibraryTest, AddAndQueryByType) {
  Library lib;
  lib.add(comp("G1", "Gen", "HV"));
  lib.add(comp("G2", "Gen", "LV"));
  lib.add(comp("B1", "Bus", "HV"));
  EXPECT_EQ(lib.size(), 3u);
  EXPECT_EQ(lib.of_type("Gen").size(), 2u);
  EXPECT_EQ(lib.of_type("Gen", "HV").size(), 1u);
  EXPECT_EQ(lib.of_type("Nope").size(), 0u);
}

TEST(LibraryTest, RejectsDuplicatesAndInvalid) {
  Library lib;
  lib.add(comp("G1", "Gen"));
  EXPECT_THROW(lib.add(comp("G1", "Gen")), std::invalid_argument);
  EXPECT_THROW(lib.add(comp("", "Gen")), std::invalid_argument);
  EXPECT_THROW(lib.add(comp("X", "")), std::invalid_argument);
}

TEST(LibraryTest, FindByName) {
  Library lib;
  const LibIndex g = lib.add(comp("G1", "Gen"));
  EXPECT_EQ(lib.find("G1"), std::optional<LibIndex>(g));
  EXPECT_FALSE(lib.find("nope").has_value());
}

TEST(LibraryTest, TypesAndSubtypesInFirstAppearanceOrder) {
  Library lib;
  lib.add(comp("A", "T2"));
  lib.add(comp("B", "T1", "s1"));
  lib.add(comp("C", "T1", "s2"));
  lib.add(comp("D", "T1", "s1"));
  EXPECT_EQ(lib.types(), (std::vector<std::string>{"T2", "T1"}));
  EXPECT_EQ(lib.subtypes_of("T1"), (std::vector<std::string>{"s1", "s2"}));
  EXPECT_TRUE(lib.subtypes_of("T2").empty());
}

TEST(LibraryTest, MaxAttr) {
  Library lib;
  lib.add(comp("A", "T", "", 5.0));
  lib.add(comp("B", "T", "", 9.0));
  lib.add(comp("C", "U", "", 100.0));
  EXPECT_EQ(lib.max_attr("T", attr::kCost), 9.0);
  EXPECT_EQ(lib.max_attr("T", "missing"), 0.0);
}

TEST(LibraryTest, EdgeCost) {
  Library lib;
  EXPECT_EQ(lib.edge_cost(), 0.0);
  lib.set_edge_cost(123.0);
  EXPECT_EQ(lib.edge_cost(), 123.0);
}

TEST(LibraryTest, StreamOutputListsComponents) {
  Library lib;
  lib.add(comp("G1", "Gen", "HV", 2.5));
  std::ostringstream os;
  os << lib;
  EXPECT_NE(os.str().find("G1"), std::string::npos);
  EXPECT_NE(os.str().find("Gen/HV"), std::string::npos);
}

}  // namespace
}  // namespace archex
