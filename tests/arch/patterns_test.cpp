#include <gtest/gtest.h>

#include "arch/patterns/connection.hpp"
#include "arch/patterns/flow.hpp"
#include "arch/patterns/general.hpp"
#include "arch/patterns/pattern.hpp"
#include "arch/patterns/reliability_patterns.hpp"
#include "arch/patterns/timing.hpp"
#include "arch/problem.hpp"
#include "graph/digraph.hpp"

namespace archex {
namespace {

using namespace patterns;

/// Fixture: Src -> Mid -> Snk pipeline with parallel mids and mid-mid ties.
struct Net {
  Library lib;
  ArchTemplate tmpl;

  explicit Net(int mids = 3) {
    lib.set_edge_cost(1.0);
    lib.add({"SrcX", "Src", "", {}, {{attr::kCost, 10}, {attr::kFlowRate, 6}, {attr::kDelay, 1}, {attr::kFailProb, 0.01}}});
    lib.add({"MidSlow", "Mid", "slow", {}, {{attr::kCost, 5}, {attr::kThroughput, 4}, {attr::kDelay, 3}, {attr::kFailProb, 0.01}}});
    lib.add({"MidQuick", "Mid", "fast", {}, {{attr::kCost, 9}, {attr::kThroughput, 10}, {attr::kDelay, 1}, {attr::kFailProb, 0.01}}});
    lib.add({"SnkX", "Snk", "", {}, {{attr::kCost, 0}}});

    tmpl.add_nodes(2, "S", "Src");
    tmpl.add_nodes(mids, "M", "Mid");
    tmpl.add_node({"T", "Snk", "", {}, {}});
    tmpl.allow_connection(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"));
    tmpl.allow_connection(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"));
  }

  [[nodiscard]] Problem make() const {
    Problem p(lib, tmpl);
    p.set_functional_flow({"Src", "Mid", "Snk"});
    return p;
  }
};

TEST(PatternTest, AtLeastNComponents) {
  Net net;
  Problem p = net.make();
  p.apply(AtLeastNComponents(NodeFilter::of_type("Mid"), 2));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  EXPECT_GE(res.architecture.used_nodes(NodeFilter::of_type("Mid")).size(), 2u);
}

TEST(PatternTest, AtLeastNComponentsInfeasibleBeyondTemplate) {
  Net net(2);
  Problem p = net.make();
  p.apply(AtLeastNComponents(NodeFilter::of_type("Mid"), 3));
  ExplorationResult res = p.solve();
  EXPECT_FALSE(res.feasible());
}

TEST(PatternTest, ExactlyNConnectionsPerTarget) {
  Net net;
  Problem p = net.make();
  p.apply(NConnections(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"), 1,
                       milp::Sense::EQ, false, CountSide::kTo));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  const graph::Digraph g = res.architecture.to_digraph();
  EXPECT_EQ(g.in_degree(res.architecture.to_digraph().num_nodes() - 1), 1u);
}

TEST(PatternTest, AtMostNConnections) {
  Net net;
  Problem p = net.make();
  // Force 3 mids used but each source feeds at most 2.
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 1,
                       milp::Sense::GE, false, CountSide::kTo));  // each mid fed
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 2,
                       milp::Sense::LE, false, CountSide::kFrom));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  const graph::Digraph g = res.architecture.to_digraph();
  for (NodeId s : net.tmpl.select(NodeFilter::of_type("Src"))) {
    EXPECT_LE(g.out_degree(s), 2u);
  }
}

TEST(PatternTest, ConnectionsOnlyIfUsed) {
  Net net;
  Problem p = net.make();
  // Used mids need an input, but unused mids stay unconstrained (the whole
  // problem may pick the empty architecture).
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 1,
                       milp::Sense::GE, true, CountSide::kTo));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  EXPECT_EQ(res.architecture.num_used_nodes(), 0u);
}

TEST(PatternTest, InConnImpliesOutConn) {
  Net net;
  Problem p = net.make();
  // Sinks must be fed by exactly one mid.
  p.apply(NConnections(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"), 1,
                       milp::Sense::EQ, false, CountSide::kTo));
  // Every mid fed by a source must feed the sink.
  p.apply(InConnImpliesOutConn(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"),
                               NodeFilter::of_type("Snk")));
  // Make one source feed two mids: only one mid may reach the sink, so this
  // must be infeasible (two fed mids would both need sink edges, violating
  // the exactly-one).
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 2,
                       milp::Sense::GE, false, CountSide::kFrom));
  ExplorationResult res = p.solve();
  EXPECT_FALSE(res.feasible());
}

TEST(PatternTest, BidirectionalConnection) {
  Library lib;
  lib.set_edge_cost(1.0);
  lib.add({"BusX", "Bus", "", {}, {{attr::kCost, 2}}});
  ArchTemplate t;
  t.add_nodes(2, "B", "Bus");
  t.allow_connection(NodeFilter::of_type("Bus"), NodeFilter::of_type("Bus"));
  Problem p(lib, t);
  p.apply(BidirectionalConnection(NodeFilter::of_type("Bus"), NodeFilter::of_type("Bus")));
  // Force one direction: the other must follow.
  p.model().add_constraint(milp::LinExpr(p.edges().at(0, 1)), milp::Sense::EQ, 1.0, "force");
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  EXPECT_TRUE(res.architecture.has_edge(0, 1));
  EXPECT_TRUE(res.architecture.has_edge(1, 0));
}

TEST(PatternTest, CannotConnectStaticSubtype) {
  Net net;
  ArchTemplate t = net.tmpl;
  Problem p(net.lib, t);
  // Mids restricted per-subtype cannot receive from source S2 (by index).
  p.apply(CannotConnect({"Src", "", ""}, {"Mid", "slow", ""}));
  // Force every mid fed.
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 1,
                       milp::Sense::GE, false, CountSide::kTo));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  // All mids must be implemented with the fast subtype: feeding a slow one
  // would violate cannot_connect.
  for (NodeId m : res.architecture.used_nodes(NodeFilter::of_type("Mid"))) {
    EXPECT_EQ(res.architecture.nodes[static_cast<std::size_t>(m)].impl_name, "MidQuick");
  }
}

TEST(PatternTest, CannotConnectMappedSubtypesBothSides) {
  // HV->LV forbidden through the mapping: with only HV sources and only LV
  // mids available, feeding any mid is infeasible.
  Library lib;
  lib.set_edge_cost(1.0);
  lib.add({"SrcHV", "Src", "HV", {}, {{attr::kCost, 1}}});
  lib.add({"MidLV", "Mid", "LV", {}, {{attr::kCost, 1}}});
  ArchTemplate t;
  t.add_node({"S", "Src", "", {}, {}});
  t.add_node({"M", "Mid", "", {}, {}});
  t.allow_edge(0, 1);
  Problem p(lib, t);
  p.apply(CannotConnect({"Src", "HV", ""}, {"Mid", "LV", ""}));
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 1,
                       milp::Sense::GE, false, CountSide::kTo));
  ExplorationResult res = p.solve();
  EXPECT_FALSE(res.feasible());
}

TEST(PatternTest, NoSelfLoopsIsInert) {
  Net net;
  Problem p = net.make();
  const std::size_t rows = p.model().num_constraints();
  p.apply(NoSelfLoops(NodeFilter::of_type("Mid")));
  EXPECT_EQ(p.model().num_constraints(), rows);
  EXPECT_EQ(p.num_patterns_applied(), 1u);
}

TEST(PatternTest, AtLeastNPathsProducesDisjointPaths) {
  Net net;
  Problem p = net.make();
  p.apply(AtLeastNPaths(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk"), 2));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  const graph::Digraph g = res.architecture.to_digraph();
  const NodeId sink = net.tmpl.find("T");
  std::vector<int> cap(g.num_nodes(), 1);
  cap[static_cast<std::size_t>(sink)] = 1000;
  EXPECT_GE(graph::max_flow_unit_nodes(g, net.tmpl.select(NodeFilter::of_type("Src")), sink,
                                       cap),
            2);
}

TEST(PatternTest, AtLeastNPathsInfeasibleWhenTooFew) {
  Net net(1);  // single mid: at most 1 vertex-disjoint path
  Problem p = net.make();
  p.apply(AtLeastNPaths(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk"), 2));
  ExplorationResult res = p.solve();
  EXPECT_FALSE(res.feasible());
}

TEST(PatternTest, FlowBalanceAndSourceSinkRates) {
  Net net;
  Problem p = net.make();
  p.flow("goods", 16.0);
  p.apply(SourceRate("goods", {"Src", "", ""}, 3.0));
  p.apply(SinkDemand("goods", {"Snk", "", ""}, 6.0));
  p.apply(FlowBalance(NodeFilter::of_type("Mid"), {"goods"}));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  EXPECT_NEAR(res.architecture.in_flow("goods", net.tmpl.find("T")), 6.0, 1e-6);
}

TEST(PatternTest, NoOverloadsRespectsMappedThroughput) {
  Net net;
  Problem p = net.make();
  p.flow("goods", 16.0);
  p.apply(SourceRate("goods", {"Src", "", ""}, 3.0));
  p.apply(SinkDemand("goods", {"Snk", "", ""}, 6.0));
  p.apply(FlowBalance(NodeFilter::of_type("Mid"), {"goods"}));
  p.apply(NoOverloads(NodeFilter::of_type("Mid"), {{"goods"}}));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  // Post-check: every mid's inflow is at most its implementation's mu.
  for (NodeId m : res.architecture.used_nodes(NodeFilter::of_type("Mid"))) {
    const auto& node = res.architecture.nodes[static_cast<std::size_t>(m)];
    const double mu = p.library().at(node.impl).attr_or(attr::kThroughput);
    EXPECT_LE(res.architecture.in_flow("goods", m), mu + 1e-6);
  }
}

TEST(PatternTest, NoOverloadsForcesFastImplementation) {
  Net net(1);
  Problem p = net.make();
  p.flow("goods", 16.0);
  p.apply(SourceRate("goods", {"Src", "", ""}, 3.0));
  p.apply(SinkDemand("goods", {"Snk", "", ""}, 6.0));
  p.apply(FlowBalance(NodeFilter::of_type("Mid"), {"goods"}));
  p.apply(NoOverloads(NodeFilter::of_type("Mid"), {{"goods"}}));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  // 6 units through a single mid exceeds the slow mu=4: must pick MidQuick.
  const auto mids = res.architecture.used_nodes(NodeFilter::of_type("Mid"));
  ASSERT_EQ(mids.size(), 1u);
  EXPECT_EQ(res.architecture.nodes[static_cast<std::size_t>(mids[0])].impl_name, "MidQuick");
}

TEST(PatternTest, CapacityLimitOnArbitraryAttribute) {
  // Mid nodes have no "power" attribute in the fixture library, so add a
  // dedicated fixture: capacity attribute "power" on the mids.
  Library lib;
  lib.set_edge_cost(1.0);
  lib.add({"S0", "Src", "", {}, {{attr::kCost, 1}}});
  lib.add({"BusSmall", "Bus", "", {}, {{attr::kCost, 2}, {attr::kPower, 3}}});
  lib.add({"BusBig", "Bus", "", {}, {{attr::kCost, 6}, {attr::kPower, 10}}});
  lib.add({"T0", "Snk", "", {}, {{attr::kCost, 0}}});
  ArchTemplate t;
  t.add_node({"S", "Src", "", {}, {}});
  t.add_node({"B", "Bus", "", {}, {}});
  t.add_node({"T", "Snk", "", {}, {}});
  t.allow_edge(0, 1);
  t.allow_edge(1, 2);
  Problem p(lib, t);
  p.flow("power", 16.0);
  p.apply(SourceRate("power", {"Src", "", ""}, 5.0));
  p.apply(FlowBalance(NodeFilter::of_type("Bus"), {"power"}));
  p.apply(SinkDemand("power", {"Snk", "", ""}, 5.0));
  p.apply(CapacityLimit(NodeFilter::of_type("Bus"), attr::kPower, {"power"}));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  // 5 units through the bus exceed the small bus's capacity 3.
  EXPECT_EQ(res.architecture.nodes[1].impl_name, "BusBig");
}

TEST(PatternTest, MaxCycleTimeArrivalEncoding) {
  Net net;
  Problem p = net.make();
  // Sink must be connected; bound forces the fast mid (1+1+0) over slow
  // (1+3+0).
  p.apply(NConnections(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"), 1,
                       milp::Sense::GE, false, CountSide::kTo));
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 1,
                       milp::Sense::GE, true, CountSide::kTo));
  p.apply(MaxCycleTime(NodeFilter::of_type("Snk"), 2.5));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  for (NodeId m : res.architecture.used_nodes(NodeFilter::of_type("Mid"))) {
    EXPECT_EQ(res.architecture.nodes[static_cast<std::size_t>(m)].impl_name, "MidQuick");
  }
  // Post-check with the graph longest-path analysis.
  const graph::Digraph g = res.architecture.to_digraph();
  std::vector<double> tau(g.num_nodes(), 0.0);
  for (std::size_t j = 0; j < g.num_nodes(); ++j) {
    const auto& n = res.architecture.nodes[j];
    if (n.used) tau[j] = p.library().at(n.impl).attr_or(attr::kDelay);
  }
  EXPECT_LE(graph::longest_path_weight(g, net.tmpl.select(NodeFilter::of_type("Src")),
                                       net.tmpl.find("T"), tau),
            2.5 + 1e-6);
}

TEST(PatternTest, MaxCycleTimePathEncodingAgrees) {
  for (CycleTimeEncoding enc :
       {CycleTimeEncoding::kArrivalTime, CycleTimeEncoding::kPathEnumeration}) {
    Net net;
    Problem p = net.make();
    p.apply(NConnections(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"), 1,
                         milp::Sense::GE, false, CountSide::kTo));
    p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 1,
                         milp::Sense::GE, true, CountSide::kTo));
    p.apply(MaxCycleTime(NodeFilter::of_type("Snk"), 2.5, enc));
    ExplorationResult res = p.solve();
    ASSERT_TRUE(res.feasible());
    // Both encodings admit only the fast mid; identical optimal cost.
    EXPECT_NEAR(res.architecture.cost, 10 + 9 + 2, 1e-6);
  }
}

TEST(PatternTest, MaxCycleTimeInfeasibleWhenTooTight) {
  Net net;
  Problem p = net.make();
  p.apply(NConnections(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"), 1,
                       milp::Sense::GE, false, CountSide::kTo));
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 1,
                       milp::Sense::GE, true, CountSide::kTo));
  p.apply(MaxCycleTime(NodeFilter::of_type("Snk"), 1.5));  // < 1 + 1
  ExplorationResult res = p.solve();
  EXPECT_FALSE(res.feasible());
}

TEST(PatternTest, MaxCycleTimeRequiresFunctionalFlow) {
  Net net;
  Problem p(net.lib, net.tmpl);  // no functional flow set
  EXPECT_THROW(p.apply(MaxCycleTime(NodeFilter::of_type("Snk"), 2.0)), std::logic_error);
}

TEST(PatternTest, MaxTotalIdleRate) {
  Net net;
  Problem p = net.make();
  p.flow("goods", 16.0);
  p.apply(SourceRate("goods", {"Src", "", ""}, 3.0));
  p.apply(SinkDemand("goods", {"Snk", "", ""}, 6.0));
  p.apply(FlowBalance(NodeFilter::of_type("Mid"), {"goods"}));
  p.apply(NoOverloads(NodeFilter::of_type("Mid"), {{"goods"}}));
  p.apply(MaxTotalIdleRate(NodeFilter::of_type("Mid"), 2.0, {{"goods"}}));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  double idle = 0.0;
  for (NodeId m : res.architecture.used_nodes(NodeFilter::of_type("Mid"))) {
    const auto& n = res.architecture.nodes[static_cast<std::size_t>(m)];
    idle += p.library().at(n.impl).attr_or(attr::kThroughput) -
            res.architecture.in_flow("goods", m);
  }
  EXPECT_LE(idle, 2.0 + 1e-6);
}

TEST(PatternTest, MinRedundantComponents) {
  Net net;
  Problem p = net.make();
  p.apply(MinRedundantComponents(NodeFilter::of_type("Src"), 2));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  EXPECT_GE(res.architecture.used_nodes(NodeFilter::of_type("Src")).size(), 2u);
}

TEST(PatternTest, MaxFailprobRequiredPathsComputation) {
  Net net;
  Problem p = net.make();
  // path fail prob estimate = 0.01 (Src) + 0.01 (Mid) + 0 (Snk) = 0.02.
  MaxFailprobOfConnection pat(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk"), 1e-5);
  EXPECT_NEAR(p.path_fail_prob_estimate(), 0.02, 1e-12);
  EXPECT_EQ(pat.required_paths(p), 3);  // 0.02^3 = 8e-6 <= 1e-5
  MaxFailprobOfConnection pat2(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk"), 1e-3);
  EXPECT_EQ(pat2.required_paths(p), 2);
}

TEST(PatternTest, MaxFailprobOfConnectionEnforcesRedundancy) {
  Net net;
  Problem p = net.make();
  p.apply(MaxFailprobOfConnection(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk"),
                                  1e-3));  // 2 disjoint paths
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  const graph::Digraph g = res.architecture.to_digraph();
  const NodeId sink = net.tmpl.find("T");
  std::vector<int> cap(g.num_nodes(), 1);
  cap[static_cast<std::size_t>(sink)] = 1000;
  EXPECT_GE(graph::max_flow_unit_nodes(g, net.tmpl.select(NodeFilter::of_type("Src")), sink,
                                       cap),
            2);
}

TEST(PatternRegistryTest, BuiltinsRegistered) {
  const PatternRegistry& reg = PatternRegistry::instance();
  for (const char* name :
       {"at_least_n_components", "at_least_n_paths", "at_least_n_connections",
        "at_most_n_connections", "exactly_n_connections", "in_conn_implies_out_conn",
        "bidirectional_connection", "no_self_loops", "cannot_connect", "flow_balance",
        "no_overloads", "max_cycle_time", "max_total_idle_rate", "min_redundant_components",
        "max_failprob_of_connection"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
}

TEST(PatternRegistryTest, CreateValidatesArguments) {
  const PatternRegistry& reg = PatternRegistry::instance();
  EXPECT_THROW((void)reg.create("no_such_pattern", {}), std::invalid_argument);
  EXPECT_THROW((void)reg.create("at_least_n_connections", {std::string("A")}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.create("at_least_n_connections",
                                {std::string("A"), std::string("B"), std::string("C")}),
               std::invalid_argument);
  auto pat = reg.create("at_least_n_connections", {std::string("A"), std::string("B"), 2.0});
  EXPECT_EQ(pat->name(), "at_least_n_connections");
  EXPECT_NE(pat->describe().find("A"), std::string::npos);
}

TEST(PatternRegistryTest, DuplicateRegistrationThrows) {
  PatternRegistry reg;
  reg.register_pattern("p", [](const std::vector<PatternArg>&) {
    return std::shared_ptr<Pattern>();
  });
  EXPECT_THROW(reg.register_pattern("p",
                                    [](const std::vector<PatternArg>&) {
                                      return std::shared_ptr<Pattern>();
                                    }),
               std::invalid_argument);
}

}  // namespace
}  // namespace archex
