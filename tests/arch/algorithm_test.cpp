#include "arch/algorithm.hpp"

#include <gtest/gtest.h>

#include "arch/patterns/connection.hpp"
#include "arch/patterns/general.hpp"
#include "reliability/reliability.hpp"

namespace archex {
namespace {

using patterns::CountSide;
using patterns::NConnections;
using patterns::SinksConnectedToSources;

/// Source/mid/sink net with failure-prone components for the lazy loop.
struct RelNet {
  Library lib;
  ArchTemplate tmpl;

  RelNet() {
    lib.set_edge_cost(1.0);
    lib.add({"SrcX", "Src", "", {}, {{attr::kCost, 10}, {attr::kFailProb, 0.05}}});
    lib.add({"MidX", "Mid", "", {}, {{attr::kCost, 4}, {attr::kFailProb, 0.05}}});
    lib.add({"SnkX", "Snk", "", {}, {{attr::kCost, 0}}});
    tmpl.add_nodes(3, "S", "Src");
    tmpl.add_nodes(3, "M", "Mid");
    tmpl.add_node({"T", "Snk", "", {}, {}});
    tmpl.allow_connection(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"));
    tmpl.allow_connection(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"));
  }

  [[nodiscard]] Problem make() const {
    Problem p(lib, tmpl);
    p.set_functional_flow({"Src", "Mid", "Snk"});
    return p;
  }
};

TEST(AnalyzeReliabilityTest, MatchesDirectComputation) {
  RelNet net;
  Problem p = net.make();
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());

  ReliabilityRequirement req{NodeFilter::of_type("Src"), NodeFilter::of_type("Snk"), 0.5};
  const auto probs = analyze_reliability(p, res.architecture, req);
  ASSERT_EQ(probs.size(), 1u);
  const double direct = reliability::link_failure_probability(
      res.architecture.to_digraph(), net.tmpl.select(NodeFilter::of_type("Src")),
      net.tmpl.find("T"), res.architecture.node_fail_probs(p.library()));
  EXPECT_NEAR(probs.at("T"), direct, 1e-12);
}

TEST(SolveLazyTest, NoRequirementsConvergesImmediately) {
  RelNet net;
  Problem p = net.make();
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));
  LazyResult res = solve_lazy(p, {});
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations.size(), 1u);
  EXPECT_TRUE(res.final_result.feasible());
}

TEST(SolveLazyTest, LearnsRedundancyUntilThresholdMet) {
  RelNet net;
  Problem p = net.make();
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));
  // One chain: failure prob ~ 1 - 0.95^2 ~ 0.0975. Demand <= 0.02: needs two
  // disjoint chains (~0.0095).
  ReliabilityRequirement req{NodeFilter::of_type("Src"), NodeFilter::of_type("Snk"), 0.02};
  LazyResult res = solve_lazy(p, {req});
  ASSERT_TRUE(res.converged);
  EXPECT_GE(res.iterations.size(), 2u);
  // Exact analysis of the final architecture meets the requirement.
  const auto probs = analyze_reliability(p, res.final_result.architecture, req);
  EXPECT_LE(probs.at("T"), req.threshold);
  // Earlier iterations recorded the violation.
  EXPECT_GT(res.iterations.front().sink_fail_prob.at("T"), req.threshold);
  // Learned requirements were recorded.
  EXPECT_GE(res.iterations.back().required_paths.at("T"), 2);
}

TEST(SolveLazyTest, ReportsFailureWhenRedundancyCeilingHit) {
  RelNet net;
  Problem p = net.make();
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));
  // Unattainable threshold: even 3 disjoint chains give ~9e-4.
  ReliabilityRequirement req{NodeFilter::of_type("Src"), NodeFilter::of_type("Snk"), 1e-12};
  LazyOptions opts;
  opts.max_path_requirement = 3;
  LazyResult res = solve_lazy(p, {req}, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_FALSE(res.iterations.empty());
}

TEST(SolveLazyTest, CostNeverDecreasesAcrossIterations) {
  RelNet net;
  Problem p = net.make();
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));
  ReliabilityRequirement req{NodeFilter::of_type("Src"), NodeFilter::of_type("Snk"), 0.02};
  LazyResult res = solve_lazy(p, {req});
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 1; i < res.iterations.size(); ++i) {
    EXPECT_GE(res.iterations[i].cost, res.iterations[i - 1].cost - 1e-9);
  }
}

}  // namespace
}  // namespace archex
