/// Integration tests over the *shipped* specification files (data/): they
/// must parse, resolve every pattern through the registry, and instantiate
/// into well-formed problems. Guards the repository's own inputs against
/// drift. (No solving here — the benches exercise that.)
#include <gtest/gtest.h>

#include <fstream>

#include "arch/parser.hpp"
#include "domains/epn.hpp"
#include "domains/rpl.hpp"

namespace archex {
namespace {

std::string locate(const std::string& file) {
  for (const std::string& dir : {std::string("data"), std::string("../data"),
                                 std::string("../../data"), std::string("/root/repo/data")}) {
    const std::string path = dir + "/" + file;
    if (std::ifstream(path).good()) return path;
  }
  return {};
}

class ShippedSpecs : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    domains::epn::register_epn_patterns();
    domains::rpl::register_rpl_patterns();
  }
};

TEST_F(ShippedSpecs, EpnSpecParsesAndInstantiates) {
  const std::string spec_path = locate("epn.spec");
  const std::string lib_path = locate("epn.lib");
  if (spec_path.empty() || lib_path.empty()) GTEST_SKIP() << "data files not found";

  const ProblemSpec spec = load_problem_spec_file(spec_path);
  Library lib = load_library_file(lib_path);

  // Paper Table 2 template shape.
  EXPECT_EQ(spec.tmpl.select(NodeFilter::of_type("Generator")).size(), 6u);
  EXPECT_EQ(spec.tmpl.select(NodeFilter::of_type("ACBus")).size(), 8u);
  EXPECT_EQ(spec.tmpl.select(NodeFilter::of_type("Rectifier")).size(), 10u);
  EXPECT_EQ(spec.tmpl.select(NodeFilter::of_type("DCBus")).size(), 8u);
  EXPECT_EQ(spec.tmpl.select(NodeFilter::of_type("Load")).size(), 16u);
  EXPECT_EQ(spec.functional_flow.size(), 5u);
  // In the spirit of the paper's "46 patterns / 90 LoC" specification.
  EXPECT_GE(spec.patterns.size(), 25u);
  EXPECT_LE(spec.spec_lines, 100);
  EXPECT_EQ(lib.edge_cost(), 1500.0);

  std::unique_ptr<Problem> p = instantiate(spec, std::move(lib));
  EXPECT_EQ(p->num_patterns_applied(), spec.patterns.size());
  // Every load is pinned to its fixed implementation.
  for (NodeId l : p->arch_template().select(NodeFilter::of_type("Load"))) {
    EXPECT_EQ(p->mapping().candidates(l).size(), 1u)
        << p->arch_template().node(l).name;
  }
  // The generated MILP is orders of magnitude larger than the spec.
  const milp::ModelStats st = p->model().stats();
  EXPECT_GT(st.standard_form_lines, 100u * static_cast<std::size_t>(spec.spec_lines));
}

TEST_F(ShippedSpecs, RplSpecParsesAndInstantiates) {
  const std::string spec_path = locate("rpl.spec");
  const std::string lib_path = locate("rpl.lib");
  if (spec_path.empty() || lib_path.empty()) GTEST_SKIP() << "data files not found";

  const ProblemSpec spec = load_problem_spec_file(spec_path);
  Library lib = load_library_file(lib_path);

  // Paper Table 3 template shape.
  EXPECT_EQ(spec.tmpl.select(NodeFilter::of_type("Machine")).size(), 10u);
  EXPECT_EQ(spec.tmpl.select(NodeFilter::of_type("Conveyor")).size(), 15u);
  EXPECT_EQ(spec.tmpl.select(NodeFilter::of_type("Source")).size(), 2u);
  EXPECT_EQ(spec.tmpl.select(NodeFilter::of_type("Sink")).size(), 2u);
  // Junction conveyor edges carry the higher cost.
  EXPECT_EQ(spec.edge_costs.size(), 6u);
  for (const auto& o : spec.edge_costs) EXPECT_EQ(o.cost, 1000.0);

  std::unique_ptr<Problem> p = instantiate(spec, std::move(lib));
  // Line-B machines admit only B or AB implementations.
  const NodeId m1b1 = p->arch_template().find("M1B1");
  ASSERT_GE(m1b1, 0);
  for (const auto& c : p->mapping().candidates(m1b1)) {
    const std::string& sub = p->library().at(c.lib).subtype;
    EXPECT_TRUE(sub == "B" || sub == "AB") << sub;
  }
  // Operation modes created the four flow matrices Lambda^{mode,product}.
  EXPECT_NE(p->find_flow("O1:A"), nullptr);
  EXPECT_NE(p->find_flow("O1:B"), nullptr);
  EXPECT_NE(p->find_flow("O2:A"), nullptr);
  EXPECT_NE(p->find_flow("O2:B"), nullptr);
}

TEST_F(ShippedSpecs, EpnLibraryMatchesProgrammaticLibrary) {
  const std::string lib_path = locate("epn.lib");
  if (lib_path.empty()) GTEST_SKIP() << "data files not found";
  const Library from_file = load_library_file(lib_path);
  const Library built = domains::epn::make_library();
  // Same component names with matching costs and types.
  for (const Component& c : built.components()) {
    const auto idx = from_file.find(c.name);
    ASSERT_TRUE(idx.has_value()) << c.name;
    const Component& other = from_file.at(*idx);
    EXPECT_EQ(other.type, c.type) << c.name;
    EXPECT_EQ(other.subtype, c.subtype) << c.name;
    EXPECT_DOUBLE_EQ(other.cost(), c.cost()) << c.name;
  }
}

}  // namespace
}  // namespace archex
