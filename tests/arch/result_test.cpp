#include "arch/result.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace archex {
namespace {

Architecture sample() {
  Architecture a;
  a.nodes = {
      {"G1", "Gen", "HV", {"LE"}, true, 0, "GenHV"},
      {"B1", "Bus", "LV", {}, true, 1, "BusLV"},
      {"B2", "Bus", "", {}, false, -1, ""},
      {"L1", "Load", "", {"critical"}, true, 2, "LoadX"},
  };
  a.edges = {{0, 1}, {1, 3}};
  a.cost = 42.0;
  a.flows["power"] = {{0, 1, 3.5}, {1, 3, 3.5}};
  return a;
}

TEST(ArchitectureTest, UsedNodeQueries) {
  const Architecture a = sample();
  EXPECT_EQ(a.num_used_nodes(), 3u);
  EXPECT_EQ(a.used_nodes().size(), 3u);
  EXPECT_EQ(a.used_nodes(NodeFilter::of_type("Bus")).size(), 1u);
  EXPECT_EQ(a.used_nodes({"Load", "", "critical"}).size(), 1u);
  EXPECT_EQ(a.used_nodes({"Load", "", "sheddable"}).size(), 0u);
}

TEST(ArchitectureTest, EdgesAndDigraph) {
  const Architecture a = sample();
  EXPECT_TRUE(a.has_edge(0, 1));
  EXPECT_FALSE(a.has_edge(1, 0));
  const graph::Digraph g = a.to_digraph();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(graph::reaches(g, {0}, 3));
}

TEST(ArchitectureTest, NodeFailProbs) {
  Library lib;
  lib.add({"GenHV", "Gen", "HV", {}, {{attr::kFailProb, 0.25}}});
  lib.add({"BusLV", "Bus", "LV", {}, {{attr::kFailProb, 0.5}}});
  lib.add({"LoadX", "Load", "", {}, {}});
  const Architecture a = sample();
  const std::vector<double> p = a.node_fail_probs(lib);
  EXPECT_EQ(p[0], 0.25);
  EXPECT_EQ(p[1], 0.5);
  EXPECT_EQ(p[2], 0.0);  // unused
  EXPECT_EQ(p[3], 0.0);  // load: no failprob attribute
}

TEST(ArchitectureTest, InFlowSums) {
  const Architecture a = sample();
  EXPECT_DOUBLE_EQ(a.in_flow("power", 1), 3.5);
  EXPECT_DOUBLE_EQ(a.in_flow("power", 3), 3.5);
  EXPECT_DOUBLE_EQ(a.in_flow("power", 0), 0.0);
  EXPECT_DOUBLE_EQ(a.in_flow("missing", 1), 0.0);
}

TEST(ArchitectureTest, DotOutput) {
  const Architecture a = sample();
  const std::string dot = a.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"G1\" -> \"B1\""), std::string::npos);
  // Unused nodes are not rendered.
  EXPECT_EQ(dot.find("\"B2\""), std::string::npos);
  // Subtype coloring.
  EXPECT_NE(dot.find("palegreen"), std::string::npos);  // HV
  EXPECT_NE(dot.find("khaki"), std::string::npos);      // LV
}

TEST(ArchitectureTest, JsonOutput) {
  const Architecture a = sample();
  const std::string js = a.to_json();
  EXPECT_NE(js.find("\"cost\": 42"), std::string::npos);
  EXPECT_NE(js.find("\"name\": \"G1\""), std::string::npos);
  EXPECT_NE(js.find("\"impl\": \"GenHV\""), std::string::npos);
  EXPECT_EQ(js.find("B2"), std::string::npos);  // unused node omitted
  EXPECT_NE(js.find("[\"G1\", \"B1\"]"), std::string::npos);
  EXPECT_NE(js.find("\"power\": [[\"G1\", \"B1\", 3.5]"), std::string::npos);
}

TEST(ArchitectureTest, PrintSummary) {
  const Architecture a = sample();
  std::ostringstream os;
  a.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("3/4 nodes"), std::string::npos);
  EXPECT_NE(text.find("cost 42"), std::string::npos);
  EXPECT_NE(text.find("G1->B1"), std::string::npos);
  EXPECT_NE(text.find("flow[power]"), std::string::npos);
}

}  // namespace
}  // namespace archex
