/// Tests of the generic iterative-scheme infrastructure (solve -> analyze ->
/// learn). The domain here is deliberately *not* reliability: the analysis
/// callback enforces a longest-path latency requirement exactly, showing the
/// Sec. 3 claim that the analysis/learning interfaces are domain-pluggable.
#include <gtest/gtest.h>

#include "arch/algorithm.hpp"
#include "arch/patterns/connection.hpp"
#include "arch/patterns/general.hpp"
#include "graph/digraph.hpp"

namespace archex {
namespace {

using patterns::CountSide;
using patterns::NConnections;
using patterns::SinksConnectedToSources;

struct LatencyNet {
  Library lib;
  ArchTemplate tmpl;

  LatencyNet() {
    lib.set_edge_cost(1.0);
    lib.add({"SrcX", "Src", "", {}, {{attr::kCost, 5}, {attr::kDelay, 1}}});
    lib.add({"MidSlow", "Mid", "slow", {}, {{attr::kCost, 2}, {attr::kDelay, 6}}});
    lib.add({"MidQuick", "Mid", "fast", {}, {{attr::kCost, 9}, {attr::kDelay, 1}}});
    lib.add({"SnkX", "Snk", "", {}, {{attr::kCost, 0}, {attr::kDelay, 0}}});
    tmpl.add_node({"S", "Src", "", {}, {}});
    tmpl.add_nodes(2, "M", "Mid");
    tmpl.add_node({"T", "Snk", "", {}, {}});
    tmpl.allow_connection(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"));
    tmpl.allow_connection(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"));
  }
};

/// Exact longest source->sink delay of a concrete architecture.
double measured_latency(const Problem& p, const Architecture& arch) {
  const graph::Digraph g = arch.to_digraph();
  std::vector<double> tau(g.num_nodes(), 0.0);
  for (std::size_t j = 0; j < g.num_nodes(); ++j) {
    if (arch.nodes[j].used && arch.nodes[j].impl >= 0) {
      tau[j] = p.library().at(arch.nodes[j].impl).attr_or(attr::kDelay);
    }
  }
  return graph::longest_path_weight(g, p.arch_template().select(NodeFilter::of_type("Src")),
                                    p.arch_template().find("T"), tau);
}

TEST(IterativeSchemeTest, LatencyLazyLoopConverges) {
  LatencyNet net;
  Problem p(net.lib, net.tmpl);
  p.set_functional_flow({"Src", "Mid", "Snk"});
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));

  const double bound = 2.5;  // cheapest chain uses the slow mid: 1+6 = 7 > 2.5
  int learn_calls = 0;

  const AnalysisFn analyze = [&](Problem& prob, const Architecture& arch) {
    AnalysisVerdict v;
    const double latency = measured_latency(prob, arch);
    v.accepted = latency <= bound;
    v.metrics["latency"] = latency;
    return v;
  };
  // Learning: forbid mapping any *used* mid to the slow implementation by
  // upper-bounding the slow mapping binaries (a crude but valid conflict).
  const LearnFn learn = [&](Problem& prob, const Architecture& arch) {
    ++learn_calls;
    bool acted = false;
    for (NodeId m : arch.used_nodes(NodeFilter::of_type("Mid"))) {
      for (const LibraryMapping::Candidate& c : prob.mapping().candidates(m)) {
        if (prob.library().at(c.lib).subtype == "slow") {
          prob.model().tighten_bounds(c.var, 0.0, 0.0);
          acted = true;
        }
      }
    }
    return acted;
  };

  IterativeResult res = solve_iteratively(p, analyze, learn);
  ASSERT_TRUE(res.converged);
  EXPECT_GE(res.steps.size(), 2u);
  EXPECT_GE(learn_calls, 1);
  EXPECT_LE(measured_latency(p, res.final_result.architecture), bound);
  // The trace recorded the violated metric of the first candidate.
  EXPECT_GT(res.steps.front().metrics.at("latency"), bound);
}

TEST(IterativeSchemeTest, StopsWhenLearningExhausted) {
  LatencyNet net;
  Problem p(net.lib, net.tmpl);
  p.set_functional_flow({"Src", "Mid", "Snk"});
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));

  const AnalysisFn never = [](Problem&, const Architecture&) { return AnalysisVerdict{}; };
  const LearnFn cannot = [](Problem&, const Architecture&) { return false; };
  IterativeResult res = solve_iteratively(p, never, cannot);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.steps.size(), 1u);
  EXPECT_TRUE(res.final_result.feasible());  // last candidate still reported
}

TEST(IterativeSchemeTest, RespectsIterationBudget) {
  LatencyNet net;
  Problem p(net.lib, net.tmpl);
  p.set_functional_flow({"Src", "Mid", "Snk"});
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));

  const AnalysisFn never = [](Problem&, const Architecture&) { return AnalysisVerdict{}; };
  // Learning that always "succeeds" but adds only redundant constraints.
  const LearnFn noop_learn = [](Problem& prob, const Architecture&) {
    prob.model().add_constraint(milp::LinExpr(prob.instantiated(0)), milp::Sense::LE, 1.0);
    return true;
  };
  IterativeResult res = solve_iteratively(p, never, noop_learn, {}, 4);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.steps.size(), 4u);
}

}  // namespace
}  // namespace archex
