/// Tests of the generic iterative-scheme infrastructure (solve -> analyze ->
/// learn). The domain here is deliberately *not* reliability: the analysis
/// callback enforces a longest-path latency requirement exactly, showing the
/// Sec. 3 claim that the analysis/learning interfaces are domain-pluggable.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "arch/algorithm.hpp"
#include "arch/patterns/connection.hpp"
#include "arch/patterns/general.hpp"
#include "graph/digraph.hpp"

namespace archex {
namespace {

using patterns::CountSide;
using patterns::NConnections;
using patterns::SinksConnectedToSources;

struct LatencyNet {
  Library lib;
  ArchTemplate tmpl;

  LatencyNet() {
    lib.set_edge_cost(1.0);
    lib.add({"SrcX", "Src", "", {}, {{attr::kCost, 5}, {attr::kDelay, 1}}});
    lib.add({"MidSlow", "Mid", "slow", {}, {{attr::kCost, 2}, {attr::kDelay, 6}}});
    lib.add({"MidQuick", "Mid", "fast", {}, {{attr::kCost, 9}, {attr::kDelay, 1}}});
    lib.add({"SnkX", "Snk", "", {}, {{attr::kCost, 0}, {attr::kDelay, 0}}});
    tmpl.add_node({"S", "Src", "", {}, {}});
    tmpl.add_nodes(2, "M", "Mid");
    tmpl.add_node({"T", "Snk", "", {}, {}});
    tmpl.allow_connection(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"));
    tmpl.allow_connection(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"));
  }
};

/// Exact longest source->sink delay of a concrete architecture.
double measured_latency(const Problem& p, const Architecture& arch) {
  const graph::Digraph g = arch.to_digraph();
  std::vector<double> tau(g.num_nodes(), 0.0);
  for (std::size_t j = 0; j < g.num_nodes(); ++j) {
    if (arch.nodes[j].used && arch.nodes[j].impl >= 0) {
      tau[j] = p.library().at(arch.nodes[j].impl).attr_or(attr::kDelay);
    }
  }
  return graph::longest_path_weight(g, p.arch_template().select(NodeFilter::of_type("Src")),
                                    p.arch_template().find("T"), tau);
}

TEST(IterativeSchemeTest, LatencyLazyLoopConverges) {
  LatencyNet net;
  Problem p(net.lib, net.tmpl);
  p.set_functional_flow({"Src", "Mid", "Snk"});
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));

  const double bound = 2.5;  // cheapest chain uses the slow mid: 1+6 = 7 > 2.5
  int learn_calls = 0;

  const AnalysisFn analyze = [&](Problem& prob, const Architecture& arch) {
    AnalysisVerdict v;
    const double latency = measured_latency(prob, arch);
    v.accepted = latency <= bound;
    v.metrics["latency"] = latency;
    return v;
  };
  // Learning: forbid mapping any *used* mid to the slow implementation by
  // upper-bounding the slow mapping binaries (a crude but valid conflict).
  const LearnFn learn = [&](Problem& prob, const Architecture& arch) {
    ++learn_calls;
    bool acted = false;
    for (NodeId m : arch.used_nodes(NodeFilter::of_type("Mid"))) {
      for (const LibraryMapping::Candidate& c : prob.mapping().candidates(m)) {
        if (prob.library().at(c.lib).subtype == "slow") {
          prob.model().tighten_bounds(c.var, 0.0, 0.0);
          acted = true;
        }
      }
    }
    return acted;
  };

  IterativeResult res = solve_iteratively(p, analyze, learn);
  ASSERT_TRUE(res.converged);
  EXPECT_GE(res.steps.size(), 2u);
  EXPECT_GE(learn_calls, 1);
  EXPECT_LE(measured_latency(p, res.final_result.architecture), bound);
  // The trace recorded the violated metric of the first candidate.
  EXPECT_GT(res.steps.front().metrics.at("latency"), bound);
}

TEST(IterativeSchemeTest, StopsWhenLearningExhausted) {
  LatencyNet net;
  Problem p(net.lib, net.tmpl);
  p.set_functional_flow({"Src", "Mid", "Snk"});
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));

  const AnalysisFn never = [](Problem&, const Architecture&) { return AnalysisVerdict{}; };
  const LearnFn cannot = [](Problem&, const Architecture&) { return false; };
  IterativeResult res = solve_iteratively(p, never, cannot);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.steps.size(), 1u);
  EXPECT_TRUE(res.final_result.feasible());  // last candidate still reported
}

TEST(IterativeSchemeTest, RespectsIterationBudget) {
  LatencyNet net;
  Problem p(net.lib, net.tmpl);
  p.set_functional_flow({"Src", "Mid", "Snk"});
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));

  const AnalysisFn never = [](Problem&, const Architecture&) { return AnalysisVerdict{}; };
  // Learning that always "succeeds" but adds only redundant constraints.
  const LearnFn noop_learn = [](Problem& prob, const Architecture&) {
    prob.model().add_constraint(milp::LinExpr(prob.instantiated(0)), milp::Sense::LE, 1.0);
    return true;
  };
  IterativeResult res = solve_iteratively(p, never, noop_learn, {}, 4);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.steps.size(), 4u);
}

TEST(IterativeSchemeTest, TimeLimitIsOneBudgetAcrossIterations) {
  // Regression: `time_limit_s` used to restart at every re-solve, so a
  // learning loop with a 0.2 s limit could legally run all ten iterations
  // (each individually fast) and never time out. The limit is now converted
  // to one absolute deadline at entry; a learn step that burns the whole
  // budget must make the *next* solve come back TimeLimit and end the loop.
  LatencyNet net;
  Problem p(net.lib, net.tmpl);
  p.set_functional_flow({"Src", "Mid", "Snk"});
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));

  const AnalysisFn never = [](Problem&, const Architecture&) { return AnalysisVerdict{}; };
  const LearnFn slow_learn = [](Problem& prob, const Architecture&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(350));
    prob.model().add_constraint(milp::LinExpr(prob.instantiated(0)), milp::Sense::LE, 1.0);
    return true;
  };
  milp::MilpOptions opts;
  opts.time_limit_s = 0.2;  // spans solve + analyze + learn, end to end

  const auto t0 = std::chrono::steady_clock::now();
  IterativeResult res = solve_iteratively(p, never, slow_learn, opts, 10);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  EXPECT_FALSE(res.converged);
  // Iteration 1 solves (budget intact), learn overruns the deadline,
  // iteration 2's solve times out immediately — never ten fresh budgets.
  EXPECT_EQ(res.steps.size(), 2u);
  EXPECT_EQ(res.final_result.solution.status, milp::SolveStatus::TimeLimit);
  EXPECT_LT(secs, 2.0);
  // Anytime fallback: the budget-stopped re-solve had no incumbent of its
  // own, so the loop surfaces iteration 1's architecture (flagged degraded
  // by the TimeLimit status) instead of an empty result.
  ASSERT_TRUE(res.final_result.feasible());
  EXPECT_TRUE(res.final_result.degraded());
  EXPECT_EQ(res.final_result.solution.objective, res.steps.front().cost);
  EXPECT_EQ(res.final_result.architecture.cost, res.steps.front().architecture.cost);
}

TEST(IterativeSchemeTest, CallerDeadlineWinsOverRelativeLimit) {
  // A serve request's absolute deadline spans the whole request; when it is
  // tighter than the per-call limit it must win — here it is already
  // expired, so even iteration 1 returns TimeLimit without exploring.
  LatencyNet net;
  Problem p(net.lib, net.tmpl);
  p.set_functional_flow({"Src", "Mid", "Snk"});
  p.apply(SinksConnectedToSources(NodeFilter::of_type("Src"), NodeFilter::of_type("Snk")));

  const AnalysisFn never = [](Problem&, const Architecture&) { return AnalysisVerdict{}; };
  const LearnFn noop = [](Problem&, const Architecture&) { return false; };
  milp::MilpOptions opts;
  opts.time_limit_s = 3600.0;  // generous relative limit loses to...
  opts.deadline = std::chrono::steady_clock::now();  // ...an expired deadline

  IterativeResult res = solve_iteratively(p, never, noop, opts, 5);
  EXPECT_FALSE(res.converged);
  ASSERT_EQ(res.steps.size(), 1u);
  EXPECT_EQ(res.final_result.solution.status, milp::SolveStatus::TimeLimit);
  EXPECT_FALSE(res.final_result.feasible());
}

}  // namespace
}  // namespace archex
