/// Randomized end-to-end property suite: random libraries, random templates,
/// random pattern sets — every feasible result is checked *semantically*
/// against each applied pattern by independent (non-MILP) oracles on the
/// concrete architecture. This is the repo's strongest guard that the
/// pattern-to-MILP translation means what the pattern says.
#include <gtest/gtest.h>

#include <random>

#include "arch/patterns/connection.hpp"
#include "arch/patterns/flow.hpp"
#include "arch/patterns/general.hpp"
#include "arch/problem.hpp"
#include "graph/digraph.hpp"

namespace archex {
namespace {

using namespace patterns;

struct RandomWorld {
  Library lib;
  ArchTemplate tmpl;
  int num_src, num_mid, num_snk;

  explicit RandomWorld(std::mt19937& rng) {
    std::uniform_int_distribution<int> count(1, 3);
    std::uniform_real_distribution<double> cost(1.0, 20.0);
    std::uniform_int_distribution<int> impls(1, 3);

    lib.set_edge_cost(cost(rng) * 0.2);
    for (int i = 0, n = impls(rng); i < n; ++i) {
      lib.add({"SrcImpl" + std::to_string(i), "Src", "", {},
               {{attr::kCost, cost(rng)}, {attr::kDelay, 1.0}}});
    }
    for (int i = 0, n = impls(rng); i < n; ++i) {
      lib.add({"MidImpl" + std::to_string(i), "Mid", i % 2 ? "fast" : "slow", {},
               {{attr::kCost, cost(rng)}, {attr::kThroughput, 2.0 + 3 * i},
                {attr::kDelay, 1.0 + i}}});
    }
    lib.add({"SnkImpl", "Snk", "", {}, {{attr::kCost, 0.0}}});

    num_src = count(rng);
    num_mid = count(rng) + 1;
    num_snk = count(rng);
    tmpl.add_nodes(num_src, "S", "Src");
    tmpl.add_nodes(num_mid, "M", "Mid");
    tmpl.add_nodes(num_snk, "T", "Snk");
    tmpl.allow_connection(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"));
    tmpl.allow_connection(NodeFilter::of_type("Mid"), NodeFilter::of_type("Mid"));
    tmpl.allow_connection(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"));
  }
};

/// Semantic oracle for one pattern on a concrete architecture.
struct Oracle {
  std::shared_ptr<Pattern> pattern;
  std::function<bool(const Problem&, const Architecture&)> holds;
};

class RandomExploration : public ::testing::TestWithParam<int> {};

TEST_P(RandomExploration, FeasibleResultsSatisfyEveryAppliedPattern) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7717u + 19u);
  RandomWorld world(rng);
  Problem p(world.lib, world.tmpl);
  p.set_functional_flow({"Src", "Mid", "Snk"});

  const auto src = NodeFilter::of_type("Src");
  const auto mid = NodeFilter::of_type("Mid");
  const auto snk = NodeFilter::of_type("Snk");

  std::vector<Oracle> pool;
  pool.push_back(
      {std::make_shared<AtLeastNComponents>(mid, 1),
       [&](const Problem&, const Architecture& a) { return a.used_nodes(mid).size() >= 1; }});
  pool.push_back({std::make_shared<NConnections>(mid, snk, 1, milp::Sense::EQ, false,
                                                 CountSide::kTo),
                  [&](const Problem& prob, const Architecture& a) {
                    const graph::Digraph g = a.to_digraph();
                    for (NodeId t : prob.arch_template().select(snk)) {
                      std::size_t in = 0;
                      for (std::int32_t u : g.predecessors(t)) {
                        if (mid.matches(prob.arch_template().node(u))) ++in;
                      }
                      if (in != 1) return false;
                    }
                    return true;
                  }});
  pool.push_back({std::make_shared<NConnections>(src, mid, 2, milp::Sense::LE, false,
                                                 CountSide::kFrom),
                  [&](const Problem& prob, const Architecture& a) {
                    const graph::Digraph g = a.to_digraph();
                    for (NodeId s : prob.arch_template().select(src)) {
                      std::size_t out = 0;
                      for (std::int32_t v : g.successors(s)) {
                        if (mid.matches(prob.arch_template().node(v))) ++out;
                      }
                      if (out > 2) return false;
                    }
                    return true;
                  }});
  pool.push_back({std::make_shared<NConnections>(src, mid, 1, milp::Sense::GE, true,
                                                 CountSide::kTo),
                  [&](const Problem& prob, const Architecture& a) {
                    const graph::Digraph g = a.to_digraph();
                    for (NodeId m : a.used_nodes(mid)) {
                      bool fed = false;
                      for (std::int32_t u : g.predecessors(m)) {
                        if (src.matches(prob.arch_template().node(u))) fed = true;
                      }
                      if (!fed) return false;
                    }
                    return true;
                  }});
  pool.push_back({std::make_shared<CannotConnect>(NodeFilter{"Mid", "slow", ""},
                                                  NodeFilter{"Mid", "fast", ""}),
                  [&](const Problem& prob, const Architecture& a) {
                    for (const auto& [u, v] : a.edges) {
                      const auto& nu = a.nodes[static_cast<std::size_t>(u)];
                      const auto& nv = a.nodes[static_cast<std::size_t>(v)];
                      if (nu.impl < 0 || nv.impl < 0) continue;
                      if (prob.library().at(nu.impl).subtype == "slow" &&
                          prob.library().at(nv.impl).subtype == "fast" &&
                          nu.type == "Mid" && nv.type == "Mid") {
                        return false;
                      }
                    }
                    return true;
                  }});
  pool.push_back({std::make_shared<SinksConnectedToSources>(src, snk),
                  [&](const Problem& prob, const Architecture& a) {
                    const graph::Digraph g = a.to_digraph();
                    const auto sources = prob.arch_template().select(src);
                    for (NodeId t : prob.arch_template().select(snk)) {
                      if (!graph::reaches(g, sources, t)) return false;
                    }
                    return true;
                  }});

  // Apply a random subset (always include the sink-connection pattern so
  // the instance is not trivially empty).
  std::vector<Oracle> applied;
  applied.push_back(pool[1]);
  std::uniform_int_distribution<int> coin(0, 1);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (i != 1 && coin(rng)) applied.push_back(pool[i]);
  }
  for (const Oracle& o : applied) p.apply(*o.pattern);
  p.add_symmetry_breaking();

  milp::MilpOptions opts;
  opts.time_limit_s = 20;
  ExplorationResult res = p.solve(opts);
  if (!res.feasible()) return;  // infeasible random combos are fine

  for (const Oracle& o : applied) {
    EXPECT_TRUE(o.holds(p, res.architecture))
        << "seed " << GetParam() << " violates " << o.pattern->describe();
  }
  // Global sanity: model-level feasibility of the chosen assignment.
  EXPECT_TRUE(p.model().feasible(res.solution.x, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExploration, ::testing::Range(0, 30));

}  // namespace
}  // namespace archex
