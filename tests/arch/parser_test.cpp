#include "arch/parser.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace archex {
namespace {

TEST(ParsePatternCallTest, NameAndMixedArgs) {
  auto [name, args] = parse_pattern_call("at_least_n_connections(Gen, Bus/HV, 2)");
  EXPECT_EQ(name, "at_least_n_connections");
  ASSERT_EQ(args.size(), 3u);
  EXPECT_EQ(std::get<std::string>(args[0]), "Gen");
  EXPECT_EQ(std::get<std::string>(args[1]), "Bus/HV");
  EXPECT_EQ(std::get<double>(args[2]), 2.0);
}

TEST(ParsePatternCallTest, NoArguments) {
  auto [name, args] = parse_pattern_call("foo()");
  EXPECT_EQ(name, "foo");
  EXPECT_TRUE(args.empty());
}

TEST(ParsePatternCallTest, ScientificNumbers) {
  auto [name, args] = parse_pattern_call("max_failprob_of_connection(G, L, 1e-9)");
  EXPECT_EQ(std::get<double>(args[2]), 1e-9);
}

TEST(ParsePatternCallTest, RejectsMalformed) {
  EXPECT_THROW((void)parse_pattern_call("no_parens"), std::invalid_argument);
  EXPECT_THROW((void)parse_pattern_call("missing(paren"), std::invalid_argument);
}

TEST(LibraryLoaderTest, ParsesComponentsAndEdgeCost) {
  std::istringstream in(R"(
# comment line
edge_cost 150

component GenHV type=Gen subtype=HV cost=6 power=60 failprob=2e-4
component Bus1  type=Bus tags=LE,spare cost=2000
)");
  Library lib = load_library(in);
  EXPECT_EQ(lib.edge_cost(), 150.0);
  ASSERT_EQ(lib.size(), 2u);
  const Component& g = lib.at(*lib.find("GenHV"));
  EXPECT_EQ(g.type, "Gen");
  EXPECT_EQ(g.subtype, "HV");
  EXPECT_EQ(g.attr_or("power"), 60.0);
  EXPECT_EQ(g.attr_or("failprob"), 2e-4);
  const Component& b = lib.at(*lib.find("Bus1"));
  EXPECT_TRUE(b.has_tag("LE"));
  EXPECT_TRUE(b.has_tag("spare"));
}

TEST(LibraryLoaderTest, ErrorsCarryLineNumbers) {
  std::istringstream in("component X type=T\nbogus_directive 1\n");
  try {
    (void)load_library(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(LibraryLoaderTest, RejectsNonNumericAttr) {
  std::istringstream in("component X type=T cost=abc\n");
  EXPECT_THROW((void)load_library(in), ParseError);
}

TEST(LibraryLoaderTest, RejectsMissingType) {
  std::istringstream in("component X cost=1\n");
  EXPECT_THROW((void)load_library(in), ParseError);
}

TEST(ProblemSpecLoaderTest, FullSpecRoundTrip) {
  std::istringstream in(R"(
functional_flow Gen,Bus,Load

node  G1 type=Gen subtype=HV tags=LE
nodes B 2 type=Bus
node  L1 type=Load impl=LoadSmall

allow Gen -> Bus
allow Bus -> Load

pattern exactly_n_connections(Bus, Load, 1, per_to)
pattern at_most_n_connections(Gen, Bus, 2)
)");
  ProblemSpec spec = load_problem_spec(in);
  EXPECT_EQ(spec.functional_flow, (std::vector<std::string>{"Gen", "Bus", "Load"}));
  EXPECT_EQ(spec.tmpl.num_nodes(), 4u);
  EXPECT_EQ(spec.tmpl.node(spec.tmpl.find("L1")).impl, "LoadSmall");
  EXPECT_EQ(spec.tmpl.candidate_edges().size(), 2u + 2u);
  ASSERT_EQ(spec.patterns.size(), 2u);
  EXPECT_EQ(spec.patterns[0].first, "exactly_n_connections");
  EXPECT_EQ(spec.spec_lines, 8);
}

TEST(ProblemSpecLoaderTest, InstantiateAppliesPatterns) {
  std::istringstream libin(R"(
edge_cost 1
component GenX  type=Gen cost=10
component BusX  type=Bus cost=5
component LoadS type=Load cost=0 power=3
)");
  Library lib = load_library(libin);

  std::istringstream spec_in(R"(
functional_flow Gen,Bus,Load
node G1 type=Gen
nodes B 2 type=Bus
node L1 type=Load impl=LoadS
allow Gen -> Bus
allow Bus -> Load
pattern exactly_n_connections(Bus, Load, 1, per_to)
pattern at_least_n_connections(Gen, Bus, 1, if_used, per_to)
)");
  ProblemSpec spec = load_problem_spec(spec_in);
  std::unique_ptr<Problem> p = instantiate(spec, lib);
  EXPECT_EQ(p->num_patterns_applied(), 2u);
  ExplorationResult res = p->solve();
  ASSERT_TRUE(res.feasible());
  // L1 connected to exactly one bus, bus fed by the generator.
  EXPECT_EQ(res.architecture.num_used_nodes(), 3u);
  EXPECT_NEAR(res.architecture.cost, 10 + 5 + 0 + 2, 1e-6);
}

TEST(ProblemSpecLoaderTest, UnknownDirectiveErrors) {
  std::istringstream in("frobnicate yes\n");
  EXPECT_THROW((void)load_problem_spec(in), ParseError);
}

TEST(ProblemSpecLoaderTest, AllowRequiresArrow) {
  std::istringstream in("allow Gen Bus\n");
  EXPECT_THROW((void)load_problem_spec(in), ParseError);
}

TEST(ProblemSpecLoaderTest, NodesCountValidation) {
  std::istringstream in("nodes B zero type=Bus\n");
  EXPECT_THROW((void)load_problem_spec(in), ParseError);
}

TEST(ProblemSpecLoaderTest, UnknownPatternSurfacesAtInstantiate) {
  std::istringstream in("node G1 type=Gen\npattern unknown_pattern(G, 1)\n");
  ProblemSpec spec = load_problem_spec(in);
  Library lib;
  lib.add({"GenX", "Gen", "", {}, {}});
  EXPECT_THROW((void)instantiate(spec, lib), std::invalid_argument);
}

TEST(ProblemSpecLoaderTest, SpecLineCountExcludesCommentsAndBlanks) {
  std::istringstream in("# only comments\n\n   \n# more\nnode G1 type=Gen\n");
  ProblemSpec spec = load_problem_spec(in);
  EXPECT_EQ(spec.spec_lines, 1);
}

}  // namespace
}  // namespace archex
