#include "arch/problem.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "arch/patterns/connection.hpp"
#include "milp/branch_bound.hpp"

namespace archex {
namespace {

using patterns::CountSide;
using patterns::NConnections;

/// Tiny Src -> Mid -> Snk fixture shared by the structural tests.
struct ChainFixture {
  Library lib;
  ArchTemplate tmpl;

  ChainFixture() {
    lib.set_edge_cost(1.0);
    lib.add({"Src1", "Src", "", {}, {{attr::kCost, 10}}});
    lib.add({"MidCheap", "Mid", "slow", {}, {{attr::kCost, 5}, {attr::kThroughput, 4}, {attr::kDelay, 2}}});
    lib.add({"MidFast", "Mid", "fast", {}, {{attr::kCost, 9}, {attr::kThroughput, 10}, {attr::kDelay, 1}}});
    lib.add({"Snk1", "Snk", "", {}, {{attr::kCost, 0}}});

    tmpl.add_node({"S", "Src", "", {}, {}});
    tmpl.add_nodes(2, "M", "Mid");
    tmpl.add_node({"T", "Snk", "", {}, {}});
    tmpl.allow_connection(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"));
    tmpl.allow_connection(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"));
  }

  [[nodiscard]] Problem make() const { return Problem(lib, tmpl); }
};

TEST(ProblemTest, CreatesDecisionVariables) {
  ChainFixture fx;
  Problem p = fx.make();
  // 4 candidate edges + mapping (S:1, M1:2, M2:2, T:1) + 4 deltas.
  EXPECT_EQ(p.edges().num_edges(), 4u);
  EXPECT_EQ(p.mapping().candidates(1).size(), 2u);
  EXPECT_TRUE(p.instantiated(0).valid());
  EXPECT_GE(p.model().num_vars(), 4u + 6u + 4u);
}

TEST(ProblemTest, UnusedArchitectureIsFeasibleAndFree) {
  ChainFixture fx;
  Problem p = fx.make();
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  EXPECT_EQ(res.architecture.num_used_nodes(), 0u);
  EXPECT_NEAR(res.architecture.cost, 0.0, 1e-9);
}

TEST(ProblemTest, InstantiationTracksEdges) {
  ChainFixture fx;
  Problem p = fx.make();
  // Force the sink connected: T needs one incoming edge.
  p.apply(NConnections(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"), 1,
                       milp::Sense::EQ, false, CountSide::kTo));
  // And a connected Mid must have an input from Src.
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 1,
                       milp::Sense::GE, true, CountSide::kTo));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  const Architecture& a = res.architecture;
  // Chain instantiated: S, one Mid, T used; used nodes have implementations.
  EXPECT_EQ(a.num_used_nodes(), 3u);
  for (const auto& n : a.nodes) {
    if (n.used) {
      EXPECT_GE(n.impl, 0);
      EXPECT_FALSE(n.impl_name.empty());
    } else {
      EXPECT_EQ(n.impl, -1);
    }
  }
  // Cost = Src 10 + cheapest Mid 5 + Snk 0 + 2 edges = 17.
  EXPECT_NEAR(a.cost, 17.0, 1e-6);
}

TEST(ProblemTest, MappingRespectsSubtypeRestriction) {
  ChainFixture fx;
  ArchTemplate t2 = fx.tmpl;
  // A new mid restricted to the fast implementation only.
  t2.add_node({"MF", "Mid", "fast", {}, {}});
  t2.allow_edge(t2.find("S"), t2.find("MF"));
  t2.allow_edge(t2.find("MF"), t2.find("T"));
  Problem p(fx.lib, t2);
  EXPECT_EQ(p.mapping().candidates(t2.find("MF")).size(), 1u);
  EXPECT_EQ(p.library().at(p.mapping().candidates(t2.find("MF"))[0].lib).name, "MidFast");
}

TEST(ProblemTest, FixedImplPinsMapping) {
  ChainFixture fx;
  ArchTemplate t2 = fx.tmpl;
  NodeSpec pinned{"MP", "Mid", "", {}, "MidCheap"};
  t2.add_node(std::move(pinned));
  Problem p(fx.lib, t2);
  const auto& cands = p.mapping().candidates(t2.find("MP"));
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(p.library().at(cands[0].lib).name, "MidCheap");
}

TEST(ProblemTest, NodeAttrExpressionUsesMapping) {
  ChainFixture fx;
  Problem p = fx.make();
  const milp::LinExpr mu = p.node_attr(1, attr::kThroughput);
  // Two candidates with throughputs 4 and 10.
  EXPECT_EQ(mu.size(), 2u);
  double sum = 0;
  for (const auto& term : mu.terms()) sum += term.coef;
  EXPECT_EQ(sum, 14.0);
}

TEST(ProblemTest, SubtypeIndicator) {
  ChainFixture fx;
  Problem p = fx.make();
  EXPECT_EQ(p.subtype_indicator(1, "fast").size(), 1u);
  EXPECT_EQ(p.subtype_indicator(1, "nope").size(), 0u);
}

TEST(ProblemTest, EdgeCostOverride) {
  ChainFixture fx;
  Problem p = fx.make();
  p.set_edge_cost(0, 1, 50.0);  // S -> M1
  EXPECT_THROW(p.set_edge_cost(3, 0, 1.0), std::invalid_argument);  // not a candidate
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 2,
                       milp::Sense::EQ, false, CountSide::kFrom));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  // Both S->M edges used: 50 + 1 (plus Src 10) plus deltas of mids (5+5).
  EXPECT_NEAR(res.architecture.cost, 50 + 1 + 10 + 5 + 5, 1e-6);
}

TEST(ProblemTest, ExtraCostTermWeighted) {
  ChainFixture fx;
  Problem p = fx.make();
  // Penalize using M2 heavily; force exactly one Src->Mid edge.
  p.add_cost_term(milp::LinExpr(p.instantiated(2)), 1000.0);
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 1,
                       milp::Sense::EQ, false, CountSide::kFrom));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  EXPECT_TRUE(res.architecture.nodes[1].used);
  EXPECT_FALSE(res.architecture.nodes[2].used);
}

TEST(ProblemTest, AppliedPatternsAreRecorded) {
  ChainFixture fx;
  Problem p = fx.make();
  EXPECT_EQ(p.num_patterns_applied(), 0u);
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 1,
                       milp::Sense::GE));
  EXPECT_EQ(p.num_patterns_applied(), 1u);
  EXPECT_NE(p.applied_patterns()[0].find("at_least_n_connections"), std::string::npos);
}

TEST(ProblemTest, FlowCommodityCreatesCoupledVars) {
  ChainFixture fx;
  Problem p = fx.make();
  const std::size_t rows_before = p.model().num_constraints();
  FlowCommodity& f = p.flow("power", 8.0);
  EXPECT_EQ(f.edge_vars.size(), p.edges().num_edges());
  // One coupling row per edge.
  EXPECT_EQ(p.model().num_constraints(), rows_before + p.edges().num_edges());
  // Same name returns the same commodity, no new rows.
  FlowCommodity& again = p.flow("power", 99.0);
  EXPECT_EQ(&f, &again);
  EXPECT_EQ(f.capacity, 8.0);
}

TEST(ProblemTest, SymmetryBreakingOrdersInterchangeableNodes) {
  ChainFixture fx;
  Problem p = fx.make();
  const std::size_t pairs = p.add_symmetry_breaking();
  EXPECT_EQ(pairs, 1u);  // M1 >= M2
  // With symmetry broken, an architecture using only M2 is excluded, but one
  // using only M1 is still available at identical cost.
  p.apply(NConnections(NodeFilter::of_type("Mid"), NodeFilter::of_type("Snk"), 1,
                       milp::Sense::EQ, false, CountSide::kTo));
  p.apply(NConnections(NodeFilter::of_type("Src"), NodeFilter::of_type("Mid"), 1,
                       milp::Sense::GE, true, CountSide::kTo));
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  EXPECT_TRUE(res.architecture.nodes[1].used);   // M1
  EXPECT_FALSE(res.architecture.nodes[2].used);  // M2
  EXPECT_NEAR(res.architecture.cost, 17.0, 1e-6);
}

TEST(ProblemTest, ExtractReportsActiveFlows) {
  ChainFixture fx;
  Problem p = fx.make();
  FlowCommodity& f = p.flow("power", 8.0);
  // Demand one unit at the sink, supplied by the source.
  milp::LinExpr demand = p.flow_in(f, 3);
  p.model().add_constraint(std::move(demand), milp::Sense::GE, 1.0, "demand");
  milp::LinExpr bal1 = p.flow_in(f, 1) - p.flow_out(f, 1);
  p.model().add_constraint(std::move(bal1), milp::Sense::EQ, 0.0);
  milp::LinExpr bal2 = p.flow_in(f, 2) - p.flow_out(f, 2);
  p.model().add_constraint(std::move(bal2), milp::Sense::EQ, 0.0);
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  ASSERT_EQ(res.architecture.flows.count("power"), 1u);
  double into_sink = res.architecture.in_flow("power", 3);
  EXPECT_NEAR(into_sink, 1.0, 1e-6);
}

TEST(ProblemTest, CostExpressionMatchesDefinition) {
  ChainFixture fx;
  Problem p = fx.make();
  const milp::LinExpr cost = p.cost_expression();
  // Every mapping var and every edge var carries a cost coefficient (loads
  // with zero cost drop out of the normalized expression).
  EXPECT_GE(cost.size(), 4u);
}

TEST(ProblemTest, SolveReportsTimingAndMetrics) {
  ChainFixture fx;
  Problem p = fx.make();
  ExplorationResult res = p.solve();
  ASSERT_TRUE(res.feasible());
  // End-to-end phase breakdown: encode happened in the constructor, the
  // remaining phases in solve(); every stage reports a non-negative wall time.
  EXPECT_GE(res.encode_seconds, 0.0);
  EXPECT_GE(res.formulation_seconds, 0.0);
  EXPECT_GT(res.solver_seconds, 0.0);
  EXPECT_GE(res.extract_seconds, 0.0);
  // The Problem's registry spans encode + formulate + solve + extract and is
  // re-snapshotted into the solution after extraction.
  ASSERT_FALSE(res.solution.metrics.empty());
  EXPECT_GT(res.solution.metrics.at("arch.encode.seconds"), 0.0);
  EXPECT_DOUBLE_EQ(res.solution.metrics.at("arch.solve.count"), 1.0);
  EXPECT_EQ(res.solution.metrics.count("milp.nodes"), 1u);
  std::ostringstream os;
  res.print_timing(os);
  EXPECT_NE(os.str().find("timing:"), std::string::npos);
  EXPECT_NE(os.str().find("solver phases:"), std::string::npos);
}

}  // namespace
}  // namespace archex
