#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "arch/compiled_model.hpp"
#include "arch/problem.hpp"
#include "domains/epn.hpp"
#include "milp/budget.hpp"

namespace archex {
namespace {

using domains::epn::EpnConfig;
using domains::epn::make_problem;
using domains::epn::tiny_config;

/// The sweeps need the eager (monolithic) reliability encoding: the compiled
/// artifact is the frozen matrix, so there is no lazy refinement loop.
EpnConfig eager_tiny() {
  EpnConfig cfg = tiny_config();
  cfg.reliability_eager = true;
  return cfg;
}

milp::MilpOptions test_options() {
  milp::MilpOptions opts;
  opts.num_threads = 1;
  opts.budget = milp::Budget::of_seconds(120.0);
  return opts;
}

/// The i-th member of the cost-perturbation family used throughout: pure
/// objective deltas (the warm-start case).
Scenario perturbation(const CompiledModel& cm, int i) {
  Scenario sc;
  sc.name = "perturb-" + std::to_string(i);
  sc.edge_cost_scale = 1.0 + 0.02 * i;
  sc.component_cost_scale[cm.library().at(0).name] = 1.0 + 0.05 * i;
  return sc;
}

TEST(CompiledModelTest, FingerprintIsStableAcrossCompiles) {
  auto p1 = make_problem(eager_tiny());
  auto p2 = make_problem(eager_tiny());
  const CompiledModel a = compile(*p1);
  const CompiledModel b = compile(*p2);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_GT(a.fingerprint(), 0u);
}

TEST(CompiledModelTest, FingerprintSeparatesDifferentSpecs) {
  auto p1 = make_problem(eager_tiny());
  EpnConfig other = eager_tiny();
  other.loads_per_side += 1;
  auto p2 = make_problem(other);
  EXPECT_NE(compile(*p1).fingerprint(), compile(*p2).fingerprint());
}

TEST(CompiledModelTest, InstantiateRejectsUnknownNames) {
  auto p = make_problem(eager_tiny());
  const CompiledModel cm = compile(*p);
  Scenario bad_component;
  bad_component.component_cost_scale["NoSuchComponent"] = 2.0;
  EXPECT_THROW(cm.instantiate(bad_component), std::invalid_argument);
  Scenario bad_unavailable;
  bad_unavailable.unavailable.push_back("NoSuchComponent");
  EXPECT_THROW(cm.instantiate(bad_unavailable), std::invalid_argument);
  Scenario bad_rhs;
  bad_rhs.rhs["no-such-row"] = 1.0;
  EXPECT_THROW(cm.instantiate(bad_rhs), std::invalid_argument);
}

TEST(CompiledModelTest, CompiledSolveMatchesClassicSolve) {
  auto p = make_problem(eager_tiny());
  const CompiledModel cm = compile(*p);
  const milp::MilpOptions opts = test_options();
  const ExplorationResult classic = make_problem(eager_tiny())->solve(opts);
  const ExplorationResult compiled = archex::solve(cm, Scenario{}, opts);
  ASSERT_TRUE(classic.feasible());
  ASSERT_TRUE(compiled.feasible());
  EXPECT_NEAR(classic.solution.objective, compiled.solution.objective,
              1e-6 * std::abs(classic.solution.objective));
}

/// The satellite-4 sweep drill: a 20-scenario EPN cost-perturbation family
/// re-solved warm against one compiled artifact must reproduce, scenario by
/// scenario, the objective of a fresh encode + cold solve (certifier
/// tolerance: 1e-6 relative, check/certify.hpp). One structural scenario
/// (extra constraint row) lands mid-sweep and must fall back to a cold
/// solve without contaminating the warm chain around it.
TEST(CompiledSweepTest, WarmSweepObjectivesMatchColdSolves) {
  constexpr int kScenarios = 20;
  constexpr int kStructuralAt = 10;
  auto p = make_problem(eager_tiny());
  const CompiledModel cm = compile(*p);
  const milp::MilpOptions opts = test_options();

  auto scenario_at = [&](int i) {
    Scenario sc = perturbation(cm, i);
    if (i == kStructuralAt) {
      // Structural delta: an extra (loose, but real) row over the first
      // column changes the basis dimensions.
      sc.extra_constraints.emplace_back(milp::LinExpr(milp::VarId{.index = 0}),
                                        milp::Sense::LE, 1.0, "extra-row");
      sc.name += "-structural";
    }
    return sc;
  };

  SweepState sweep;
  std::vector<double> warm_obj(kScenarios);
  std::vector<bool> warm_started(kScenarios);
  for (int i = 0; i < kScenarios; ++i) {
    const ExplorationResult res = archex::solve(cm, scenario_at(i), opts, &sweep);
    ASSERT_TRUE(res.feasible()) << "warm scenario " << i;
    ASSERT_EQ(res.solution.status, milp::SolveStatus::Optimal) << "scenario " << i;
    warm_obj[static_cast<std::size_t>(i)] = res.solution.objective;
    warm_started[static_cast<std::size_t>(i)] = res.solution.warm_started;
  }
  // The first solve of the sweep has no basis to start from and the
  // structural scenario must not warm-start; everything else should.
  EXPECT_FALSE(warm_started[0]);
  EXPECT_FALSE(warm_started[kStructuralAt]);
  EXPECT_GT(sweep.warm_solves, 0);
  EXPECT_GE(sweep.cold_solves, 2);

  for (int i = 0; i < kScenarios; ++i) {
    // Fresh encode + compile + cold solve per scenario: the naive path the
    // sweep replaces. Objectives must agree to certifier tolerance.
    auto fresh = make_problem(eager_tiny());
    const CompiledModel cold_cm = compile(*fresh);
    const ExplorationResult cold = archex::solve(cold_cm, scenario_at(i), opts);
    ASSERT_TRUE(cold.feasible()) << "cold scenario " << i;
    ASSERT_EQ(cold.solution.status, milp::SolveStatus::Optimal) << "scenario " << i;
    EXPECT_NEAR(cold.solution.objective, warm_obj[static_cast<std::size_t>(i)],
                1e-6 * std::max(1.0, std::abs(cold.solution.objective)))
        << "scenario " << i;
  }
}

TEST(CompiledModelCacheTest, LruEvictsBeyondCapacity) {
  CompiledModelCache cache(1);
  auto p1 = make_problem(eager_tiny());
  EpnConfig other = eager_tiny();
  other.loads_per_side += 1;
  auto p2 = make_problem(other);
  auto a = std::make_shared<const CompiledModel>(compile(*p1));
  auto b = std::make_shared<const CompiledModel>(compile(*p2));
  const std::uint64_t fa = a->fingerprint();
  const std::uint64_t fb = b->fingerprint();
  ASSERT_NE(fa, fb);

  cache.put(a);
  EXPECT_NE(cache.get(fa), nullptr);
  cache.put(b);  // capacity 1: inserting b evicts a
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get(fa), nullptr);
  EXPECT_NE(cache.get(fb), nullptr);
  const CompiledModelCache::Stats st = cache.stats();
  EXPECT_EQ(st.evictions, 1);
  EXPECT_EQ(st.hits, 2);
  EXPECT_EQ(st.misses, 1);
}

TEST(CompiledModelCacheTest, ZeroCapacityDisablesCaching) {
  CompiledModelCache cache(0);
  auto p = make_problem(eager_tiny());
  auto cm = std::make_shared<const CompiledModel>(compile(*p));
  const std::uint64_t fp = cm->fingerprint();
  cache.put(std::move(cm));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(fp), nullptr);
}

}  // namespace
}  // namespace archex
