#include "domains/rpl.hpp"

#include <gtest/gtest.h>

#include "graph/digraph.hpp"

namespace archex::domains::rpl {
namespace {

/// Shrunk instance that closes quickly: one conveyor per stage, two machine
/// slots on line A, one on line B, smaller rates.
RplConfig tiny_config() {
  RplConfig cfg;
  cfg.machines_per_stage_a = 2;
  cfg.machines_per_stage_b = 1;
  cfg.conveyors_per_stage_a = 1;
  cfg.conveyors_per_stage_b = 1;
  cfg.rate_a = 6.0;
  cfg.rate_b = 5.0;
  return cfg;
}

TEST(RplLibraryTest, Table3Contents) {
  Library lib = make_library();
  EXPECT_EQ(lib.of_type("Machine").size(), 7u);
  EXPECT_EQ(lib.of_type("Machine", "AB").size(), 1u);
  const Component& ab = lib.at(*lib.find("MachAB10"));
  EXPECT_EQ(ab.attr_or(attr::kThroughput), 10.0);
  EXPECT_EQ(lib.at(*lib.find("SrcA")).attr_or(attr::kFlowRate), 12.0);
  EXPECT_EQ(lib.at(*lib.find("SrcB")).attr_or(attr::kFlowRate), 10.0);
}

TEST(RplTemplateTest, LinesAndJunctions) {
  RplConfig cfg;
  ArchTemplate t = make_template(cfg);
  // Line-local chain.
  EXPECT_TRUE(t.edge_allowed(t.find("SrcA"), t.find("C1A1")));
  EXPECT_FALSE(t.edge_allowed(t.find("SrcA"), t.find("C1B1")));
  EXPECT_TRUE(t.edge_allowed(t.find("C1A1"), t.find("M1A1")));
  EXPECT_FALSE(t.edge_allowed(t.find("C1A1"), t.find("M1B1")));
  // Junction conveyors: same-stage cross-line, both directions.
  EXPECT_TRUE(t.edge_allowed(t.find("C1A1"), t.find("C1B1")));
  EXPECT_TRUE(t.edge_allowed(t.find("C1B1"), t.find("C1A1")));
  EXPECT_FALSE(t.edge_allowed(t.find("C1A1"), t.find("C2B1")));
  // Machine slots restricted by line: line B machines take B or AB impls.
  Library lib = make_library(cfg);
  Problem p(lib, t);
  for (const auto& c : p.mapping().candidates(t.find("M1B1"))) {
    const std::string& sub = lib.at(c.lib).subtype;
    EXPECT_TRUE(sub == "B" || sub == "AB") << sub;
  }
}

TEST(RplProblemTest, BothModesSatisfied) {
  const RplConfig cfg = tiny_config();
  auto p = make_problem(cfg);
  milp::MilpOptions o;
  o.time_limit_s = 60;
  ExplorationResult res = p->solve(o);
  ASSERT_TRUE(res.feasible());
  const Architecture& a = res.architecture;

  // Mode rates arrive at the right sinks.
  EXPECT_NEAR(a.in_flow("O1:A", p->arch_template().find("SnkA")), cfg.rate_a, 1e-5);
  EXPECT_NEAR(a.in_flow("O1:B", p->arch_template().find("SnkB")), cfg.rate_b, 1e-5);
  EXPECT_NEAR(a.in_flow("O2:A", p->arch_template().find("SnkA")), 2 * cfg.rate_a, 1e-5);
  EXPECT_NEAR(a.in_flow("O2:B", p->arch_template().find("SnkB")), 0.0, 1e-5);

  // No machine exceeds its throughput in either mode.
  for (NodeId m : a.used_nodes(NodeFilter::of_type("Machine"))) {
    const auto& n = a.nodes[static_cast<std::size_t>(m)];
    const double mu = p->library().at(n.impl).attr_or(attr::kThroughput);
    EXPECT_LE(a.in_flow("O1:A", m) + a.in_flow("O1:B", m), mu + 1e-5);
    EXPECT_LE(a.in_flow("O2:A", m) + a.in_flow("O2:B", m), mu + 1e-5);
  }

  // Omega1 is line-pure: no product-A flow on line B and vice versa.
  const auto& flows = a.flows;
  if (flows.count("O1:A")) {
    for (const FlowEdge& e : flows.at("O1:A")) {
      EXPECT_FALSE(a.nodes[static_cast<std::size_t>(e.from)].name.find("B") ==
                   2);  // heuristic: stage names are C1B1 etc.
    }
  }
  // Machine capability: any machine carrying product x is implemented by a
  // subtype-x or AB component.
  for (const char* mode : {"O1", "O2"}) {
    for (const char* prod : {"A", "B"}) {
      const std::string commodity = std::string(mode) + ":" + prod;
      for (NodeId m : a.used_nodes(NodeFilter::of_type("Machine"))) {
        if (a.in_flow(commodity, m) < 1e-6) continue;
        const std::string& sub =
            p->library().at(a.nodes[static_cast<std::size_t>(m)].impl).subtype;
        EXPECT_TRUE(sub == prod || sub == "AB")
            << commodity << " through " << a.nodes[static_cast<std::size_t>(m)].name;
      }
    }
  }
}

TEST(RplProblemTest, IdleBoundHolds) {
  RplConfig cfg = tiny_config();
  cfg.max_total_idle = 20.0;
  auto p = make_problem(cfg);
  milp::MilpOptions o;
  o.time_limit_s = 60;
  ExplorationResult res = p->solve(o);
  ASSERT_TRUE(res.feasible());
  EXPECT_LE(total_idle_rate(*p, res.architecture), cfg.max_total_idle + 1e-5);
}

TEST(RplProblemTest, IdleBoundReducesIdleRate) {
  RplConfig loose = tiny_config();
  RplConfig tight = tiny_config();
  tight.max_total_idle = 20.0;
  milp::MilpOptions o;
  o.time_limit_s = 60;
  auto p1 = make_problem(loose);
  auto p2 = make_problem(tight);
  ExplorationResult r1 = p1->solve(o);
  ExplorationResult r2 = p2->solve(o);
  ASSERT_TRUE(r1.feasible());
  ASSERT_TRUE(r2.feasible());
  EXPECT_LE(total_idle_rate(*p2, r2.architecture),
            total_idle_rate(*p1, r1.architecture) + 1e-6);
  // The tighter design cannot be cheaper.
  EXPECT_GE(r2.architecture.cost, r1.architecture.cost - 1e-6);
}

TEST(RplPatternRegistrationTest, HasOperationModeInRegistry) {
  register_rpl_patterns();
  EXPECT_TRUE(PatternRegistry::instance().contains("has_operation_mode"));
  auto pat = PatternRegistry::instance().create(
      "has_operation_mode",
      {std::string("O1"), std::string("A"), 12.0, std::string("B"), 10.0,
       std::string("no_borrowing")});
  EXPECT_EQ(pat->name(), "has_operation_mode");
  EXPECT_NE(pat->describe().find("no_borrowing"), std::string::npos);
}

}  // namespace
}  // namespace archex::domains::rpl
