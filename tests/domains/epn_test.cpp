#include "domains/epn.hpp"

#include <gtest/gtest.h>

#include "graph/digraph.hpp"
#include "reliability/reliability.hpp"

namespace archex::domains::epn {
namespace {

/// Tiny configuration that closes in well under a second: k = 1 regime.
EpnConfig tiny_config() {
  EpnConfig cfg = small_config();
  cfg.loads_per_side = 2;
  cfg.critical_threshold = 5e-3;  // 1 disjoint path suffices (p_path ~ 8e-4)
  cfg.sheddable_threshold = 5e-2;
  return cfg;
}

/// k = 2 regime, still small.
EpnConfig redundant_config() {
  EpnConfig cfg = small_config();
  cfg.critical_threshold = 1e-5;  // 2 disjoint paths
  cfg.sheddable_threshold = 1e-2;
  return cfg;
}

TEST(EpnLibraryTest, Table2Contents) {
  Library lib = make_library();
  // 3 HV + 2 LV generators + APU.
  EXPECT_EQ(lib.of_type("Generator").size(), 6u);
  EXPECT_EQ(lib.of_type("Generator", "APU").size(), 1u);
  EXPECT_EQ(lib.of_type("Rectifier").size(), 3u);
  // Generator cost = rating / 10 (Table 2).
  const Component& g = lib.at(*lib.find("GenHV150"));
  EXPECT_EQ(g.cost(), 15.0);
  EXPECT_EQ(g.attr_or(attr::kPower), 150.0);
  EXPECT_EQ(g.fail_prob(), 2e-4);
  // Loads are perfect (no failprob attribute).
  for (LibIndex i : lib.of_type("Load")) EXPECT_EQ(lib.at(i).fail_prob(), 0.0);
}

TEST(EpnTemplateTest, SidesAndCounts) {
  EpnConfig cfg;  // paper scale
  ArchTemplate t = make_template(cfg);
  EXPECT_EQ(t.select({"Generator", "", "LE"}).size(), 2u);
  EXPECT_EQ(t.select({"Generator", "", "MI"}).size(), 2u);
  EXPECT_EQ(t.select(NodeFilter::of_type("ACBus")).size(), 8u);
  EXPECT_EQ(t.select(NodeFilter::of_type("Rectifier")).size(), 10u);
  EXPECT_EQ(t.select(NodeFilter::of_type("DCBus")).size(), 8u);
  EXPECT_EQ(t.select(NodeFilter::of_type("Load")).size(), 16u);
  EXPECT_EQ(t.select({"Load", "", "critical"}).size(), 8u);

  // Side discipline: left generators cannot feed right AC buses...
  const NodeId lg = t.find("LG1");
  const NodeId ra = t.find("RA1");
  EXPECT_FALSE(t.edge_allowed(lg, ra));
  // ...but APUs can feed both sides, and DC buses tie across sides.
  EXPECT_TRUE(t.edge_allowed(t.find("MG1"), ra));
  EXPECT_TRUE(t.edge_allowed(t.find("LD1"), t.find("RD1")));
  // Loads are side-local to their DC buses.
  EXPECT_TRUE(t.edge_allowed(t.find("LD1"), t.find("LL1")));
  EXPECT_FALSE(t.edge_allowed(t.find("LD1"), t.find("RL1")));
}

TEST(EpnProblemTest, TinyInstanceSolvesAndSatisfiesStructure) {
  const EpnConfig cfg = tiny_config();
  auto p = make_problem(cfg);
  milp::MilpOptions o;
  o.time_limit_s = 30;
  ExplorationResult res = p->solve(o);
  ASSERT_TRUE(res.feasible());

  const Architecture& a = res.architecture;
  const graph::Digraph g = a.to_digraph();
  const ArchTemplate& t = p->arch_template();

  // Every load used, connected to exactly one DC bus, reachable from a
  // generator.
  const std::vector<NodeId> gens = t.select(NodeFilter::of_type("Generator"));
  for (NodeId l : t.select(NodeFilter::of_type("Load"))) {
    EXPECT_TRUE(a.nodes[static_cast<std::size_t>(l)].used);
    EXPECT_EQ(g.in_degree(l), 1u);
    EXPECT_TRUE(graph::reaches(g, gens, l));
  }
  // Voltage discipline on the mapping: no HV component feeds an LV one
  // directly (except via TRU).
  for (const auto& [from, to] : a.edges) {
    const auto& nf = a.nodes[static_cast<std::size_t>(from)];
    const auto& nt = a.nodes[static_cast<std::size_t>(to)];
    if (nf.impl < 0 || nt.impl < 0) continue;
    const std::string& sf = p->library().at(nf.impl).subtype;
    const std::string& st = p->library().at(nt.impl).subtype;
    if (sf == "HV") {
      EXPECT_NE(st, "LV") << nf.name << "->" << nt.name;
    }
    if (sf == "LV") {
      EXPECT_NE(st, "HV") << nf.name << "->" << nt.name;
      EXPECT_NE(st, "TRU") << nf.name << "->" << nt.name;
    }
  }
}

TEST(EpnProblemTest, SufficientPowerHolds) {
  const EpnConfig cfg = tiny_config();
  auto p = make_problem(cfg);
  milp::MilpOptions o;
  o.time_limit_s = 30;
  ExplorationResult res = p->solve(o);
  ASSERT_TRUE(res.feasible());
  const ArchTemplate& t = p->arch_template();
  for (const char* side : {"LE", "RI"}) {
    double gen_power = 0.0;
    double demand = 0.0;
    for (NodeId gnode : t.select({"Generator", "", side})) {
      const auto& n = res.architecture.nodes[static_cast<std::size_t>(gnode)];
      if (n.used) gen_power += p->library().at(n.impl).attr_or(attr::kPower);
    }
    for (NodeId gnode : t.select({"Generator", "", "MI"})) {
      const auto& n = res.architecture.nodes[static_cast<std::size_t>(gnode)];
      if (n.used) gen_power += p->library().at(n.impl).attr_or(attr::kPower);
    }
    for (NodeId l : t.select({"Load", "", side})) {
      const auto& n = res.architecture.nodes[static_cast<std::size_t>(l)];
      if (n.used) demand += p->library().at(n.impl).attr_or(attr::kPower);
    }
    EXPECT_GE(gen_power, demand) << side;
  }
}

TEST(EpnProblemTest, RedundancyRequirementRaisesReliability) {
  const EpnConfig tiny = tiny_config();
  EpnConfig redundant = tiny;
  redundant.critical_threshold = 1e-5;  // k = 2 for critical loads

  milp::MilpOptions o;
  o.time_limit_s = 60;
  auto p1 = make_problem(tiny);
  auto p2 = make_problem(redundant);
  ExplorationResult r1 = p1->solve(o);
  ExplorationResult r2 = p2->solve(o);
  ASSERT_TRUE(r1.feasible());
  ASSERT_TRUE(r2.feasible());
  // Redundancy costs money and improves the worst critical link.
  EXPECT_GT(r2.architecture.cost, r1.architecture.cost);

  auto worst_critical = [](const Problem& p, const Architecture& a) {
    double worst = 0.0;
    for (const auto& [load, prob] : link_fail_probs(p, a)) {
      const NodeId id = p.arch_template().find(load);
      if (p.arch_template().node(id).has_tag("critical")) worst = std::max(worst, prob);
    }
    return worst;
  };
  const double w1 = worst_critical(*p1, r1.architecture);
  const double w2 = worst_critical(*p2, r2.architecture);
  EXPECT_LE(w2, redundant.critical_threshold);
  EXPECT_LT(w2, w1);
}

TEST(EpnLazyTest, ConvergesWithPaperTrajectory) {
  EpnConfig cfg = redundant_config();
  cfg.reliability_eager = false;
  auto p = make_problem(cfg);
  milp::MilpOptions o;
  o.time_limit_s = 60;
  EpnLazyResult res = solve_lazy_epn(*p, cfg, o, 6);
  ASSERT_TRUE(res.converged);
  ASSERT_GE(res.iterations.size(), 2u);
  // The learning steps strictly improve the worst *critical* link between
  // the first and the last iteration (Fig. 3 shape). Sheddable loads that
  // already meet their looser threshold legitimately keep single paths, so
  // the class-wide max can stay flat in this configuration.
  auto worst_critical = [&](const Architecture& a) {
    double worst = 0.0;
    for (const auto& [load, prob] : link_fail_probs(*p, a)) {
      const NodeId id = p->arch_template().find(load);
      if (p->arch_template().node(id).has_tag("critical")) worst = std::max(worst, prob);
    }
    return worst;
  };
  EXPECT_LT(worst_critical(res.iterations.back().architecture),
            worst_critical(res.iterations.front().architecture));
  // Final architecture meets the thresholds by exact analysis.
  for (const auto& [load, prob] : link_fail_probs(*p, res.final_result.architecture)) {
    const NodeId id = p->arch_template().find(load);
    const double thr = p->arch_template().node(id).has_tag("critical")
                           ? cfg.critical_threshold
                           : cfg.sheddable_threshold;
    EXPECT_LE(prob, thr) << load;
  }
}

TEST(EpnPatternRegistrationTest, HasSufficientPowerAvailableInSpecs) {
  register_epn_patterns();
  EXPECT_TRUE(PatternRegistry::instance().contains("has_sufficient_power"));
  auto pat = PatternRegistry::instance().create("has_sufficient_power", {std::string("LE")});
  EXPECT_EQ(pat->name(), "has_sufficient_power");
}

TEST(EpnLinkAnalysisTest, UnconnectedLoadReportsCertainFailure) {
  const EpnConfig cfg = tiny_config();
  auto p = make_problem(cfg);
  // Fabricate an architecture with a used load without a bus.
  Architecture a;
  a.nodes.resize(p->arch_template().num_nodes());
  for (std::size_t j = 0; j < a.nodes.size(); ++j) {
    const NodeSpec& s = p->arch_template().node(static_cast<NodeId>(j));
    a.nodes[j] = {s.name, s.type, s.subtype, s.tags, false, -1, ""};
  }
  const NodeId load = p->arch_template().find("LL1");
  a.nodes[static_cast<std::size_t>(load)].used = true;
  const auto probs = link_fail_probs(*p, a);
  ASSERT_EQ(probs.count("LL1"), 1u);
  EXPECT_EQ(probs.at("LL1"), 1.0);
}

}  // namespace
}  // namespace archex::domains::epn
