#include "check/analyze.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "milp/model.hpp"

namespace archex::check {
namespace {

using milp::Model;
using milp::Sense;
using milp::VarId;

/// Two independent 3-variable blocks plus one column no row references.
Model two_block_model() {
  Model m;
  const VarId x1 = m.add_binary("x1");
  const VarId x2 = m.add_binary("x2");
  const VarId x3 = m.add_binary("x3");
  const VarId y1 = m.add_binary("y1");
  const VarId y2 = m.add_binary("y2");
  m.add_constraint(x1 + x2, Sense::LE, 1.0, "x_cap");
  m.add_constraint(x2 + x3, Sense::GE, 1.0, "x_cover");
  m.add_constraint(y1 + y2, Sense::LE, 1.0, "y_cap");
  m.add_binary("unused");
  m.set_objective(x1 + y1);
  return m;
}

/// Propagation-provable infeasible chain: x <= 3, y <= x, y >= 5.
Model chain_infeasible_model() {
  Model m;
  const VarId x = m.add_continuous(0.0, 100.0, "x");
  const VarId y = m.add_continuous(0.0, 100.0, "y");
  m.add_constraint(x * 1.0, Sense::LE, 3.0, "cap");
  m.add_constraint(y - x, Sense::LE, 0.0, "link");
  m.add_constraint(y * 1.0, Sense::GE, 5.0, "demand");
  m.set_objective(x + y);
  return m;
}

/// b1..b4 interchangeable through cover; (b1,b2) and (b3,b4) tied pairwise.
Model symmetric_model() {
  Model m;
  const VarId b1 = m.add_binary("b1");
  const VarId b2 = m.add_binary("b2");
  const VarId b3 = m.add_binary("b3");
  const VarId b4 = m.add_binary("b4");
  m.add_constraint(b1 + b2 + b3 + b4, Sense::GE, 2.0, "cover");
  m.add_constraint(b1 + b2, Sense::LE, 1.0, "pair_a");
  m.add_constraint(b3 + b4, Sense::LE, 1.0, "pair_b");
  m.set_objective(b1 + b2 + b3 + b4);
  return m;
}

TEST(AnalyzeTest, DecomposeFindsIndependentComponents) {
  const AnalysisReport r = analyze(two_block_model());
  ASSERT_TRUE(r.decomposition.ran);
  ASSERT_EQ(r.decomposition.components.size(), 2u);
  // Largest first: the x-block has 2 rows / 3 cols, the y-block 1 row / 2 cols.
  EXPECT_EQ(r.decomposition.components[0].num_rows, 2u);
  EXPECT_EQ(r.decomposition.components[0].num_cols, 3u);
  EXPECT_EQ(r.decomposition.components[1].num_rows, 1u);
  EXPECT_EQ(r.decomposition.components[1].num_cols, 2u);
  EXPECT_EQ(r.decomposition.unreferenced_cols, 1u);
}

TEST(AnalyzeTest, DecomposeSingleComponentWhenCoupled) {
  Model m;
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  const VarId c = m.add_binary("c");
  m.add_constraint(a + b, Sense::LE, 1.0);
  m.add_constraint(b + c, Sense::LE, 1.0);  // b couples the rows
  const AnalysisReport r = analyze(m);
  ASSERT_EQ(r.decomposition.components.size(), 1u);
  EXPECT_EQ(r.decomposition.components[0].num_cols, 3u);
}

TEST(AnalyzeTest, PropagateProvesStaticInfeasibility) {
  const AnalysisReport r = analyze(chain_infeasible_model());
  ASSERT_TRUE(r.propagation.ran);
  EXPECT_TRUE(r.propagation.result.infeasible);
  EXPECT_EQ(r.propagation.result.infeasible_row, 2);
  EXPECT_TRUE(r.proved_infeasible());
}

TEST(AnalyzeTest, SymmetryFindsOrbitsAndRecommends) {
  const AnalysisReport r = analyze(symmetric_model());
  ASSERT_TRUE(r.symmetry.ran);
  // All four binaries share a signature (the pair rows are themselves
  // interchangeable), so refinement cannot split them: one orbit of 4 — or,
  // if a finer invariant is ever added, at least the pairs survive.
  ASSERT_FALSE(r.symmetry.col_orbits.empty());
  EXPECT_GE(r.symmetry.col_orbits[0].size, 2u);
  ASSERT_FALSE(r.symmetry.row_orbits.empty());  // pair_a ~ pair_b
  EXPECT_FALSE(r.symmetry.recommendations.empty());
}

TEST(AnalyzeTest, SymmetryIsSilentOnAsymmetricModel) {
  Model m;
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  m.add_constraint(a * 1.0 + b * 2.0, Sense::LE, 2.0);
  m.set_objective(a * 1.0 + b * 3.0);
  const AnalysisReport r = analyze(m);
  EXPECT_TRUE(r.symmetry.col_orbits.empty());
}

TEST(AnalyzeTest, IisExtractsTheFullChain) {
  const AnalysisReport r = analyze(chain_infeasible_model());
  ASSERT_TRUE(r.iis.attempted);
  ASSERT_TRUE(r.iis.infeasible);
  EXPECT_TRUE(r.iis.irreducible);
  // Every row of the chain participates: removing any one restores
  // feasibility, so the IIS is exactly {cap, link, demand}.
  EXPECT_EQ(r.iis.rows, (std::vector<std::int32_t>{0, 1, 2}));
}

TEST(AnalyzeTest, IisNotAttemptedOnFeasibleModel) {
  const AnalysisReport r = analyze(two_block_model());
  EXPECT_FALSE(r.iis.infeasible);
  EXPECT_FALSE(r.proved_infeasible());
}

TEST(AnalyzeTest, PassSelectionRunsOnlyRequestedPasses) {
  AnalyzeOptions opt;
  opt.passes = {"decompose"};
  const AnalysisReport r = analyze(chain_infeasible_model(), opt);
  EXPECT_EQ(r.passes_run, (std::vector<std::string>{"decompose"}));
  EXPECT_TRUE(r.decomposition.ran);
  EXPECT_FALSE(r.propagation.ran);
  EXPECT_FALSE(r.symmetry.ran);
  EXPECT_FALSE(r.iis.attempted);
}

TEST(AnalyzeTest, BuiltinPassesAreRegisteredInOrder) {
  const std::vector<std::string> names = registered_analysis_passes();
  const auto index = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) - names.begin();
  };
  ASSERT_GE(names.size(), 4u);
  EXPECT_LT(index("decompose"), index("propagate"));
  EXPECT_LT(index("propagate"), index("symmetry"));
  EXPECT_LT(index("symmetry"), index("iis"));
}

class NoopPass final : public AnalysisPass {
 public:
  [[nodiscard]] const char* name() const override { return "noop"; }
  void run(const milp::Model&, const AnalyzeOptions&, AnalysisReport&) const override {}
};

TEST(AnalyzeTest, CustomPassRegistrationAndSelection) {
  register_analysis_pass("noop", [] {
    return std::unique_ptr<AnalysisPass>(std::make_unique<NoopPass>());
  });
  // Re-registering the same name must replace, not duplicate.
  register_analysis_pass("noop", [] {
    return std::unique_ptr<AnalysisPass>(std::make_unique<NoopPass>());
  });
  const std::vector<std::string> names = registered_analysis_passes();
  EXPECT_EQ(std::count(names.begin(), names.end(), "noop"), 1);

  // Selected passes run in *registration* order, not request order.
  AnalyzeOptions opt;
  opt.passes = {"noop", "propagate"};
  const AnalysisReport r = analyze(two_block_model(), opt);
  EXPECT_EQ(r.passes_run, (std::vector<std::string>{"propagate", "noop"}));
}

TEST(AnalyzeTest, ReportPrintsWithoutCrashing) {
  std::ostringstream os;
  analyze(chain_infeasible_model()).print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("INFEASIBLE"), std::string::npos);
  EXPECT_NE(text.find("iis:"), std::string::npos);
}

}  // namespace
}  // namespace archex::check
